//! Repo-local lint gate, compiled with plain `rustc` (no dependencies):
//!
//! ```text
//! rustc tools/lint.rs -O -o target/lint && ./target/lint
//! ```
//!
//! Policy, enforced over every `crates/*/src/**/*.rs` file:
//!
//! * `.unwrap()` and `.expect(` are banned in non-test library code.
//!   Infallible-by-construction cases use `match` with a `panic!` /
//!   `unreachable!` carrying a message that says *why* the case cannot
//!   happen; everything else propagates an error.
//! * `dbg!(` and `todo!(` are banned everywhere under `src/`, including
//!   test modules — they are debugging residue, not shipping code.
//! * `.to_vec()` and `.clone()` are banned in the interpreter/map/stream
//!   hot-path modules (`crates/ebpf/src/{interp,decode,maps,analysis}.rs`
//!   and `crates/core/src/streaming.rs`): the
//!   per-event path is allocation-free by measurement
//!   (`hot_path_allocs_per_event` in `BENCH_baseline.json`), and this
//!   keeps it that way by construction. Deliberate off-path allocations
//!   carry a `// cold path: ...` comment on the same line, which exempts
//!   that line.
//! * Bare slice indexing (`expr[i]`, including range slicing) is banned
//!   in the non-test code of the static-analysis module
//!   (`crates/ebpf/src/analysis.rs`): every lookup there goes through
//!   `.get()`/`.get_mut()`/iterators, so a pass bug surfaces as a
//!   handled `None`, never as a panic inside the optimizer.
//!
//! `#[cfg(test)]` items (and everything nested inside them) are exempt
//! from the unwrap/expect ban, as are doc comments, line/block
//! comments, and string literals: the scanner strips those before
//! matching, so an error message that *mentions* `.unwrap()` is fine.
//!
//! Exit status is the number-of-violations truth: 0 when clean, 1 when
//! anything fired, 2 on I/O trouble (so CI can't green-wash a missing
//! tree).

use std::env;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Patterns banned in non-test library code.
const BANNED_NON_TEST: &[&str] = &[".unwrap()", ".expect("];

/// Patterns banned everywhere under `src/`, test modules included.
const BANNED_EVERYWHERE: &[&str] = &["dbg!(", "todo!("];

/// Interpreter/map hot-path modules: per-event code where heap churn is
/// a measured regression (`BENCH_baseline.json` pins
/// `hot_path_allocs_per_event` at zero).
const HOT_PATH_FILES: &[&str] = &[
    "crates/ebpf/src/interp.rs",
    "crates/ebpf/src/decode.rs",
    "crates/ebpf/src/jit.rs",
    "crates/ebpf/src/maps.rs",
    "crates/ebpf/src/mapindex.rs",
    "crates/ebpf/src/sketch.rs",
    "crates/ebpf/src/analysis.rs",
    "crates/core/src/streaming.rs",
];

/// Modules whose non-test code may not use bare slice indexing: a
/// malformed program must never panic the analysis, so every lookup is a
/// checked `.get()` or an iterator. `mapindex.rs` is held to the same
/// bar — the JIT reads its tables from native code, so the Rust side
/// must stay panic-free on any fd/key shape.
const NO_SLICE_INDEX_FILES: &[&str] = &[
    "crates/ebpf/src/analysis.rs",
    "crates/ebpf/src/mapindex.rs",
];

/// Allocation patterns banned in hot-path modules outside annotated cold
/// paths and test code.
const BANNED_HOT_PATH: &[&str] = &[".to_vec()", ".clone()"];

/// A line (comment included) containing this marker declares itself a
/// deliberate cold path — setup, drain, or error handling that runs off
/// the per-event path — and is exempt from the hot-path allocation ban.
const COLD_MARKER: &str = "cold path:";

fn main() -> ExitCode {
    let root = env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let crates = root.join("crates");
    let mut files = Vec::new();
    if let Err(e) = collect_sources(&crates, &mut files) {
        eprintln!("lint: cannot walk {}: {e}", crates.display());
        return ExitCode::from(2);
    }
    files.sort();

    let mut violations = 0usize;
    for file in &files {
        let text = match fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("lint: cannot read {}: {e}", file.display());
                return ExitCode::from(2);
            }
        };
        violations += scan_file(file, &text);
    }

    if violations == 0 {
        println!("lint: {} files clean", files.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("lint: {violations} violation(s)");
        ExitCode::FAILURE
    }
}

/// Recursively gather `*.rs` files under each crate's `src/` directory.
fn collect_sources(crates: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(crates)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            walk(&src, out)?;
        }
    }
    Ok(())
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// True when `path` is one of the designated hot-path modules.
fn is_hot_path(path: &Path) -> bool {
    let normalized = path.to_string_lossy().replace('\\', "/");
    HOT_PATH_FILES.iter().any(|f| normalized.ends_with(f))
}

/// True when `path` bans bare slice indexing in non-test code.
fn is_no_slice_index(path: &Path) -> bool {
    let normalized = path.to_string_lossy().replace('\\', "/");
    NO_SLICE_INDEX_FILES.iter().any(|f| normalized.ends_with(f))
}

/// Keywords that can legally precede a `[` without forming an index
/// expression (`&mut [Insn]`, `x as [u8; 4]`, `return [0; 2]`, ...).
const PRE_BRACKET_KEYWORDS: &[&str] = &[
    "mut", "dyn", "ref", "as", "in", "return", "break", "else", "match", "if", "impl", "where",
    "const", "static",
];

/// Count bare index/slice expressions on a stripped line: a `[` whose
/// nearest preceding non-space token ends an expression (identifier,
/// literal, `)`, `]`, or `?`). Array literals/types (`[0u8; 4]`,
/// `&[u64]`, `&mut [Insn]`, `&'a [u8]`), attributes (`#[...]`), and
/// generic args are preceded by punctuation, a keyword, or a lifetime
/// and don't match.
fn count_index_exprs(line: &str) -> usize {
    let bytes = line.as_bytes();
    let mut count = 0usize;
    for (i, b) in bytes.iter().enumerate() {
        if *b != b'[' {
            continue;
        }
        let mut j = i;
        while j > 0 && bytes[j - 1].is_ascii_whitespace() {
            j -= 1;
        }
        let Some(&prev) = j.checked_sub(1).and_then(|k| bytes.get(k)) else {
            continue;
        };
        if prev == b')' || prev == b']' || prev == b'?' {
            count += 1;
            continue;
        }
        if !(prev.is_ascii_alphanumeric() || prev == b'_') {
            continue;
        }
        // Walk back over the word; keywords and `'a`-style lifetimes
        // before a `[` introduce types, not index expressions.
        let mut start = j;
        while start > 0
            && bytes
                .get(start - 1)
                .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_')
        {
            start -= 1;
        }
        if start > 0 && bytes.get(start - 1) == Some(&b'\'') {
            continue;
        }
        let word = &line[start..j];
        if PRE_BRACKET_KEYWORDS.contains(&word) {
            continue;
        }
        count += 1;
    }
    count
}

/// Scan one file; print each violation and return how many fired.
fn scan_file(path: &Path, text: &str) -> usize {
    let stripped = strip_comments_and_strings(text);
    let hot = is_hot_path(path);
    let no_index = is_no_slice_index(path);
    let mut count = 0usize;
    let mut in_test_item = false;
    let mut pending_cfg_test = false;
    let mut depth_at_entry = 0usize;
    let mut depth = 0usize;

    // The stripped text is matched for code patterns; the raw text is
    // consulted only for the cold-path marker, which lives in comments.
    let mut raw_lines = text.lines();

    for (lineno, line) in stripped.lines().enumerate() {
        let raw_line = raw_lines.next().unwrap_or("");
        if line.contains("#[cfg(test)]") {
            pending_cfg_test = true;
        }

        let opens = line.matches('{').count();
        let closes = line.matches('}').count();

        if pending_cfg_test && !in_test_item && opens > 0 {
            in_test_item = true;
            pending_cfg_test = false;
            depth_at_entry = depth;
        }

        let exempt = in_test_item || pending_cfg_test;
        for pat in BANNED_NON_TEST {
            if exempt {
                break;
            }
            for _ in line.matches(pat) {
                println!(
                    "{}:{}: banned `{pat}` in non-test code (use `match` + \
                     `panic!`/`unreachable!` with a reason, or propagate the error)",
                    path.display(),
                    lineno + 1
                );
                count += 1;
            }
        }
        for pat in BANNED_EVERYWHERE {
            for _ in line.matches(pat) {
                println!(
                    "{}:{}: banned `{pat}` (debugging residue)",
                    path.display(),
                    lineno + 1
                );
                count += 1;
            }
        }
        if hot && !exempt && !raw_line.contains(COLD_MARKER) {
            for pat in BANNED_HOT_PATH {
                for _ in line.matches(pat) {
                    println!(
                        "{}:{}: banned `{pat}` in a hot-path module (allocation on \
                         the per-event path; annotate `// {COLD_MARKER} ...` if this \
                         is genuinely off the hot path)",
                        path.display(),
                        lineno + 1
                    );
                    count += 1;
                }
            }
        }

        if no_index && !exempt {
            for _ in 0..count_index_exprs(line) {
                println!(
                    "{}:{}: banned slice indexing in the analysis module (use \
                     `.get()`/`.get_mut()`/iterators so a malformed program \
                     cannot panic the pass)",
                    path.display(),
                    lineno + 1
                );
                count += 1;
            }
        }

        depth = depth + opens - closes.min(depth + opens);
        if in_test_item && depth <= depth_at_entry && closes > 0 {
            in_test_item = false;
        }
    }
    count
}

/// Replace comments, string literals, and char literals with spaces,
/// preserving line structure so reported line numbers stay exact.
fn strip_comments_and_strings(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut nest = 1usize;
                out.extend_from_slice(b"  ");
                i += 2;
                while i < bytes.len() && nest > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        nest += 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        nest -= 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else {
                        out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'"' => {
                out.push(b' ');
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => {
                            // An escaped newline (string continuation) must
                            // keep its line break, or every line number
                            // reported after it drifts.
                            out.push(b' ');
                            out.push(if bytes.get(i + 1) == Some(&b'\n') {
                                b'\n'
                            } else {
                                b' '
                            });
                            i += 2;
                        }
                        b'"' => {
                            out.push(b' ');
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            out.push(b'\n');
                            i += 1;
                        }
                        _ => {
                            out.push(b' ');
                            i += 1;
                        }
                    }
                }
            }
            b'r' if is_raw_string_start(bytes, i) => {
                let hashes = count_hashes(bytes, i + 1);
                out.push(b' ');
                i += 1;
                for _ in 0..hashes {
                    out.push(b' ');
                    i += 1;
                }
                out.push(b' ');
                i += 1; // opening quote
                loop {
                    if i >= bytes.len() {
                        break;
                    }
                    if bytes[i] == b'"' && closes_raw(bytes, i, hashes) {
                        out.push(b' ');
                        i += 1;
                        for _ in 0..hashes {
                            out.push(b' ');
                            i += 1;
                        }
                        break;
                    }
                    out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            b'\'' if is_char_literal(bytes, i) => {
                out.push(b' ');
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => {
                            out.extend_from_slice(b"  ");
                            i += 2;
                        }
                        b'\'' => {
                            out.push(b' ');
                            i += 1;
                            break;
                        }
                        _ => {
                            out.push(b' ');
                            i += 1;
                        }
                    }
                }
            }
            _ => {
                out.push(b);
                i += 1;
            }
        }
    }
    match String::from_utf8(out) {
        Ok(s) => s,
        // Replacement only writes ASCII over ASCII; multi-byte chars
        // pass through untouched, so this cannot happen.
        Err(_) => unreachable!("stripping preserves UTF-8"),
    }
}

/// `r"..."` / `r#"..."#` / `br"..."` starts (the `b` byte, if present,
/// was already emitted verbatim, which is harmless).
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    let mut j = i + 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

fn count_hashes(bytes: &[u8], mut i: usize) -> usize {
    let mut n = 0;
    while bytes.get(i) == Some(&b'#') {
        n += 1;
        i += 1;
    }
    n
}

fn closes_raw(bytes: &[u8], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| bytes.get(i + k) == Some(&b'#'))
}

/// Distinguish `'a'` / `'\n'` char literals from `'static` lifetimes.
fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some(&b'\\') => true,
        Some(_) => bytes.get(i + 2) == Some(&b'\''),
        None => false,
    }
}
