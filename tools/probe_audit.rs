//! `probe_audit` — static-analysis audit of every shipped probe program.
//!
//! Builds each probe configuration the repo ships (every syscall profile,
//! the histogram variant the fleet runs, and the multi-process probe),
//! then for each generated program reports:
//!
//! * the certified worst-case cost bound ([`kscope_ebpf::CostReport`]):
//!   instructions, helper calls, and weighted cost per event;
//! * the JIT helper-inline plan ([`kscope_ebpf::helper_inline_plan`]):
//!   how many call sites compile to inline fast paths versus the sysv64
//!   trampoline round-trip;
//! * what the optimizer did ([`kscope_ebpf::OptReport`]) and the
//!   optimized program's own cost bound.
//!
//! Exit status is non-zero when any audit invariant fails:
//!
//! * a program has no finite cost bound;
//! * the optimizer *increases* a program's slot count;
//! * an optimized program fails re-verification, or its cost bound
//!   exceeds the original's (optimization must never certify worse);
//! * the shipped probes' inline plans regress: fewer than three env
//!   helper sites or no map lookup compiles to an inline fast path;
//! * the fleet's sketch probe regresses: its `sketch_update` site is
//!   missing or is not compiled as a trampoline call (the helper
//!   mutates shared multi-word sketch state, so inlining it would fork
//!   interpreter and JIT semantics);
//! * the netstack ingress probe pair (`kscope_net_rx` /
//!   `kscope_sock_drain`, verified against the 24-byte `NetCtx`) is
//!   absent or loses its finite cost bound.
//!
//! CI runs this as the `analysis-smoke` job. Usage: `probe_audit [-v]`
//! (`-v` additionally prints disassemblies of programs the optimizer
//! changed).

use kscope_core::{BytecodeBackend, CTX_SIZE, NET_CTX_SIZE};
use kscope_ebpf::verifier::{Verifier, VerifierConfig};
use kscope_ebpf::{cost_report, helper_inline_plan, HelperInline, Program};
use kscope_syscalls::SyscallProfile;

/// Inline-plan tallies accumulated across every audited program.
#[derive(Default)]
struct InlineTally {
    env: usize,
    lookup_fast: usize,
    trampolined: usize,
    sketch_sites: usize,
}

fn shipped_backends() -> Vec<(String, BytecodeBackend)> {
    let profiles: [(&str, SyscallProfile); 5] = [
        ("tailbench", SyscallProfile::tailbench()),
        ("data_caching", SyscallProfile::data_caching()),
        ("web_search", SyscallProfile::web_search()),
        ("triton_grpc", SyscallProfile::triton_grpc()),
        ("triton_http", SyscallProfile::triton_http()),
    ];
    let mut out = Vec::new();
    for (name, profile) in profiles {
        let backend = BytecodeBackend::new(1_000, profile.clone(), 10)
            .unwrap_or_else(|e| panic!("building probe for {name}: {e}"));
        out.push((name.to_string(), backend));
    }
    // The histogram variant (register-offset map access).
    let hist = BytecodeBackend::new_with_histogram(1_000, SyscallProfile::data_caching(), 10)
        .unwrap_or_else(|e| panic!("building histogram probe: {e}"));
    out.push(("data_caching+hist".to_string(), hist));
    // The fleet's configuration: histogram plus the per-entity Top-K
    // sketch the collection tree merges (`bpf_sketch_update` site).
    let sketch = BytecodeBackend::new_with_histogram_and_sketch(
        1_000,
        SyscallProfile::data_caching(),
        10,
        64,
    )
    .unwrap_or_else(|e| panic!("building sketch probe: {e}"));
    out.push(("data_caching+hist+sketch".to_string(), sketch));
    // The full fleet configuration: the above plus the netstack ingress
    // probe pair (`kscope_net_rx` / `kscope_sock_drain`) attached to the
    // `net_rx_softirq` and `sock_queue_drain` tracepoints.
    let netstack = BytecodeBackend::new_with_histogram_and_sketch(
        1_000,
        SyscallProfile::data_caching(),
        10,
        64,
    )
    .and_then(BytecodeBackend::with_netstack)
    .unwrap_or_else(|e| panic!("building netstack probe: {e}"));
    out.push(("data_caching+hist+sketch+netstack".to_string(), netstack));
    // Multi-process probe (Web Search aggregates every stage).
    let multi = BytecodeBackend::new_multi(vec![1_000, 1_001, 1_002], SyscallProfile::web_search(), 10)
        .unwrap_or_else(|e| panic!("building multi-tgid probe: {e}"));
    out.push(("web_search+multi".to_string(), multi));
    out
}

fn audit_program(
    label: &str,
    prog: &Program,
    ctx_size: usize,
    backend: &BytecodeBackend,
    verbose: bool,
    tally: &mut InlineTally,
) -> Result<(), String> {
    let cost = cost_report(prog)
        .ok_or_else(|| format!("{label}: no finite cost bound for '{}'", prog.name()))?;
    println!("  {} [{} slots]", prog.name(), prog.len());
    println!("    cost:      {cost}");
    let plan = helper_inline_plan(prog);
    let mut env = 0usize;
    let mut fast = 0usize;
    let mut tramp = 0usize;
    for (_, helper, treatment) in plan.sites() {
        match treatment {
            HelperInline::Env => env += 1,
            HelperInline::MapLookupFast => fast += 1,
            HelperInline::Trampoline => tramp += 1,
        }
        if *helper == kscope_ebpf::Helper::SketchUpdate {
            // The sketch update mutates shared multi-word state, so it
            // must stay a trampoline call — inlining it would fork the
            // semantics between interpreter and JIT.
            if *treatment != HelperInline::Trampoline {
                return Err(format!(
                    "{label}: sketch_update site in '{}' is not trampolined",
                    prog.name()
                ));
            }
            tally.sketch_sites += 1;
        }
    }
    println!(
        "    inline:    {} of {} helper sites inlined ({env} env, {fast} map-lookup fast path), {tramp} trampolined",
        plan.inlined(),
        plan.sites().len(),
    );
    tally.env += env;
    tally.lookup_fast += fast;
    tally.trampolined += tramp;
    let Some((opt, report)) = prog.optimized() else {
        return Err(format!(
            "{label}: optimizer declined shipped program '{}'",
            prog.name()
        ));
    };
    println!("    optimizer: {}", report.summary());
    if opt.len() > prog.len() {
        return Err(format!(
            "{label}: optimizer grew '{}' from {} to {} slots",
            prog.name(),
            prog.len(),
            opt.len()
        ));
    }
    let opt_cost = cost_report(opt)
        .ok_or_else(|| format!("{label}: optimized '{}' has no finite bound", prog.name()))?;
    println!("    optimized: {opt_cost}");
    if opt_cost.max_insns > cost.max_insns {
        return Err(format!(
            "{label}: optimization raised the certified bound of '{}' ({} -> {})",
            prog.name(),
            cost.max_insns,
            opt_cost.max_insns
        ));
    }
    let verifier = Verifier::new(VerifierConfig {
        ctx_size,
        ..VerifierConfig::default()
    });
    let verdict = verifier.verify_report(opt, backend.map_registry());
    if !verdict.is_ok() {
        return Err(format!(
            "{label}: optimized '{}' failed re-verification:\n{verdict}",
            prog.name()
        ));
    }
    if verbose && report.changed() {
        println!("--- optimized disassembly ---\n{}", opt.disassemble());
    }
    Ok(())
}

fn main() {
    let verbose = std::env::args().any(|a| a == "-v" || a == "--verbose");
    let mut failures: Vec<String> = Vec::new();
    let mut audited = 0usize;
    let mut reduced = 0usize;
    let mut tally = InlineTally::default();
    let mut net_audited = 0usize;
    for (label, backend) in shipped_backends() {
        println!("probe configuration: {label}");
        let (enter, exit) = backend.programs();
        let mut queue: Vec<(&Program, usize, bool)> =
            vec![(enter, CTX_SIZE, false), (exit, CTX_SIZE, false)];
        if let Some((rx, drain)) = backend.net_programs() {
            queue.push((rx, NET_CTX_SIZE, true));
            queue.push((drain, NET_CTX_SIZE, true));
        }
        for (prog, ctx_size, is_net) in queue {
            match audit_program(&label, prog, ctx_size, &backend, verbose, &mut tally) {
                Ok(()) => {
                    audited += 1;
                    if is_net {
                        net_audited += 1;
                    }
                    if prog.optimized().is_some_and(|(opt, _)| opt.len() < prog.len()) {
                        reduced += 1;
                    }
                }
                Err(e) => failures.push(e),
            }
        }
    }
    println!(
        "\naudited {audited} programs ({net_audited} netstack); optimizer reduced {reduced}; \
         inline plan: {} env + {} map-lookup fast path, {} trampolined \
         ({} sketch-update)",
        tally.env, tally.lookup_fast, tally.trampolined, tally.sketch_sites
    );
    if reduced == 0 {
        failures.push("optimizer reduced no shipped program (regression)".to_string());
    }
    if tally.env < 3 {
        failures.push(format!(
            "inline plan covers only {} env helper sites (expected >= 3)",
            tally.env
        ));
    }
    if tally.lookup_fast == 0 {
        failures.push("no shipped map lookup compiles to the inline fast path".to_string());
    }
    if tally.sketch_sites == 0 {
        failures.push(
            "no sketch_update site audited — the fleet probe configuration is missing".to_string(),
        );
    }
    if net_audited < 2 {
        failures.push(format!(
            "only {net_audited} netstack programs audited (expected the \
             kscope_net_rx / kscope_sock_drain pair) — the netstack probe \
             configuration is missing"
        ));
    }
    if failures.is_empty() {
        println!("probe audit: PASS");
    } else {
        for f in &failures {
            eprintln!("probe audit FAIL: {f}");
        }
        std::process::exit(1);
    }
}
