//! Network robustness: the eBPF signal survives what the client cannot.
//!
//! Runs Triton (gRPC) at a fixed load under three network conditions —
//! clean, 10ms delay, 1% loss — and shows that client-side p99 swings while
//! the in-kernel RPS estimate and poll-duration signal stay put (§V-A,
//! Fig. 5, Table II). The netstack probe pair decomposes the residual:
//! time-in-stack (NIC ring → softirq → socket-queue drain) barely moves
//! under loss, because lost transmissions are charged an RTO at the
//! *sender* — the copy that finally arrives traverses the ingress
//! pipeline like any other packet.
//!
//! ```text
//! cargo run --release --example netem_robustness
//! ```

use kscope::core::{NativeBackend, StackDelay, DEFAULT_SHIFT};
use kscope::prelude::*;

struct Row {
    label: String,
    p99_ms: f64,
    rps_obsv: f64,
    poll_us: f64,
    stack_us: f64,
    stack_samples: u64,
}

fn measure(spec: &WorkloadSpec, netem: NetemConfig, label: &str) -> Row {
    let offered = spec.paper_failure_rps * 0.6;
    let mut config = RunConfig::new(offered, 77);
    config.netem = netem;
    config.measure = Nanos::from_secs_f64(4_000.0 / offered);
    let window = config.measure / 8;

    let outcome = run_workload_with(spec, &config, |sim| {
        let backend =
            NativeBackend::new_multi(sim.server_pids(), spec.profile.clone(), DEFAULT_SHIFT)
                .with_netstack();
        vec![Box::new(WindowedObserver::new(backend, window)) as Box<dyn TracepointProbe>]
    });
    let mut kernel = outcome.kernel;
    let mut probe = kernel.tracing.detach(outcome.probes[0]).expect("attached");
    let observer = probe
        .as_any_mut()
        .downcast_mut::<WindowedObserver<NativeBackend>>()
        .expect("native observer");
    observer.finish(outcome.end);

    let stack = StackDelay::from_backend(DEFAULT_SHIFT, observer.backend())
        .expect("netstack probes attached");
    let windows: Vec<WindowMetrics> = observer
        .windows()
        .iter()
        .copied()
        .filter(|w| w.start >= outcome.warmup_end)
        .collect();
    let rps_obsv = RpsEstimator::with_min_samples(256)
        .from_windows(&windows)
        .unwrap_or(0.0);
    let poll_us = windows
        .iter()
        .filter_map(|w| w.poll_mean_ns)
        .sum::<f64>()
        / windows.iter().filter(|w| w.poll_mean_ns.is_some()).count().max(1) as f64
        / 1_000.0;
    Row {
        label: label.to_string(),
        p99_ms: outcome.client.p99_latency.as_millis_f64(),
        rps_obsv,
        poll_us,
        stack_us: stack.mean_ns().unwrap_or(0.0) / 1_000.0,
        stack_samples: stack.count(),
    }
}

fn main() {
    let spec = kscope::workloads::triton_grpc();
    println!(
        "workload {} at 60% of failure load, three network conditions:\n",
        spec.name
    );
    let rows = [
        measure(&spec, NetemConfig::impaired(Nanos::ZERO, 0.0), "clean"),
        measure(
            &spec,
            NetemConfig::impaired(Nanos::from_millis(10), 0.0),
            "10ms delay",
        ),
        measure(
            &spec,
            NetemConfig::impaired(Nanos::ZERO, 0.01),
            "1% loss",
        ),
    ];
    println!(
        "{:<12} {:>12} {:>14} {:>16} {:>15} {:>14}",
        "network", "p99 (ms)", "RPS_obsv", "epoll dur (us)", "in-stack (us)", "stack samples"
    );
    for r in &rows {
        println!(
            "{:<12} {:>12.1} {:>14.1} {:>16.1} {:>15.2} {:>14}",
            r.label, r.p99_ms, r.rps_obsv, r.poll_us, r.stack_us, r.stack_samples
        );
    }
    let clean = &rows[0];
    let loss = &rows[2];
    println!(
        "\n1% loss moved p99 by {:+.1}% but RPS_obsv by only {:+.2}%, the\n\
         epoll signal by {:+.2}%, and mean time-in-stack by {:+.2}% — the\n\
         paper's §V-A finding: loss is charged as an RTO at the sender, so\n\
         server-side syscall statistics and ingress-queue residency both\n\
         stay put while the client's tail explodes.",
        (loss.p99_ms - clean.p99_ms) / clean.p99_ms * 100.0,
        (loss.rps_obsv - clean.rps_obsv) / clean.rps_obsv * 100.0,
        (loss.poll_us - clean.poll_us) / clean.poll_us * 100.0,
        (loss.stack_us - clean.stack_us) / clean.stack_us * 100.0,
    );
}
