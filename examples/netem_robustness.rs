//! Network robustness: the eBPF signal survives what the client cannot.
//!
//! Runs Triton (gRPC) at a fixed load under three network conditions —
//! clean, 10ms delay, 1% loss — and shows that client-side p99 swings while
//! the in-kernel RPS estimate and poll-duration signal stay put (§V-A,
//! Fig. 5, Table II).
//!
//! ```text
//! cargo run --release --example netem_robustness
//! ```

use kscope::core::DEFAULT_SHIFT;
use kscope::prelude::*;

fn measure(spec: &WorkloadSpec, netem: NetemConfig, label: &str) -> (String, f64, f64, f64) {
    let offered = spec.paper_failure_rps * 0.6;
    let mut config = RunConfig::new(offered, 77);
    config.netem = netem;
    config.measure = Nanos::from_secs_f64(4_000.0 / offered);
    let window = config.measure / 8;

    let outcome = run_workload_with(spec, &config, |sim| {
        let backend =
            NativeBackend::new_multi(sim.server_pids(), spec.profile.clone(), DEFAULT_SHIFT);
        vec![Box::new(WindowedObserver::new(backend, window)) as Box<dyn TracepointProbe>]
    });
    let mut kernel = outcome.kernel;
    let mut probe = kernel.tracing.detach(outcome.probes[0]).expect("attached");
    let observer = probe
        .as_any_mut()
        .downcast_mut::<WindowedObserver<NativeBackend>>()
        .expect("native observer");
    observer.finish(outcome.end);

    let windows: Vec<WindowMetrics> = observer
        .windows()
        .iter()
        .copied()
        .filter(|w| w.start >= outcome.warmup_end)
        .collect();
    let rps_obsv = RpsEstimator::with_min_samples(256)
        .from_windows(&windows)
        .unwrap_or(0.0);
    let poll_us = windows
        .iter()
        .filter_map(|w| w.poll_mean_ns)
        .sum::<f64>()
        / windows.iter().filter(|w| w.poll_mean_ns.is_some()).count().max(1) as f64
        / 1_000.0;
    (
        label.to_string(),
        outcome.client.p99_latency.as_millis_f64(),
        rps_obsv,
        poll_us,
    )
}

fn main() {
    let spec = kscope::workloads::triton_grpc();
    println!(
        "workload {} at 60% of failure load, three network conditions:\n",
        spec.name
    );
    let rows = [
        measure(&spec, NetemConfig::impaired(Nanos::ZERO, 0.0), "clean"),
        measure(
            &spec,
            NetemConfig::impaired(Nanos::from_millis(10), 0.0),
            "10ms delay",
        ),
        measure(
            &spec,
            NetemConfig::impaired(Nanos::ZERO, 0.01),
            "1% loss",
        ),
    ];
    println!(
        "{:<12} {:>12} {:>14} {:>16}",
        "network", "p99 (ms)", "RPS_obsv", "epoll dur (us)"
    );
    for (label, p99, rps, poll) in &rows {
        println!("{label:<12} {p99:>12.1} {rps:>14.1} {poll:>16.1}");
    }
    let (_, p99_clean, rps_clean, poll_clean) = &rows[0];
    let (_, p99_loss, rps_loss, poll_loss) = &rows[2];
    println!(
        "\n1% loss moved p99 by {:+.1}% but RPS_obsv by only {:+.2}% and the\n\
         epoll signal by {:+.2}% — the paper's §V-A finding: server-side\n\
         syscall statistics are robust to network conditions the client feels.",
        (p99_loss - p99_clean) / p99_clean * 100.0,
        (rps_loss - rps_clean) / rps_clean * 100.0,
        (poll_loss - poll_clean) / poll_clean * 100.0,
    );
}
