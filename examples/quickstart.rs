//! Quickstart: observe a memcached-like server with an eBPF probe.
//!
//! Runs the CloudSuite Data Caching model at half its capacity, attaches
//! the bytecode observability probe to the simulated kernel's syscall
//! tracepoints, and compares the probe's Eq. 1 estimate of requests per
//! second with the client-measured ground truth.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use kscope::core::DEFAULT_SHIFT;
use kscope::prelude::*;

fn main() {
    // 1. Pick a workload from the paper's catalog.
    let spec = kscope::workloads::data_caching();
    let offered = spec.paper_failure_rps * 0.5;
    println!(
        "workload: {} (CloudSuite), offered load {:.0} rps",
        spec.name, offered
    );

    // 2. Configure a run: 300ms warmup, 2s measured, loopback network.
    let config = RunConfig::new(offered, 42);

    // 3. Attach the eBPF bytecode probe, windowed at 200ms — the agent's
    //    polling period.
    let window = Nanos::from_millis(200);
    let outcome = run_workload_with(&spec, &config, |sim| {
        let backend =
            BytecodeBackend::new_multi(sim.server_pids(), spec.profile.clone(), DEFAULT_SHIFT)
                .expect("generated programs pass the verifier");
        println!("\nloaded eBPF programs:\n{}", backend.disassembly());
        vec![Box::new(WindowedObserver::new(backend, window)) as Box<dyn TracepointProbe>]
    });

    // 4. Recover the observer and feed its windows to the agent.
    let mut kernel = outcome.kernel;
    let mut probe = kernel.tracing.detach(outcome.probes[0]).expect("attached");
    let observer = probe
        .as_any_mut()
        .downcast_mut::<WindowedObserver<BytecodeBackend>>()
        .expect("bytecode observer");
    observer.finish(outcome.end);

    let mut agent = Agent::new(
        RpsEstimator::with_min_samples(256),
        SaturationDetector::default(),
        SlackEstimator::default(),
    );
    agent.ingest_all(
        observer
            .windows()
            .iter()
            .copied()
            .filter(|w| w.start >= outcome.warmup_end),
    );

    // 5. Compare with ground truth.
    let rps_obsv = agent.overall_rps().expect("enough samples");
    println!("\nclient ground truth: {:>10.0} rps", outcome.client.achieved_rps);
    println!("eBPF RPS_obsv (Eq.1): {:>9.0} rps", rps_obsv);
    println!(
        "estimation error:     {:>9.2}%",
        (rps_obsv - outcome.client.achieved_rps).abs() / outcome.client.achieved_rps * 100.0
    );
    println!(
        "client p99 latency:   {:>9.2} ms (QoS limit {:.2} ms)",
        outcome.client.p99_latency.as_millis_f64(),
        spec.qos_p99.as_millis_f64()
    );
    if let Some(report) = agent.latest() {
        if let Some(slack) = report.slack {
            println!(
                "saturation headroom:  {:>9.0}% (from epoll_wait durations)",
                slack.headroom * 100.0
            );
        }
    }
}
