//! Black-box capacity planner: the paper's §VI "implications" in action.
//!
//! A management runtime wants to know how much headroom a third-party
//! (uninstrumentable) service has before it must scale out. This example
//! treats the Web Search model as that black box: it probes the kernel
//! only, estimates saturation slack at increasing load, and recommends a
//! scaling action — then validates the recommendation against the ground
//! truth the runtime never saw.
//!
//! (The slack signal's floor is workload-dependent: multi-stage services
//! like Web Search keep sizeable poll durations even at saturation because
//! their front-ends pipeline; the memcached-style model used here has the
//! clean syscall-floor behaviour of Fig. 4.)
//!
//! ```text
//! cargo run --release --example blackbox_tuner
//! ```

use kscope::core::DEFAULT_SHIFT;
use kscope::prelude::*;

/// What the runtime decides from the in-kernel signals alone.
#[derive(Debug, PartialEq)]
enum Action {
    /// Plenty of headroom: candidates for consolidation.
    ScaleDown,
    /// Comfortable.
    Hold,
    /// Approaching saturation: add capacity now.
    ScaleUp,
}

fn decide(headroom: f64, saturated: bool) -> Action {
    // Thresholds live on the slack estimator's log scale (poll durations
    // span orders of magnitude between idle and saturated).
    if saturated || headroom < 0.30 {
        Action::ScaleUp
    } else if headroom > 0.82 {
        Action::ScaleDown
    } else {
        Action::Hold
    }
}

fn main() {
    let spec = kscope::workloads::data_caching();
    println!(
        "black-box service: {} (the runtime sees only tgids and syscalls)\n",
        spec.name
    );
    println!(
        "{:>8}  {:>9}  {:>8}  {:>10}  |  {:>8}  {:>10}",
        "offered", "headroom", "var sat?", "decision", "p99(ms)", "truth"
    );

    let mut agent = Agent::new(
        RpsEstimator::with_min_samples(128),
        SaturationDetector::default(),
        SlackEstimator::default(),
    );
    let mut correct = 0usize;
    let mut total = 0usize;

    for step in 0..9 {
        let fraction = 0.15 + 0.11 * step as f64;
        let offered = spec.paper_failure_rps * fraction;
        let mut config = RunConfig::new(offered, 500 + step as u64);
        config.measure = Nanos::from_secs(3);
        let outcome = run_workload_with(&spec, &config, |sim| {
            let backend =
                NativeBackend::new_multi(sim.server_pids(), spec.profile.clone(), DEFAULT_SHIFT);
            vec![Box::new(WindowedObserver::new(backend, Nanos::from_millis(750)))
                as Box<dyn TracepointProbe>]
        });
        let mut kernel = outcome.kernel;
        let mut probe = kernel.tracing.detach(outcome.probes[0]).expect("attached");
        let observer = probe
            .as_any_mut()
            .downcast_mut::<WindowedObserver<NativeBackend>>()
            .expect("native observer");
        observer.finish(outcome.end);

        let mut headroom = 1.0;
        let mut var_saturated = false;
        for w in observer
            .windows()
            .iter()
            .filter(|w| w.start >= outcome.warmup_end)
        {
            let report = agent.ingest(*w);
            if let Some(slack) = report.slack {
                headroom = slack.headroom;
            }
            if let Some(sat) = report.saturation {
                var_saturated = sat.saturated;
            }
        }
        let action = decide(headroom, var_saturated);

        // Ground truth the runtime never sees: utilization of the knee.
        let utilization = outcome.client.achieved_rps / spec.paper_failure_rps;
        let truth = if utilization > 0.85 {
            Action::ScaleUp
        } else if utilization < 0.45 {
            Action::ScaleDown
        } else {
            Action::Hold
        };
        total += 1;
        if action == truth {
            correct += 1;
        }
        println!(
            "{:>8.0}  {:>8.0}%  {:>8}  {:>10}  |  {:>8.1}  {:>10}",
            offered,
            headroom * 100.0,
            if var_saturated { "yes" } else { "no" },
            format!("{action:?}"),
            outcome.client.p99_latency.as_millis_f64(),
            format!("{truth:?}"),
        );
    }
    println!(
        "\nagreement with ground truth: {correct}/{total} — from kernel-side\n\
         observability alone, with zero application cooperation."
    );
}
