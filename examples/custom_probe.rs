//! Custom probe: a bpftrace-style "syscall top", written in text assembly.
//!
//! The equivalent of
//!
//! ```text
//! bpftrace -e 'tracepoint:raw_syscalls:sys_exit /pid == $server/ { @[args->id] = count(); }'
//! ```
//!
//! — a user-supplied eBPF program (text-assembled, verified, interpreted)
//! attached to the simulated kernel's tracepoints via
//! [`CustomProbe`](kscope::core::custom::CustomProbe), counting syscalls by
//! id into a hash map that userspace reads afterwards.
//!
//! ```text
//! cargo run --release --example custom_probe
//! ```

use kscope::core::custom::CustomProbe;
use kscope::ebpf::maps::{MapDef, MapRegistry};
use kscope::ebpf::text::parse_program;
use kscope::prelude::*;

/// The counting program. Map fd 0 is `counts`: hash u64 syscall id → u64.
/// `@[args->id] = count()` compiles to: lookup; if missing insert 1;
/// otherwise increment through the returned pointer.
const SYSCALL_TOP: &str = r"
    ; key = args->id on the stack
    ldxdw r8, [r1+0]
    stxdw [r10-8], r8
    ld_map_fd r1, 0
    mov   r2, r10
    add   r2, -8
    call  bpf_map_lookup_elem
    jne   r0, 0, bump
    ; first sighting: counts[id] = 1
    stdw  [r10-16], 1
    ld_map_fd r1, 0
    mov   r2, r10
    add   r2, -8
    mov   r3, r10
    add   r3, -16
    mov   r4, 0
    call  bpf_map_update_elem
    mov   r0, 0
    exit
bump:
    ldxdw r1, [r0+0]
    add   r1, 1
    stxdw [r0+0], r1
    mov   r0, 0
    exit
";

fn main() {
    let spec = kscope::workloads::web_search();
    let config = RunConfig::new(spec.paper_failure_rps * 0.5, 99);
    println!(
        "attaching a custom text-assembled probe to `{}` for {}s of traffic\n",
        spec.name,
        config.measure.as_secs_f64()
    );

    let outcome = run_workload_with(&spec, &config, |_sim| {
        let mut maps = MapRegistry::new();
        let _counts = maps.create("counts", MapDef::hash(8, 8, 512));
        let program = parse_program("syscall_top", SYSCALL_TOP).expect("program parses");
        println!("program listing:\n{}", program.disassemble());
        let probe = CustomProbe::new(None, Some(program), maps).expect("program verifies");
        vec![Box::new(probe) as Box<dyn TracepointProbe>]
    });

    let mut kernel = outcome.kernel;
    let mut probe = kernel.tracing.detach(outcome.probes[0]).expect("attached");
    let custom = probe
        .as_any_mut()
        .downcast_mut::<CustomProbe>()
        .expect("custom probe");
    let counts_fd = custom.maps().fd_by_name("counts").expect("map exists");

    // Userspace readout: walk the syscall table and look each id up.
    let mut rows: Vec<(kscope::syscalls::SyscallNo, u64)> = Vec::new();
    for &no in kscope::syscalls::SyscallNo::all() {
        let key = (no.raw() as u64).to_le_bytes();
        if let Ok(Some(value)) = custom.maps().lookup(counts_fd, &key) {
            let count = u64::from_le_bytes(value.try_into().expect("u64 cell"));
            rows.push((no, count));
        }
    }
    rows.sort_by_key(|&(_, c)| std::cmp::Reverse(c));

    println!("syscall counts over the run (@[args->id] = count()):");
    for (no, count) in &rows {
        println!("    {no:<14} {count:>10}");
    }
    println!(
        "\nclient processed {:.0} rps; the probe never touched the application.",
        outcome.client.achieved_rps
    );
}
