//! Saturation monitor: detect QoS trouble with no client feedback.
//!
//! Steps a TailBench-style server through increasing load levels and runs
//! the paper's two saturation signals at each step — the Eq. 2 inter-send
//! variance knee and the poll-duration slack — printing what a management
//! runtime would see. The ground-truth p99 is shown only for validation;
//! the detectors never look at it.
//!
//! ```text
//! cargo run --release --example saturation_monitor
//! ```

use kscope::core::DEFAULT_SHIFT;
use kscope::prelude::*;

fn main() {
    let spec = kscope::workloads::xapian();
    println!(
        "monitoring {} — paper failure point {:.0} rps, QoS p99 {:.0} ms\n",
        spec.name,
        spec.paper_failure_rps,
        spec.qos_p99.as_millis_f64()
    );
    println!(
        "{:>8}  {:>9}  {:>12}  {:>9}  {:>9}  {:>8}  {:>12}",
        "offered", "rps_obsv", "var(Δt)ms²", "slack", "sat?", "p99(ms)", "ground truth"
    );

    let mut agent = Agent::new(
        RpsEstimator::with_min_samples(64),
        SaturationDetector::default(),
        SlackEstimator::default(),
    );

    for step in 0..12 {
        let fraction = 0.15 + 0.11 * step as f64; // 15% .. 136% of failure
        let offered = spec.paper_failure_rps * fraction;
        let mut config = RunConfig::new(offered, 100 + step as u64);
        config.measure = Nanos::from_secs(4);
        let outcome = run_workload_with(&spec, &config, |sim| {
            let backend =
                NativeBackend::new_multi(sim.server_pids(), spec.profile.clone(), DEFAULT_SHIFT);
            vec![Box::new(WindowedObserver::new(backend, Nanos::from_secs(1)))
                as Box<dyn TracepointProbe>]
        });
        let mut kernel = outcome.kernel;
        let mut probe = kernel.tracing.detach(outcome.probes[0]).expect("attached");
        let observer = probe
            .as_any_mut()
            .downcast_mut::<WindowedObserver<NativeBackend>>()
            .expect("native observer");
        observer.finish(outcome.end);

        let mut last = None;
        for w in observer
            .windows()
            .iter()
            .filter(|w| w.start >= outcome.warmup_end)
        {
            last = Some(agent.ingest(*w));
        }
        let Some(report) = last else { continue };

        let saturated = report.any_saturation();
        let qos_violated = outcome.client.p99_latency > spec.qos_p99;
        println!(
            "{:>8.0}  {:>9.0}  {:>12.3}  {:>8.0}%  {:>9}  {:>8.1}  {:>12}",
            offered,
            report.rps_obsv.unwrap_or(0.0),
            report
                .saturation
                .map(|s| s.variance / 1e12) // ns² -> ms²
                .unwrap_or(0.0),
            report.slack.map(|s| s.headroom * 100.0).unwrap_or(0.0),
            if saturated { "SATURATED" } else { "ok" },
            outcome.client.p99_latency.as_millis_f64(),
            if qos_violated { "QoS VIOLATED" } else { "within QoS" },
        );
    }

    println!(
        "\nThe monitor used only in-kernel syscall statistics — no client\n\
         feedback, no application instrumentation (§VI: resource management)."
    );
}
