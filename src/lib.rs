//! # kscope
//!
//! In-kernel observability of request-level metrics with eBPF syscall
//! tracing — a full Rust reproduction of *"Characterizing In-Kernel
//! Observability of Latency-Sensitive Request-Level Metrics with eBPF"*
//! (Rezvani, Jahanshahi, Wong — ISPASS 2024), including every substrate the
//! methodology depends on.
//!
//! This crate is the facade: it re-exports the workspace's crates as
//! modules and offers a [`prelude`] for the common path. The layering:
//!
//! * [`simcore`] — deterministic discrete-event engine (time, RNG, dists);
//! * [`syscalls`] — syscall numbers, events, traces, profiles, phases;
//! * [`kernel`] — simulated OS: scheduler, channels, epoll, tracepoints;
//! * [`netem`] — tc-netem-style delay/jitter/loss with retransmission;
//! * [`ebpf`] — a real eBPF VM: ISA, assembler, verifier, interpreter, maps;
//! * [`workloads`] — the paper's nine latency-sensitive applications;
//! * [`core`] — **the contribution**: probes (native + bytecode), window
//!   metrics, and the three estimators (RPS / saturation / slack);
//! * [`analysis`] — regression, percentiles, charts for the harness;
//! * [`experiments`] — one module per paper table/figure.
//!
//! # Examples
//!
//! Observe a memcached-like server with an actual eBPF bytecode probe:
//!
//! ```
//! use kscope::prelude::*;
//!
//! let spec = kscope::workloads::data_caching();
//! let config = RunConfig::new(spec.paper_failure_rps * 0.5, 7).quick();
//! let window = Nanos::from_millis(100);
//!
//! let outcome = run_workload_with(&spec, &config, |sim| {
//!     let probe = WindowedObserver::new(
//!         BytecodeBackend::new_multi(sim.server_pids(), spec.profile.clone(), 10)
//!             .expect("generated programs verify"),
//!         window,
//!     );
//!     vec![Box::new(probe)]
//! });
//! assert!(outcome.client.completed > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use kscope_analysis as analysis;
pub use kscope_core as core;
pub use kscope_ebpf as ebpf;
pub use kscope_experiments as experiments;
pub use kscope_kernel as kernel;
pub use kscope_netem as netem;
pub use kscope_simcore as simcore;
pub use kscope_syscalls as syscalls;
pub use kscope_workloads as workloads;

/// The items most programs need.
pub mod prelude {
    pub use kscope_core::{
        Agent, BytecodeBackend, MetricBackend, NativeBackend, RpsEstimator, SaturationDetector,
        SlackEstimator, StackDelay, WindowMetrics, WindowedObserver,
    };
    pub use kscope_kernel::TracepointProbe;
    pub use kscope_netem::NetemConfig;
    pub use kscope_simcore::{Dist, Nanos, SimRng};
    pub use kscope_syscalls::{SyscallNo, SyscallProfile, SyscallRole, Trace};
    pub use kscope_workloads::{
        all_paper_workloads, run_workload, run_workload_with, RunConfig, ServerSim, WorkloadSpec,
    };
}
