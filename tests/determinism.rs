//! Cross-stack determinism: identical seeds must reproduce identical runs
//! bit for bit — traces, client stats, probe cells — and different seeds
//! must diverge. This is what makes every experiment in the repository
//! reproducible.

use kscope::core::{MetricBackend, NativeBackend, DEFAULT_SHIFT};
use kscope::prelude::*;

fn run_probed(seed: u64) -> (u64, u64, u64, Nanos, usize) {
    let spec = kscope::workloads::data_caching();
    let config = RunConfig::new(spec.paper_failure_rps * 0.7, seed).quick();
    let outcome = run_workload_with(&spec, &config, |sim| {
        vec![Box::new(WindowedObserver::new(
            NativeBackend::new_multi(sim.server_pids(), spec.profile.clone(), DEFAULT_SHIFT),
            Nanos::from_secs(3_600),
        )) as Box<dyn TracepointProbe>]
    });
    let mut kernel = outcome.kernel;
    let mut probe = kernel.tracing.detach(outcome.probes[0]).unwrap();
    let counters = probe
        .as_any_mut()
        .downcast_mut::<WindowedObserver<NativeBackend>>()
        .unwrap()
        .backend()
        .counters();
    (
        counters.send.count,
        counters.send.sum,
        counters.send.sum_sq,
        outcome.client.p99_latency,
        outcome.trace.len(),
    )
}

#[test]
fn identical_seeds_reproduce_identical_state() {
    let a = run_probed(1234);
    let b = run_probed(1234);
    assert_eq!(a, b);
}

#[test]
fn different_seeds_diverge() {
    let a = run_probed(1);
    let b = run_probed(2);
    assert_ne!(a, b);
}

#[test]
fn traces_are_byte_identical_across_reruns() {
    let spec = kscope::workloads::silo();
    let config = RunConfig::new(spec.paper_failure_rps * 0.4, 9).quick();
    let a = run_workload(&spec, &config, Vec::new());
    let b = run_workload(&spec, &config, Vec::new());
    assert_eq!(a.trace.events(), b.trace.events());
    assert_eq!(a.client.completed, b.client.completed);
    assert_eq!(a.client.p99_latency, b.client.p99_latency);
}
