//! End-to-end pipeline tests: workload → kernel tracepoints → probe →
//! windows → estimators, validated against client ground truth, for one
//! workload of each threading archetype — parameterized over every probe
//! backend (native Rust, bytecode interpreter, bytecode JIT).

use kscope::core::{BytecodeBackend, NativeBackend, DEFAULT_SHIFT};
use kscope::experiments::BackendKind;
use kscope::prelude::*;

const ALL_BACKENDS: [BackendKind; 3] = [
    BackendKind::Native,
    BackendKind::Bytecode,
    BackendKind::BytecodeJit,
];

/// Builds the probe for `backend` observing `pids`.
fn make_probe(
    backend: BackendKind,
    pids: Vec<u32>,
    profile: SyscallProfile,
    window: Nanos,
) -> Box<dyn TracepointProbe> {
    match backend {
        BackendKind::Native => Box::new(WindowedObserver::new(
            NativeBackend::new_multi(pids, profile, DEFAULT_SHIFT),
            window,
        )),
        BackendKind::Bytecode | BackendKind::BytecodeJit => {
            let mut probe = BytecodeBackend::new_multi(pids, profile, DEFAULT_SHIFT)
                .expect("generated probe programs must verify");
            if backend == BackendKind::BytecodeJit {
                probe = probe.with_jit();
            }
            Box::new(WindowedObserver::new(probe, window))
        }
    }
}

/// Detaches the probe and returns its measurement-period windows.
fn take_windows(
    backend: BackendKind,
    mut probe: Box<dyn TracepointProbe>,
    end: Nanos,
    warmup_end: Nanos,
) -> Vec<WindowMetrics> {
    let windows = match backend {
        BackendKind::Native => {
            let observer = probe
                .as_any_mut()
                .downcast_mut::<WindowedObserver<NativeBackend>>()
                .unwrap();
            observer.finish(end);
            observer.windows().to_vec()
        }
        BackendKind::Bytecode | BackendKind::BytecodeJit => {
            let observer = probe
                .as_any_mut()
                .downcast_mut::<WindowedObserver<BytecodeBackend>>()
                .unwrap();
            observer.finish(end);
            observer.windows().to_vec()
        }
    };
    windows
        .into_iter()
        .filter(|w| w.start >= warmup_end)
        .collect()
}

/// Runs one level under `backend` and returns (ground-truth rps, pooled
/// RPS_obsv, mean poll duration ns).
fn observe(spec: &WorkloadSpec, fraction: f64, seed: u64, backend: BackendKind) -> (f64, f64, f64) {
    let offered = spec.paper_failure_rps * fraction;
    let mut config = RunConfig::new(offered, seed);
    // Enough requests for a stable estimate even for slow workloads.
    config.measure = Nanos::from_secs_f64((1_500.0 / offered).clamp(0.5, 600.0));
    config.warmup = Nanos::from_secs_f64((spec.service_time.mean() / 1e9 * 30.0).max(0.2));
    config.collect_trace = false;
    let window = config.measure / 4;
    let outcome = run_workload_with(spec, &config, |sim| {
        vec![make_probe(
            backend,
            sim.server_pids(),
            spec.profile.clone(),
            window,
        )]
    });
    let mut kernel = outcome.kernel;
    let probe = kernel.tracing.detach(outcome.probes[0]).unwrap();
    let windows = take_windows(backend, probe, outcome.end, outcome.warmup_end);
    let rps_obsv = RpsEstimator::with_min_samples(64)
        .from_windows(&windows)
        .expect("enough samples");
    let polls: Vec<f64> = windows.iter().filter_map(|w| w.poll_mean_ns).collect();
    let poll_mean = polls.iter().sum::<f64>() / polls.len().max(1) as f64;
    (outcome.client.achieved_rps, rps_obsv, poll_mean)
}

/// Eq. 1 tracks ground truth for each threading archetype, after dividing
/// out the workload's known sends-per-request factor — under every probe
/// backend.
#[test]
fn rps_obsv_tracks_ground_truth_across_archetypes() {
    for spec in [
        kscope::workloads::silo(),         // worker pool (select)
        kscope::workloads::data_caching(), // worker pool (epoll)
        kscope::workloads::web_search(),   // two-stage, two processes
        kscope::workloads::triton_grpc(),  // dispatch pool
    ] {
        let sends_per_req = kscope::experiments::send_events_per_request(&spec);
        for backend in ALL_BACKENDS {
            let (real, obsv, _) = observe(&spec, 0.5, 17, backend);
            let estimated = obsv / sends_per_req;
            let err = (estimated - real).abs() / real;
            assert!(
                err < 0.15,
                "{} [{backend:?}]: RPS_obsv/k = {estimated:.1} vs real {real:.1} (err {err:.3})",
                spec.name
            );
        }
    }
}

/// Poll durations must collapse by an order of magnitude between light
/// load and the knee, for every archetype and every probe backend.
#[test]
fn poll_durations_collapse_toward_the_knee() {
    for (spec, backend) in [
        // Pair each archetype with a different backend (every backend is
        // still exercised; the full cross product lives in
        // backend_equivalence.rs, which holds the backends bit-identical).
        (kscope::workloads::img_dnn(), BackendKind::Native),
        (kscope::workloads::data_caching(), BackendKind::BytecodeJit),
        (kscope::workloads::triton_http(), BackendKind::Bytecode),
    ] {
        let (_, _, poll_light) = observe(&spec, 0.15, 23, backend);
        let (_, _, poll_heavy) = observe(&spec, 0.95, 23, backend);
        assert!(
            poll_light > 3.0 * poll_heavy,
            "{} [{backend:?}]: poll {poll_light:.0}ns -> {poll_heavy:.0}ns",
            spec.name
        );
    }
}

/// The agent's saturation signals stay quiet below the knee and fire in
/// overload — fed by the JIT-compiled bytecode probe.
#[test]
fn agent_flags_overload_but_not_light_load() {
    let spec = kscope::workloads::data_caching();
    let backend = BackendKind::BytecodeJit;
    let mut agent = Agent::new(
        RpsEstimator::with_min_samples(64),
        SaturationDetector::default(),
        SlackEstimator::default(),
    );
    let mut flagged_light = false;
    let mut flagged_overload = false;
    for (i, fraction) in [0.2, 0.4, 0.6, 0.8, 0.95, 1.15, 1.25].iter().enumerate() {
        let offered = spec.paper_failure_rps * fraction;
        let mut config = RunConfig::new(offered, 40 + i as u64);
        config.collect_trace = false;
        let outcome = run_workload_with(&spec, &config, |sim| {
            vec![make_probe(
                backend,
                sim.server_pids(),
                spec.profile.clone(),
                Nanos::from_millis(250),
            )]
        });
        let mut kernel = outcome.kernel;
        let probe = kernel.tracing.detach(outcome.probes[0]).unwrap();
        for w in take_windows(backend, probe, outcome.end, outcome.warmup_end) {
            let report = agent.ingest(w);
            if report.any_saturation() {
                if *fraction <= 0.8 {
                    flagged_light = true;
                } else if *fraction >= 1.15 {
                    flagged_overload = true;
                }
            }
        }
    }
    assert!(!flagged_light, "false positive below the knee");
    assert!(flagged_overload, "missed saturation in overload");
}

/// Ground truth itself behaves: p99 explodes past the knee.
#[test]
fn p99_explodes_past_the_knee() {
    let spec = kscope::workloads::specjbb();
    let light = {
        let config = RunConfig::new(spec.paper_failure_rps * 0.5, 3).quick();
        run_workload(&spec, &config, Vec::new()).client.p99_latency
    };
    let overload = {
        let config = RunConfig::new(spec.paper_failure_rps * 1.3, 3).quick();
        run_workload(&spec, &config, Vec::new()).client.p99_latency
    };
    assert!(
        overload > light * 5,
        "p99 light {light}, overload {overload}"
    );
}
