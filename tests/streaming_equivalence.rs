//! The streaming collector (ring-buffer raw events, the paper's
//! exploration mode) must agree with the kernel's own trace for the
//! filtered subset — an independent validation path for the whole probe
//! stack — and must visibly degrade (drops) when undersized, which is the
//! paper's motivation for computing metrics in kernel space.

use kscope::core::streaming::StreamingProbe;
use kscope::prelude::*;
use kscope::syscalls::Trace;

#[test]
fn streamed_trace_matches_kernel_trace() {
    let spec = kscope::workloads::data_caching();
    let config = RunConfig::new(spec.paper_failure_rps * 0.4, 21).quick();
    let profile = spec.profile.clone();

    let outcome = run_workload_with(&spec, &config, |sim| {
        let pid = sim.server_pids()[0];
        vec![Box::new(
            StreamingProbe::new(pid, profile.clone(), 1 << 22).expect("program verifies"),
        ) as Box<dyn TracepointProbe>]
    });

    let mut kernel = outcome.kernel;
    let mut probe = kernel.tracing.detach(outcome.probes[0]).unwrap();
    let streaming = probe
        .as_any_mut()
        .downcast_mut::<StreamingProbe>()
        .unwrap();
    assert_eq!(streaming.dropped(), 0, "buffer sized for the whole run");
    let events = streaming.drain();
    assert!(!events.is_empty());
    let streamed = StreamingProbe::reconstruct(&events);

    // The kernel's own (unsliced) trace, restricted to what the streamer
    // filters for: the profile's request syscalls.
    let reference: Trace = kernel
        .tracing
        .trace()
        .iter()
        .copied()
        .filter(|e| profile.is_request_syscall(e.no))
        .collect();

    assert_eq!(streamed.len(), reference.len());
    for (a, b) in streamed.iter().zip(reference.iter()) {
        assert_eq!(a.tid, b.tid);
        assert_eq!(a.no, b.no);
        assert_eq!(a.enter, b.enter);
        assert_eq!(a.exit, b.exit);
    }
    // And the streamed trace supports the same Eq. 1 computation.
    let sends = streamed.filter_role(&profile, kscope::syscalls::SyscallRole::Send);
    let rps = sends.completion_rate().expect("enough sends");
    assert!(
        (rps - outcome.client.achieved_rps).abs() / outcome.client.achieved_rps < 0.25,
        "streamed rps {rps:.0} vs real {:.0}",
        outcome.client.achieved_rps
    );
}

#[test]
fn undersized_ring_buffer_drops_under_load() {
    let spec = kscope::workloads::data_caching();
    let config = RunConfig::new(spec.paper_failure_rps * 0.6, 22).quick();
    let outcome = run_workload_with(&spec, &config, |sim| {
        let pid = sim.server_pids()[0];
        // A tiny buffer that is never drained mid-run: guaranteed overflow.
        vec![Box::new(
            StreamingProbe::new(pid, spec.profile.clone(), 256).expect("program verifies"),
        ) as Box<dyn TracepointProbe>]
    });
    let mut kernel = outcome.kernel;
    let mut probe = kernel.tracing.detach(outcome.probes[0]).unwrap();
    let streaming = probe
        .as_any_mut()
        .downcast_mut::<StreamingProbe>()
        .unwrap();
    assert!(
        streaming.dropped() > 1_000,
        "expected heavy drops, got {}",
        streaming.dropped()
    );
}
