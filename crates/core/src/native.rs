//! The native metric backend: the paper's eBPF logic as a plain Rust probe.
//!
//! Semantically identical to the bytecode backend (`crate::bytecode`) —
//! same filtering, same integer arithmetic, same cell layout — but executed
//! directly. This is what a JIT-compiled eBPF program effectively is; the
//! per-event costs model a compiled probe, while the bytecode backend
//! models an interpreted one.

use std::collections::HashMap;

use kscope_simcore::Nanos;
use kscope_syscalls::{Pid, SyscallProfile, SyscallRole, TracePhase, TracepointCtx};

use crate::bytecode::StackCounters;
use crate::counters::RawCounters;
use crate::observer::MetricBackend;

/// Cost charged for a tracepoint firing that fails the pid/syscall filter.
pub const FILTER_COST: Nanos = Nanos::from_nanos(40);
/// Additional cost charged when an event matches and updates the cells.
pub const UPDATE_COST: Nanos = Nanos::from_nanos(160);

/// Native mirror of the netstack probe pair's state (the `inflight_stack`
/// hash plus the cumulative `stack_stats`/`stack_hist` cells of the
/// bytecode backend).
#[derive(Debug, Clone)]
struct NetStackState {
    /// Request id -> NIC arrival timestamp (`ktime - stage_ns` at the
    /// `net_rx_softirq` firing), the `inflight_stack` map.
    inflight: HashMap<u64, u64>,
    /// Cumulative log2 histogram of scaled time-in-stack.
    hist: [u64; 64],
    counters: StackCounters,
}

impl NetStackState {
    fn new() -> NetStackState {
        NetStackState {
            inflight: HashMap::new(),
            hist: [0; 64],
            counters: StackCounters::default(),
        }
    }
}

/// Native implementation of the observability probe.
///
/// # Examples
///
/// ```
/// use kscope_core::{MetricBackend, NativeBackend};
/// use kscope_simcore::Nanos;
/// use kscope_syscalls::{pid_tgid, NetCtx, SyscallNo, SyscallProfile, TracePhase, TracepointCtx};
///
/// let mut probe = NativeBackend::new(1200, SyscallProfile::data_caching(), 10);
/// for i in 1..=3u64 {
///     probe.on_event(&TracepointCtx {
///         phase: TracePhase::Exit,
///         no: SyscallNo::SENDMSG,
///         pid_tgid: pid_tgid(1200, 1201),
///         ktime: Nanos::from_micros(500 * i),
///         ret: 64,
///         net: NetCtx::NONE,
///     });
/// }
/// assert_eq!(probe.counters().send.count, 2); // two deltas from three sends
/// ```
#[derive(Debug, Clone)]
pub struct NativeBackend {
    tgids: Vec<Pid>,
    profile: SyscallProfile,
    counters: RawCounters,
    /// Poll-entry timestamps keyed by packed `pid_tgid` (the `start` map
    /// of Listing 1).
    poll_start: HashMap<u64, u64>,
    /// Netstack probe state when attached ([`NativeBackend::with_netstack`]).
    netstack: Option<NetStackState>,
}

impl NativeBackend {
    /// Creates a probe filtering for `tgid`, classifying via `profile`,
    /// scaling deltas by `>> shift`.
    pub fn new(tgid: Pid, profile: SyscallProfile, shift: u32) -> NativeBackend {
        NativeBackend::new_multi(vec![tgid], profile, shift)
    }

    /// Creates a probe observing several processes at once (multi-stage
    /// applications like Web Search: §V-B aggregates all of an
    /// application's processes into one unified stream).
    ///
    /// # Panics
    ///
    /// Panics if `tgids` is empty.
    pub fn new_multi(tgids: Vec<Pid>, profile: SyscallProfile, shift: u32) -> NativeBackend {
        assert!(!tgids.is_empty(), "observe at least one process");
        NativeBackend {
            tgids,
            profile,
            counters: RawCounters::new(shift),
            poll_start: HashMap::new(),
            netstack: None,
        }
    }

    /// Attaches the native mirror of the netstack probe pair: the backend
    /// then handles [`TracePhase::NetRxSoftirq`] / [`TracePhase::SockQueueDrain`]
    /// firings with the exact integer arithmetic of the bytecode programs
    /// (same `>> shift` scaling, same log2 bucketing, same miss handling).
    /// Net events are handled *before* the tgid filter — softirq context
    /// has no current task, so `pid_tgid` is 0 there.
    pub fn with_netstack(mut self) -> NativeBackend {
        self.netstack = Some(NetStackState::new());
        self
    }

    /// The processes being observed.
    pub fn tgids(&self) -> &[Pid] {
        &self.tgids
    }

    /// Decoded cumulative `stack_stats` cells, when the netstack probe is
    /// attached.
    pub fn stack_counters(&self) -> Option<StackCounters> {
        self.netstack.as_ref().map(|ns| ns.counters)
    }

    /// Handles one net-phase firing (the two netstack tracepoints).
    fn on_net_event(&mut self, ctx: &TracepointCtx) -> Nanos {
        // No netstack programs attached: in real eBPF nothing runs at an
        // un-attached tracepoint, so no cost either.
        let Some(ns) = self.netstack.as_mut() else {
            return Nanos::ZERO;
        };
        let now = ctx.ktime.as_nanos();
        let shift = self.counters.send.shift();
        match ctx.phase {
            TracePhase::NetRxSoftirq => {
                // NIC arrival = ktime - in-ring wait, exactly as the
                // bytecode rx program computes it.
                ns.inflight
                    .insert(ctx.net.request, now.wrapping_sub(ctx.net.stage_ns));
                FILTER_COST + UPDATE_COST
            }
            TracePhase::SockQueueDrain => match ns.inflight.remove(&ctx.net.request) {
                Some(nic_at) => {
                    let scaled = now.wrapping_sub(nic_at) >> shift;
                    ns.counters.count = ns.counters.count.wrapping_add(1);
                    ns.counters.sum = ns.counters.sum.wrapping_add(scaled);
                    ns.counters.sumsq =
                        ns.counters.sumsq.wrapping_add(scaled.wrapping_mul(scaled));
                    // floor(log2(max(scaled, 1))), the bit ladder's result.
                    ns.hist[63 - (scaled | 1).leading_zeros() as usize] += 1;
                    FILTER_COST + UPDATE_COST
                }
                None => {
                    ns.counters.misses = ns.counters.misses.wrapping_add(1);
                    FILTER_COST
                }
            },
            TracePhase::Enter | TracePhase::Exit => {
                unreachable!("on_net_event called for a syscall phase")
            }
        }
    }
}

impl MetricBackend for NativeBackend {
    fn on_event(&mut self, ctx: &TracepointCtx) -> Nanos {
        if ctx.phase.is_net() {
            return self.on_net_event(ctx);
        }
        if !self.tgids.contains(&ctx.tgid()) {
            return FILTER_COST;
        }
        let Some(role) = self.profile.role_of(ctx.no) else {
            return FILTER_COST;
        };
        let now = ctx.ktime.as_nanos();
        match (ctx.phase, role) {
            (TracePhase::Enter, SyscallRole::Poll) => {
                self.poll_start.insert(ctx.pid_tgid, now);
                FILTER_COST + UPDATE_COST
            }
            (TracePhase::Enter, _) => FILTER_COST,
            // Net phases were dispatched above before the tgid filter.
            (TracePhase::NetRxSoftirq | TracePhase::SockQueueDrain, _) => {
                unreachable!("net phases handled before the filter")
            }
            (TracePhase::Exit, role) => {
                match role {
                    SyscallRole::Send => {
                        self.counters.events = self.counters.events.wrapping_add(1);
                        let last = self.counters.send_last_ts;
                        self.counters.send_last_ts = now;
                        if last != 0 {
                            self.counters.send.push(now.wrapping_sub(last));
                        }
                    }
                    SyscallRole::Receive => {
                        self.counters.events = self.counters.events.wrapping_add(1);
                        let last = self.counters.recv_last_ts;
                        self.counters.recv_last_ts = now;
                        if last != 0 {
                            self.counters.recv.push(now.wrapping_sub(last));
                        }
                    }
                    SyscallRole::Poll => {
                        // A poll exit without a recorded entry (probe
                        // attached mid-wait) is dropped entirely, matching
                        // the bytecode program's early exit.
                        if let Some(start) = self.poll_start.get(&ctx.pid_tgid) {
                            self.counters.events = self.counters.events.wrapping_add(1);
                            self.counters.poll.push(now.wrapping_sub(*start));
                        }
                    }
                }
                FILTER_COST + UPDATE_COST
            }
        }
    }

    fn counters(&self) -> RawCounters {
        self.counters
    }

    fn reset_window(&mut self) {
        self.counters.reset_window();
    }

    fn backend_name(&self) -> &'static str {
        "native"
    }

    fn stack_histogram(&self) -> Option<[u64; 64]> {
        self.netstack.as_ref().map(|ns| ns.hist)
    }

    fn stack_counters(&self) -> Option<StackCounters> {
        NativeBackend::stack_counters(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kscope_syscalls::{pid_tgid, NetCtx, SyscallNo};

    fn ctx(phase: TracePhase, no: SyscallNo, tid: u32, t_us: u64) -> TracepointCtx {
        TracepointCtx {
            phase,
            no,
            pid_tgid: pid_tgid(1200, tid),
            ktime: Nanos::from_micros(t_us),
            ret: 1,
            net: NetCtx::NONE,
        }
    }

    fn probe() -> NativeBackend {
        NativeBackend::new(1200, SyscallProfile::data_caching(), 0)
    }

    #[test]
    fn other_processes_are_filtered() {
        let mut p = probe();
        let mut foreign = ctx(TracePhase::Exit, SyscallNo::SENDMSG, 1, 10);
        foreign.pid_tgid = pid_tgid(9999, 1);
        assert_eq!(p.on_event(&foreign), FILTER_COST);
        assert_eq!(p.counters().events, 0);
    }

    #[test]
    fn unrelated_syscalls_are_filtered() {
        let mut p = probe();
        assert_eq!(
            p.on_event(&ctx(TracePhase::Exit, SyscallNo::FUTEX, 1, 10)),
            FILTER_COST
        );
        assert_eq!(p.counters().events, 0);
    }

    #[test]
    fn send_deltas_accumulate() {
        let mut p = probe();
        for t in [100, 300, 600] {
            p.on_event(&ctx(TracePhase::Exit, SyscallNo::SENDMSG, 1, t));
        }
        let c = p.counters();
        assert_eq!(c.send.count, 2);
        assert_eq!(c.send.sum, 200_000 + 300_000);
        assert_eq!(c.send_last_ts, 600_000);
        assert_eq!(c.events, 3);
    }

    #[test]
    fn recv_deltas_are_separate_from_send() {
        let mut p = probe();
        p.on_event(&ctx(TracePhase::Exit, SyscallNo::READ, 1, 100));
        p.on_event(&ctx(TracePhase::Exit, SyscallNo::SENDMSG, 1, 150));
        p.on_event(&ctx(TracePhase::Exit, SyscallNo::READ, 1, 300));
        let c = p.counters();
        assert_eq!(c.recv.count, 1);
        assert_eq!(c.recv.sum, 200_000);
        assert_eq!(c.send.count, 0);
    }

    #[test]
    fn poll_duration_pairs_enter_and_exit_per_thread() {
        let mut p = probe();
        p.on_event(&ctx(TracePhase::Enter, SyscallNo::EPOLL_WAIT, 1, 100));
        p.on_event(&ctx(TracePhase::Enter, SyscallNo::EPOLL_WAIT, 2, 120));
        p.on_event(&ctx(TracePhase::Exit, SyscallNo::EPOLL_WAIT, 2, 200));
        p.on_event(&ctx(TracePhase::Exit, SyscallNo::EPOLL_WAIT, 1, 400));
        let c = p.counters();
        assert_eq!(c.poll.count, 2);
        assert_eq!(c.poll.sum, 80_000 + 300_000);
    }

    #[test]
    fn poll_exit_without_enter_is_ignored() {
        let mut p = probe();
        p.on_event(&ctx(TracePhase::Exit, SyscallNo::EPOLL_WAIT, 3, 500));
        assert_eq!(p.counters().poll.count, 0);
        // Dropped entirely, matching the bytecode program's early exit.
        assert_eq!(p.counters().events, 0);
    }

    #[test]
    fn window_reset_preserves_delta_chain() {
        let mut p = probe();
        p.on_event(&ctx(TracePhase::Exit, SyscallNo::SENDMSG, 1, 100));
        p.on_event(&ctx(TracePhase::Exit, SyscallNo::SENDMSG, 1, 200));
        p.reset_window();
        assert_eq!(p.counters().send.count, 0);
        p.on_event(&ctx(TracePhase::Exit, SyscallNo::SENDMSG, 1, 350));
        // Delta spans the reset: 350 - 200 = 150us.
        let c = p.counters();
        assert_eq!(c.send.count, 1);
        assert_eq!(c.send.sum, 150_000);
    }
}
