//! Mergeable time-in-stack estimator fed by the netstack probe pair.
//!
//! The `kscope_net_rx`/`kscope_sock_drain` programs (see
//! [`BytecodeBackend::with_netstack`](crate::BytecodeBackend::with_netstack))
//! maintain cumulative cells: a [`StackCounters`] scalar block and a
//! 64-bucket log2 histogram of scaled time-in-stack per request.
//! [`StackDelay`] is the userspace view of those cells — a snapshot that
//! merges across hosts exactly like [`Log2Hist`] and
//! [`RawCounters`](crate::RawCounters) do, so a fleet collector can fold
//! per-host stack-delay state up a fan-in tree without ever touching
//! per-request samples.
//!
//! Merging is exact: bucket-wise addition plus wrapping scalar addition
//! reproduces, bit for bit, the state a single probe would have built had
//! it seen every request itself. That property is what makes the fleet
//! rollup independent of `--jobs` and fan-in shape.

use crate::bytecode::StackCounters;
use crate::hist::Log2Hist;
use crate::observer::MetricBackend;

/// Mergeable snapshot of the netstack probe's cumulative cells.
///
/// # Examples
///
/// ```
/// use kscope_core::StackDelay;
///
/// let mut a = StackDelay::new(10);
/// let b = StackDelay::new(10);
/// a.merge(&b);
/// assert!(a.is_empty());
/// assert_eq!(a.shift(), 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackDelay {
    hist: Log2Hist,
    counters: StackCounters,
}

impl StackDelay {
    /// An empty estimator whose samples were scaled by `raw >> shift`
    /// before bucketing, matching the probe's scaling shift.
    pub fn new(shift: u32) -> StackDelay {
        StackDelay {
            hist: Log2Hist::new(shift),
            counters: StackCounters::default(),
        }
    }

    /// Snapshots the cumulative stack cells of `backend`, or `None` if
    /// the backend does not carry the netstack probe pair.
    ///
    /// `shift` must be the scaling shift the probe was built with — the
    /// cells store already-scaled values and do not record it themselves,
    /// mirroring a real BPF map.
    pub fn from_backend<B: MetricBackend>(shift: u32, backend: &B) -> Option<StackDelay> {
        let buckets = backend.stack_histogram()?;
        let counters = backend.stack_counters()?;
        Some(StackDelay {
            hist: Log2Hist::from_buckets(shift, buckets),
            counters,
        })
    }

    /// Rebuilds an estimator from wire parts (fleet envelope decode).
    pub fn from_parts(shift: u32, buckets: [u64; 64], counters: StackCounters) -> StackDelay {
        StackDelay {
            hist: Log2Hist::from_buckets(shift, buckets),
            counters,
        }
    }

    /// Folds `other` into `self`: bucket-wise histogram addition plus
    /// wrapping scalar addition, the same arithmetic the probe itself
    /// uses — so merge order can never change the result.
    ///
    /// # Panics
    ///
    /// Panics if the scaling shifts differ; merging histograms with
    /// different bucket widths would be silently wrong.
    pub fn merge(&mut self, other: &StackDelay) {
        self.hist.merge(&other.hist);
        self.counters.count = self.counters.count.wrapping_add(other.counters.count);
        self.counters.sum = self.counters.sum.wrapping_add(other.counters.sum);
        self.counters.sumsq = self.counters.sumsq.wrapping_add(other.counters.sumsq);
        self.counters.misses = self.counters.misses.wrapping_add(other.counters.misses);
    }

    /// The scaling shift samples were divided by before bucketing.
    pub fn shift(&self) -> u32 {
        self.hist.shift()
    }

    /// The time-in-stack log2 histogram (scaled buckets).
    pub fn hist(&self) -> &Log2Hist {
        &self.hist
    }

    /// The scalar cells (count/sum/sumsq/misses, scaled domain).
    pub fn counters(&self) -> StackCounters {
        self.counters
    }

    /// Completed NIC-to-drain samples.
    pub fn count(&self) -> u64 {
        self.counters.count
    }

    /// Drain events whose request had no in-flight rx entry.
    pub fn misses(&self) -> u64 {
        self.counters.misses
    }

    /// True when no drain event (hit or miss) has been observed.
    pub fn is_empty(&self) -> bool {
        self.counters.count == 0 && self.counters.misses == 0
    }

    /// Mean time-in-stack in nanoseconds (unscaled), `None` when empty.
    ///
    /// The scaled-domain mean is multiplied back by `2^shift`; the
    /// result inherits the probe's quantization (up to `2^shift - 1` ns
    /// truncation per sample).
    pub fn mean_ns(&self) -> Option<f64> {
        if self.counters.count == 0 {
            return None;
        }
        let mean_scaled = self.counters.sum as f64 / self.counters.count as f64;
        Some(mean_scaled * (1u64 << self.shift()) as f64)
    }

    /// Population standard deviation of time-in-stack in nanoseconds,
    /// `None` when empty.
    pub fn std_dev_ns(&self) -> Option<f64> {
        if self.counters.count == 0 {
            return None;
        }
        let n = self.counters.count as f64;
        let mean = self.counters.sum as f64 / n;
        let var = (self.counters.sumsq as f64 / n - mean * mean).max(0.0);
        Some(var.sqrt() * (1u64 << self.shift()) as f64)
    }

    /// Fraction of drain events that found their rx entry:
    /// `count / (count + misses)`, `None` when nothing was observed.
    ///
    /// Below 1.0 means the in-flight map evicted entries (or rx edges
    /// were dropped) and the histogram under-covers the true traffic.
    pub fn coverage(&self) -> Option<f64> {
        let total = self.counters.count + self.counters.misses;
        if total == 0 {
            return None;
        }
        Some(self.counters.count as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::BytecodeBackend;
    use crate::native::NativeBackend;
    use kscope_simcore::Nanos;
    use kscope_syscalls::{NetCtx, SyscallNo, SyscallProfile, TracePhase, TracepointCtx};

    fn net_ctx(phase: TracePhase, request: u64, stage_ns: u64, arg: u64, t_ns: u64) -> TracepointCtx {
        TracepointCtx {
            phase,
            no: SyscallNo::from_raw(u32::MAX),
            pid_tgid: 0,
            ktime: Nanos::from_nanos(t_ns),
            ret: 0,
            net: NetCtx {
                request,
                stage_ns,
                arg,
            },
        }
    }

    fn drive(backend: &mut impl MetricBackend, pairs: &[(u64, u64, u64)]) {
        // (request, rx_at, drain_at)
        for &(req, rx_at, _) in pairs {
            backend.on_event(&net_ctx(TracePhase::NetRxSoftirq, req, 0, 64, rx_at));
        }
        for &(req, _, drain_at) in pairs {
            backend.on_event(&net_ctx(TracePhase::SockQueueDrain, req, 0, 1, drain_at));
        }
    }

    #[test]
    fn from_backend_requires_netstack() {
        let plain = NativeBackend::new(7, SyscallProfile::data_caching(), 0);
        assert!(StackDelay::from_backend(0, &plain).is_none());
        let with = NativeBackend::new(7, SyscallProfile::data_caching(), 0).with_netstack();
        let sd = StackDelay::from_backend(0, &with).expect("netstack attached");
        assert!(sd.is_empty());
        assert_eq!(sd.mean_ns(), None);
        assert_eq!(sd.coverage(), None);
    }

    #[test]
    fn mean_and_coverage_from_native_backend() {
        let mut b = NativeBackend::new(7, SyscallProfile::data_caching(), 0).with_netstack();
        drive(&mut b, &[(1, 1_000, 3_000), (2, 1_000, 5_000)]);
        // A drain with no rx entry is a miss.
        b.on_event(&net_ctx(TracePhase::SockQueueDrain, 99, 0, 1, 6_000));
        let sd = StackDelay::from_backend(0, &b).unwrap();
        assert_eq!(sd.count(), 2);
        assert_eq!(sd.misses(), 1);
        assert!((sd.mean_ns().unwrap() - 3_000.0).abs() < 1e-9);
        assert!((sd.coverage().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!(sd.std_dev_ns().unwrap() > 0.0);
    }

    #[test]
    fn merge_equals_single_stream() {
        // Two halves of a stream, merged, must equal the whole stream
        // observed by one probe — the fleet fan-in invariant.
        let whole: Vec<(u64, u64, u64)> = (0..20)
            .map(|i| (i, 1_000 * i, 1_000 * i + 500 + 137 * i))
            .collect();
        let (left, right) = whole.split_at(11);

        let mut b_whole = NativeBackend::new(7, SyscallProfile::data_caching(), 0).with_netstack();
        drive(&mut b_whole, &whole);
        let sd_whole = StackDelay::from_backend(0, &b_whole).unwrap();

        let mut b_left = NativeBackend::new(7, SyscallProfile::data_caching(), 0).with_netstack();
        drive(&mut b_left, left);
        let mut b_right = NativeBackend::new(7, SyscallProfile::data_caching(), 0).with_netstack();
        drive(&mut b_right, right);
        let mut merged = StackDelay::from_backend(0, &b_left).unwrap();
        merged.merge(&StackDelay::from_backend(0, &b_right).unwrap());

        assert_eq!(merged, sd_whole);
    }

    #[test]
    fn bytecode_and_native_snapshots_agree() {
        let pairs: Vec<(u64, u64, u64)> = (1..=8).map(|i| (i, 10_000 * i, 10_000 * i + 777 * i)).collect();
        let mut native = NativeBackend::new(7, SyscallProfile::data_caching(), 10).with_netstack();
        drive(&mut native, &pairs);
        let mut bytecode = BytecodeBackend::new(7, SyscallProfile::data_caching(), 10)
            .unwrap()
            .with_netstack()
            .unwrap();
        drive(&mut bytecode, &pairs);
        assert_eq!(
            StackDelay::from_backend(10, &native).unwrap(),
            StackDelay::from_backend(10, &bytecode).unwrap(),
        );
    }

    #[test]
    fn from_parts_round_trips() {
        let mut b = NativeBackend::new(7, SyscallProfile::data_caching(), 0).with_netstack();
        drive(&mut b, &[(1, 0, 9_999)]);
        let sd = StackDelay::from_backend(0, &b).unwrap();
        let rebuilt = StackDelay::from_parts(0, *sd.hist().buckets(), sd.counters());
        assert_eq!(rebuilt, sd);
    }

    #[test]
    #[should_panic(expected = "different scales")]
    fn merge_rejects_shift_mismatch() {
        let mut a = StackDelay::new(0);
        a.merge(&StackDelay::new(10));
    }
}
