//! The observer: backend abstraction plus the windowing tracepoint probe.
//!
//! A [`MetricBackend`] is "the eBPF program": it sees every tracepoint
//! firing and maintains the metric cells. The [`WindowedObserver`] wraps a
//! backend as a kernel [`TracepointProbe`] and plays the userspace agent's
//! role: at fixed boundaries it snapshots the cells into a
//! [`WindowMetrics`] history and resets the windowed counters — exactly the
//! poll-and-reset cycle a real collector runs against a BPF map.

use kscope_kernel::TracepointProbe;
use kscope_simcore::Nanos;
use kscope_syscalls::TracepointCtx;

use crate::counters::{RawCounters, WindowMetrics};

/// One metric-maintaining implementation (native Rust or eBPF bytecode).
pub trait MetricBackend {
    /// Handles one tracepoint firing, returning its execution cost.
    fn on_event(&mut self, ctx: &TracepointCtx) -> Nanos;

    /// Current cell contents.
    fn counters(&self) -> RawCounters;

    /// Zeroes the windowed cells (keeps last-timestamp chaining).
    fn reset_window(&mut self);

    /// Short backend label for diagnostics.
    fn backend_name(&self) -> &'static str;

    /// The in-probe log2 histogram of scaled poll durations, when the
    /// backend maintains one (bucket `i` counts polls whose scaled
    /// duration has `floor(log2) == i`). Backends without in-kernel
    /// aggregation return `None`, the default.
    fn poll_histogram(&self) -> Option<[u64; 64]> {
        None
    }
}

/// Windowing wrapper: backend + agent behaviour, attachable to the kernel's
/// tracepoints.
///
/// # Examples
///
/// ```
/// use kscope_core::{NativeBackend, WindowedObserver};
/// use kscope_simcore::Nanos;
/// use kscope_syscalls::SyscallProfile;
///
/// let backend = NativeBackend::new(1200, SyscallProfile::data_caching(), 10);
/// let observer = WindowedObserver::new(backend, Nanos::from_millis(200));
/// assert_eq!(observer.windows().len(), 0);
/// ```
#[derive(Debug)]
pub struct WindowedObserver<B> {
    backend: B,
    window: Nanos,
    window_start: Nanos,
    history: Vec<WindowMetrics>,
}

impl<B: MetricBackend> WindowedObserver<B> {
    /// Wraps `backend` with a fixed observation window.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(backend: B, window: Nanos) -> WindowedObserver<B> {
        assert!(!window.is_zero(), "observation window must be non-zero");
        WindowedObserver {
            backend,
            window,
            window_start: Nanos::ZERO,
            history: Vec::new(),
        }
    }

    /// Completed windows so far.
    pub fn windows(&self) -> &[WindowMetrics] {
        &self.history
    }

    /// The wrapped backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access to the wrapped backend.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Closes the currently open window at `now` (end of run).
    pub fn finish(&mut self, now: Nanos) {
        self.roll_to(now, true);
    }

    /// Consumes the observer, returning its window history.
    pub fn into_windows(self) -> Vec<WindowMetrics> {
        self.history
    }

    /// Rolls complete windows up to `now`; `force` closes a partial one.
    fn roll_to(&mut self, now: Nanos, force: bool) {
        while now >= self.window_start + self.window {
            let end = self.window_start + self.window;
            let metrics =
                WindowMetrics::from_counters(self.window_start, end, &self.backend.counters());
            self.history.push(metrics);
            self.backend.reset_window();
            self.window_start = end;
        }
        if force && now > self.window_start {
            let metrics =
                WindowMetrics::from_counters(self.window_start, now, &self.backend.counters());
            self.history.push(metrics);
            self.backend.reset_window();
            self.window_start = now;
        }
    }
}

impl<B: MetricBackend + 'static> TracepointProbe for WindowedObserver<B> {
    fn name(&self) -> &str {
        self.backend.backend_name()
    }

    fn fire(&mut self, ctx: &TracepointCtx) -> Nanos {
        self.roll_to(ctx.ktime, false);
        self.backend.on_event(ctx)
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::NativeBackend;
    use kscope_syscalls::{pid_tgid, SyscallNo, SyscallProfile, TracePhase};

    fn send_exit(t_us: u64) -> TracepointCtx {
        TracepointCtx {
            phase: TracePhase::Exit,
            no: SyscallNo::SENDMSG,
            pid_tgid: pid_tgid(7, 7),
            ktime: Nanos::from_micros(t_us),
            ret: 1,
        }
    }

    fn observer(window_ms: u64) -> WindowedObserver<NativeBackend> {
        WindowedObserver::new(
            NativeBackend::new(7, SyscallProfile::data_caching(), 0),
            Nanos::from_millis(window_ms),
        )
    }

    #[test]
    fn windows_roll_at_boundaries() {
        let mut obs = observer(1);
        // Sends every 100us for 3.05ms => windows at 1ms, 2ms, 3ms.
        for i in 0..31 {
            obs.fire(&send_exit(i * 100));
        }
        assert_eq!(obs.windows().len(), 3);
        for w in obs.windows() {
            let rps = w.rps_obsv.unwrap();
            assert!((rps - 10_000.0).abs() < 100.0, "rps {rps}");
        }
    }

    #[test]
    fn deltas_span_window_boundaries() {
        let mut obs = observer(1);
        obs.fire(&send_exit(950));
        obs.fire(&send_exit(1_050)); // delta 100us crosses the 1ms boundary
        obs.finish(Nanos::from_micros(1_100));
        let windows = obs.windows();
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].send_samples, 0);
        assert_eq!(windows[1].send_samples, 1);
    }

    #[test]
    fn finish_closes_partial_window() {
        let mut obs = observer(10);
        obs.fire(&send_exit(100));
        obs.fire(&send_exit(200));
        obs.finish(Nanos::from_micros(500));
        assert_eq!(obs.windows().len(), 1);
        assert_eq!(obs.windows()[0].end, Nanos::from_micros(500));
        assert_eq!(obs.windows()[0].send_samples, 1);
    }

    #[test]
    fn idle_gaps_produce_empty_windows() {
        let mut obs = observer(1);
        obs.fire(&send_exit(100));
        obs.fire(&send_exit(4_500));
        let windows = obs.windows();
        assert_eq!(windows.len(), 4);
        assert_eq!(windows[1].send_samples, 0);
        assert_eq!(windows[2].send_samples, 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_window_rejected() {
        observer(0);
    }
}
