//! The observer: backend abstraction plus the windowing tracepoint probe.
//!
//! A [`MetricBackend`] is "the eBPF program": it sees every tracepoint
//! firing and maintains the metric cells. The [`WindowedObserver`] wraps a
//! backend as a kernel [`TracepointProbe`] and plays the userspace agent's
//! role: at fixed boundaries it snapshots the cells into a
//! [`WindowMetrics`] history and resets the windowed counters — exactly the
//! poll-and-reset cycle a real collector runs against a BPF map.

use kscope_kernel::TracepointProbe;
use kscope_simcore::Nanos;
use kscope_syscalls::TracepointCtx;

use crate::bytecode::StackCounters;
use crate::counters::{RawCounters, WindowMetrics};

/// One metric-maintaining implementation (native Rust or eBPF bytecode).
pub trait MetricBackend {
    /// Handles one tracepoint firing, returning its execution cost.
    fn on_event(&mut self, ctx: &TracepointCtx) -> Nanos;

    /// Current cell contents.
    fn counters(&self) -> RawCounters;

    /// Zeroes the windowed cells (keeps last-timestamp chaining).
    fn reset_window(&mut self);

    /// Short backend label for diagnostics.
    fn backend_name(&self) -> &'static str;

    /// The in-probe log2 histogram of scaled poll durations, when the
    /// backend maintains one (bucket `i` counts polls whose scaled
    /// duration has `floor(log2) == i`). Backends without in-kernel
    /// aggregation return `None`, the default.
    fn poll_histogram(&self) -> Option<[u64; 64]> {
        None
    }

    /// The in-probe log2 histogram of scaled time-in-stack per request
    /// (NIC arrival to socket-queue drain), when the backend carries the
    /// netstack probe pair. Unlike the windowed cells this histogram is
    /// *cumulative* — [`MetricBackend::reset_window`] never clears it —
    /// so callers read it once at report time. Backends without the
    /// netstack programs return `None`, the default.
    fn stack_histogram(&self) -> Option<[u64; 64]> {
        None
    }

    /// The netstack probe's scalar cells (count/sum/sumsq/misses of
    /// scaled time-in-stack), cumulative like
    /// [`MetricBackend::stack_histogram`]. `None` without the netstack
    /// programs, the default.
    fn stack_counters(&self) -> Option<StackCounters> {
        None
    }
}

/// Windowing wrapper: backend + agent behaviour, attachable to the kernel's
/// tracepoints.
///
/// # Examples
///
/// ```
/// use kscope_core::{NativeBackend, WindowedObserver};
/// use kscope_simcore::Nanos;
/// use kscope_syscalls::SyscallProfile;
///
/// let backend = NativeBackend::new(1200, SyscallProfile::data_caching(), 10);
/// let observer = WindowedObserver::new(backend, Nanos::from_millis(200));
/// assert_eq!(observer.windows().len(), 0);
/// ```
#[derive(Debug)]
pub struct WindowedObserver<B> {
    backend: B,
    window: Nanos,
    window_start: Nanos,
    history: Vec<WindowMetrics>,
    raw_history: Vec<RawCounters>,
    hist_history: Vec<Option<[u64; 64]>>,
}

impl<B: MetricBackend> WindowedObserver<B> {
    /// Wraps `backend` with a fixed observation window.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(backend: B, window: Nanos) -> WindowedObserver<B> {
        assert!(!window.is_zero(), "observation window must be non-zero");
        WindowedObserver {
            backend,
            window,
            window_start: Nanos::ZERO,
            history: Vec::new(),
            raw_history: Vec::new(),
            hist_history: Vec::new(),
        }
    }

    /// Completed windows so far.
    pub fn windows(&self) -> &[WindowMetrics] {
        &self.history
    }

    /// Raw counter snapshots for the completed windows, index-aligned
    /// with [`WindowedObserver::windows`]. These are the mergeable
    /// sufficient statistics ([`RawCounters::merge`]) a fleet host
    /// accumulates into the cumulative state it reports upstream.
    pub fn raw_windows(&self) -> &[RawCounters] {
        &self.raw_history
    }

    /// In-probe poll-duration histogram snapshots for the completed
    /// windows, index-aligned with [`WindowedObserver::windows`]; `None`
    /// entries come from backends without in-kernel aggregation.
    pub fn window_histograms(&self) -> &[Option<[u64; 64]>] {
        &self.hist_history
    }

    /// The wrapped backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access to the wrapped backend.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Closes the currently open window at `now` (end of run).
    pub fn finish(&mut self, now: Nanos) {
        self.roll_to(now, true);
    }

    /// Consumes the observer, returning its window history.
    pub fn into_windows(self) -> Vec<WindowMetrics> {
        self.history
    }

    /// Rolls complete windows up to `now`; `force` closes a partial one.
    fn roll_to(&mut self, now: Nanos, force: bool) {
        while now >= self.window_start + self.window {
            let end = self.window_start + self.window;
            self.close_window(end);
        }
        if force && now > self.window_start {
            self.close_window(now);
        }
    }

    /// Snapshots the cells (derived metrics, raw counters, histogram)
    /// into history, then resets the windowed state.
    fn close_window(&mut self, end: Nanos) {
        let raw = self.backend.counters();
        self.history.push(WindowMetrics::from_counters(self.window_start, end, &raw));
        self.raw_history.push(raw);
        self.hist_history.push(self.backend.poll_histogram());
        self.backend.reset_window();
        self.window_start = end;
    }
}

impl<B: MetricBackend + 'static> TracepointProbe for WindowedObserver<B> {
    fn name(&self) -> &str {
        self.backend.backend_name()
    }

    fn fire(&mut self, ctx: &TracepointCtx) -> Nanos {
        self.roll_to(ctx.ktime, false);
        self.backend.on_event(ctx)
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::NativeBackend;
    use kscope_syscalls::{pid_tgid, NetCtx, SyscallNo, SyscallProfile, TracePhase};

    fn send_exit(t_us: u64) -> TracepointCtx {
        TracepointCtx {
            phase: TracePhase::Exit,
            no: SyscallNo::SENDMSG,
            pid_tgid: pid_tgid(7, 7),
            ktime: Nanos::from_micros(t_us),
            ret: 1,
            net: NetCtx::NONE,
        }
    }

    fn observer(window_ms: u64) -> WindowedObserver<NativeBackend> {
        WindowedObserver::new(
            NativeBackend::new(7, SyscallProfile::data_caching(), 0),
            Nanos::from_millis(window_ms),
        )
    }

    #[test]
    fn windows_roll_at_boundaries() {
        let mut obs = observer(1);
        // Sends every 100us for 3.05ms => windows at 1ms, 2ms, 3ms.
        for i in 0..31 {
            obs.fire(&send_exit(i * 100));
        }
        assert_eq!(obs.windows().len(), 3);
        for w in obs.windows() {
            let rps = w.rps_obsv.unwrap();
            assert!((rps - 10_000.0).abs() < 100.0, "rps {rps}");
        }
    }

    #[test]
    fn deltas_span_window_boundaries() {
        let mut obs = observer(1);
        obs.fire(&send_exit(950));
        obs.fire(&send_exit(1_050)); // delta 100us crosses the 1ms boundary
        obs.finish(Nanos::from_micros(1_100));
        let windows = obs.windows();
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].send_samples, 0);
        assert_eq!(windows[1].send_samples, 1);
    }

    #[test]
    fn finish_closes_partial_window() {
        let mut obs = observer(10);
        obs.fire(&send_exit(100));
        obs.fire(&send_exit(200));
        obs.finish(Nanos::from_micros(500));
        assert_eq!(obs.windows().len(), 1);
        assert_eq!(obs.windows()[0].end, Nanos::from_micros(500));
        assert_eq!(obs.windows()[0].send_samples, 1);
    }

    #[test]
    fn idle_gaps_produce_empty_windows() {
        let mut obs = observer(1);
        obs.fire(&send_exit(100));
        obs.fire(&send_exit(4_500));
        let windows = obs.windows();
        assert_eq!(windows.len(), 4);
        assert_eq!(windows[1].send_samples, 0);
        assert_eq!(windows[2].send_samples, 0);
    }

    #[test]
    fn raw_snapshots_align_with_windows() {
        let mut obs = observer(1);
        for i in 0..31 {
            obs.fire(&send_exit(i * 100));
        }
        assert_eq!(obs.raw_windows().len(), obs.windows().len());
        assert_eq!(obs.window_histograms().len(), obs.windows().len());
        for (w, raw) in obs.windows().iter().zip(obs.raw_windows()) {
            assert_eq!(w.send_samples, raw.send.count);
            assert_eq!(w.events, raw.events);
        }
        // The native backend has no in-probe histogram.
        assert!(obs.window_histograms().iter().all(Option::is_none));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_window_rejected() {
        observer(0);
    }
}
