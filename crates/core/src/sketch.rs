//! Mergeable Top-K heavy-hitter sketches for hierarchical collection.
//!
//! The probe side ([`kscope_ebpf::SketchState`], updated in-kernel by
//! `bpf_sketch_update`) produces a bounded summary of the per-entity
//! request stream: a Count-Min matrix plus a small candidate table.
//! This module adds the userspace half the fleet's collection tree
//! needs: [`TopKSketch`], a thin wrapper with an n-ary **merge** whose
//! result is independent of merge order and grouping.
//!
//! # Merge semantics
//!
//! The Count-Min matrices are summed cell-wise (wrapping, like the
//! probe's own updates), so the merged matrix is **bit-identical** to
//! the matrix a single sketch would have built over the concatenated
//! stream — in any order, at any fan-in. Candidate tables are *not*
//! summed: the merger unions the candidate keys of all inputs, ranks
//! them by their merged-matrix estimate (ties broken by key bytes), and
//! keeps the top `capacity`. Ranking over a set makes the result a pure
//! function of {input keys} × merged matrix, hence permutation- and
//! associativity-invariant, which is what lets a collection tree roll
//! sketches up shard-by-shard and still produce byte-identical root
//! reports at any `--jobs` and any fan-in.
//!
//! # Error bound
//!
//! A Count-Min estimate never undercounts, and overcounts by exactly
//! the lightest row's collision mass. Merging only sums matrices, so
//! the merged estimate obeys the same bound with respect to the
//! concatenated stream: `true ≤ est ≤ true + min_row(collisions)`.
//! The property suite in `kscope-testkit` pins both halves.

use kscope_ebpf::SketchState;

/// A mergeable Top-K heavy-hitter sketch (userspace side).
///
/// Wraps the probe-shared [`SketchState`] — the *same type* the eBPF
/// runtime updates in-kernel, so a userspace replay of a probe's stream
/// is bit-identical to the probe's own sketch — and adds the order- and
/// grouping-invariant merge the fleet's collection tree is built on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopKSketch {
    state: SketchState,
}

impl TopKSketch {
    /// An empty sketch for `key_size`-byte keys holding up to
    /// `capacity` candidates.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `key_size` is outside `1..=16`,
    /// as for [`SketchState::new`].
    pub fn new(key_size: u32, capacity: u32) -> TopKSketch {
        TopKSketch {
            state: SketchState::new(key_size, capacity),
        }
    }

    /// Wraps a probe-produced sketch state (e.g. from
    /// `BytecodeBackend::entity_sketch`).
    pub fn from_state(state: SketchState) -> TopKSketch {
        TopKSketch { state }
    }

    /// The underlying probe-shared state.
    pub fn state(&self) -> &SketchState {
        &self.state
    }

    /// Folds one observation of `key` with the given weight — the
    /// userspace mirror of the probe's `bpf_sketch_update`.
    pub fn record(&mut self, key: &[u8], weight: u64) {
        self.state.update(key, weight);
    }

    /// The Count-Min estimate for `key`: never below the true count,
    /// above it by at most the lightest row's collision mass.
    pub fn estimate(&self, key: &[u8]) -> u64 {
        self.state.estimate(key)
    }

    /// Total weight folded in (wrapping), across all merged inputs.
    pub fn total_weight(&self) -> u64 {
        self.state.total_weight()
    }

    /// Serialized size in bytes: `O(K)`, independent of how many
    /// distinct entities the stream contained.
    pub fn wire_bytes(&self) -> usize {
        self.state.wire_bytes()
    }

    /// The top `k` candidates as `(key, estimate)`, heaviest first,
    /// ties broken by ascending key bytes (so the ordering — like the
    /// merge — is a pure function of the sketch's contents).
    pub fn top_k(&self, k: usize) -> Vec<(Vec<u8>, u64)> {
        let mut ranked: Vec<(Vec<u8>, u64)> = self
            .state
            .candidate_keys()
            .map(|key| {
                let est = self.state.estimate(key);
                (key.to_vec(), est)
            })
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }

    /// [`TopKSketch::top_k`] for the common 8-byte little-endian keys
    /// (`pid_tgid` entities), decoded to `u64`.
    ///
    /// # Panics
    ///
    /// Panics if the sketch's `key_size` is not 8.
    pub fn top_k_u64(&self, k: usize) -> Vec<(u64, u64)> {
        assert_eq!(self.state.key_size(), 8, "u64 decode needs 8-byte keys");
        self.top_k(k)
            .into_iter()
            .map(|(key, est)| {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&key);
                (u64::from_le_bytes(bytes), est)
            })
            .collect()
    }

    /// Replaces the candidate table: deduplicates `keys`, ranks them by
    /// *this* sketch's matrix estimate (desc, ties by key bytes asc),
    /// and keeps the top `capacity`.
    ///
    /// This is the collection tree's second round. Pass 1 merges
    /// matrices up the tree exactly, but candidate truncation at inner
    /// nodes uses subtree-local estimates, so which keys survive can
    /// depend on the fan-in. Re-selecting at the root under the global
    /// (root-matrix) order erases that: hierarchical top-`capacity`
    /// selection under one total order equals the flat selection over
    /// the union of every leaf's keys, so the result is identical at
    /// any fan-in and any worker count.
    pub fn reselect_candidates<'a, I>(&mut self, keys: I)
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let union: std::collections::BTreeSet<Vec<u8>> =
            keys.into_iter().map(<[u8]>::to_vec).collect();
        let mut ranked: Vec<(Vec<u8>, u64)> = union
            .into_iter()
            .map(|key| {
                let est = self.state.estimate(&key);
                (key, est)
            })
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        ranked.truncate(self.state.capacity() as usize);
        self.state.set_candidates(ranked.iter().map(|(key, _)| key.as_slice()));
    }

    /// Merges any number of sketches into one, as if every input stream
    /// had been folded into a single sketch (matrix-wise exactly so).
    ///
    /// The result is invariant under permutation *and* grouping of the
    /// inputs: `merge_all([a, b, c])` equals
    /// `merge_all([merge_all([c, a]), b])` bit for bit. Returns `None`
    /// for an empty input.
    ///
    /// # Panics
    ///
    /// Panics if the inputs disagree on key size, capacity, or matrix
    /// geometry — merging sketches from differently-configured probes
    /// is a deployment bug, not a recoverable condition.
    pub fn merge_all<'a, I>(sketches: I) -> Option<TopKSketch>
    where
        I: IntoIterator<Item = &'a TopKSketch>,
    {
        let mut iter = sketches.into_iter();
        let first = iter.next()?;
        let mut merged = SketchState::new(first.state.key_size(), first.state.capacity());
        merged.merge_counts_from(&first.state);
        // Union of candidate keys, deduplicated and order-erased: a
        // BTreeSet makes the union independent of input order.
        let mut union: std::collections::BTreeSet<Vec<u8>> =
            first.state.candidate_keys().map(<[u8]>::to_vec).collect();
        for sketch in iter {
            merged.merge_counts_from(&sketch.state);
            union.extend(sketch.state.candidate_keys().map(<[u8]>::to_vec));
        }
        // Rank the union by merged-matrix estimate (desc), then key
        // bytes (asc), and keep the top `capacity` as the merged
        // candidate table.
        let mut ranked: Vec<(Vec<u8>, u64)> = union
            .into_iter()
            .map(|key| {
                let est = merged.estimate(&key);
                (key, est)
            })
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        ranked.truncate(merged.capacity() as usize);
        merged.set_candidates(ranked.iter().map(|(key, _)| key.as_slice()));
        Some(TopKSketch { state: merged })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic skewed stream: key `i` appears `weights[i]`
    /// times, interleaved round-robin so no key arrives in one burst.
    fn skewed_stream(weights: &[u64]) -> Vec<u64> {
        let mut stream = Vec::new();
        let max = weights.iter().copied().max().unwrap_or(0);
        for round in 0..max {
            for (i, &w) in weights.iter().enumerate() {
                if round < w {
                    stream.push(i as u64);
                }
            }
        }
        stream
    }

    fn sketch_of(stream: &[u64], capacity: u32) -> TopKSketch {
        let mut s = TopKSketch::new(8, capacity);
        for &key in stream {
            s.record(&key.to_le_bytes(), 1);
        }
        s
    }

    #[test]
    fn merged_matrix_is_bit_identical_to_concat_stream() {
        let stream = skewed_stream(&[90, 40, 40, 9, 9, 3, 1, 1, 1, 1]);
        let whole = sketch_of(&stream, 8);
        // Shard the stream three ways and merge.
        let shards: Vec<TopKSketch> = stream
            .chunks(stream.len() / 3 + 1)
            .map(|c| sketch_of(c, 8))
            .collect();
        let merged = TopKSketch::merge_all(&shards).expect("non-empty");
        assert_eq!(merged.state().cells(), whole.state().cells());
        assert_eq!(merged.total_weight(), whole.total_weight());
        // And every key estimates identically.
        for key in 0..10u64 {
            let key = key.to_le_bytes();
            assert_eq!(merged.estimate(&key), whole.estimate(&key));
        }
    }

    #[test]
    fn merge_is_invariant_under_permutation_and_grouping() {
        let stream = skewed_stream(&[50, 25, 12, 6, 3, 1]);
        let shards: Vec<TopKSketch> = stream
            .chunks(stream.len() / 4 + 1)
            .map(|c| sketch_of(c, 4))
            .collect();

        let flat = TopKSketch::merge_all(&shards).expect("non-empty");

        // Reversed order.
        let reversed: Vec<&TopKSketch> = shards.iter().rev().collect();
        assert_eq!(TopKSketch::merge_all(reversed).expect("non-empty"), flat);

        // Nested grouping: merge pairs, then merge the pair-merges.
        let left = TopKSketch::merge_all(&shards[..2]).expect("non-empty");
        let right = TopKSketch::merge_all(&shards[2..]).expect("non-empty");
        let nested = TopKSketch::merge_all([&left, &right]).expect("non-empty");
        assert_eq!(nested, flat);
    }

    #[test]
    fn top_k_names_the_true_heavy_hitters_on_skewed_input() {
        // Zipf-ish weights with a clear top 4.
        let weights = [400u64, 200, 100, 50, 4, 3, 2, 1];
        let stream = skewed_stream(&weights);
        let shards: Vec<TopKSketch> = stream
            .chunks(stream.len() / 5 + 1)
            .map(|c| sketch_of(c, 8))
            .collect();
        let merged = TopKSketch::merge_all(&shards).expect("non-empty");
        let top: Vec<u64> = merged.top_k_u64(4).into_iter().map(|(k, _)| k).collect();
        assert_eq!(top, vec![0, 1, 2, 3], "exact top-4 of the true stream");
        // Estimates never undercount the true weights.
        for (key, est) in merged.top_k_u64(4) {
            assert!(est >= weights[key as usize]);
        }
    }

    #[test]
    fn merge_all_of_nothing_is_none_and_one_is_identity() {
        assert!(TopKSketch::merge_all([]).is_none());
        let s = sketch_of(&[1, 2, 2, 3], 4);
        let merged = TopKSketch::merge_all([&s]).expect("non-empty");
        // Same matrix and same candidate set (re-ranked, same keys).
        assert_eq!(merged.state().cells(), s.state().cells());
        let mut a: Vec<Vec<u8>> = merged.state().candidate_keys().map(<[u8]>::to_vec).collect();
        let mut b: Vec<Vec<u8>> = s.state().candidate_keys().map(<[u8]>::to_vec).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn reselect_is_grouping_invariant_where_plain_merge_is_not() {
        // Two shards whose local heavy hitters differ: key 0 is heavy in
        // shard A only, key 9 in shard B only, with enough tied middling
        // keys that a capacity-2 candidate table must drop some.
        let a = sketch_of(&skewed_stream(&[30, 10, 10, 10]), 2);
        let b = sketch_of(&[9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9], 2);
        let c = sketch_of(&skewed_stream(&[0, 10, 10, 10]), 2);
        let flat = TopKSketch::merge_all([&a, &b, &c]).expect("non-empty");
        let ab = TopKSketch::merge_all([&a, &b]).expect("non-empty");
        let nested = TopKSketch::merge_all([&ab, &c]).expect("non-empty");
        // Re-selecting both roots over the same key union under their
        // (identical) matrices converges them bit-for-bit.
        let union: Vec<Vec<u8>> = [&a, &b, &c]
            .iter()
            .flat_map(|s| s.state().candidate_keys().map(<[u8]>::to_vec))
            .collect();
        let mut flat2 = flat.clone();
        let mut nested2 = nested.clone();
        flat2.reselect_candidates(union.iter().map(Vec::as_slice));
        nested2.reselect_candidates(union.iter().map(Vec::as_slice));
        assert_eq!(flat2, nested2);
        assert_eq!(flat2.state().cells(), flat.state().cells(), "matrix untouched");
    }

    #[test]
    #[should_panic(expected = "capacities differ")]
    fn merge_rejects_mismatched_geometry() {
        let a = TopKSketch::new(8, 4);
        let b = TopKSketch::new(8, 8);
        let _ = TopKSketch::merge_all([&a, &b]);
    }
}
