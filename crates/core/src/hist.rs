//! Mergeable log2 histogram — the userspace twin of the in-probe one.
//!
//! The bytecode probe's optional poll-duration histogram
//! ([`crate::BytecodeBackend::new_with_histogram`]) maintains
//! [`HIST_BUCKETS`] `u64` cells where bucket `i` counts polls whose scaled
//! duration satisfies `floor(log2(max(duration >> shift, 1))) == i`.
//! [`Log2Hist`] reproduces that exact bucketing in userspace so that:
//!
//! * per-window snapshots read from a probe can be accumulated losslessly
//!   (bucket-wise addition of `u64` cells is associative and commutative,
//!   so merging K per-host histograms is bit-for-bit equal to bucketing
//!   the concatenated stream — the fleet mergeability guarantee);
//! * quantiles of the fleet-wide poll-slack distribution can be computed
//!   centrally from merged buckets alone (see
//!   `kscope_analysis::log2_bucket_quantile`), with no per-sample state
//!   ever crossing the control channel.

use crate::bytecode::HIST_BUCKETS;

/// A mergeable log2 histogram over scaled samples.
///
/// # Examples
///
/// ```
/// use kscope_core::Log2Hist;
///
/// let mut a = Log2Hist::new(0);
/// let mut b = Log2Hist::new(0);
/// let mut whole = Log2Hist::new(0);
/// for (i, d) in [700u64, 1_000, 350_000, 90].iter().enumerate() {
///     if i % 2 == 0 { a.record(*d) } else { b.record(*d) }
///     whole.record(*d);
/// }
/// a.merge(&b);
/// assert_eq!(a, whole);
/// assert_eq!(whole.count(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Log2Hist {
    shift: u32,
    buckets: [u64; HIST_BUCKETS],
}

impl Log2Hist {
    /// An empty histogram scaling inputs by `>> shift` before bucketing,
    /// matching the probe built with the same shift.
    pub fn new(shift: u32) -> Log2Hist {
        Log2Hist {
            shift,
            buckets: [0; HIST_BUCKETS],
        }
    }

    /// Wraps bucket cells read from a probe (e.g.
    /// [`crate::MetricBackend::poll_histogram`]) built with `shift`.
    pub fn from_buckets(shift: u32, buckets: [u64; HIST_BUCKETS]) -> Log2Hist {
        Log2Hist { shift, buckets }
    }

    /// The bucket a raw sample lands in:
    /// `floor(log2(max(raw >> shift, 1)))` — the probe's bit-ladder
    /// semantics, including the clamp of scaled values 0 and 1 to
    /// bucket 0.
    pub fn bucket_of(shift: u32, raw: u64) -> usize {
        let scaled = (raw >> shift) | 1;
        (63 - scaled.leading_zeros()) as usize
    }

    /// Records one raw (unscaled) sample.
    pub fn record(&mut self, raw: u64) {
        let i = Log2Hist::bucket_of(self.shift, raw);
        self.buckets[i] = self.buckets[i].wrapping_add(1);
    }

    /// Adds probe bucket cells in place (same shift as this histogram).
    pub fn add_buckets(&mut self, buckets: &[u64; HIST_BUCKETS]) {
        for (mine, theirs) in self.buckets.iter_mut().zip(buckets) {
            *mine = mine.wrapping_add(*theirs);
        }
    }

    /// Merges another histogram into this one. Bucket-wise wrapping `u64`
    /// addition is associative and commutative, so merging K disjoint
    /// streams equals bucketing the concatenated stream bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if the scaling shifts differ.
    pub fn merge(&mut self, other: &Log2Hist) {
        assert_eq!(self.shift, other.shift, "cannot merge different scales");
        self.add_buckets(&other.buckets);
    }

    /// The bucket cells.
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// The configured shift.
    pub fn shift(&self) -> u32 {
        self.shift
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().fold(0u64, |acc, &b| acc.wrapping_add(b))
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|&b| b == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_of_matches_floor_log2() {
        assert_eq!(Log2Hist::bucket_of(0, 0), 0);
        assert_eq!(Log2Hist::bucket_of(0, 1), 0);
        assert_eq!(Log2Hist::bucket_of(0, 2), 1);
        assert_eq!(Log2Hist::bucket_of(0, 1_000), 9);
        assert_eq!(Log2Hist::bucket_of(0, 350_000), 18);
        assert_eq!(Log2Hist::bucket_of(0, u64::MAX), 63);
        // The shift is applied before bucketing.
        assert_eq!(Log2Hist::bucket_of(10, 350_000), 8);
        assert_eq!(Log2Hist::bucket_of(10, 1_000), 0);
    }

    #[test]
    fn record_matches_probe_semantics() {
        // Mirrors `histogram_probe_verifies_and_buckets_poll_durations`
        // in the bytecode backend tests: the userspace twin must put the
        // same durations in the same buckets.
        let mut h = Log2Hist::new(0);
        h.record(350_000);
        h.record(1_000);
        h.record(0);
        h.record(1);
        assert_eq!(h.buckets()[18], 1);
        assert_eq!(h.buckets()[9], 1);
        assert_eq!(h.buckets()[0], 2);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn merge_equals_concatenated_stream() {
        let samples: Vec<u64> = (0..500).map(|i| (i * 7919) % 2_000_000).collect();
        let mut parts = [Log2Hist::new(10), Log2Hist::new(10), Log2Hist::new(10), Log2Hist::new(10)];
        let mut whole = Log2Hist::new(10);
        for (i, &s) in samples.iter().enumerate() {
            parts[i % 4].record(s);
            whole.record(s);
        }
        let mut merged = Log2Hist::new(10);
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged, whole);
    }

    #[test]
    fn from_buckets_round_trips() {
        let mut h = Log2Hist::new(3);
        h.record(12_345);
        let rebuilt = Log2Hist::from_buckets(3, *h.buckets());
        assert_eq!(rebuilt, h);
        assert!(!rebuilt.is_empty());
    }

    #[test]
    #[should_panic(expected = "different scales")]
    fn merge_rejects_mixed_scales() {
        let mut a = Log2Hist::new(1);
        a.merge(&Log2Hist::new(2));
    }
}
