//! The shared metric-cell layout.
//!
//! Both backends — the native Rust probe and the eBPF bytecode probe —
//! maintain the same twelve `u64` cells, so the userspace side can decode
//! either one identically and the differential tests can compare them
//! cell-for-cell. In the bytecode backend the cells are one 96-byte array-map
//! value; natively they are plain fields.

use kscope_simcore::Nanos;

use crate::fixed::ScaledAcc;

/// Byte offset of each cell within the stats map value.
pub mod offsets {
    /// Send-delta count.
    pub const SEND_COUNT: usize = 0;
    /// Send-delta sum (scaled).
    pub const SEND_SUM: usize = 8;
    /// Send-delta sum of squares (scaled²).
    pub const SEND_SUMSQ: usize = 16;
    /// Timestamp of the last send exit.
    pub const SEND_LAST_TS: usize = 24;
    /// Receive-delta count.
    pub const RECV_COUNT: usize = 32;
    /// Receive-delta sum (scaled).
    pub const RECV_SUM: usize = 40;
    /// Receive-delta sum of squares (scaled²).
    pub const RECV_SUMSQ: usize = 48;
    /// Timestamp of the last receive exit.
    pub const RECV_LAST_TS: usize = 56;
    /// Poll-duration count.
    pub const POLL_COUNT: usize = 64;
    /// Poll-duration sum (scaled).
    pub const POLL_SUM: usize = 72;
    /// Poll-duration sum of squares (scaled²).
    pub const POLL_SUMSQ: usize = 80;
    /// Matched tracepoint exits.
    pub const EVENTS: usize = 88;
    /// Total value size in bytes.
    pub const VALUE_SIZE: usize = 96;
}

/// Decoded contents of the stats cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawCounters {
    /// Inter-send deltas (Eq. 1 numerator / Eq. 2 input).
    pub send: ScaledAcc,
    /// Inter-receive deltas.
    pub recv: ScaledAcc,
    /// Poll (epoll/select) durations — the idleness signal.
    pub poll: ScaledAcc,
    /// Last send exit timestamp (persists across window rolls).
    pub send_last_ts: u64,
    /// Last receive exit timestamp.
    pub recv_last_ts: u64,
    /// Matched syscall exits observed.
    pub events: u64,
}

impl RawCounters {
    /// Empty counters with the given scaling shift.
    pub fn new(shift: u32) -> RawCounters {
        RawCounters {
            send: ScaledAcc::new(shift),
            recv: ScaledAcc::new(shift),
            poll: ScaledAcc::new(shift),
            send_last_ts: 0,
            recv_last_ts: 0,
            events: 0,
        }
    }

    /// Decodes counters from a 96-byte map value.
    ///
    /// # Panics
    ///
    /// Panics if `value` is shorter than [`offsets::VALUE_SIZE`].
    pub fn decode(shift: u32, value: &[u8]) -> RawCounters {
        let cell = |off: usize| -> u64 {
            match value[off..off + 8].try_into() {
                Ok(bytes) => u64::from_le_bytes(bytes),
                Err(_) => unreachable!("an 8-byte slice converts to [u8; 8]"),
            }
        };
        RawCounters {
            send: ScaledAcc::from_cells(
                shift,
                cell(offsets::SEND_COUNT),
                cell(offsets::SEND_SUM),
                cell(offsets::SEND_SUMSQ),
            ),
            recv: ScaledAcc::from_cells(
                shift,
                cell(offsets::RECV_COUNT),
                cell(offsets::RECV_SUM),
                cell(offsets::RECV_SUMSQ),
            ),
            poll: ScaledAcc::from_cells(
                shift,
                cell(offsets::POLL_COUNT),
                cell(offsets::POLL_SUM),
                cell(offsets::POLL_SUMSQ),
            ),
            send_last_ts: cell(offsets::SEND_LAST_TS),
            recv_last_ts: cell(offsets::RECV_LAST_TS),
            events: cell(offsets::EVENTS),
        }
    }

    /// Zeroes the windowed cells, keeping the last-timestamp cells so
    /// deltas spanning a window boundary stay correct.
    pub fn reset_window(&mut self) {
        self.send.reset();
        self.recv.reset();
        self.poll.reset();
        self.events = 0;
    }

    /// Merges another host's (or window's) counters into this one.
    ///
    /// The statistic cells are sufficient statistics — counts, Σδ, and
    /// Σδ² under wrapping `u64` addition — so merging is associative and
    /// commutative, and merging K disjoint streams is **bit-for-bit**
    /// equal to accumulating the concatenated stream: the algebraic
    /// property the fleet collection plane relies on. The last-timestamp
    /// cells take the maximum, matching "latest event wins" across hosts
    /// that share a clock (the simulated fleet drives all hosts on one
    /// engine).
    ///
    /// # Panics
    ///
    /// Panics if the scaling shifts differ.
    pub fn merge(&mut self, other: &RawCounters) {
        self.send.merge(&other.send);
        self.recv.merge(&other.recv);
        self.poll.merge(&other.poll);
        self.send_last_ts = self.send_last_ts.max(other.send_last_ts);
        self.recv_last_ts = self.recv_last_ts.max(other.recv_last_ts);
        self.events = self.events.wrapping_add(other.events);
    }
}

/// Metrics derived from one observation window — what the userspace agent
/// hands to the estimators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowMetrics {
    /// Window start.
    pub start: Nanos,
    /// Window end.
    pub end: Nanos,
    /// Observed RPS (Eq. 1: `1 / mean(Δt_send)`), `None` without samples.
    pub rps_obsv: Option<f64>,
    /// Observed receive rate, same construction over the recv stream.
    pub recv_rate: Option<f64>,
    /// Variance of inter-send deltas in ns² (Eq. 2).
    pub var_send: Option<f64>,
    /// Variance of inter-receive deltas in ns².
    pub var_recv: Option<f64>,
    /// Mean poll (epoll/select) duration in ns — idleness.
    pub poll_mean_ns: Option<f64>,
    /// Number of poll completions in the window.
    pub poll_count: u64,
    /// Send deltas observed (the paper recommends ≥ 2048 syscalls for a
    /// stable Eq. 1 estimate).
    pub send_samples: u64,
    /// Matched syscall exits in the window.
    pub events: u64,
}

impl WindowMetrics {
    /// Derives window metrics from counters accumulated over
    /// `[start, end)`.
    pub fn from_counters(start: Nanos, end: Nanos, counters: &RawCounters) -> WindowMetrics {
        let rate_of = |acc: &ScaledAcc| -> Option<f64> {
            let mean_ns = acc.mean()?;
            if mean_ns <= 0.0 {
                return None;
            }
            Some(1e9 / mean_ns)
        };
        WindowMetrics {
            start,
            end,
            rps_obsv: rate_of(&counters.send),
            recv_rate: rate_of(&counters.recv),
            var_send: counters.send.variance(),
            var_recv: counters.recv.variance(),
            poll_mean_ns: counters.poll.mean(),
            poll_count: counters.poll.count,
            send_samples: counters.send.count,
            events: counters.events,
        }
    }

    /// Window length.
    pub fn duration(&self) -> Nanos {
        self.end.saturating_sub(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_reads_every_cell() {
        let mut value = vec![0u8; offsets::VALUE_SIZE];
        let put = |value: &mut [u8], off: usize, v: u64| {
            value[off..off + 8].copy_from_slice(&v.to_le_bytes());
        };
        put(&mut value, offsets::SEND_COUNT, 3);
        put(&mut value, offsets::SEND_SUM, 300);
        put(&mut value, offsets::SEND_SUMSQ, 30_000);
        put(&mut value, offsets::SEND_LAST_TS, 777);
        put(&mut value, offsets::RECV_COUNT, 2);
        put(&mut value, offsets::POLL_COUNT, 5);
        put(&mut value, offsets::POLL_SUM, 50);
        put(&mut value, offsets::EVENTS, 10);
        let counters = RawCounters::decode(0, &value);
        assert_eq!(counters.send.count, 3);
        assert_eq!(counters.send.sum, 300);
        assert_eq!(counters.send.sum_sq, 30_000);
        assert_eq!(counters.send_last_ts, 777);
        assert_eq!(counters.recv.count, 2);
        assert_eq!(counters.poll.count, 5);
        assert_eq!(counters.events, 10);
    }

    #[test]
    fn window_metrics_rps_is_inverse_mean_delta() {
        let mut counters = RawCounters::new(0);
        // Four sends, 500us apart.
        for _ in 0..4 {
            counters.send.push(500_000);
        }
        let m = WindowMetrics::from_counters(Nanos::ZERO, Nanos::from_secs(2), &counters);
        let rps = m.rps_obsv.unwrap();
        assert!((rps - 2_000.0).abs() < 1e-9, "rps {rps}");
        assert_eq!(m.send_samples, 4);
        assert_eq!(m.duration(), Nanos::from_secs(2));
    }

    #[test]
    fn empty_window_has_no_estimates() {
        let counters = RawCounters::new(10);
        let m = WindowMetrics::from_counters(Nanos::ZERO, Nanos::from_secs(1), &counters);
        assert_eq!(m.rps_obsv, None);
        assert_eq!(m.var_send, None);
        assert_eq!(m.poll_mean_ns, None);
    }

    #[test]
    fn merge_equals_concatenated_stream() {
        let deltas: Vec<u64> = (0..200).map(|i| 100_000 + i * 977).collect();
        let mut whole = RawCounters::new(10);
        let mut parts = [RawCounters::new(10), RawCounters::new(10), RawCounters::new(10)];
        for (i, &d) in deltas.iter().enumerate() {
            whole.send.push(d);
            whole.poll.push(d / 3);
            whole.events += 2;
            whole.send_last_ts = i as u64;
            let p = &mut parts[i % 3];
            p.send.push(d);
            p.poll.push(d / 3);
            p.events += 2;
            p.send_last_ts = i as u64;
        }
        let mut merged = RawCounters::new(10);
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged, whole);
    }

    #[test]
    fn reset_window_keeps_last_timestamps() {
        let mut counters = RawCounters::new(0);
        counters.send.push(100);
        counters.send_last_ts = 42;
        counters.events = 9;
        counters.reset_window();
        assert!(counters.send.is_empty());
        assert_eq!(counters.send_last_ts, 42);
        assert_eq!(counters.events, 0);
    }
}
