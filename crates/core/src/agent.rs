//! The userspace agent: estimators composed over an observer's windows.

use crate::counters::WindowMetrics;
use crate::estimators::{
    RpsEstimator, SaturationAssessment, SaturationDetector, SlackAssessment, SlackEstimator,
};

/// Everything the agent derived from one window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgentReport {
    /// The window's raw metrics.
    pub window: WindowMetrics,
    /// Eq. 1 observed RPS (when the window is thick enough).
    pub rps_obsv: Option<f64>,
    /// Variance-based saturation assessment.
    pub saturation: Option<SaturationAssessment>,
    /// Poll-duration slack assessment.
    pub slack: Option<SlackAssessment>,
}

impl AgentReport {
    /// True when either saturation signal fires.
    pub fn any_saturation(&self) -> bool {
        self.saturation.map(|s| s.saturated).unwrap_or(false)
            || self.slack.map(|s| s.saturated).unwrap_or(false)
    }
}

/// The composed userspace agent of the paper's envisioned management
/// runtime: one ingest call per observation window, three signals out.
///
/// # Examples
///
/// ```
/// use kscope_core::{Agent, RawCounters, WindowMetrics};
/// use kscope_simcore::Nanos;
///
/// let mut agent = Agent::default();
/// let mut counters = RawCounters::new(0);
/// for _ in 0..4096 {
///     counters.send.push(500_000);
///     counters.poll.push(200_000);
/// }
/// counters.poll.count = 64; // plenty of poll samples
/// let w = WindowMetrics::from_counters(Nanos::ZERO, Nanos::from_secs(2), &counters);
/// let report = agent.ingest(w);
/// assert!((report.rps_obsv.unwrap() - 2_000.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Agent {
    /// Eq. 1 estimator.
    pub rps: RpsEstimator,
    /// Eq. 2 variance detector.
    pub saturation: SaturationDetector,
    /// Poll-duration slack estimator.
    pub slack: SlackEstimator,
    reports: Vec<AgentReport>,
}

impl Agent {
    /// Creates an agent with custom estimators.
    pub fn new(
        rps: RpsEstimator,
        saturation: SaturationDetector,
        slack: SlackEstimator,
    ) -> Agent {
        Agent {
            rps,
            saturation,
            slack,
            reports: Vec::new(),
        }
    }

    /// Feeds one window, records and returns the derived report.
    pub fn ingest(&mut self, window: WindowMetrics) -> AgentReport {
        let report = AgentReport {
            window,
            rps_obsv: self.rps.from_window(&window),
            saturation: self.saturation.observe(&window),
            slack: self.slack.observe(&window),
        };
        self.reports.push(report);
        report
    }

    /// Feeds a batch of windows.
    pub fn ingest_all<I: IntoIterator<Item = WindowMetrics>>(&mut self, windows: I) {
        for w in windows {
            self.ingest(w);
        }
    }

    /// All reports so far.
    pub fn reports(&self) -> &[AgentReport] {
        &self.reports
    }

    /// The most recent report.
    pub fn latest(&self) -> Option<&AgentReport> {
        self.reports.last()
    }

    /// Pooled Eq. 1 estimate across every ingested window.
    pub fn overall_rps(&self) -> Option<f64> {
        let windows: Vec<WindowMetrics> = self.reports.iter().map(|r| r.window).collect();
        self.rps.from_windows(&windows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::RawCounters;
    use kscope_simcore::Nanos;

    fn window(delta_ns: u64, n: usize) -> WindowMetrics {
        let mut counters = RawCounters::new(0);
        for _ in 0..n {
            counters.send.push(delta_ns);
        }
        WindowMetrics::from_counters(Nanos::ZERO, Nanos::from_secs(1), &counters)
    }

    #[test]
    fn agent_accumulates_reports() {
        let mut agent = Agent::new(
            RpsEstimator::with_min_samples(8),
            SaturationDetector::default(),
            SlackEstimator::default(),
        );
        agent.ingest_all([window(1_000_000, 32), window(500_000, 32)]);
        assert_eq!(agent.reports().len(), 2);
        assert!((agent.latest().unwrap().rps_obsv.unwrap() - 2_000.0).abs() < 1e-9);
    }

    #[test]
    fn overall_rps_pools_windows() {
        let mut agent = Agent::new(
            RpsEstimator::with_min_samples(50),
            SaturationDetector::default(),
            SlackEstimator::default(),
        );
        agent.ingest_all([window(1_000_000, 32), window(1_000_000, 32)]);
        // Individual windows are too thin; the pool is not.
        assert_eq!(agent.reports()[0].rps_obsv, None);
        let pooled = agent.overall_rps().unwrap();
        assert!((pooled - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn any_saturation_defaults_false() {
        let mut agent = Agent::default();
        let report = agent.ingest(window(1_000_000, 4));
        assert!(!report.any_saturation());
    }
}
