//! # kscope-core
//!
//! In-kernel observability of request-level metrics from eBPF syscall
//! tracing — the reproduction of the primary contribution of
//! *"Characterizing In-Kernel Observability of Latency-Sensitive
//! Request-Level Metrics with eBPF"* (ISPASS 2024).
//!
//! The pipeline has three layers:
//!
//! 1. **Probes** attached to the `sys_enter`/`sys_exit` tracepoints
//!    maintain twelve integer cells ([`RawCounters`]): inter-send and
//!    inter-recv delta statistics (count/sum/sum-of-squares, scaled —
//!    everything eBPF's no-float arithmetic allows) and poll-duration
//!    statistics. Two interchangeable backends exist: [`NativeBackend`]
//!    (the logic as plain Rust — a stand-in for a JIT-compiled program) and
//!    [`BytecodeBackend`] (actual verified eBPF bytecode interpreted by
//!    `kscope-ebpf`).
//! 2. A [`WindowedObserver`] plays the userspace collector: it rolls the
//!    cells into per-window [`WindowMetrics`] snapshots.
//! 3. The [`Agent`] applies the paper's three estimators per window:
//!    [`RpsEstimator`] (Eq. 1), [`SaturationDetector`] (Eq. 2 variance
//!    knee), and [`SlackEstimator`] (poll-duration headroom).
//!
//! [`timeline::reconstruct`] additionally implements the Fig. 1(c)
//! single-thread request-timeline reconstruction, including the pairing-rate
//! diagnostic that shows when that simple model stops applying.
//!
//! # Examples
//!
//! Attaching a bytecode probe to a simulated memcached and reading RPS:
//!
//! ```
//! use kscope_core::{BytecodeBackend, MetricBackend, WindowedObserver};
//! use kscope_simcore::Nanos;
//! use kscope_syscalls::{pid_tgid, NetCtx, SyscallNo, SyscallProfile, TracePhase, TracepointCtx};
//!
//! let backend = BytecodeBackend::new(1000, SyscallProfile::data_caching(), 10)?;
//! let mut observer = WindowedObserver::new(backend, Nanos::from_millis(100));
//!
//! // ... attach `observer` to a kernel's tracepoints; here, fire directly:
//! use kscope_kernel::TracepointProbe;
//! for i in 1..=500u64 {
//!     observer.fire(&TracepointCtx {
//!         phase: TracePhase::Exit,
//!         no: SyscallNo::SENDMSG,
//!         pid_tgid: pid_tgid(1000, 1001),
//!         ktime: Nanos::from_micros(200 * i),
//!         ret: 64,
//!         net: NetCtx::NONE,
//!     });
//! }
//! let w = observer.windows().first().unwrap();
//! assert!((w.rps_obsv.unwrap() - 5_000.0).abs() < 100.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod agent;
mod bytecode;
mod counters;
pub mod custom;
mod estimators;
mod fixed;
mod hist;
mod native;
mod observer;
pub mod sketch;
mod stack;
pub mod streaming;
pub mod timeline;

pub use agent::{Agent, AgentReport};
pub use bytecode::{
    stack_offsets, BuildError, BytecodeBackend, StackCounters, CTX_SIZE, HIST_BUCKETS,
    NET_CTX_SIZE, NS_PER_INSN,
};
pub use counters::{offsets, RawCounters, WindowMetrics};
pub use estimators::{
    RpsEstimator, SaturationAssessment, SaturationDetector, SlackAssessment, SlackEstimator,
    PAPER_MIN_SAMPLES,
};
pub use fixed::{ScaledAcc, DEFAULT_SHIFT};
pub use hist::Log2Hist;
pub use native::{NativeBackend, FILTER_COST, UPDATE_COST};
pub use observer::{MetricBackend, WindowedObserver};
pub use sketch::TopKSketch;
pub use stack::StackDelay;
