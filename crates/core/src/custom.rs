//! Bring-your-own-program probes.
//!
//! [`CustomProbe`] attaches *arbitrary* verified eBPF programs to the
//! kernel's syscall tracepoints with the same context ABI the built-in
//! observability programs use — the extension point for the "blackbox
//! application optimization" uses the paper sketches in §VI. Write the
//! programs with [`Asm`](kscope_ebpf::asm::Asm) or the text assembler
//! ([`parse_program`](kscope_ebpf::text::parse_program)), create maps in a
//! [`MapRegistry`], and read the maps back out after the run.
//!
//! Context ABI (16 bytes, little-endian):
//!
//! | offset | field |
//! |---|---|
//! | 0 | syscall id (`u64`) |
//! | 8 | return value on exit / 0 on enter (`u64`) |
//!
//! Timestamps and pid/tgid come from the `bpf_ktime_get_ns` /
//! `bpf_get_current_pid_tgid` helpers, as in real eBPF.

use kscope_ebpf::interp::{ExecEnv, Vm};
use kscope_ebpf::maps::MapRegistry;
use kscope_ebpf::verifier::{Verifier, VerifierConfig};
use kscope_ebpf::Program;
use kscope_kernel::TracepointProbe;
use kscope_simcore::Nanos;
use kscope_syscalls::{TracePhase, TracepointCtx};

use crate::bytecode::{BuildError, CTX_SIZE, NS_PER_INSN};

/// A user-supplied pair of tracepoint programs plus their maps.
///
/// # Examples
///
/// Count `epoll_wait` exits with a text-assembled program:
///
/// ```
/// use kscope_core::custom::CustomProbe;
/// use kscope_ebpf::maps::{MapDef, MapRegistry};
/// use kscope_ebpf::text::parse_program;
/// use kscope_kernel::TracepointProbe;
/// use kscope_simcore::Nanos;
/// use kscope_syscalls::{pid_tgid, NetCtx, SyscallNo, TracePhase, TracepointCtx};
///
/// let mut maps = MapRegistry::new();
/// let counts = maps.create("counts", MapDef::array(8, 1)); // fd 0
/// let exit_prog = parse_program("count_epoll", r"
///     ldxdw r8, [r1+0]
///     jeq   r8, 232, hit
///     mov   r0, 0
///     exit
/// hit:
///     stw   [r10-4], 0
///     ld_map_fd r1, 0
///     mov   r2, r10
///     add   r2, -4
///     call  bpf_map_lookup_elem
///     jne   r0, 0, ok
///     mov   r0, 0
///     exit
/// ok:
///     ldxdw r1, [r0+0]
///     add   r1, 1
///     stxdw [r0+0], r1
///     mov   r0, 0
///     exit
/// ").unwrap();
/// let mut probe = CustomProbe::new(None, Some(exit_prog), maps).unwrap();
/// probe.fire(&TracepointCtx {
///     phase: TracePhase::Exit,
///     no: SyscallNo::EPOLL_WAIT,
///     pid_tgid: pid_tgid(1, 1),
///     ktime: Nanos::ZERO,
///     ret: 1,
///     net: NetCtx::NONE,
/// });
/// assert_eq!(probe.maps().array_u64(counts, 0).unwrap(), 1);
/// ```
#[derive(Debug)]
pub struct CustomProbe {
    enter: Option<Program>,
    exit: Option<Program>,
    maps: MapRegistry,
    vm: Vm,
    name: String,
}

impl CustomProbe {
    /// Verifies the supplied programs against `maps` and builds the probe.
    ///
    /// Pass `None` to skip an edge (e.g. exit-only probes).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Verify`] if either program fails verification
    /// under the tracepoint context ABI.
    pub fn new(
        enter: Option<Program>,
        exit: Option<Program>,
        maps: MapRegistry,
    ) -> Result<CustomProbe, BuildError> {
        let verifier = Verifier::new(VerifierConfig {
            ctx_size: CTX_SIZE,
            ..VerifierConfig::default()
        });
        let name = match (&enter, &exit) {
            (Some(e), Some(x)) => format!("{}+{}", e.name(), x.name()),
            (Some(e), None) => e.name().to_string(),
            (None, Some(x)) => x.name().to_string(),
            (None, None) => "custom(no-op)".to_string(),
        };
        for program in enter.iter().chain(exit.iter()) {
            verifier.verify(program, &maps).map_err(BuildError::Verify)?;
        }
        Ok(CustomProbe {
            enter,
            exit,
            maps,
            vm: Vm::new(),
            name,
        })
    }

    /// The probe's maps (read results here after the run).
    pub fn maps(&self) -> &MapRegistry {
        &self.maps
    }

    /// Mutable map access (pre-seed state, reset windows, …).
    pub fn maps_mut(&mut self) -> &mut MapRegistry {
        &mut self.maps
    }
}

impl TracepointProbe for CustomProbe {
    fn name(&self) -> &str {
        &self.name
    }

    fn fire(&mut self, ctx: &TracepointCtx) -> Nanos {
        let program = match ctx.phase {
            TracePhase::Enter => self.enter.as_ref(),
            TracePhase::Exit => self.exit.as_ref(),
            // Custom probes attach to the raw_syscalls tracepoints only.
            TracePhase::NetRxSoftirq | TracePhase::SockQueueDrain => None,
        };
        let Some(program) = program else {
            return Nanos::ZERO;
        };
        let mut buf = [0u8; CTX_SIZE];
        buf[..8].copy_from_slice(&(ctx.no.raw() as u64).to_le_bytes());
        if ctx.phase == TracePhase::Exit {
            buf[8..16].copy_from_slice(&(ctx.ret as u64).to_le_bytes());
        }
        let mut env = ExecEnv {
            ktime_ns: ctx.ktime.as_nanos(),
            pid_tgid: ctx.pid_tgid,
            ..ExecEnv::default()
        };
        let outcome = match self.vm.execute(program, &buf, &mut self.maps, &mut env) {
            Ok(outcome) => outcome,
            // Construction verified both programs; accepted programs
            // cannot fault.
            Err(e) => unreachable!("verified program faulted: {e:?}"),
        };
        Nanos::from_nanos((outcome.insns_executed as f64 * NS_PER_INSN).round() as u64)
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kscope_ebpf::maps::MapDef;
    use kscope_ebpf::text::parse_program;
    use kscope_syscalls::{pid_tgid, NetCtx, SyscallNo};

    fn fire(probe: &mut CustomProbe, phase: TracePhase, no: SyscallNo, t_us: u64) {
        probe.fire(&TracepointCtx {
            phase,
            no,
            pid_tgid: pid_tgid(1, 2),
            ktime: Nanos::from_micros(t_us),
            ret: 9,
            net: NetCtx::NONE,
        });
    }

    #[test]
    fn exit_only_counter_program() {
        let mut maps = MapRegistry::new();
        let counts = maps.create("counts", MapDef::array(8, 1));
        let exit = parse_program(
            "count_all",
            r"
            stw   [r10-4], 0
            ld_map_fd r1, 0
            mov   r2, r10
            add   r2, -4
            call  bpf_map_lookup_elem
            jne   r0, 0, ok
            mov   r0, 0
            exit
        ok:
            ldxdw r1, [r0+0]
            add   r1, 1
            stxdw [r0+0], r1
            mov   r0, 0
            exit
        ",
        )
        .unwrap();
        let mut probe = CustomProbe::new(None, Some(exit), maps).unwrap();
        fire(&mut probe, TracePhase::Exit, SyscallNo::READ, 1);
        fire(&mut probe, TracePhase::Enter, SyscallNo::READ, 2); // no enter prog
        fire(&mut probe, TracePhase::Exit, SyscallNo::SENDMSG, 3);
        assert_eq!(probe.maps().array_u64(counts, 0).unwrap(), 2);
        assert_eq!(probe.name(), "count_all");
    }

    #[test]
    fn bad_programs_are_rejected_at_construction() {
        let maps = MapRegistry::new();
        let bad = parse_program("bad", "ldxdw r0, [r10-8]\nexit").unwrap();
        let err = CustomProbe::new(None, Some(bad), maps).unwrap_err();
        assert!(matches!(err, BuildError::Verify(_)), "{err}");
    }

    #[test]
    fn missing_edges_cost_nothing() {
        let maps = MapRegistry::new();
        let mut probe = CustomProbe::new(None, None, maps).unwrap();
        let cost = probe.fire(&TracepointCtx {
            phase: TracePhase::Enter,
            no: SyscallNo::READ,
            pid_tgid: 1,
            ktime: Nanos::ZERO,
            ret: 0,
            net: NetCtx::NONE,
        });
        assert_eq!(cost, Nanos::ZERO);
    }
}
