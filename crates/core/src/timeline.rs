//! Per-request timeline reconstruction for simple threading (Fig. 1c).
//!
//! When a single thread handles a whole request — `epoll` → `recv` →
//! compute → `send` — the recv and send syscalls of that request can be
//! paired from the trace alone, yielding service-time estimates without any
//! application cooperation (§III). The paper notes this breaks down once
//! requests hop between threads; [`reconstruct`] therefore pairs per
//! thread and reports how much of the trace it could explain, so callers
//! can detect when the simple model does not apply.

use kscope_simcore::Nanos;
use kscope_syscalls::{SyscallEvent, SyscallProfile, SyscallRole, Tid, Trace};

/// One reconstructed request: a recv/send pair on the same thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestSpan {
    /// Thread that served the request.
    pub tid: Tid,
    /// The receive syscall that read the request.
    pub recv: SyscallEvent,
    /// The (first) send syscall that wrote the response.
    pub send: SyscallEvent,
}

impl RequestSpan {
    /// Service-time estimate: receive completion to send completion.
    pub fn service_time(&self) -> Nanos {
        self.send.exit.saturating_sub(self.recv.exit)
    }
}

/// Result of a reconstruction pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineReport {
    /// Paired requests, in completion order.
    pub spans: Vec<RequestSpan>,
    /// Receive events that never found a matching send (in-flight at trace
    /// end, or multi-thread handoff).
    pub unmatched_recvs: usize,
    /// Send events with no preceding receive on their thread (responses
    /// served by a different thread than the one that read the request).
    pub orphan_sends: usize,
}

impl TimelineReport {
    /// Fraction of send events explained by a same-thread pairing; near 1.0
    /// means the simple single-thread model applies (§III), near 0 means
    /// requests hop threads and only aggregate statistics are usable.
    pub fn pairing_rate(&self) -> f64 {
        let total = self.spans.len() + self.orphan_sends;
        if total == 0 {
            0.0
        } else {
            self.spans.len() as f64 / total as f64
        }
    }

    /// Service times of all paired requests.
    pub fn service_times(&self) -> Vec<Nanos> {
        self.spans.iter().map(RequestSpan::service_time).collect()
    }
}

/// Pairs recv→send per thread across the trace.
///
/// Consecutive sends after one receive (segmented responses) are attributed
/// to the same request: only the first send closes the span, later sends
/// before the next receive are ignored rather than counted as orphans.
pub fn reconstruct(trace: &Trace, profile: &SyscallProfile) -> TimelineReport {
    use std::collections::HashMap;
    let mut pending_recv: HashMap<Tid, SyscallEvent> = HashMap::new();
    let mut in_response: HashMap<Tid, bool> = HashMap::new();
    let mut spans = Vec::new();
    let mut orphan_sends = 0usize;

    for &event in trace.events() {
        match profile.role_of(event.no) {
            Some(SyscallRole::Receive) => {
                pending_recv.insert(event.tid, event);
                in_response.insert(event.tid, false);
            }
            Some(SyscallRole::Send) => {
                if let Some(recv) = pending_recv.remove(&event.tid) {
                    spans.push(RequestSpan {
                        tid: event.tid,
                        recv,
                        send: event,
                    });
                    in_response.insert(event.tid, true);
                } else if !in_response.get(&event.tid).copied().unwrap_or(false) {
                    orphan_sends += 1;
                }
            }
            _ => {}
        }
    }
    TimelineReport {
        spans,
        unmatched_recvs: pending_recv.len(),
        orphan_sends,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kscope_syscalls::SyscallNo;

    fn ev(no: SyscallNo, tid: Tid, exit_us: u64) -> SyscallEvent {
        SyscallEvent {
            tid,
            pid: 1,
            no,
            enter: Nanos::from_micros(exit_us.saturating_sub(1)),
            exit: Nanos::from_micros(exit_us),
            ret: 1,
        }
    }

    fn profile() -> SyscallProfile {
        SyscallProfile::data_caching()
    }

    #[test]
    fn pairs_single_thread_cycles() {
        let trace: Trace = vec![
            ev(SyscallNo::EPOLL_WAIT, 1, 10),
            ev(SyscallNo::READ, 1, 12),
            ev(SyscallNo::SENDMSG, 1, 30),
            ev(SyscallNo::EPOLL_WAIT, 1, 40),
            ev(SyscallNo::READ, 1, 42),
            ev(SyscallNo::SENDMSG, 1, 55),
        ]
        .into_iter()
        .collect();
        let report = reconstruct(&trace, &profile());
        assert_eq!(report.spans.len(), 2);
        assert_eq!(report.unmatched_recvs, 0);
        assert_eq!(report.orphan_sends, 0);
        assert_eq!(report.pairing_rate(), 1.0);
        assert_eq!(report.spans[0].service_time(), Nanos::from_micros(18));
        assert_eq!(report.spans[1].service_time(), Nanos::from_micros(13));
    }

    #[test]
    fn segmented_responses_count_once() {
        let trace: Trace = vec![
            ev(SyscallNo::READ, 1, 10),
            ev(SyscallNo::SENDMSG, 1, 20),
            ev(SyscallNo::SENDMSG, 1, 21),
            ev(SyscallNo::SENDMSG, 1, 22),
        ]
        .into_iter()
        .collect();
        let report = reconstruct(&trace, &profile());
        assert_eq!(report.spans.len(), 1);
        assert_eq!(report.orphan_sends, 0);
    }

    #[test]
    fn cross_thread_handoff_surfaces_as_orphans() {
        // Thread 1 reads; thread 2 sends the response.
        let trace: Trace = vec![
            ev(SyscallNo::READ, 1, 10),
            ev(SyscallNo::SENDMSG, 2, 25),
        ]
        .into_iter()
        .collect();
        let report = reconstruct(&trace, &profile());
        assert_eq!(report.spans.len(), 0);
        assert_eq!(report.unmatched_recvs, 1);
        assert_eq!(report.orphan_sends, 1);
        assert_eq!(report.pairing_rate(), 0.0);
    }

    #[test]
    fn interleaved_threads_pair_independently() {
        let trace: Trace = vec![
            ev(SyscallNo::READ, 1, 10),
            ev(SyscallNo::READ, 2, 11),
            ev(SyscallNo::SENDMSG, 2, 20),
            ev(SyscallNo::SENDMSG, 1, 31),
        ]
        .into_iter()
        .collect();
        let report = reconstruct(&trace, &profile());
        assert_eq!(report.spans.len(), 2);
        let by_tid: Vec<(Tid, u64)> = report
            .spans
            .iter()
            .map(|s| (s.tid, s.service_time().as_micros()))
            .collect();
        assert!(by_tid.contains(&(1, 21)));
        assert!(by_tid.contains(&(2, 9)));
    }

    #[test]
    fn empty_trace_is_empty_report() {
        let report = reconstruct(&Trace::new(), &profile());
        assert!(report.spans.is_empty());
        assert_eq!(report.pairing_rate(), 0.0);
        assert!(report.service_times().is_empty());
    }
}
