//! The three request-level estimators of the paper.
//!
//! * [`RpsEstimator`] — Eq. 1: throughput from the mean inter-send delta;
//! * [`SaturationDetector`] — Eq. 2: saturation from an unexpected rise of
//!   the inter-send variance (§IV-C1);
//! * [`SlackEstimator`] — saturation slack from mean poll duration
//!   (§IV-C2).

use crate::counters::WindowMetrics;

/// The paper's recommended minimum sample count for a stable Eq. 1
/// estimate ("at least 2048 syscalls").
pub const PAPER_MIN_SAMPLES: u64 = 2048;

/// Observed-RPS estimator (Eq. 1).
///
/// # Examples
///
/// ```
/// use kscope_core::{RpsEstimator, WindowMetrics, RawCounters};
/// use kscope_simcore::Nanos;
///
/// let mut counters = RawCounters::new(0);
/// for _ in 0..4096 {
///     counters.send.push(1_000_000); // 1ms between sends
/// }
/// let w = WindowMetrics::from_counters(Nanos::ZERO, Nanos::from_secs(4), &counters);
/// let est = RpsEstimator::default();
/// assert!((est.from_window(&w).unwrap() - 1_000.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RpsEstimator {
    /// Minimum send samples for a confident estimate.
    pub min_samples: u64,
}

impl Default for RpsEstimator {
    fn default() -> Self {
        RpsEstimator {
            min_samples: PAPER_MIN_SAMPLES,
        }
    }
}

impl RpsEstimator {
    /// An estimator accepting windows with at least `min_samples` deltas.
    pub fn with_min_samples(min_samples: u64) -> RpsEstimator {
        RpsEstimator { min_samples }
    }

    /// Eq. 1 over one window; `None` when the window is too thin.
    pub fn from_window(&self, w: &WindowMetrics) -> Option<f64> {
        if w.send_samples < self.min_samples {
            return None;
        }
        w.rps_obsv
    }

    /// Sample-weighted Eq. 1 over several windows (equivalent to one big
    /// window); `None` when the combined windows are too thin.
    pub fn from_windows(&self, windows: &[WindowMetrics]) -> Option<f64> {
        let mut samples = 0u64;
        let mut delta_time = 0.0f64;
        for w in windows {
            if let Some(rps) = w.rps_obsv {
                samples += w.send_samples;
                delta_time += w.send_samples as f64 / rps;
            }
        }
        if samples < self.min_samples || delta_time <= 0.0 {
            return None;
        }
        Some(samples as f64 / delta_time)
    }
}

/// Saturation assessment from the variance signal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaturationAssessment {
    /// Whether the detector currently flags saturation.
    pub saturated: bool,
    /// The window's inter-send variance (ns²).
    pub variance: f64,
    /// The running variance floor (minimum seen at high throughput).
    pub variance_floor: f64,
    /// The window's observed RPS.
    pub rps: f64,
    /// The highest observed RPS so far.
    pub max_rps_seen: f64,
}

/// Online saturation detector (Eq. 2 variance knee, §IV-C1).
///
/// Tracks the running minimum of `var(Δt_send)` and the running maximum of
/// observed RPS. Below the knee the variance keeps falling as load rises;
/// once the server saturates, the variance turns upward while observed RPS
/// stops growing — the detector flags windows whose variance exceeds the
/// floor by `rise_factor` while throughput is within `rps_band` of the
/// maximum seen.
#[derive(Debug, Clone, PartialEq)]
pub struct SaturationDetector {
    /// Variance must exceed its floor by this factor.
    pub rise_factor: f64,
    /// Only windows with RPS ≥ `rps_band · max_rps_seen` can flag (filters
    /// out the high-variance low-load regime).
    pub rps_band: f64,
    /// Minimum send samples per window.
    pub min_samples: u64,
    variance_floor: Option<f64>,
    max_rps: f64,
}

impl Default for SaturationDetector {
    fn default() -> Self {
        SaturationDetector {
            rise_factor: 1.3,
            rps_band: 0.85,
            min_samples: 256,
            variance_floor: None,
            max_rps: 0.0,
        }
    }
}

impl SaturationDetector {
    /// A detector with a custom rise factor.
    pub fn with_rise_factor(rise_factor: f64) -> SaturationDetector {
        SaturationDetector {
            rise_factor,
            ..SaturationDetector::default()
        }
    }

    /// Feeds one window; returns an assessment when the window carries
    /// enough signal.
    pub fn observe(&mut self, w: &WindowMetrics) -> Option<SaturationAssessment> {
        let variance = w.var_send?;
        let rps = w.rps_obsv?;
        if w.send_samples < self.min_samples {
            return None;
        }
        self.max_rps = self.max_rps.max(rps);
        let near_peak = rps >= self.rps_band * self.max_rps;
        // The floor only tracks high-throughput windows: variance at low
        // load is dominated by arrival gaps, not contention.
        if near_peak {
            self.variance_floor = Some(match self.variance_floor {
                Some(floor) => floor.min(variance),
                None => variance,
            });
        }
        let floor = self.variance_floor.unwrap_or(variance);
        Some(SaturationAssessment {
            saturated: near_peak && variance > self.rise_factor * floor,
            variance,
            variance_floor: floor,
            rps,
            max_rps_seen: self.max_rps,
        })
    }
}

/// Slack assessment from the poll-duration signal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlackAssessment {
    /// Mean poll duration in this window (ns).
    pub poll_mean_ns: f64,
    /// Estimated headroom in `[0, 1]`: 1 = fully idle, 0 = saturated.
    pub headroom: f64,
    /// Whether the headroom is below the saturation threshold.
    pub saturated: bool,
}

/// Saturation-slack estimator (§IV-C2).
///
/// Poll durations shrink as load rises and stabilize at a floor at
/// saturation. Headroom is the window's mean poll duration positioned
/// between the floor and the largest (idlest) mean seen, on a log scale —
/// poll durations span orders of magnitude across the load range.
#[derive(Debug, Clone, PartialEq)]
pub struct SlackEstimator {
    /// Poll-duration floor in ns (syscall overhead at zero idleness).
    pub floor_ns: f64,
    /// Headroom below this threshold flags saturation.
    pub saturation_threshold: f64,
    /// Minimum poll completions per window.
    pub min_samples: u64,
    reference_ns: Option<f64>,
}

impl Default for SlackEstimator {
    fn default() -> Self {
        SlackEstimator {
            floor_ns: 4_000.0,
            saturation_threshold: 0.1,
            min_samples: 16,
            reference_ns: None,
        }
    }
}

impl SlackEstimator {
    /// An estimator with a custom duration floor.
    pub fn with_floor_ns(floor_ns: f64) -> SlackEstimator {
        SlackEstimator {
            floor_ns,
            ..SlackEstimator::default()
        }
    }

    /// Feeds one window; returns an assessment when poll activity exists.
    pub fn observe(&mut self, w: &WindowMetrics) -> Option<SlackAssessment> {
        let mean = w.poll_mean_ns?;
        if w.poll_count < self.min_samples {
            return None;
        }
        let reference = match self.reference_ns {
            Some(r) => {
                let r = r.max(mean);
                self.reference_ns = Some(r);
                r
            }
            None => {
                self.reference_ns = Some(mean);
                mean
            }
        };
        let headroom = if reference <= self.floor_ns {
            0.0
        } else {
            let num = (mean.max(self.floor_ns) / self.floor_ns).ln();
            let den = (reference / self.floor_ns).ln();
            (num / den).clamp(0.0, 1.0)
        };
        Some(SlackAssessment {
            poll_mean_ns: mean,
            headroom,
            saturated: headroom < self.saturation_threshold,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::RawCounters;
    use kscope_simcore::Nanos;

    fn window(send_deltas_ns: &[u64], poll_durs_ns: &[u64]) -> WindowMetrics {
        let mut counters = RawCounters::new(0);
        for &d in send_deltas_ns {
            counters.send.push(d);
        }
        for &d in poll_durs_ns {
            counters.poll.push(d);
        }
        WindowMetrics::from_counters(Nanos::ZERO, Nanos::from_secs(1), &counters)
    }

    #[test]
    fn rps_estimator_requires_min_samples() {
        let est = RpsEstimator::with_min_samples(10);
        let thin = window(&[1_000_000; 5], &[]);
        assert_eq!(est.from_window(&thin), None);
        let thick = window(&[1_000_000; 20], &[]);
        assert!((est.from_window(&thick).unwrap() - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn rps_from_windows_pools_samples() {
        let est = RpsEstimator::with_min_samples(30);
        let w = window(&[2_000_000; 20], &[]); // 500 rps each
        assert_eq!(est.from_window(&w), None);
        let pooled = est.from_windows(&[w, w]).unwrap();
        assert!((pooled - 500.0).abs() < 1e-9, "pooled {pooled}");
    }

    #[test]
    fn saturation_detector_flags_variance_rise_at_peak() {
        let mut det = SaturationDetector {
            min_samples: 4,
            ..SaturationDetector::default()
        };
        // Load ramp: variance falls as rps rises.
        let ramp = [
            window(&[4_000_000; 64], &[]), // 250 rps, wide deltas
            window(&[2_000_000; 64], &[]),
            window(&[1_000_000; 64], &[]),
        ];
        for w in &ramp {
            let a = det.observe(w).unwrap();
            assert!(!a.saturated, "{a:?}");
        }
        // Saturated: same mean rate but bursty deltas (high variance).
        let mut bursty = Vec::new();
        for _ in 0..32 {
            bursty.push(100_000u64);
            bursty.push(1_900_000u64);
        }
        let sat = window(&bursty, &[]);
        let a = det.observe(&sat).unwrap();
        assert!(a.saturated, "{a:?}");
        assert!(a.variance > a.variance_floor);
    }

    #[test]
    fn saturation_detector_ignores_low_load_variance() {
        let mut det = SaturationDetector {
            min_samples: 4,
            ..SaturationDetector::default()
        };
        det.observe(&window(&[1_000_000; 64], &[])).unwrap(); // 1000 rps
        // Low load: huge variance but far from peak rps.
        let mut sparse = Vec::new();
        for _ in 0..16 {
            sparse.push(1_000_000u64);
            sparse.push(30_000_000u64);
        }
        let a = det.observe(&window(&sparse, &[])).unwrap();
        assert!(!a.saturated, "{a:?}");
    }

    #[test]
    fn slack_estimator_tracks_idleness() {
        let mut est = SlackEstimator {
            min_samples: 2,
            ..SlackEstimator::default()
        };
        let idle = est.observe(&window(&[], &[4_000_000; 8])).unwrap();
        assert!(idle.headroom > 0.9, "{idle:?}");
        assert!(!idle.saturated);
        let mid = est.observe(&window(&[], &[200_000; 8])).unwrap();
        assert!(mid.headroom > 0.2 && mid.headroom < 0.9, "{mid:?}");
        let sat = est.observe(&window(&[], &[4_500; 8])).unwrap();
        assert!(sat.headroom < 0.1, "{sat:?}");
        assert!(sat.saturated);
    }

    #[test]
    fn slack_estimator_needs_poll_samples() {
        let mut est = SlackEstimator::default();
        assert_eq!(est.observe(&window(&[1_000; 4], &[])), None);
        assert_eq!(est.observe(&window(&[], &[1_000; 4])), None); // < 16
    }

    #[test]
    fn rps_estimator_default_uses_paper_threshold() {
        assert_eq!(RpsEstimator::default().min_samples, PAPER_MIN_SAMPLES);
    }
}
