//! The streaming collector: raw events over a BPF ring buffer.
//!
//! §III of the paper: "Initially, we streamed all available eBPF trace data
//! to user space to explore potential correlations... Subsequently, we
//! leveraged eBPF capabilities to compute these metrics directly within the
//! eBPF space." This module is that first mode: a bytecode program that
//! pushes one fixed-size record per matched tracepoint firing into a ring
//! buffer, and a userspace side that drains the buffer and reconstructs
//! [`SyscallEvent`]s by pairing enters with exits.
//!
//! It exists for two reasons: it validates the aggregating probes against
//! an independent path (the streamed trace must equal the kernel's own
//! trace for the filtered subset), and it demonstrates *why* the paper
//! moved to in-kernel aggregation — under load the ring buffer overflows
//! and [`StreamingProbe::dropped`] starts counting.

use kscope_ebpf::asm::Asm;
use kscope_ebpf::insn::{R0, R1, R2, R3, R4, R6, R8, R9, R10, SZ_DW};
use kscope_ebpf::interp::{ExecEnv, Vm};
use kscope_ebpf::maps::{MapDef, MapFd, MapRegistry};
use kscope_ebpf::verifier::{Verifier, VerifierConfig};
use kscope_ebpf::{Helper, Program};
use kscope_kernel::TracepointProbe;
use kscope_simcore::Nanos;
use kscope_syscalls::{
    Pid, SyscallEvent, SyscallNo, SyscallProfile, Trace, TracePhase, TracepointCtx,
};

use crate::bytecode::{BuildError, CTX_SIZE, NS_PER_INSN};

/// Size of one streamed record: `[phase][syscall id][pid_tgid][ktime]`.
pub const RECORD_SIZE: usize = 32;

/// One drained ring-buffer record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamedEvent {
    /// Which tracepoint edge fired.
    pub phase: TracePhase,
    /// The syscall.
    pub no: SyscallNo,
    /// Packed `pid_tgid`.
    pub pid_tgid: u64,
    /// The helper-read timestamp.
    pub ktime: Nanos,
}

/// A tracepoint probe that streams matched events through a ring buffer.
///
/// # Examples
///
/// ```
/// use kscope_core::streaming::StreamingProbe;
/// use kscope_kernel::TracepointProbe;
/// use kscope_simcore::Nanos;
/// use kscope_syscalls::{pid_tgid, NetCtx, SyscallNo, SyscallProfile, TracePhase, TracepointCtx};
///
/// let mut probe = StreamingProbe::new(7, SyscallProfile::data_caching(), 4096).unwrap();
/// probe.fire(&TracepointCtx {
///     phase: TracePhase::Exit,
///     no: SyscallNo::SENDMSG,
///     pid_tgid: pid_tgid(7, 8),
///     ktime: Nanos::from_micros(5),
///     ret: 64,
///     net: NetCtx::NONE,
/// });
/// let events = probe.drain();
/// assert_eq!(events.len(), 1);
/// assert_eq!(events[0].no, SyscallNo::SENDMSG);
/// ```
#[derive(Debug)]
pub struct StreamingProbe {
    maps: MapRegistry,
    vm: Vm,
    program: Program,
    ring_fd: MapFd,
    tgid: Pid,
}

impl StreamingProbe {
    /// Builds the streaming probe for one process; the ring buffer holds
    /// up to `capacity` records before dropping.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if the generated program fails assembly or
    /// verification (a generator bug).
    pub fn new(
        tgid: Pid,
        profile: SyscallProfile,
        capacity: u32,
    ) -> Result<StreamingProbe, BuildError> {
        let mut maps = MapRegistry::new();
        let ring_fd = maps.create("events", MapDef::ring_buf(RECORD_SIZE as u32, capacity));

        let send_no = profile.primary(kscope_syscalls::SyscallRole::Send).raw() as i32;
        let recv_no = profile.primary(kscope_syscalls::SyscallRole::Receive).raw() as i32;
        let poll_no = profile.primary(kscope_syscalls::SyscallRole::Poll).raw() as i32;

        let program = build_streamer(tgid, send_no, recv_no, poll_no, ring_fd)
            .map_err(BuildError::Asm)?;
        Verifier::new(VerifierConfig {
            ctx_size: CTX_SIZE,
            ..VerifierConfig::default()
        })
        .verify(&program, &maps)
        .map_err(BuildError::Verify)?;

        Ok(StreamingProbe {
            maps,
            vm: Vm::new(),
            program,
            ring_fd,
            tgid,
        })
    }

    /// The observed process.
    pub fn tgid(&self) -> Pid {
        self.tgid
    }

    /// Records dropped because the ring buffer was full — the reason the
    /// paper computes metrics in kernel space instead.
    pub fn dropped(&self) -> u64 {
        match self.maps.ring_dropped(self.ring_fd) {
            Ok(dropped) => dropped,
            // `ring_fd` was created in `new` and fds are never closed.
            Err(e) => unreachable!("backend-owned ring buffer vanished: {e}"),
        }
    }

    /// Drains all pending records (the userspace consumer).
    ///
    /// Decoding happens in place through [`MapRegistry::ring_consume`],
    /// so the ring's record buffers are recycled rather than handed out:
    /// the only allocation here is the returned event vector itself.
    pub fn drain(&mut self) -> Vec<StreamedEvent> {
        let mut events = Vec::new();
        let consumed = self.maps.ring_consume(self.ring_fd, |record| {
            let cell = |i: usize| -> u64 {
                match record[i * 8..(i + 1) * 8].try_into() {
                    Ok(bytes) => u64::from_le_bytes(bytes),
                    Err(_) => unreachable!("an 8-byte slice converts to [u8; 8]"),
                }
            };
            events.push(StreamedEvent {
                phase: if cell(0) == 0 {
                    TracePhase::Enter
                } else {
                    TracePhase::Exit
                },
                no: SyscallNo::from_raw(cell(1) as u32),
                pid_tgid: cell(2),
                ktime: Nanos::from_nanos(cell(3)),
            });
        });
        match consumed {
            Ok(_) => events,
            // `ring_fd` was created in `new` and fds are never closed.
            Err(e) => unreachable!("backend-owned ring buffer vanished: {e}"),
        }
    }

    /// Pairs drained enter/exit records into completed [`SyscallEvent`]s
    /// (per thread, like the kernel's own pairing). Unpaired records are
    /// dropped.
    pub fn reconstruct(events: &[StreamedEvent]) -> Trace {
        use std::collections::HashMap;
        let mut open: HashMap<(u64, u32), Nanos> = HashMap::new();
        let mut trace = Trace::new();
        for ev in events {
            let key = (ev.pid_tgid, ev.no.raw());
            match ev.phase {
                TracePhase::Enter => {
                    open.insert(key, ev.ktime);
                }
                TracePhase::Exit => {
                    if let Some(enter) = open.remove(&key) {
                        let (tgid, tid) = kscope_syscalls::split_pid_tgid(ev.pid_tgid);
                        trace.push(SyscallEvent {
                            tid,
                            pid: tgid,
                            no: ev.no,
                            enter,
                            exit: ev.ktime,
                            ret: 0,
                        });
                    }
                }
                // The streamer only attaches to the raw_syscalls
                // tracepoints; net-phase records cannot appear.
                TracePhase::NetRxSoftirq | TracePhase::SockQueueDrain => {}
            }
        }
        trace
    }
}

impl TracepointProbe for StreamingProbe {
    fn name(&self) -> &str {
        "ebpf-streaming"
    }

    fn fire(&mut self, ctx: &TracepointCtx) -> Nanos {
        // Only attached to the raw_syscalls tracepoints: net-phase
        // firings cost nothing here, as in real eBPF.
        if ctx.phase.is_net() {
            return Nanos::ZERO;
        }
        let mut buf = [0u8; CTX_SIZE];
        buf[..8].copy_from_slice(&(ctx.no.raw() as u64).to_le_bytes());
        // The streamer reads the phase from the second context word (our
        // simulated tracepoint tells the program which edge it is on; real
        // deployments attach two programs instead).
        let phase = match ctx.phase {
            TracePhase::Enter => 0u64,
            TracePhase::Exit => 1u64,
            TracePhase::NetRxSoftirq | TracePhase::SockQueueDrain => return Nanos::ZERO,
        };
        buf[8..16].copy_from_slice(&phase.to_le_bytes());
        let mut env = ExecEnv {
            ktime_ns: ctx.ktime.as_nanos(),
            pid_tgid: ctx.pid_tgid,
            ..ExecEnv::default()
        };
        let outcome = match self.vm.execute(&self.program, &buf, &mut self.maps, &mut env) {
            Ok(outcome) => outcome,
            // Construction verified the program; accepted programs
            // cannot fault.
            Err(e) => unreachable!("verified program faulted: {e:?}"),
        };
        Nanos::from_nanos((outcome.insns_executed as f64 * NS_PER_INSN).round() as u64)
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Builds the streaming program: filter tgid + profile syscalls, then
/// `bpf_ringbuf_output` a 32-byte record.
fn build_streamer(
    tgid: Pid,
    send_no: i32,
    recv_no: i32,
    poll_no: i32,
    ring_fd: MapFd,
) -> Result<Program, kscope_ebpf::asm::AsmError> {
    Asm::new("kscope_streamer")
        .mov64_reg(R9, R1) // save ctx
        .call(Helper::GetCurrentPidTgid)
        .mov64_reg(R6, R0)
        .mov64_reg(R2, R6)
        .rsh64_imm(R2, 32)
        .jne_imm(R2, tgid as i32, "out")
        .load(SZ_DW, R8, R9, 0) // args->id
        .jeq_imm(R8, send_no, "emit")
        .jeq_imm(R8, recv_no, "emit")
        .jeq_imm(R8, poll_no, "emit")
        .label("out")
        .mov64_imm(R0, 0)
        .exit()
        .label("emit")
        // Assemble the record on the stack: [phase][id][pid_tgid][ktime].
        .load(SZ_DW, R2, R9, 8) // phase word from ctx
        .store_reg(SZ_DW, R10, R2, -32)
        .store_reg(SZ_DW, R10, R8, -24)
        .store_reg(SZ_DW, R10, R6, -16)
        .call(Helper::KtimeGetNs)
        .store_reg(SZ_DW, R10, R0, -8)
        .ld_map_fd(R1, ring_fd)
        .mov64_reg(R2, R10)
        .add64_imm(R2, -32)
        .mov64_imm(R3, RECORD_SIZE as i32)
        .mov64_imm(R4, 0)
        .call(Helper::RingbufOutput)
        .mov64_imm(R0, 0)
        .exit()
        .assemble()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kscope_syscalls::{pid_tgid, NetCtx};

    fn ctx(phase: TracePhase, no: SyscallNo, tid: u32, t_us: u64) -> TracepointCtx {
        TracepointCtx {
            phase,
            no,
            pid_tgid: pid_tgid(7, tid),
            ktime: Nanos::from_micros(t_us),
            ret: 1,
            net: NetCtx::NONE,
        }
    }

    #[test]
    fn streams_matched_events_in_order() {
        let mut probe = StreamingProbe::new(7, SyscallProfile::data_caching(), 64).unwrap();
        probe.fire(&ctx(TracePhase::Enter, SyscallNo::EPOLL_WAIT, 1, 10));
        probe.fire(&ctx(TracePhase::Exit, SyscallNo::EPOLL_WAIT, 1, 40));
        probe.fire(&ctx(TracePhase::Exit, SyscallNo::FUTEX, 1, 50)); // filtered
        probe.fire(&ctx(TracePhase::Exit, SyscallNo::READ, 1, 60));
        let events = probe.drain();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].phase, TracePhase::Enter);
        assert_eq!(events[1].ktime, Nanos::from_micros(40));
        assert_eq!(events[2].no, SyscallNo::READ);
        assert_eq!(probe.dropped(), 0);
        // Drained: the buffer is empty now.
        assert!(probe.drain().is_empty());
    }

    #[test]
    fn overflow_counts_drops() {
        let mut probe = StreamingProbe::new(7, SyscallProfile::data_caching(), 4).unwrap();
        for i in 0..10 {
            probe.fire(&ctx(TracePhase::Exit, SyscallNo::READ, 1, 10 + i));
        }
        assert_eq!(probe.drain().len(), 4);
        assert_eq!(probe.dropped(), 6);
    }

    #[test]
    fn foreign_processes_are_filtered() {
        let mut probe = StreamingProbe::new(7, SyscallProfile::data_caching(), 16).unwrap();
        let mut foreign = ctx(TracePhase::Exit, SyscallNo::READ, 1, 5);
        foreign.pid_tgid = pid_tgid(99, 1);
        probe.fire(&foreign);
        assert!(probe.drain().is_empty());
    }

    #[test]
    fn reconstruct_pairs_per_thread() {
        let events = vec![
            StreamedEvent {
                phase: TracePhase::Enter,
                no: SyscallNo::EPOLL_WAIT,
                pid_tgid: pid_tgid(7, 1),
                ktime: Nanos::from_micros(10),
            },
            StreamedEvent {
                phase: TracePhase::Enter,
                no: SyscallNo::EPOLL_WAIT,
                pid_tgid: pid_tgid(7, 2),
                ktime: Nanos::from_micros(12),
            },
            StreamedEvent {
                phase: TracePhase::Exit,
                no: SyscallNo::EPOLL_WAIT,
                pid_tgid: pid_tgid(7, 2),
                ktime: Nanos::from_micros(20),
            },
            StreamedEvent {
                phase: TracePhase::Exit,
                no: SyscallNo::EPOLL_WAIT,
                pid_tgid: pid_tgid(7, 1),
                ktime: Nanos::from_micros(50),
            },
        ];
        let trace = StreamingProbe::reconstruct(&events);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.events()[0].tid, 2);
        assert_eq!(trace.events()[0].duration(), Nanos::from_micros(8));
        assert_eq!(trace.events()[1].duration(), Nanos::from_micros(40));
    }
}
