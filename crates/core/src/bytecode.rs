//! The bytecode metric backend: the paper's methodology as *actual eBPF
//! programs*, assembled, verified, and interpreted by `kscope-ebpf`.
//!
//! Two programs are generated per observed process, mirroring Listing 1's
//! structure:
//!
//! * **sys_enter** — filter tgid, filter the poll syscall, store
//!   `start[pid_tgid] = bpf_ktime_get_ns()`;
//! * **sys_exit** — filter tgid, classify the syscall into
//!   send/receive/poll, and update the twelve-cell stats map value:
//!   inter-exit deltas (scaled, with sum and sum-of-squares for Eq. 2) for
//!   send and receive, durations for poll.
//!
//! The tracepoint context handed to the programs is 16 bytes:
//! `[syscall id: u64][return value: u64]` — id and return value are the only
//! tracepoint fields the methodology reads; timestamps and pid come from
//! the `bpf_ktime_get_ns` / `bpf_get_current_pid_tgid` helpers, as in real
//! eBPF.

use kscope_ebpf::asm::Asm;
use kscope_ebpf::insn::{OP_JLT, R0, R1, R2, R3, R4, R5, R6, R7, R8, R9, R10, SZ_DW, SZ_W};
use kscope_ebpf::interp::{ExecEnv, Vm};
use kscope_ebpf::maps::{MapDef, MapFd, MapRegistry};
use kscope_ebpf::verifier::{Verifier, VerifierConfig};
use kscope_ebpf::{cost_report, CostReport, Helper, Program};
use kscope_simcore::Nanos;
use kscope_syscalls::{Pid, SyscallProfile, SyscallRole, TracePhase, TracepointCtx};

use crate::counters::{offsets, RawCounters};
use crate::observer::MetricBackend;

/// Modeled cost of one interpreted eBPF instruction.
pub const NS_PER_INSN: f64 = 5.0;

/// Size of the context buffer the syscall programs receive.
pub const CTX_SIZE: usize = 16;

/// Size of the context buffer the network-stack programs receive:
/// `[request: u64][stage residency ns: u64][bytes or queue depth: u64]` —
/// the fields of the modeled `net_rx_softirq`/`sock_queue_drain`
/// tracepoints (see [`kscope_syscalls::NetCtx`]).
pub const NET_CTX_SIZE: usize = 24;

/// Buckets in the in-probe log2 histogram of poll durations.
pub const HIST_BUCKETS: usize = 64;

/// Byte offsets into the netstack probe's 32-byte `stack_stats` array
/// value.
pub mod stack_offsets {
    /// Completed time-in-stack samples.
    pub const COUNT: usize = 0;
    /// Sum of scaled time-in-stack samples.
    pub const SUM: usize = 8;
    /// Sum of squared scaled samples.
    pub const SUMSQ: usize = 16;
    /// Drain events whose request had no in-flight entry (e.g. the
    /// entry was evicted, or the rx edge was never seen).
    pub const MISSES: usize = 24;
    /// Total value size in bytes.
    pub const VALUE_SIZE: usize = 32;
}

/// Decoded `stack_stats` cells of the netstack probe.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StackCounters {
    /// Completed time-in-stack samples.
    pub count: u64,
    /// Sum of scaled samples.
    pub sum: u64,
    /// Sum of squared scaled samples.
    pub sumsq: u64,
    /// Drain events with no matching rx entry.
    pub misses: u64,
}

/// Errors from building the bytecode probe.
#[derive(Debug)]
pub enum BuildError {
    /// The generated program failed to assemble (a builder bug).
    Asm(kscope_ebpf::asm::AsmError),
    /// The generated program failed verification (a builder bug).
    Verify(kscope_ebpf::verifier::VerifyError),
    /// The probe's certified worst-case cost exceeds the registration
    /// budget (or no finite bound exists).
    CostBudget {
        /// Name of the offending program.
        program: String,
        /// Certified worst-case instruction bound (`None`: no finite
        /// bound could be certified).
        bound: Option<u64>,
        /// The budget the probe was registered against.
        budget: u64,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Asm(e) => write!(f, "assembly failed: {e}"),
            BuildError::Verify(e) => write!(f, "verification failed: {e}"),
            BuildError::CostBudget { program, bound: Some(bound), budget } => write!(
                f,
                "probe '{program}' worst-case cost {bound} insns exceeds budget {budget}"
            ),
            BuildError::CostBudget { program, bound: None, budget } => write!(
                f,
                "probe '{program}' has no finite cost bound (budget {budget})"
            ),
        }
    }
}

impl std::error::Error for BuildError {}

/// The eBPF-executed observability probe.
///
/// # Examples
///
/// ```
/// use kscope_core::{BytecodeBackend, MetricBackend};
/// use kscope_simcore::Nanos;
/// use kscope_syscalls::{pid_tgid, NetCtx, SyscallNo, SyscallProfile, TracePhase, TracepointCtx};
///
/// let mut probe = BytecodeBackend::new(1200, SyscallProfile::data_caching(), 10).unwrap();
/// for i in 1..=3u64 {
///     probe.on_event(&TracepointCtx {
///         phase: TracePhase::Exit,
///         no: SyscallNo::SENDMSG,
///         pid_tgid: pid_tgid(1200, 1201),
///         ktime: Nanos::from_millis(i),
///         ret: 64,
///         net: NetCtx::NONE,
///     });
/// }
/// assert_eq!(probe.counters().send.count, 2);
/// ```
#[derive(Debug)]
pub struct BytecodeBackend {
    maps: MapRegistry,
    vm: Vm,
    enter: Program,
    exit: Program,
    net_rx: Option<Program>,
    sock_drain: Option<Program>,
    stats_fd: MapFd,
    hist_fd: Option<MapFd>,
    sketch_fd: Option<MapFd>,
    stack_hist_fd: Option<MapFd>,
    stack_stats_fd: Option<MapFd>,
    shift: u32,
    tgids: Vec<Pid>,
    insns_executed: u64,
    optimized: bool,
}

impl BytecodeBackend {
    /// Assembles and verifies the probe programs for one process.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if assembly or verification fails — which
    /// would indicate a bug in the program generator, not bad input.
    pub fn new(tgid: Pid, profile: SyscallProfile, shift: u32) -> Result<BytecodeBackend, BuildError> {
        BytecodeBackend::build(vec![tgid], profile, shift, false, None)
    }

    /// Like [`BytecodeBackend::new`], but the exit program additionally
    /// maintains a [`HIST_BUCKETS`]-bucket log2 histogram of scaled poll
    /// durations in its own array map. The bucket index is computed *in
    /// the probe* with a branch-free-of-loops bit ladder and used as a
    /// register offset into the map value — the access pattern the
    /// value-tracking verifier exists to admit.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] on generator bugs, as for
    /// [`BytecodeBackend::new`].
    pub fn new_with_histogram(
        tgid: Pid,
        profile: SyscallProfile,
        shift: u32,
    ) -> Result<BytecodeBackend, BuildError> {
        BytecodeBackend::build(vec![tgid], profile, shift, true, None)
    }

    /// Like [`BytecodeBackend::new_with_histogram`], but the exit
    /// program additionally folds each completed request (send exit)
    /// into a Top-K sketch map keyed by `pid_tgid` — the in-probe
    /// per-entity heavy-hitter structure whose bounded summary the
    /// fleet's O(K) reports carry. `sketch_capacity` is the candidate
    /// table size (the map's `max_entries`).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] on generator bugs, as for
    /// [`BytecodeBackend::new`].
    pub fn new_with_histogram_and_sketch(
        tgid: Pid,
        profile: SyscallProfile,
        shift: u32,
        sketch_capacity: u32,
    ) -> Result<BytecodeBackend, BuildError> {
        BytecodeBackend::build(vec![tgid], profile, shift, true, Some(sketch_capacity))
    }

    /// Builds a probe observing several processes at once (multi-stage
    /// applications like Web Search aggregate every process into one
    /// stream, §V-B).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] on generator bugs, as for
    /// [`BytecodeBackend::new`].
    ///
    /// # Panics
    ///
    /// Panics if `tgids` is empty.
    pub fn new_multi(
        tgids: Vec<Pid>,
        profile: SyscallProfile,
        shift: u32,
    ) -> Result<BytecodeBackend, BuildError> {
        BytecodeBackend::build(tgids, profile, shift, false, None)
    }

    fn build(
        tgids: Vec<Pid>,
        profile: SyscallProfile,
        shift: u32,
        histogram: bool,
        sketch_capacity: Option<u32>,
    ) -> Result<BytecodeBackend, BuildError> {
        assert!(!tgids.is_empty(), "observe at least one process");
        let mut maps = MapRegistry::new();
        let start_fd = maps.create("start", MapDef::hash(8, 8, 4096));
        let stats_fd = maps.create("stats", MapDef::array(offsets::VALUE_SIZE as u32, 1));
        let hist_fd = histogram
            .then(|| maps.create("poll_hist", MapDef::array((HIST_BUCKETS * 8) as u32, 1)));
        let sketch_fd =
            sketch_capacity.map(|cap| maps.create("topk", MapDef::topk_sketch(8, cap)));

        let send_no = profile.primary(SyscallRole::Send).raw() as i32;
        let recv_no = profile.primary(SyscallRole::Receive).raw() as i32;
        let poll_no = profile.primary(SyscallRole::Poll).raw() as i32;

        let enter = build_enter(&tgids, poll_no, start_fd).map_err(BuildError::Asm)?;
        let exit = build_exit(
            &tgids, send_no, recv_no, poll_no, shift, start_fd, stats_fd, hist_fd, sketch_fd,
        )
        .map_err(BuildError::Asm)?;

        let verifier = Verifier::new(VerifierConfig {
            ctx_size: CTX_SIZE,
            ..VerifierConfig::default()
        });
        verifier.verify(&enter, &maps).map_err(BuildError::Verify)?;
        verifier.verify(&exit, &maps).map_err(BuildError::Verify)?;

        Ok(BytecodeBackend {
            maps,
            vm: Vm::new(),
            enter,
            exit,
            net_rx: None,
            sock_drain: None,
            stats_fd,
            hist_fd,
            sketch_fd,
            stack_hist_fd: None,
            stack_stats_fd: None,
            shift,
            tgids,
            insns_executed: 0,
            optimized: false,
        })
    }

    /// Attaches the network-stack probe pair: `kscope_net_rx` on the
    /// modeled `net_rx_softirq` tracepoint records each request's NIC
    /// arrival timestamp in an in-flight hash map; `kscope_sock_drain` on
    /// `sock_queue_drain` looks it up, computes the request's total
    /// time-in-stack (NIC arrival to socket-queue drain), deletes the
    /// entry, and folds the scaled sample into a stats array and a
    /// [`HIST_BUCKETS`]-bucket log2 histogram — the same register-offset
    /// bit-ladder idiom as the poll histogram. Both the histogram and the
    /// stats cells are cumulative (never reset by `reset_window`), like
    /// the entity sketch, so fleet report envelopes can carry them
    /// directly.
    ///
    /// The netstack programs do **not** tgid-filter: `net_rx_softirq`
    /// fires in softirq context where `bpf_get_current_pid_tgid` reports
    /// whatever task the interrupt preempted, so a tgid filter there
    /// would drop valid packets (see DESIGN.md §7b).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if assembly or verification of the netstack
    /// programs fails — a generator bug, as for [`BytecodeBackend::new`].
    pub fn with_netstack(mut self) -> Result<BytecodeBackend, BuildError> {
        let inflight_fd = self.maps.create("inflight_stack", MapDef::hash(8, 8, 4096));
        let stack_hist_fd = self
            .maps
            .create("stack_hist", MapDef::array((HIST_BUCKETS * 8) as u32, 1));
        let stack_stats_fd = self
            .maps
            .create("stack_stats", MapDef::array(stack_offsets::VALUE_SIZE as u32, 1));
        let net_rx = build_net_rx(inflight_fd).map_err(BuildError::Asm)?;
        let sock_drain = build_sock_drain(self.shift, inflight_fd, stack_stats_fd, stack_hist_fd)
            .map_err(BuildError::Asm)?;
        let verifier = Verifier::new(VerifierConfig {
            ctx_size: NET_CTX_SIZE,
            ..VerifierConfig::default()
        });
        verifier.verify(&net_rx, &self.maps).map_err(BuildError::Verify)?;
        verifier
            .verify(&sock_drain, &self.maps)
            .map_err(BuildError::Verify)?;
        self.net_rx = Some(net_rx);
        self.sock_drain = Some(sock_drain);
        self.stack_hist_fd = Some(stack_hist_fd);
        self.stack_stats_fd = Some(stack_stats_fd);
        Ok(self)
    }

    /// Switches probe execution to the template JIT
    /// ([`Vm::with_jit`]): verified programs run as native x86-64 with
    /// verifier-proof bounds-check elision, falling back to the decoded
    /// interpreter on unsupported programs or targets. Opting in never
    /// changes observable behavior — the differential suite holds the
    /// dispatchers bitwise-identical — only execution speed. The
    /// `NS_PER_INSN` cost model is unchanged: modeled probe cost stays
    /// comparable across dispatchers.
    pub fn with_jit(mut self) -> BytecodeBackend {
        self.vm = self.vm.with_jit();
        self
    }

    /// True when probe execution goes through the JIT dispatcher.
    pub fn uses_jit(&self) -> bool {
        self.vm.uses_jit()
    }

    /// Swaps both probe programs for their statically optimized forms
    /// ([`Program::optimized`]): constant folding, dead-code/dead-store
    /// elimination, branch pruning and inversion, jump threading. The
    /// optimized programs are re-verified (attaching fresh access proofs,
    /// so JIT bounds-check elision still applies under
    /// [`BytecodeBackend::with_jit`]). Observable behavior is unchanged —
    /// the four-way differential suite and the fleet's byte-exact rollup
    /// test hold optimization invisible — only fewer instructions run
    /// per event.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Verify`] if an optimized program fails
    /// re-verification, which would indicate an optimizer bug.
    pub fn with_optimizer(mut self) -> Result<BytecodeBackend, BuildError> {
        // cold path: one-time program swap at registration, not per-event
        let optimize = |prog: &Program, ctx_size: usize, maps: &MapRegistry| -> Result<Option<Program>, BuildError> {
            let verifier = Verifier::new(VerifierConfig {
                ctx_size,
                ..VerifierConfig::default()
            });
            match prog.optimized() {
                Some((opt, _)) => {
                    let opt = opt.clone();
                    verifier.verify(&opt, maps).map_err(BuildError::Verify)?;
                    Ok(Some(opt))
                }
                None => Ok(None),
            }
        };
        if let Some(opt) = optimize(&self.enter, CTX_SIZE, &self.maps)? {
            self.enter = opt;
        }
        if let Some(opt) = optimize(&self.exit, CTX_SIZE, &self.maps)? {
            self.exit = opt;
        }
        if let Some(prog) = &self.net_rx {
            if let Some(opt) = optimize(prog, NET_CTX_SIZE, &self.maps)? {
                self.net_rx = Some(opt);
            }
        }
        if let Some(prog) = &self.sock_drain {
            if let Some(opt) = optimize(prog, NET_CTX_SIZE, &self.maps)? {
                self.sock_drain = Some(opt);
            }
        }
        self.optimized = true;
        Ok(self)
    }

    /// True when the probe runs statically optimized programs.
    pub fn uses_optimizer(&self) -> bool {
        self.optimized
    }

    /// Certified worst-case cost of the (enter, exit) programs, as the
    /// probe will execute them (optimized forms when
    /// [`BytecodeBackend::with_optimizer`] was applied).
    pub fn cost_reports(&self) -> (Option<CostReport>, Option<CostReport>) {
        (cost_report(&self.enter), cost_report(&self.exit))
    }

    /// Registration gate: checks both programs carry a finite certified
    /// worst-case instruction bound within `budget_insns`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::CostBudget`] naming the offending program
    /// when a bound is missing or exceeds the budget.
    pub fn check_cost_budget(&self, budget_insns: u64) -> Result<(), BuildError> {
        let mut progs = vec![&self.enter, &self.exit];
        progs.extend(self.net_rx.iter());
        progs.extend(self.sock_drain.iter());
        for prog in progs {
            let over = |bound| BuildError::CostBudget {
                program: prog.name().to_string(),
                bound,
                budget: budget_insns,
            };
            match cost_report(prog) {
                None => return Err(over(None)),
                Some(c) if c.max_insns > budget_insns => {
                    return Err(over(Some(c.max_insns)))
                }
                Some(_) => {}
            }
        }
        Ok(())
    }

    /// The processes being observed.
    pub fn tgids(&self) -> &[Pid] {
        &self.tgids
    }

    /// Total eBPF instructions executed so far (the interpreter cost model).
    pub fn insns_executed(&self) -> u64 {
        self.insns_executed
    }

    /// The assembled `sys_enter` and `sys_exit` programs, in that order
    /// (for acceptance-corpus tests and tooling).
    pub fn programs(&self) -> (&Program, &Program) {
        (&self.enter, &self.exit)
    }

    /// The assembled netstack programs `(kscope_net_rx,
    /// kscope_sock_drain)`, or `None` when the backend was built without
    /// [`BytecodeBackend::with_netstack`].
    pub fn net_programs(&self) -> Option<(&Program, &Program)> {
        Some((self.net_rx.as_ref()?, self.sock_drain.as_ref()?))
    }

    /// The map registry backing the programs.
    pub fn map_registry(&self) -> &MapRegistry {
        &self.maps
    }

    /// Disassembly of both programs (for documentation and debugging).
    pub fn disassembly(&self) -> String {
        format!("{}\n{}", self.enter.disassemble(), self.exit.disassemble())
    }

    /// Array-map slot 0 of one of this backend's own maps. Both the
    /// stats and histogram maps are 1-entry arrays created in `build`,
    /// so the slot exists by construction.
    fn slot0(maps: &MapRegistry, fd: MapFd) -> &[u8] {
        match maps.lookup(fd, &0u32.to_le_bytes()) {
            Ok(Some(value)) => value,
            other => unreachable!("backend-owned array slot 0 missing: {other:?}"),
        }
    }

    fn slot0_mut(maps: &mut MapRegistry, fd: MapFd) -> &mut [u8] {
        match maps.lookup_mut(fd, &0u32.to_le_bytes()) {
            Ok(Some(value)) => value,
            other => unreachable!("backend-owned array slot 0 missing: {other:?}"),
        }
    }

    fn stats_value(&self) -> Vec<u8> {
        Self::slot0(&self.maps, self.stats_fd).to_vec()
    }

    /// The in-probe log2 histogram of scaled poll durations, or `None`
    /// when the backend was built without one. Bucket `i` counts polls
    /// with `floor(log2(max(duration >> shift, 1))) == i`.
    pub fn poll_histogram(&self) -> Option<[u64; HIST_BUCKETS]> {
        let fd = self.hist_fd?;
        let value = Self::slot0(&self.maps, fd);
        let mut out = [0u64; HIST_BUCKETS];
        for (i, chunk) in value.chunks_exact(8).enumerate() {
            match chunk.try_into() {
                Ok(bytes) => out[i] = u64::from_le_bytes(bytes),
                Err(_) => unreachable!("chunks_exact(8) yields 8-byte chunks"),
            }
        }
        Some(out)
    }

    /// The in-probe log2 histogram of scaled time-in-stack samples, or
    /// `None` when the backend was built without
    /// [`BytecodeBackend::with_netstack`]. Cumulative across windows
    /// (never reset by `reset_window`), like the entity sketch.
    pub fn stack_histogram(&self) -> Option<[u64; HIST_BUCKETS]> {
        let fd = self.stack_hist_fd?;
        let value = Self::slot0(&self.maps, fd);
        let mut out = [0u64; HIST_BUCKETS];
        for (i, chunk) in value.chunks_exact(8).enumerate() {
            match chunk.try_into() {
                Ok(bytes) => out[i] = u64::from_le_bytes(bytes),
                Err(_) => unreachable!("chunks_exact(8) yields 8-byte chunks"),
            }
        }
        Some(out)
    }

    /// The netstack probe's scalar stats cells, or `None` without
    /// [`BytecodeBackend::with_netstack`]. Cumulative across windows.
    pub fn stack_counters(&self) -> Option<StackCounters> {
        let fd = self.stack_stats_fd?;
        let value = Self::slot0(&self.maps, fd);
        let cell = |off: usize| -> u64 {
            match value[off..off + 8].try_into() {
                Ok(bytes) => u64::from_le_bytes(bytes),
                Err(_) => unreachable!("stack_stats value is 32 bytes"),
            }
        };
        Some(StackCounters {
            count: cell(stack_offsets::COUNT),
            sum: cell(stack_offsets::SUM),
            sumsq: cell(stack_offsets::SUMSQ),
            misses: cell(stack_offsets::MISSES),
        })
    }

    /// The in-probe Top-K entity sketch, or `None` when the backend was
    /// built without one. The sketch is cumulative across windows (it
    /// is never reset by `reset_window`), matching the cumulative
    /// counters the fleet's report envelopes carry.
    pub fn entity_sketch(&self) -> Option<&kscope_ebpf::SketchState> {
        let fd = self.sketch_fd?;
        match self.maps.sketch_state(fd) {
            Ok(state) => Some(state),
            Err(e) => unreachable!("backend-owned sketch map missing: {e:?}"),
        }
    }
}

impl MetricBackend for BytecodeBackend {
    fn on_event(&mut self, ctx: &TracepointCtx) -> Nanos {
        let mut syscall_buf = [0u8; CTX_SIZE];
        let mut net_buf = [0u8; NET_CTX_SIZE];
        let (program, buf): (&Program, &[u8]) = match ctx.phase {
            TracePhase::Enter | TracePhase::Exit => {
                syscall_buf[..8].copy_from_slice(&(ctx.no.raw() as u64).to_le_bytes());
                syscall_buf[8..16].copy_from_slice(&(ctx.ret as u64).to_le_bytes());
                let program = match ctx.phase {
                    TracePhase::Enter => &self.enter,
                    _ => &self.exit,
                };
                (program, &syscall_buf)
            }
            TracePhase::NetRxSoftirq | TracePhase::SockQueueDrain => {
                // Without the netstack pair attached, these tracepoints
                // have no program — real eBPF simply wouldn't be attached
                // there, so the firing is free.
                let program = match ctx.phase {
                    TracePhase::NetRxSoftirq => self.net_rx.as_ref(),
                    _ => self.sock_drain.as_ref(),
                };
                let Some(program) = program else {
                    return Nanos::ZERO;
                };
                net_buf[..8].copy_from_slice(&ctx.net.request.to_le_bytes());
                net_buf[8..16].copy_from_slice(&ctx.net.stage_ns.to_le_bytes());
                net_buf[16..24].copy_from_slice(&ctx.net.arg.to_le_bytes());
                (program, &net_buf)
            }
        };
        let mut env = ExecEnv {
            ktime_ns: ctx.ktime.as_nanos(),
            pid_tgid: ctx.pid_tgid,
            ..ExecEnv::default()
        };
        let outcome = match self.vm.execute(program, buf, &mut self.maps, &mut env) {
            Ok(outcome) => outcome,
            // `build` only returns backends whose programs passed the
            // verifier, and verified programs cannot fault.
            Err(e) => unreachable!("verified program faulted: {e:?}"),
        };
        self.insns_executed += outcome.insns_executed;
        Nanos::from_nanos((outcome.insns_executed as f64 * NS_PER_INSN).round() as u64)
    }

    fn counters(&self) -> RawCounters {
        RawCounters::decode(self.shift, &self.stats_value())
    }

    fn reset_window(&mut self) {
        let value = Self::slot0_mut(&mut self.maps, self.stats_fd);
        // Zero everything except the two last-timestamp cells, which chain
        // deltas across window boundaries.
        for off in [
            offsets::SEND_COUNT,
            offsets::SEND_SUM,
            offsets::SEND_SUMSQ,
            offsets::RECV_COUNT,
            offsets::RECV_SUM,
            offsets::RECV_SUMSQ,
            offsets::POLL_COUNT,
            offsets::POLL_SUM,
            offsets::POLL_SUMSQ,
            offsets::EVENTS,
        ] {
            value[off..off + 8].copy_from_slice(&0u64.to_le_bytes());
        }
        if let Some(fd) = self.hist_fd {
            Self::slot0_mut(&mut self.maps, fd).fill(0);
        }
    }

    fn backend_name(&self) -> &'static str {
        "ebpf-bytecode"
    }

    fn poll_histogram(&self) -> Option<[u64; HIST_BUCKETS]> {
        BytecodeBackend::poll_histogram(self)
    }

    fn stack_histogram(&self) -> Option<[u64; HIST_BUCKETS]> {
        BytecodeBackend::stack_histogram(self)
    }

    fn stack_counters(&self) -> Option<StackCounters> {
        BytecodeBackend::stack_counters(self)
    }
}

/// Emits the tgid filter: fall through when the tgid (already in `R2`)
/// matches any observed process, jump to `out` otherwise.
fn filter_tgids(mut asm: Asm, tgids: &[Pid]) -> Asm {
    for tgid in tgids {
        asm = asm.jeq_imm(R2, *tgid as i32, "tgid_ok");
    }
    asm.ja("out").label("tgid_ok")
}

/// Builds the `sys_enter` program: store the poll-entry timestamp.
fn build_enter(tgids: &[Pid], poll_no: i32, start_fd: MapFd) -> Result<Program, kscope_ebpf::asm::AsmError> {
    let asm = Asm::new("kscope_sys_enter")
        .mov64_reg(R9, R1) // save ctx
        .call(Helper::GetCurrentPidTgid)
        .mov64_reg(R6, R0)
        .mov64_reg(R2, R6)
        .rsh64_imm(R2, 32);
    filter_tgids(asm, tgids)
        .load(SZ_DW, R8, R9, 0) // args->id
        .jne_imm(R8, poll_no, "out")
        // start[pid_tgid] = bpf_ktime_get_ns()
        .store_reg(SZ_DW, R10, R6, -8)
        .call(Helper::KtimeGetNs)
        .store_reg(SZ_DW, R10, R0, -16)
        .ld_map_fd(R1, start_fd)
        .mov64_reg(R2, R10)
        .add64_imm(R2, -8)
        .mov64_reg(R3, R10)
        .add64_imm(R3, -16)
        .mov64_imm(R4, 0)
        .call(Helper::MapUpdateElem)
        .label("out")
        .mov64_imm(R0, 0)
        .exit()
        .assemble()
}

/// Builds the `sys_exit` program: classify and update the stats cells,
/// plus the optional in-probe log2 histogram of poll durations.
#[allow(clippy::too_many_arguments)]
fn build_exit(
    tgids: &[Pid],
    send_no: i32,
    recv_no: i32,
    poll_no: i32,
    shift: u32,
    start_fd: MapFd,
    stats_fd: MapFd,
    hist_fd: Option<MapFd>,
    sketch_fd: Option<MapFd>,
) -> Result<Program, kscope_ebpf::asm::AsmError> {
    let asm = Asm::new("kscope_sys_exit")
        .mov64_reg(R9, R1) // save ctx
        .call(Helper::GetCurrentPidTgid)
        .mov64_reg(R6, R0)
        .mov64_reg(R2, R6)
        .rsh64_imm(R2, 32);
    let mut asm = filter_tgids(asm, tgids)
        .load(SZ_DW, R8, R9, 0) // args->id
        .jeq_imm(R8, send_no, "send")
        .jeq_imm(R8, recv_no, "recv")
        .jeq_imm(R8, poll_no, "poll")
        .label("out")
        .mov64_imm(R0, 0)
        .exit();

    // Shared delta-section generator for send/recv.
    for (label, count_off, sum_off, sumsq_off, last_off) in [
        (
            "send",
            offsets::SEND_COUNT,
            offsets::SEND_SUM,
            offsets::SEND_SUMSQ,
            offsets::SEND_LAST_TS,
        ),
        (
            "recv",
            offsets::RECV_COUNT,
            offsets::RECV_SUM,
            offsets::RECV_SUMSQ,
            offsets::RECV_LAST_TS,
        ),
    ] {
        let ok = format!("{label}_ok");
        let delta = format!("{label}_delta");
        let fin = format!("{label}_done");
        asm = asm.label(label);
        if label == "send" {
            if let Some(sketch_fd) = sketch_fd {
                // Fold this request's entity (pid_tgid, still live in
                // R6) into the Top-K sketch with weight 1. One helper
                // call per completed request; the stats section below
                // starts fresh from R6/R10, so nothing it needs is
                // clobbered here.
                asm = asm
                    .store_reg(SZ_DW, R10, R6, -16)
                    .ld_map_fd(R1, sketch_fd)
                    .mov64_reg(R2, R10)
                    .add64_imm(R2, -16)
                    .mov64_imm(R3, 1)
                    .call(Helper::SketchUpdate);
            }
        }
        asm = asm
            // stats value pointer -> R7
            .store_imm(SZ_W, R10, -4, 0)
            .ld_map_fd(R1, stats_fd)
            .mov64_reg(R2, R10)
            .add64_imm(R2, -4)
            .call(Helper::MapLookupElem)
            .jne_imm(R0, 0, ok.clone())
            .mov64_imm(R0, 0)
            .exit()
            .label(ok)
            .mov64_reg(R7, R0)
            // events++
            .load(SZ_DW, R1, R7, offsets::EVENTS as i16)
            .add64_imm(R1, 1)
            .store_reg(SZ_DW, R7, R1, offsets::EVENTS as i16)
            // now -> R8; last -> R1; store new last
            .call(Helper::KtimeGetNs)
            .mov64_reg(R8, R0)
            .load(SZ_DW, R1, R7, last_off as i16)
            .store_reg(SZ_DW, R7, R8, last_off as i16)
            .jne_imm(R1, 0, delta.clone())
            .mov64_imm(R0, 0)
            .exit()
            .label(delta)
            // delta = now - last, scaled
            .mov64_reg(R2, R8)
            .sub64_reg(R2, R1)
            .rsh64_imm(R2, shift as i32)
            // count++
            .load(SZ_DW, R3, R7, count_off as i16)
            .add64_imm(R3, 1)
            .store_reg(SZ_DW, R7, R3, count_off as i16)
            // sum += delta
            .load(SZ_DW, R3, R7, sum_off as i16)
            .add64_reg(R3, R2)
            .store_reg(SZ_DW, R7, R3, sum_off as i16)
            // sum_sq += delta * delta
            .mov64_reg(R4, R2)
            .mul64_reg(R4, R2)
            .load(SZ_DW, R3, R7, sumsq_off as i16)
            .add64_reg(R3, R4)
            .store_reg(SZ_DW, R7, R3, sumsq_off as i16)
            .label(fin)
            .mov64_imm(R0, 0)
            .exit();
    }

    // Poll section: duration = now - start[pid_tgid].
    asm = asm
        .label("poll")
        .call(Helper::KtimeGetNs)
        .mov64_reg(R8, R0) // now
        .store_reg(SZ_DW, R10, R6, -16)
        .ld_map_fd(R1, start_fd)
        .mov64_reg(R2, R10)
        .add64_imm(R2, -16)
        .call(Helper::MapLookupElem)
        .jne_imm(R0, 0, "poll_have_start")
        .mov64_imm(R0, 0)
        .exit()
        .label("poll_have_start")
        .load(SZ_DW, R2, R0, 0) // start ts
        .mov64_reg(R3, R8)
        .sub64_reg(R3, R2) // duration
        .rsh64_imm(R3, shift as i32)
        .mov64_reg(R8, R3) // duration survives the next call in R8
        // stats value pointer -> R7
        .store_imm(SZ_W, R10, -4, 0)
        .ld_map_fd(R1, stats_fd)
        .mov64_reg(R2, R10)
        .add64_imm(R2, -4)
        .call(Helper::MapLookupElem)
        .jne_imm(R0, 0, "poll_ok")
        .mov64_imm(R0, 0)
        .exit()
        .label("poll_ok")
        .mov64_reg(R7, R0)
        // events++
        .load(SZ_DW, R1, R7, offsets::EVENTS as i16)
        .add64_imm(R1, 1)
        .store_reg(SZ_DW, R7, R1, offsets::EVENTS as i16)
        // poll count / sum / sumsq
        .load(SZ_DW, R1, R7, offsets::POLL_COUNT as i16)
        .add64_imm(R1, 1)
        .store_reg(SZ_DW, R7, R1, offsets::POLL_COUNT as i16)
        .load(SZ_DW, R1, R7, offsets::POLL_SUM as i16)
        .add64_reg(R1, R8)
        .store_reg(SZ_DW, R7, R1, offsets::POLL_SUM as i16)
        .mov64_reg(R4, R8)
        .mul64_reg(R4, R8)
        .load(SZ_DW, R1, R7, offsets::POLL_SUMSQ as i16)
        .add64_reg(R1, R4)
        .store_reg(SZ_DW, R7, R1, offsets::POLL_SUMSQ as i16);

    if let Some(hist_fd) = hist_fd {
        // bucket = floor(log2(duration)) via a loop-free bit ladder: the
        // duration is still in R8, the bucket accumulates in R6 (the
        // pid_tgid it held is dead by now). Each rung tests one power of
        // two with a forward jump, so the program stays a DAG.
        asm = asm.mov64_imm(R6, 0).ld_dw(R5, 1u64 << 32).jlt_reg(
            R8,
            R5,
            "hist_lt32",
        );
        asm = asm.add64_imm(R6, 32).rsh64_imm(R8, 32).label("hist_lt32");
        for k in [16, 8, 4, 2] {
            let skip = format!("hist_lt{k}");
            asm = asm
                .jmp_imm(OP_JLT, R8, 1i32 << k, skip.clone())
                .add64_imm(R6, k)
                .rsh64_imm(R8, k)
                .label(skip);
        }
        asm = asm
            .jmp_imm(OP_JLT, R8, 2, "hist_lt1")
            .add64_imm(R6, 1)
            .label("hist_lt1")
            // The ladder already bounds R6 to [0, 63]; the mask makes the
            // proof local (AND pins the tnum) and guards future edits.
            .and64_imm(R6, 63)
            .lsh64_imm(R6, 3) // byte offset of the 8-byte bucket cell
            // hist value pointer -> R0, then a *register-offset* increment.
            .store_imm(SZ_W, R10, -4, 0)
            .ld_map_fd(R1, hist_fd)
            .mov64_reg(R2, R10)
            .add64_imm(R2, -4)
            .call(Helper::MapLookupElem)
            .jeq_imm(R0, 0, "hist_done")
            .add64_reg(R0, R6)
            .load(SZ_DW, R1, R0, 0)
            .add64_imm(R1, 1)
            .store_reg(SZ_DW, R0, R1, 0)
            .label("hist_done");
    }

    asm = asm.mov64_imm(R0, 0).exit();

    asm.assemble()
}

/// Builds the `net_rx_softirq` program: reconstruct the request's NIC
/// arrival timestamp (`bpf_ktime_get_ns() - nic_wait`) and record it in
/// the in-flight hash map keyed by request id. No tgid filter — softirq
/// context has no meaningful current task (see
/// [`BytecodeBackend::with_netstack`]).
fn build_net_rx(inflight_fd: MapFd) -> Result<Program, kscope_ebpf::asm::AsmError> {
    Asm::new("kscope_net_rx")
        .mov64_reg(R9, R1) // save ctx
        .load(SZ_DW, R6, R9, 0) // args->request
        .load(SZ_DW, R7, R9, 8) // args->nic_wait_ns
        .call(Helper::KtimeGetNs)
        .mov64_reg(R8, R0)
        .sub64_reg(R8, R7) // NIC arrival = now - nic_wait
        // inflight[request] = nic_arrival
        .store_reg(SZ_DW, R10, R6, -8)
        .store_reg(SZ_DW, R10, R8, -16)
        .ld_map_fd(R1, inflight_fd)
        .mov64_reg(R2, R10)
        .add64_imm(R2, -8)
        .mov64_reg(R3, R10)
        .add64_imm(R3, -16)
        .mov64_imm(R4, 0)
        .call(Helper::MapUpdateElem)
        .mov64_imm(R0, 0)
        .exit()
        .assemble()
}

/// Builds the `sock_queue_drain` program: look up the request's NIC
/// arrival, compute total time-in-stack (`now - nic_arrival`), delete the
/// in-flight entry, and fold the scaled sample into the stats cells and
/// the log2 histogram (the same register-offset bit-ladder idiom the poll
/// histogram uses).
fn build_sock_drain(
    shift: u32,
    inflight_fd: MapFd,
    stack_stats_fd: MapFd,
    stack_hist_fd: MapFd,
) -> Result<Program, kscope_ebpf::asm::AsmError> {
    let mut asm = Asm::new("kscope_sock_drain")
        .mov64_reg(R9, R1) // save ctx
        .load(SZ_DW, R6, R9, 0) // args->request
        .store_reg(SZ_DW, R10, R6, -8)
        .ld_map_fd(R1, inflight_fd)
        .mov64_reg(R2, R10)
        .add64_imm(R2, -8)
        .call(Helper::MapLookupElem)
        .jne_imm(R0, 0, "have_entry")
        // Miss: the rx edge was never seen (or the entry was evicted);
        // count it so the estimator can report coverage.
        .store_imm(SZ_W, R10, -4, 0)
        .ld_map_fd(R1, stack_stats_fd)
        .mov64_reg(R2, R10)
        .add64_imm(R2, -4)
        .call(Helper::MapLookupElem)
        .jne_imm(R0, 0, "miss_ok")
        .mov64_imm(R0, 0)
        .exit()
        .label("miss_ok")
        .load(SZ_DW, R1, R0, stack_offsets::MISSES as i16)
        .add64_imm(R1, 1)
        .store_reg(SZ_DW, R0, R1, stack_offsets::MISSES as i16)
        .mov64_imm(R0, 0)
        .exit()
        .label("have_entry")
        .load(SZ_DW, R7, R0, 0) // NIC arrival ts
        .call(Helper::KtimeGetNs)
        .mov64_reg(R8, R0)
        .sub64_reg(R8, R7) // time-in-stack
        // The request is drained: drop the in-flight entry so the map
        // stays bounded by the number of genuinely in-flight requests.
        .ld_map_fd(R1, inflight_fd)
        .mov64_reg(R2, R10)
        .add64_imm(R2, -8)
        .call(Helper::MapDeleteElem)
        .rsh64_imm(R8, shift as i32) // scaled sample
        // stats value pointer -> R7
        .store_imm(SZ_W, R10, -4, 0)
        .ld_map_fd(R1, stack_stats_fd)
        .mov64_reg(R2, R10)
        .add64_imm(R2, -4)
        .call(Helper::MapLookupElem)
        .jne_imm(R0, 0, "stats_ok")
        .mov64_imm(R0, 0)
        .exit()
        .label("stats_ok")
        .mov64_reg(R7, R0)
        // count++
        .load(SZ_DW, R1, R7, stack_offsets::COUNT as i16)
        .add64_imm(R1, 1)
        .store_reg(SZ_DW, R7, R1, stack_offsets::COUNT as i16)
        // sum += sample
        .load(SZ_DW, R1, R7, stack_offsets::SUM as i16)
        .add64_reg(R1, R8)
        .store_reg(SZ_DW, R7, R1, stack_offsets::SUM as i16)
        // sumsq += sample * sample
        .mov64_reg(R4, R8)
        .mul64_reg(R4, R8)
        .load(SZ_DW, R1, R7, stack_offsets::SUMSQ as i16)
        .add64_reg(R1, R4)
        .store_reg(SZ_DW, R7, R1, stack_offsets::SUMSQ as i16);

    // bucket = floor(log2(max(sample, 1))) via the loop-free bit ladder;
    // the sample is in R8, the bucket accumulates in R6 (the request id
    // it held is dead by now).
    asm = asm
        .mov64_imm(R6, 0)
        .ld_dw(R5, 1u64 << 32)
        .jlt_reg(R8, R5, "shist_lt32")
        .add64_imm(R6, 32)
        .rsh64_imm(R8, 32)
        .label("shist_lt32");
    for k in [16, 8, 4, 2] {
        let skip = format!("shist_lt{k}");
        asm = asm
            .jmp_imm(OP_JLT, R8, 1i32 << k, skip.clone())
            .add64_imm(R6, k)
            .rsh64_imm(R8, k)
            .label(skip);
    }
    asm = asm
        .jmp_imm(OP_JLT, R8, 2, "shist_lt1")
        .add64_imm(R6, 1)
        .label("shist_lt1")
        .and64_imm(R6, 63)
        .lsh64_imm(R6, 3) // byte offset of the 8-byte bucket cell
        .store_imm(SZ_W, R10, -4, 0)
        .ld_map_fd(R1, stack_hist_fd)
        .mov64_reg(R2, R10)
        .add64_imm(R2, -4)
        .call(Helper::MapLookupElem)
        .jeq_imm(R0, 0, "shist_done")
        .add64_reg(R0, R6)
        .load(SZ_DW, R1, R0, 0)
        .add64_imm(R1, 1)
        .store_reg(SZ_DW, R0, R1, 0)
        .label("shist_done")
        .mov64_imm(R0, 0)
        .exit();

    asm.assemble()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kscope_syscalls::{pid_tgid, NetCtx, SyscallNo};

    fn ctx(phase: TracePhase, no: SyscallNo, tid: u32, t_us: u64) -> TracepointCtx {
        TracepointCtx {
            phase,
            no,
            pid_tgid: pid_tgid(1200, tid),
            ktime: Nanos::from_micros(t_us),
            ret: 1,
            net: NetCtx::NONE,
        }
    }

    fn probe() -> BytecodeBackend {
        BytecodeBackend::new(1200, SyscallProfile::data_caching(), 0).unwrap()
    }

    #[test]
    fn programs_assemble_and_verify_for_all_profiles() {
        for profile in [
            SyscallProfile::tailbench(),
            SyscallProfile::data_caching(),
            SyscallProfile::web_search(),
            SyscallProfile::triton_grpc(),
            SyscallProfile::triton_http(),
        ] {
            BytecodeBackend::new(42, profile, 10).expect("builds");
        }
    }

    #[test]
    fn send_deltas_via_bytecode() {
        let mut p = probe();
        for t in [100, 300, 600] {
            p.on_event(&ctx(TracePhase::Exit, SyscallNo::SENDMSG, 1, t));
        }
        let c = p.counters();
        assert_eq!(c.send.count, 2);
        assert_eq!(c.send.sum, 500_000);
        assert_eq!(c.send_last_ts, 600_000);
        assert_eq!(c.events, 3);
        assert!(p.insns_executed() > 0);
    }

    #[test]
    fn poll_duration_via_bytecode() {
        let mut p = probe();
        p.on_event(&ctx(TracePhase::Enter, SyscallNo::EPOLL_WAIT, 1, 100));
        p.on_event(&ctx(TracePhase::Exit, SyscallNo::EPOLL_WAIT, 1, 450));
        let c = p.counters();
        assert_eq!(c.poll.count, 1);
        assert_eq!(c.poll.sum, 350_000);
    }

    #[test]
    fn tgid_filter_in_bytecode() {
        let mut p = probe();
        let mut foreign = ctx(TracePhase::Exit, SyscallNo::SENDMSG, 1, 100);
        foreign.pid_tgid = pid_tgid(7, 7);
        p.on_event(&foreign);
        assert_eq!(p.counters().events, 0);
    }

    #[test]
    fn disassembly_mentions_tracepoint_programs() {
        let p = probe();
        let dis = p.disassembly();
        assert!(dis.contains("kscope_sys_enter"));
        assert!(dis.contains("kscope_sys_exit"));
        assert!(dis.contains("call 14")); // bpf_get_current_pid_tgid
        assert!(dis.contains("call 5")); // bpf_ktime_get_ns
    }

    #[test]
    fn histogram_probe_verifies_and_buckets_poll_durations() {
        let mut p =
            BytecodeBackend::new_with_histogram(1200, SyscallProfile::data_caching(), 0).unwrap();
        // 350_000 ns: floor(log2) = 18 (2^18 = 262144 <= 350000 < 2^19).
        p.on_event(&ctx(TracePhase::Enter, SyscallNo::EPOLL_WAIT, 1, 100));
        p.on_event(&ctx(TracePhase::Exit, SyscallNo::EPOLL_WAIT, 1, 450));
        // 1_000 ns: floor(log2(1000)) = 9.
        p.on_event(&ctx(TracePhase::Enter, SyscallNo::EPOLL_WAIT, 2, 500));
        p.on_event(&TracepointCtx {
            phase: TracePhase::Exit,
            no: SyscallNo::EPOLL_WAIT,
            pid_tgid: pid_tgid(1200, 2),
            ktime: Nanos::from_nanos(501_000),
            ret: 1,
            net: NetCtx::NONE,
        });
        let hist = p.poll_histogram().expect("histogram enabled");
        assert_eq!(hist[18], 1, "350us poll lands in bucket 18: {hist:?}");
        assert_eq!(hist[9], 1, "1us poll lands in bucket 9: {hist:?}");
        assert_eq!(hist.iter().sum::<u64>(), 2);
        // Scalar counters keep working alongside the histogram.
        assert_eq!(p.counters().poll.count, 2);
    }

    #[test]
    fn histogram_edge_buckets() {
        let mut p =
            BytecodeBackend::new_with_histogram(1200, SyscallProfile::data_caching(), 0).unwrap();
        // Zero-length poll: bucket 0 (log2 clamped up from -inf).
        p.on_event(&ctx(TracePhase::Enter, SyscallNo::EPOLL_WAIT, 1, 100));
        p.on_event(&ctx(TracePhase::Exit, SyscallNo::EPOLL_WAIT, 1, 100));
        // 1 ns: also bucket 0.
        p.on_event(&ctx(TracePhase::Enter, SyscallNo::EPOLL_WAIT, 2, 200));
        p.on_event(&TracepointCtx {
            phase: TracePhase::Exit,
            no: SyscallNo::EPOLL_WAIT,
            pid_tgid: pid_tgid(1200, 2),
            ktime: Nanos::from_nanos(200_001),
            ret: 1,
            net: NetCtx::NONE,
        });
        let hist = p.poll_histogram().expect("histogram enabled");
        assert_eq!(hist[0], 2, "{hist:?}");
    }

    #[test]
    fn histogram_absent_without_opt_in() {
        let p = probe();
        assert!(p.poll_histogram().is_none());
        assert!(MetricBackend::poll_histogram(&p).is_none());
    }

    #[test]
    fn histogram_resets_with_window() {
        let mut p =
            BytecodeBackend::new_with_histogram(1200, SyscallProfile::data_caching(), 0).unwrap();
        p.on_event(&ctx(TracePhase::Enter, SyscallNo::EPOLL_WAIT, 1, 100));
        p.on_event(&ctx(TracePhase::Exit, SyscallNo::EPOLL_WAIT, 1, 450));
        p.reset_window();
        let hist = p.poll_histogram().expect("histogram enabled");
        assert_eq!(hist.iter().sum::<u64>(), 0);
    }

    fn sketch_probe(capacity: u32) -> BytecodeBackend {
        BytecodeBackend::new_with_histogram_and_sketch(
            1200,
            SyscallProfile::data_caching(),
            0,
            capacity,
        )
        .unwrap()
    }

    #[test]
    fn sketch_counts_send_exits_per_entity() {
        let mut p = sketch_probe(8);
        // tid 1 completes three requests, tid 2 one; a recv and a poll
        // exit must not touch the sketch.
        for (tid, t) in [(1, 100), (1, 200), (1, 300), (2, 400)] {
            p.on_event(&ctx(TracePhase::Exit, SyscallNo::SENDMSG, tid, t));
        }
        p.on_event(&ctx(TracePhase::Exit, SyscallNo::RECVMSG, 1, 500));
        p.on_event(&ctx(TracePhase::Enter, SyscallNo::EPOLL_WAIT, 1, 600));
        p.on_event(&ctx(TracePhase::Exit, SyscallNo::EPOLL_WAIT, 1, 700));

        let sketch = p.entity_sketch().expect("sketch enabled");
        assert_eq!(sketch.update_count(), 4, "only send exits update it");
        assert_eq!(sketch.total_weight(), 4);
        let heavy = pid_tgid(1200, 1).to_le_bytes();
        let light = pid_tgid(1200, 2).to_le_bytes();
        assert!(sketch.estimate(&heavy) >= 3);
        assert!(sketch.estimate(&light) >= 1);
        assert!(sketch.candidate_keys().any(|k| k == heavy));
        assert!(sketch.candidate_keys().any(|k| k == light));
    }

    #[test]
    fn sketch_is_cumulative_across_windows() {
        let mut p = sketch_probe(8);
        p.on_event(&ctx(TracePhase::Exit, SyscallNo::SENDMSG, 1, 100));
        p.reset_window();
        p.on_event(&ctx(TracePhase::Exit, SyscallNo::SENDMSG, 1, 200));
        let sketch = p.entity_sketch().expect("sketch enabled");
        assert_eq!(sketch.update_count(), 2, "reset_window leaves the sketch");
        // While the windowed counters did reset (only the post-reset
        // delta remains).
        assert_eq!(p.counters().send.count, 1);
    }

    #[test]
    fn sketch_absent_without_opt_in() {
        assert!(probe().entity_sketch().is_none());
    }

    #[test]
    fn sketch_probe_matches_userspace_replay() {
        let mut p = sketch_probe(16);
        let tids: Vec<u32> = (0..24).map(|i| 1 + i % 6).collect();
        for (i, &tid) in tids.iter().enumerate() {
            p.on_event(&ctx(TracePhase::Exit, SyscallNo::SENDMSG, tid, 100 * (i as u64 + 1)));
        }
        let mut replay = kscope_ebpf::SketchState::new(8, 16);
        for &tid in &tids {
            replay.update(&pid_tgid(1200, tid).to_le_bytes(), 1);
        }
        assert_eq!(p.entity_sketch().expect("sketch enabled"), &replay);
    }

    #[test]
    fn reset_window_preserves_delta_chain() {
        let mut p = probe();
        p.on_event(&ctx(TracePhase::Exit, SyscallNo::SENDMSG, 1, 100));
        p.on_event(&ctx(TracePhase::Exit, SyscallNo::SENDMSG, 1, 200));
        p.reset_window();
        assert_eq!(p.counters().send.count, 0);
        assert_eq!(p.counters().send_last_ts, 200_000);
        p.on_event(&ctx(TracePhase::Exit, SyscallNo::SENDMSG, 1, 350));
        assert_eq!(p.counters().send.sum, 150_000);
    }

    // --- netstack probe pair -------------------------------------------

    use kscope_syscalls::NetCtx as Net;

    fn net_ctx(phase: TracePhase, request: u64, stage_ns: u64, arg: u64, t_ns: u64) -> TracepointCtx {
        TracepointCtx {
            phase,
            // Net tracepoints are not syscalls; the kernel dispatches
            // them with a sentinel number and no current task.
            no: SyscallNo::from_raw(u32::MAX),
            pid_tgid: 0,
            ktime: Nanos::from_nanos(t_ns),
            ret: 0,
            net: Net {
                request,
                stage_ns,
                arg,
            },
        }
    }

    fn netstack_probe(shift: u32) -> BytecodeBackend {
        BytecodeBackend::new(1200, SyscallProfile::data_caching(), shift)
            .unwrap()
            .with_netstack()
            .unwrap()
    }

    #[test]
    fn netstack_programs_verify_and_certify_finite_cost() {
        let p = netstack_probe(6);
        let (rx, drain) = p.net_programs().expect("netstack attached");
        assert_eq!(rx.name(), "kscope_net_rx");
        assert_eq!(drain.name(), "kscope_sock_drain");
        // Both programs must carry a finite certified worst-case bound,
        // together with the syscall pair (the registration gate).
        p.check_cost_budget(10_000).expect("finite cost bound");
    }

    #[test]
    fn netstack_absent_without_opt_in() {
        let p = probe();
        assert!(p.net_programs().is_none());
        assert!(BytecodeBackend::stack_histogram(&p).is_none());
        assert!(p.stack_counters().is_none());
        // Un-attached tracepoints cost nothing.
        let mut p = p;
        let cost = p.on_event(&net_ctx(TracePhase::NetRxSoftirq, 1, 0, 64, 1_000));
        assert_eq!(cost, Nanos::ZERO);
    }

    #[test]
    fn netstack_rx_to_drain_measures_time_in_stack() {
        let mut p = netstack_probe(0);
        // NIC arrival at 95_000 (rx fires at 100_000 after a 5_000ns ring
        // wait); drained from the socket queue at 130_000.
        p.on_event(&net_ctx(TracePhase::NetRxSoftirq, 7, 5_000, 512, 100_000));
        p.on_event(&net_ctx(TracePhase::SockQueueDrain, 7, 30_000, 0, 130_000));
        let c = p.stack_counters().expect("netstack attached");
        assert_eq!(c.count, 1);
        assert_eq!(c.sum, 35_000); // 130_000 - (100_000 - 5_000)
        assert_eq!(c.sumsq, 35_000 * 35_000);
        assert_eq!(c.misses, 0);
        let hist = BytecodeBackend::stack_histogram(&p).expect("netstack attached");
        // floor(log2(35_000)) == 15.
        assert_eq!(hist[15], 1);
        assert_eq!(hist.iter().sum::<u64>(), 1);
        // The in-flight entry is deleted on drain: a second drain for the
        // same request is a miss.
        p.on_event(&net_ctx(TracePhase::SockQueueDrain, 7, 0, 0, 140_000));
        assert_eq!(p.stack_counters().unwrap().misses, 1);
        assert_eq!(p.stack_counters().unwrap().count, 1);
    }

    #[test]
    fn netstack_scaling_shift_applies() {
        let mut p = netstack_probe(10);
        p.on_event(&net_ctx(TracePhase::NetRxSoftirq, 3, 5_000, 64, 100_000));
        p.on_event(&net_ctx(TracePhase::SockQueueDrain, 3, 0, 0, 130_000));
        let c = p.stack_counters().unwrap();
        assert_eq!(c.sum, 35_000 >> 10); // 34
        let hist = BytecodeBackend::stack_histogram(&p).unwrap();
        assert_eq!(hist[5], 1); // floor(log2(34)) == 5
    }

    #[test]
    fn netstack_drain_without_rx_is_a_miss() {
        let mut p = netstack_probe(0);
        p.on_event(&net_ctx(TracePhase::SockQueueDrain, 99, 1_000, 0, 50_000));
        let c = p.stack_counters().unwrap();
        assert_eq!(c.count, 0);
        assert_eq!(c.misses, 1);
        assert_eq!(
            BytecodeBackend::stack_histogram(&p).unwrap().iter().sum::<u64>(),
            0
        );
    }

    #[test]
    fn netstack_cells_are_cumulative_across_reset_window() {
        let mut p = netstack_probe(0);
        p.on_event(&net_ctx(TracePhase::NetRxSoftirq, 1, 0, 64, 10_000));
        p.on_event(&net_ctx(TracePhase::SockQueueDrain, 1, 0, 0, 20_000));
        p.reset_window();
        let c = p.stack_counters().unwrap();
        assert_eq!(c.count, 1, "reset_window must not clear stack stats");
        assert_eq!(
            BytecodeBackend::stack_histogram(&p).unwrap().iter().sum::<u64>(),
            1,
            "reset_window must not clear the stack histogram"
        );
    }

    #[test]
    fn netstack_matches_native_mirror_and_survives_optimizer_jit() {
        use crate::native::NativeBackend;
        let shift = 6;
        let mut plain = netstack_probe(shift);
        let mut opt = BytecodeBackend::new(1200, SyscallProfile::data_caching(), shift)
            .unwrap()
            .with_netstack()
            .unwrap()
            .with_optimizer()
            .unwrap()
            .with_jit();
        let mut native =
            NativeBackend::new(1200, SyscallProfile::data_caching(), shift).with_netstack();
        // A stream with overlapping requests, misses, and reordering.
        let events = [
            net_ctx(TracePhase::NetRxSoftirq, 1, 2_000, 100, 50_000),
            net_ctx(TracePhase::NetRxSoftirq, 2, 0, 200, 52_000),
            net_ctx(TracePhase::SockQueueDrain, 1, 10_000, 1, 62_000),
            net_ctx(TracePhase::SockQueueDrain, 5, 0, 0, 63_000), // miss
            net_ctx(TracePhase::NetRxSoftirq, 3, 7_500, 300, 70_000),
            net_ctx(TracePhase::SockQueueDrain, 3, 100, 0, 170_000),
            net_ctx(TracePhase::SockQueueDrain, 2, 0, 0, 1_052_000),
        ];
        for ev in &events {
            plain.on_event(ev);
            opt.on_event(ev);
            native.on_event(ev);
        }
        let expect = plain.stack_counters().unwrap();
        assert_eq!(expect, opt.stack_counters().unwrap());
        assert_eq!(Some(expect), native.stack_counters());
        let hist = BytecodeBackend::stack_histogram(&plain).unwrap();
        assert_eq!(hist, BytecodeBackend::stack_histogram(&opt).unwrap());
        assert_eq!(Some(hist), MetricBackend::stack_histogram(&native));
        assert_eq!(expect.count, 3);
        assert_eq!(expect.misses, 1);
    }
}
