//! Integer-only statistics, as computable inside eBPF.
//!
//! The verifier forbids floating point (§III-A), so everything the paper
//! computes "directly in the eBPF space" must be integer arithmetic on
//! `u64` cells. [`ScaledAcc`] is that arithmetic: deltas are right-shifted
//! before squaring so the sum of squares fits in 64 bits over realistic
//! window lengths, and Eq. 2's naive `E[x²] − E[x]²` form is evaluated in
//! `u128` only at *read* time (userspace), never in kernel context.

/// Default scaling shift: 10 bits ≈ microsecond resolution for
/// nanosecond inputs.
pub const DEFAULT_SHIFT: u32 = 10;

/// Fixed-point accumulator over scaled samples: count, sum, sum of squares.
///
/// Matches cell-for-cell what the bytecode programs maintain in their array
/// map, so the native and eBPF backends can be compared exactly.
///
/// # Examples
///
/// ```
/// use kscope_core::ScaledAcc;
///
/// let mut acc = ScaledAcc::new(0); // shift 0: no scaling
/// for x in [2, 4, 4, 4, 5, 5, 7, 9] {
///     acc.push(x);
/// }
/// assert_eq!(acc.mean(), Some(5.0));
/// assert_eq!(acc.variance(), Some(4.0));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScaledAcc {
    shift: u32,
    /// Number of samples.
    pub count: u64,
    /// Sum of scaled samples.
    pub sum: u64,
    /// Sum of squared scaled samples.
    pub sum_sq: u64,
}

impl ScaledAcc {
    /// Creates an accumulator scaling inputs by `>> shift`.
    pub fn new(shift: u32) -> ScaledAcc {
        ScaledAcc {
            shift,
            ..ScaledAcc::default()
        }
    }

    /// Creates an accumulator with the default (microsecond-ish) scale.
    pub fn with_default_shift() -> ScaledAcc {
        ScaledAcc::new(DEFAULT_SHIFT)
    }

    /// The configured shift.
    pub fn shift(&self) -> u32 {
        self.shift
    }

    /// Adds one raw (unscaled) sample, exactly as the eBPF program does:
    /// scale, add to sum, add square to sum of squares (wrapping, as u64
    /// arithmetic in eBPF wraps).
    pub fn push(&mut self, raw: u64) {
        let scaled = raw >> self.shift;
        self.count = self.count.wrapping_add(1);
        self.sum = self.sum.wrapping_add(scaled);
        self.sum_sq = self.sum_sq.wrapping_add(scaled.wrapping_mul(scaled));
    }

    /// Rebuilds from raw map cells (userspace read path).
    pub fn from_cells(shift: u32, count: u64, sum: u64, sum_sq: u64) -> ScaledAcc {
        ScaledAcc {
            shift,
            count,
            sum,
            sum_sq,
        }
    }

    /// Mean in *raw* units (undoes the scaling); `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        Some(self.sum as f64 / self.count as f64 * (1u64 << self.shift) as f64)
    }

    /// Population variance in *raw²* units via Eq. 2
    /// (`E[x²] − E[x]²`); `None` when empty. Evaluated in `u128`/`f64`
    /// at read time, so no precision is lost to the naive form.
    pub fn variance(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let n = self.count as f64;
        let mean_sq = (self.sum_sq as u128) as f64 / n;
        let mean = self.sum as f64 / n;
        let var_scaled = (mean_sq - mean * mean).max(0.0);
        let scale = (1u64 << self.shift) as f64;
        Some(var_scaled * scale * scale)
    }

    /// Standard deviation in raw units.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Merges another accumulator (same shift) into this one.
    ///
    /// # Panics
    ///
    /// Panics if the shifts differ.
    pub fn merge(&mut self, other: &ScaledAcc) {
        assert_eq!(self.shift, other.shift, "cannot merge different scales");
        self.count = self.count.wrapping_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
        self.sum_sq = self.sum_sq.wrapping_add(other.sum_sq);
    }

    /// Resets to empty, keeping the shift (window roll).
    pub fn reset(&mut self) {
        self.count = 0;
        self.sum = 0;
        self.sum_sq = 0;
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unscaled_matches_exact_moments() {
        let mut acc = ScaledAcc::new(0);
        let xs = [10u64, 20, 30, 40];
        for x in xs {
            acc.push(x);
        }
        assert_eq!(acc.mean(), Some(25.0));
        assert_eq!(acc.variance(), Some(125.0));
        assert_eq!(acc.std_dev(), Some(125.0f64.sqrt()));
    }

    #[test]
    fn scaling_loses_at_most_quantization() {
        let mut acc = ScaledAcc::new(10);
        // Deltas around 500us in ns.
        let xs: Vec<u64> = (0..1000).map(|i| 480_000 + (i % 41) * 1000).collect();
        for &x in &xs {
            acc.push(x);
        }
        let exact_mean = xs.iter().sum::<u64>() as f64 / xs.len() as f64;
        let mean = acc.mean().unwrap();
        assert!(
            (mean - exact_mean).abs() < 1_200.0, // one quantum of 1024ns
            "mean {mean} vs exact {exact_mean}"
        );
        let exact_var = {
            let m = exact_mean;
            xs.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / xs.len() as f64
        };
        let var = acc.variance().unwrap();
        assert!(
            (var - exact_var).abs() / exact_var < 0.05,
            "var {var} vs exact {exact_var}"
        );
    }

    #[test]
    fn empty_is_none() {
        let acc = ScaledAcc::with_default_shift();
        assert!(acc.is_empty());
        assert_eq!(acc.mean(), None);
        assert_eq!(acc.variance(), None);
    }

    #[test]
    fn variance_clamped_non_negative() {
        let mut acc = ScaledAcc::new(0);
        acc.push(5);
        assert_eq!(acc.variance(), Some(0.0));
    }

    #[test]
    fn merge_equals_combined() {
        let xs: Vec<u64> = (0..100).map(|i| i * 977).collect();
        let mut a = ScaledAcc::new(4);
        let mut b = ScaledAcc::new(4);
        let mut all = ScaledAcc::new(4);
        for (i, &x) in xs.iter().enumerate() {
            if i % 2 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
            all.push(x);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn reset_preserves_shift() {
        let mut acc = ScaledAcc::new(7);
        acc.push(1 << 20);
        acc.reset();
        assert!(acc.is_empty());
        assert_eq!(acc.shift(), 7);
    }

    #[test]
    #[should_panic(expected = "different scales")]
    fn merge_rejects_mixed_scales() {
        let mut a = ScaledAcc::new(1);
        a.merge(&ScaledAcc::new(2));
    }

    #[test]
    fn from_cells_round_trips() {
        let mut acc = ScaledAcc::new(10);
        acc.push(123_456);
        acc.push(789_012);
        let rebuilt = ScaledAcc::from_cells(10, acc.count, acc.sum, acc.sum_sq);
        assert_eq!(rebuilt, acc);
    }
}
