//! Property-based tests for the observability core.
//!
//! The crown jewel is the differential property: on *any* event stream,
//! the native probe and the generated-verified-interpreted eBPF probe
//! produce identical metric cells.

use kscope_core::{BytecodeBackend, MetricBackend, NativeBackend, ScaledAcc};
use kscope_simcore::{Nanos, SimRng};
use kscope_syscalls::{NetCtx, pid_tgid, SyscallNo, SyscallProfile, TracePhase, TracepointCtx};
use kscope_testkit::{gen, Config};

fn arb_event(rng: &mut SimRng) -> TracepointCtx {
    let enter = gen::bool_any(rng);
    let which = gen::u64_in(rng, 0, 6);
    let tid_off = gen::u64_in(rng, 0, 3) as u32;
    let foreign = gen::bool_any(rng);
    let dt = gen::u64_in(rng, 1, 1_999_999);
    let no = match which {
        0 => SyscallNo::EPOLL_WAIT,
        1 => SyscallNo::READ,
        2 => SyscallNo::SENDMSG,
        3 => SyscallNo::FUTEX,
        4 => SyscallNo::WRITE, // not in the data-caching profile
        5 => SyscallNo::ACCEPT,
        _ => SyscallNo::SELECT,
    };
    let tgid = if foreign { 999 } else { 1200 };
    TracepointCtx {
        phase: if enter {
            TracePhase::Enter
        } else {
            TracePhase::Exit
        },
        no,
        pid_tgid: pid_tgid(tgid, 1300 + tid_off),
        ktime: Nanos::from_nanos(dt), // rebased cumulatively below
        ret: 1,
        net: NetCtx::NONE,
    }
}

/// Native and bytecode backends agree cell-for-cell on any stream.
#[test]
fn backends_agree_on_any_stream() {
    kscope_testkit::check!(
        Config::cases(64),
        |rng: &mut SimRng| {
            (
                gen::vec_of(rng, 0, 399, arb_event),
                gen::u64_in(rng, 0, 11) as u32,
            )
        },
        |case: &(Vec<TracepointCtx>, u32)| {
            let (ref events, shift) = *case;
            let profile = SyscallProfile::data_caching();
            let mut native = NativeBackend::new(1200, profile.clone(), shift);
            let mut bytecode = BytecodeBackend::new(1200, profile, shift).unwrap();
            let mut t = 0u64;
            for ev in events {
                let mut ev = *ev;
                // Make timestamps strictly increasing (deltas from the
                // generator).
                t += ev.ktime.as_nanos();
                ev.ktime = Nanos::from_nanos(t);
                native.on_event(&ev);
                bytecode.on_event(&ev);
            }
            assert_eq!(native.counters(), bytecode.counters());
        }
    );
}

/// Window resets never desynchronize the two backends.
#[test]
fn backends_agree_across_window_resets() {
    kscope_testkit::check!(
        Config::cases(64),
        |rng: &mut SimRng| {
            gen::vec_of(rng, 1, 5, |r| gen::vec_of(r, 1, 59, arb_event))
        },
        |chunks: &Vec<Vec<TracepointCtx>>| {
            let profile = SyscallProfile::data_caching();
            let mut native = NativeBackend::new(1200, profile.clone(), 10);
            let mut bytecode = BytecodeBackend::new(1200, profile, 10).unwrap();
            let mut t = 0u64;
            for chunk in chunks {
                for ev in chunk {
                    let mut ev = *ev;
                    t += ev.ktime.as_nanos();
                    ev.ktime = Nanos::from_nanos(t);
                    native.on_event(&ev);
                    bytecode.on_event(&ev);
                }
                assert_eq!(native.counters(), bytecode.counters());
                native.reset_window();
                bytecode.reset_window();
            }
            assert_eq!(native.counters(), bytecode.counters());
        }
    );
}

/// The scaled accumulator's mean stays within one quantum of the exact
/// mean, and its variance is non-negative.
#[test]
fn scaled_acc_tracks_exact_moments() {
    kscope_testkit::check!(
        Config::cases(64),
        |rng: &mut SimRng| {
            (
                gen::vec_of(rng, 1, 299, |r| gen::u64_in(r, 0, 99_999_999)),
                gen::u64_in(rng, 0, 11) as u32,
            )
        },
        |case: &(Vec<u64>, u32)| {
            let (ref xs, shift) = *case;
            let mut acc = ScaledAcc::new(shift);
            for &x in xs {
                acc.push(x);
            }
            let quantum = (1u64 << shift) as f64;
            let exact_mean = xs.iter().map(|&x| x as f64).sum::<f64>() / xs.len() as f64;
            let mean = acc.mean().unwrap();
            assert!(
                (mean - exact_mean).abs() <= quantum,
                "mean {mean} vs exact {exact_mean} (quantum {quantum})"
            );
            assert!(acc.variance().unwrap() >= 0.0);
        }
    );
}

/// Merging scaled accumulators equals accumulating the concatenation.
#[test]
fn scaled_acc_merge_is_concatenation() {
    kscope_testkit::check!(
        Config::cases(64),
        |rng: &mut SimRng| {
            (
                gen::vec_of(rng, 0, 99, |r| gen::u64_in(r, 0, 999_999)),
                gen::vec_of(rng, 0, 99, |r| gen::u64_in(r, 0, 999_999)),
            )
        },
        |case: &(Vec<u64>, Vec<u64>)| {
            let (ref xs, ref ys) = *case;
            let mut a = ScaledAcc::new(6);
            let mut b = ScaledAcc::new(6);
            let mut all = ScaledAcc::new(6);
            for &x in xs {
                a.push(x);
                all.push(x);
            }
            for &y in ys {
                b.push(y);
                all.push(y);
            }
            a.merge(&b);
            assert_eq!(a, all);
        }
    );
}
