//! Property-based tests for the observability core.
//!
//! The crown jewel is the differential property: on *any* event stream,
//! the native probe and the generated-verified-interpreted eBPF probe
//! produce identical metric cells.

use kscope_core::{BytecodeBackend, MetricBackend, NativeBackend, ScaledAcc};
use kscope_simcore::Nanos;
use kscope_syscalls::{pid_tgid, SyscallNo, SyscallProfile, TracePhase, TracepointCtx};
use proptest::prelude::*;

fn arb_event() -> impl Strategy<Value = TracepointCtx> {
    (
        any::<bool>(),
        0u8..7,
        0u32..4,
        any::<bool>(),
        1u64..2_000_000,
    )
        .prop_map(|(enter, which, tid_off, foreign, dt)| {
            let no = match which {
                0 => SyscallNo::EPOLL_WAIT,
                1 => SyscallNo::READ,
                2 => SyscallNo::SENDMSG,
                3 => SyscallNo::FUTEX,
                4 => SyscallNo::WRITE, // not in the data-caching profile
                5 => SyscallNo::ACCEPT,
                _ => SyscallNo::SELECT,
            };
            let tgid = if foreign { 999 } else { 1200 };
            TracepointCtx {
                phase: if enter { TracePhase::Enter } else { TracePhase::Exit },
                no,
                pid_tgid: pid_tgid(tgid, 1300 + tid_off),
                ktime: Nanos::from_nanos(dt), // rebased cumulatively below
                ret: 1,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Native and bytecode backends agree cell-for-cell on any stream.
    #[test]
    fn backends_agree_on_any_stream(
        events in prop::collection::vec(arb_event(), 0..400),
        shift in 0u32..12,
    ) {
        let profile = SyscallProfile::data_caching();
        let mut native = NativeBackend::new(1200, profile.clone(), shift);
        let mut bytecode = BytecodeBackend::new(1200, profile, shift).unwrap();
        let mut t = 0u64;
        for mut ev in events {
            // Make timestamps strictly increasing (deltas from the strategy).
            t += ev.ktime.as_nanos();
            ev.ktime = Nanos::from_nanos(t);
            native.on_event(&ev);
            bytecode.on_event(&ev);
        }
        prop_assert_eq!(native.counters(), bytecode.counters());
    }

    /// Window resets never desynchronize the two backends.
    #[test]
    fn backends_agree_across_window_resets(
        chunks in prop::collection::vec(prop::collection::vec(arb_event(), 1..60), 1..6),
    ) {
        let profile = SyscallProfile::data_caching();
        let mut native = NativeBackend::new(1200, profile.clone(), 10);
        let mut bytecode = BytecodeBackend::new(1200, profile, 10).unwrap();
        let mut t = 0u64;
        for chunk in chunks {
            for mut ev in chunk {
                t += ev.ktime.as_nanos();
                ev.ktime = Nanos::from_nanos(t);
                native.on_event(&ev);
                bytecode.on_event(&ev);
            }
            prop_assert_eq!(native.counters(), bytecode.counters());
            native.reset_window();
            bytecode.reset_window();
        }
        prop_assert_eq!(native.counters(), bytecode.counters());
    }

    /// The scaled accumulator's mean stays within one quantum of the exact
    /// mean, and its variance is non-negative.
    #[test]
    fn scaled_acc_tracks_exact_moments(
        xs in prop::collection::vec(0u64..100_000_000, 1..300),
        shift in 0u32..12,
    ) {
        let mut acc = ScaledAcc::new(shift);
        for &x in &xs {
            acc.push(x);
        }
        let quantum = (1u64 << shift) as f64;
        let exact_mean = xs.iter().map(|&x| x as f64).sum::<f64>() / xs.len() as f64;
        let mean = acc.mean().unwrap();
        prop_assert!(
            (mean - exact_mean).abs() <= quantum,
            "mean {mean} vs exact {exact_mean} (quantum {quantum})"
        );
        prop_assert!(acc.variance().unwrap() >= 0.0);
    }

    /// Merging scaled accumulators equals accumulating the concatenation.
    #[test]
    fn scaled_acc_merge_is_concatenation(
        xs in prop::collection::vec(0u64..1_000_000, 0..100),
        ys in prop::collection::vec(0u64..1_000_000, 0..100),
    ) {
        let mut a = ScaledAcc::new(6);
        let mut b = ScaledAcc::new(6);
        let mut all = ScaledAcc::new(6);
        for &x in &xs { a.push(x); all.push(x); }
        for &y in &ys { b.push(y); all.push(y); }
        a.merge(&b);
        prop_assert_eq!(a, all);
    }
}
