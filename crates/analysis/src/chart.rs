//! Terminal rendering of the paper's figures.
//!
//! The experiment binaries regenerate each figure as an ASCII chart so that
//! `cargo run --bin fig3_variance` produces something directly comparable to
//! the paper's plot. Charts are intentionally plain: one mark per series, a
//! labeled y-range, and an optional vertical marker for the QoS-failure line
//! the paper draws on Figs. 3 and 4.

/// An XY scatter/line chart rendered to a text grid.
///
/// # Examples
///
/// ```
/// use kscope_analysis::AsciiChart;
///
/// let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| x * x).collect();
/// let mut chart = AsciiChart::new(40, 10);
/// chart.series("x^2", &xs, &ys, '*');
/// let out = chart.render();
/// assert!(out.contains('*'));
/// ```
#[derive(Debug, Clone)]
pub struct AsciiChart {
    width: usize,
    height: usize,
    series: Vec<Series>,
    v_marker: Option<(f64, char)>,
    h_marker: Option<(f64, char)>,
    title: Option<String>,
    x_label: Option<String>,
    y_label: Option<String>,
}

#[derive(Debug, Clone)]
struct Series {
    name: String,
    points: Vec<(f64, f64)>,
    mark: char,
}

impl AsciiChart {
    /// Creates a chart with the given plot-area size in characters.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is smaller than 2.
    pub fn new(width: usize, height: usize) -> AsciiChart {
        assert!(width >= 2 && height >= 2, "chart area too small");
        AsciiChart {
            width,
            height,
            series: Vec::new(),
            v_marker: None,
            h_marker: None,
            title: None,
            x_label: None,
            y_label: None,
        }
    }

    /// Sets the chart title.
    pub fn title(&mut self, title: impl Into<String>) -> &mut Self {
        self.title = Some(title.into());
        self
    }

    /// Sets the x-axis label.
    pub fn x_label(&mut self, label: impl Into<String>) -> &mut Self {
        self.x_label = Some(label.into());
        self
    }

    /// Sets the y-axis label.
    pub fn y_label(&mut self, label: impl Into<String>) -> &mut Self {
        self.y_label = Some(label.into());
        self
    }

    /// Adds a named series drawn with `mark`.
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `ys` differ in length.
    pub fn series(&mut self, name: impl Into<String>, xs: &[f64], ys: &[f64], mark: char) -> &mut Self {
        assert_eq!(xs.len(), ys.len(), "series xs/ys must have equal length");
        self.series.push(Series {
            name: name.into(),
            points: xs.iter().copied().zip(ys.iter().copied()).collect(),
            mark,
        });
        self
    }

    /// Draws a vertical marker at `x` (the paper's QoS-failure line).
    pub fn vertical_marker(&mut self, x: f64, mark: char) -> &mut Self {
        self.v_marker = Some((x, mark));
        self
    }

    /// Draws a horizontal marker at `y`.
    pub fn horizontal_marker(&mut self, y: f64, mark: char) -> &mut Self {
        self.h_marker = Some((y, mark));
        self
    }

    fn bounds(&self) -> Option<(f64, f64, f64, f64)> {
        let mut pts = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .peekable();
        pts.peek()?;
        let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
        for (x, y) in pts {
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
        }
        if let Some((x, _)) = self.v_marker {
            min_x = min_x.min(x);
            max_x = max_x.max(x);
        }
        if let Some((y, _)) = self.h_marker {
            min_y = min_y.min(y);
            max_y = max_y.max(y);
        }
        // Widen degenerate ranges so every point lands inside the grid.
        if min_x == max_x {
            max_x += 1.0;
        }
        if min_y == max_y {
            max_y += 1.0;
        }
        Some((min_x, max_x, min_y, max_y))
    }

    /// Renders the chart to a multi-line string.
    ///
    /// An empty chart renders as a short placeholder rather than panicking.
    pub fn render(&self) -> String {
        let Some((min_x, max_x, min_y, max_y)) = self.bounds() else {
            return "(empty chart)\n".to_string();
        };
        let mut grid = vec![vec![' '; self.width]; self.height];

        let col_of = |x: f64| -> usize {
            let frac = (x - min_x) / (max_x - min_x);
            ((frac * (self.width - 1) as f64).round() as usize).min(self.width - 1)
        };
        let row_of = |y: f64| -> usize {
            let frac = (y - min_y) / (max_y - min_y);
            let from_bottom = (frac * (self.height - 1) as f64).round() as usize;
            self.height - 1 - from_bottom.min(self.height - 1)
        };

        if let Some((x, mark)) = self.v_marker {
            let col = col_of(x);
            for row in grid.iter_mut() {
                row[col] = mark;
            }
        }
        if let Some((y, mark)) = self.h_marker {
            let row = row_of(y);
            for cell in grid[row].iter_mut() {
                *cell = mark;
            }
        }
        for s in &self.series {
            for &(x, y) in &s.points {
                grid[row_of(y)][col_of(x)] = s.mark;
            }
        }

        let mut out = String::new();
        if let Some(title) = &self.title {
            out.push_str(title);
            out.push('\n');
        }
        if let Some(label) = &self.y_label {
            out.push_str(&format!("{label} (top={max_y:.4}, bottom={min_y:.4})\n"));
        }
        for row in &grid {
            out.push('|');
            out.extend(row.iter());
            out.push('\n');
        }
        out.push('+');
        out.extend(std::iter::repeat_n('-', self.width));
        out.push('\n');
        if let Some(label) = &self.x_label {
            out.push_str(&format!(" {label} (left={min_x:.4}, right={max_x:.4})\n"));
        }
        if !self.series.is_empty() {
            let legend: Vec<String> = self
                .series
                .iter()
                .map(|s| format!("{} = {}", s.mark, s.name))
                .collect();
            out.push_str(&format!(" legend: {}\n", legend.join(", ")));
        }
        out
    }
}

/// Renders a compact one-line sparkline of `values` using eight block levels.
///
/// Returns an empty string for empty input.
///
/// # Examples
///
/// ```
/// use kscope_analysis::sparkline;
///
/// let s = sparkline(&[0.0, 0.5, 1.0]);
/// assert_eq!(s.chars().count(), 3);
/// ```
pub fn sparkline(values: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let range = if max > min { max - min } else { 1.0 };
    values
        .iter()
        .map(|v| {
            let idx = (((v - min) / range) * 7.0).round() as usize;
            LEVELS[idx.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_points_within_grid() {
        let mut chart = AsciiChart::new(20, 5);
        chart.series("s", &[0.0, 1.0, 2.0], &[0.0, 1.0, 4.0], 'o');
        let out = chart.render();
        let grid_marks: usize = out
            .lines()
            .filter(|l| l.starts_with('|'))
            .map(|l| l.matches('o').count())
            .sum();
        assert_eq!(grid_marks, 3);
        // 5 grid rows, each prefixed with '|'.
        assert_eq!(out.lines().filter(|l| l.starts_with('|')).count(), 5);
    }

    #[test]
    fn empty_chart_has_placeholder() {
        let chart = AsciiChart::new(10, 4);
        assert!(chart.render().contains("empty chart"));
    }

    #[test]
    fn vertical_marker_spans_all_rows() {
        let mut chart = AsciiChart::new(10, 4);
        chart.series("s", &[0.0, 10.0], &[0.0, 1.0], '*');
        chart.vertical_marker(5.0, ';');
        let out = chart.render();
        assert_eq!(out.matches(';').count(), 4);
    }

    #[test]
    fn title_labels_and_legend_appear() {
        let mut chart = AsciiChart::new(10, 4);
        chart
            .title("Fig. 3")
            .x_label("normalized RPS")
            .y_label("normalized variance")
            .series("img-dnn", &[0.0, 1.0], &[0.0, 1.0], 'x');
        let out = chart.render();
        assert!(out.contains("Fig. 3"));
        assert!(out.contains("normalized RPS"));
        assert!(out.contains("normalized variance"));
        assert!(out.contains("x = img-dnn"));
    }

    #[test]
    fn degenerate_ranges_do_not_panic() {
        let mut chart = AsciiChart::new(10, 4);
        chart.series("s", &[5.0, 5.0], &[2.0, 2.0], '#');
        let out = chart.render();
        assert!(out.contains('#'));
    }

    #[test]
    fn sparkline_levels() {
        assert_eq!(sparkline(&[]), "");
        let s = sparkline(&[0.0, 1.0]);
        assert_eq!(s, "▁█");
        let flat = sparkline(&[3.0, 3.0, 3.0]);
        assert_eq!(flat.chars().count(), 3);
    }
}
