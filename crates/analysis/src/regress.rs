//! Ordinary least-squares linear regression.
//!
//! Figure 2 and Table II of the paper report the coefficient of
//! determination (R²) of a linear fit between observed RPS (from syscall
//! deltas) and real RPS (reported by the benchmark), plus residual scatter
//! plots around that fit. [`LinearFit`] implements exactly that analysis.

/// The result of an ordinary least-squares fit `y ≈ slope·x + intercept`.
///
/// # Examples
///
/// ```
/// use kscope_analysis::LinearFit;
///
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [2.1, 3.9, 6.0, 8.1];
/// let fit = LinearFit::fit(&x, &y).unwrap();
/// assert!((fit.slope - 2.0).abs() < 0.1);
/// assert!(fit.r_squared > 0.99);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]` (clamped).
    pub r_squared: f64,
    /// Pearson correlation coefficient in `[-1, 1]`.
    pub pearson_r: f64,
    /// Number of points fitted.
    pub n: usize,
}

/// Errors from [`LinearFit::fit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitError {
    /// The two input slices differ in length.
    LengthMismatch,
    /// Fewer than two points were supplied.
    TooFewPoints,
    /// All x values are identical, so the slope is undefined.
    DegenerateX,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            FitError::LengthMismatch => "x and y have different lengths",
            FitError::TooFewPoints => "need at least two points to fit a line",
            FitError::DegenerateX => "all x values are identical",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for FitError {}

impl LinearFit {
    /// Fits `y ≈ slope·x + intercept` by least squares.
    ///
    /// # Errors
    ///
    /// Returns [`FitError`] when the inputs are mismatched, shorter than two
    /// points, or have zero variance in `x`.
    pub fn fit(x: &[f64], y: &[f64]) -> Result<LinearFit, FitError> {
        if x.len() != y.len() {
            return Err(FitError::LengthMismatch);
        }
        let n = x.len();
        if n < 2 {
            return Err(FitError::TooFewPoints);
        }
        let nf = n as f64;
        let mean_x = x.iter().sum::<f64>() / nf;
        let mean_y = y.iter().sum::<f64>() / nf;
        let mut sxx = 0.0;
        let mut syy = 0.0;
        let mut sxy = 0.0;
        for (&xi, &yi) in x.iter().zip(y) {
            let dx = xi - mean_x;
            let dy = yi - mean_y;
            sxx += dx * dx;
            syy += dy * dy;
            sxy += dx * dy;
        }
        if sxx == 0.0 {
            return Err(FitError::DegenerateX);
        }
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        let (r_squared, pearson_r) = if syy == 0.0 {
            // y is constant: the fit is exact (slope 0 explains everything).
            (1.0, 0.0)
        } else {
            let r = sxy / (sxx * syy).sqrt();
            ((r * r).clamp(0.0, 1.0), r.clamp(-1.0, 1.0))
        };
        Ok(LinearFit {
            slope,
            intercept,
            r_squared,
            pearson_r,
            n,
        })
    }

    /// Predicted `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }

    /// Residuals `y_i − ŷ(x_i)` — the quantity plotted in the lower panels
    /// of Fig. 2.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn residuals(&self, x: &[f64], y: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), y.len(), "x and y must have equal length");
        x.iter()
            .zip(y)
            .map(|(&xi, &yi)| yi - self.predict(xi))
            .collect()
    }
}

/// Computes R² of a fit between `x` and `y`, the headline number of
/// Table II. Returns `None` when a fit is impossible.
pub fn r_squared(x: &[f64], y: &[f64]) -> Option<f64> {
    LinearFit::fit(x, y).ok().map(|f| f.r_squared)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line_has_unit_r_squared() {
        let x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v - 7.0).collect();
        let fit = LinearFit::fit(&x, &y).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept + 7.0).abs() < 1e-10);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.pearson_r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn anticorrelated_line() {
        let x = [0.0, 1.0, 2.0];
        let y = [4.0, 2.0, 0.0];
        let fit = LinearFit::fit(&x, &y).unwrap();
        assert!((fit.slope + 2.0).abs() < 1e-12);
        assert!((fit.pearson_r + 1.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noise_reduces_r_squared() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        // Deterministic "noise".
        let y: Vec<f64> = x
            .iter()
            .map(|v| v + 30.0 * ((v * 12.9898).sin()))
            .collect();
        let fit = LinearFit::fit(&x, &y).unwrap();
        assert!(fit.r_squared < 1.0);
        assert!(fit.r_squared > 0.5);
    }

    #[test]
    fn residuals_sum_to_zero() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.2, 1.9, 3.3, 3.8, 5.1];
        let fit = LinearFit::fit(&x, &y).unwrap();
        let res = fit.residuals(&x, &y);
        let sum: f64 = res.iter().sum();
        assert!(sum.abs() < 1e-10, "residual sum {sum}");
    }

    #[test]
    fn error_cases() {
        assert_eq!(
            LinearFit::fit(&[1.0], &[1.0, 2.0]),
            Err(FitError::LengthMismatch)
        );
        assert_eq!(LinearFit::fit(&[1.0], &[1.0]), Err(FitError::TooFewPoints));
        assert_eq!(
            LinearFit::fit(&[2.0, 2.0], &[1.0, 5.0]),
            Err(FitError::DegenerateX)
        );
        assert!(FitError::DegenerateX.to_string().contains("identical"));
    }

    #[test]
    fn constant_y_is_perfectly_explained() {
        let fit = LinearFit::fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn r_squared_helper() {
        assert_eq!(r_squared(&[1.0], &[1.0]), None);
        let r2 = r_squared(&[0.0, 1.0, 2.0], &[0.0, 2.0, 4.0]).unwrap();
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn predict_interpolates() {
        let fit = LinearFit::fit(&[0.0, 10.0], &[0.0, 100.0]).unwrap();
        assert!((fit.predict(5.0) - 50.0).abs() < 1e-12);
    }
}
