//! # kscope-analysis
//!
//! Offline analysis toolkit for the kscope experiments: the statistics and
//! rendering needed to regenerate the paper's figures and tables.
//!
//! * [`Welford`], [`Extrema`] — streaming moments for metric samples;
//! * [`percentile`], [`P2Quantile`] — exact and constant-space tail-latency
//!   percentiles (the paper's p99 QoS metric);
//! * [`LinearFit`] — the OLS fit + R² + residuals of Fig. 2 / Table II;
//! * [`Histogram`] — duration/delta distributions;
//! * [`AsciiChart`], [`sparkline`], [`TextTable`] — terminal renderings of
//!   each figure and table, with CSV export.
//!
//! This crate is deliberately dependency-light and simulation-agnostic: it
//! operates on plain `f64` slices so it can analyze either simulated traces
//! or data imported from a real eBPF collector.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod chart;
mod histogram;
mod percentile;
mod regress;
mod report;
mod streaming;

pub use chart::{sparkline, AsciiChart};
pub use histogram::{log2_bucket_quantile, Histogram};
pub use percentile::{percentile, percentile_of_sorted, P2Quantile};
pub use regress::{r_squared, FitError, LinearFit};
pub use report::{fmt_sig, TextTable};
pub use streaming::{normalize_by_max, normalize_min_max, Extrema, Welford};
