//! Tabular output: aligned text tables and CSV files.
//!
//! Each experiment binary prints a text table shaped like the paper's table
//! (Table II, the R² summary of Fig. 2, …) and can also persist the same
//! rows as CSV for downstream plotting.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use kscope_analysis::TextTable;
///
/// let mut t = TextTable::new(vec!["workload", "r^2"]);
/// t.row(vec!["img-dnn".to_string(), "0.9997".to_string()]);
/// let out = t.render();
/// assert!(out.contains("img-dnn"));
/// assert!(out.contains("workload"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> TextTable {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        assert!(!headers.is_empty(), "a table needs at least one column");
        TextTable {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns and a header separator.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<w$}");
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.extend(std::iter::repeat_n('-', total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }

    /// Serializes the table as CSV (RFC 4180 quoting).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let push_row = |cells: &[String], out: &mut String| {
            let line: Vec<String> = cells.iter().map(|c| esc(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        push_row(&self.headers, &mut out);
        for row in &self.rows {
            push_row(row, &mut out);
        }
        out
    }

    /// Writes the CSV form to `path`.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from creating or writing the file.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_csv())
    }
}

/// Formats a float with a sensible number of digits for tables.
pub fn fmt_sig(value: f64, digits: usize) -> String {
    if value == 0.0 {
        return "0".to_string();
    }
    let magnitude = value.abs().log10().floor() as i32;
    let decimals = (digits as i32 - 1 - magnitude).clamp(0, 12) as usize;
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(vec!["a", "bee"]);
        t.row(vec!["xxxx".into(), "1".into()]);
        t.row(vec!["y".into(), "22".into()]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        // Columns aligned: 'bee' and '1' start at the same offset.
        let header_pos = lines[0].find("bee").unwrap();
        let cell_pos = lines[2].find('1').unwrap();
        assert_eq!(header_pos, cell_pos);
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["a,b".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn csv_round_trip_shape() {
        let mut t = TextTable::new(vec!["x"]);
        t.row(vec!["1".into()]);
        t.row(vec!["2".into()]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        TextTable::new(vec!["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    fn fmt_sig_scales_decimals() {
        assert_eq!(fmt_sig(0.0, 3), "0");
        assert_eq!(fmt_sig(1234.4, 3), "1234");
        assert_eq!(fmt_sig(0.001234, 3), "0.00123");
        assert_eq!(fmt_sig(9.87654, 4), "9.877");
    }

    #[test]
    fn write_csv_creates_file() {
        let mut t = TextTable::new(vec!["h"]);
        t.row(vec!["v".into()]);
        let dir = std::env::temp_dir().join("kscope_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.csv");
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "h\nv\n");
    }
}
