//! Percentile estimation — exact and streaming.
//!
//! Tail latency (p99) is the paper's ground-truth QoS metric. The harness
//! computes it exactly from recorded client latencies
//! ([`percentile_of_sorted`]); long-running monitors can instead use the
//! constant-space P² estimator ([`P2Quantile`], Jain & Chlamtac 1985).

/// Exact percentile of a **sorted ascending** slice with linear
/// interpolation between closest ranks.
///
/// `q` is in `[0, 100]`. Returns `None` for empty input.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 100]`.
///
/// # Examples
///
/// ```
/// use kscope_analysis::percentile_of_sorted;
///
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile_of_sorted(&xs, 50.0), Some(2.5));
/// assert_eq!(percentile_of_sorted(&xs, 100.0), Some(4.0));
/// ```
pub fn percentile_of_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&q), "percentile must be in [0, 100]");
    if sorted.is_empty() {
        return None;
    }
    if sorted.len() == 1 {
        return Some(sorted[0]);
    }
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Sorts a copy of `values` and takes the percentile.
///
/// Convenience for one-shot use; sorts with total ordering so NaNs sink to
/// the end (callers should not feed NaNs).
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    percentile_of_sorted(&sorted, q)
}

/// Streaming quantile estimator using the P² algorithm.
///
/// Maintains five markers and adjusts them with piecewise-parabolic
/// interpolation; O(1) space and time per observation. Accuracy is within a
/// few percent for smooth distributions, which is ample for dashboard-style
/// saturation monitoring.
///
/// # Examples
///
/// ```
/// use kscope_analysis::P2Quantile;
///
/// let mut p99 = P2Quantile::new(0.99);
/// for i in 0..10_000 {
///     p99.push(i as f64);
/// }
/// let est = p99.estimate().unwrap();
/// assert!((est - 9_900.0).abs() < 150.0);
/// ```
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights.
    heights: [f64; 5],
    /// Marker positions (1-based observation ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments.
    increments: [f64; 5],
    /// Observations seen so far (first five are buffered in `heights`).
    count: usize,
}

impl P2Quantile {
    /// Creates an estimator for quantile `q` in `(0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not strictly between 0 and 1.
    pub fn new(q: f64) -> P2Quantile {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0, 1)");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// The targeted quantile.
    pub fn quantile(&self) -> f64 {
        self.q
    }

    /// Number of observations seen.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        if self.count < 5 {
            self.heights[self.count] = x;
            self.count += 1;
            if self.count == 5 {
                self.heights.sort_by(f64::total_cmp);
            }
            return;
        }
        self.count += 1;

        // Find the cell k such that heights[k] <= x < heights[k+1].
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            while k < 3 && x >= self.heights[k + 1] {
                k += 1;
            }
            k
        };

        for marker in (k + 1)..5 {
            self.positions[marker] += 1.0;
        }
        for marker in 0..5 {
            self.desired[marker] += self.increments[marker];
        }

        // Adjust interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let step_right = self.positions[i + 1] - self.positions[i];
            let step_left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && step_right > 1.0) || (d <= -1.0 && step_left < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                self.heights[i] = if self.heights[i - 1] < candidate
                    && candidate < self.heights[i + 1]
                {
                    candidate
                } else {
                    self.linear(i, d)
                };
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        h[i] + d / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current estimate, `None` until at least one observation.
    ///
    /// With fewer than five observations the estimate is the exact
    /// percentile of the buffered samples.
    pub fn estimate(&self) -> Option<f64> {
        match self.count {
            0 => None,
            n @ 1..=4 => {
                let mut buf = self.heights[..n].to_vec();
                buf.sort_by(f64::total_cmp);
                percentile_of_sorted(&buf, self.q * 100.0)
            }
            _ => Some(self.heights[2]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_percentile_endpoints() {
        let xs = [10.0, 20.0, 30.0];
        assert_eq!(percentile_of_sorted(&xs, 0.0), Some(10.0));
        assert_eq!(percentile_of_sorted(&xs, 50.0), Some(20.0));
        assert_eq!(percentile_of_sorted(&xs, 100.0), Some(30.0));
    }

    #[test]
    fn exact_percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(percentile_of_sorted(&xs, 25.0), Some(2.5));
        assert_eq!(percentile_of_sorted(&xs, 75.0), Some(7.5));
    }

    #[test]
    fn exact_percentile_empty_and_single() {
        assert_eq!(percentile_of_sorted(&[], 50.0), None);
        assert_eq!(percentile_of_sorted(&[5.0], 99.0), Some(5.0));
    }

    #[test]
    fn percentile_sorts_unsorted_input() {
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 50.0), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "in [0, 100]")]
    fn percentile_rejects_out_of_range_q() {
        percentile_of_sorted(&[1.0], 101.0);
    }

    #[test]
    fn p2_tracks_uniform_median() {
        let mut est = P2Quantile::new(0.5);
        // Deterministic low-discrepancy-ish stream.
        let mut x = 0.0f64;
        for _ in 0..50_000 {
            x = (x + 0.618_033_988_749_895) % 1.0;
            est.push(x);
        }
        let m = est.estimate().unwrap();
        assert!((m - 0.5).abs() < 0.02, "median estimate {m}");
    }

    #[test]
    fn p2_tracks_p99_of_linear_ramp() {
        let mut est = P2Quantile::new(0.99);
        for i in 0..100_000u64 {
            // Scramble order deterministically to avoid a sorted stream.
            let v = ((i * 48_271) % 100_000) as f64;
            est.push(v);
        }
        let p99 = est.estimate().unwrap();
        assert!((p99 - 99_000.0).abs() < 2_000.0, "p99 estimate {p99}");
    }

    #[test]
    fn p2_small_counts_fall_back_to_exact() {
        let mut est = P2Quantile::new(0.9);
        assert_eq!(est.estimate(), None);
        est.push(1.0);
        assert_eq!(est.estimate(), Some(1.0));
        est.push(3.0);
        est.push(2.0);
        let e = est.estimate().unwrap();
        assert!((2.0..=3.0).contains(&e), "estimate {e}");
        assert_eq!(est.count(), 3);
    }

    #[test]
    fn p2_handles_extreme_inserts() {
        let mut est = P2Quantile::new(0.5);
        for x in [5.0, 6.0, 7.0, 8.0, 9.0] {
            est.push(x);
        }
        est.push(-100.0);
        est.push(100.0);
        let m = est.estimate().unwrap();
        assert!((5.0..=9.0).contains(&m), "median {m}");
    }

    #[test]
    #[should_panic(expected = "in (0, 1)")]
    fn p2_rejects_degenerate_quantile() {
        P2Quantile::new(1.0);
    }
}
