//! Fixed-width histograms for duration and delta distributions.

/// A linear fixed-width histogram over `[lo, hi)` with under/overflow bins.
///
/// # Examples
///
/// ```
/// use kscope_analysis::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// for x in [1.0, 1.5, 7.0, 12.0] {
///     h.record(x);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.bin_counts()[0], 2); // [0, 2)
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(lo < hi, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / width) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total samples recorded, including under/overflow.
    pub fn count(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Per-bin counts.
    pub fn bin_counts(&self) -> &[u64] {
        &self.bins
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the range's upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The `[start, end)` interval covered by bin `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn bin_range(&self, idx: usize) -> (f64, f64) {
        assert!(idx < self.bins.len(), "bin index out of bounds");
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        (
            self.lo + width * idx as f64,
            self.lo + width * (idx + 1) as f64,
        )
    }

    /// Index of the most populated bin, `None` when all in-range bins are
    /// empty.
    pub fn mode_bin(&self) -> Option<usize> {
        let (idx, &count) = self
            .bins
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)?;
        (count > 0).then_some(idx)
    }

    /// Approximate quantile from bin midpoints. `q` in `[0, 1]`.
    ///
    /// Under/overflow samples are treated as sitting at the range edges.
    pub fn approx_quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return Some(self.lo);
        }
        for (idx, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                let (start, end) = self.bin_range(idx);
                return Some((start + end) / 2.0);
            }
        }
        Some(self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_fall_into_correct_bins() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        h.record(5.0);
        h.record(15.0);
        h.record(95.0);
        h.record(99.999);
        assert_eq!(h.bin_counts()[0], 1);
        assert_eq!(h.bin_counts()[1], 1);
        assert_eq!(h.bin_counts()[9], 2);
    }

    #[test]
    fn under_and_overflow_tracked() {
        let mut h = Histogram::new(10.0, 20.0, 2);
        h.record(9.0);
        h.record(20.0);
        h.record(25.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn bin_range_is_linear() {
        let h = Histogram::new(0.0, 100.0, 4);
        assert_eq!(h.bin_range(0), (0.0, 25.0));
        assert_eq!(h.bin_range(3), (75.0, 100.0));
    }

    #[test]
    fn mode_bin_finds_peak() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        assert_eq!(h.mode_bin(), None);
        for _ in 0..3 {
            h.record(5.0);
        }
        h.record(1.0);
        assert_eq!(h.mode_bin(), Some(2));
    }

    #[test]
    fn approx_quantile_reasonable() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        let median = h.approx_quantile(0.5).unwrap();
        assert!((median - 50.0).abs() <= 1.0, "median {median}");
        let p99 = h.approx_quantile(0.99).unwrap();
        assert!((p99 - 99.0).abs() <= 1.0, "p99 {p99}");
        assert_eq!(h.approx_quantile(0.0).unwrap(), 0.5);
    }

    #[test]
    fn approx_quantile_empty_is_none() {
        let h = Histogram::new(0.0, 1.0, 2);
        assert_eq!(h.approx_quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_inverted_range() {
        Histogram::new(5.0, 5.0, 3);
    }
}
