//! Fixed-width histograms for duration and delta distributions.

/// A linear fixed-width histogram over `[lo, hi)` with under/overflow bins.
///
/// # Examples
///
/// ```
/// use kscope_analysis::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// for x in [1.0, 1.5, 7.0, 12.0] {
///     h.record(x);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.bin_counts()[0], 2); // [0, 2)
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(lo < hi, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / width) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total samples recorded, including under/overflow.
    pub fn count(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Per-bin counts.
    pub fn bin_counts(&self) -> &[u64] {
        &self.bins
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the range's upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The `[start, end)` interval covered by bin `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn bin_range(&self, idx: usize) -> (f64, f64) {
        assert!(idx < self.bins.len(), "bin index out of bounds");
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        (
            self.lo + width * idx as f64,
            self.lo + width * (idx + 1) as f64,
        )
    }

    /// Index of the most populated bin, `None` when all in-range bins are
    /// empty.
    pub fn mode_bin(&self) -> Option<usize> {
        let (idx, &count) = self
            .bins
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)?;
        (count > 0).then_some(idx)
    }

    /// Merges another histogram with the identical layout into this one
    /// (bin-wise addition; exact, since the bin edges coincide).
    ///
    /// # Panics
    ///
    /// Panics if the ranges or bin counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.bins.len() == other.bins.len(),
            "cannot merge histograms with different layouts"
        );
        for (mine, theirs) in self.bins.iter_mut().zip(&other.bins) {
            *mine += theirs;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }

    /// Approximate quantile from bin midpoints. `q` in `[0, 1]`.
    ///
    /// Under/overflow samples are treated as sitting at the range edges.
    pub fn approx_quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return Some(self.lo);
        }
        for (idx, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                let (start, end) = self.bin_range(idx);
                return Some((start + end) / 2.0);
            }
        }
        Some(self.hi)
    }
}

/// Approximate quantile over log2 bucket cells, as maintained by the
/// in-probe poll-duration histogram (`kscope-core`'s `Log2Hist` and the
/// bytecode backend): bucket `i` counts samples whose scaled value
/// satisfies `floor(log2(max(v >> shift, 1))) == i`.
///
/// Returns a representative *raw* (unscaled) value: the geometric
/// midpoint `2^(i + 0.5)` of the bucket's scaled range, multiplied back
/// by `2^shift` — except bucket 0, whose scaled range `[0, 2)` collapses
/// to `1`. `None` when the buckets are all empty.
///
/// Because merged bucket cells are exact (integer addition), a quantile
/// of K merged per-host histograms equals the quantile of the
/// concatenated stream's histogram — within bucket resolution, the
/// mergeable-percentile primitive the fleet rollup uses.
pub fn log2_bucket_quantile(buckets: &[u64], shift: u32, q: f64) -> Option<f64> {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return None;
    }
    let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        seen += c;
        if seen >= target {
            let scaled_mid = if i == 0 { 1.0 } else { 2f64.powf(i as f64 + 0.5) };
            return Some(scaled_mid * (1u64 << shift) as f64);
        }
    }
    // Unreachable: `seen` reaches `total >= target` within the loop.
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_fall_into_correct_bins() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        h.record(5.0);
        h.record(15.0);
        h.record(95.0);
        h.record(99.999);
        assert_eq!(h.bin_counts()[0], 1);
        assert_eq!(h.bin_counts()[1], 1);
        assert_eq!(h.bin_counts()[9], 2);
    }

    #[test]
    fn under_and_overflow_tracked() {
        let mut h = Histogram::new(10.0, 20.0, 2);
        h.record(9.0);
        h.record(20.0);
        h.record(25.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn bin_range_is_linear() {
        let h = Histogram::new(0.0, 100.0, 4);
        assert_eq!(h.bin_range(0), (0.0, 25.0));
        assert_eq!(h.bin_range(3), (75.0, 100.0));
    }

    #[test]
    fn mode_bin_finds_peak() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        assert_eq!(h.mode_bin(), None);
        for _ in 0..3 {
            h.record(5.0);
        }
        h.record(1.0);
        assert_eq!(h.mode_bin(), Some(2));
    }

    #[test]
    fn approx_quantile_reasonable() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        let median = h.approx_quantile(0.5).unwrap();
        assert!((median - 50.0).abs() <= 1.0, "median {median}");
        let p99 = h.approx_quantile(0.99).unwrap();
        assert!((p99 - 99.0).abs() <= 1.0, "p99 {p99}");
        assert_eq!(h.approx_quantile(0.0).unwrap(), 0.5);
    }

    #[test]
    fn approx_quantile_empty_is_none() {
        let h = Histogram::new(0.0, 1.0, 2);
        assert_eq!(h.approx_quantile(0.5), None);
    }

    #[test]
    fn merge_adds_bins_exactly() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let mut b = Histogram::new(0.0, 10.0, 5);
        let mut whole = Histogram::new(0.0, 10.0, 5);
        for (i, x) in [1.0, 3.0, 7.0, 9.5, -1.0, 12.0].iter().enumerate() {
            if i % 2 == 0 {
                a.record(*x);
            } else {
                b.record(*x);
            }
            whole.record(*x);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    #[should_panic(expected = "different layouts")]
    fn merge_rejects_layout_mismatch() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        a.merge(&Histogram::new(0.0, 10.0, 6));
    }

    #[test]
    fn log2_quantile_walks_buckets() {
        let mut buckets = [0u64; 64];
        buckets[4] = 50; // scaled [16, 32)
        buckets[10] = 49; // scaled [1024, 2048)
        buckets[20] = 1;
        let p50 = log2_bucket_quantile(&buckets, 0, 0.5).unwrap();
        assert!((p50 - 2f64.powf(4.5)).abs() < 1e-9, "p50 {p50}");
        let p99 = log2_bucket_quantile(&buckets, 0, 0.99).unwrap();
        assert!((p99 - 2f64.powf(10.5)).abs() < 1e-9, "p99 {p99}");
        let p100 = log2_bucket_quantile(&buckets, 0, 1.0).unwrap();
        assert!((p100 - 2f64.powf(20.5)).abs() < 1e-6, "p100 {p100}");
        // The shift is undone on the way out.
        let shifted = log2_bucket_quantile(&buckets, 3, 0.5).unwrap();
        assert!((shifted - 8.0 * 2f64.powf(4.5)).abs() < 1e-9, "{shifted}");
    }

    #[test]
    fn log2_quantile_edge_cases() {
        assert_eq!(log2_bucket_quantile(&[0; 64], 0, 0.5), None);
        let mut buckets = [0u64; 64];
        buckets[0] = 3;
        // Bucket 0 represents scaled values in [0, 2): midpoint 1.
        assert_eq!(log2_bucket_quantile(&buckets, 0, 0.5), Some(1.0));
        assert_eq!(log2_bucket_quantile(&buckets, 10, 0.5), Some(1024.0));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_inverted_range() {
        Histogram::new(5.0, 5.0, 3);
    }
}
