//! Streaming (single-pass) moment estimators.
//!
//! The userspace side of the observability pipeline consumes metric samples
//! as they arrive; these accumulators compute mean/variance/extrema without
//! retaining the samples. Variance uses Welford's algorithm for numerical
//! stability, unlike the in-kernel estimator
//! (`kscope-core`), which deliberately uses the paper's naive
//! `E[x²] − E[x]²` form (Eq. 2) because that is what fits in eBPF.

/// Welford mean/variance accumulator.
///
/// # Examples
///
/// ```
/// use kscope_analysis::Welford;
///
/// let mut acc = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     acc.push(x);
/// }
/// assert_eq!(acc.mean(), 5.0);
/// assert_eq!(acc.population_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Welford {
        Welford::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance `E[x²] − E[x]²` (0 with fewer than one sample).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Unbiased sample variance (0 with fewer than two samples).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Coefficient of variation (σ/μ), or 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev() / self.mean.abs()
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 += other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
    }
}

impl Extend<f64> for Welford {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Welford {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Welford {
        let mut acc = Welford::new();
        acc.extend(iter);
        acc
    }
}

/// Running minimum / maximum / sum tracker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Extrema {
    count: u64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Default for Extrema {
    fn default() -> Self {
        Extrema {
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }
}

impl Extrema {
    /// Creates an empty tracker.
    pub fn new() -> Extrema {
        Extrema::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.sum += x;
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Minimum sample, `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum sample, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of samples, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Range `max − min`, `None` when empty.
    pub fn range(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max - self.min)
    }
}

impl Extend<f64> for Extrema {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

/// Normalizes values to `[0, 1]` by dividing by the maximum magnitude.
///
/// This is the normalization the paper uses for its figures ("normalized
/// RPS", "normalized variance"). Returns all-zero when the max is zero and
/// an empty vector for empty input.
pub fn normalize_by_max(values: &[f64]) -> Vec<f64> {
    let max = values.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    if max == 0.0 {
        return vec![0.0; values.len()];
    }
    values.iter().map(|v| v / max).collect()
}

/// Min–max normalizes values to `[0, 1]`; constant input maps to all-zero.
pub fn normalize_min_max(values: &[f64]) -> Vec<f64> {
    let mut ext = Extrema::new();
    ext.extend(values.iter().copied());
    match (ext.min(), ext.range()) {
        (Some(min), Some(range)) if range > 0.0 => {
            values.iter().map(|v| (v - min) / range).collect()
        }
        _ => vec![0.0; values.len()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_variance(xs: &[f64]) -> f64 {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n
    }

    #[test]
    fn welford_matches_naive() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 10.0 + 50.0).collect();
        let acc: Welford = xs.iter().copied().collect();
        assert!((acc.population_variance() - naive_variance(&xs)).abs() < 1e-9);
        assert!((acc.mean() - xs.iter().sum::<f64>() / 100.0).abs() < 1e-12);
    }

    #[test]
    fn welford_empty_and_single() {
        let mut acc = Welford::new();
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.population_variance(), 0.0);
        acc.push(5.0);
        assert_eq!(acc.mean(), 5.0);
        assert_eq!(acc.population_variance(), 0.0);
        assert_eq!(acc.sample_variance(), 0.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * 1.3).collect();
        let ys: Vec<f64> = (0..70).map(|i| 100.0 - i as f64).collect();
        let mut merged: Welford = xs.iter().copied().collect();
        let other: Welford = ys.iter().copied().collect();
        merged.merge(&other);
        let all: Welford = xs.iter().chain(&ys).copied().collect();
        assert_eq!(merged.count(), all.count());
        assert!((merged.mean() - all.mean()).abs() < 1e-9);
        assert!((merged.population_variance() - all.population_variance()).abs() < 1e-9);
    }

    #[test]
    fn welford_merge_with_empty_sides() {
        let mut a = Welford::new();
        let b: Welford = [1.0, 2.0, 3.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.mean(), 2.0);
        let empty = Welford::new();
        let mut c = b;
        c.merge(&empty);
        assert_eq!(c.count(), 3);
    }

    #[test]
    fn cv_of_constant_is_zero() {
        let acc: Welford = [4.0, 4.0, 4.0].into_iter().collect();
        assert_eq!(acc.cv(), 0.0);
    }

    #[test]
    fn extrema_tracks_bounds() {
        let mut ext = Extrema::new();
        ext.extend([3.0, -1.0, 7.0, 2.0]);
        assert_eq!(ext.min(), Some(-1.0));
        assert_eq!(ext.max(), Some(7.0));
        assert_eq!(ext.range(), Some(8.0));
        assert_eq!(ext.mean(), Some(2.75));
        assert_eq!(ext.count(), 4);
    }

    #[test]
    fn extrema_empty_is_none() {
        let ext = Extrema::new();
        assert_eq!(ext.min(), None);
        assert_eq!(ext.max(), None);
        assert_eq!(ext.mean(), None);
    }

    #[test]
    fn normalize_by_max_scales_to_unit() {
        let normed = normalize_by_max(&[1.0, 2.0, 4.0]);
        assert_eq!(normed, vec![0.25, 0.5, 1.0]);
        assert_eq!(normalize_by_max(&[0.0, 0.0]), vec![0.0, 0.0]);
        assert!(normalize_by_max(&[]).is_empty());
    }

    #[test]
    fn normalize_min_max_spans_unit_interval() {
        let normed = normalize_min_max(&[10.0, 20.0, 30.0]);
        assert_eq!(normed, vec![0.0, 0.5, 1.0]);
        assert_eq!(normalize_min_max(&[5.0, 5.0]), vec![0.0, 0.0]);
    }
}
