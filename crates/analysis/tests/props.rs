//! Property-based tests for the analysis toolkit.

use kscope_analysis::{
    normalize_by_max, normalize_min_max, percentile, percentile_of_sorted, r_squared, Histogram,
    LinearFit, P2Quantile, Welford,
};
use proptest::prelude::*;

fn naive_variance(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Welford equals the two-pass naive variance.
    #[test]
    fn welford_matches_naive(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let acc: Welford = xs.iter().copied().collect();
        let naive = naive_variance(&xs);
        prop_assert!((acc.population_variance() - naive).abs() <= 1e-6 * naive.abs().max(1.0));
    }

    /// Merging two accumulators equals accumulating the concatenation.
    #[test]
    fn welford_merge_is_concatenation(
        xs in prop::collection::vec(-1e5f64..1e5, 0..100),
        ys in prop::collection::vec(-1e5f64..1e5, 0..100),
    ) {
        let mut merged: Welford = xs.iter().copied().collect();
        merged.merge(&ys.iter().copied().collect());
        let all: Welford = xs.iter().chain(&ys).copied().collect();
        prop_assert_eq!(merged.count(), all.count());
        prop_assert!((merged.mean() - all.mean()).abs() < 1e-6);
        prop_assert!((merged.population_variance() - all.population_variance()).abs() < 1e-4);
    }

    /// Exact percentiles are monotone in q and bounded by min/max.
    #[test]
    fn percentile_is_monotone_and_bounded(
        mut xs in prop::collection::vec(-1e6f64..1e6, 1..100),
        q1 in 0.0f64..100.0,
        q2 in 0.0f64..100.0,
    ) {
        xs.sort_by(f64::total_cmp);
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let p_lo = percentile_of_sorted(&xs, lo).unwrap();
        let p_hi = percentile_of_sorted(&xs, hi).unwrap();
        prop_assert!(p_lo <= p_hi + 1e-9);
        prop_assert!(p_lo >= xs[0] - 1e-9);
        prop_assert!(p_hi <= xs[xs.len() - 1] + 1e-9);
    }

    /// P² stays within the sample range and lands near the exact median
    /// for big samples.
    #[test]
    fn p2_is_bounded_and_reasonable(xs in prop::collection::vec(0.0f64..1e4, 50..400)) {
        let mut est = P2Quantile::new(0.5);
        for &x in &xs {
            est.push(x);
        }
        let m = est.estimate().unwrap();
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9, "estimate {m} outside [{lo}, {hi}]");
        let exact = percentile(&xs, 50.0).unwrap();
        // Generous tolerance: P² is approximate on adversarial streams.
        prop_assert!((m - exact).abs() <= (hi - lo) * 0.35 + 1e-9);
    }

    /// R² is always in [0, 1] when a fit exists.
    #[test]
    fn r_squared_is_in_unit_interval(
        points in prop::collection::vec((-1e4f64..1e4, -1e4f64..1e4), 2..100)
    ) {
        let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
        if let Some(r2) = r_squared(&xs, &ys) {
            prop_assert!((0.0..=1.0).contains(&r2), "r² = {r2}");
        }
    }

    /// Residuals of an OLS fit sum to ~zero.
    #[test]
    fn residuals_sum_to_zero(
        points in prop::collection::vec((-1e4f64..1e4, -1e4f64..1e4), 3..60)
    ) {
        let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
        if let Ok(fit) = LinearFit::fit(&xs, &ys) {
            let sum: f64 = fit.residuals(&xs, &ys).iter().sum();
            let scale = ys.iter().map(|y| y.abs()).fold(1.0, f64::max);
            prop_assert!(sum.abs() < 1e-6 * scale * ys.len() as f64, "sum {sum}");
        }
    }

    /// A perfect line always fits with R² = 1.
    #[test]
    fn perfect_line_r2_is_one(
        slope in -100.0f64..100.0,
        intercept in -1e4f64..1e4,
        xs in prop::collection::vec(-1e3f64..1e3, 2..50),
    ) {
        let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
        if let Ok(fit) = LinearFit::fit(&xs, &ys) {
            prop_assert!(fit.r_squared > 1.0 - 1e-6, "r² = {}", fit.r_squared);
        }
    }

    /// Normalizations stay in [0, 1] and preserve the argmax.
    #[test]
    fn normalizations_are_bounded(xs in prop::collection::vec(0.0f64..1e9, 1..100)) {
        for normed in [normalize_by_max(&xs), normalize_min_max(&xs)] {
            prop_assert_eq!(normed.len(), xs.len());
            prop_assert!(normed.iter().all(|v| (0.0..=1.0).contains(v)));
        }
        let normed = normalize_by_max(&xs);
        let argmax = xs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        if xs[argmax] > 0.0 {
            prop_assert!((normed[argmax] - 1.0).abs() < 1e-12);
        }
    }

    /// Histogram conservation: every recorded sample is accounted for.
    #[test]
    fn histogram_conserves_samples(xs in prop::collection::vec(-50.0f64..150.0, 0..200)) {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for &x in &xs {
            h.record(x);
        }
        prop_assert_eq!(h.count(), xs.len() as u64);
        let binned: u64 = h.bin_counts().iter().sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), xs.len() as u64);
    }
}
