//! Property-based tests for the analysis toolkit.

use kscope_analysis::{
    normalize_by_max, normalize_min_max, percentile, percentile_of_sorted, r_squared, Histogram,
    LinearFit, P2Quantile, Welford,
};
use kscope_simcore::SimRng;
use kscope_testkit::{gen, Config};

fn naive_variance(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n
}

/// Welford equals the two-pass naive variance.
#[test]
fn welford_matches_naive() {
    kscope_testkit::check!(
        Config::cases(256),
        |rng: &mut SimRng| gen::vec_of(rng, 1, 199, |r| gen::f64_in(r, -1e6, 1e6)),
        |xs: &Vec<f64>| {
            let acc: Welford = xs.iter().copied().collect();
            let naive = naive_variance(xs);
            assert!((acc.population_variance() - naive).abs() <= 1e-6 * naive.abs().max(1.0));
        }
    );
}

/// Merging two accumulators equals accumulating the concatenation.
#[test]
fn welford_merge_is_concatenation() {
    kscope_testkit::check!(
        Config::cases(256),
        |rng: &mut SimRng| {
            (
                gen::vec_of(rng, 0, 99, |r| gen::f64_in(r, -1e5, 1e5)),
                gen::vec_of(rng, 0, 99, |r| gen::f64_in(r, -1e5, 1e5)),
            )
        },
        |case: &(Vec<f64>, Vec<f64>)| {
            let (ref xs, ref ys) = *case;
            let mut merged: Welford = xs.iter().copied().collect();
            merged.merge(&ys.iter().copied().collect());
            let all: Welford = xs.iter().chain(ys).copied().collect();
            assert_eq!(merged.count(), all.count());
            assert!((merged.mean() - all.mean()).abs() < 1e-6);
            assert!((merged.population_variance() - all.population_variance()).abs() < 1e-4);
        }
    );
}

/// Exact percentiles are monotone in q and bounded by min/max.
#[test]
fn percentile_is_monotone_and_bounded() {
    kscope_testkit::check!(
        Config::cases(256),
        |rng: &mut SimRng| {
            (
                gen::vec_of(rng, 1, 99, |r| gen::f64_in(r, -1e6, 1e6)),
                gen::f64_in(rng, 0.0, 100.0),
                gen::f64_in(rng, 0.0, 100.0),
            )
        },
        |case: &(Vec<f64>, f64, f64)| {
            let (ref xs, q1, q2) = *case;
            let mut xs = xs.clone();
            xs.sort_by(f64::total_cmp);
            let (lo, hi) = (q1.min(q2), q1.max(q2));
            let p_lo = percentile_of_sorted(&xs, lo).unwrap();
            let p_hi = percentile_of_sorted(&xs, hi).unwrap();
            assert!(p_lo <= p_hi + 1e-9);
            assert!(p_lo >= xs[0] - 1e-9);
            assert!(p_hi <= xs[xs.len() - 1] + 1e-9);
        }
    );
}

/// P² stays within the sample range and lands near the exact median
/// for big samples.
#[test]
fn p2_is_bounded_and_reasonable() {
    kscope_testkit::check!(
        Config::cases(256),
        |rng: &mut SimRng| gen::vec_of(rng, 50, 399, |r| gen::f64_in(r, 0.0, 1e4)),
        |xs: &Vec<f64>| {
            let mut est = P2Quantile::new(0.5);
            for &x in xs {
                est.push(x);
            }
            let m = est.estimate().unwrap();
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!(
                m >= lo - 1e-9 && m <= hi + 1e-9,
                "estimate {m} outside [{lo}, {hi}]"
            );
            let exact = percentile(xs, 50.0).unwrap();
            // Generous tolerance: P² is approximate on adversarial streams.
            assert!((m - exact).abs() <= (hi - lo) * 0.35 + 1e-9);
        }
    );
}

/// R² is always in [0, 1] when a fit exists.
#[test]
fn r_squared_is_in_unit_interval() {
    kscope_testkit::check!(
        Config::cases(256),
        |rng: &mut SimRng| {
            gen::vec_of(rng, 2, 99, |r| {
                (gen::f64_in(r, -1e4, 1e4), gen::f64_in(r, -1e4, 1e4))
            })
        },
        |points: &Vec<(f64, f64)>| {
            let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
            if let Some(r2) = r_squared(&xs, &ys) {
                assert!((0.0..=1.0).contains(&r2), "r² = {r2}");
            }
        }
    );
}

/// Residuals of an OLS fit sum to ~zero.
#[test]
fn residuals_sum_to_zero() {
    kscope_testkit::check!(
        Config::cases(256),
        |rng: &mut SimRng| {
            gen::vec_of(rng, 3, 59, |r| {
                (gen::f64_in(r, -1e4, 1e4), gen::f64_in(r, -1e4, 1e4))
            })
        },
        |points: &Vec<(f64, f64)>| {
            let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
            if let Ok(fit) = LinearFit::fit(&xs, &ys) {
                let sum: f64 = fit.residuals(&xs, &ys).iter().sum();
                let scale = ys.iter().map(|y| y.abs()).fold(1.0, f64::max);
                assert!(sum.abs() < 1e-6 * scale * ys.len() as f64, "sum {sum}");
            }
        }
    );
}

/// A perfect line always fits with R² = 1.
#[test]
fn perfect_line_r2_is_one() {
    kscope_testkit::check!(
        Config::cases(256),
        |rng: &mut SimRng| {
            (
                gen::f64_in(rng, -100.0, 100.0),
                gen::f64_in(rng, -1e4, 1e4),
                gen::vec_of(rng, 2, 49, |r| gen::f64_in(r, -1e3, 1e3)),
            )
        },
        |case: &(f64, f64, Vec<f64>)| {
            let (slope, intercept, ref xs) = *case;
            let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
            if let Ok(fit) = LinearFit::fit(xs, &ys) {
                assert!(fit.r_squared > 1.0 - 1e-6, "r² = {}", fit.r_squared);
            }
        }
    );
}

/// Normalizations stay in [0, 1] and preserve the argmax.
#[test]
fn normalizations_are_bounded() {
    kscope_testkit::check!(
        Config::cases(256),
        |rng: &mut SimRng| gen::vec_of(rng, 1, 99, |r| gen::f64_in(r, 0.0, 1e9)),
        |xs: &Vec<f64>| {
            for normed in [normalize_by_max(xs), normalize_min_max(xs)] {
                assert_eq!(normed.len(), xs.len());
                assert!(normed.iter().all(|v| (0.0..=1.0).contains(v)));
            }
            let normed = normalize_by_max(xs);
            let argmax = xs
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0;
            if xs[argmax] > 0.0 {
                assert!((normed[argmax] - 1.0).abs() < 1e-12);
            }
        }
    );
}

/// Histogram conservation: every recorded sample is accounted for.
#[test]
fn histogram_conserves_samples() {
    kscope_testkit::check!(
        Config::cases(256),
        |rng: &mut SimRng| gen::vec_of(rng, 0, 199, |r| gen::f64_in(r, -50.0, 150.0)),
        |xs: &Vec<f64>| {
            let mut h = Histogram::new(0.0, 100.0, 10);
            for &x in xs {
                h.record(x);
            }
            assert_eq!(h.count(), xs.len() as u64);
            let binned: u64 = h.bin_counts().iter().sum();
            assert_eq!(binned + h.underflow() + h.overflow(), xs.len() as u64);
        }
    );
}
