//! Event-polling (epoll/select) semantics.
//!
//! The poll-family syscalls are the paper's idleness signal (Fig. 4): a
//! thread that calls `epoll_wait` blocks until one of its watched channels
//! becomes readable, and the *duration* of that block is exactly the
//! server's idle slack. This module provides the bookkeeping: watch sets,
//! blocked waiters, and wakeups on delivery.

use std::collections::VecDeque;

use kscope_syscalls::Tid;

use crate::socket::{ChannelId, ChannelTable};

/// Identifier of an epoll (or select fd-set) instance.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord,
)]
pub struct EpollId(pub u32);

#[derive(Debug, Clone, Default)]
struct EpollInstance {
    watched: Vec<ChannelId>,
    waiters: VecDeque<Tid>,
}

/// All epoll instances of the simulated host.
///
/// # Examples
///
/// ```
/// use kscope_kernel::{ChannelTable, EpollTable, Message};
/// use kscope_simcore::Nanos;
///
/// let mut channels = ChannelTable::new();
/// let mut epolls = EpollTable::new();
/// let conn = channels.create();
/// let ep = epolls.create();
/// epolls.watch(ep, conn);
///
/// // Nothing readable: the caller must block.
/// assert!(epolls.ready_channels(ep, &channels).is_empty());
/// epolls.block(ep, 42);
///
/// // Delivery wakes the blocked thread.
/// channels.deliver(conn, Message::internal(1, 8, Nanos::ZERO));
/// assert_eq!(epolls.on_readable(conn), vec![(ep, 42)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EpollTable {
    instances: Vec<EpollInstance>,
}

impl EpollTable {
    /// Creates an empty table.
    pub fn new() -> EpollTable {
        EpollTable::default()
    }

    /// Creates a new epoll instance (`epoll_create1`).
    pub fn create(&mut self) -> EpollId {
        let id = EpollId(self.instances.len() as u32);
        self.instances.push(EpollInstance::default());
        id
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// True if no instances exist.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Adds a channel to an instance's watch set (`epoll_ctl ADD`).
    ///
    /// # Panics
    ///
    /// Panics on an unknown epoll id or a duplicate watch.
    pub fn watch(&mut self, ep: EpollId, channel: ChannelId) {
        let inst = &mut self.instances[ep.0 as usize];
        assert!(
            !inst.watched.contains(&channel),
            "channel {channel:?} already watched by {ep:?}"
        );
        inst.watched.push(channel);
    }

    /// The watched channels of an instance.
    ///
    /// # Panics
    ///
    /// Panics on an unknown epoll id.
    pub fn watched(&self, ep: EpollId) -> &[ChannelId] {
        &self.instances[ep.0 as usize].watched
    }

    /// Channels of `ep` that are currently readable (level-triggered).
    ///
    /// # Panics
    ///
    /// Panics on an unknown epoll id.
    pub fn ready_channels(&self, ep: EpollId, channels: &ChannelTable) -> Vec<ChannelId> {
        self.instances[ep.0 as usize]
            .watched
            .iter()
            .copied()
            .filter(|&c| channels.is_readable(c))
            .collect()
    }

    /// Registers `tid` as blocked in `epoll_wait` on `ep`.
    ///
    /// The caller is responsible for first checking
    /// [`ready_channels`](Self::ready_channels) — blocking with data pending
    /// is a driver bug.
    ///
    /// # Panics
    ///
    /// Panics on an unknown epoll id or if the thread is already blocked
    /// on this instance.
    pub fn block(&mut self, ep: EpollId, tid: Tid) {
        let inst = &mut self.instances[ep.0 as usize];
        assert!(
            !inst.waiters.contains(&tid),
            "thread {tid} already blocked on {ep:?}"
        );
        inst.waiters.push_back(tid);
    }

    /// Number of threads blocked on an instance.
    ///
    /// # Panics
    ///
    /// Panics on an unknown epoll id.
    pub fn blocked_count(&self, ep: EpollId) -> usize {
        self.instances[ep.0 as usize].waiters.len()
    }

    /// Called when `channel` becomes readable: wakes at most one waiter per
    /// watching instance (no thundering herd, as with modern epoll).
    ///
    /// Returns `(instance, thread)` pairs for every wakeup; the driver
    /// completes those threads' `epoll_wait` calls.
    pub fn on_readable(&mut self, channel: ChannelId) -> Vec<(EpollId, Tid)> {
        let mut wakeups = Vec::new();
        for (idx, inst) in self.instances.iter_mut().enumerate() {
            if inst.watched.contains(&channel) {
                if let Some(tid) = inst.waiters.pop_front() {
                    wakeups.push((EpollId(idx as u32), tid));
                }
            }
        }
        wakeups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::socket::Message;
    use kscope_simcore::Nanos;

    fn msg(request: u64) -> Message {
        Message::internal(request, 16, Nanos::ZERO)
    }

    #[test]
    fn ready_channels_is_level_triggered() {
        let mut channels = ChannelTable::new();
        let mut epolls = EpollTable::new();
        let a = channels.create();
        let b = channels.create();
        let ep = epolls.create();
        epolls.watch(ep, a);
        epolls.watch(ep, b);
        assert!(epolls.ready_channels(ep, &channels).is_empty());
        channels.deliver(a, msg(1));
        channels.deliver(a, msg(2));
        channels.deliver(b, msg(3));
        assert_eq!(epolls.ready_channels(ep, &channels), vec![a, b]);
        channels.recv(a);
        // One message still pending on a: still ready (level-triggered).
        assert_eq!(epolls.ready_channels(ep, &channels), vec![a, b]);
    }

    #[test]
    fn wakes_one_waiter_per_instance() {
        let mut channels = ChannelTable::new();
        let mut epolls = EpollTable::new();
        let conn = channels.create();
        let ep = epolls.create();
        epolls.watch(ep, conn);
        epolls.block(ep, 10);
        epolls.block(ep, 11);
        channels.deliver(conn, msg(1));
        assert_eq!(epolls.on_readable(conn), vec![(ep, 10)]);
        assert_eq!(epolls.blocked_count(ep), 1);
        channels.deliver(conn, msg(2));
        assert_eq!(epolls.on_readable(conn), vec![(ep, 11)]);
        assert_eq!(epolls.blocked_count(ep), 0);
        // Nobody left to wake.
        channels.deliver(conn, msg(3));
        assert!(epolls.on_readable(conn).is_empty());
    }

    #[test]
    fn wakeups_go_to_every_watching_instance() {
        let mut channels = ChannelTable::new();
        let mut epolls = EpollTable::new();
        let conn = channels.create();
        let ep1 = epolls.create();
        let ep2 = epolls.create();
        epolls.watch(ep1, conn);
        epolls.watch(ep2, conn);
        epolls.block(ep1, 20);
        epolls.block(ep2, 21);
        channels.deliver(conn, msg(1));
        let wakeups = epolls.on_readable(conn);
        assert_eq!(wakeups, vec![(ep1, 20), (ep2, 21)]);
    }

    #[test]
    fn waiters_wake_in_fifo_order() {
        let mut epolls = EpollTable::new();
        let mut channels = ChannelTable::new();
        let conn = channels.create();
        let ep = epolls.create();
        epolls.watch(ep, conn);
        for tid in [5, 6, 7] {
            epolls.block(ep, tid);
        }
        channels.deliver(conn, msg(1));
        assert_eq!(epolls.on_readable(conn)[0].1, 5);
        channels.deliver(conn, msg(2));
        assert_eq!(epolls.on_readable(conn)[0].1, 6);
    }

    #[test]
    #[should_panic(expected = "already watched")]
    fn duplicate_watch_panics() {
        let mut channels = ChannelTable::new();
        let mut epolls = EpollTable::new();
        let conn = channels.create();
        let ep = epolls.create();
        epolls.watch(ep, conn);
        epolls.watch(ep, conn);
    }

    #[test]
    #[should_panic(expected = "already blocked")]
    fn double_block_panics() {
        let mut epolls = EpollTable::new();
        let ep = epolls.create();
        epolls.block(ep, 1);
        epolls.block(ep, 1);
    }
}
