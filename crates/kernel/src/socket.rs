//! Connection buffers — the queues requests flow through.
//!
//! A [`ChannelId`] names a FIFO byte-stream endpoint on the server: a TCP
//! connection's receive buffer, or an internal handoff queue between
//! application stages (the "application-level request queues" the paper
//! cites from Seer). Both behave identically for the simulation's purposes:
//! messages are delivered in, threads `recv` them out, and epoll instances
//! watch for readability.

use std::collections::VecDeque;

use kscope_simcore::Nanos;

/// Identifier of a connection or internal queue.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord,
)]
pub struct ChannelId(pub u32);

/// Per-stage ingress timestamps carried by a message that traversed the
/// modeled host network stack (see `kscope_kernel::netstack`).
///
/// Invariant: `nic_at <= softirq_at <= enqueued_at` — a packet reaches the
/// NIC ring, is processed by a softirq, and only then lands on its socket
/// queue. Messages created by internal stage handoffs never have stamps
/// (`Message::stack == None`), which is how the drain path knows not to
/// fire the network tracepoints for them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackStamps {
    /// When the packet arrived at the NIC ring.
    pub nic_at: Nanos,
    /// When softirq/NAPI processing of the packet completed.
    pub softirq_at: Nanos,
}

/// One queued message (request or stage-handoff work item).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// The request this message belongs to (threading-model agnostic token).
    pub request: u64,
    /// Payload size in bytes (drives `recv`/`send` return values).
    pub bytes: u32,
    /// When the message entered this queue.
    pub enqueued_at: Nanos,
    /// Ingress-path timestamps; `None` for internal stage handoffs that
    /// never crossed the network stack.
    pub stack: Option<StackStamps>,
}

impl Message {
    /// A message created by an internal stage handoff (no network-stack
    /// traversal, so no stage stamps).
    pub fn internal(request: u64, bytes: u32, enqueued_at: Nanos) -> Message {
        Message {
            request,
            bytes,
            enqueued_at,
            stack: None,
        }
    }
}

/// All channel buffers of the simulated host.
///
/// # Examples
///
/// ```
/// use kscope_kernel::{ChannelTable, Message};
/// use kscope_simcore::Nanos;
///
/// let mut channels = ChannelTable::new();
/// let conn = channels.create();
/// channels.deliver(conn, Message::internal(1, 64, Nanos::ZERO));
/// assert!(channels.is_readable(conn));
/// let msg = channels.recv(conn).unwrap();
/// assert_eq!(msg.request, 1);
/// assert!(!channels.is_readable(conn));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ChannelTable {
    queues: Vec<VecDeque<Message>>,
}

impl ChannelTable {
    /// Creates an empty table.
    pub fn new() -> ChannelTable {
        ChannelTable::default()
    }

    /// Creates a new channel.
    pub fn create(&mut self) -> ChannelId {
        let id = ChannelId(self.queues.len() as u32);
        self.queues.push(VecDeque::new());
        id
    }

    /// Number of channels.
    pub fn len(&self) -> usize {
        self.queues.len()
    }

    /// True if no channels exist.
    pub fn is_empty(&self) -> bool {
        self.queues.is_empty()
    }

    fn queue(&self, id: ChannelId) -> &VecDeque<Message> {
        &self.queues[id.0 as usize]
    }

    /// Enqueues a message (network delivery or stage handoff).
    ///
    /// # Panics
    ///
    /// Panics on an unknown channel id.
    pub fn deliver(&mut self, id: ChannelId, msg: Message) {
        self.queues[id.0 as usize].push_back(msg);
    }

    /// Dequeues the oldest message, if any (`recv`/queue-pop semantics).
    ///
    /// # Panics
    ///
    /// Panics on an unknown channel id.
    pub fn recv(&mut self, id: ChannelId) -> Option<Message> {
        self.queues[id.0 as usize].pop_front()
    }

    /// True when at least one message is pending.
    ///
    /// # Panics
    ///
    /// Panics on an unknown channel id.
    pub fn is_readable(&self, id: ChannelId) -> bool {
        !self.queue(id).is_empty()
    }

    /// Number of pending messages.
    ///
    /// # Panics
    ///
    /// Panics on an unknown channel id.
    pub fn pending(&self, id: ChannelId) -> usize {
        self.queue(id).len()
    }

    /// Queueing delay of the head-of-line message relative to `now`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown channel id.
    pub fn head_age(&self, id: ChannelId, now: Nanos) -> Option<Nanos> {
        self.queue(id)
            .front()
            .map(|m| now.saturating_sub(m.enqueued_at))
    }

    /// Total pending messages across every channel (queue-pressure metric).
    pub fn total_pending(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(request: u64, at_us: u64) -> Message {
        Message::internal(request, 100, Nanos::from_micros(at_us))
    }

    #[test]
    fn fifo_order_per_channel() {
        let mut t = ChannelTable::new();
        let c = t.create();
        t.deliver(c, msg(1, 0));
        t.deliver(c, msg(2, 1));
        t.deliver(c, msg(3, 2));
        assert_eq!(t.recv(c).unwrap().request, 1);
        assert_eq!(t.recv(c).unwrap().request, 2);
        assert_eq!(t.recv(c).unwrap().request, 3);
        assert_eq!(t.recv(c), None);
    }

    #[test]
    fn channels_are_independent() {
        let mut t = ChannelTable::new();
        let a = t.create();
        let b = t.create();
        t.deliver(a, msg(1, 0));
        assert!(t.is_readable(a));
        assert!(!t.is_readable(b));
        assert_eq!(t.pending(a), 1);
        assert_eq!(t.pending(b), 0);
        assert_eq!(t.total_pending(), 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn head_age_measures_queueing_delay() {
        let mut t = ChannelTable::new();
        let c = t.create();
        assert_eq!(t.head_age(c, Nanos::from_micros(5)), None);
        t.deliver(c, msg(1, 10));
        assert_eq!(
            t.head_age(c, Nanos::from_micros(25)),
            Some(Nanos::from_micros(15))
        );
    }
}
