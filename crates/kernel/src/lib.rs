//! # kscope-kernel
//!
//! The simulated operating-system substrate: tasks, a contended multicore
//! CPU scheduler, connection/queue channels, epoll semantics, and — the
//! part the paper's methodology plugs into — `raw_syscalls` tracepoint
//! dispatch with attachable probes and per-probe overhead accounting.
//!
//! The crate is deliberately *passive*: every structure is clock-agnostic
//! bookkeeping that takes `now` as an argument and returns what should
//! happen next (a [`ComputeGrant`] to schedule, wakeups to deliver). The
//! discrete-event driver in `kscope-workloads` owns the
//! [`Engine`](kscope_simcore::Engine) and orchestrates these pieces into
//! running servers.
//!
//! # Examples
//!
//! The life of one request against the raw substrate:
//!
//! ```
//! use kscope_kernel::{Kernel, Message, SchedConfig};
//! use kscope_simcore::{Nanos, SimRng};
//! use kscope_syscalls::SyscallNo;
//!
//! let mut kernel = Kernel::new(4, SchedConfig::default());
//! kernel.tracing.set_collect_trace(true);
//! let mut rng = SimRng::seed_from_u64(7);
//!
//! let pid = kernel.tasks.spawn_process("server");
//! let worker = kernel.tasks.spawn_thread(pid, "worker-0").unwrap();
//! let conn = kernel.channels.create();
//! let ep = kernel.epolls.create();
//! kernel.epolls.watch(ep, conn);
//!
//! // Worker blocks in epoll_wait at t=0.
//! let t0 = Nanos::ZERO;
//! kernel.tracing.sys_enter(pid, worker, SyscallNo::EPOLL_WAIT, t0);
//! kernel.epolls.block(ep, worker);
//!
//! // A request arrives at t=1ms and wakes the worker.
//! let t1 = Nanos::from_millis(1);
//! kernel.channels.deliver(conn, Message::internal(1, 64, t1));
//! let wakeups = kernel.epolls.on_readable(conn);
//! assert_eq!(wakeups[0].1, worker);
//! kernel.tracing.sys_exit(pid, worker, SyscallNo::EPOLL_WAIT, 1, t1);
//!
//! // The epoll_wait duration in the trace is the idle slack: 1ms.
//! let ev = kernel.tracing.trace().events()[0];
//! assert_eq!(ev.duration(), Nanos::from_millis(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod epoll;
mod host;
mod netstack;
mod sched;
mod socket;
mod task;
mod tracing;

pub use epoll::{EpollId, EpollTable};
pub use host::HostSpec;
pub use netstack::{IngressConfig, IngressQueue, IngressStats, RxPacket, SoftirqDelivery, SoftirqRun};
pub use sched::{ComputeGrant, CpuScheduler, SchedConfig, SchedStats};
pub use socket::{ChannelId, ChannelTable, Message, StackStamps};
pub use task::{TaskInfo, TaskTable};
pub use tracing::{ProbeId, TracepointProbe, Tracing, TracingStats};

/// The assembled kernel: every subsystem plus the host profile.
///
/// Subsystems are public fields — the driver composes them freely, exactly
/// as kernel subsystems compose.
#[derive(Debug)]
pub struct Kernel {
    /// Host profile (Table I stand-in).
    pub host: HostSpec,
    /// Process/thread table.
    pub tasks: TaskTable,
    /// CPU scheduler.
    pub sched: CpuScheduler,
    /// Connection and internal-queue buffers.
    pub channels: ChannelTable,
    /// Epoll instances.
    pub epolls: EpollTable,
    /// Network-stack ingress pipeline (NIC ring + softirq/NAPI).
    pub ingress: IngressQueue,
    /// Tracepoint dispatch (the eBPF attachment surface).
    pub tracing: Tracing,
}

impl Kernel {
    /// Creates a kernel with `cores` schedulable cores and the default
    /// (AMD) host profile.
    pub fn new(cores: u32, sched_config: SchedConfig) -> Kernel {
        Kernel {
            host: HostSpec::default(),
            tasks: TaskTable::new(),
            sched: CpuScheduler::new(cores, sched_config),
            channels: ChannelTable::new(),
            epolls: EpollTable::new(),
            ingress: IngressQueue::default(),
            tracing: Tracing::new(),
        }
    }

    /// Creates a kernel sized to a host profile's physical cores.
    pub fn for_host(host: HostSpec, sched_config: SchedConfig) -> Kernel {
        let cores = host.physical_cores();
        Kernel {
            host,
            tasks: TaskTable::new(),
            sched: CpuScheduler::new(cores, sched_config),
            channels: ChannelTable::new(),
            epolls: EpollTable::new(),
            ingress: IngressQueue::default(),
            tracing: Tracing::new(),
        }
    }
}
