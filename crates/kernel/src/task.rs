//! Process and thread bookkeeping.

use kscope_syscalls::{Pid, Tid};

/// One thread's identity within the task table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskInfo {
    /// The thread id.
    pub tid: Tid,
    /// The owning process (thread-group) id.
    pub pid: Pid,
    /// Human-readable name (`comm`).
    pub name: String,
}

/// Allocates pids/tids and records thread→process membership.
///
/// # Examples
///
/// ```
/// use kscope_kernel::TaskTable;
///
/// let mut tasks = TaskTable::new();
/// let server = tasks.spawn_process("memcached");
/// let worker = tasks.spawn_thread(server, "worker-0").unwrap();
/// assert_eq!(tasks.process_of(worker), Some(server));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TaskTable {
    tasks: Vec<TaskInfo>,
    next_id: u32,
}

impl TaskTable {
    /// Creates an empty table; ids start at 1000 (low ids look like system
    /// daemons in traces and confuse no one this way).
    pub fn new() -> TaskTable {
        TaskTable {
            tasks: Vec::new(),
            next_id: 1000,
        }
    }

    fn alloc_id(&mut self) -> u32 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Creates a new process; its main thread has `tid == pid`.
    pub fn spawn_process(&mut self, name: impl Into<String>) -> Pid {
        let pid = self.alloc_id();
        self.tasks.push(TaskInfo {
            tid: pid,
            pid,
            name: name.into(),
        });
        pid
    }

    /// Creates an additional thread in `pid`'s thread group.
    ///
    /// Returns `None` if `pid` does not exist.
    pub fn spawn_thread(&mut self, pid: Pid, name: impl Into<String>) -> Option<Tid> {
        self.tasks.iter().find(|t| t.pid == pid && t.tid == pid)?;
        let tid = self.alloc_id();
        self.tasks.push(TaskInfo {
            tid,
            pid,
            name: name.into(),
        });
        Some(tid)
    }

    /// The process a thread belongs to.
    pub fn process_of(&self, tid: Tid) -> Option<Pid> {
        self.tasks.iter().find(|t| t.tid == tid).map(|t| t.pid)
    }

    /// Metadata for a thread.
    pub fn info(&self, tid: Tid) -> Option<&TaskInfo> {
        self.tasks.iter().find(|t| t.tid == tid)
    }

    /// All threads of a process, in spawn order.
    pub fn threads_of(&self, pid: Pid) -> Vec<Tid> {
        self.tasks
            .iter()
            .filter(|t| t.pid == pid)
            .map(|t| t.tid)
            .collect()
    }

    /// Total threads across all processes.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when no tasks exist.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_process_creates_main_thread() {
        let mut tasks = TaskTable::new();
        let pid = tasks.spawn_process("srv");
        assert_eq!(tasks.process_of(pid), Some(pid));
        assert_eq!(tasks.threads_of(pid), vec![pid]);
        assert_eq!(tasks.info(pid).unwrap().name, "srv");
    }

    #[test]
    fn threads_share_the_process_id() {
        let mut tasks = TaskTable::new();
        let pid = tasks.spawn_process("srv");
        let t1 = tasks.spawn_thread(pid, "w0").unwrap();
        let t2 = tasks.spawn_thread(pid, "w1").unwrap();
        assert_ne!(t1, t2);
        assert_eq!(tasks.process_of(t1), Some(pid));
        assert_eq!(tasks.threads_of(pid), vec![pid, t1, t2]);
        assert_eq!(tasks.len(), 3);
    }

    #[test]
    fn spawn_thread_in_unknown_process_fails() {
        let mut tasks = TaskTable::new();
        assert_eq!(tasks.spawn_thread(42, "w"), None);
    }

    #[test]
    fn ids_are_unique_across_processes() {
        let mut tasks = TaskTable::new();
        let a = tasks.spawn_process("a");
        let b = tasks.spawn_process("b");
        let ta = tasks.spawn_thread(a, "wa").unwrap();
        assert!(a != b && b != ta && a != ta);
    }
}
