//! Tracepoint dispatch — the attachment surface for eBPF probes.
//!
//! Every simulated syscall passes through [`Tracing::sys_enter`] and
//! [`Tracing::sys_exit`], which mirror the `raw_syscalls:sys_enter` /
//! `sys_exit` tracepoints of Listing 1. Attached [`TracepointProbe`]s see a
//! [`TracepointCtx`] with exactly the fields an eBPF program can read
//! (syscall id, packed `pid_tgid`, `ktime`) and report the time their
//! execution cost, which the driver charges to the calling thread — that
//! accounting is what the §VI overhead experiment measures.

use std::collections::HashMap;

use kscope_simcore::Nanos;
use kscope_syscalls::{
    pid_tgid, NetCtx, Pid, SyscallEvent, SyscallNo, Tid, Trace, TracePhase, TracepointCtx,
};

/// A program attached to the syscall tracepoints.
///
/// Implementations may keep state across firings (maps, accumulators); they
/// return the in-kernel time their execution cost so the simulation can
/// charge it to the traced thread.
pub trait TracepointProbe {
    /// Diagnostic name.
    fn name(&self) -> &str;

    /// Handles one tracepoint firing and returns the execution overhead to
    /// charge.
    fn fire(&mut self, ctx: &TracepointCtx) -> Nanos;

    /// Downcasting hook so callers can recover a concrete probe after
    /// [`Tracing::detach`].
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// Handle to an attached probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProbeId(pub u32);

/// Aggregate tracing statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TracingStats {
    /// `sys_enter` firings delivered to probes.
    pub enters: u64,
    /// `sys_exit` firings delivered to probes.
    pub exits: u64,
    /// `net_rx_softirq` firings delivered to probes.
    pub net_rx: u64,
    /// `sock_queue_drain` firings delivered to probes.
    pub sock_drains: u64,
    /// Total probe execution time charged to threads.
    pub probe_overhead: Nanos,
}

/// The tracepoint dispatcher.
///
/// Optionally records a full [`Trace`] of completed syscalls (the
/// stream-everything-to-userspace mode the paper used for exploration)
/// alongside probe dispatch (the compute-in-kernel mode it advocates).
#[derive(Default)]
pub struct Tracing {
    probes: Vec<(ProbeId, Box<dyn TracepointProbe>)>,
    next_probe: u32,
    collect_trace: bool,
    trace: Trace,
    open: HashMap<Tid, (SyscallNo, Nanos)>,
    stats: TracingStats,
}

impl std::fmt::Debug for Tracing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracing")
            .field("probes", &self.probes.len())
            .field("collect_trace", &self.collect_trace)
            .field("trace_len", &self.trace.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Tracing {
    /// Creates a dispatcher with no probes and trace collection off.
    pub fn new() -> Tracing {
        Tracing::default()
    }

    /// Enables or disables full-trace collection.
    pub fn set_collect_trace(&mut self, collect: bool) {
        self.collect_trace = collect;
    }

    /// Whether full-trace collection is on.
    pub fn collects_trace(&self) -> bool {
        self.collect_trace
    }

    /// Attaches a probe to both tracepoints; returns its handle.
    pub fn attach(&mut self, probe: Box<dyn TracepointProbe>) -> ProbeId {
        let id = ProbeId(self.next_probe);
        self.next_probe += 1;
        self.probes.push((id, probe));
        id
    }

    /// Detaches a probe, returning it if it was attached.
    pub fn detach(&mut self, id: ProbeId) -> Option<Box<dyn TracepointProbe>> {
        let idx = self.probes.iter().position(|(pid, _)| *pid == id)?;
        Some(self.probes.remove(idx).1)
    }

    /// Number of attached probes.
    pub fn probe_count(&self) -> usize {
        self.probes.len()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &TracingStats {
        &self.stats
    }

    /// The collected trace (empty unless collection was enabled).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Takes the collected trace, leaving an empty one.
    pub fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.trace)
    }

    /// Mutable access to an attached probe (for reading its maps).
    pub fn probe_mut(&mut self, id: ProbeId) -> Option<&mut (dyn TracepointProbe + 'static)> {
        self.probes
            .iter_mut()
            .find(|(pid, _)| *pid == id)
            .map(|(_, p)| &mut **p)
    }

    /// Fires `sys_enter` for thread `tid` of process `pid` at `now`.
    ///
    /// Returns the total probe overhead to charge to the thread.
    ///
    /// # Panics
    ///
    /// Panics if the thread already has an open syscall (nesting is not a
    /// thing for raw syscalls).
    pub fn sys_enter(&mut self, pid: Pid, tid: Tid, no: SyscallNo, now: Nanos) -> Nanos {
        let prev = self.open.insert(tid, (no, now));
        assert!(
            prev.is_none(),
            "thread {tid} entered {no} while already inside a syscall"
        );
        self.stats.enters += 1;
        let ctx = TracepointCtx {
            phase: TracePhase::Enter,
            no,
            pid_tgid: pid_tgid(pid, tid),
            ktime: now,
            ret: 0,
            net: NetCtx::NONE,
        };
        self.dispatch(&ctx)
    }

    /// Fires `sys_exit` at `now`, pairing with the thread's open `sys_enter`
    /// and recording the completed [`SyscallEvent`] when collection is on.
    ///
    /// Returns the total probe overhead to charge to the thread.
    ///
    /// # Panics
    ///
    /// Panics if the thread has no open syscall or the syscall number does
    /// not match the one it entered with.
    pub fn sys_exit(&mut self, pid: Pid, tid: Tid, no: SyscallNo, ret: i64, now: Nanos) -> Nanos {
        let (entered_no, enter) = self
            .open
            .remove(&tid)
            .unwrap_or_else(|| panic!("thread {tid} exited {no} without entering"));
        assert_eq!(
            entered_no, no,
            "thread {tid} entered {entered_no} but exited {no}"
        );
        self.stats.exits += 1;
        let ctx = TracepointCtx {
            phase: TracePhase::Exit,
            no,
            pid_tgid: pid_tgid(pid, tid),
            ktime: now,
            ret,
            net: NetCtx::NONE,
        };
        let overhead = self.dispatch(&ctx);
        if self.collect_trace {
            self.trace.push(SyscallEvent {
                tid,
                pid,
                no,
                enter,
                exit: now,
                ret,
            });
        }
        overhead
    }

    /// Fires the `net_rx_softirq` tracepoint at `now`: softirq/NAPI
    /// processing of `request`'s packet completed and enqueued it on a
    /// socket. `nic_wait` is the packet's NIC-ring residency (arrival to
    /// softirq completion). Fires in softirq context, so `pid_tgid` is 0.
    ///
    /// Returns the total probe overhead; the driver charges it to the
    /// interrupted CPU rather than any thread.
    pub fn net_rx_softirq(&mut self, request: u64, bytes: u32, nic_wait: Nanos, now: Nanos) -> Nanos {
        self.stats.net_rx += 1;
        let ctx = TracepointCtx {
            phase: TracePhase::NetRxSoftirq,
            no: SyscallNo::from_raw(u32::MAX),
            pid_tgid: 0,
            ktime: now,
            ret: 0,
            net: NetCtx {
                request,
                stage_ns: nic_wait.as_nanos(),
                arg: bytes as u64,
            },
        };
        self.dispatch(&ctx)
    }

    /// Fires the `sock_queue_drain` tracepoint at `now`: thread `tid` of
    /// process `pid` dequeued `request`'s message from its socket receive
    /// queue (inside `recvfrom`/an `epoll_wait`-driven read). `residency`
    /// is the message's socket-queue wait; `queue_depth` is what remains
    /// on the queue after the dequeue.
    ///
    /// Returns the total probe overhead to charge to the draining thread.
    pub fn sock_queue_drain(
        &mut self,
        pid: Pid,
        tid: Tid,
        request: u64,
        residency: Nanos,
        queue_depth: u64,
        now: Nanos,
    ) -> Nanos {
        self.stats.sock_drains += 1;
        let ctx = TracepointCtx {
            phase: TracePhase::SockQueueDrain,
            no: SyscallNo::from_raw(u32::MAX),
            pid_tgid: pid_tgid(pid, tid),
            ktime: now,
            ret: 0,
            net: NetCtx {
                request,
                stage_ns: residency.as_nanos(),
                arg: queue_depth,
            },
        };
        self.dispatch(&ctx)
    }

    fn dispatch(&mut self, ctx: &TracepointCtx) -> Nanos {
        let mut total = Nanos::ZERO;
        for (_, probe) in &mut self.probes {
            total += probe.fire(ctx);
        }
        self.stats.probe_overhead += total;
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountingProbe {
        fired: u64,
        cost: Nanos,
    }

    impl TracepointProbe for CountingProbe {
        fn name(&self) -> &str {
            "counting"
        }
        fn fire(&mut self, _ctx: &TracepointCtx) -> Nanos {
            self.fired += 1;
            self.cost
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn pairing_produces_trace_events() {
        let mut tracing = Tracing::new();
        tracing.set_collect_trace(true);
        tracing.sys_enter(1, 2, SyscallNo::RECVFROM, Nanos::from_micros(10));
        tracing.sys_exit(1, 2, SyscallNo::RECVFROM, 64, Nanos::from_micros(12));
        let trace = tracing.trace();
        assert_eq!(trace.len(), 1);
        let ev = trace.events()[0];
        assert_eq!(ev.no, SyscallNo::RECVFROM);
        assert_eq!(ev.duration(), Nanos::from_micros(2));
        assert_eq!(ev.ret, 64);
    }

    #[test]
    fn probes_fire_on_both_edges_and_charge_overhead() {
        let mut tracing = Tracing::new();
        let id = tracing.attach(Box::new(CountingProbe {
            fired: 0,
            cost: Nanos::from_nanos(200),
        }));
        let o1 = tracing.sys_enter(1, 2, SyscallNo::SENDTO, Nanos::ZERO);
        let o2 = tracing.sys_exit(1, 2, SyscallNo::SENDTO, 8, Nanos::from_nanos(500));
        assert_eq!(o1, Nanos::from_nanos(200));
        assert_eq!(o2, Nanos::from_nanos(200));
        assert_eq!(tracing.stats().enters, 1);
        assert_eq!(tracing.stats().exits, 1);
        assert_eq!(tracing.stats().probe_overhead, Nanos::from_nanos(400));
        let detached = tracing.detach(id).unwrap();
        assert_eq!(detached.name(), "counting");
        assert_eq!(tracing.probe_count(), 0);
    }

    struct NetRecorder {
        seen: Vec<TracepointCtx>,
    }

    impl TracepointProbe for NetRecorder {
        fn name(&self) -> &str {
            "net-recorder"
        }
        fn fire(&mut self, ctx: &TracepointCtx) -> Nanos {
            self.seen.push(*ctx);
            Nanos::from_nanos(50)
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn net_tracepoints_dispatch_with_net_payload() {
        let mut tracing = Tracing::new();
        let id = tracing.attach(Box::new(NetRecorder { seen: Vec::new() }));
        let o1 = tracing.net_rx_softirq(42, 256, Nanos::from_micros(3), Nanos::from_micros(10));
        let o2 = tracing.sock_queue_drain(1, 2, 42, Nanos::from_micros(7), 4, Nanos::from_micros(20));
        assert_eq!(o1, Nanos::from_nanos(50));
        assert_eq!(o2, Nanos::from_nanos(50));
        assert_eq!(tracing.stats().net_rx, 1);
        assert_eq!(tracing.stats().sock_drains, 1);
        assert_eq!(tracing.stats().probe_overhead, Nanos::from_nanos(100));
        let mut probe = tracing.detach(id).unwrap();
        let rec = probe.as_any_mut().downcast_mut::<NetRecorder>().unwrap();
        let rx = rec.seen[0];
        assert_eq!(rx.phase, TracePhase::NetRxSoftirq);
        assert_eq!(rx.pid_tgid, 0, "softirq context has no current task");
        assert_eq!(rx.net.request, 42);
        assert_eq!(rx.net.stage_ns, 3_000);
        assert_eq!(rx.net.arg, 256);
        let drain = rec.seen[1];
        assert_eq!(drain.phase, TracePhase::SockQueueDrain);
        assert_eq!(drain.tgid(), 1);
        assert_eq!(drain.tid(), 2);
        assert_eq!(drain.net.stage_ns, 7_000);
        assert_eq!(drain.net.arg, 4);
    }

    #[test]
    fn no_probes_means_zero_overhead() {
        let mut tracing = Tracing::new();
        let o = tracing.sys_enter(1, 2, SyscallNo::READ, Nanos::ZERO);
        assert_eq!(o, Nanos::ZERO);
        tracing.sys_exit(1, 2, SyscallNo::READ, 0, Nanos::from_nanos(1));
    }

    #[test]
    fn interleaved_threads_pair_independently() {
        let mut tracing = Tracing::new();
        tracing.set_collect_trace(true);
        tracing.sys_enter(1, 2, SyscallNo::SELECT, Nanos::from_micros(0));
        tracing.sys_enter(1, 3, SyscallNo::RECVFROM, Nanos::from_micros(1));
        tracing.sys_exit(1, 3, SyscallNo::RECVFROM, 9, Nanos::from_micros(2));
        tracing.sys_exit(1, 2, SyscallNo::SELECT, 1, Nanos::from_micros(5));
        let trace = tracing.trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.events()[0].tid, 3);
        assert_eq!(trace.events()[1].tid, 2);
        assert_eq!(trace.events()[1].duration(), Nanos::from_micros(5));
    }

    #[test]
    fn take_trace_resets_collection() {
        let mut tracing = Tracing::new();
        tracing.set_collect_trace(true);
        tracing.sys_enter(1, 2, SyscallNo::READ, Nanos::ZERO);
        tracing.sys_exit(1, 2, SyscallNo::READ, 0, Nanos::from_nanos(10));
        let taken = tracing.take_trace();
        assert_eq!(taken.len(), 1);
        assert_eq!(tracing.trace().len(), 0);
    }

    #[test]
    #[should_panic(expected = "already inside")]
    fn nested_syscalls_panic() {
        let mut tracing = Tracing::new();
        tracing.sys_enter(1, 2, SyscallNo::READ, Nanos::ZERO);
        tracing.sys_enter(1, 2, SyscallNo::WRITE, Nanos::from_nanos(1));
    }

    #[test]
    #[should_panic(expected = "without entering")]
    fn unmatched_exit_panics() {
        let mut tracing = Tracing::new();
        tracing.sys_exit(1, 2, SyscallNo::READ, 0, Nanos::ZERO);
    }
}

#[cfg(test)]
mod probe_access_tests {
    use super::*;

    struct Tagged {
        tag: u32,
    }

    impl TracepointProbe for Tagged {
        fn name(&self) -> &str {
            "tagged"
        }
        fn fire(&mut self, _ctx: &TracepointCtx) -> Nanos {
            Nanos::ZERO
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn probe_mut_reaches_the_right_probe() {
        let mut tracing = Tracing::new();
        let a = tracing.attach(Box::new(Tagged { tag: 1 }));
        let b = tracing.attach(Box::new(Tagged { tag: 2 }));
        let probe_b = tracing.probe_mut(b).unwrap();
        let tagged = probe_b.as_any_mut().downcast_mut::<Tagged>().unwrap();
        assert_eq!(tagged.tag, 2);
        tagged.tag = 99;
        // Detach order is independent of attach order.
        let mut removed = tracing.detach(b).unwrap();
        assert_eq!(
            removed.as_any_mut().downcast_mut::<Tagged>().unwrap().tag,
            99
        );
        assert!(tracing.probe_mut(b).is_none());
        assert!(tracing.probe_mut(a).is_some());
    }

    #[test]
    fn detach_unknown_probe_is_none() {
        let mut tracing = Tracing::new();
        assert!(tracing.detach(ProbeId(7)).is_none());
    }
}
