//! Multicore CPU scheduling with run-queue contention.
//!
//! The scheduler is the mechanism behind the paper's saturation signals:
//! below the capacity knee a worker thread gets a core immediately and the
//! send stream inherits the arrival process's spacing; past the knee,
//! threads queue for cores, completions cluster into bursts separated by
//! service-length gaps, and the variance of inter-send deltas climbs
//! (Fig. 3) while poll durations collapse to their floor (Fig. 4).
//!
//! The model is non-preemptive FCFS over `cores` identical cores, with a
//! fixed context-switch cost when dispatching from the run queue and a
//! contention jitter term that grows with the instantaneous queue length
//! (standing in for cache pollution, lock contention, and scheduler noise —
//! the "irregular activity patterns" of §III-B).

use std::collections::VecDeque;

use kscope_simcore::{Nanos, SimRng};
use kscope_syscalls::Tid;

/// Scheduler tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedConfig {
    /// Cost of dispatching a thread from the run queue (context switch).
    pub csw_cost: Nanos,
    /// Mean of the exponential contention jitter added per queued waiter at
    /// dispatch time, in nanoseconds. Zero disables jitter.
    pub jitter_per_waiter_ns: f64,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            csw_cost: Nanos::from_micros(3),
            jitter_per_waiter_ns: 2_000.0,
        }
    }
}

/// A granted CPU slice: `tid` runs until `finish`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComputeGrant {
    /// The thread now running.
    pub tid: Tid,
    /// Absolute completion instant; the driver must call
    /// [`CpuScheduler::complete`] at this time.
    pub finish: Nanos,
}

/// Aggregate scheduler statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SchedStats {
    /// Compute requests that got a core immediately.
    pub immediate: u64,
    /// Compute requests that had to queue.
    pub queued: u64,
    /// Total time spent waiting in the run queue.
    pub total_wait: Nanos,
    /// Largest run-queue depth observed.
    pub max_queue_depth: usize,
    /// Total busy core-time granted.
    pub busy_time: Nanos,
}

#[derive(Debug, Clone, Copy)]
struct Waiting {
    tid: Tid,
    demand: Nanos,
    since: Nanos,
}

/// Non-preemptive FCFS multicore scheduler.
///
/// The scheduler is passive bookkeeping: the discrete-event driver calls
/// [`submit`](CpuScheduler::submit) when a thread wants CPU and
/// [`complete`](CpuScheduler::complete) when a granted slice finishes, and
/// schedules engine events for the returned [`ComputeGrant`]s.
///
/// # Examples
///
/// ```
/// use kscope_kernel::{CpuScheduler, SchedConfig};
/// use kscope_simcore::{Nanos, SimRng};
///
/// let mut rng = SimRng::seed_from_u64(1);
/// let mut sched = CpuScheduler::new(1, SchedConfig { csw_cost: Nanos::ZERO, jitter_per_waiter_ns: 0.0 });
/// let grant = sched.submit(7, Nanos::from_micros(10), Nanos::ZERO, &mut rng).unwrap();
/// assert_eq!(grant.finish, Nanos::from_micros(10));
/// // A second thread queues behind the first.
/// assert!(sched.submit(8, Nanos::from_micros(5), Nanos::from_micros(1), &mut rng).is_none());
/// let next = sched.complete(7, grant.finish, &mut rng).unwrap();
/// assert_eq!(next.tid, 8);
/// ```
#[derive(Debug, Clone)]
pub struct CpuScheduler {
    cores: u32,
    busy: Vec<Tid>,
    run_queue: VecDeque<Waiting>,
    config: SchedConfig,
    stats: SchedStats,
}

impl CpuScheduler {
    /// Creates a scheduler with `cores` identical cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cores: u32, config: SchedConfig) -> CpuScheduler {
        assert!(cores > 0, "a scheduler needs at least one core");
        CpuScheduler {
            cores,
            busy: Vec::with_capacity(cores as usize),
            run_queue: VecDeque::new(),
            config,
            stats: SchedStats::default(),
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Number of currently busy cores.
    pub fn busy_cores(&self) -> usize {
        self.busy.len()
    }

    /// Current run-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.run_queue.len()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SchedStats {
        &self.stats
    }

    /// Requests `demand` of CPU time for `tid` starting at `now`.
    ///
    /// Returns the grant when a core is free; otherwise the thread queues
    /// and a grant will be returned by a later [`complete`](Self::complete).
    ///
    /// # Panics
    ///
    /// Panics if `tid` is already running or queued.
    pub fn submit(
        &mut self,
        tid: Tid,
        demand: Nanos,
        now: Nanos,
        rng: &mut SimRng,
    ) -> Option<ComputeGrant> {
        assert!(
            !self.busy.contains(&tid) && !self.run_queue.iter().any(|w| w.tid == tid),
            "thread {tid} already owns or awaits a core"
        );
        if (self.busy.len() as u32) < self.cores {
            self.busy.push(tid);
            self.stats.immediate += 1;
            let demand = self.with_jitter(demand, rng);
            self.stats.busy_time += demand;
            Some(ComputeGrant {
                tid,
                finish: now + demand,
            })
        } else {
            self.run_queue.push_back(Waiting {
                tid,
                demand,
                since: now,
            });
            self.stats.queued += 1;
            self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.run_queue.len());
            None
        }
    }

    /// Marks `tid`'s slice complete at `now` and dispatches the next queued
    /// thread, if any.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is not currently running.
    pub fn complete(&mut self, tid: Tid, now: Nanos, rng: &mut SimRng) -> Option<ComputeGrant> {
        let idx = self
            .busy
            .iter()
            .position(|&t| t == tid)
            .unwrap_or_else(|| panic!("thread {tid} is not running"));
        self.busy.swap_remove(idx);
        let next = self.run_queue.pop_front()?;
        self.busy.push(next.tid);
        self.stats.total_wait += now.saturating_sub(next.since);
        let demand = self.config.csw_cost + self.with_jitter(next.demand, rng);
        self.stats.busy_time += demand;
        Some(ComputeGrant {
            tid: next.tid,
            finish: now + demand,
        })
    }

    /// Inflates a demand with contention jitter proportional to the current
    /// run-queue depth.
    fn with_jitter(&self, demand: Nanos, rng: &mut SimRng) -> Nanos {
        let waiters = self.run_queue.len();
        if waiters == 0 || self.config.jitter_per_waiter_ns <= 0.0 {
            return demand;
        }
        let mean = self.config.jitter_per_waiter_ns * waiters as f64;
        let extra = rng.next_exponential(1.0 / mean);
        demand + Nanos::from_nanos(extra.round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_config() -> SchedConfig {
        SchedConfig {
            csw_cost: Nanos::ZERO,
            jitter_per_waiter_ns: 0.0,
        }
    }

    #[test]
    fn grants_up_to_core_count_immediately() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut sched = CpuScheduler::new(2, quiet_config());
        assert!(sched
            .submit(1, Nanos::from_micros(10), Nanos::ZERO, &mut rng)
            .is_some());
        assert!(sched
            .submit(2, Nanos::from_micros(10), Nanos::ZERO, &mut rng)
            .is_some());
        assert!(sched
            .submit(3, Nanos::from_micros(10), Nanos::ZERO, &mut rng)
            .is_none());
        assert_eq!(sched.busy_cores(), 2);
        assert_eq!(sched.queue_depth(), 1);
    }

    #[test]
    fn fcfs_order_is_respected() {
        let mut rng = SimRng::seed_from_u64(2);
        let mut sched = CpuScheduler::new(1, quiet_config());
        let g1 = sched
            .submit(1, Nanos::from_micros(5), Nanos::ZERO, &mut rng)
            .unwrap();
        sched.submit(2, Nanos::from_micros(5), Nanos::ZERO, &mut rng);
        sched.submit(3, Nanos::from_micros(5), Nanos::ZERO, &mut rng);
        let g2 = sched.complete(1, g1.finish, &mut rng).unwrap();
        assert_eq!(g2.tid, 2);
        let g3 = sched.complete(2, g2.finish, &mut rng).unwrap();
        assert_eq!(g3.tid, 3);
        assert!(sched.complete(3, g3.finish, &mut rng).is_none());
        assert_eq!(sched.busy_cores(), 0);
    }

    #[test]
    fn context_switch_cost_applies_to_queued_dispatch() {
        let mut rng = SimRng::seed_from_u64(3);
        let config = SchedConfig {
            csw_cost: Nanos::from_micros(1),
            jitter_per_waiter_ns: 0.0,
        };
        let mut sched = CpuScheduler::new(1, config);
        let g1 = sched
            .submit(1, Nanos::from_micros(10), Nanos::ZERO, &mut rng)
            .unwrap();
        assert_eq!(g1.finish, Nanos::from_micros(10)); // no csw when immediate
        sched.submit(2, Nanos::from_micros(10), Nanos::ZERO, &mut rng);
        let g2 = sched.complete(1, g1.finish, &mut rng).unwrap();
        assert_eq!(g2.finish, Nanos::from_micros(21)); // 10 + 10 + 1 csw
    }

    #[test]
    fn wait_time_is_accounted() {
        let mut rng = SimRng::seed_from_u64(4);
        let mut sched = CpuScheduler::new(1, quiet_config());
        let g1 = sched
            .submit(1, Nanos::from_micros(10), Nanos::ZERO, &mut rng)
            .unwrap();
        sched.submit(2, Nanos::from_micros(1), Nanos::from_micros(2), &mut rng);
        sched.complete(1, g1.finish, &mut rng);
        assert_eq!(sched.stats().total_wait, Nanos::from_micros(8));
        assert_eq!(sched.stats().immediate, 1);
        assert_eq!(sched.stats().queued, 1);
        assert_eq!(sched.stats().max_queue_depth, 1);
    }

    #[test]
    fn jitter_grows_with_queue_depth() {
        let mut rng = SimRng::seed_from_u64(5);
        let config = SchedConfig {
            csw_cost: Nanos::ZERO,
            jitter_per_waiter_ns: 10_000.0,
        };
        let mut sched = CpuScheduler::new(1, config);
        let g = sched
            .submit(1, Nanos::from_micros(1), Nanos::ZERO, &mut rng)
            .unwrap();
        // No waiters at submit time: no jitter.
        assert_eq!(g.finish, Nanos::from_micros(1));
        for tid in 2..12 {
            sched.submit(tid, Nanos::from_micros(1), Nanos::ZERO, &mut rng);
        }
        // With 9 threads still queued behind, dispatch demand is inflated.
        let g2 = sched.complete(1, g.finish, &mut rng).unwrap();
        assert!(
            g2.finish > g.finish + Nanos::from_micros(1),
            "expected contention jitter, got finish {}",
            g2.finish
        );
    }

    #[test]
    #[should_panic(expected = "already owns")]
    fn double_submit_panics() {
        let mut rng = SimRng::seed_from_u64(6);
        let mut sched = CpuScheduler::new(1, quiet_config());
        sched.submit(1, Nanos::from_micros(1), Nanos::ZERO, &mut rng);
        sched.submit(1, Nanos::from_micros(1), Nanos::ZERO, &mut rng);
    }

    #[test]
    #[should_panic(expected = "is not running")]
    fn completing_unknown_thread_panics() {
        let mut rng = SimRng::seed_from_u64(7);
        let mut sched = CpuScheduler::new(1, quiet_config());
        sched.complete(9, Nanos::ZERO, &mut rng);
    }
}
