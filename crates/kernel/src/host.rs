//! Host hardware profiles (the simulator's stand-in for Table I).
//!
//! The paper evaluates on two physical servers; here a [`HostSpec`] fixes
//! the core count (which bounds server capacity) and documents the rest of
//! the configuration so the `table1_system_spec` experiment can print the
//! same table shape.

/// Static description of a simulated host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostSpec {
    /// Marketing name of the CPU.
    pub cpu_model: String,
    /// OS / kernel string (informational).
    pub os: String,
    /// Number of sockets.
    pub sockets: u32,
    /// Physical cores per socket.
    pub cores_per_socket: u32,
    /// Hardware threads per core.
    pub threads_per_core: u32,
    /// Minimum core frequency in MHz.
    pub min_freq_mhz: u32,
    /// Maximum core frequency in MHz.
    pub max_freq_mhz: u32,
    /// Memory capacity in GiB.
    pub memory_gib: u32,
}

impl HostSpec {
    /// The AMD EPYC 7302 server of Table I.
    pub fn amd_epyc_7302() -> HostSpec {
        HostSpec {
            cpu_model: "AMD EPYC 7302".to_string(),
            os: "Ubuntu 20.04.1 (5.15.0-52-generic)".to_string(),
            sockets: 2,
            cores_per_socket: 16,
            threads_per_core: 2,
            min_freq_mhz: 1500,
            max_freq_mhz: 3000,
            memory_gib: 512,
        }
    }

    /// The Intel Xeon E5-2620 server of Table I.
    pub fn intel_xeon_e5_2620() -> HostSpec {
        HostSpec {
            cpu_model: "Intel Xeon CPU E5-2620".to_string(),
            os: "Red Hat 4.8.5-36 (4.20.13-1.el7.elrepo)".to_string(),
            sockets: 2,
            cores_per_socket: 8,
            threads_per_core: 1,
            min_freq_mhz: 1200,
            max_freq_mhz: 3000,
            memory_gib: 128,
        }
    }

    /// Total hardware threads (the scheduler's core count).
    pub fn logical_cpus(&self) -> u32 {
        self.sockets * self.cores_per_socket * self.threads_per_core
    }

    /// Total physical cores.
    pub fn physical_cores(&self) -> u32 {
        self.sockets * self.cores_per_socket
    }
}

impl Default for HostSpec {
    /// Defaults to the AMD server, the one whose failure-RPS values the
    /// paper reports.
    fn default() -> Self {
        HostSpec::amd_epyc_7302()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amd_matches_table_one() {
        let amd = HostSpec::amd_epyc_7302();
        assert_eq!(amd.sockets, 2);
        assert_eq!(amd.cores_per_socket, 16);
        assert_eq!(amd.threads_per_core, 2);
        assert_eq!(amd.logical_cpus(), 64);
        assert_eq!(amd.physical_cores(), 32);
    }

    #[test]
    fn intel_matches_table_one() {
        let intel = HostSpec::intel_xeon_e5_2620();
        assert_eq!(intel.logical_cpus(), 16);
        assert_eq!(intel.physical_cores(), 16);
        assert_eq!(intel.memory_gib, 128);
    }

    #[test]
    fn default_is_amd() {
        assert_eq!(HostSpec::default(), HostSpec::amd_epyc_7302());
    }

    #[test]
    fn kernel_for_host_sizes_the_scheduler() {
        use crate::{Kernel, SchedConfig};
        let kernel = Kernel::for_host(HostSpec::intel_xeon_e5_2620(), SchedConfig::default());
        assert_eq!(kernel.sched.cores(), 16);
        assert_eq!(kernel.host.cpu_model, "Intel Xeon CPU E5-2620");
    }
}
