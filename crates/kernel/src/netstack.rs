//! Modeled host network-stack ingress path — NIC ring, softirq/NAPI batch
//! processing, and socket receive-queue residency.
//!
//! The paper's netem robustness result (Fig. 5 / Table II) is a
//! correlation: server-side syscall metrics stay stable while client
//! latency explodes. Sundberg et al. ("Waiting at the front door") show
//! *where* the hidden latency lives by monitoring the host network stack
//! upstream of the syscall boundary. This module models that path so
//! probes can be attached there:
//!
//! ```text
//! NetemLink arrival ──► NIC ring ──► softirq/NAPI batch ──► socket queue
//!                      (enqueue)     (budgeted, jittered)    (recv drains)
//! ```
//!
//! Like the rest of `kscope-kernel` the pipeline is *passive*, clock-
//! agnostic bookkeeping: [`IngressQueue::enqueue`] takes `now` and returns
//! when a softirq should be raised; the driver schedules that event and
//! calls [`IngressQueue::run_softirq`], which processes up to
//! [`IngressConfig::napi_budget`] packets and returns per-packet delivery
//! timestamps plus — when the budget was exhausted with packets still
//! ringed — the time the deferred (ksoftirqd-style) follow-up run should
//! happen. The driver stamps each delivered [`Message`](crate::Message)
//! with its [`StackStamps`](crate::StackStamps) and fires the
//! `net_rx_softirq` tracepoint; the later `recvfrom`/`epoll_wait` drain
//! fires `sock_queue_drain`.

use std::collections::VecDeque;

use kscope_simcore::{Dist, Nanos, SimRng};

use crate::socket::ChannelId;

/// Configuration of the per-host ingress pipeline.
#[derive(Debug, Clone)]
pub struct IngressConfig {
    /// NIC receive-ring slots; arrivals beyond this are dropped at the
    /// ring (counted in [`IngressStats::ring_drops`]).
    pub ring_capacity: usize,
    /// Maximum packets one softirq invocation processes before deferring
    /// the remainder (the NAPI budget; Linux defaults to 64).
    pub napi_budget: usize,
    /// Latency from hardware interrupt to softirq handler entry.
    pub softirq_latency: Nanos,
    /// Protocol-processing cost per packet inside the handler.
    pub per_packet: Nanos,
    /// Per-invocation scheduling jitter added to the handler entry
    /// (sampled in nanoseconds from a `kscope-simcore` distribution).
    pub jitter: Option<Dist>,
    /// Gap before the deferred follow-up run when the budget was
    /// exhausted (the ksoftirqd requeue penalty).
    pub defer_delay: Nanos,
}

impl Default for IngressConfig {
    fn default() -> IngressConfig {
        IngressConfig {
            ring_capacity: 1024,
            napi_budget: 64,
            softirq_latency: Nanos::from_micros(2),
            per_packet: Nanos::from_nanos(1_500),
            jitter: Some(Dist::exponential(500.0)),
            defer_delay: Nanos::from_micros(5),
        }
    }
}

/// One packet sitting in (or leaving) the ingress pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RxPacket {
    /// Destination connection (socket receive queue).
    pub conn: ChannelId,
    /// Request token the packet carries.
    pub request: u64,
    /// Payload bytes.
    pub bytes: u32,
}

/// One packet the softirq handler finished processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoftirqDelivery {
    /// The packet.
    pub packet: RxPacket,
    /// When it arrived at the NIC ring.
    pub nic_at: Nanos,
    /// When softirq processing completed — the instant it lands on the
    /// socket queue.
    pub delivered_at: Nanos,
}

/// Aggregate ingress-pipeline statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngressStats {
    /// Packets accepted onto the NIC ring.
    pub ring_enqueued: u64,
    /// Packets dropped because the ring was full.
    pub ring_drops: u64,
    /// Packets delivered to socket queues.
    pub delivered: u64,
    /// Softirq handler invocations.
    pub softirq_runs: u64,
    /// Invocations that exhausted the NAPI budget and deferred work.
    pub deferrals: u64,
    /// High-water mark of ring occupancy.
    pub ring_high_water: u64,
}

/// Result of one softirq invocation.
#[derive(Debug, Clone)]
pub struct SoftirqRun {
    /// Packets processed this invocation, in ring (arrival) order with
    /// monotonically non-decreasing `delivered_at`.
    pub delivered: Vec<SoftirqDelivery>,
    /// When the deferred follow-up run should execute, if the budget was
    /// exhausted with packets still on the ring.
    pub next: Option<Nanos>,
}

/// The per-host ingress pipeline: NIC ring plus softirq scheduling state.
///
/// # Examples
///
/// ```
/// use kscope_kernel::{IngressConfig, IngressQueue, RxPacket, ChannelId};
/// use kscope_simcore::{Nanos, SimRng};
///
/// let mut ingress = IngressQueue::new(IngressConfig::default());
/// let mut rng = SimRng::seed_from_u64(9);
/// let pkt = RxPacket { conn: ChannelId(0), request: 1, bytes: 64 };
/// let raise = ingress.enqueue(pkt, Nanos::from_micros(10)).expect("softirq raised");
/// assert!(raise > Nanos::from_micros(10));
/// let run = ingress.run_softirq(raise, &mut rng);
/// assert_eq!(run.delivered.len(), 1);
/// assert_eq!(run.delivered[0].nic_at, Nanos::from_micros(10));
/// assert!(run.delivered[0].delivered_at >= raise);
/// assert!(run.next.is_none());
/// ```
#[derive(Debug, Clone)]
pub struct IngressQueue {
    config: IngressConfig,
    ring: VecDeque<(RxPacket, Nanos)>,
    softirq_pending: bool,
    stats: IngressStats,
}

impl Default for IngressQueue {
    fn default() -> IngressQueue {
        IngressQueue::new(IngressConfig::default())
    }
}

impl IngressQueue {
    /// Creates an empty pipeline.
    pub fn new(config: IngressConfig) -> IngressQueue {
        IngressQueue {
            config,
            ring: VecDeque::new(),
            softirq_pending: false,
            stats: IngressStats::default(),
        }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &IngressConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &IngressStats {
        &self.stats
    }

    /// Packets currently on the NIC ring.
    pub fn ring_depth(&self) -> usize {
        self.ring.len()
    }

    /// A packet arrives at the NIC at `now`.
    ///
    /// Returns `Some(raise_at)` when this arrival raised a new softirq
    /// (none was pending) and the driver should schedule a
    /// [`IngressQueue::run_softirq`] call at that time; `None` when a
    /// softirq is already pending (the packet just joins the ring) or the
    /// ring overflowed and the packet was dropped.
    pub fn enqueue(&mut self, packet: RxPacket, now: Nanos) -> Option<Nanos> {
        if self.ring.len() >= self.config.ring_capacity {
            self.stats.ring_drops += 1;
            return None;
        }
        self.ring.push_back((packet, now));
        self.stats.ring_enqueued += 1;
        self.stats.ring_high_water = self.stats.ring_high_water.max(self.ring.len() as u64);
        if self.softirq_pending {
            return None;
        }
        self.softirq_pending = true;
        Some(now + self.config.softirq_latency)
    }

    /// Runs one softirq invocation at `now`: processes up to the NAPI
    /// budget of ringed packets, charging per-packet protocol cost plus a
    /// per-invocation jitter sample from `rng`.
    ///
    /// When the budget is exhausted with packets still ringed, the
    /// invocation defers: `next` carries the follow-up run time and the
    /// softirq stays pending. Otherwise the pending flag clears and the
    /// next arrival raises a fresh softirq.
    pub fn run_softirq(&mut self, now: Nanos, rng: &mut SimRng) -> SoftirqRun {
        self.stats.softirq_runs += 1;
        let jitter = self
            .config
            .jitter
            .as_ref()
            .map(|d| d.sample_nanos(rng))
            .unwrap_or(Nanos::ZERO);
        let mut clock = now + jitter;
        let budget = self.config.napi_budget.max(1);
        let mut delivered = Vec::with_capacity(self.ring.len().min(budget));
        while delivered.len() < budget {
            let Some((packet, nic_at)) = self.ring.pop_front() else {
                break;
            };
            clock += self.config.per_packet;
            delivered.push(SoftirqDelivery {
                packet,
                nic_at,
                delivered_at: clock,
            });
        }
        self.stats.delivered += delivered.len() as u64;
        let next = if self.ring.is_empty() {
            self.softirq_pending = false;
            None
        } else {
            // Budget exhausted: hand the remainder to ksoftirqd.
            self.stats.deferrals += 1;
            Some(clock + self.config.defer_delay)
        };
        SoftirqRun { delivered, next }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(request: u64) -> RxPacket {
        RxPacket {
            conn: ChannelId(0),
            request,
            bytes: 128,
        }
    }

    fn quiet_config() -> IngressConfig {
        IngressConfig {
            jitter: None,
            ..IngressConfig::default()
        }
    }

    #[test]
    fn single_packet_flows_through() {
        let mut q = IngressQueue::new(quiet_config());
        let mut rng = SimRng::seed_from_u64(1);
        let t0 = Nanos::from_micros(100);
        let raise = q.enqueue(pkt(7), t0).expect("first arrival raises");
        assert_eq!(raise, t0 + q.config().softirq_latency);
        let run = q.run_softirq(raise, &mut rng);
        assert_eq!(run.delivered.len(), 1);
        let d = run.delivered[0];
        assert_eq!(d.packet.request, 7);
        assert_eq!(d.nic_at, t0);
        assert_eq!(d.delivered_at, raise + q.config().per_packet);
        assert!(run.next.is_none());
        assert_eq!(q.stats().softirq_runs, 1);
        assert_eq!(q.stats().delivered, 1);
        assert_eq!(q.ring_depth(), 0);
    }

    #[test]
    fn second_arrival_joins_pending_softirq() {
        let mut q = IngressQueue::new(quiet_config());
        let mut rng = SimRng::seed_from_u64(2);
        let raise = q.enqueue(pkt(1), Nanos::from_micros(10)).expect("raised");
        assert!(q.enqueue(pkt(2), Nanos::from_micros(11)).is_none());
        let run = q.run_softirq(raise, &mut rng);
        assert_eq!(run.delivered.len(), 2);
        // FIFO in arrival order, monotone completion times.
        assert_eq!(run.delivered[0].packet.request, 1);
        assert_eq!(run.delivered[1].packet.request, 2);
        assert!(run.delivered[0].delivered_at < run.delivered[1].delivered_at);
        // Pipeline idle again: a new arrival raises a fresh softirq.
        assert!(q.enqueue(pkt(3), Nanos::from_micros(50)).is_some());
    }

    #[test]
    fn budget_exhaustion_defers_to_ksoftirqd() {
        let mut cfg = quiet_config();
        cfg.napi_budget = 4;
        let mut q = IngressQueue::new(cfg);
        let mut rng = SimRng::seed_from_u64(3);
        let t0 = Nanos::from_micros(10);
        let raise = q.enqueue(pkt(0), t0).expect("raised");
        for i in 1..10u64 {
            assert!(q.enqueue(pkt(i), t0 + Nanos::from_nanos(i)).is_none());
        }
        let first = q.run_softirq(raise, &mut rng);
        assert_eq!(first.delivered.len(), 4);
        let next = first.next.expect("budget exhausted defers");
        assert_eq!(
            next,
            first.delivered[3].delivered_at + q.config().defer_delay
        );
        assert_eq!(q.ring_depth(), 6);
        // Arrivals while deferred still must not raise a duplicate softirq.
        assert!(q.enqueue(pkt(100), next - Nanos::from_nanos(1)).is_none());
        let second = q.run_softirq(next, &mut rng);
        assert_eq!(second.delivered.len(), 4);
        let third_at = second.next.expect("still over budget");
        let third = q.run_softirq(third_at, &mut rng);
        assert_eq!(third.delivered.len(), 3);
        assert!(third.next.is_none());
        assert_eq!(q.stats().deferrals, 2);
        assert_eq!(q.stats().softirq_runs, 3);
        assert_eq!(q.stats().delivered, 11);
    }

    #[test]
    fn ring_overflow_drops() {
        let mut cfg = quiet_config();
        cfg.ring_capacity = 2;
        let mut q = IngressQueue::new(cfg);
        let t = Nanos::ZERO;
        assert!(q.enqueue(pkt(1), t).is_some());
        assert!(q.enqueue(pkt(2), t).is_none());
        assert!(q.enqueue(pkt(3), t).is_none());
        assert_eq!(q.stats().ring_drops, 1);
        assert_eq!(q.stats().ring_enqueued, 2);
        assert_eq!(q.ring_depth(), 2);
    }

    #[test]
    fn jitter_shifts_the_whole_batch_deterministically() {
        let mut cfg = quiet_config();
        cfg.jitter = Some(Dist::constant(250.0));
        let mut q = IngressQueue::new(cfg);
        let mut rng = SimRng::seed_from_u64(4);
        let raise = q.enqueue(pkt(1), Nanos::ZERO).expect("raised");
        let run = q.run_softirq(raise, &mut rng);
        assert_eq!(
            run.delivered[0].delivered_at,
            raise + Nanos::from_nanos(250) + q.config().per_packet
        );
    }

    #[test]
    fn empty_run_is_harmless() {
        let mut q = IngressQueue::new(quiet_config());
        let mut rng = SimRng::seed_from_u64(5);
        let run = q.run_softirq(Nanos::from_micros(1), &mut rng);
        assert!(run.delivered.is_empty());
        assert!(run.next.is_none());
    }

    #[test]
    fn high_water_tracks_peak_ring_depth() {
        let mut q = IngressQueue::new(quiet_config());
        let mut rng = SimRng::seed_from_u64(6);
        let raise = q.enqueue(pkt(0), Nanos::ZERO).expect("raised");
        for i in 1..5u64 {
            q.enqueue(pkt(i), Nanos::from_nanos(i));
        }
        assert_eq!(q.stats().ring_high_water, 5);
        q.run_softirq(raise, &mut rng);
        assert_eq!(q.stats().ring_high_water, 5);
    }
}
