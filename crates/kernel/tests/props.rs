//! Property-based tests for the kernel substrate.

use kscope_kernel::{ChannelTable, CpuScheduler, EpollTable, Message, SchedConfig};
use kscope_simcore::{Nanos, SimRng};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Scheduler invariants under random submit/complete interleavings:
    /// never more running threads than cores, FIFO dispatch order, and
    /// every submitted slice eventually granted.
    #[test]
    fn scheduler_never_oversubscribes(
        seed in any::<u64>(),
        cores in 1u32..8,
        demands in prop::collection::vec(1u64..100_000, 1..64),
    ) {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut sched = CpuScheduler::new(cores, SchedConfig::default());
        let mut running: Vec<(u32, Nanos)> = Vec::new(); // (tid, finish)
        let mut granted = 0usize;
        let mut queued_order: Vec<u32> = Vec::new();
        let mut dispatch_order: Vec<u32> = Vec::new();
        let mut now = Nanos::ZERO;

        for (i, &demand) in demands.iter().enumerate() {
            let tid = i as u32;
            match sched.submit(tid, Nanos::from_nanos(demand), now, &mut rng) {
                Some(grant) => {
                    granted += 1;
                    running.push((grant.tid, grant.finish));
                }
                None => queued_order.push(tid),
            }
            prop_assert!(sched.busy_cores() <= cores as usize);
            // Occasionally complete the earliest-running slice.
            if running.len() == cores as usize {
                running.sort_by_key(|&(_, f)| f);
                let (tid_done, finish) = running.remove(0);
                now = now.max(finish);
                if let Some(next) = sched.complete(tid_done, now, &mut rng) {
                    granted += 1;
                    dispatch_order.push(next.tid);
                    running.push((next.tid, next.finish));
                }
            }
        }
        // Drain.
        while !running.is_empty() {
            running.sort_by_key(|&(_, f)| f);
            let (tid_done, finish) = running.remove(0);
            now = now.max(finish);
            if let Some(next) = sched.complete(tid_done, now, &mut rng) {
                granted += 1;
                dispatch_order.push(next.tid);
                running.push((next.tid, next.finish));
            }
            prop_assert!(sched.busy_cores() <= cores as usize);
        }
        prop_assert_eq!(granted, demands.len(), "every slice granted exactly once");
        prop_assert_eq!(sched.queue_depth(), 0);
        // FIFO: queued threads dispatch in submission order.
        prop_assert_eq!(dispatch_order, queued_order);
    }

    /// Channel conservation: messages out = messages in, in FIFO order.
    #[test]
    fn channels_conserve_messages(payloads in prop::collection::vec(1u32..2_000, 0..100)) {
        let mut channels = ChannelTable::new();
        let c = channels.create();
        for (i, &bytes) in payloads.iter().enumerate() {
            channels.deliver(c, Message {
                request: i as u64,
                bytes,
                enqueued_at: Nanos::from_nanos(i as u64),
            });
        }
        for (i, &bytes) in payloads.iter().enumerate() {
            let msg = channels.recv(c).unwrap();
            prop_assert_eq!(msg.request, i as u64);
            prop_assert_eq!(msg.bytes, bytes);
        }
        prop_assert!(channels.recv(c).is_none());
        prop_assert_eq!(channels.total_pending(), 0);
    }

    /// Epoll wake-one: each delivery wakes at most one waiter per watching
    /// instance, and waiters wake in FIFO order.
    #[test]
    fn epoll_wakes_at_most_one_waiter(
        waiters in prop::collection::vec(1u32..1000, 0..16),
        deliveries in 0usize..20,
    ) {
        // Deduplicate tids (block() forbids duplicates by contract).
        let mut tids = waiters.clone();
        tids.sort_unstable();
        tids.dedup();

        let mut channels = ChannelTable::new();
        let mut epolls = EpollTable::new();
        let conn = channels.create();
        let ep = epolls.create();
        epolls.watch(ep, conn);
        for &tid in &tids {
            epolls.block(ep, tid);
        }
        let mut woken = Vec::new();
        for i in 0..deliveries {
            channels.deliver(conn, Message {
                request: i as u64,
                bytes: 1,
                enqueued_at: Nanos::ZERO,
            });
            let wakeups = epolls.on_readable(conn);
            prop_assert!(wakeups.len() <= 1);
            woken.extend(wakeups.into_iter().map(|(_, tid)| tid));
        }
        let expected: Vec<u32> = tids.iter().copied().take(deliveries).collect();
        prop_assert_eq!(woken, expected);
    }
}
