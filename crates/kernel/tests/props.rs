//! Property-based tests for the kernel substrate.

use kscope_kernel::{ChannelTable, CpuScheduler, EpollTable, Message, SchedConfig};
use kscope_simcore::{Nanos, SimRng};
use kscope_testkit::{gen, Config};

/// Scheduler invariants under random submit/complete interleavings:
/// never more running threads than cores, FIFO dispatch order, and
/// every submitted slice eventually granted.
#[test]
fn scheduler_never_oversubscribes() {
    kscope_testkit::check!(
        Config::cases(128),
        |rng: &mut SimRng| {
            (
                gen::u64_any(rng),
                gen::u64_in(rng, 1, 7) as u32,
                gen::vec_of(rng, 1, 63, |r| gen::u64_in(r, 1, 99_999)),
            )
        },
        |case: &(u64, u32, Vec<u64>)| {
            let (seed, cores, ref demands) = *case;
            let mut rng = SimRng::seed_from_u64(seed);
            let mut sched = CpuScheduler::new(cores, SchedConfig::default());
            let mut running: Vec<(u32, Nanos)> = Vec::new(); // (tid, finish)
            let mut granted = 0usize;
            let mut queued_order: Vec<u32> = Vec::new();
            let mut dispatch_order: Vec<u32> = Vec::new();
            let mut now = Nanos::ZERO;

            for (i, &demand) in demands.iter().enumerate() {
                let tid = i as u32;
                match sched.submit(tid, Nanos::from_nanos(demand), now, &mut rng) {
                    Some(grant) => {
                        granted += 1;
                        running.push((grant.tid, grant.finish));
                    }
                    None => queued_order.push(tid),
                }
                assert!(sched.busy_cores() <= cores as usize);
                // Occasionally complete the earliest-running slice.
                if running.len() == cores as usize {
                    running.sort_by_key(|&(_, f)| f);
                    let (tid_done, finish) = running.remove(0);
                    now = now.max(finish);
                    if let Some(next) = sched.complete(tid_done, now, &mut rng) {
                        granted += 1;
                        dispatch_order.push(next.tid);
                        running.push((next.tid, next.finish));
                    }
                }
            }
            // Drain.
            while !running.is_empty() {
                running.sort_by_key(|&(_, f)| f);
                let (tid_done, finish) = running.remove(0);
                now = now.max(finish);
                if let Some(next) = sched.complete(tid_done, now, &mut rng) {
                    granted += 1;
                    dispatch_order.push(next.tid);
                    running.push((next.tid, next.finish));
                }
                assert!(sched.busy_cores() <= cores as usize);
            }
            assert_eq!(granted, demands.len(), "every slice granted exactly once");
            assert_eq!(sched.queue_depth(), 0);
            // FIFO: queued threads dispatch in submission order.
            assert_eq!(dispatch_order, queued_order);
        }
    );
}

/// Channel conservation: messages out = messages in, in FIFO order.
#[test]
fn channels_conserve_messages() {
    kscope_testkit::check!(
        Config::cases(128),
        |rng: &mut SimRng| gen::vec_of(rng, 0, 99, |r| gen::u64_in(r, 1, 1_999) as u32),
        |payloads: &Vec<u32>| {
            let mut channels = ChannelTable::new();
            let c = channels.create();
            for (i, &bytes) in payloads.iter().enumerate() {
                channels.deliver(
                    c,
                    Message::internal(i as u64, bytes, Nanos::from_nanos(i as u64)),
                );
            }
            for (i, &bytes) in payloads.iter().enumerate() {
                let msg = channels.recv(c).unwrap();
                assert_eq!(msg.request, i as u64);
                assert_eq!(msg.bytes, bytes);
            }
            assert!(channels.recv(c).is_none());
            assert_eq!(channels.total_pending(), 0);
        }
    );
}

/// Epoll wake-one: each delivery wakes at most one waiter per watching
/// instance, and waiters wake in FIFO order.
#[test]
fn epoll_wakes_at_most_one_waiter() {
    kscope_testkit::check!(
        Config::cases(128),
        |rng: &mut SimRng| {
            (
                gen::vec_of(rng, 0, 15, |r| gen::u64_in(r, 1, 999) as u32),
                gen::usize_in(rng, 0, 19),
            )
        },
        |case: &(Vec<u32>, usize)| {
            let (ref waiters, deliveries) = *case;
            // Deduplicate tids (block() forbids duplicates by contract).
            let mut tids = waiters.clone();
            tids.sort_unstable();
            tids.dedup();

            let mut channels = ChannelTable::new();
            let mut epolls = EpollTable::new();
            let conn = channels.create();
            let ep = epolls.create();
            epolls.watch(ep, conn);
            for &tid in &tids {
                epolls.block(ep, tid);
            }
            let mut woken = Vec::new();
            for i in 0..deliveries {
                channels.deliver(
                    conn,
                    Message::internal(i as u64, 1, Nanos::ZERO),
                );
                let wakeups = epolls.on_readable(conn);
                assert!(wakeups.len() <= 1);
                woken.extend(wakeups.into_iter().map(|(_, tid)| tid));
            }
            let expected: Vec<u32> = tids.iter().copied().take(deliveries).collect();
            assert_eq!(woken, expected);
        }
    );
}
