//! Top-K sketch properties.
//!
//! The collection tree leans on four facts about
//! `kscope_core::TopKSketch`, checked here over seeded random streams:
//!
//! 1. **Merge ≈ concat**: the Count-Min matrix of K merged shard
//!    sketches is bit-identical to the matrix over the concatenated
//!    stream, and every estimate obeys the Count-Min bound — never
//!    below the true count, above it by at most the matrix's total
//!    weight (the collision-mass ceiling).
//! 2. **Fan-in invariance**: merging K ∈ {1, 4, 16} shards gives the
//!    same matrix the single-sketch stream gives.
//! 3. **Order invariance**: merging the shard sketches in any order
//!    yields the same sketch, bit for bit.
//! 4. **Heavy hitters surface**: on adversarially skewed streams
//!    (geometric weights, heavy keys interleaved last) the sketch's
//!    top-K names exactly the true top-K.

use kscope_core::TopKSketch;
use kscope_simcore::SimRng;
use kscope_testkit::{gen, Config};

/// Folds a stream of `u64` keys into a fresh sketch.
fn sketch_of(stream: &[u64], capacity: u32) -> TopKSketch {
    let mut s = TopKSketch::new(8, capacity);
    for &key in stream {
        s.record(&key.to_le_bytes(), 1);
    }
    s
}

/// True per-key counts of a stream.
fn exact_counts(stream: &[u64]) -> std::collections::BTreeMap<u64, u64> {
    let mut counts = std::collections::BTreeMap::new();
    for &key in stream {
        *counts.entry(key).or_insert(0u64) += 1;
    }
    counts
}

/// Merging K contiguous shards equals sketching the concatenated
/// stream, matrix-wise bit for bit, for K ∈ {1, 4, 16}; and every
/// estimate of the merged sketch sits inside the Count-Min bound
/// `true ≤ est ≤ true + total_weight` with respect to the true counts.
#[test]
fn merged_shards_match_concatenated_stream_within_cm_bound() {
    kscope_testkit::check!(
        Config::cases(510),
        |rng: &mut SimRng| {
            let k = gen::pick(rng, &[1usize, 4, 16]);
            let capacity = gen::pick(rng, &[4u32, 16, 64]);
            let n = gen::usize_in(rng, 0, 600);
            // A small key universe forces collisions in the narrow
            // matrices, exercising the overestimate half of the bound.
            let universe = gen::u64_in(rng, 1, 300);
            let stream: Vec<u64> = (0..n).map(|_| gen::u64_in(rng, 0, universe)).collect();
            (k, capacity, stream)
        },
        |&(k, capacity, ref stream): &(usize, u32, Vec<u64>)| {
            let whole = sketch_of(stream, capacity);
            let chunk = stream.len().div_ceil(k).max(1);
            let shards: Vec<TopKSketch> = stream
                .chunks(chunk)
                .map(|c| sketch_of(c, capacity))
                .collect();
            match TopKSketch::merge_all(&shards) {
                Some(merged) => {
                    assert_eq!(
                        merged.state().cells(),
                        whole.state().cells(),
                        "merged matrix must equal the concat-stream matrix"
                    );
                    assert_eq!(merged.total_weight(), stream.len() as u64);
                    let total = merged.total_weight();
                    for (&key, &true_count) in &exact_counts(stream) {
                        let est = merged.estimate(&key.to_le_bytes());
                        assert!(est >= true_count, "Count-Min never undercounts");
                        assert!(
                            est <= true_count + total,
                            "overestimate is bounded by the collision mass"
                        );
                    }
                }
                None => assert!(stream.is_empty(), "merge of non-empty shards exists"),
            }
        }
    );
}

/// Merging the shard sketches in any order yields the same sketch, bit
/// for bit — matrix *and* candidate table.
#[test]
fn merge_is_order_invariant() {
    kscope_testkit::check!(
        Config::cases(256),
        |rng: &mut SimRng| {
            let n = gen::usize_in(rng, 1, 300);
            let universe = gen::u64_in(rng, 1, 64);
            let stream: Vec<u64> = (0..n).map(|_| gen::u64_in(rng, 0, universe)).collect();
            // A shuffle as a rank vector, so the generator stays a pure
            // data producer.
            let ranks: Vec<u64> = (0..8).map(|_| gen::u64_any(rng)).collect();
            (stream, ranks)
        },
        |(stream, ranks): &(Vec<u64>, Vec<u64>)| {
            let chunk = stream.len().div_ceil(ranks.len()).max(1);
            let shards: Vec<TopKSketch> =
                stream.chunks(chunk).map(|c| sketch_of(c, 8)).collect();
            let forward = TopKSketch::merge_all(&shards).unwrap_or_else(|| {
                panic!("non-empty shard list must merge")
            });
            let mut order: Vec<usize> = (0..shards.len()).collect();
            order.sort_by_key(|&i| ranks.get(i).copied().unwrap_or(0));
            let permuted = TopKSketch::merge_all(order.iter().map(|&i| &shards[i]))
                .unwrap_or_else(|| panic!("non-empty shard list must merge"));
            assert_eq!(forward, permuted, "merge must be order-invariant");
        }
    );
}

/// On adversarially skewed streams the sketch's top-K is the exact true
/// top-K: geometric weights keep the ranks separated, while the heavy
/// keys are pushed to the *end* of the stream (so candidate-table slots
/// are already occupied by light keys when they arrive) and the key ids
/// are scattered across the u64 space (so hash structure, not key
/// locality, decides the matrix columns and table slots).
///
/// One caveat is inherent to the hash-probed candidate table: a heavy
/// key whose probe slots are all claimed by even heavier keys never
/// enters the table (the documented probabilistic failure mode of this
/// table design — eviction only beats a *lighter* incumbent). Those
/// cases are detectable — the key is absent from `candidate_keys()` —
/// so the property is: exact top-K whenever every true heavy key
/// reached the table, Count-Min estimate bounds regardless, and the
/// exact branch must cover ≥90% of cases (slot starvation is rare, not
/// the norm).
#[test]
fn adversarially_skewed_streams_yield_exact_top_k() {
    let exact_cases = std::cell::Cell::new(0usize);
    let total_cases = std::cell::Cell::new(0usize);
    kscope_testkit::check!(
        Config::cases(128),
        |rng: &mut SimRng| {
            let k = gen::pick(rng, &[2usize, 4]);
            let light = gen::usize_in(rng, 4, 12);
            // Scattered key identities, deduplicated (a collision would
            // merge two planned ranks into one key).
            let mut keys: Vec<u64> = Vec::new();
            while keys.len() < k + light {
                let key = gen::u64_any(rng);
                if !keys.contains(&key) {
                    keys.push(key);
                }
            }
            (k, keys)
        },
        |&(k, ref keys): &(usize, Vec<u64>)| {
            if keys.len() <= k {
                // A shrunk case can drop keys below the planned count.
                return;
            }
            // Geometric weights: rank i gets ~3^(k-i) observations, so
            // each rank is ≥3x the next — separations a Count-Min
            // matrix of this size cannot blur.
            let mut stream: Vec<u64> = Vec::new();
            for (i, &key) in keys[k..].iter().enumerate() {
                for _ in 0..(1 + i % 3) {
                    stream.push(key);
                }
            }
            // Heavy keys arrive last, forcing candidate-table evictions.
            for (rank, &key) in keys[..k].iter().enumerate() {
                let weight = 3u64.pow((k - rank) as u32) * 9;
                for _ in 0..weight {
                    stream.push(key);
                }
            }
            let sketch = sketch_of(&stream, 32);
            let exact = exact_counts(&stream);
            let mut truth: Vec<(u64, u64)> =
                exact.iter().map(|(&key, &count)| (key, count)).collect();
            truth.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            let expect: Vec<u64> = truth[..k].iter().map(|&(key, _)| key).collect();
            total_cases.set(total_cases.get() + 1);
            let tabled: std::collections::BTreeSet<u64> = sketch
                .state()
                .candidate_keys()
                .map(|key| {
                    let mut bytes = [0u8; 8];
                    bytes.copy_from_slice(key);
                    u64::from_le_bytes(bytes)
                })
                .collect();
            if expect.iter().all(|key| tabled.contains(key)) {
                let got: Vec<u64> =
                    sketch.top_k_u64(k).into_iter().map(|(key, _)| key).collect();
                assert_eq!(got, expect, "sketch top-{k} must name the true top-{k}");
                exact_cases.set(exact_cases.get() + 1);
            }
            // Regardless of table luck, estimates obey the CM bound.
            for &(key, count) in &truth {
                let est = sketch.estimate(&key.to_le_bytes());
                assert!(est >= count, "Count-Min never undercounts");
            }
        }
    );
    assert!(
        exact_cases.get() * 10 >= total_cases.get() * 9,
        "slot starvation must be rare: {} exact of {} cases",
        exact_cases.get(),
        total_cases.get()
    );
}
