//! Precision regression corpus: realistic programs the old type-only
//! verifier rejected and the value-tracking verifier accepts.
//!
//! Each fixture in `fixtures/precision/` is a committed text-format
//! program whose header comment documents the old rejection. The tests
//! here assert three things per fixture:
//!
//! 1. the type-only rules (`VerifierConfig { value_tracking: false }`)
//!    still reject it with `PointerArith` — the corpus stays a genuine
//!    precision delta, not programs that were always legal;
//! 2. the value-tracking verifier accepts it with a clean report
//!    (no errors, no warnings);
//! 3. the accepted program executes without faulting on randomized
//!    context bytes — acceptance is backed by the interpreter, not just
//!    claimed by the analysis.
//!
//! The real histogram probe from `kscope-core` rides along as the
//! corpus's capstone: built, old-rejected, new-accepted, end to end.

use kscope_core::BytecodeBackend;
use kscope_ebpf::interp::{ExecEnv, Vm};
use kscope_ebpf::maps::{MapDef, MapRegistry};
use kscope_ebpf::text::parse_program;
use kscope_ebpf::verifier::{Verifier, VerifierConfig, VerifyError};
use kscope_simcore::SimRng;
use kscope_syscalls::SyscallProfile;

/// Every committed precision fixture, by name.
const FIXTURES: &[(&str, &str)] = &[
    (
        "and_mask_stack",
        include_str!("fixtures/precision/and_mask_stack.bpf"),
    ),
    (
        "log2_bucket_map",
        include_str!("fixtures/precision/log2_bucket_map.bpf"),
    ),
    (
        "range_guard_byte",
        include_str!("fixtures/precision/range_guard_byte.bpf"),
    ),
    (
        "jset_aligned",
        include_str!("fixtures/precision/jset_aligned.bpf"),
    ),
    (
        "signed_window",
        include_str!("fixtures/precision/signed_window.bpf"),
    ),
    (
        "div_range_proof",
        include_str!("fixtures/precision/div_range_proof.bpf"),
    ),
];

fn type_only() -> Verifier {
    Verifier::new(VerifierConfig {
        value_tracking: false,
        ..VerifierConfig::default()
    })
}

/// Map registry every fixture verifies against: fd 0 is a 512-byte
/// array value (the histogram shape `log2_bucket_map` indexes into).
fn corpus_maps() -> MapRegistry {
    let mut maps = MapRegistry::new();
    maps.create("vals", MapDef::array(512, 1));
    maps
}

#[test]
fn corpus_is_old_rejected_and_new_accepted() {
    assert!(FIXTURES.len() >= 5, "corpus must stay non-trivial");
    for (name, text) in FIXTURES {
        let prog = parse_program(name, text)
            .unwrap_or_else(|e| panic!("fixture `{name}` failed to parse: {e}"));
        let maps = corpus_maps();

        let old = type_only().verify(&prog, &maps);
        assert!(
            matches!(old, Err(VerifyError::PointerArith { .. })),
            "fixture `{name}` should be type-only-rejected as PointerArith, got {old:?}"
        );

        let report = Verifier::default().verify_report(&prog, &maps);
        assert!(
            report.is_ok(),
            "fixture `{name}` rejected by the value-tracking verifier:\n{report}"
        );
        assert!(
            report.warnings.is_empty(),
            "fixture `{name}` should verify without warnings:\n{report}"
        );
    }
}

#[test]
fn corpus_programs_run_clean_on_random_contexts() {
    let mut rng = SimRng::seed_from_u64(0xC0_2B_05);
    for (name, text) in FIXTURES {
        let prog = parse_program(name, text).expect("fixture parses");
        for _ in 0..64 {
            let mut maps = corpus_maps();
            let mut ctx = [0u8; 64];
            for b in ctx.iter_mut() {
                *b = rng.next_u64() as u8;
            }
            let result = Vm::new().execute(&prog, &ctx, &mut maps, &mut ExecEnv::default());
            assert!(
                result.is_ok(),
                "fixture `{name}` faulted on ctx {ctx:02x?}: {result:?}"
            );
        }
    }
}

/// The real histogram probe is the corpus capstone: the whole point of
/// value tracking is that this program now loads.
#[test]
fn histogram_probe_is_a_precision_win() {
    let backend = BytecodeBackend::new_with_histogram(1200, SyscallProfile::data_caching(), 0)
        .expect("histogram probe builds under the value-tracking verifier");
    let (_, exit) = backend.programs();
    let old = type_only().verify(exit, backend.map_registry());
    assert!(
        matches!(old, Err(VerifyError::PointerArith { .. })),
        "the histogram exit program should be beyond the type-only rules, got {old:?}"
    );
}

/// Golden acceptance corpus: every probe program `kscope-core` emits —
/// all syscall profiles, multi-tgid, with and without the histogram —
/// verifies under the *default* `VerifierConfig` with a clean report.
#[test]
fn every_core_probe_program_verifies_cleanly() {
    let profiles = [
        SyscallProfile::tailbench(),
        SyscallProfile::data_caching(),
        SyscallProfile::web_search(),
        SyscallProfile::triton_grpc(),
        SyscallProfile::triton_http(),
    ];
    for profile in profiles {
        for histogram in [false, true] {
            let backend = if histogram {
                BytecodeBackend::new_with_histogram(42, profile.clone(), 10)
            } else {
                BytecodeBackend::new_multi(vec![42, 43, 44], profile.clone(), 10)
            }
            .expect("probe builds");
            let verifier = Verifier::new(VerifierConfig {
                ctx_size: kscope_core::CTX_SIZE,
                ..VerifierConfig::default()
            });
            for (which, prog) in [("enter", backend.programs().0), ("exit", backend.programs().1)]
            {
                let report = verifier.verify_report(prog, backend.map_registry());
                assert!(
                    report.is_ok(),
                    "{which} program (histogram={histogram}) rejected:\n{report}\n{}",
                    prog.disassemble()
                );
                assert!(
                    report.warnings.is_empty(),
                    "{which} program (histogram={histogram}) has warnings:\n{report}\n{}",
                    prog.disassemble()
                );
            }
        }
    }
}
