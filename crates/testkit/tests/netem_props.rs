//! Gilbert–Elliott loss-model properties.
//!
//! The netstack figure and the Table II reproduction both lean on the
//! link's burst-loss model behaving like the two-state Markov chain it
//! claims to be. Checked here over seeded random parameterizations:
//!
//! 1. **Steady state**: `LossModel::steady_state_loss()` matches the
//!    long-run empirical loss fraction of a driven link, on both the
//!    datagram path (one transmission per send) and the reliable path
//!    (retransmissions until delivery).
//! 2. **Burst geometry**: with the classic Gilbert parameterization
//!    (`loss_good = 0`, `loss_bad = 1`) the lengths of consecutive-loss
//!    runs are geometric on `{1, 2, …}` with mean `1 / p_bad_to_good`,
//!    and the distribution is memoryless (the survival ratio past each
//!    prefix stays `1 - p_bad_to_good`).

use kscope_netem::{LossModel, NetemConfig, NetemLink};
use kscope_simcore::SimRng;
use kscope_testkit::{gen, Config};

fn ge_config(loss: LossModel) -> NetemConfig {
    NetemConfig {
        loss,
        ..NetemConfig::ideal()
    }
}

/// Drives `n` datagrams and returns the per-transmission loss sequence
/// (`true` = dropped).
fn loss_sequence(model: LossModel, seed: u64, n: usize) -> Vec<bool> {
    let mut link = NetemLink::new(ge_config(model));
    let mut rng = SimRng::seed_from_u64(seed);
    (0..n).map(|_| !link.send_datagram(&mut rng).delivered).collect()
}

/// Consecutive-loss run lengths of a loss sequence.
fn burst_lengths(losses: &[bool]) -> Vec<u64> {
    let mut bursts = Vec::new();
    let mut run = 0u64;
    for &lost in losses {
        if lost {
            run += 1;
        } else if run > 0 {
            bursts.push(run);
            run = 0;
        }
    }
    // Discard a trailing unfinished run: its length is censored.
    bursts
}

/// The analytic steady-state loss matches the empirical drop fraction of
/// a long datagram stream, and sits between the two per-state rates.
///
/// Tolerance: the chain decorrelates in `1 / (p_g2b + p_b2g) ≤ 5`
/// transmissions, so 20 000 transmissions give ≥ ~4 000 effective
/// samples; 0.05 absolute is several standard errors.
#[test]
fn steady_state_loss_matches_long_run_empirical_loss() {
    kscope_testkit::check!(
        Config::cases(24),
        |rng: &mut SimRng| {
            let p_good_to_bad = gen::f64_in(rng, 0.05, 0.5);
            let p_bad_to_good = gen::f64_in(rng, 0.15, 0.9);
            let loss_good = gen::f64_in(rng, 0.0, 0.1);
            let loss_bad = gen::f64_in(rng, 0.3, 0.95);
            let seed = gen::u64_any(rng);
            (p_good_to_bad, p_bad_to_good, loss_good, loss_bad, seed)
        },
        |&(p_good_to_bad, p_bad_to_good, loss_good, loss_bad, seed)| {
            let model = LossModel::GilbertElliott {
                p_good_to_bad,
                p_bad_to_good,
                loss_good,
                loss_bad,
            };
            let analytic = model.steady_state_loss();
            assert!(
                analytic >= loss_good && analytic <= loss_bad,
                "steady state {analytic} outside [{loss_good}, {loss_bad}]"
            );
            let n = 20_000usize;
            let losses = loss_sequence(model, seed, n);
            let empirical = losses.iter().filter(|&&l| l).count() as f64 / n as f64;
            assert!(
                (empirical - analytic).abs() < 0.05,
                "empirical loss {empirical:.4} vs steady state {analytic:.4} \
                 (p_g2b={p_good_to_bad:.3} p_b2g={p_bad_to_good:.3})"
            );
        }
    );
}

/// The reliable path sees the same steady state: counting every
/// transmission attempt (retransmissions + final deliveries), the lost
/// fraction matches `steady_state_loss()`. Loss rates are kept far from
/// the `max_retransmits` truncation point.
#[test]
fn reliable_path_retransmission_fraction_matches_steady_state() {
    kscope_testkit::check!(
        Config::cases(16),
        |rng: &mut SimRng| {
            let p_good_to_bad = gen::f64_in(rng, 0.05, 0.3);
            let p_bad_to_good = gen::f64_in(rng, 0.3, 0.9);
            let loss_bad = gen::f64_in(rng, 0.2, 0.6);
            let seed = gen::u64_any(rng);
            (p_good_to_bad, p_bad_to_good, loss_bad, seed)
        },
        |&(p_good_to_bad, p_bad_to_good, loss_bad, seed)| {
            let model = LossModel::GilbertElliott {
                p_good_to_bad,
                p_bad_to_good,
                loss_good: 0.0,
                loss_bad,
            };
            let analytic = model.steady_state_loss();
            let mut link = NetemLink::new(ge_config(model));
            let mut rng = SimRng::seed_from_u64(seed);
            for _ in 0..10_000 {
                link.send(&mut rng);
            }
            let stats = link.stats();
            let attempts = stats.retransmissions + stats.delivered;
            let empirical = stats.retransmissions as f64 / attempts as f64;
            assert!(
                (empirical - analytic).abs() < 0.05,
                "reliable-path loss {empirical:.4} vs steady state {analytic:.4}"
            );
        }
    );
}

/// Classic Gilbert bursts (`loss_good = 0`, `loss_bad = 1`) are
/// geometric: every transmission in the bad state is lost, so a burst
/// lasts exactly as long as the bad-state sojourn — geometric on
/// `{1, 2, …}` with mean `1 / p_bad_to_good` — and memoryless, so the
/// fraction of bursts surviving past any prefix length decays by
/// `1 - p_bad_to_good` per step.
#[test]
fn gilbert_burst_lengths_are_geometric_with_mean_inverse_recovery() {
    kscope_testkit::check!(
        Config::cases(16),
        |rng: &mut SimRng| {
            let p_bad_to_good = gen::f64_in(rng, 0.2, 0.8);
            let seed = gen::u64_any(rng);
            (p_bad_to_good, seed)
        },
        |&(p_bad_to_good, seed)| {
            let model = LossModel::GilbertElliott {
                p_good_to_bad: 0.05,
                p_bad_to_good,
                loss_good: 0.0,
                loss_bad: 1.0,
            };
            let losses = loss_sequence(model, seed, 60_000);
            let bursts = burst_lengths(&losses);
            assert!(
                bursts.len() > 500,
                "only {} bursts observed — stream too short to test",
                bursts.len()
            );
            let expected_mean = 1.0 / p_bad_to_good;
            let mean = bursts.iter().sum::<u64>() as f64 / bursts.len() as f64;
            assert!(
                (mean - expected_mean).abs() < 0.2 * expected_mean,
                "burst mean {mean:.3} vs 1/p_b2g = {expected_mean:.3}"
            );
            // Memorylessness: survival past length k decays geometrically.
            let survive = |k: u64| bursts.iter().filter(|&&b| b > k).count() as f64;
            let continue_rate = 1.0 - p_bad_to_good;
            for k in 0..2u64 {
                let at_least_k = survive(k);
                if at_least_k < 100.0 {
                    break; // Too few long bursts to estimate the ratio.
                }
                let ratio = survive(k + 1) / at_least_k;
                assert!(
                    (ratio - continue_rate).abs() < 0.1,
                    "survival ratio past {} is {ratio:.3}, expected {continue_rate:.3}",
                    k + 1
                );
            }
        }
    );
}
