//! Golden-trace regression tests: committed tracepoint streams pushed
//! through the real probe pipeline, with every derived metric checked
//! against committed expectations and explicit tolerances.
//!
//! The fixtures are exact by construction (scaling shift 0, integer
//! nanosecond deltas), so most tolerances are tiny; each `.expected`
//! file documents the arithmetic behind its numbers.

use kscope_core::{
    BytecodeBackend, MetricBackend, NativeBackend, RpsEstimator, SaturationDetector,
    SlackEstimator, WindowMetrics, WindowedObserver,
};
use kscope_kernel::TracepointProbe;
use kscope_simcore::Nanos;
use kscope_syscalls::SyscallProfile;
use kscope_testkit::golden::{parse_trace, Expectations};

const STEADY_TRACE: &str = include_str!("fixtures/steady_1krps.trace");
const STEADY_EXPECTED: &str = include_str!("fixtures/steady_1krps.expected");
const BURSTY_TRACE: &str = include_str!("fixtures/bursty_saturation.trace");
const BURSTY_EXPECTED: &str = include_str!("fixtures/bursty_saturation.expected");
const SLACK_TRACE: &str = include_str!("fixtures/poll_slack_ramp.trace");
const SLACK_EXPECTED: &str = include_str!("fixtures/poll_slack_ramp.expected");

/// The tgid every fixture uses.
const TGID: u32 = 1200;
/// All fixtures are laid out on a 64ms observation window.
const WINDOW_MS: u64 = 64;

/// Replays a trace fixture through the native probe with 64ms windows.
fn replay(trace: &str, finish_ms: u64) -> Vec<WindowMetrics> {
    let ctxs = parse_trace(trace).expect("fixture must parse");
    let backend = NativeBackend::new(TGID, SyscallProfile::data_caching(), 0);
    let mut observer = WindowedObserver::new(backend, Nanos::from_millis(WINDOW_MS));
    for ctx in &ctxs {
        observer.fire(ctx);
    }
    observer.finish(Nanos::from_millis(finish_ms));
    observer.into_windows()
}

fn as_flag(b: bool) -> f64 {
    if b {
        1.0
    } else {
        0.0
    }
}

/// Steady 1000 RPS loop: raw window metrics, the Eq. 1 estimate, and
/// the slack assessment all match the committed goldens.
#[test]
fn steady_loop_matches_goldens() {
    let exp = Expectations::parse(STEADY_EXPECTED).expect("expectations must parse");
    let windows = replay(STEADY_TRACE, WINDOW_MS);
    assert_eq!(windows.len(), 1, "fixture is one window long");
    let w = &windows[0];

    exp.check_opt("rps_obsv", w.rps_obsv);
    exp.check_opt("recv_rate", w.recv_rate);
    exp.check_opt("var_send", w.var_send);
    exp.check_opt("var_recv", w.var_recv);
    exp.check_opt("poll_mean_ns", w.poll_mean_ns);
    exp.check("poll_count", w.poll_count as f64);
    exp.check("send_samples", w.send_samples as f64);
    exp.check("events", w.events as f64);

    let est = RpsEstimator::with_min_samples(32);
    exp.check_opt("rps_eq1", est.from_window(w));

    let mut slack = SlackEstimator::default();
    let a = slack.observe(w).expect("64 polls is enough signal");
    exp.check("slack_headroom", a.headroom);
    exp.check("slack_saturated", as_flag(a.saturated));
}

/// Variance knee (Eq. 2): same throughput in both windows, 81x the
/// inter-send variance in the second — the detector must flag exactly
/// the bursty window.
#[test]
fn bursty_saturation_matches_goldens() {
    let exp = Expectations::parse(BURSTY_EXPECTED).expect("expectations must parse");
    let windows = replay(BURSTY_TRACE, 2 * WINDOW_MS);
    assert_eq!(windows.len(), 2, "fixture is two windows long");

    let mut det = SaturationDetector::default();
    det.min_samples = 32;
    let a0 = det.observe(&windows[0]).expect("window 0 carries signal");
    let a1 = det.observe(&windows[1]).expect("window 1 carries signal");

    exp.check("w0_rps", a0.rps);
    exp.check_opt("w0_var_send", windows[0].var_send);
    exp.check("w0_saturated", as_flag(a0.saturated));
    exp.check("w1_rps", a1.rps);
    exp.check_opt("w1_var_send", windows[1].var_send);
    exp.check("w1_saturated", as_flag(a1.saturated));
    exp.check("variance_floor", a1.variance_floor);
}

/// Poll-slack ramp (§IV-C2): headroom follows the committed log-scale
/// positions as mean poll duration falls toward the floor.
#[test]
fn poll_slack_ramp_matches_goldens() {
    let exp = Expectations::parse(SLACK_EXPECTED).expect("expectations must parse");
    let windows = replay(SLACK_TRACE, 3 * WINDOW_MS);
    assert_eq!(windows.len(), 3, "fixture is three windows long");

    let mut slack = SlackEstimator::default();
    for (i, w) in windows.iter().enumerate() {
        let a = slack.observe(w).unwrap_or_else(|| panic!("window {i} carries signal"));
        exp.check(&format!("w{i}_poll_mean_ns"), a.poll_mean_ns);
        exp.check(&format!("w{i}_headroom"), a.headroom);
        exp.check(&format!("w{i}_saturated"), as_flag(a.saturated));
    }
}

/// Both backends — native Rust and verified eBPF bytecode — must decode
/// to identical counters over every committed fixture stream.
#[test]
fn backends_agree_on_golden_traces() {
    for (name, trace) in [
        ("steady_1krps", STEADY_TRACE),
        ("bursty_saturation", BURSTY_TRACE),
        ("poll_slack_ramp", SLACK_TRACE),
    ] {
        let ctxs = parse_trace(trace).expect("fixture must parse");
        let mut native = NativeBackend::new(TGID, SyscallProfile::data_caching(), 0);
        let mut bytecode = BytecodeBackend::new(TGID, SyscallProfile::data_caching(), 0)
            .expect("probe program must build");
        for ctx in &ctxs {
            native.on_event(ctx);
            bytecode.on_event(ctx);
        }
        assert_eq!(
            native.counters(),
            bytecode.counters(),
            "backends diverged on fixture `{name}`"
        );
    }
}

/// Every expectation key in every fixture is consumed by a test above;
/// a stray key would silently check nothing.
#[test]
fn no_orphan_expectation_keys() {
    let consumed: &[(&str, &[&str])] = &[
        (
            STEADY_EXPECTED,
            &[
                "rps_obsv",
                "recv_rate",
                "var_send",
                "var_recv",
                "poll_mean_ns",
                "poll_count",
                "send_samples",
                "events",
                "rps_eq1",
                "slack_headroom",
                "slack_saturated",
            ],
        ),
        (
            BURSTY_EXPECTED,
            &[
                "w0_rps",
                "w0_var_send",
                "w0_saturated",
                "w1_rps",
                "w1_var_send",
                "w1_saturated",
                "variance_floor",
            ],
        ),
        (
            SLACK_EXPECTED,
            &[
                "w0_poll_mean_ns",
                "w0_headroom",
                "w0_saturated",
                "w1_poll_mean_ns",
                "w1_headroom",
                "w1_saturated",
                "w2_poll_mean_ns",
                "w2_headroom",
                "w2_saturated",
            ],
        ),
    ];
    for (text, keys) in consumed {
        let exp = Expectations::parse(text).unwrap();
        for key in exp.keys() {
            assert!(keys.contains(&key), "expectation `{key}` is never checked");
        }
        for key in *keys {
            assert!(exp.get(key).is_some(), "test checks missing key `{key}`");
        }
    }
}
