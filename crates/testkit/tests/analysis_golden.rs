//! Golden fixtures for the static-analysis pipeline.
//!
//! Three drift detectors, each backed by a committed golden file that a
//! human reviews when it changes (regenerate with `UPDATE_GOLDEN=1`):
//!
//! 1. `analysis.golden` — per precision fixture: the optimizer's full
//!    pass summary (slot counts before/after, what each pass did) and
//!    the certified worst-case cost of both the original and optimized
//!    programs. Any change to pass ordering, fold rules, or the cost
//!    model shows up as a diff here before it shows up in production.
//! 2. `warnings.golden` — the exact rendered verifier warnings for a
//!    program carrying one of every advisory kind. The discovery logic
//!    lives in the analysis module now; this file proves the move kept
//!    the report byte-stable.
//! 3. Text-layer round-trip (no golden file): optimize → emit →
//!    re-parse reproduces the optimized stream instruction-for-
//!    instruction, re-optimizing it is a fixpoint, and the optimized
//!    output still verifies cleanly — covering the shipped backend
//!    probes as well as the corpus.

use kscope_core::BytecodeBackend;
use kscope_ebpf::maps::{MapDef, MapRegistry};
use kscope_ebpf::text::{emit_program, parse_program};
use kscope_ebpf::verifier::{Verifier, VerifierConfig};
use kscope_ebpf::{cost_report, optimize, CostReport, Program};
use kscope_syscalls::SyscallProfile;

/// The precision corpus, in `precision_corpus.rs` order.
const FIXTURES: &[(&str, &str)] = &[
    (
        "and_mask_stack",
        include_str!("fixtures/precision/and_mask_stack.bpf"),
    ),
    (
        "log2_bucket_map",
        include_str!("fixtures/precision/log2_bucket_map.bpf"),
    ),
    (
        "range_guard_byte",
        include_str!("fixtures/precision/range_guard_byte.bpf"),
    ),
    (
        "jset_aligned",
        include_str!("fixtures/precision/jset_aligned.bpf"),
    ),
    (
        "signed_window",
        include_str!("fixtures/precision/signed_window.bpf"),
    ),
    (
        "div_range_proof",
        include_str!("fixtures/precision/div_range_proof.bpf"),
    ),
];

fn corpus_maps() -> MapRegistry {
    let mut maps = MapRegistry::new();
    maps.create("vals", MapDef::array(512, 1));
    maps
}

/// Compares `actual` against the committed golden at `path` (relative to
/// the crate root), or rewrites the golden when `UPDATE_GOLDEN=1`.
fn assert_matches_golden(path: &str, actual: &str) {
    let full = format!("{}/{path}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::write(&full, actual).unwrap_or_else(|e| panic!("writing {full}: {e}"));
        return;
    }
    let expected = std::fs::read_to_string(&full)
        .unwrap_or_else(|e| panic!("reading {full}: {e} (run with UPDATE_GOLDEN=1 to create)"));
    assert_eq!(
        expected, actual,
        "golden {path} drifted; review the diff and rerun with UPDATE_GOLDEN=1 if intended"
    );
}

fn render_cost(cost: Option<CostReport>) -> String {
    match cost {
        Some(c) => format!("{c}"),
        None => "unbounded".to_string(),
    }
}

#[test]
fn precision_corpus_analysis_matches_golden() {
    let mut out = String::new();
    for (name, text) in FIXTURES {
        let prog = parse_program(name, text)
            .unwrap_or_else(|e| panic!("fixture `{name}` failed to parse: {e}"));
        out.push_str(&format!("fixture: {name}\n"));
        match optimize(&prog) {
            Some((opt, report)) => {
                out.push_str(&format!("  opt:  {}\n", report.summary()));
                out.push_str(&format!("  cost: {}\n", render_cost(cost_report(&prog))));
                out.push_str(&format!("  cost(opt): {}\n", render_cost(cost_report(&opt))));
            }
            None => {
                out.push_str("  opt:  declined\n");
                out.push_str(&format!("  cost: {}\n", render_cost(cost_report(&prog))));
            }
        }
    }
    assert_matches_golden("tests/fixtures/precision/analysis.golden", &out);
}

#[test]
fn verifier_warning_rendering_is_stable() {
    let prog = parse_program("warnings", include_str!("fixtures/analysis/warnings.bpf"))
        .unwrap_or_else(|e| panic!("warnings fixture failed to parse: {e}"));
    let report = Verifier::default().verify_report(&prog, &MapRegistry::new());
    assert!(report.is_ok(), "warnings fixture must verify:\n{report}");
    // The fixture stays a genuine proof only while it trips both
    // advisory kinds.
    let rendered: String = report
        .warnings
        .iter()
        .map(|w| format!("warning: {w}\n"))
        .collect();
    assert!(
        rendered.contains("unreachable") && rendered.contains("dead store"),
        "fixture no longer carries both warning kinds:\n{rendered}"
    );
    assert_matches_golden("tests/fixtures/analysis/warnings.golden", &rendered);
}

/// Every program the round-trip test covers: the precision corpus plus
/// the shipped backend probes (which carry map-fd loads, the emit
/// path's only pseudo-instruction). Each entry carries the ctx size it
/// was verified against — the corpus assumes the default, the backend
/// probes their event layout.
fn round_trip_programs() -> Vec<(String, Program, MapRegistry, usize)> {
    let default_ctx = VerifierConfig::default().ctx_size;
    let mut progs: Vec<(String, Program, MapRegistry, usize)> = FIXTURES
        .iter()
        .map(|(name, text)| {
            let prog = parse_program(name, text).expect("fixture parses");
            ((*name).to_string(), prog, corpus_maps(), default_ctx)
        })
        .collect();
    let backend = BytecodeBackend::new_with_histogram(1200, SyscallProfile::data_caching(), 10)
        .expect("histogram backend builds");
    let (enter, exit) = backend.programs();
    for prog in [enter, exit] {
        progs.push((
            prog.name().to_string(),
            prog.clone(),
            backend.map_registry().clone(),
            kscope_core::CTX_SIZE,
        ));
    }
    progs
}

#[test]
fn optimized_programs_round_trip_through_text() {
    let mut optimized_any = false;
    for (name, prog, maps, ctx_size) in round_trip_programs() {
        let verifier = Verifier::new(VerifierConfig {
            ctx_size,
            ..VerifierConfig::default()
        });
        let Some((opt, report)) = optimize(&prog) else {
            continue;
        };
        optimized_any = true;
        let text = emit_program(&opt)
            .unwrap_or_else(|e| panic!("`{name}` optimized output failed to emit: {e:?}"));
        let reparsed = parse_program(&name, &text)
            .unwrap_or_else(|e| panic!("`{name}` emitted text failed to parse: {e}\n{text}"));
        assert_eq!(
            opt.insns(),
            reparsed.insns(),
            "`{name}` optimize -> emit -> parse is not the identity\n{text}"
        );

        // Re-optimizing the optimized stream must be a fixpoint: either
        // the optimizer declines, or it reports no change.
        if let Some((again, report2)) = optimize(&reparsed) {
            assert!(
                !report2.changed(),
                "`{name}` re-optimization is not a fixpoint: {} then {}",
                report.summary(),
                report2.summary()
            );
            assert_eq!(
                again.insns(),
                reparsed.insns(),
                "`{name}` re-optimization altered a fixpoint stream"
            );
        }

        // The optimized output still verifies cleanly against the same
        // maps the original was built for.
        let opt_report = verifier.verify_report(&reparsed, &maps);
        assert!(
            opt_report.is_ok(),
            "`{name}` optimized output fails verification:\n{opt_report}\n{}",
            reparsed.disassemble()
        );
    }
    assert!(optimized_any, "optimizer declined every covered program");
}
