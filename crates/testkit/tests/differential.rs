//! Differential fuzzing of the eBPF stack.
//!
//! Three oracles, all seeded and replayable through the testkit harness:
//!
//! 1. **Verifier soundness** — any program the verifier accepts executes
//!    in the interpreter without faulting (1200 random programs plus 400
//!    structured ones: over 1000 fuzz iterations per `cargo test` run).
//! 2. **Text round-trip** — assembling a program, rendering it with
//!    `emit_program`, and re-parsing it reproduces the instruction
//!    stream slot for slot, byte for byte.
//! 3. **Reference evaluation** — for branch-free ALU programs the
//!    interpreter's result equals an independent straight-line evaluator
//!    transcribed from the instruction-set semantics.
//! 4. **Value-tracking precision and soundness** — 1000 bounds-clamped
//!    register-offset programs all verify and never fault, and on mixed
//!    program streams the value-tracking verifier accepts a strict
//!    superset of what the historical type-only rules accepted.

use kscope_ebpf::insn::Insn;
use kscope_ebpf::interp::{ExecEnv, Vm};
use kscope_ebpf::maps::{MapDef, MapRegistry};
use kscope_ebpf::text::{emit_program, parse_program};
use kscope_ebpf::verifier::{Verifier, VerifierConfig};
use kscope_ebpf::Program;
use kscope_simcore::SimRng;
use kscope_testkit::ebpf_gen::{
    bounded_offset_program, fuzz_program, reference_eval, straightline_program, valid_program,
};
use kscope_testkit::Config;

/// 1200 arbitrary-body programs: everything the verifier accepts must
/// run clean, for arbitrary context bytes.
#[test]
fn verified_fuzz_programs_never_fault() {
    kscope_testkit::check!(
        Config::cases(1200),
        |rng: &mut SimRng| fuzz_program(rng, 24).insns().to_vec(),
        |insns: &Vec<Insn>| {
            let prog = Program::new("fuzz", insns.clone());
            let mut maps = MapRegistry::new();
            maps.create("m", MapDef::hash(8, 8, 64));
            if Verifier::default().verify(&prog, &maps).is_ok() {
                let result =
                    Vm::new().execute(&prog, &[0xA5u8; 64], &mut maps, &mut ExecEnv::default());
                assert!(
                    result.is_ok(),
                    "verifier accepted but interpreter faulted: {result:?}\n{}",
                    prog.disassemble()
                );
            }
        }
    );
}

/// Structured programs are accepted by construction, and still must run
/// clean — this drives the interpreter through its *verified* paths
/// (stack traffic, branches, wide immediates), not just rejections.
#[test]
fn structured_programs_verify_and_run() {
    kscope_testkit::check!(
        Config::cases(400),
        |rng: &mut SimRng| valid_program(rng, true).insns().to_vec(),
        |insns: &Vec<Insn>| {
            let prog = Program::new("valid", insns.clone());
            let mut maps = MapRegistry::new();
            // Shrunk instruction streams may no longer verify; the
            // soundness contract is only about accepted programs.
            if Verifier::default().verify(&prog, &maps).is_ok() {
                let result =
                    Vm::new().execute(&prog, &[0u8; 64], &mut maps, &mut ExecEnv::default());
                assert!(
                    result.is_ok(),
                    "verified structured program faulted: {result:?}\n{}",
                    prog.disassemble()
                );
            }
        }
    );
}

/// Freshly generated structured programs must pass the verifier — the
/// generator's validity promise itself, checked separately so a
/// generator regression can't silently turn the soundness fuzz above
/// into a no-op that never reaches the interpreter.
#[test]
fn structured_generator_keeps_its_validity_promise() {
    let mut rng = SimRng::seed_from_u64(Config::default().seed);
    let maps = MapRegistry::new();
    for i in 0..400 {
        let prog = valid_program(&mut rng, true);
        Verifier::default().verify(&prog, &maps).unwrap_or_else(|e| {
            panic!(
                "iteration {i}: generator emitted a rejected program: {e}\n{}",
                prog.disassemble()
            )
        });
    }
}

/// Text round-trip: emit → parse reproduces every instruction slot
/// byte-identically (including two-slot `ld_dw` immediates and relative
/// jump displacements).
#[test]
fn text_round_trip_is_byte_identical() {
    kscope_testkit::check!(
        Config::cases(400),
        |rng: &mut SimRng| valid_program(rng, true).insns().to_vec(),
        |insns: &Vec<Insn>| {
            let prog = Program::new("valid", insns.clone());
            // Shrinking can orphan an `ld_dw` half, which legitimately
            // has no text form; the round-trip contract covers every
            // program the emitter can render.
            let Ok(text) = emit_program(&prog) else {
                return;
            };
            let reparsed = parse_program("valid", &text)
                .unwrap_or_else(|e| panic!("emitted text failed to parse: {e}\n{text}"));
            assert_eq!(
                reparsed.insns(),
                prog.insns(),
                "round trip diverged\n{text}"
            );
            for (a, b) in prog.insns().iter().zip(reparsed.insns()) {
                assert_eq!(a.encode(), b.encode(), "encoded words differ");
            }
        }
    );
}

/// Branch-free programs: the interpreter's return value equals the
/// independent reference evaluator's, on every generated program.
#[test]
fn interpreter_matches_reference_evaluator() {
    kscope_testkit::check!(
        Config::cases(600),
        |rng: &mut SimRng| straightline_program(rng).insns().to_vec(),
        |insns: &Vec<Insn>| {
            let prog = Program::new("straightline", insns.clone());
            // Shrunk streams can fall outside the straight-line fragment
            // (e.g. a dropped init leaves a read-before-write); the
            // reference declines those and there is nothing to compare.
            let Some(expected) = reference_eval(&prog) else {
                return;
            };
            let mut maps = MapRegistry::new();
            Verifier::default()
                .verify(&prog, &maps)
                .unwrap_or_else(|e| panic!("straightline program rejected: {e}"));
            let out = Vm::new()
                .execute(&prog, &[], &mut maps, &mut ExecEnv::default())
                .unwrap_or_else(|e| panic!("straightline program faulted: {e:?}"));
            assert_eq!(
                out.ret,
                expected,
                "interpreter {} != reference {expected}\n{}",
                out.ret,
                prog.disassemble()
            );
        }
    );
}

/// 1000 bounds-clamped register-offset programs: the value-tracking
/// verifier must accept every one (the generator's clamps are designed
/// to be provable), and every accepted program must run clean on
/// randomized context bytes — the soundness half of the precision story.
#[test]
fn bounded_offset_programs_verify_and_never_fault() {
    let mut rng = SimRng::seed_from_u64(Config::default().seed);
    for i in 0..1000 {
        let mut maps = MapRegistry::new();
        let fd = maps.create("vals", MapDef::array(128, 1));
        let prog = bounded_offset_program(&mut rng, (i % 2 == 0).then_some(fd));
        Verifier::default().verify(&prog, &maps).unwrap_or_else(|e| {
            panic!(
                "iteration {i}: bounded-offset program rejected: {e}\n{}",
                prog.disassemble()
            )
        });
        let mut ctx = [0u8; 64];
        for b in ctx.iter_mut() {
            *b = rng.next_u64() as u8;
        }
        let result = Vm::new().execute(&prog, &ctx, &mut maps, &mut ExecEnv::default());
        assert!(
            result.is_ok(),
            "iteration {i}: accepted program faulted on ctx {ctx:02x?}: {result:?}\n{}",
            prog.disassemble()
        );
    }
}

/// The value-tracking verifier accepts a strict superset of the
/// type-only rules: on a mixed stream of arbitrary, structured, and
/// bounded-offset programs, nothing the old lattice accepted is newly
/// rejected — and the bounded-offset corpus demonstrates genuine new
/// acceptances, so the inclusion is strict, not vacuous.
#[test]
fn value_tracking_accepts_strict_superset_of_type_only() {
    let mut rng = SimRng::seed_from_u64(Config::default().seed ^ 0x5EED);
    let type_only = Verifier::new(VerifierConfig {
        value_tracking: false,
        ..VerifierConfig::default()
    });
    let full = Verifier::default();
    let mut newly_accepted = 0usize;
    for i in 0..1200 {
        let mut maps = MapRegistry::new();
        let fd = maps.create("vals", MapDef::array(128, 1));
        let prog = match i % 3 {
            0 => fuzz_program(&mut rng, 24),
            1 => valid_program(&mut rng, true),
            _ => bounded_offset_program(&mut rng, Some(fd)),
        };
        let old = type_only.verify(&prog, &maps);
        let new = full.verify(&prog, &maps);
        if old.is_ok() {
            assert!(
                new.is_ok(),
                "iteration {i}: value tracking rejected a type-only-accepted program: {new:?}\n{}",
                prog.disassemble()
            );
        }
        if old.is_err() && new.is_ok() {
            newly_accepted += 1;
        }
    }
    assert!(
        newly_accepted >= 100,
        "expected a strict precision gain, saw only {newly_accepted} new acceptances"
    );
}

/// The reference evaluator must produce a value on every freshly
/// generated straight-line program (all registers initialized, no
/// branches) — otherwise the differential above would silently compare
/// nothing.
#[test]
fn reference_evaluator_covers_the_generator() {
    let mut rng = SimRng::seed_from_u64(Config::default().seed);
    for i in 0..600 {
        let prog = straightline_program(&mut rng);
        assert!(
            reference_eval(&prog).is_some(),
            "iteration {i}: reference declined a generated program\n{}",
            prog.disassemble()
        );
    }
}
