//! Fleet collection-plane properties.
//!
//! The load-bearing one is **mergeability**: the fleet's estimator state
//! (count/Σδ/Σδ² sufficient statistics per stream, plus log2 histogram
//! cells) merged across K shards must equal the state computed over the
//! concatenated stream — bit for bit in every integer cell, which in turn
//! makes every derived float identical. This is the algebraic fact that
//! lets the collector merge per-host reports without bias, whatever the
//! sharding; the acceptance bar is ≥500 seeded iterations over
//! K ∈ {1, 4, 16}.

use kscope_core::{Log2Hist, RawCounters};
use kscope_fleet::{run_fleet, FleetConfig};
use kscope_simcore::SimRng;
use kscope_testkit::{gen, Config};

/// One synthetic probe sample: which stream it lands in and its raw value.
#[derive(Debug, Clone, Copy)]
enum Stream {
    Send,
    Recv,
    Poll,
}

fn apply(state: &mut (RawCounters, Log2Hist), sample: (Stream, u64, u64)) {
    let (stream, raw, ts) = sample;
    let (counters, hist) = state;
    match stream {
        Stream::Send => {
            counters.send.push(raw);
            counters.send_last_ts = counters.send_last_ts.max(ts);
        }
        Stream::Recv => {
            counters.recv.push(raw);
            counters.recv_last_ts = counters.recv_last_ts.max(ts);
        }
        Stream::Poll => {
            counters.poll.push(raw);
            hist.record(raw);
        }
    }
    counters.events = counters.events.wrapping_add(1);
}

fn assert_states_equal(merged: &(RawCounters, Log2Hist), whole: &(RawCounters, Log2Hist)) {
    let (mc, mh) = merged;
    let (wc, wh) = whole;
    // Integer cells: bit for bit.
    for (label, m, w) in [
        ("send", &mc.send, &wc.send),
        ("recv", &mc.recv, &wc.recv),
        ("poll", &mc.poll, &wc.poll),
    ] {
        assert_eq!(m.count, w.count, "{label} count");
        assert_eq!(m.sum, w.sum, "{label} sum");
        assert_eq!(m.sum_sq, w.sum_sq, "{label} sum_sq");
    }
    assert_eq!(mc.events, wc.events, "events");
    assert_eq!(mc.send_last_ts, wc.send_last_ts, "send_last_ts");
    assert_eq!(mc.recv_last_ts, wc.recv_last_ts, "recv_last_ts");
    assert_eq!(mh.buckets(), wh.buckets(), "histogram cells");
    // Derived floats follow from the cells, so equality is exact — well
    // inside the 1e-9 relative bound the acceptance criteria allow.
    for (label, m, w) in [
        ("send", &mc.send, &wc.send),
        ("recv", &mc.recv, &wc.recv),
        ("poll", &mc.poll, &wc.poll),
    ] {
        assert_eq!(m.mean(), w.mean(), "{label} mean");
        assert_eq!(m.variance(), w.variance(), "{label} variance");
    }
}

/// Merging K per-shard states equals computing over the concatenated
/// stream, for K ∈ {1, 4, 16}, across ≥500 seeded iterations.
#[test]
fn merged_shards_equal_concatenated_stream() {
    kscope_testkit::check!(
        Config::cases(510),
        |rng: &mut SimRng| {
            let k = gen::pick(rng, &[1usize, 4, 16]);
            let shift = gen::u64_in(rng, 0, 12) as u32;
            let n = gen::usize_in(rng, 0, 400);
            let samples: Vec<(u8, u64)> = (0..n)
                .map(|_| {
                    let stream = gen::u64_in(rng, 0, 2) as u8;
                    // Mix tiny, realistic, and near-overflow magnitudes so
                    // the wrapping arithmetic is exercised, not assumed.
                    let raw = match gen::u64_in(rng, 0, 9) {
                        0 => gen::u64_in(rng, 0, 3),
                        1..=7 => gen::u64_in(rng, 1_000, 400_000_000),
                        _ => gen::u64_any(rng),
                    };
                    (stream, raw)
                })
                .collect();
            (k, shift, samples)
        },
        |&(k, shift, ref samples): &(usize, u32, Vec<(u8, u64)>)| {
            let decode = |(stream, raw): (u8, u64), ts: u64| {
                let stream = match stream {
                    0 => Stream::Send,
                    1 => Stream::Recv,
                    _ => Stream::Poll,
                };
                (stream, raw, ts)
            };
            // The concatenated-stream state.
            let mut whole = (RawCounters::new(shift), Log2Hist::new(shift));
            for (i, &s) in samples.iter().enumerate() {
                apply(&mut whole, decode(s, i as u64));
            }
            // K contiguous shards (uneven on purpose), merged in order.
            let chunk = samples.len().div_ceil(k).max(1);
            let mut merged = (RawCounters::new(shift), Log2Hist::new(shift));
            for (shard_idx, shard) in samples.chunks(chunk).enumerate() {
                let mut state = (RawCounters::new(shift), Log2Hist::new(shift));
                for (j, &s) in shard.iter().enumerate() {
                    apply(&mut state, decode(s, (shard_idx * chunk + j) as u64));
                }
                merged.0.merge(&state.0);
                merged.1.merge(&state.1);
            }
            assert_states_equal(&merged, &whole);
        }
    );
}

/// Shard-order invariance: because the cells are wrapping sums, merging
/// the per-shard states in any order yields the same integer state.
#[test]
fn merge_is_order_invariant() {
    kscope_testkit::check!(
        Config::cases(128),
        |rng: &mut SimRng| {
            let n = gen::usize_in(rng, 0, 200);
            let samples: Vec<(u8, u64)> = (0..n)
                .map(|_| {
                    (
                        gen::u64_in(rng, 0, 2) as u8,
                        gen::u64_in(rng, 0, 500_000_000),
                    )
                })
                .collect();
            samples
        },
        |samples: &Vec<(u8, u64)>| {
            let build = |shard: &[(u8, u64)], base: usize| {
                let mut state = (RawCounters::new(4), Log2Hist::new(4));
                for (j, &(stream, raw)) in shard.iter().enumerate() {
                    let stream = match stream {
                        0 => Stream::Send,
                        1 => Stream::Recv,
                        _ => Stream::Poll,
                    };
                    apply(&mut state, (stream, raw, (base + j) as u64));
                }
                state
            };
            let chunk = samples.len().div_ceil(4).max(1);
            let shards: Vec<_> = samples
                .chunks(chunk)
                .enumerate()
                .map(|(i, s)| build(s, i * chunk))
                .collect();
            let mut forward = (RawCounters::new(4), Log2Hist::new(4));
            for s in &shards {
                forward.0.merge(&s.0);
                forward.1.merge(&s.1);
            }
            let mut reverse = (RawCounters::new(4), Log2Hist::new(4));
            for s in shards.iter().rev() {
                reverse.0.merge(&s.0);
                reverse.1.merge(&s.1);
            }
            assert_states_equal(&forward, &reverse);
        }
    );
}

/// End-to-end accounting conservation under arbitrary loss: whatever the
/// channel does, every report is accounted for exactly once on each side
/// of the ledger, and the collector's state is never silently wrong.
#[test]
fn fleet_accounting_conserves_under_any_loss() {
    kscope_testkit::check!(
        Config::cases(12),
        |rng: &mut SimRng| {
            (
                gen::u64_any(rng),
                gen::usize_in(rng, 2, 6),
                gen::f64_in(rng, 0.0, 0.5),
            )
        },
        |&(seed, hosts, loss): &(u64, usize, f64)| {
            let mut config = FleetConfig::quick(hosts).with_loss(loss);
            config.seed = seed;
            let run = match run_fleet(&config) {
                Ok(run) => run,
                Err(e) => panic!("fleet build failed: {e:?}"),
            };
            let rollup = run.rollup(3);
            let acc = rollup.accounting;
            assert_eq!(acc.produced, acc.shed + acc.offered);
            assert_eq!(acc.offered, acc.channel_delivered + acc.channel_dropped);
            assert_eq!(acc.accepted + acc.stale, acc.channel_delivered);
            assert!(rollup.reporting_hosts + rollup.silent_hosts == hosts);
        }
    );
}
