//! Differential identity of the two interpreter dispatchers.
//!
//! The VM executes programs either from the pre-decoded representation
//! (`Vm::new()`, the hot path) or by re-decoding raw instruction words on
//! every step (`Vm::new().with_raw_dispatch()`, the reference kept
//! verbatim from the original interpreter). The tests here hold the two
//! byte-for-byte equal — same `ExecOutcome` (return value, instruction
//! count, trace output) or same `ExecError`, same final map state, same
//! final helper environment — across:
//!
//! * ≥1200 generated programs: arbitrary fuzz bodies, straight-line ALU,
//!   structured verified programs, bounds-clamped register-offset
//!   programs with live map traffic, and fully wild instruction words
//!   (random opcode bytes, including undefined classes, truncated
//!   `ld_dw` pairs, and jumps into `ld_dw` hi slots);
//! * tiny instruction budgets, so `BudgetExhausted` fires at the same
//!   instruction on both paths;
//! * a hand-written program exercising every helper the VM implements;
//! * every committed precision fixture;
//! * the real `BytecodeBackend` enter/exit probe programs, run as a
//!   stateful event stream over persistent map registries.

use kscope_core::BytecodeBackend;
use kscope_ebpf::asm::Asm;
use kscope_ebpf::helpers::Helper;
use kscope_ebpf::insn::{Insn, SZ_DW};
use kscope_ebpf::interp::{ExecEnv, Vm};
use kscope_ebpf::maps::{MapDef, MapRegistry};
use kscope_ebpf::text::parse_program;
use kscope_ebpf::Program;
use kscope_simcore::SimRng;
use kscope_syscalls::{pid_tgid, SyscallNo, SyscallProfile};
use kscope_testkit::ebpf_gen::{
    bounded_offset_program, fuzz_program, straightline_program, valid_program,
};
use kscope_testkit::{gen, Config};

/// Runs `prog` through both dispatchers from identical starting states
/// and asserts the observable results are equal: the `Result` itself
/// (outcome or error), the mutated helper environment, and the full map
/// registry state.
fn assert_dispatch_identical(
    label: &str,
    prog: &Program,
    ctx: &[u8],
    base: &MapRegistry,
    env: ExecEnv,
    budget: Option<u64>,
) {
    let make_vm = || match budget {
        Some(b) => Vm::with_insn_budget(b),
        None => Vm::new(),
    };
    let mut vm_decoded = make_vm();
    let mut vm_raw = make_vm().with_raw_dispatch();
    assert!(vm_decoded.uses_predecode());
    assert!(!vm_raw.uses_predecode());

    let mut maps_decoded = base.clone();
    let mut maps_raw = base.clone();
    let mut env_decoded = env;
    let mut env_raw = env;

    let decoded = vm_decoded.execute(prog, ctx, &mut maps_decoded, &mut env_decoded);
    let raw = vm_raw.execute(prog, ctx, &mut maps_raw, &mut env_raw);

    assert_eq!(
        decoded,
        raw,
        "{label}: dispatch outcomes diverge\n{}",
        prog.disassemble()
    );
    assert_eq!(env_decoded, env_raw, "{label}: helper env diverges");
    assert_eq!(
        format!("{maps_decoded:?}"),
        format!("{maps_raw:?}"),
        "{label}: map state diverges\n{}",
        prog.disassemble()
    );
}

/// A completely unconstrained instruction word, except that register
/// fields stay in `0..=10` (the interpreter's documented input
/// contract). Random code bytes hit undefined classes and opcodes,
/// `ld_dw` with missing hi slots, and every size/mode combination.
fn wild_insn(rng: &mut SimRng) -> Insn {
    Insn {
        code: gen::u64_in(rng, 0, 255) as u8,
        dst: gen::u64_in(rng, 0, 10) as u8,
        src: gen::u64_in(rng, 0, 10) as u8,
        off: gen::i64_in(rng, -24, 24) as i16,
        imm: gen::i32_in(rng, -4096, 4096),
    }
}

fn wild_program(rng: &mut SimRng) -> Program {
    let body = gen::usize_in(rng, 1, 16);
    let insns: Vec<Insn> = (0..body).map(|_| wild_insn(rng)).collect();
    // No trailing exit on purpose: falling off the end must be identical
    // too. (Many of these programs error on their first instruction.)
    Program::new("wild", insns)
}

fn random_ctx(rng: &mut SimRng) -> [u8; 64] {
    let mut ctx = [0u8; 64];
    for b in ctx.iter_mut() {
        *b = rng.next_u64() as u8;
    }
    ctx
}

fn random_env(rng: &mut SimRng) -> ExecEnv {
    ExecEnv {
        ktime_ns: rng.next_u64() >> 20,
        pid_tgid: rng.next_u64(),
        prandom_state: rng.next_u64() | 1,
    }
}

/// 1200 generated programs (five families, 240 each) execute identically
/// on both dispatchers, map traffic and helper state included.
#[test]
fn generated_programs_execute_identically() {
    let mut rng = SimRng::seed_from_u64(Config::default().seed ^ 0xDEC0DE);
    for i in 0..1200 {
        let mut base = MapRegistry::new();
        base.create("h", MapDef::hash(8, 8, 64));
        let vals = base.create("vals", MapDef::array(128, 1));
        let prog = match i % 5 {
            0 => fuzz_program(&mut rng, 24),
            1 => straightline_program(&mut rng),
            2 => valid_program(&mut rng, true),
            3 => bounded_offset_program(&mut rng, Some(vals)),
            _ => wild_program(&mut rng),
        };
        let ctx = random_ctx(&mut rng);
        let env = random_env(&mut rng);
        assert_dispatch_identical(&format!("generated[{i}]"), &prog, &ctx, &base, env, None);
    }
}

/// Budget exhaustion fires on the same instruction for both paths:
/// sweeping tiny budgets over the same programs, every `Ok`/`Err`
/// boundary lands identically (including `ld_dw` counting as one
/// executed instruction on both sides).
#[test]
fn budget_exhaustion_is_identical() {
    let mut rng = SimRng::seed_from_u64(Config::default().seed ^ 0xB0D6E7);
    for i in 0..120 {
        let base = MapRegistry::new();
        let prog = match i % 3 {
            0 => fuzz_program(&mut rng, 16),
            1 => straightline_program(&mut rng),
            _ => wild_program(&mut rng),
        };
        let ctx = random_ctx(&mut rng);
        // Zero is rejected at construction; 1 is the smallest legal budget.
        for budget in [1u64, 2, 3, 5, 8, 13, 1_000] {
            assert_dispatch_identical(
                &format!("budget[{i}@{budget}]"),
                &prog,
                &ctx,
                &base,
                ExecEnv::default(),
                Some(budget),
            );
        }
    }
}

/// One program through every helper the VM implements: lookup miss,
/// update, lookup hit with a read through the returned slot, delete,
/// ktime, prandom, pid_tgid, printk (trace output), and ringbuf output.
#[test]
fn helper_surface_is_identical() {
    let mut base = MapRegistry::new();
    let hash = base.create("h", MapDef::hash(8, 8, 16));
    let ring = base.create("rb", MapDef::ring_buf(64, 8));

    let prog = Asm::new("helpers")
        // Key 0x1122334455667788 at stack[-8]; value at stack[-16].
        .ld_dw(6, 0x1122_3344_5566_7788)
        .store_reg(SZ_DW, 10, 6, -8)
        .ld_dw(6, 0xAABB_CCDD_EEFF_0011)
        .store_reg(SZ_DW, 10, 6, -16)
        // Miss: r0 = 0.
        .ld_map_fd(1, hash)
        .mov64_reg(2, 10)
        .add64_imm(2, -8)
        .call(Helper::MapLookupElem)
        // Insert, then hit and read back through the value slot.
        .ld_map_fd(1, hash)
        .mov64_reg(2, 10)
        .add64_imm(2, -8)
        .mov64_reg(3, 10)
        .add64_imm(3, -16)
        .mov64_imm(4, 0)
        .call(Helper::MapUpdateElem)
        .ld_map_fd(1, hash)
        .mov64_reg(2, 10)
        .add64_imm(2, -8)
        .call(Helper::MapLookupElem)
        .load(SZ_DW, 6, 0, 0)
        // Delete it again (returns 0), then the no-argument helpers.
        .ld_map_fd(1, hash)
        .mov64_reg(2, 10)
        .add64_imm(2, -8)
        .call(Helper::MapDeleteElem)
        .call(Helper::KtimeGetNs)
        .call(Helper::GetPrandomU32)
        .call(Helper::GetCurrentPidTgid)
        // printk of the 8 value bytes still on the stack.
        .mov64_reg(1, 10)
        .add64_imm(1, -16)
        .mov64_imm(2, 8)
        .call(Helper::TracePrintk)
        // ringbuf_output of the same bytes.
        .ld_map_fd(1, ring)
        .mov64_reg(2, 10)
        .add64_imm(2, -16)
        .mov64_imm(3, 8)
        .mov64_imm(4, 0)
        .call(Helper::RingbufOutput)
        .mov64_reg(0, 6)
        .exit()
        .assemble()
        .unwrap_or_else(|e| panic!("helper program must assemble: {e}"));

    for seed in 0..32u64 {
        let mut rng = SimRng::seed_from_u64(seed);
        let env = random_env(&mut rng);
        assert_dispatch_identical(&format!("helpers[{seed}]"), &prog, &[], &base, env, None);
    }
}

/// Every committed precision fixture runs identically on both paths, on
/// randomized context bytes.
#[test]
fn fixture_probes_execute_identically() {
    const FIXTURES: &[(&str, &str)] = &[
        (
            "and_mask_stack",
            include_str!("fixtures/precision/and_mask_stack.bpf"),
        ),
        (
            "log2_bucket_map",
            include_str!("fixtures/precision/log2_bucket_map.bpf"),
        ),
        (
            "range_guard_byte",
            include_str!("fixtures/precision/range_guard_byte.bpf"),
        ),
        (
            "jset_aligned",
            include_str!("fixtures/precision/jset_aligned.bpf"),
        ),
        (
            "signed_window",
            include_str!("fixtures/precision/signed_window.bpf"),
        ),
        (
            "div_range_proof",
            include_str!("fixtures/precision/div_range_proof.bpf"),
        ),
    ];
    let mut rng = SimRng::seed_from_u64(Config::default().seed);
    for (name, text) in FIXTURES {
        let prog = parse_program(name, text)
            .unwrap_or_else(|e| panic!("fixture `{name}` failed to parse: {e}"));
        let mut base = MapRegistry::new();
        base.create("vals", MapDef::array(512, 1));
        for round in 0..8 {
            let ctx = random_ctx(&mut rng);
            let env = random_env(&mut rng);
            assert_dispatch_identical(&format!("{name}[{round}]"), &prog, &ctx, &base, env, None);
        }
    }
}

/// The real probe programs, run as a stateful stream: both dispatchers
/// process the same 400-event enter/exit sequence against their own
/// persistent registries, which must stay in lockstep throughout (the
/// `start` hash map carries state from enter to exit).
#[test]
fn backend_probe_programs_execute_identically() {
    let backend = BytecodeBackend::new(1200, SyscallProfile::data_caching(), 6)
        .unwrap_or_else(|e| panic!("generated probe programs must verify: {e}"));
    let (enter, exit) = backend.programs();
    let mut maps_decoded = backend.map_registry().clone();
    let mut maps_raw = backend.map_registry().clone();
    let mut vm_decoded = Vm::new();
    let mut vm_raw = Vm::new().with_raw_dispatch();

    let profile = SyscallProfile::data_caching();
    let send_no = profile.primary(kscope_syscalls::SyscallRole::Send).raw() as u64;
    let recv_no = profile.primary(kscope_syscalls::SyscallRole::Receive).raw() as u64;
    let poll_no = profile.primary(kscope_syscalls::SyscallRole::Poll).raw() as u64;
    let wrong_no = SyscallNo::FUTEX.raw() as u64;

    let mut rng = SimRng::seed_from_u64(Config::default().seed ^ 0x9205E);
    for i in 0..400u64 {
        let (no, is_enter) = match i % 8 {
            0 => (poll_no, true),
            1 => (poll_no, false),
            2..=4 => (send_no, false),
            5 => (recv_no, false),
            6 => (wrong_no, false),
            // Same stream shape from a non-observed process below.
            _ => (send_no, false),
        };
        let observed = i % 8 != 7;
        let mut ctx = [0u8; 16];
        ctx[..8].copy_from_slice(&no.to_le_bytes());
        ctx[8..16].copy_from_slice(&(gen::u64_in(&mut rng, 1, 4096)).to_le_bytes());
        let env = ExecEnv {
            ktime_ns: 5_000 * (i + 1),
            pid_tgid: if observed {
                pid_tgid(1200, 1201)
            } else {
                pid_tgid(4242, 4243)
            },
            ..ExecEnv::default()
        };
        let prog = if is_enter { enter } else { exit };

        let mut env_decoded = env;
        let mut env_raw = env;
        let decoded = vm_decoded.execute(prog, &ctx, &mut maps_decoded, &mut env_decoded);
        let raw = vm_raw.execute(prog, &ctx, &mut maps_raw, &mut env_raw);
        assert_eq!(decoded, raw, "event {i}: probe outcomes diverge");
        assert_eq!(env_decoded, env_raw, "event {i}: probe env diverges");
    }
    assert_eq!(
        format!("{maps_decoded:?}"),
        format!("{maps_raw:?}"),
        "probe map state diverges after the stream"
    );
}
