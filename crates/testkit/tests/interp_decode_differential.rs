//! Differential identity of every VM dispatcher: raw, decoded, and JIT.
//!
//! The VM executes programs from the pre-decoded representation
//! (`Vm::new()`, the hot path), by re-decoding raw instruction words on
//! every step (`Vm::new().with_raw_dispatch()`, the reference kept
//! verbatim from the original interpreter), or as native x86-64 machine
//! code (`Vm::new().with_jit()`, with and without verifier-proof-driven
//! bounds-check elision). The tests here hold all of them byte-for-byte
//! equal — same `ExecOutcome` (return value, instruction count, trace
//! output) or same `ExecError`, same final map state, same final helper
//! environment — across:
//!
//! * ≥2000 generated programs: arbitrary fuzz bodies, straight-line ALU,
//!   structured verified programs, bounds-clamped register-offset
//!   programs with live map traffic, and fully wild instruction words
//!   (random opcode bytes, including undefined classes, truncated
//!   `ld_dw` pairs, and jumps into `ld_dw` hi slots);
//! * a seed-addressed `check!` fuzzer whose failures shrink to a minimal
//!   diverging instruction sequence and print a `KSCOPE_TESTKIT_SEED`
//!   repro command;
//! * a directed corpus of JIT edge cases: immediate sign-extension,
//!   32-bit wraparound, fused `ld_dw` slots (including jumps into the hi
//!   slot), budget exhaustion mid-block, div/mod by zero in all four
//!   width/operand forms, shift-count masking, and callee-saved register
//!   survival across helper calls;
//! * tiny instruction budgets, so `BudgetExhausted` fires at the same
//!   instruction on every path;
//! * a hand-written program exercising every helper the VM implements;
//! * every committed precision fixture, *verified first* so the elided
//!   JIT actually runs with bounds checks removed;
//! * the real `BytecodeBackend` enter/exit probe programs, run as a
//!   stateful event stream over persistent map registries;
//! * the netstack ingress probe pair (`kscope_net_rx` /
//!   `kscope_sock_drain`), run as a stateful stream of 24-byte `NetCtx`
//!   events including drains with no matching arrival.
//!
//! On targets without JIT support the JIT arms fall back to the decoded
//! interpreter inside `Vm::execute`, so the identity still holds (and
//! still checks raw vs decoded); the `is_compilable` assertions are
//! gated to x86-64.

use kscope_core::BytecodeBackend;
use kscope_ebpf::asm::Asm;
use kscope_ebpf::helpers::Helper;
use kscope_ebpf::insn::{
    Insn, OP_ADD, OP_ARSH, OP_DIV, OP_JEQ, OP_JGT, OP_JSET, OP_JSGT, OP_JSLT, OP_LSH, OP_MOD,
    OP_MOV, OP_MUL, OP_NEG, OP_RSH, SZ_B, SZ_DW, SZ_H, SZ_W,
};
use kscope_ebpf::interp::{ExecEnv, ExecError, Vm};
use kscope_ebpf::maps::{MapDef, MapRegistry};
use kscope_ebpf::text::parse_program;
use kscope_ebpf::verifier::Verifier;
use kscope_ebpf::{cost_report, Program};
use kscope_simcore::SimRng;
use kscope_syscalls::{pid_tgid, SyscallNo, SyscallProfile};
use kscope_testkit::ebpf_gen::{
    bounded_offset_program, fuzz_program, straightline_program, valid_program,
};
use kscope_testkit::{check, gen, Config};

/// Maps an optimized-program error back into original-program
/// coordinates through the optimizer's provenance table, so trap pcs
/// compare against the unoptimized run.
fn remap_error(e: &ExecError, provenance: &[usize]) -> ExecError {
    let m = |pc: usize| provenance.get(pc).copied().unwrap_or(pc);
    match *e {
        ExecError::BadMemAccess { pc, addr, size } => ExecError::BadMemAccess {
            pc: m(pc),
            addr,
            size,
        },
        ExecError::BadOpcode { pc, code } => ExecError::BadOpcode { pc: m(pc), code },
        ExecError::BadJumpTarget { pc, target } => ExecError::BadJumpTarget { pc: m(pc), target },
        ExecError::UnknownHelper { pc, id } => ExecError::UnknownHelper { pc: m(pc), id },
        ExecError::MalformedLdDw { pc } => ExecError::MalformedLdDw { pc: m(pc) },
        ref other => other.clone(),
    }
}

/// Runs `prog` through all six dispatch arms from identical starting
/// states and asserts the observable results are equal: the `Result`
/// itself (outcome or error), the mutated helper environment, and the
/// full map registry state. The decoded interpreter is the pivot; raw,
/// JIT-with-elision, and JIT-without-elision are each held strictly to
/// it. The optimized and optimized+JIT arms are held to the optimizer's
/// contract: identical return/trace/env/map observables, never *more*
/// executed instructions, and traps at the provenance-equivalent pc —
/// with budget exhaustion on the pivot releasing the optimized arms
/// (fewer instructions may legitimately make more progress). Also
/// asserts the static cost certificate bounds every successful run.
fn assert_dispatch_identical(
    label: &str,
    prog: &Program,
    ctx: &[u8],
    base: &MapRegistry,
    env: ExecEnv,
    budget: Option<u64>,
) {
    let make_vm = || match budget {
        Some(b) => Vm::with_insn_budget(b),
        None => Vm::new(),
    };
    let mut vm_decoded = make_vm();
    let mut vm_raw = make_vm().with_raw_dispatch();
    let mut vm_jit = make_vm().with_jit();
    let mut vm_jit_checked = make_vm().with_jit().without_bounds_elision();
    assert!(vm_decoded.uses_predecode());
    assert!(!vm_raw.uses_predecode());
    assert!(vm_jit.uses_jit());
    assert!(vm_jit_checked.uses_jit());

    let mut maps_decoded = base.clone();
    let mut env_decoded = env;
    let decoded = vm_decoded.execute(prog, ctx, &mut maps_decoded, &mut env_decoded);

    // Soundness of the cost certificate: no successful run may exceed it.
    if let (Some(cost), Ok(out)) = (cost_report(prog), &decoded) {
        assert!(
            out.insns_executed <= cost.max_insns,
            "{label}: executed {} insns > certified bound {}\n{}",
            out.insns_executed,
            cost.max_insns,
            prog.disassemble()
        );
    }

    for (arm, vm) in [
        ("raw", &mut vm_raw),
        ("jit", &mut vm_jit),
        ("jit-no-elide", &mut vm_jit_checked),
    ] {
        let mut maps_other = base.clone();
        let mut env_other = env;
        let other = vm.execute(prog, ctx, &mut maps_other, &mut env_other);
        assert_eq!(
            decoded,
            other,
            "{label}: decoded vs {arm} outcomes diverge\n{}",
            prog.disassemble()
        );
        assert_eq!(
            env_decoded, env_other,
            "{label}: decoded vs {arm} helper env diverges"
        );
        assert_eq!(
            format!("{maps_decoded:?}"),
            format!("{maps_other:?}"),
            "{label}: decoded vs {arm} map state diverges\n{}",
            prog.disassemble()
        );
    }

    // The optimized arms. `Vm::with_optimizer` runs `prog.optimized()`
    // when the optimizer accepted the program, and the original stream
    // (strict identity, like the arms above) when it declined.
    let opt_info = prog.optimized();
    for (arm, vm) in [
        ("opt", &mut make_vm().with_optimizer()),
        ("opt-jit", &mut make_vm().with_optimizer().with_jit()),
    ] {
        assert!(vm.uses_optimizer());
        let mut maps_other = base.clone();
        let mut env_other = env;
        let other = vm.execute(prog, ctx, &mut maps_other, &mut env_other);
        let Some((opt_prog, report)) = opt_info else {
            assert_eq!(
                decoded,
                other,
                "{label}: decoded vs {arm} (optimizer declined) outcomes diverge\n{}",
                prog.disassemble()
            );
            assert_eq!(env_decoded, env_other, "{label}: {arm} helper env diverges");
            assert_eq!(
                format!("{maps_decoded:?}"),
                format!("{maps_other:?}"),
                "{label}: {arm} map state diverges"
            );
            continue;
        };
        assert!(
            opt_prog.len() <= prog.len(),
            "{label}: optimizer grew the program ({} -> {} slots)",
            prog.len(),
            opt_prog.len()
        );
        if matches!(decoded, Err(ExecError::BudgetExhausted { .. })) {
            // The optimized stream executes fewer instructions, so it may
            // legitimately get further (finish, or reach a later trap)
            // under the same budget. Nothing more to compare.
            continue;
        }
        let diverged = || {
            format!(
                "{label}: decoded {decoded:?} vs {arm} {other:?} diverge\noriginal:\n{}optimized:\n{}",
                prog.disassemble(),
                opt_prog.disassemble()
            )
        };
        match (&decoded, &other) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.ret, b.ret, "{}", diverged());
                assert_eq!(a.trace_output, b.trace_output, "{}", diverged());
                assert!(
                    b.insns_executed <= a.insns_executed,
                    "{label}: {arm} executed more instructions ({} > {})\n{}",
                    b.insns_executed,
                    a.insns_executed,
                    diverged()
                );
                if let Some(cost) = cost_report(opt_prog) {
                    assert!(
                        b.insns_executed <= cost.max_insns,
                        "{label}: {arm} executed {} insns > optimized bound {}",
                        b.insns_executed,
                        cost.max_insns
                    );
                }
            }
            (Err(ea), Err(eb)) => {
                // Optimized code never executes more instructions, so it
                // cannot exhaust a budget the original survived to a trap.
                assert!(
                    !matches!(eb, ExecError::BudgetExhausted { .. }),
                    "{}",
                    diverged()
                );
                assert_eq!(*ea, remap_error(eb, &report.provenance), "{}", diverged());
            }
            _ => panic!("{}", diverged()),
        }
        assert_eq!(env_decoded, env_other, "{label}: {arm} helper env diverges");
        assert_eq!(
            format!("{maps_decoded:?}"),
            format!("{maps_other:?}"),
            "{label}: {arm} map state diverges\n{}",
            diverged()
        );
    }
}

/// A completely unconstrained instruction word, except that register
/// fields stay in `0..=10` (the interpreter's documented input
/// contract). Random code bytes hit undefined classes and opcodes,
/// `ld_dw` with missing hi slots, and every size/mode combination.
fn wild_insn(rng: &mut SimRng) -> Insn {
    Insn {
        code: gen::u64_in(rng, 0, 255) as u8,
        dst: gen::u64_in(rng, 0, 10) as u8,
        src: gen::u64_in(rng, 0, 10) as u8,
        off: gen::i64_in(rng, -24, 24) as i16,
        imm: gen::i32_in(rng, -4096, 4096),
    }
}

fn wild_program(rng: &mut SimRng) -> Program {
    let body = gen::usize_in(rng, 1, 16);
    let insns: Vec<Insn> = (0..body).map(|_| wild_insn(rng)).collect();
    // No trailing exit on purpose: falling off the end must be identical
    // too. (Many of these programs error on their first instruction.)
    Program::new("wild", insns)
}

fn random_ctx(rng: &mut SimRng) -> [u8; 64] {
    let mut ctx = [0u8; 64];
    for b in ctx.iter_mut() {
        *b = rng.next_u64() as u8;
    }
    ctx
}

fn random_env(rng: &mut SimRng) -> ExecEnv {
    ExecEnv {
        ktime_ns: rng.next_u64() >> 20,
        pid_tgid: rng.next_u64(),
        prandom_state: rng.next_u64() | 1,
    }
}

/// 2000 generated programs (five families, 400 each) execute identically
/// on all dispatchers, map traffic and helper state included.
#[test]
fn generated_programs_execute_identically() {
    let mut rng = SimRng::seed_from_u64(Config::default().seed ^ 0xDEC0DE);
    for i in 0..2000 {
        let mut base = MapRegistry::new();
        base.create("h", MapDef::hash(8, 8, 64));
        let vals = base.create("vals", MapDef::array(128, 1));
        let prog = match i % 5 {
            0 => fuzz_program(&mut rng, 24),
            1 => straightline_program(&mut rng),
            2 => valid_program(&mut rng, true),
            3 => bounded_offset_program(&mut rng, Some(vals)),
            _ => wild_program(&mut rng),
        };
        let ctx = random_ctx(&mut rng);
        let env = random_env(&mut rng);
        assert_dispatch_identical(&format!("generated[{i}]"), &prog, &ctx, &base, env, None);
    }
}

/// Seed-addressed fuzzing with shrinking: any diverging wild instruction
/// sequence shrinks to a minimal counterexample and prints a
/// `KSCOPE_TESTKIT_SEED` repro command. The generated value is the raw
/// `Vec<Insn>` (not the wrapped `Program`), so the harness's vector
/// shrinker can drop and simplify individual instructions.
#[test]
fn shrinking_fuzzer_finds_no_divergence() {
    check!(
        Config::cases(600),
        |rng: &mut SimRng| {
            let body = gen::usize_in(rng, 1, 16);
            let insns: Vec<Insn> = (0..body).map(|_| wild_insn(rng)).collect();
            let ctx = random_ctx(rng);
            let env = random_env(rng);
            (insns, ctx.to_vec(), env.ktime_ns, env.pid_tgid)
        },
        |(insns, ctx, ktime_ns, pid_tgid)| {
            let mut base = MapRegistry::new();
            base.create("h", MapDef::hash(8, 8, 64));
            base.create("vals", MapDef::array(128, 1));
            let prog = Program::new("shrunk", insns.clone());
            let env = ExecEnv {
                ktime_ns: *ktime_ns,
                pid_tgid: *pid_tgid,
                prandom_state: 1,
            };
            assert_dispatch_identical("shrinking-fuzzer", &prog, ctx, &base, env, None);
        },
    );
}

/// Directed corpus of JIT edge cases, each swept across tiny budgets so
/// exhaustion also lands mid-sequence. Every program is a known sharp
/// corner of the template JIT: immediate sign-extension boundaries,
/// 32-bit wraparound and zero-extension, fused `ld_dw` slots, div/mod by
/// zero in all width/operand forms, shift-count masking, and the
/// callee-saved register spill discipline around helper trampolines.
#[test]
fn directed_jit_edge_cases_execute_identically() {
    fn asm_or_panic(asm: Asm) -> Program {
        asm.assemble()
            .unwrap_or_else(|e| panic!("directed program must assemble: {e}"))
    }

    let corpus: Vec<(&str, Program)> = vec![
        (
            "imm-sign-extension",
            asm_or_panic(
                Asm::new("imm_sext")
                    .mov64_imm(0, -1)
                    .add64_imm(0, i32::MIN)
                    .insn(Insn::alu64_imm(OP_MUL, 0, -1))
                    .insn(Insn::alu32_imm(OP_MUL, 0, -1))
                    .and64_imm(0, i32::MIN)
                    .exit(),
            ),
        ),
        (
            "jmp-vs-jmp32-negative-imm",
            // r6 = 0xFFFF_FFFF: equals -1 under JMP32 (32-bit compare of
            // the truncated imm) but not under JMP (full 64-bit compare
            // of the sign-extended imm).
            asm_or_panic(
                Asm::new("jmp_widths")
                    .mov64_imm(0, 0)
                    .ld_dw(6, 0xFFFF_FFFF)
                    .insn(Insn::jmp32_imm(OP_JEQ, 6, -1, 1))
                    .exit()
                    .mov64_imm(0, 1)
                    .insn(Insn::jmp_imm(OP_JEQ, 6, -1, 1))
                    .exit()
                    .mov64_imm(0, 2)
                    .exit(),
            ),
        ),
        (
            "jmp32-ignores-high-bits",
            asm_or_panic(
                Asm::new("jmp32_high")
                    .mov64_imm(0, 0)
                    .ld_dw(6, 0xFFFF_FFFF_0000_0001)
                    .insn(Insn::jmp32_imm(OP_JEQ, 6, 1, 1))
                    .exit()
                    .mov64_imm(7, 1)
                    .insn(Insn::jmp32_reg(OP_JGT, 6, 7, 1))
                    .mov64_imm(0, 40)
                    .add64_imm(0, 2)
                    .exit(),
            ),
        ),
        (
            "alu32-wraparound",
            asm_or_panic(
                Asm::new("wrap32")
                    .insn(Insn::alu32_imm(OP_MOV, 6, -1)) // r6 = 0xFFFF_FFFF
                    .insn(Insn::alu32_imm(OP_ADD, 6, 1)) // wraps to 0
                    .mov64_imm(7, 0x7FFF_FFFF)
                    .insn(Insn::alu32_imm(OP_ADD, 7, 1)) // 0x8000_0000, zero-extended
                    .ld_dw(8, 0x1_0000_0001)
                    .insn(Insn::alu32_reg(OP_MUL, 8, 8)) // 32-bit square of 1
                    .mov64_reg(0, 6)
                    .add64_reg(0, 7)
                    .add64_reg(0, 8)
                    .exit(),
            ),
        ),
        (
            "neg-both-widths",
            asm_or_panic(
                Asm::new("negs")
                    .mov64_imm(6, 5)
                    .insn(Insn::alu64_imm(OP_NEG, 6, 0))
                    .mov64_imm(7, 5)
                    .insn(Insn::alu32_imm(OP_NEG, 7, 0))
                    .ld_dw(8, i64::MIN as u64)
                    .insn(Insn::alu64_imm(OP_NEG, 8, 0))
                    .mov64_reg(0, 6)
                    .add64_reg(0, 7)
                    .add64_reg(0, 8)
                    .exit(),
            ),
        ),
        (
            "jump-into-ld-dw-hi-slot",
            // `ja +1` lands on the hi slot of the following fused
            // `ld_dw`; the decoded stream and the JIT must fault exactly
            // like the raw interpreter does.
            (
                Program::new(
                    "ld_dw_hi_jump",
                    vec![
                        Insn::mov64_imm(0, 7),
                        Insn::ja(1),
                        Insn::ld_dw_lo(6, 0xAABB_CCDD_EEFF_0011),
                        Insn::ld_dw_hi(0xAABB_CCDD_EEFF_0011),
                        Insn::exit(),
                    ],
                )
            ),
        ),
        (
            "truncated-ld-dw",
            // Lone lo slot at the end of the program: MalformedLdDw on
            // every dispatcher, at the same executed-instruction count.
            Program::new(
                "ld_dw_truncated",
                vec![Insn::mov64_imm(0, 1), Insn::ld_dw_lo(6, 0x1234)],
            ),
        ),
        (
            "div-mod-by-zero-all-forms",
            asm_or_panic(
                Asm::new("divzero")
                    .ld_dw(6, 0x1_2345_6789) // dividend with live high bits
                    .mov64_imm(7, 0) // zero divisor register
                    .mov64_reg(8, 6)
                    .insn(Insn::alu64_reg(OP_DIV, 8, 7)) // 0
                    .mov64_reg(0, 6)
                    .insn(Insn::alu64_reg(OP_MOD, 0, 7)) // dividend
                    .add64_reg(0, 8)
                    .mov64_reg(8, 6)
                    .insn(Insn::alu32_reg(OP_DIV, 8, 7)) // 0
                    .add64_reg(0, 8)
                    .mov64_reg(8, 6)
                    .insn(Insn::alu32_reg(OP_MOD, 8, 7)) // dividend, truncated to 32 bits
                    .add64_reg(0, 8)
                    .mov64_reg(8, 6)
                    .insn(Insn::alu64_imm(OP_DIV, 8, 0)) // constant-zero immediate forms
                    .add64_reg(0, 8)
                    .mov64_reg(8, 6)
                    .insn(Insn::alu64_imm(OP_MOD, 8, 0))
                    .add64_reg(0, 8)
                    .mov64_reg(8, 6)
                    .insn(Insn::alu32_imm(OP_DIV, 8, 0))
                    .add64_reg(0, 8)
                    .mov64_reg(8, 6)
                    .insn(Insn::alu32_imm(OP_MOD, 8, 0))
                    .add64_reg(0, 8)
                    .exit(),
            ),
        ),
        (
            "nonzero-div-mod-signedness",
            // DIV/MOD are unsigned in eBPF; a dividend with the sign bit
            // set distinguishes `div` from `idiv` codegen.
            asm_or_panic(
                Asm::new("divsign")
                    .ld_dw(6, 0x8000_0000_0000_0007)
                    .mov64_imm(7, 3)
                    .mov64_reg(8, 6)
                    .insn(Insn::alu64_reg(OP_DIV, 8, 7))
                    .mov64_reg(0, 6)
                    .insn(Insn::alu64_reg(OP_MOD, 0, 7))
                    .add64_reg(0, 8)
                    .mov64_reg(8, 6)
                    .insn(Insn::alu32_reg(OP_DIV, 8, 7))
                    .add64_reg(0, 8)
                    .mov64_reg(8, 6)
                    .insn(Insn::alu32_imm(OP_MOD, 8, 3))
                    .add64_reg(0, 8)
                    .exit(),
            ),
        ),
        (
            "shift-count-masking",
            // Register shift counts mask to the operand width (&63 /
            // &31): 70 shifts a 64-bit value by 6, 33 shifts a 32-bit
            // value by 1, and a 32-bit shift by 0 still truncates.
            asm_or_panic(
                Asm::new("shiftmask")
                    .mov64_imm(6, 70)
                    .mov64_imm(7, 33)
                    .mov64_imm(8, 1)
                    .insn(Insn::alu64_reg(OP_LSH, 8, 6))
                    .ld_dw(0, 0x8000_0000_DEAD_BEEF)
                    .insn(Insn::alu32_reg(OP_RSH, 0, 7))
                    .add64_reg(0, 8)
                    .ld_dw(8, 0x8000_0000_0000_0000)
                    .insn(Insn::alu64_reg(OP_ARSH, 8, 7)) // arithmetic, by 33
                    .add64_reg(0, 8)
                    .insn(Insn::alu32_imm(OP_LSH, 0, 0)) // 32-bit shift by 0 still truncates
                    .exit(),
            ),
        ),
        (
            "jset-and-signed-compares",
            asm_or_panic(
                Asm::new("jset_signed")
                    .mov64_imm(0, 0)
                    .ld_dw(6, 0xF000_0000_0000_0001)
                    .insn(Insn::jmp_imm(OP_JSET, 6, 1, 1))
                    .exit()
                    .add64_imm(0, 1)
                    .insn(Insn::jmp_imm(OP_JSGT, 6, -1, 1)) // r6 is negative signed
                    .add64_imm(0, 2)
                    .mov64_imm(7, -3)
                    .insn(Insn::jmp_reg(OP_JSLT, 6, 7, 1))
                    .exit()
                    .add64_imm(0, 4)
                    .exit(),
            ),
        ),
        (
            "stack-store-load-all-sizes",
            asm_or_panic(
                Asm::new("stack_sizes")
                    .ld_dw(6, 0x1122_3344_5566_7788)
                    .store_reg(SZ_DW, 10, 6, -8)
                    .store_reg(SZ_W, 10, 6, -16)
                    .store_reg(SZ_H, 10, 6, -24)
                    .store_reg(SZ_B, 10, 6, -32)
                    .store_imm(SZ_DW, 10, -1, -40) // sign-extended imm store
                    .store_imm(SZ_B, 10, 0x7F, -48)
                    .load(SZ_DW, 0, 10, -8)
                    .load(SZ_W, 7, 10, -16) // zero-extends
                    .add64_reg(0, 7)
                    .load(SZ_H, 7, 10, -24)
                    .add64_reg(0, 7)
                    .load(SZ_B, 7, 10, -32)
                    .add64_reg(0, 7)
                    .load(SZ_DW, 7, 10, -40)
                    .add64_reg(0, 7)
                    .load(SZ_B, 7, 10, -48)
                    .add64_reg(0, 7)
                    .exit(),
            ),
        ),
        (
            "callee-saved-survive-helpers",
            // r6–r9 live in callee-saved x86 registers in the JIT; the
            // helper trampoline must spill and reload them (and r0 must
            // carry the helper's return, clobbering its previous value).
            asm_or_panic(
                Asm::new("helper_saves")
                    .mov64_imm(6, 11)
                    .mov64_imm(7, 22)
                    .mov64_imm(8, 33)
                    .mov64_imm(9, 44)
                    .call(Helper::KtimeGetNs)
                    .mov64_reg(1, 0)
                    .call(Helper::GetPrandomU32)
                    .mov64_reg(0, 6)
                    .add64_reg(0, 7)
                    .add64_reg(0, 8)
                    .add64_reg(0, 9)
                    .exit(),
            ),
        ),
        (
            "budget-exhaustion-mid-block",
            // A fused ld_dw (one executed instruction, two slots) between
            // plain ALU ops and a helper call: the budget sweep below
            // must exhaust before, on, and after each identically.
            asm_or_panic(
                Asm::new("budget_mid")
                    .mov64_imm(0, 1)
                    .add64_imm(0, 1)
                    .ld_dw(6, 0xFFFF_FFFF_FFFF_FFFF)
                    .add64_reg(0, 6)
                    .add64_imm(0, 1)
                    .call(Helper::GetCurrentPidTgid)
                    .mov64_imm(0, 9)
                    .exit(),
            ),
        ),
    ];

    let mut rng = SimRng::seed_from_u64(Config::default().seed ^ 0xD1EC7);
    for (name, prog) in &corpus {
        let ctx = random_ctx(&mut rng);
        let env = random_env(&mut rng);
        let base = MapRegistry::new();
        assert_dispatch_identical(&format!("directed[{name}]"), prog, &ctx, &base, env, None);
        // Sweep budgets 1..=len+1 so exhaustion lands on every slot
        // boundary, including mid-`ld_dw` and right at `exit`.
        for budget in 1..=(prog.len() as u64 + 1) {
            assert_dispatch_identical(
                &format!("directed[{name}@{budget}]"),
                prog,
                &ctx,
                &base,
                env,
                Some(budget),
            );
        }
    }
}

/// Budget exhaustion fires on the same instruction for all paths:
/// sweeping tiny budgets over the same programs, every `Ok`/`Err`
/// boundary lands identically (including `ld_dw` counting as one
/// executed instruction on every side).
#[test]
fn budget_exhaustion_is_identical() {
    let mut rng = SimRng::seed_from_u64(Config::default().seed ^ 0xB0D6E7);
    for i in 0..120 {
        let base = MapRegistry::new();
        let prog = match i % 3 {
            0 => fuzz_program(&mut rng, 16),
            1 => straightline_program(&mut rng),
            _ => wild_program(&mut rng),
        };
        let ctx = random_ctx(&mut rng);
        // Zero is rejected at construction; 1 is the smallest legal budget.
        for budget in [1u64, 2, 3, 5, 8, 13, 1_000] {
            assert_dispatch_identical(
                &format!("budget[{i}@{budget}]"),
                &prog,
                &ctx,
                &base,
                ExecEnv::default(),
                Some(budget),
            );
        }
    }
}

/// One program through every helper the VM implements: lookup miss,
/// update, lookup hit with a read through the returned slot, delete,
/// ktime, prandom, pid_tgid, printk (trace output), and ringbuf output.
#[test]
fn helper_surface_is_identical() {
    let mut base = MapRegistry::new();
    let hash = base.create("h", MapDef::hash(8, 8, 16));
    let ring = base.create("rb", MapDef::ring_buf(64, 8));

    let prog = Asm::new("helpers")
        // Key 0x1122334455667788 at stack[-8]; value at stack[-16].
        .ld_dw(6, 0x1122_3344_5566_7788)
        .store_reg(SZ_DW, 10, 6, -8)
        .ld_dw(6, 0xAABB_CCDD_EEFF_0011)
        .store_reg(SZ_DW, 10, 6, -16)
        // Miss: r0 = 0.
        .ld_map_fd(1, hash)
        .mov64_reg(2, 10)
        .add64_imm(2, -8)
        .call(Helper::MapLookupElem)
        // Insert, then hit and read back through the value slot.
        .ld_map_fd(1, hash)
        .mov64_reg(2, 10)
        .add64_imm(2, -8)
        .mov64_reg(3, 10)
        .add64_imm(3, -16)
        .mov64_imm(4, 0)
        .call(Helper::MapUpdateElem)
        .ld_map_fd(1, hash)
        .mov64_reg(2, 10)
        .add64_imm(2, -8)
        .call(Helper::MapLookupElem)
        .load(SZ_DW, 6, 0, 0)
        // Delete it again (returns 0), then the no-argument helpers.
        .ld_map_fd(1, hash)
        .mov64_reg(2, 10)
        .add64_imm(2, -8)
        .call(Helper::MapDeleteElem)
        .call(Helper::KtimeGetNs)
        .call(Helper::GetPrandomU32)
        .call(Helper::GetCurrentPidTgid)
        // printk of the 8 value bytes still on the stack.
        .mov64_reg(1, 10)
        .add64_imm(1, -16)
        .mov64_imm(2, 8)
        .call(Helper::TracePrintk)
        // ringbuf_output of the same bytes.
        .ld_map_fd(1, ring)
        .mov64_reg(2, 10)
        .add64_imm(2, -16)
        .mov64_imm(3, 8)
        .mov64_imm(4, 0)
        .call(Helper::RingbufOutput)
        .mov64_reg(0, 6)
        .exit()
        .assemble()
        .unwrap_or_else(|e| panic!("helper program must assemble: {e}"));

    #[cfg(target_arch = "x86_64")]
    assert!(
        kscope_ebpf::jit::is_compilable(&prog),
        "the helper-surface program must be JIT-compilable on x86-64"
    );

    for seed in 0..32u64 {
        let mut rng = SimRng::seed_from_u64(seed);
        let env = random_env(&mut rng);
        assert_dispatch_identical(&format!("helpers[{seed}]"), &prog, &[], &base, env, None);
    }
}

/// Every committed precision fixture runs identically on all paths, on
/// randomized context bytes. The fixtures are verified first, so the
/// value-tracking proofs attach and the default JIT arm executes with
/// bounds checks actually elided (the `jit-no-elide` arm keeps them in).
#[test]
fn fixture_probes_execute_identically() {
    const FIXTURES: &[(&str, &str)] = &[
        (
            "and_mask_stack",
            include_str!("fixtures/precision/and_mask_stack.bpf"),
        ),
        (
            "log2_bucket_map",
            include_str!("fixtures/precision/log2_bucket_map.bpf"),
        ),
        (
            "range_guard_byte",
            include_str!("fixtures/precision/range_guard_byte.bpf"),
        ),
        (
            "jset_aligned",
            include_str!("fixtures/precision/jset_aligned.bpf"),
        ),
        (
            "signed_window",
            include_str!("fixtures/precision/signed_window.bpf"),
        ),
        (
            "div_range_proof",
            include_str!("fixtures/precision/div_range_proof.bpf"),
        ),
    ];
    let mut rng = SimRng::seed_from_u64(Config::default().seed);
    for (name, text) in FIXTURES {
        let prog = parse_program(name, text)
            .unwrap_or_else(|e| panic!("fixture `{name}` failed to parse: {e}"));
        let mut base = MapRegistry::new();
        base.create("vals", MapDef::array(512, 1));
        Verifier::default()
            .verify(&prog, &base)
            .unwrap_or_else(|e| panic!("fixture `{name}` must verify: {e}"));
        assert!(
            prog.access_proofs().is_some(),
            "fixture `{name}`: verification must attach access proofs"
        );
        #[cfg(target_arch = "x86_64")]
        assert!(
            kscope_ebpf::jit::is_compilable(&prog),
            "fixture `{name}` must be JIT-compilable on x86-64"
        );
        for round in 0..8 {
            let ctx = random_ctx(&mut rng);
            let env = random_env(&mut rng);
            assert_dispatch_identical(&format!("{name}[{round}]"), &prog, &ctx, &base, env, None);
        }
    }
}

/// The real probe programs, run as a stateful stream: all dispatchers
/// process the same 400-event enter/exit sequence against their own
/// persistent registries, which must stay in lockstep throughout (the
/// `start` hash map carries state from enter to exit).
#[test]
fn backend_probe_programs_execute_identically() {
    let backend = BytecodeBackend::new(1200, SyscallProfile::data_caching(), 6)
        .unwrap_or_else(|e| panic!("generated probe programs must verify: {e}"));
    let (enter, exit) = backend.programs();
    #[cfg(target_arch = "x86_64")]
    for (which, prog) in [("enter", enter), ("exit", exit)] {
        assert!(
            kscope_ebpf::jit::is_compilable(prog),
            "the {which} probe program must be JIT-compilable on x86-64"
        );
    }
    let mut maps_decoded = backend.map_registry().clone();
    let mut maps_raw = backend.map_registry().clone();
    let mut maps_jit = backend.map_registry().clone();
    let mut vm_decoded = Vm::new();
    let mut vm_raw = Vm::new().with_raw_dispatch();
    let mut vm_jit = Vm::new().with_jit();

    let profile = SyscallProfile::data_caching();
    let send_no = profile.primary(kscope_syscalls::SyscallRole::Send).raw() as u64;
    let recv_no = profile.primary(kscope_syscalls::SyscallRole::Receive).raw() as u64;
    let poll_no = profile.primary(kscope_syscalls::SyscallRole::Poll).raw() as u64;
    let wrong_no = SyscallNo::FUTEX.raw() as u64;

    let mut rng = SimRng::seed_from_u64(Config::default().seed ^ 0x9205E);
    for i in 0..400u64 {
        let (no, is_enter) = match i % 8 {
            0 => (poll_no, true),
            1 => (poll_no, false),
            2..=4 => (send_no, false),
            5 => (recv_no, false),
            6 => (wrong_no, false),
            // Same stream shape from a non-observed process below.
            _ => (send_no, false),
        };
        let observed = i % 8 != 7;
        let mut ctx = [0u8; 16];
        ctx[..8].copy_from_slice(&no.to_le_bytes());
        ctx[8..16].copy_from_slice(&(gen::u64_in(&mut rng, 1, 4096)).to_le_bytes());
        let env = ExecEnv {
            ktime_ns: 5_000 * (i + 1),
            pid_tgid: if observed {
                pid_tgid(1200, 1201)
            } else {
                pid_tgid(4242, 4243)
            },
            ..ExecEnv::default()
        };
        let prog = if is_enter { enter } else { exit };

        let mut env_decoded = env;
        let mut env_raw = env;
        let mut env_jit = env;
        let decoded = vm_decoded.execute(prog, &ctx, &mut maps_decoded, &mut env_decoded);
        let raw = vm_raw.execute(prog, &ctx, &mut maps_raw, &mut env_raw);
        let jit = vm_jit.execute(prog, &ctx, &mut maps_jit, &mut env_jit);
        assert_eq!(decoded, raw, "event {i}: decoded vs raw probe outcomes diverge");
        assert_eq!(decoded, jit, "event {i}: decoded vs jit probe outcomes diverge");
        assert_eq!(env_decoded, env_raw, "event {i}: decoded vs raw probe env diverges");
        assert_eq!(env_decoded, env_jit, "event {i}: decoded vs jit probe env diverges");
    }
    assert_eq!(
        format!("{maps_decoded:?}"),
        format!("{maps_raw:?}"),
        "raw probe map state diverges after the stream"
    );
    assert_eq!(
        format!("{maps_decoded:?}"),
        format!("{maps_jit:?}"),
        "jit probe map state diverges after the stream"
    );
}

/// The netstack ingress probe pair, run as a stateful stream: every
/// dispatcher processes the same 400-event `net_rx`/`sock_drain`
/// sequence (matched pairs, drains with no recorded arrival, duplicate
/// arrivals overwriting the inflight slot) against its own persistent
/// registry, and the in-probe time-in-stack histogram states must stay
/// in lockstep throughout.
#[test]
fn netstack_probe_programs_execute_identically() {
    let backend = BytecodeBackend::new(1200, SyscallProfile::data_caching(), 6)
        .and_then(BytecodeBackend::with_netstack)
        .unwrap_or_else(|e| panic!("netstack probe programs must verify: {e}"));
    let Some((rx, drain)) = backend.net_programs() else {
        panic!("with_netstack must attach the net program pair");
    };
    #[cfg(target_arch = "x86_64")]
    for (which, prog) in [("net_rx", rx), ("sock_drain", drain)] {
        assert!(
            kscope_ebpf::jit::is_compilable(prog),
            "the {which} probe program must be JIT-compilable on x86-64"
        );
    }
    let mut maps_decoded = backend.map_registry().clone();
    let mut maps_raw = backend.map_registry().clone();
    let mut maps_jit = backend.map_registry().clone();
    let mut vm_decoded = Vm::new();
    let mut vm_raw = Vm::new().with_raw_dispatch();
    let mut vm_jit = Vm::new().with_jit();

    let mut rng = SimRng::seed_from_u64(Config::default().seed ^ 0x7E7_57ACC);
    for i in 0..400u64 {
        // A mix of matched pairs, orphan drains (no recorded arrival),
        // and duplicate arrivals for the same request token.
        let (is_rx, request) = match i % 8 {
            0 => (true, i),
            1 => (false, i - 1),          // matched drain
            2 => (true, i),
            3 => (true, i - 1),           // duplicate arrival, new token
            4 => (false, i - 1),          // drains the overwrite
            5 => (false, i + 10_000),     // orphan drain: inflight miss
            6 => (true, i),
            _ => (false, i - 1),          // matched drain
        };
        let stage_ns = gen::u64_in(&mut rng, 0, 2_000_000);
        let arg = gen::u64_in(&mut rng, 0, 9_000);
        let mut ctx = [0u8; 24];
        ctx[..8].copy_from_slice(&request.to_le_bytes());
        ctx[8..16].copy_from_slice(&stage_ns.to_le_bytes());
        ctx[16..24].copy_from_slice(&arg.to_le_bytes());
        let env = ExecEnv {
            ktime_ns: 3_000 * (i + 1),
            pid_tgid: pid_tgid(1200, 1201),
            ..ExecEnv::default()
        };
        let prog = if is_rx { rx } else { drain };

        let mut env_decoded = env;
        let mut env_raw = env;
        let mut env_jit = env;
        let decoded = vm_decoded.execute(prog, &ctx, &mut maps_decoded, &mut env_decoded);
        let raw = vm_raw.execute(prog, &ctx, &mut maps_raw, &mut env_raw);
        let jit = vm_jit.execute(prog, &ctx, &mut maps_jit, &mut env_jit);
        assert_eq!(decoded, raw, "event {i}: decoded vs raw net outcomes diverge");
        assert_eq!(decoded, jit, "event {i}: decoded vs jit net outcomes diverge");
        assert_eq!(env_decoded, env_raw, "event {i}: decoded vs raw net env diverges");
        assert_eq!(env_decoded, env_jit, "event {i}: decoded vs jit net env diverges");
    }
    assert_eq!(
        format!("{maps_decoded:?}"),
        format!("{maps_raw:?}"),
        "raw netstack map state diverges after the stream"
    );
    assert_eq!(
        format!("{maps_decoded:?}"),
        format!("{maps_jit:?}"),
        "jit netstack map state diverges after the stream"
    );
}
