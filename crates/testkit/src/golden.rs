//! Golden-trace regression support.
//!
//! Fixtures are committed as plain text so review diffs show exactly what
//! an estimator is expected to produce. Two file formats:
//!
//! **Trace files** (`*.trace`) — one tracepoint firing per line, in
//! chronological order, exactly the fields a probe attached to
//! `raw_syscalls:sys_enter`/`sys_exit` can read:
//!
//! ```text
//! # phase syscall tgid tid ktime_ns ret
//! enter epoll_wait 1200 1201 100000 0
//! exit  epoll_wait 1200 1201 400000 1
//! exit  sendmsg    1200 1201 500000 64
//! ```
//!
//! **Expectation files** (`*.expected`) — `key = value ~ tolerance`
//! lines; the tolerance is absolute and mandatory, so every golden
//! comparison states how much drift it accepts:
//!
//! ```text
//! rps_obsv = 1000.0 ~ 0.5
//! var_send = 0.0    ~ 1e-3
//! ```
//!
//! [`Expectations::check`] panics with the fixture key, both values, and
//! the tolerance, so a red test names the drifted metric directly.

use std::collections::BTreeMap;

use kscope_simcore::Nanos;
use kscope_syscalls::{pid_tgid, NetCtx, SyscallNo, TracePhase, TracepointCtx};

/// A malformed fixture line.
#[derive(Debug, Clone, PartialEq)]
pub struct GoldenError {
    /// 1-based line number in the fixture text.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for GoldenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fixture line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for GoldenError {}

fn gerr(line: usize, message: impl Into<String>) -> GoldenError {
    GoldenError {
        line,
        message: message.into(),
    }
}

/// Strips comments (`#` to end of line) and surrounding whitespace;
/// returns `None` for blank lines.
fn significant(line: &str) -> Option<&str> {
    let line = match line.find('#') {
        Some(pos) => &line[..pos],
        None => line,
    };
    let line = line.trim();
    if line.is_empty() {
        None
    } else {
        Some(line)
    }
}

/// Parses a trace fixture into tracepoint firings, in file order.
///
/// # Errors
///
/// Returns a [`GoldenError`] naming the offending line for unknown
/// phases or syscall names, missing fields, or unparsable numbers.
///
/// # Examples
///
/// ```
/// use kscope_testkit::golden::parse_trace;
///
/// let ctxs = parse_trace("exit sendmsg 1200 1201 500000 64").unwrap();
/// assert_eq!(ctxs.len(), 1);
/// assert_eq!(ctxs[0].tgid(), 1200);
/// ```
pub fn parse_trace(text: &str) -> Result<Vec<TracepointCtx>, GoldenError> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let Some(line) = significant(raw) else {
            continue;
        };
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 6 {
            return Err(gerr(
                line_no,
                format!("expected 6 fields (phase syscall tgid tid ktime ret), got {}", fields.len()),
            ));
        }
        let phase = match fields[0] {
            "enter" => TracePhase::Enter,
            "exit" => TracePhase::Exit,
            other => return Err(gerr(line_no, format!("unknown phase `{other}`"))),
        };
        let no = SyscallNo::from_name(fields[1])
            .ok_or_else(|| gerr(line_no, format!("unknown syscall `{}`", fields[1])))?;
        let tgid: u32 = fields[2]
            .parse()
            .map_err(|_| gerr(line_no, format!("bad tgid `{}`", fields[2])))?;
        let tid: u32 = fields[3]
            .parse()
            .map_err(|_| gerr(line_no, format!("bad tid `{}`", fields[3])))?;
        let ktime: u64 = fields[4]
            .parse()
            .map_err(|_| gerr(line_no, format!("bad ktime `{}`", fields[4])))?;
        let ret: i64 = fields[5]
            .parse()
            .map_err(|_| gerr(line_no, format!("bad ret `{}`", fields[5])))?;
        out.push(TracepointCtx {
            phase,
            no,
            pid_tgid: pid_tgid(tgid, tid),
            ktime: Nanos::from_nanos(ktime),
            ret,
            net: NetCtx::NONE,
        });
    }
    Ok(out)
}

/// One expected value with its explicit absolute tolerance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Expected {
    /// The golden value.
    pub value: f64,
    /// Maximum absolute deviation the comparison accepts.
    pub tolerance: f64,
}

/// A parsed expectation fixture: named golden values with tolerances.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Expectations {
    entries: BTreeMap<String, Expected>,
}

impl Expectations {
    /// Parses `key = value ~ tolerance` lines.
    ///
    /// # Errors
    ///
    /// Returns a [`GoldenError`] for syntax errors, duplicate keys,
    /// unparsable numbers, or negative tolerances.
    ///
    /// # Examples
    ///
    /// ```
    /// use kscope_testkit::golden::Expectations;
    ///
    /// let exp = Expectations::parse("rps = 1000.0 ~ 0.5").unwrap();
    /// exp.check("rps", 1000.2);
    /// ```
    pub fn parse(text: &str) -> Result<Expectations, GoldenError> {
        let mut entries = BTreeMap::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let Some(line) = significant(raw) else {
                continue;
            };
            let (key, rest) = line
                .split_once('=')
                .ok_or_else(|| gerr(line_no, "expected `key = value ~ tolerance`"))?;
            let (value_str, tol_str) = rest
                .split_once('~')
                .ok_or_else(|| gerr(line_no, "missing `~ tolerance` (tolerances are mandatory)"))?;
            let key = key.trim().to_string();
            let value: f64 = value_str
                .trim()
                .parse()
                .map_err(|_| gerr(line_no, format!("bad value `{}`", value_str.trim())))?;
            let tolerance: f64 = tol_str
                .trim()
                .parse()
                .map_err(|_| gerr(line_no, format!("bad tolerance `{}`", tol_str.trim())))?;
            if tolerance.is_nan() || tolerance < 0.0 {
                return Err(gerr(line_no, "tolerance must be non-negative"));
            }
            if entries
                .insert(key.clone(), Expected { value, tolerance })
                .is_some()
            {
                return Err(gerr(line_no, format!("key `{key}` defined twice")));
            }
        }
        Ok(Expectations { entries })
    }

    /// The expectation stored under `key`, if any.
    pub fn get(&self, key: &str) -> Option<Expected> {
        self.entries.get(key).copied()
    }

    /// All keys, in sorted order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Asserts `actual` is within the committed tolerance of `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key` is absent from the fixture, or if the deviation
    /// exceeds the tolerance — naming the key, both values, and the
    /// allowed drift.
    #[track_caller]
    pub fn check(&self, key: &str, actual: f64) {
        let expected = self
            .entries
            .get(key)
            .unwrap_or_else(|| panic!("fixture has no expectation for `{key}`"));
        let deviation = (actual - expected.value).abs();
        assert!(
            deviation <= expected.tolerance,
            "golden drift on `{key}`: expected {} (±{}), got {} (off by {})",
            expected.value,
            expected.tolerance,
            actual,
            deviation,
        );
    }

    /// Like [`Expectations::check`] for `Option<f64>` estimator outputs:
    /// the fixture value `nan` asserts the estimator produced `None`;
    /// any other value asserts `Some` within tolerance.
    #[track_caller]
    pub fn check_opt(&self, key: &str, actual: Option<f64>) {
        let expected = self
            .entries
            .get(key)
            .unwrap_or_else(|| panic!("fixture has no expectation for `{key}`"));
        match (expected.value.is_nan(), actual) {
            (true, None) => {}
            (true, Some(got)) => panic!("`{key}`: expected None, estimator produced {got}"),
            (false, None) => panic!(
                "`{key}`: expected {} (±{}), estimator produced None",
                expected.value, expected.tolerance
            ),
            (false, Some(got)) => self.check(key, got),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_lines_parse_with_comments() {
        let text = "\n# header\nenter epoll_wait 1200 1201 100000 0 # inline\nexit sendmsg 1200 1202 500000 64\n";
        let ctxs = parse_trace(text).unwrap();
        assert_eq!(ctxs.len(), 2);
        assert_eq!(ctxs[0].phase, TracePhase::Enter);
        assert_eq!(ctxs[0].no, SyscallNo::EPOLL_WAIT);
        assert_eq!(ctxs[1].tid(), 1202);
        assert_eq!(ctxs[1].ret, 64);
        assert_eq!(ctxs[1].ktime, Nanos::from_nanos(500_000));
    }

    #[test]
    fn trace_errors_carry_line_numbers() {
        let err = parse_trace("exit sendmsg 1200 1201 500000 64\nexit nosuchcall 1 2 3 4").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("nosuchcall"));
    }

    #[test]
    fn trace_rejects_wrong_arity() {
        let err = parse_trace("exit sendmsg 1200").unwrap_err();
        assert!(err.message.contains("6 fields"));
    }

    #[test]
    fn expectations_parse_and_check() {
        let exp = Expectations::parse("rps = 1000.0 ~ 0.5\nvar = 2.5e3 ~ 1.0").unwrap();
        exp.check("rps", 1000.4);
        exp.check("var", 2500.9);
        assert_eq!(exp.keys().collect::<Vec<_>>(), vec!["rps", "var"]);
    }

    #[test]
    #[should_panic(expected = "golden drift on `rps`")]
    fn drift_panics_with_the_key() {
        let exp = Expectations::parse("rps = 1000.0 ~ 0.5").unwrap();
        exp.check("rps", 1001.0);
    }

    #[test]
    fn nan_means_none() {
        let exp = Expectations::parse("thin = nan ~ 0").unwrap();
        exp.check_opt("thin", None);
    }

    #[test]
    #[should_panic(expected = "expected None")]
    fn nan_rejects_some() {
        let exp = Expectations::parse("thin = nan ~ 0").unwrap();
        exp.check_opt("thin", Some(3.0));
    }

    #[test]
    fn missing_tolerance_is_an_error() {
        assert!(Expectations::parse("rps = 1000.0").is_err());
        assert!(Expectations::parse("rps = 1000.0 ~ -1").is_err());
    }
}
