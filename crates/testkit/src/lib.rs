//! # kscope-testkit
//!
//! A zero-dependency, fully deterministic verification toolkit for the
//! kscope workspace. The paper's central claim — that syscall-stream
//! estimators faithfully reconstruct request-level metrics — is only
//! reproducible if the simulated kernel, the eBPF VM, and the estimators
//! are themselves verified, and that verification must run in an offline
//! build environment with no external crates. This crate provides the
//! three layers that make it possible:
//!
//! 1. **Property testing** ([`prop`], [`shrink`], [`gen`]): a seeded
//!    harness built on [`kscope_simcore::SimRng`]. Generators are plain
//!    closures over the deterministic RNG; failures shrink to a minimal
//!    counterexample and print a one-line environment-variable repro
//!    command (`KSCOPE_TESTKIT_SEED=… cargo test …`).
//! 2. **Differential fuzzing of the eBPF stack** ([`ebpf_gen`]):
//!    generators for random instruction words, random whole programs, and
//!    random *verifier-friendly* programs authored through
//!    [`kscope_ebpf::asm::Asm`], plus an independent straight-line
//!    reference evaluator the interpreter is compared against.
//! 3. **Golden-trace regression** ([`golden`]): parsers for the committed
//!    fixture syscall traces and their expected estimator outputs, with
//!    explicit tolerances, so silent drift in the Eq. 1 / Eq. 2 /
//!    poll-slack pipelines turns a test red.
//!
//! Everything is seed-addressed: the same seed always produces the same
//! generated values, the same programs, and the same verdicts.
//!
//! # Examples
//!
//! ```
//! use kscope_simcore::SimRng;
//! use kscope_testkit::prop::Config;
//!
//! kscope_testkit::check!(Config::cases(64), |rng: &mut SimRng| {
//!     (rng.next_below(100), rng.next_below(100))
//! }, |&(a, b)| {
//!     assert_eq!(a + b, b + a);
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ebpf_gen;
pub mod gen;
pub mod golden;
pub mod prop;
pub mod shrink;

pub use prop::{Config, TestkitFailure};
pub use shrink::Shrink;
