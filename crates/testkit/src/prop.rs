//! The seeded property-test runner.
//!
//! A property is an ordinary closure that asserts; a generator is an
//! ordinary closure over [`SimRng`]. The runner derives one RNG per case
//! from a base seed, so every failure is addressable by a single `u64`:
//! re-exporting that seed through the `KSCOPE_TESTKIT_SEED` environment
//! variable replays the failing case as case 0 of the next run.
//!
//! Environment overrides:
//!
//! * `KSCOPE_TESTKIT_SEED` — base seed (decimal or `0x…` hex). The failing
//!   case's own seed is printed on failure; exporting it reproduces the
//!   failure deterministically.
//! * `KSCOPE_TESTKIT_CASES` — overrides the number of cases, e.g. `1` to
//!   run only the replayed case.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use kscope_simcore::SimRng;

use crate::shrink::Shrink;

/// Default base seed. Arbitrary but fixed: default runs are deterministic
/// across machines and across time.
// The grouping spells "seed of call-able"; keep it readable as words.
#[allow(clippy::unusual_byte_groupings)]
pub const DEFAULT_SEED: u64 = 0x5eed_0f_ca11_ab1e;

/// Runner configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Number of generated cases.
    pub cases: u32,
    /// Base seed from which every case seed is derived.
    pub seed: u64,
    /// Hard cap on property evaluations spent shrinking a failure.
    pub max_shrink_steps: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            seed: DEFAULT_SEED,
            max_shrink_steps: 2048,
        }
    }
}

impl Config {
    /// A config running `cases` cases with the default seed.
    pub fn cases(cases: u32) -> Config {
        Config {
            cases,
            ..Config::default()
        }
    }

    /// Replaces the base seed.
    pub fn with_seed(self, seed: u64) -> Config {
        Config { seed, ..self }
    }

    /// Applies the `KSCOPE_TESTKIT_SEED` / `KSCOPE_TESTKIT_CASES`
    /// environment overrides.
    fn with_env_overrides(self) -> Config {
        let mut cfg = self;
        if let Some(seed) = env_u64("KSCOPE_TESTKIT_SEED") {
            cfg.seed = seed;
        }
        if let Some(cases) = env_u64("KSCOPE_TESTKIT_CASES") {
            cfg.cases = cases.min(u32::MAX as u64) as u32;
        }
        cfg
    }
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{name} must be a u64 (decimal or 0x-hex), got `{raw}`"),
    }
}

/// SplitMix64 — the same stream-derivation mix `SimRng` seeds through, so
/// case seeds are statistically independent of each other.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seed of case `index` under base seed `base`.
///
/// Case 0 uses the base seed itself, so exporting a failing case's seed via
/// `KSCOPE_TESTKIT_SEED` replays it as the first case of the next run.
pub fn case_seed(base: u64, index: u32) -> u64 {
    if index == 0 {
        return base;
    }
    let mut state = base ^ (index as u64).wrapping_mul(0xA24B_AED4_963E_E407);
    splitmix64(&mut state)
}

/// A property failure, fully described.
///
/// [`run_result`] returns this; [`run`] panics with its [`fmt::Display`]
/// rendering, which includes the one-line repro command.
#[derive(Debug, Clone)]
pub struct TestkitFailure {
    /// Package the property lives in (for the repro command).
    pub package: String,
    /// Fully qualified property name.
    pub property: String,
    /// Index of the failing case.
    pub case_index: u32,
    /// Seed that regenerates the failing input.
    pub case_seed: u64,
    /// Debug rendering of the originally generated counterexample.
    pub original: String,
    /// Debug rendering of the shrunk counterexample.
    pub shrunk: String,
    /// Number of successful shrink steps applied.
    pub shrink_steps: u32,
    /// Panic message of the (shrunk) failing evaluation.
    pub message: String,
}

impl TestkitFailure {
    /// The one-line command that replays this failure.
    pub fn repro_command(&self) -> String {
        let short = self.property.rsplit("::").next().unwrap_or(&self.property);
        format!(
            "KSCOPE_TESTKIT_SEED={:#x} KSCOPE_TESTKIT_CASES=1 cargo test -p {} {}",
            self.case_seed, self.package, short
        )
    }
}

impl fmt::Display for TestkitFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "property `{}` failed at case {} (seed {:#x})",
            self.property, self.case_index, self.case_seed
        )?;
        writeln!(f, "  shrunk counterexample ({} steps): {}", self.shrink_steps, self.shrunk)?;
        if self.shrunk != self.original {
            writeln!(f, "  original counterexample: {}", self.original)?;
        }
        writeln!(f, "  failure: {}", self.message)?;
        write!(f, "  repro: {}", self.repro_command())
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs `property` against `cases` generated inputs; panics with a full
/// report (counterexample, shrink trail, repro command) on failure.
///
/// Prefer the [`check!`](crate::check) macro, which fills in the package
/// and property names automatically.
pub fn run<T, G, P>(package: &str, property: &str, config: Config, generate: G, prop: P)
where
    T: Shrink + fmt::Debug,
    G: FnMut(&mut SimRng) -> T,
    P: Fn(&T),
{
    if let Err(failure) = run_result(package, property, config, generate, prop) {
        panic!("{failure}");
    }
}

/// [`run`], but returning the failure instead of panicking. Used by the
/// harness's own tests; ordinary tests should use [`check!`](crate::check).
// The failure carries the full shrunk-case report; it exists only on the
// already-failed path, so its size is irrelevant.
#[allow(clippy::result_large_err)]
pub fn run_result<T, G, P>(
    package: &str,
    property: &str,
    config: Config,
    mut generate: G,
    prop: P,
) -> Result<(), TestkitFailure>
where
    T: Shrink + fmt::Debug,
    G: FnMut(&mut SimRng) -> T,
    P: Fn(&T),
{
    let config = config.with_env_overrides();
    let evaluate = |value: &T| -> Result<(), String> {
        catch_unwind(AssertUnwindSafe(|| prop(value))).map_err(panic_message)
    };

    for index in 0..config.cases {
        let seed = case_seed(config.seed, index);
        let mut rng = SimRng::seed_from_u64(seed);
        let value = generate(&mut rng);
        let Err(first_message) = evaluate(&value) else {
            continue;
        };

        // Greedy shrink: take the first candidate that still fails,
        // restart from it, stop when no candidate fails or the budget is
        // exhausted.
        let mut current = value.clone();
        let mut message = first_message;
        let mut steps = 0u32;
        let mut budget = config.max_shrink_steps;
        'shrinking: while budget > 0 {
            for candidate in current.shrink() {
                if budget == 0 {
                    break 'shrinking;
                }
                budget -= 1;
                if let Err(m) = evaluate(&candidate) {
                    current = candidate;
                    message = m;
                    steps += 1;
                    continue 'shrinking;
                }
            }
            break;
        }

        return Err(TestkitFailure {
            package: package.to_string(),
            property: property.to_string(),
            case_index: index,
            case_seed: seed,
            original: format!("{value:?}"),
            shrunk: format!("{current:?}"),
            shrink_steps: steps,
            message,
        });
    }
    Ok(())
}

/// Checks a property: `check!(config, generator, property)`.
///
/// The generator is `FnMut(&mut SimRng) -> T`; the property is `Fn(&T)`
/// and signals failure by panicking (any `assert!` works). Package and
/// property names for the repro command are captured automatically.
///
/// # Examples
///
/// ```
/// use kscope_simcore::SimRng;
/// use kscope_testkit::prop::Config;
///
/// kscope_testkit::check!(Config::cases(32), |rng: &mut SimRng| {
///     rng.next_below(1000)
/// }, |&x| {
///     assert!(x < 1000);
/// });
/// ```
#[macro_export]
macro_rules! check {
    ($config:expr, $generate:expr, $prop:expr $(,)?) => {{
        fn __testkit_anchor() {}
        let full = ::std::any::type_name_of_val(&__testkit_anchor);
        let name = full.strip_suffix("::__testkit_anchor").unwrap_or(full);
        $crate::prop::run(env!("CARGO_PKG_NAME"), name, $config, $generate, $prop)
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_returns_ok() {
        let r = run_result("p", "t", Config::cases(50), |rng| rng.next_below(10), |&x| {
            assert!(x < 10);
        });
        assert!(r.is_ok());
    }

    #[test]
    fn failure_shrinks_to_minimal_vector() {
        // Property: no vector sums past 1000. Minimal counterexample is a
        // single large element (or a small set summing just past it).
        let failure = run_result(
            "p",
            "t",
            Config::cases(200),
            |rng| {
                let n = rng.next_range(0, 20) as usize;
                (0..n).map(|_| rng.next_below(400)).collect::<Vec<u64>>()
            },
            |xs| {
                assert!(xs.iter().sum::<u64>() <= 1000, "sum too large");
            },
        )
        .expect_err("property must fail");
        let shrunk: Vec<u64> = failure
            .shrunk
            .trim_matches(['[', ']'])
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| s.trim().parse().unwrap())
            .collect();
        let sum: u64 = shrunk.iter().sum();
        assert!(sum > 1000, "shrunk value must still fail (sum {sum})");
        // Greedy shrinking must reach a local minimum: removing any single
        // element makes the property pass.
        for (i, &element) in shrunk.iter().enumerate() {
            let without: u64 = sum - element;
            assert!(without <= 1000, "not minimal: dropping index {i} still fails");
        }
    }

    #[test]
    fn case_zero_uses_base_seed() {
        assert_eq!(case_seed(42, 0), 42);
        assert_ne!(case_seed(42, 1), case_seed(42, 2));
    }

    #[test]
    fn same_seed_same_counterexample() {
        let gen = |rng: &mut SimRng| rng.next_u64();
        let prop = |&x: &u64| assert!(x % 2 == 0, "odd");
        let a = run_result("p", "t", Config::cases(64), gen, prop).expect_err("must fail");
        let b = run_result("p", "t", Config::cases(64), gen, prop).expect_err("must fail");
        assert_eq!(a.case_seed, b.case_seed);
        assert_eq!(a.shrunk, b.shrunk);
    }

    #[test]
    fn repro_command_is_one_line() {
        let f = TestkitFailure {
            package: "kscope-ebpf".into(),
            property: "props::round_trip".into(),
            case_index: 3,
            case_seed: 0xABCD,
            original: "x".into(),
            shrunk: "y".into(),
            shrink_steps: 1,
            message: "boom".into(),
        };
        let cmd = f.repro_command();
        assert!(!cmd.contains('\n'));
        assert!(cmd.contains("KSCOPE_TESTKIT_SEED=0xabcd"));
        assert!(cmd.contains("-p kscope-ebpf"));
        assert!(cmd.contains("round_trip"));
    }

    #[test]
    fn failure_display_contains_repro() {
        let failure = run_result(
            "pkg",
            "mod::prop_name",
            Config::cases(8),
            |rng| rng.next_below(5),
            |_| panic!("always fails"),
        )
        .expect_err("must fail");
        let text = failure.to_string();
        assert!(text.contains("KSCOPE_TESTKIT_SEED="));
        assert!(text.contains("always fails"));
        assert!(text.contains("prop_name"));
    }
}
