//! Program generators and a reference evaluator for differential
//! fuzzing of the eBPF stack.
//!
//! Three generator tiers, in increasing order of validity:
//!
//! * [`arb_insn`] — arbitrary (usually malformed) instruction words. The
//!   verifier must never panic on them, and anything it accepts must run
//!   clean in the interpreter.
//! * [`fuzz_program`] — an `arb_insn` body wrapped so `exit` is
//!   reachable-legal (`r0` seeded, trailing `exit`).
//! * [`valid_program`] / [`straightline_program`] — programs authored
//!   through [`kscope_ebpf::asm::Asm`] that the verifier accepts with
//!   high probability, used for interpreter/text-format differentials.
//!
//! [`reference_eval`] is an independent straight-line evaluator written
//! directly from the eBPF instruction-set semantics (wrapping arithmetic,
//! division by zero yields zero, modulo by zero leaves the destination,
//! shift counts masked to the operand width). It deliberately shares no
//! code with `kscope_ebpf::interp`, so agreement between the two is
//! evidence rather than tautology.

use kscope_ebpf::asm::Asm;
use kscope_ebpf::insn::{
    Insn, Reg, CLS_ALU, CLS_ALU64, CLS_JMP, CLS_JMP32, CLS_LD, CLS_LDX, CLS_ST, CLS_STX,
    MODE_IMM, MODE_MEM, OP_ADD, OP_AND, OP_ARSH, OP_DIV, OP_EXIT, OP_JA, OP_JEQ, OP_JGE, OP_JGT,
    OP_JLE, OP_JLT, OP_JNE, OP_JSET, OP_JSGE, OP_JSGT, OP_JSLE, OP_JSLT, OP_LSH, OP_MOD, OP_MOV,
    OP_MUL, OP_NEG, OP_OR, OP_RSH, OP_SUB, OP_XOR, SRC_K, SRC_X, SZ_B, SZ_DW, SZ_H, SZ_W,
};
use kscope_ebpf::maps::MapFd;
use kscope_ebpf::Helper;
use kscope_ebpf::Program;
use kscope_simcore::SimRng;

use crate::gen;
use crate::shrink::Shrink;

/// All ALU operation codes.
pub const ALU_OPS: [u8; 13] = [
    OP_ADD, OP_SUB, OP_MUL, OP_DIV, OP_OR, OP_AND, OP_LSH, OP_RSH, OP_NEG, OP_MOD, OP_XOR,
    OP_MOV, OP_ARSH,
];

/// All conditional jump operation codes.
pub const JMP_OPS: [u8; 11] = [
    OP_JEQ, OP_JGT, OP_JGE, OP_JSET, OP_JNE, OP_JSGT, OP_JSGE, OP_JLT, OP_JLE, OP_JSLT, OP_JSLE,
];

/// All load/store size codes.
pub const SIZES: [u8; 4] = [SZ_B, SZ_H, SZ_W, SZ_DW];

/// A random ALU operation code.
pub fn arb_alu_op(rng: &mut SimRng) -> u8 {
    gen::pick(rng, &ALU_OPS)
}

/// A random conditional jump operation code.
pub fn arb_jmp_op(rng: &mut SimRng) -> u8 {
    gen::pick(rng, &JMP_OPS)
}

/// A random load/store size code.
pub fn arb_size(rng: &mut SimRng) -> u8 {
    gen::pick(rng, &SIZES)
}

/// A random (usually invalid) instruction.
///
/// Port of the workspace's original proptest strategy: a class selector
/// steers toward ALU, jump, and memory encodings with plausible register
/// numbers and small offsets/immediates, which exercises the verifier's
/// rejection paths far more densely than uniform 64-bit words would.
pub fn arb_insn(rng: &mut SimRng) -> Insn {
    let class = gen::u64_in(rng, 0, 7) as u8;
    let dst = gen::u64_in(rng, 0, 10) as u8;
    let src = gen::u64_in(rng, 0, 10) as u8;
    let off = gen::i64_in(rng, -16, 15) as i16;
    let imm = gen::i32_in(rng, -1000, 999);
    let alu = arb_alu_op(rng);
    let jmp = arb_jmp_op(rng);
    let size = arb_size(rng);
    let use_reg = gen::bool_any(rng);
    let srcbit = if use_reg { SRC_X } else { SRC_K };
    let code = match class {
        0 | 1 => CLS_ALU64 | alu | srcbit,
        2 => CLS_ALU | alu | srcbit,
        3 => {
            if use_reg {
                CLS_JMP32 | jmp | srcbit
            } else {
                CLS_JMP | jmp | srcbit
            }
        }
        4 => CLS_JMP | OP_JA,
        5 => CLS_LDX | size | MODE_MEM,
        6 => CLS_STX | size | MODE_MEM,
        _ => CLS_ST | size | MODE_MEM,
    };
    Insn {
        code,
        dst,
        src,
        off,
        imm,
    }
}

/// A random program with a legal prologue/epilogue: `r0` is seeded so
/// `exit` is reachable-legal, the body is `0..=max_body` [`arb_insn`]
/// words, and a final `exit` closes every fall-through path.
pub fn fuzz_program(rng: &mut SimRng, max_body: usize) -> Program {
    let mut insns = vec![Insn::mov64_imm(0, 7)];
    insns.extend(gen::vec_of(rng, 0, max_body, arb_insn));
    insns.push(Insn::exit());
    Program::new("fuzz", insns)
}

/// Registers the structured generators mutate: `r0` plus callee-saved.
const WORK_REGS: [Reg; 4] = [0, 6, 7, 8];

/// ALU ops safe for structured generation (no div/mod, whose by-zero
/// immediates the verifier rejects; shifts handled separately).
const SAFE_ALU: [u8; 7] = [OP_ADD, OP_SUB, OP_MUL, OP_OR, OP_AND, OP_XOR, OP_MOV];

fn arb_work_reg(rng: &mut SimRng) -> Reg {
    gen::pick(rng, &WORK_REGS)
}

/// A random branch-free program the verifier accepts by construction:
/// every work register is initialized with `mov`, the body is ALU
/// immediate/register traffic plus 64-bit immediate loads, and the
/// program ends with `exit`. Exactly the fragment [`reference_eval`]
/// understands.
pub fn straightline_program(rng: &mut SimRng) -> Program {
    let mut insns = Vec::new();
    for &reg in &WORK_REGS {
        insns.push(Insn::mov64_imm(reg, gen::i32_in(rng, -1000, 1000)));
    }
    let body_len = gen::usize_in(rng, 0, 12);
    for _ in 0..body_len {
        let dst = arb_work_reg(rng);
        let insn = match gen::u64_in(rng, 0, 5) {
            0 => Insn::alu64_imm(arb_safe_alu(rng), dst, gen::i32_in(rng, -1000, 1000)),
            1 => Insn::alu64_reg(arb_safe_alu(rng), dst, arb_work_reg(rng)),
            2 => Insn::alu32_imm(arb_safe_alu(rng), dst, gen::i32_in(rng, -1000, 1000)),
            3 => Insn::alu32_reg(arb_safe_alu(rng), dst, arb_work_reg(rng)),
            4 => {
                // Shifts with in-range immediates; arsh/neg ride along.
                match gen::u64_in(rng, 0, 3) {
                    0 => Insn::alu64_imm(OP_LSH, dst, gen::i32_in(rng, 0, 63)),
                    1 => Insn::alu64_imm(OP_RSH, dst, gen::i32_in(rng, 0, 63)),
                    2 => Insn::alu64_imm(OP_ARSH, dst, gen::i32_in(rng, 0, 63)),
                    _ => Insn::alu64_imm(OP_NEG, dst, 0),
                }
            }
            _ => {
                let value = rng.next_u64();
                insns.push(Insn::ld_dw_lo(dst, value));
                Insn::ld_dw_hi(value)
            }
        };
        insns.push(insn);
    }
    insns.push(Insn::mov64_reg(0, arb_work_reg(rng)));
    insns.push(Insn::exit());
    Program::new("straightline", insns)
}

fn arb_safe_alu(rng: &mut SimRng) -> u8 {
    gen::pick(rng, &SAFE_ALU)
}

/// A random structured program authored through [`Asm`], optionally with
/// forward branches and stack traffic, that the verifier accepts by
/// construction. Used to drive the interpreter through its verified
/// paths (memory, branching, text round-trip) rather than only its
/// rejection paths.
pub fn valid_program(rng: &mut SimRng, allow_branches: bool) -> Program {
    let mut asm = Asm::new("valid");
    for &reg in &WORK_REGS {
        asm = asm.mov64_imm(reg, gen::i32_in(rng, -100, 100));
    }
    let body_len = gen::usize_in(rng, 0, 10);
    let mut branched = false;
    for _ in 0..body_len {
        let dst = arb_work_reg(rng);
        match gen::u64_in(rng, 0, 6) {
            0 => asm = asm.insn(Insn::alu64_imm(arb_safe_alu(rng), dst, gen::i32_in(rng, -100, 100))),
            1 => asm = asm.insn(Insn::alu64_reg(arb_safe_alu(rng), dst, arb_work_reg(rng))),
            2 => {
                // Non-zero immediate division is verifier-legal.
                asm = asm.insn(Insn::alu64_imm(
                    gen::pick(rng, &[OP_DIV, OP_MOD]),
                    dst,
                    gen::i32_in(rng, 1, 100),
                ));
            }
            3 => {
                // Store a known register to an aligned stack slot, then
                // load it back so the read is always of initialized bytes.
                let slot = gen::i64_in(rng, 1, 8) as i16 * -8;
                asm = asm
                    .store_reg(SZ_DW, 10, arb_work_reg(rng), slot)
                    .load(SZ_DW, dst, 10, slot);
            }
            4 => asm = asm.ld_dw(dst, rng.next_u64()),
            5 if allow_branches && !branched => {
                // One forward branch to the shared epilogue; r0 is
                // already initialized, so the short path is legal.
                branched = true;
                asm = asm.jmp_imm(
                    arb_jmp_op(rng),
                    arb_work_reg(rng),
                    gen::i32_in(rng, -100, 100),
                    "end",
                );
            }
            _ => asm = asm.insn(Insn::alu32_imm(arb_safe_alu(rng), dst, gen::i32_in(rng, -100, 100))),
        }
    }
    let asm = asm.label("end").exit();
    match asm.assemble() {
        Ok(prog) => prog,
        Err(e) => unreachable!("structured generator emitted an unassemblable program: {e}"),
    }
}

/// A random program whose memory accesses go through *register* offsets
/// that are clamped into bounds before use — the access pattern the
/// value-tracking verifier admits and the old type-only rules rejected
/// as `PointerArith`.
///
/// Each program draws unknown scalars from the 64-byte context, clamps
/// them with one of four idioms (AND mask, unsigned `jgt` guard, `jset`
/// bit guard, signed compare pair), and uses the result as a
/// register offset into the stack or — when `map_fd` is given — a
/// 128-byte map value behind a null-checked `map_lookup_elem`.
/// Accepted programs must run clean in the interpreter on any context;
/// the clamp is genuine, not cosmetic.
pub fn bounded_offset_program(rng: &mut SimRng, map_fd: Option<MapFd>) -> Program {
    let mut asm = Asm::new("bounded").mov64_reg(9, 1); // ctx survives helper calls in r9
    for &reg in &WORK_REGS {
        asm = asm.mov64_imm(reg, gen::i32_in(rng, -100, 100));
    }
    let sections = gen::usize_in(rng, 1, 3);
    for i in 0..sections {
        // An unknown scalar the verifier cannot constant-fold.
        let ctx_off = gen::i64_in(rng, 0, 6) as i16 * 8;
        asm = asm.load(SZ_DW, 6, 9, ctx_off);
        let kind_max = if map_fd.is_some() { 4 } else { 3 };
        match gen::u64_in(rng, 0, kind_max) {
            0 => {
                // AND-mask clamp: r6 in [0, mask], shifted to an aligned
                // byte offset, then a doubleword store through r10.
                let slots = gen::pick(rng, &[2u64, 4, 8, 16]);
                let mask = slots as i32 - 1;
                let base = -8 * slots as i32;
                asm = asm
                    .and64_imm(6, mask)
                    .lsh64_imm(6, 3)
                    .mov64_reg(7, 10)
                    .add64_imm(7, base)
                    .add64_reg(7, 6)
                    .store_reg(SZ_DW, 7, 8, 0);
            }
            1 => {
                // Unsigned-guard clamp: skip the access unless r6 <= 56,
                // then a byte-sized store at a pure range-bounded offset
                // (no tnum alignment information involved).
                let skip = format!("skip{i}");
                asm = asm
                    .jgt_imm(6, 56, skip.clone())
                    .mov64_reg(7, 10)
                    .add64_imm(7, -64)
                    .add64_reg(7, 6)
                    .store_reg(SZ_B, 7, 8, 0)
                    .label(skip);
            }
            2 => {
                // JSET bit guard: taken edge bails; the fall-through
                // proves the offset is an 8-aligned value in [0, 56].
                let skip = format!("skip{i}");
                asm = asm
                    .jmp_imm(OP_JSET, 6, !0x38, skip.clone())
                    .mov64_reg(7, 10)
                    .add64_imm(7, -64)
                    .add64_reg(7, 6)
                    .store_reg(SZ_DW, 7, 8, 0)
                    .label(skip);
            }
            3 => {
                // Signed-compare pair: [0, 63] via jsgt/jslt, which the
                // scalar domain must cross-derive into unsigned bounds.
                let skip = format!("skip{i}");
                asm = asm
                    .jmp_imm(OP_JSGT, 6, 63, skip.clone())
                    .jmp_imm(OP_JSLT, 6, 0, skip.clone())
                    .lsh64_imm(6, 3)
                    .mov64_reg(7, 10)
                    .add64_imm(7, -512)
                    .add64_reg(7, 6)
                    .store_reg(SZ_DW, 7, 8, 0)
                    .label(skip);
            }
            _ => {
                // Register-offset access into a null-checked map value:
                // the in-probe histogram shape.
                let fd = match map_fd {
                    Some(fd) => fd,
                    None => unreachable!("the map variant is only drawn when a map fd exists"),
                };
                let skip = format!("skip{i}");
                asm = asm
                    .and64_imm(6, 15)
                    .lsh64_imm(6, 3)
                    .store_imm(SZ_W, 10, -4, 0)
                    .ld_map_fd(1, fd)
                    .mov64_reg(2, 10)
                    .add64_imm(2, -4)
                    .call(Helper::MapLookupElem)
                    .jeq_imm(0, 0, skip.clone())
                    .add64_reg(0, 6)
                    .load(SZ_DW, 7, 0, 0)
                    .add64_imm(7, 1)
                    .store_reg(SZ_DW, 0, 7, 0)
                    .label(skip);
            }
        }
    }
    let asm = asm.label("end").mov64_imm(0, 0).exit();
    match asm.assemble() {
        Ok(prog) => prog,
        Err(e) => unreachable!("bounded-offset generator emitted an unassemblable program: {e}"),
    }
}

impl Shrink for Insn {
    /// Shrinks toward the "do nothing interesting" instruction: zero
    /// immediate, zero offset, low registers.
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        for imm in self.imm.shrink().into_iter().take(3) {
            out.push(Insn { imm, ..*self });
        }
        for off in self.off.shrink().into_iter().take(3) {
            out.push(Insn { off, ..*self });
        }
        if self.src != 0 {
            out.push(Insn { src: 0, ..*self });
        }
        if self.dst != 0 {
            out.push(Insn { dst: 0, ..*self });
        }
        out
    }
}

/// Evaluates a branch-free program against the eBPF instruction-set
/// semantics, independently of the interpreter.
///
/// Supports ALU64/ALU32 (immediate and register forms), two-slot `ld_dw`
/// immediate loads, and `exit`. Returns `None` when the program strays
/// outside that fragment (jumps, memory, calls, map loads) or when any
/// register — including `r0` at `exit` — is read before it is written,
/// so the result never depends on the interpreter's private register
/// initialization.
pub fn reference_eval(prog: &Program) -> Option<u64> {
    let insns = prog.insns();
    let mut regs = [0u64; 11];
    let mut written = [false; 11];
    let mut pc = 0usize;
    while pc < insns.len() {
        let insn = insns[pc];
        let class = insn.class();
        match class {
            CLS_ALU64 | CLS_ALU => {
                let op = insn.op();
                let dst = insn.dst as usize;
                if dst >= 10 {
                    return None; // writes to r10 are outside the fragment
                }
                // MOV writes dst without reading it; everything else
                // reads it first.
                if op != OP_MOV && !written[dst] {
                    return None;
                }
                let operand = if insn.is_src_reg() {
                    let src = insn.src as usize;
                    if src > 10 || !written[src] {
                        return None;
                    }
                    regs[src]
                } else {
                    insn.imm as i64 as u64 // immediates sign-extend
                };
                let a = regs[dst];
                regs[dst] = if class == CLS_ALU64 {
                    alu64_semantics(op, a, operand)?
                } else {
                    u64::from(alu32_semantics(op, a as u32, operand as u32)?)
                };
                written[dst] = true;
            }
            CLS_LD if insn.size() == SZ_DW && insn.code & 0xe0 == MODE_IMM && insn.src == 0 => {
                let hi = insns.get(pc + 1)?;
                let dst = insn.dst as usize;
                if dst >= 10 {
                    return None;
                }
                regs[dst] = (insn.imm as u32 as u64) | ((hi.imm as u32 as u64) << 32);
                written[dst] = true;
                pc += 1;
            }
            CLS_JMP if insn.op() == OP_EXIT => {
                return if written[0] { Some(regs[0]) } else { None };
            }
            _ => return None, // jumps, memory, calls: not straight-line
        }
        pc += 1;
    }
    None // fell off the end
}

/// 64-bit ALU semantics, transcribed from the eBPF specification.
fn alu64_semantics(op: u8, a: u64, b: u64) -> Option<u64> {
    Some(match op {
        OP_ADD => a.wrapping_add(b),
        OP_SUB => a.wrapping_sub(b),
        OP_MUL => a.wrapping_mul(b),
        // eBPF defines div-by-zero as 0 and mod-by-zero as the dividend.
        OP_DIV => a.checked_div(b).unwrap_or(0),
        OP_MOD => a.checked_rem(b).unwrap_or(a),
        OP_OR => a | b,
        OP_AND => a & b,
        OP_XOR => a ^ b,
        OP_LSH => a.wrapping_shl(b as u32 & 63),
        OP_RSH => a.wrapping_shr(b as u32 & 63),
        OP_ARSH => ((a as i64).wrapping_shr(b as u32 & 63)) as u64,
        OP_MOV => b,
        OP_NEG => (a as i64).wrapping_neg() as u64,
        _ => return None,
    })
}

/// 32-bit ALU semantics; results zero-extend to 64 bits at the caller.
fn alu32_semantics(op: u8, a: u32, b: u32) -> Option<u32> {
    Some(match op {
        OP_ADD => a.wrapping_add(b),
        OP_SUB => a.wrapping_sub(b),
        OP_MUL => a.wrapping_mul(b),
        // eBPF defines div-by-zero as 0 and mod-by-zero as the dividend.
        OP_DIV => a.checked_div(b).unwrap_or(0),
        OP_MOD => a.checked_rem(b).unwrap_or(a),
        OP_OR => a | b,
        OP_AND => a & b,
        OP_XOR => a ^ b,
        OP_LSH => a.wrapping_shl(b & 31),
        OP_RSH => a.wrapping_shr(b & 31),
        OP_ARSH => ((a as i32).wrapping_shr(b & 31)) as u32,
        OP_MOV => b,
        OP_NEG => (a as i32).wrapping_neg() as u32,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kscope_ebpf::maps::MapRegistry;
    use kscope_ebpf::verifier::Verifier;

    #[test]
    fn straightline_programs_verify() {
        let mut rng = SimRng::seed_from_u64(11);
        let maps = MapRegistry::new();
        for _ in 0..50 {
            let prog = straightline_program(&mut rng);
            Verifier::default()
                .verify(&prog, &maps)
                .unwrap_or_else(|e| panic!("rejected: {e}\n{}", prog.disassemble()));
        }
    }

    #[test]
    fn reference_eval_handles_the_basics() {
        // mov r0, 6; mul r0, 7; exit
        let prog = Program::new(
            "t",
            vec![
                Insn::mov64_imm(0, 6),
                Insn::alu64_imm(OP_MUL, 0, 7),
                Insn::exit(),
            ],
        );
        assert_eq!(reference_eval(&prog), Some(42));
    }

    #[test]
    fn reference_eval_sign_extends_immediates() {
        let prog = Program::new(
            "t",
            vec![Insn::mov64_imm(0, -1), Insn::exit()],
        );
        assert_eq!(reference_eval(&prog), Some(u64::MAX));
    }

    #[test]
    fn reference_eval_rejects_uninitialized_reads() {
        // add r0, 1 reads r0 before any write.
        let prog = Program::new(
            "t",
            vec![Insn::alu64_imm(OP_ADD, 0, 1), Insn::exit()],
        );
        assert_eq!(reference_eval(&prog), None);
    }

    #[test]
    fn reference_eval_bails_on_branches() {
        let prog = Program::new(
            "t",
            vec![
                Insn::mov64_imm(0, 1),
                Insn::jmp_imm(OP_JEQ, 0, 1, 0),
                Insn::exit(),
            ],
        );
        assert_eq!(reference_eval(&prog), None);
    }

    #[test]
    fn generators_are_deterministic() {
        let mut a = SimRng::seed_from_u64(3);
        let mut b = SimRng::seed_from_u64(3);
        for _ in 0..20 {
            assert_eq!(fuzz_program(&mut a, 8).insns(), fuzz_program(&mut b, 8).insns());
        }
    }
}
