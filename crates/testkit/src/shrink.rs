//! Counterexample shrinking.
//!
//! [`Shrink::shrink`] proposes a list of strictly "smaller" candidate
//! values. The property runner greedily walks this list: the first
//! candidate that still fails the property becomes the new counterexample,
//! until no candidate fails or the step budget runs out. Implementations
//! must guarantee progress (candidates must be closer to a terminal value
//! such as `0`, `false`, or the empty vector), otherwise shrinking could
//! cycle; the runner additionally enforces a hard step limit.

use kscope_simcore::Nanos;
use kscope_syscalls::TracepointCtx;

/// Types whose failing values can be reduced toward a minimal
/// counterexample.
///
/// The default implementation proposes nothing, which is always sound:
/// shrinking is an ergonomic improvement, not a correctness requirement.
pub trait Shrink: Sized + Clone {
    /// Candidate smaller values, in decreasing order of aggressiveness
    /// (try the biggest simplification first).
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! shrink_unsigned {
    ($($t:ty),+) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let v = *self;
                let mut out = Vec::new();
                if v == 0 {
                    return out;
                }
                out.push(0);
                if v / 2 != 0 {
                    out.push(v / 2);
                }
                out.push(v - 1);
                out.dedup();
                out
            }
        }
    )+};
}

shrink_unsigned!(u8, u16, u32, u64, u128, usize);

macro_rules! shrink_signed {
    ($($t:ty),+) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let v = *self;
                let mut out = Vec::new();
                if v == 0 {
                    return out;
                }
                out.push(0);
                // Negatives first try their positive mirror: a sign flip is
                // usually the bigger simplification.
                if v < 0 && v != <$t>::MIN {
                    out.push(-v);
                }
                if v / 2 != 0 {
                    out.push(v / 2);
                }
                out.push(v - v.signum());
                out.dedup();
                out
            }
        }
    )+};
}

shrink_signed!(i8, i16, i32, i64, i128, isize);

impl Shrink for bool {
    fn shrink(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

macro_rules! shrink_float {
    ($($t:ty),+) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let v = *self;
                if v == 0.0 || !v.is_finite() {
                    return Vec::new();
                }
                let mut out = vec![0.0];
                if v < 0.0 {
                    out.push(-v);
                }
                out.push(v / 2.0);
                let t = v.trunc();
                if t != v {
                    out.push(t);
                }
                out.retain(|c| c != &v);
                out
            }
        }
    )+};
}

shrink_float!(f32, f64);

impl Shrink for Nanos {
    fn shrink(&self) -> Vec<Self> {
        self.as_nanos()
            .shrink()
            .into_iter()
            .map(Nanos::from_nanos)
            .collect()
    }
}

impl Shrink for TracepointCtx {
    /// Shrinks the timestamp toward zero; the categorical fields (phase,
    /// syscall, pids) stay put — collection-level shrinking removes whole
    /// events instead.
    fn shrink(&self) -> Vec<Self> {
        self.ktime
            .shrink()
            .into_iter()
            .map(|ktime| TracepointCtx { ktime, ..*self })
            .collect()
    }
}

impl<T: Shrink> Shrink for Option<T> {
    fn shrink(&self) -> Vec<Self> {
        match self {
            None => Vec::new(),
            Some(v) => {
                let mut out = vec![None];
                out.extend(v.shrink().into_iter().map(Some));
                out
            }
        }
    }
}

impl<T: Shrink> Shrink for Vec<T> {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        let n = self.len();
        if n == 0 {
            return out;
        }
        out.push(Vec::new());
        // Halves: drop the back, drop the front.
        if n > 1 {
            out.push(self[..n / 2].to_vec());
            out.push(self[n - n / 2..].to_vec());
        }
        // Remove single elements (bounded so huge vectors stay cheap).
        for i in 0..n.min(16) {
            let mut v = self.clone();
            v.remove(i);
            out.push(v);
        }
        // Shrink individual elements in place (bounded likewise).
        for i in 0..n.min(8) {
            for replacement in self[i].shrink().into_iter().take(2) {
                let mut v = self.clone();
                v[i] = replacement;
                out.push(v);
            }
        }
        out
    }
}

macro_rules! shrink_tuple {
    ($(($($name:ident : $idx:tt),+))+) => {$(
        impl<$($name: Shrink),+> Shrink for ($($name,)+) {
            fn shrink(&self) -> Vec<Self> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink() {
                        let mut t = self.clone();
                        t.$idx = candidate;
                        out.push(t);
                    }
                )+
                out
            }
        }
    )+};
}

shrink_tuple! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
    (A:0, B:1, C:2, D:3, E:4)
    (A:0, B:1, C:2, D:3, E:4, F:5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_terminal() {
        assert!(0u64.shrink().is_empty());
        assert!(0i32.shrink().is_empty());
        assert!(!false.shrink().iter().any(|_| true));
        assert!(0.0f64.shrink().is_empty());
    }

    #[test]
    fn unsigned_candidates_are_smaller() {
        for v in [1u64, 2, 7, 1000, u64::MAX] {
            for c in v.shrink() {
                assert!(c < v, "candidate {c} not smaller than {v}");
            }
        }
    }

    #[test]
    fn signed_negatives_offer_sign_flip() {
        assert!((-5i32).shrink().contains(&5));
        assert!((-5i32).shrink().contains(&0));
    }

    #[test]
    fn vec_shrink_offers_empty_and_removals() {
        let v = vec![3u32, 9, 27];
        let candidates = v.shrink();
        assert!(candidates.contains(&Vec::new()));
        assert!(candidates.contains(&vec![9, 27]));
        assert!(candidates.iter().any(|c| c.len() < v.len()));
    }

    #[test]
    fn tuple_shrinks_componentwise() {
        let candidates = (4u8, true).shrink();
        assert!(candidates.contains(&(0, true)));
        assert!(candidates.contains(&(4, false)));
    }

    #[test]
    fn float_shrink_never_proposes_itself() {
        for v in [1.5f64, -3.25, 1e9] {
            assert!(!v.shrink().contains(&v));
        }
    }
}
