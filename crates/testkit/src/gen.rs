//! Small generator helpers over [`SimRng`].
//!
//! Generators in this harness are plain closures `FnMut(&mut SimRng) -> T`;
//! these free functions cover the patterns the workspace's property suites
//! need (sized vectors, ranged scalars, weighted picks) without a
//! combinator DSL.

use kscope_simcore::SimRng;

/// Uniform `u64` in `[lo, hi]` (inclusive).
pub fn u64_in(rng: &mut SimRng, lo: u64, hi: u64) -> u64 {
    rng.next_range(lo, hi)
}

/// Uniform `usize` in `[lo, hi]` (inclusive).
pub fn usize_in(rng: &mut SimRng, lo: usize, hi: usize) -> usize {
    rng.next_range(lo as u64, hi as u64) as usize
}

/// Uniform `i64` in `[lo, hi]` (inclusive).
pub fn i64_in(rng: &mut SimRng, lo: i64, hi: i64) -> i64 {
    debug_assert!(lo <= hi);
    lo.wrapping_add(rng.next_below((hi - lo) as u64 + 1) as i64)
}

/// Uniform `i32` in `[lo, hi]` (inclusive).
pub fn i32_in(rng: &mut SimRng, lo: i32, hi: i32) -> i32 {
    i64_in(rng, lo as i64, hi as i64) as i32
}

/// Uniform `f64` in `[lo, hi)`.
pub fn f64_in(rng: &mut SimRng, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo <= hi);
    lo + rng.next_f64() * (hi - lo)
}

/// A fully random `u64` (all 64 bits uniform).
pub fn u64_any(rng: &mut SimRng) -> u64 {
    rng.next_u64()
}

/// A fully random `i64`.
pub fn i64_any(rng: &mut SimRng) -> i64 {
    rng.next_u64() as i64
}

/// A fully random `i32`.
pub fn i32_any(rng: &mut SimRng) -> i32 {
    rng.next_u32() as i32
}

/// A fully random `u8`.
pub fn u8_any(rng: &mut SimRng) -> u8 {
    (rng.next_u64() & 0xFF) as u8
}

/// A fair coin.
pub fn bool_any(rng: &mut SimRng) -> bool {
    rng.next_u64() & 1 == 1
}

/// A vector of `len ∈ [min_len, max_len]` elements drawn from `element`.
pub fn vec_of<T>(
    rng: &mut SimRng,
    min_len: usize,
    max_len: usize,
    mut element: impl FnMut(&mut SimRng) -> T,
) -> Vec<T> {
    let len = usize_in(rng, min_len, max_len);
    (0..len).map(|_| element(rng)).collect()
}

/// A uniformly random element of a non-empty slice, by value.
pub fn pick<T: Copy>(rng: &mut SimRng, options: &[T]) -> T {
    *rng.choose(options)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_are_inclusive() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..500 {
            match i64_in(&mut rng, -2, 2) {
                -2 => saw_lo = true,
                2 => saw_hi = true,
                -1..=1 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn i64_in_handles_negative_spans() {
        let mut rng = SimRng::seed_from_u64(2);
        for _ in 0..200 {
            let v = i64_in(&mut rng, -1000, -10);
            assert!((-1000..=-10).contains(&v));
        }
    }

    #[test]
    fn f64_in_stays_in_range() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..200 {
            let v = f64_in(&mut rng, 2.5, 7.5);
            assert!((2.5..7.5).contains(&v));
        }
    }

    #[test]
    fn vec_of_respects_bounds() {
        let mut rng = SimRng::seed_from_u64(4);
        for _ in 0..100 {
            let v = vec_of(&mut rng, 2, 5, |r| r.next_below(10));
            assert!((2..=5).contains(&v.len()));
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let mut a = SimRng::seed_from_u64(9);
        let mut b = SimRng::seed_from_u64(9);
        for _ in 0..50 {
            assert_eq!(i32_any(&mut a), i32_any(&mut b));
        }
    }
}
