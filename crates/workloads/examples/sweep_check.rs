//! Dev diagnostic: sweep load and print ground truth vs. syscall signals.
use kscope_netem::NetemConfig;
use kscope_simcore::Nanos;
use kscope_syscalls::SyscallRole;
use kscope_workloads::{run_workload, RunConfig};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "data-caching".into());
    let spec = kscope_workloads::all_paper_workloads()
        .into_iter()
        .find(|w| w.name == which)
        .unwrap_or_else(kscope_workloads::echo_single_thread);
    let fail = spec.paper_failure_rps;
    println!("workload {} paper_fail {} capacity {:.0}", spec.name, fail, spec.nominal_capacity_rps());
    println!("{:>8} {:>9} {:>10} {:>10} {:>12} {:>12} {:>12}", "offered", "achieved", "p50(ms)", "p99(ms)", "epoll_us", "var_dt_send", "rps_obsv");
    for frac in [0.1, 0.3, 0.5, 0.7, 0.8, 0.9, 0.95, 1.0, 1.05, 1.1] {
        let rps = fail * frac;
        let mut cfg = RunConfig::new(rps, 42);
        cfg.netem = NetemConfig::loopback();
        cfg.warmup = Nanos::from_millis(300);
        cfg.measure = Nanos::from_secs(2);
        let out = run_workload(&spec, &cfg, Vec::new());
        let sends = out.trace.filter_role(&spec.profile, SyscallRole::Send);
        let deltas: Vec<f64> = sends.inter_deltas().iter().map(|d| d.as_nanos() as f64).collect();
        let n = deltas.len().max(1) as f64;
        let mean = deltas.iter().sum::<f64>() / n;
        let var = deltas.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n;
        let polls = out.trace.filter_role(&spec.profile, SyscallRole::Poll);
        let pdur: Vec<f64> = polls.durations().iter().map(|d| d.as_micros_f64()).collect();
        let pmean = pdur.iter().sum::<f64>() / pdur.len().max(1) as f64;
        let rps_obsv = if mean > 0.0 { 1e9 / mean } else { 0.0 };
        println!(
            "{:>8.0} {:>9.0} {:>10.2} {:>10.2} {:>12.1} {:>12.3e} {:>12.0}",
            rps, out.client.achieved_rps,
            out.client.p50_latency.as_millis_f64(), out.client.p99_latency.as_millis_f64(),
            pmean, var, rps_obsv
        );
    }
}
