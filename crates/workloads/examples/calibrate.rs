//! Dev diagnostic: binary-search the QoS-failure RPS of every workload and
//! compare with the paper's reported values.
use kscope_netem::NetemConfig;
use kscope_simcore::Nanos;
use kscope_workloads::{all_paper_workloads, run_workload, RunConfig};

fn p99_at(spec: &kscope_workloads::WorkloadSpec, rps: f64, seed: u64) -> f64 {
    let mut cfg = RunConfig::new(rps, seed);
    cfg.netem = NetemConfig::loopback();
    cfg.collect_trace = false;
    cfg.warmup = Nanos::from_millis(500);
    let secs = (4000.0 / rps).clamp(1.5, 400.0);
    cfg.measure = Nanos::from_secs_f64(secs);
    let out = run_workload(spec, &cfg, Vec::new());
    out.client.p99_latency.as_nanos() as f64
}

fn main() {
    println!("{:<14} {:>10} {:>10} {:>7}", "workload", "paper", "measured", "ratio");
    for spec in all_paper_workloads() {
        let qos = spec.qos_p99.as_nanos() as f64;
        let (mut lo, mut hi) = (spec.paper_failure_rps * 0.4, spec.paper_failure_rps * 1.5);
        // ensure bracket
        if p99_at(&spec, hi, 9) < qos { lo = hi; hi *= 2.0; }
        for _ in 0..9 {
            let mid = (lo + hi) / 2.0;
            if p99_at(&spec, mid, 9) > qos { hi = mid } else { lo = mid }
        }
        let fail = (lo + hi) / 2.0;
        println!("{:<14} {:>10.0} {:>10.0} {:>7.2}", spec.name, spec.paper_failure_rps, fail, fail / spec.paper_failure_rps);
    }
}
