//! One-shot workload runs: build, drive, measure.

use kscope_kernel::{Kernel, ProbeId, TracepointProbe};
use kscope_netem::NetemConfig;
use kscope_simcore::{Engine, Nanos};
use kscope_syscalls::Trace;

use crate::server::{Completion, ServerSim};
use crate::spec::WorkloadSpec;

/// Parameters of one measurement run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Open-loop offered load in requests/second.
    pub offered_rps: f64,
    /// Time to run before measurement starts.
    pub warmup: Nanos,
    /// Measurement window length.
    pub measure: Nanos,
    /// Simulation seed.
    pub seed: u64,
    /// Network conditions.
    pub netem: NetemConfig,
    /// Record the full syscall trace (stream-to-userspace mode).
    pub collect_trace: bool,
}

impl RunConfig {
    /// A short run with sensible defaults: 300 ms warmup, 2 s measured,
    /// ideal-ish loopback network.
    pub fn new(offered_rps: f64, seed: u64) -> RunConfig {
        RunConfig {
            offered_rps,
            warmup: Nanos::from_millis(300),
            measure: Nanos::from_secs(2),
            seed,
            netem: NetemConfig::loopback(),
            collect_trace: true,
        }
    }

    /// Shrinks warmup and measurement for fast tests.
    pub fn quick(mut self) -> RunConfig {
        self.warmup = Nanos::from_millis(100);
        self.measure = Nanos::from_millis(600);
        self
    }

    /// End of the offered-load window.
    pub fn end(&self) -> Nanos {
        self.warmup + self.measure
    }
}

/// Client-side ground truth for one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientStats {
    /// The offered load.
    pub offered_rps: f64,
    /// Measured completion rate inside the window.
    pub achieved_rps: f64,
    /// Completions inside the window.
    pub completed: u64,
    /// Mean latency.
    pub mean_latency: Nanos,
    /// Median latency.
    pub p50_latency: Nanos,
    /// 95th-percentile latency.
    pub p95_latency: Nanos,
    /// 99th-percentile latency — the paper's QoS metric.
    pub p99_latency: Nanos,
}

impl ClientStats {
    fn from_completions(offered_rps: f64, window: Nanos, completions: &[Completion]) -> ClientStats {
        let mut lat: Vec<u64> = completions
            .iter()
            .map(|c| c.latency().as_nanos())
            .collect();
        lat.sort_unstable();
        let pct = |q: f64| -> Nanos {
            if lat.is_empty() {
                return Nanos::ZERO;
            }
            let rank = (q * (lat.len() - 1) as f64).round() as usize;
            Nanos::from_nanos(lat[rank.min(lat.len() - 1)])
        };
        let mean = if lat.is_empty() {
            Nanos::ZERO
        } else {
            Nanos::from_nanos(lat.iter().sum::<u64>() / lat.len() as u64)
        };
        ClientStats {
            offered_rps,
            achieved_rps: completions.len() as f64 / window.as_secs_f64(),
            completed: completions.len() as u64,
            mean_latency: mean,
            p50_latency: pct(0.50),
            p95_latency: pct(0.95),
            p99_latency: pct(0.99),
        }
    }
}

/// Everything a run produces.
#[derive(Debug)]
pub struct RunOutcome {
    /// Ground truth measured at the client.
    pub client: ClientStats,
    /// Full syscall trace of the measurement window (empty when trace
    /// collection was off).
    pub trace: Trace,
    /// The kernel after the run — read probe state out of
    /// `kernel.tracing`.
    pub kernel: Kernel,
    /// Probe ids, in the order the probes were supplied.
    pub probes: Vec<ProbeId>,
    /// Start of the measurement window.
    pub warmup_end: Nanos,
    /// End of the measurement window.
    pub end: Nanos,
}

/// Runs `spec` under `config` with optional probes attached to the syscall
/// tracepoints.
///
/// The returned trace is already sliced to the measurement window; probes
/// observe the whole run (warmup included), as a real agent would.
pub fn run_workload(
    spec: &WorkloadSpec,
    config: &RunConfig,
    probes: Vec<Box<dyn TracepointProbe>>,
) -> RunOutcome {
    run_workload_with(spec, config, move |_| probes)
}

/// Like [`run_workload`], but the probes are built *after* the server is
/// wired, so they can filter on the actual process ids
/// ([`ServerSim::server_pids`]).
pub fn run_workload_with<F>(spec: &WorkloadSpec, config: &RunConfig, make_probes: F) -> RunOutcome
where
    F: FnOnce(&ServerSim) -> Vec<Box<dyn TracepointProbe>>,
{
    let mut sim = ServerSim::new(
        spec.clone(),
        config.offered_rps,
        config.netem.clone(),
        config.seed,
        config.end(),
    );
    let probes = make_probes(&sim);
    sim.kernel_mut().tracing.set_collect_trace(config.collect_trace);
    let mut probe_ids = Vec::new();
    for probe in probes {
        probe_ids.push(sim.kernel_mut().tracing.attach(probe));
    }
    // Pending events scale with in-flight requests, not total requests; a
    // tenth of a second of offered load comfortably bounds the high-water
    // mark and spares the heap its growth reallocations mid-run.
    let expected_pending = ((config.offered_rps * 0.1) as usize).clamp(64, 16_384);
    let mut engine = Engine::with_capacity(expected_pending);
    sim.install(&mut engine);
    engine.run_until(&mut sim, config.end());
    if config.collect_trace {
        sim.emit_shutdown_syscalls(config.end());
    }

    let window: Vec<Completion> = sim
        .completions()
        .iter()
        .copied()
        .filter(|c| c.finished >= config.warmup && c.finished < config.end())
        .collect();
    let client = ClientStats::from_completions(config.offered_rps, config.measure, &window);
    let ServerParts { kernel, .. } = into_parts(sim);
    // The slice end leaves room for the shutdown events emitted at `end`.
    let trace = kernel
        .tracing
        .trace()
        .slice_time(config.warmup, config.end() + Nanos::from_secs(1));
    RunOutcome {
        client,
        trace,
        kernel,
        probes: probe_ids,
        warmup_end: config.warmup,
        end: config.end(),
    }
}

struct ServerParts {
    kernel: Kernel,
}

fn into_parts(sim: ServerSim) -> ServerParts {
    ServerParts {
        kernel: sim.into_kernel(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;

    #[test]
    fn light_load_run_completes_requests() {
        let spec = spec::echo_single_thread();
        let config = RunConfig::new(500.0, 42).quick();
        let outcome = run_workload(&spec, &config, Vec::new());
        assert!(outcome.client.completed > 100, "{:?}", outcome.client);
        // Achieved tracks offered at light load.
        let ratio = outcome.client.achieved_rps / 500.0;
        assert!((0.85..1.15).contains(&ratio), "ratio {ratio}");
        assert!(!outcome.trace.is_empty());
    }

    #[test]
    fn identical_seeds_reproduce_identical_runs() {
        let spec = spec::echo_single_thread();
        let config = RunConfig::new(800.0, 7).quick();
        let a = run_workload(&spec, &config, Vec::new());
        let b = run_workload(&spec, &config, Vec::new());
        assert_eq!(a.client.completed, b.client.completed);
        assert_eq!(a.client.p99_latency, b.client.p99_latency);
        assert_eq!(a.trace.len(), b.trace.len());
    }

    #[test]
    fn different_seeds_differ() {
        let spec = spec::echo_single_thread();
        let a = run_workload(&spec, &RunConfig::new(800.0, 1).quick(), Vec::new());
        let b = run_workload(&spec, &RunConfig::new(800.0, 2).quick(), Vec::new());
        assert_ne!(a.client.p99_latency, b.client.p99_latency);
    }
}
