//! The discrete-event server: clients, network, kernel, and application
//! threads assembled into one running system.
//!
//! [`ServerSim`] implements [`Simulation`] over the [`Ev`] event vocabulary
//! and reproduces the request path of Fig. 1(a): an open-loop client sends
//! requests through the netem link into per-connection channels; server
//! threads block in poll syscalls, receive, compute on contended cores,
//! optionally hand off across stages, and send responses back through the
//! link. Every syscall passes through the kernel's tracepoints, so attached
//! probes (eBPF or native) observe exactly what Listing 1 would.

use std::collections::{BTreeMap, HashMap};

use kscope_kernel::{ChannelId, EpollId, Kernel, Message, RxPacket, SchedConfig, StackStamps};
use kscope_netem::{NetemConfig, NetemPath};
use kscope_simcore::{Dist, Nanos, Scheduler, SimRng, Simulation};
use kscope_syscalls::{Pid, SyscallNo, SyscallRole, Tid};

use crate::spec::{ThreadingModel, WorkloadSpec};

/// Events of the server simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ev {
    /// The open-loop client emits the next request.
    Arrival,
    /// A request's packet reaches the host NIC ring (it still has to cross
    /// the softirq/NAPI stage before it is readable from the socket).
    Delivered {
        /// Destination connection.
        conn: ChannelId,
        /// Request token.
        request: u64,
        /// Payload size.
        bytes: u32,
    },
    /// The softirq raised for pending NIC-ring packets runs (NAPI batch
    /// processing; see [`kscope_kernel::IngressQueue`]).
    Softirq,
    /// A thread's poll syscall returns (immediately or via wakeup).
    PollExit {
        /// The polling thread.
        tid: Tid,
    },
    /// A thread's current fast syscall (recv/send/forward) completes.
    SyscallExit {
        /// The thread inside the syscall.
        tid: Tid,
    },
    /// A thread's CPU slice finishes.
    ComputeDone {
        /// The computing thread.
        tid: Tid,
    },
    /// The client receives a response.
    ResponseArrived {
        /// Completed request token.
        request: u64,
    },
}

/// One completed request, with client-side timestamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Request token.
    pub request: u64,
    /// When the client issued it.
    pub created: Nanos,
    /// When the client received the response.
    pub finished: Nanos,
}

impl Completion {
    /// End-to-end latency as the client perceives it.
    pub fn latency(&self) -> Nanos {
        self.finished.saturating_sub(self.created)
    }
}

/// What a thread does with a message popped from a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AfterPop {
    /// Compute the service demand, then send the response to the client.
    ComputeAndRespond,
    /// Compute (parse or service), then forward to another channel,
    /// optionally through a traced syscall.
    ComputeAndForward {
        to: ChannelId,
        via: Option<SyscallNo>,
        /// true: use the parse-cost distribution; false: full service time.
        parse: bool,
    },
    /// No compute: send the (already computed) response to the client.
    Respond,
}

/// Per-channel behaviour.
#[derive(Debug, Clone, Copy)]
struct ChanCfg {
    /// Syscall used to pop a message (`None` = in-process queue pop).
    pop_syscall: Option<SyscallNo>,
    after: AfterPop,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Recv,
    Compute,
    Forward,
    Send { remaining: u32 },
}

#[derive(Debug, Clone, Copy)]
struct Work {
    request: u64,
    bytes: u32,
    phase: Phase,
    after: AfterPop,
    /// io_uring-style request: its recv/send I/O bypasses the syscall
    /// layer and is invisible to the tracepoints (§V-C).
    bypass: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TState {
    /// Blocked inside the poll syscall.
    Blocked,
    /// Poll syscall in flight (exit event scheduled or wakeup pending).
    Polling,
    /// Inside a fast syscall.
    InSyscall,
    /// Waiting for a core.
    AwaitCpu,
    /// Running on a core.
    Computing,
}

#[derive(Debug)]
struct ThreadRt {
    #[allow(dead_code)] // kept for debugging dumps
    tid: Tid,
    pid: Pid,
    epoll: EpollId,
    poll_no: SyscallNo,
    state: TState,
    batch: Vec<ChannelId>,
    cur: Option<Work>,
}

/// The assembled server simulation.
///
/// Construct with [`ServerSim::new`], seed the engine with
/// [`ServerSim::install`], then drive the engine; read results from
/// [`ServerSim::completions`] and the [`Kernel`]'s tracing state.
#[derive(Debug)]
pub struct ServerSim {
    spec: WorkloadSpec,
    kernel: Kernel,
    path: NetemPath,
    rng_arrival: SimRng,
    rng_service: SimRng,
    rng_net: SimRng,
    rng_sched: SimRng,
    rng_misc: SimRng,
    /// Softirq batch-processing jitter (separate stream so the ingress
    /// pipeline does not disturb netem/service sampling sequences).
    rng_softirq: SimRng,
    threads: BTreeMap<Tid, ThreadRt>,
    chan_cfg: HashMap<ChannelId, ChanCfg>,
    conns: Vec<ChannelId>,
    next_conn: usize,
    inter_arrival: Dist,
    offered_until: Nanos,
    next_request: u64,
    in_flight: HashMap<u64, Nanos>,
    completions: Vec<Completion>,
    offered_count: u64,
    /// Wakeup latency from delivery to poll return.
    wake_cost: Nanos,
    /// In-flight fast syscall per thread: (number, return value).
    pending_syscall: HashMap<Tid, (SyscallNo, i64)>,
    /// Forward destination for threads inside a handoff syscall.
    pending_forward: HashMap<Tid, ChannelId>,
    /// End of the current contention convoy (see `begin_compute`).
    convoy_until: Nanos,
}

impl ServerSim {
    /// Builds a server for `spec`, offered an open-loop Poisson load of
    /// `offered_rps` until `offered_until`, over a symmetric netem path.
    ///
    /// # Panics
    ///
    /// Panics if `offered_rps` is not positive.
    pub fn new(
        spec: WorkloadSpec,
        offered_rps: f64,
        netem: NetemConfig,
        seed: u64,
        offered_until: Nanos,
    ) -> ServerSim {
        assert!(offered_rps > 0.0, "offered load must be positive");
        let mut root = SimRng::seed_from_u64(seed);
        let mut sim = ServerSim {
            kernel: Kernel::new(spec.cores, SchedConfig::default()),
            rng_arrival: root.fork(1),
            rng_service: root.fork(2),
            rng_net: root.fork(3),
            rng_sched: root.fork(4),
            rng_misc: root.fork(5),
            rng_softirq: root.fork(6),
            path: NetemPath::symmetric(netem),
            threads: BTreeMap::new(),
            chan_cfg: HashMap::new(),
            conns: Vec::new(),
            next_conn: 0,
            inter_arrival: Dist::exponential(1e9 / offered_rps),
            offered_until,
            next_request: 0,
            in_flight: HashMap::new(),
            completions: Vec::new(),
            offered_count: 0,
            wake_cost: Nanos::from_micros(1),
            pending_syscall: HashMap::new(),
            pending_forward: HashMap::new(),
            convoy_until: Nanos::ZERO,
            spec,
        };
        sim.wire_threads();
        sim
    }

    /// The kernel (scheduler, channels, tracing — attach probes here).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Mutable kernel access.
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        &mut self.kernel
    }

    /// The workload being served.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Completed requests so far.
    pub fn completions(&self) -> &[Completion] {
        &self.completions
    }

    /// Requests offered by the client so far.
    pub fn offered_count(&self) -> u64 {
        self.offered_count
    }

    /// Requests accepted but not yet completed.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Consumes the simulation, returning the kernel (with its collected
    /// trace and attached probes).
    pub fn into_kernel(self) -> Kernel {
        self.kernel
    }

    /// The process ids of the server application (one per process; two for
    /// the two-stage model). Probes filter on these.
    pub fn server_pids(&self) -> Vec<Pid> {
        let mut pids: Vec<Pid> = self.threads.values().map(|t| t.pid).collect();
        pids.sort_unstable();
        pids.dedup();
        pids
    }

    /// Builds processes, threads, connections, queues, and epolls for the
    /// spec's threading model.
    fn wire_threads(&mut self) {
        let recv_no = self.spec.profile.primary(SyscallRole::Receive);
        let send_no = self.spec.profile.primary(SyscallRole::Send);
        let poll_no = self.spec.profile.primary(SyscallRole::Poll);
        let n_conns = self.spec.connections;
        match self.spec.threading.clone() {
            ThreadingModel::SingleThreaded | ThreadingModel::WorkerPool { .. } => {
                let workers = match self.spec.threading {
                    ThreadingModel::SingleThreaded => 1,
                    ThreadingModel::WorkerPool { workers } => workers,
                    _ => unreachable!(),
                };
                let pid = self.kernel.tasks.spawn_process(self.spec.name.clone());
                let mut epolls = Vec::new();
                for w in 0..workers {
                    let tid = if w == 0 {
                        pid
                    } else {
                        self.kernel
                            .tasks
                            .spawn_thread(pid, format!("worker-{w}"))
                            .unwrap_or_else(|| unreachable!("the server pid was spawned at startup"))
                    };
                    let ep = self.kernel.epolls.create();
                    epolls.push(ep);
                    self.threads.insert(
                        tid,
                        ThreadRt {
                            tid,
                            pid,
                            epoll: ep,
                            poll_no,
                            state: TState::Polling,
                            batch: Vec::new(),
                            cur: None,
                        },
                    );
                }
                for c in 0..n_conns {
                    let conn = self.kernel.channels.create();
                    self.kernel
                        .epolls
                        .watch(epolls[(c % workers) as usize], conn);
                    self.conns.push(conn);
                    self.chan_cfg.insert(
                        conn,
                        ChanCfg {
                            pop_syscall: Some(recv_no),
                            after: AfterPop::ComputeAndRespond,
                        },
                    );
                }
            }
            ThreadingModel::TwoStage {
                frontend_threads,
                backend_workers,
            } => {
                let fe_pid = self
                    .kernel
                    .tasks
                    .spawn_process(format!("{}-frontend", self.spec.name));
                let be_pid = self
                    .kernel
                    .tasks
                    .spawn_process(format!("{}-backend", self.spec.name));
                let stage_q = self.kernel.channels.create();
                let reply_q = self.kernel.channels.create();
                // Front-end threads: private epolls over conn partitions;
                // thread 0 additionally watches the reply socket.
                let mut fe_epolls = Vec::new();
                for w in 0..frontend_threads {
                    let tid = if w == 0 {
                        fe_pid
                    } else {
                        self.kernel
                            .tasks
                            .spawn_thread(fe_pid, format!("fe-{w}"))
                            .unwrap_or_else(|| unreachable!("the server pid was spawned at startup"))
                    };
                    let ep = self.kernel.epolls.create();
                    fe_epolls.push(ep);
                    self.threads.insert(
                        tid,
                        ThreadRt {
                            tid,
                            pid: fe_pid,
                            epoll: ep,
                            poll_no,
                            state: TState::Polling,
                            batch: Vec::new(),
                            cur: None,
                        },
                    );
                }
                self.kernel.epolls.watch(fe_epolls[0], reply_q);
                // Back-end workers share one epoll on the stage socket.
                let be_ep = self.kernel.epolls.create();
                self.kernel.epolls.watch(be_ep, stage_q);
                for w in 0..backend_workers {
                    let tid = if w == 0 {
                        be_pid
                    } else {
                        self.kernel
                            .tasks
                            .spawn_thread(be_pid, format!("be-{w}"))
                            .unwrap_or_else(|| unreachable!("the server pid was spawned at startup"))
                    };
                    self.threads.insert(
                        tid,
                        ThreadRt {
                            tid,
                            pid: be_pid,
                            epoll: be_ep,
                            poll_no,
                            state: TState::Polling,
                            batch: Vec::new(),
                            cur: None,
                        },
                    );
                }
                for c in 0..n_conns {
                    let conn = self.kernel.channels.create();
                    self.kernel
                        .epolls
                        .watch(fe_epolls[(c % frontend_threads) as usize], conn);
                    self.conns.push(conn);
                    self.chan_cfg.insert(
                        conn,
                        ChanCfg {
                            pop_syscall: Some(recv_no),
                            after: AfterPop::ComputeAndForward {
                                to: stage_q,
                                via: Some(send_no),
                                parse: true,
                            },
                        },
                    );
                }
                self.chan_cfg.insert(
                    stage_q,
                    ChanCfg {
                        pop_syscall: Some(recv_no),
                        after: AfterPop::ComputeAndForward {
                            to: reply_q,
                            via: Some(send_no),
                            parse: false,
                        },
                    },
                );
                self.chan_cfg.insert(
                    reply_q,
                    ChanCfg {
                        pop_syscall: Some(recv_no),
                        after: AfterPop::Respond,
                    },
                );
            }
            ThreadingModel::DispatchPool {
                network_threads,
                workers,
            } => {
                let pid = self.kernel.tasks.spawn_process(self.spec.name.clone());
                let worker_q = self.kernel.channels.create();
                let mut net_epolls = Vec::new();
                for w in 0..network_threads {
                    let tid = if w == 0 {
                        pid
                    } else {
                        self.kernel
                            .tasks
                            .spawn_thread(pid, format!("net-{w}"))
                            .unwrap_or_else(|| unreachable!("the server pid was spawned at startup"))
                    };
                    let ep = self.kernel.epolls.create();
                    net_epolls.push(ep);
                    self.threads.insert(
                        tid,
                        ThreadRt {
                            tid,
                            pid,
                            epoll: ep,
                            poll_no,
                            state: TState::Polling,
                            batch: Vec::new(),
                            cur: None,
                        },
                    );
                }
                // Workers share one wait queue, blocking via futex (their
                // waits must not count toward the poll-family metrics).
                let worker_ep = self.kernel.epolls.create();
                self.kernel.epolls.watch(worker_ep, worker_q);
                for w in 0..workers {
                    let tid = self
                        .kernel
                        .tasks
                        .spawn_thread(pid, format!("compute-{w}"))
                        .unwrap_or_else(|| unreachable!("the server pid was spawned at startup"));
                    self.threads.insert(
                        tid,
                        ThreadRt {
                            tid,
                            pid,
                            epoll: worker_ep,
                            poll_no: SyscallNo::FUTEX,
                            state: TState::Polling,
                            batch: Vec::new(),
                            cur: None,
                        },
                    );
                }
                for c in 0..n_conns {
                    let conn = self.kernel.channels.create();
                    self.kernel
                        .epolls
                        .watch(net_epolls[(c % network_threads) as usize], conn);
                    self.conns.push(conn);
                    self.chan_cfg.insert(
                        conn,
                        ChanCfg {
                            pop_syscall: Some(recv_no),
                            after: AfterPop::ComputeAndForward {
                                to: worker_q,
                                via: None,
                                parse: true,
                            },
                        },
                    );
                }
                self.chan_cfg.insert(
                    worker_q,
                    ChanCfg {
                        pop_syscall: None,
                        after: AfterPop::ComputeAndRespond,
                    },
                );
            }
        }
    }

    /// Schedules the initial events: the setup-phase syscalls are emitted
    /// (the socket/bind/listen/epoll_ctl noise of Fig. 1b), all threads
    /// enter their poll loop, and the client arrival process starts.
    pub fn install(&mut self, engine: &mut kscope_simcore::Engine<Ev>) {
        let boot_end = self.emit_setup_syscalls();
        engine.schedule(boot_end, Ev::Arrival);
        // Threads start polling after setup; do the bookkeeping directly
        // (nothing is readable yet, so every thread blocks).
        let tids: Vec<Tid> = self.threads.keys().copied().collect();
        for tid in tids {
            let rt = self.threads.get_mut(&tid).unwrap_or_else(|| unreachable!("tid is one of this server's threads"));
            rt.state = TState::Polling;
            let (pid, poll_no, epoll) = (rt.pid, rt.poll_no, rt.epoll);
            self.kernel.tracing.sys_enter(pid, tid, poll_no, boot_end);
            self.kernel.epolls.block(epoll, tid);
            self.threads.get_mut(&tid).unwrap_or_else(|| unreachable!("tid is one of this server's threads")).state = TState::Blocked;
        }
    }

    /// Emits the setup-phase syscall events: per process socket/bind/listen,
    /// per thread epoll_create1 plus one epoll_ctl per watched channel.
    /// Returns the instant setup completes.
    fn emit_setup_syscalls(&mut self) -> Nanos {
        let cost = self.spec.syscall_cost;
        let mut t = Nanos::ZERO;
        let emit = |tracing: &mut kscope_kernel::Tracing,
                        pid: Pid,
                        tid: Tid,
                        no: SyscallNo,
                        ret: i64,
                        t: &mut Nanos| {
            tracing.sys_enter(pid, tid, no, *t);
            *t += cost;
            tracing.sys_exit(pid, tid, no, ret, *t);
            *t += Nanos::from_nanos(200);
        };
        let mut seen_pids = Vec::new();
        let threads: Vec<(Tid, Pid, EpollId)> = self
            .threads
            .iter()
            .map(|(tid, rt)| (*tid, rt.pid, rt.epoll))
            .collect();
        for (tid, pid, _) in &threads {
            if *tid == *pid && !seen_pids.contains(pid) {
                seen_pids.push(*pid);
                emit(&mut self.kernel.tracing, *pid, *tid, SyscallNo::SOCKET, 3, &mut t);
                emit(&mut self.kernel.tracing, *pid, *tid, SyscallNo::BIND, 0, &mut t);
                emit(&mut self.kernel.tracing, *pid, *tid, SyscallNo::LISTEN, 0, &mut t);
            }
        }
        for (tid, pid, epoll) in &threads {
            emit(
                &mut self.kernel.tracing,
                *pid,
                *tid,
                SyscallNo::EPOLL_CREATE1,
                epoll.0 as i64 + 4,
                &mut t,
            );
            let watched = self.kernel.epolls.watched(*epoll).len();
            for _ in 0..watched {
                emit(&mut self.kernel.tracing, *pid, *tid, SyscallNo::EPOLL_CTL, 0, &mut t);
            }
        }
        t
    }

    /// Emits the shutdown-phase syscall events (close per connection, exit
    /// per process) at `now`; call once, after the engine is done, to
    /// complete the Fig. 1b lifecycle. The main thread's in-flight syscall
    /// (usually a blocked poll) is terminated first, as process exit would.
    pub fn emit_shutdown_syscalls(&mut self, now: Nanos) {
        let cost = self.spec.syscall_cost;
        let mut t = now;
        // Main thread of the first process closes every connection.
        let (main_tid, main_pid) = {
            let (tid, rt) = self.threads.iter().next().unwrap_or_else(|| unreachable!("the server always has at least one thread"));
            (*tid, rt.pid)
        };
        // Terminate whatever syscall the main thread is inside.
        {
            let rt = self.threads.get_mut(&main_tid).unwrap_or_else(|| unreachable!("tid is one of this server's threads"));
            match rt.state {
                TState::Blocked | TState::Polling => {
                    let poll_no = rt.poll_no;
                    self.kernel
                        .tracing
                        .sys_exit(main_pid, main_tid, poll_no, 0, t);
                }
                TState::InSyscall => {
                    if let Some((no, ret)) = self.pending_syscall.remove(&main_tid) {
                        self.kernel.tracing.sys_exit(main_pid, main_tid, no, ret, t);
                    }
                }
                _ => {}
            }
            t += Nanos::from_nanos(200);
        }
        for _ in 0..self.conns.len() {
            self.kernel.tracing.sys_enter(main_pid, main_tid, SyscallNo::CLOSE, t);
            t += cost;
            self.kernel
                .tracing
                .sys_exit(main_pid, main_tid, SyscallNo::CLOSE, 0, t);
            t += Nanos::from_nanos(200);
        }
        self.kernel.tracing.sys_enter(main_pid, main_tid, SyscallNo::EXIT, t);
        self.kernel
            .tracing
            .sys_exit(main_pid, main_tid, SyscallNo::EXIT, 0, t + cost);
    }

    // --- thread control flow -------------------------------------------

    /// The thread (re-)enters its poll syscall at `at`.
    fn thread_poll(&mut self, tid: Tid, at: Nanos, sched: &mut Scheduler<'_, Ev>) {
        let rt = self.threads.get_mut(&tid).unwrap_or_else(|| unreachable!("tid is one of this server's threads"));
        rt.cur = None;
        rt.batch.clear();
        let (pid, poll_no, epoll) = (rt.pid, rt.poll_no, rt.epoll);
        let oh = self.kernel.tracing.sys_enter(pid, tid, poll_no, at);
        let ready = self.kernel.epolls.ready_channels(epoll, &self.kernel.channels);
        let rt = self.threads.get_mut(&tid).unwrap_or_else(|| unreachable!("tid is one of this server's threads"));
        if ready.is_empty() {
            self.kernel.epolls.block(epoll, tid);
            rt.state = TState::Blocked;
        } else {
            rt.state = TState::Polling;
            let exit_at = at.max(sched.now()) + self.spec.poll_cost + oh;
            sched.at(exit_at, Ev::PollExit { tid });
        }
    }

    /// Completes the poll syscall at the current instant and starts the
    /// next batch of work.
    fn handle_poll_exit(&mut self, tid: Tid, sched: &mut Scheduler<'_, Ev>) {
        let now = sched.now();
        let rt = self.threads.get_mut(&tid).unwrap_or_else(|| unreachable!("tid is one of this server's threads"));
        debug_assert!(matches!(rt.state, TState::Polling));
        let (pid, poll_no, epoll) = (rt.pid, rt.poll_no, rt.epoll);
        let ready = self.kernel.epolls.ready_channels(epoll, &self.kernel.channels);
        let oh = self
            .kernel
            .tracing
            .sys_exit(pid, tid, poll_no, ready.len() as i64, now);
        let rt = self.threads.get_mut(&tid).unwrap_or_else(|| unreachable!("tid is one of this server's threads"));
        rt.batch = ready;
        self.start_next_item(tid, now + oh, sched);
    }

    /// Picks the next ready channel in the thread's batch and begins its
    /// pop (recv) step; re-polls when the batch is drained.
    fn start_next_item(&mut self, tid: Tid, at: Nanos, sched: &mut Scheduler<'_, Ev>) {
        loop {
            let rt = self.threads.get_mut(&tid).unwrap_or_else(|| unreachable!("tid is one of this server's threads"));
            let Some(channel) = rt.batch.pop() else {
                self.thread_poll(tid, at, sched);
                return;
            };
            // The message may have been consumed by a sibling thread
            // sharing the queue; skip silently (spurious readiness).
            let Some(msg) = self.kernel.channels.recv(channel) else {
                continue;
            };
            let cfg = *self.chan_cfg.get(&channel).unwrap_or_else(|| unreachable!("every channel was registered at startup"));
            // Popping a network-delivered message drains the socket
            // receive queue: fire `sock_queue_drain` with the message's
            // queue residency (softirq delivery to now) and the depth
            // left behind. Internal handoffs (no stack stamps) are not
            // socket drains and stay silent.
            let at = if msg.stack.is_some() {
                let pid = self.threads[&tid].pid;
                let residency = at.saturating_sub(msg.enqueued_at);
                let depth = self.kernel.channels.pending(channel) as u64;
                let oh = self
                    .kernel
                    .tracing
                    .sock_queue_drain(pid, tid, msg.request, residency, depth, at);
                at + oh
            } else {
                at
            };
            let bypass = self.spec.syscall_bypass_fraction > 0.0
                && self.rng_misc.next_bool(self.spec.syscall_bypass_fraction);
            let work = Work {
                request: msg.request,
                bytes: msg.bytes,
                phase: Phase::Recv,
                after: cfg.after,
                bypass,
            };
            let rt = self.threads.get_mut(&tid).unwrap_or_else(|| unreachable!("tid is one of this server's threads"));
            rt.cur = Some(work);
            match cfg.pop_syscall {
                Some(no) if !bypass => {
                    let pid = rt.pid;
                    rt.state = TState::InSyscall;
                    let oh = self.kernel.tracing.sys_enter(pid, tid, no, at);
                    sched.at(at + self.spec.syscall_cost + oh, Ev::SyscallExit { tid });
                    self.pending_syscall.insert(tid, (no, msg.bytes as i64));
                }
                Some(_) => {
                    // io_uring-style receive: same I/O time, no tracepoint.
                    let rt = self.threads.get_mut(&tid).unwrap_or_else(|| unreachable!("tid is one of this server's threads"));
                    rt.state = TState::InSyscall;
                    sched.at(at + self.spec.syscall_cost, Ev::SyscallExit { tid });
                }
                None => {
                    // In-process queue pop: negligible fixed cost, no trace.
                    self.begin_compute(tid, at + Nanos::from_nanos(200), sched);
                }
            }
            return;
        }
    }

    /// Submits the thread's compute demand to the scheduler.
    fn begin_compute(&mut self, tid: Tid, at: Nanos, sched: &mut Scheduler<'_, Ev>) {
        let work = {
            let rt = self.threads.get_mut(&tid).unwrap_or_else(|| unreachable!("tid is one of this server's threads"));
            let work = rt.cur.as_mut().unwrap_or_else(|| unreachable!("the scheduler only runs threads holding work"));
            work.phase = Phase::Compute;
            *work
        };
        if matches!(work.after, AfterPop::Respond) {
            // Egress: no compute, go straight to sending.
            self.begin_send(tid, at, sched);
            return;
        }
        let parse = matches!(
            work.after,
            AfterPop::ComputeAndForward { parse: true, .. }
        );
        let mut demand = if parse {
            self.spec.parse_cost.sample_nanos(&mut self.rng_service)
        } else {
            self.spec.service_time.sample_nanos(&mut self.rng_service)
        };
        // Saturation contention (lock convoys): once the run queue is deep,
        // contention epochs start in which every request's demand is
        // inflated; completions stall during the convoy and flush as a
        // burst afterwards. This is the mechanism behind the rising
        // inter-send variance of Fig. 3 ("increased contention among
        // concurrent requests", §IV-C1).
        if !parse && self.spec.collision_p_max > 0.0 {
            let in_convoy = at < self.convoy_until;
            if in_convoy {
                let factor = self.spec.collision_factor.sample(&mut self.rng_service);
                demand = Nanos::from_nanos((demand.as_nanos() as f64 * factor) as u64);
            } else {
                // Pressure = requests backed up in socket/stage queues; it
                // stays near zero below the knee and grows without bound
                // past it, making it a clean saturation discriminator.
                let pending = self.kernel.channels.total_pending() as f64;
                let threads = self.threads.len() as f64;
                let cores = self.spec.cores as f64;
                // Start probability is normalized by core count so convoy
                // duty cycle is scale-free across workloads; only backlogs
                // deeper than the thread pool (sustained saturation, not an
                // arrival transient) can trigger a convoy.
                let p = (self.spec.collision_p_max / cores)
                    * ((pending - threads) / (pending + 3.0 * threads));
                if pending > threads && self.rng_service.next_bool(p) {
                    let dur = 12.0 * self.spec.service_time.mean();
                    self.convoy_until = at + Nanos::from_nanos(dur as u64);
                    let factor = self.spec.collision_factor.sample(&mut self.rng_service);
                    demand = Nanos::from_nanos((demand.as_nanos() as f64 * factor) as u64);
                }
            }
        }
        self.threads.get_mut(&tid).unwrap_or_else(|| unreachable!("tid is one of this server's threads")).state = TState::AwaitCpu;
        if let Some(grant) = self
            .kernel
            .sched
            .submit(tid, demand, at.max(sched.now()), &mut self.rng_sched)
        {
            let rt = self.threads.get_mut(&tid).unwrap_or_else(|| unreachable!("tid is one of this server's threads"));
            rt.state = TState::Computing;
            sched.at(grant.finish, Ev::ComputeDone { tid });
        }
    }

    /// Handles compute completion: frees the core (possibly dispatching a
    /// queued sibling) and advances this thread to its post-compute step.
    fn handle_compute_done(&mut self, tid: Tid, sched: &mut Scheduler<'_, Ev>) {
        let now = sched.now();
        if let Some(next) = self.kernel.sched.complete(tid, now, &mut self.rng_sched) {
            let rt = self.threads.get_mut(&next.tid).unwrap_or_else(|| unreachable!("tid is one of this server's threads"));
            debug_assert_eq!(rt.state, TState::AwaitCpu);
            rt.state = TState::Computing;
            sched.at(next.finish, Ev::ComputeDone { tid: next.tid });
        }
        let rt = self.threads.get_mut(&tid).unwrap_or_else(|| unreachable!("tid is one of this server's threads"));
        let work = rt.cur.unwrap_or_else(|| unreachable!("the scheduler only runs threads holding work"));
        match work.after {
            AfterPop::ComputeAndRespond => self.begin_send(tid, now, sched),
            AfterPop::ComputeAndForward { to, via, .. } => match via {
                Some(no) => {
                    let rt = self.threads.get_mut(&tid).unwrap_or_else(|| unreachable!("tid is one of this server's threads"));
                    rt.state = TState::InSyscall;
                    rt.cur = Some(Work {
                        phase: Phase::Forward,
                        ..work
                    });
                    let pid = rt.pid;
                    let oh = if work.bypass {
                        Nanos::ZERO
                    } else {
                        let oh = self.kernel.tracing.sys_enter(pid, tid, no, now);
                        self.pending_syscall.insert(tid, (no, work.bytes as i64));
                        oh
                    };
                    self.pending_forward.insert(tid, to);
                    sched.at(now + self.spec.syscall_cost + oh, Ev::SyscallExit { tid });
                }
                None => {
                    self.deliver_internal(to, work.request, work.bytes, now, sched);
                    self.start_next_item(tid, now, sched);
                }
            },
            AfterPop::Respond => self.begin_send(tid, now, sched),
        }
    }

    /// Starts the response-send sequence (one or more send syscalls).
    fn begin_send(&mut self, tid: Tid, at: Nanos, sched: &mut Scheduler<'_, Ev>) {
        let sends = self
            .spec
            .sends_per_request
            .sample_count(&mut self.rng_misc, 1) as u32;
        let rt = self.threads.get_mut(&tid).unwrap_or_else(|| unreachable!("tid is one of this server's threads"));
        let work = rt.cur.as_mut().unwrap_or_else(|| unreachable!("the scheduler only runs threads holding work"));
        work.phase = Phase::Send {
            remaining: sends - 1,
        };
        let (pid, bytes, bypass) = (rt.pid, work.bytes, work.bypass);
        rt.state = TState::InSyscall;
        let send_no = self.spec.profile.primary(SyscallRole::Send);
        let oh = if bypass {
            Nanos::ZERO
        } else {
            let oh = self.kernel.tracing.sys_enter(pid, tid, send_no, at);
            self.pending_syscall.insert(tid, (send_no, bytes as i64));
            oh
        };
        sched.at(
            at.max(sched.now()) + self.spec.syscall_cost + oh,
            Ev::SyscallExit { tid },
        );
    }

    /// Completes the thread's in-flight fast syscall and advances its FSM.
    fn handle_syscall_exit(&mut self, tid: Tid, sched: &mut Scheduler<'_, Ev>) {
        let now = sched.now();
        let rt = self.threads.get_mut(&tid).unwrap_or_else(|| unreachable!("tid is one of this server's threads"));
        let pid = rt.pid;
        // Bypassed (io_uring) I/O has no tracepoint to exit from.
        let oh = match self.pending_syscall.remove(&tid) {
            Some((no, ret)) => self.kernel.tracing.sys_exit(pid, tid, no, ret, now),
            None => Nanos::ZERO,
        };
        let rt = self.threads.get_mut(&tid).unwrap_or_else(|| unreachable!("tid is one of this server's threads"));
        let work = rt.cur.unwrap_or_else(|| unreachable!("the scheduler only runs threads holding work"));
        match work.phase {
            Phase::Recv => self.begin_compute(tid, now + oh, sched),
            Phase::Forward => {
                let to = self.pending_forward.remove(&tid).unwrap_or_else(|| unreachable!("the forward target was recorded before dispatch"));
                self.deliver_internal(to, work.request, work.bytes, now, sched);
                self.start_next_item(tid, now + oh, sched);
            }
            Phase::Send { remaining } => {
                if remaining > 0 {
                    let rt = self.threads.get_mut(&tid).unwrap_or_else(|| unreachable!("tid is one of this server's threads"));
                    rt.cur = Some(Work {
                        phase: Phase::Send {
                            remaining: remaining - 1,
                        },
                        ..work
                    });
                    let send_no = self.spec.profile.primary(SyscallRole::Send);
                    let oh2 = if work.bypass {
                        Nanos::ZERO
                    } else {
                        let oh2 = self.kernel.tracing.sys_enter(pid, tid, send_no, now + oh);
                        self.pending_syscall
                            .insert(tid, (send_no, work.bytes as i64));
                        oh2
                    };
                    sched.at(now + oh + self.spec.syscall_cost + oh2, Ev::SyscallExit { tid });
                } else {
                    // Response leaves the server.
                    let transit = self.path.response.send(&mut self.rng_net);
                    sched.at(
                        now + transit.delay,
                        Ev::ResponseArrived {
                            request: work.request,
                        },
                    );
                    self.start_next_item(tid, now + oh, sched);
                }
            }
            Phase::Compute => unreachable!("compute is not a syscall"),
        }
    }

    /// Runs one softirq/NAPI batch: drains up to a budget of NIC-ring
    /// packets into their socket receive queues, firing the
    /// `net_rx_softirq` tracepoint per packet and waking epoll waiters.
    /// Budget exhaustion re-schedules the remainder (ksoftirqd).
    fn handle_softirq(&mut self, sched: &mut Scheduler<'_, Ev>) {
        let now = sched.now();
        let run = self.kernel.ingress.run_softirq(now, &mut self.rng_softirq);
        for d in run.delivered {
            let nic_wait = d.delivered_at.saturating_sub(d.nic_at);
            let oh = self.kernel.tracing.net_rx_softirq(
                d.packet.request,
                d.packet.bytes,
                nic_wait,
                d.delivered_at,
            );
            self.kernel.channels.deliver(
                d.packet.conn,
                Message {
                    request: d.packet.request,
                    bytes: d.packet.bytes,
                    enqueued_at: d.delivered_at,
                    stack: Some(StackStamps {
                        nic_at: d.nic_at,
                        softirq_at: d.delivered_at,
                    }),
                },
            );
            // Probe overhead runs in softirq context: it delays the wakeup
            // of the draining thread, not the enqueue itself.
            self.wake_watchers(d.packet.conn, d.delivered_at + oh, sched);
        }
        if let Some(next) = run.next {
            sched.at(next, Ev::Softirq);
        }
    }

    /// Delivers a message to an internal channel and wakes a waiter.
    ///
    /// Internal handoffs never cross the network stack, so the message
    /// carries no [`StackStamps`] and the drain tracepoint stays silent.
    fn deliver_internal(
        &mut self,
        channel: ChannelId,
        request: u64,
        bytes: u32,
        now: Nanos,
        sched: &mut Scheduler<'_, Ev>,
    ) {
        self.kernel
            .channels
            .deliver(channel, Message::internal(request, bytes, now));
        self.wake_watchers(channel, now, sched);
    }

    fn wake_watchers(&mut self, channel: ChannelId, now: Nanos, sched: &mut Scheduler<'_, Ev>) {
        for (_, tid) in self.kernel.epolls.on_readable(channel) {
            let rt = self.threads.get_mut(&tid).unwrap_or_else(|| unreachable!("tid is one of this server's threads"));
            debug_assert_eq!(rt.state, TState::Blocked);
            rt.state = TState::Polling;
            sched.at(now + self.wake_cost, Ev::PollExit { tid });
        }
    }

    // Auxiliary per-thread in-flight syscall registers. These live on the
    // struct (not per-thread) to keep `ThreadRt` copy-friendly.
    fn handle_arrival(&mut self, sched: &mut Scheduler<'_, Ev>) {
        let now = sched.now();
        if now >= self.offered_until {
            return;
        }
        let request = self.next_request;
        self.next_request += 1;
        self.offered_count += 1;
        self.in_flight.insert(request, now);
        let conn = self.conns[self.next_conn % self.conns.len()];
        self.next_conn += 1;
        let bytes = self.rng_misc.next_range(100, 1_400) as u32;
        let transit = self.path.request.send(&mut self.rng_net);
        sched.at(
            now + transit.delay,
            Ev::Delivered {
                conn,
                request,
                bytes,
            },
        );
        let gap = self.inter_arrival.sample_nanos(&mut self.rng_arrival);
        sched.after(gap, Ev::Arrival);
    }
}

// The two small per-thread registers used by the FSM. Declared outside the
// main impl for readability; initialized in `new` via Default.
impl ServerSim {
    fn handle_response(&mut self, request: u64, now: Nanos) {
        if let Some(created) = self.in_flight.remove(&request) {
            self.completions.push(Completion {
                request,
                created,
                finished: now,
            });
        }
    }
}

impl Simulation for ServerSim {
    type Event = Ev;

    fn handle(&mut self, event: Ev, sched: &mut Scheduler<'_, Ev>) {
        match event {
            Ev::Arrival => self.handle_arrival(sched),
            Ev::Delivered {
                conn,
                request,
                bytes,
            } => {
                let now = sched.now();
                // NIC arrival: the packet enters the ring and (if no
                // softirq is already pending) raises one. A full ring
                // drops the packet, exactly like a real NIC under
                // overload — the request is simply never answered.
                let packet = RxPacket {
                    conn,
                    request,
                    bytes,
                };
                if let Some(raise_at) = self.kernel.ingress.enqueue(packet, now) {
                    sched.at(raise_at, Ev::Softirq);
                }
            }
            Ev::Softirq => self.handle_softirq(sched),
            Ev::PollExit { tid } => self.handle_poll_exit(tid, sched),
            Ev::SyscallExit { tid } => self.handle_syscall_exit(tid, sched),
            Ev::ComputeDone { tid } => self.handle_compute_done(tid, sched),
            Ev::ResponseArrived { request } => self.handle_response(request, sched.now()),
        }
    }
}
