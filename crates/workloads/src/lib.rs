//! # kscope-workloads
//!
//! The nine latency-sensitive applications of the paper's evaluation
//! (§IV-A) as discrete-event server models, plus the open-loop client and
//! the runner that measures ground truth.
//!
//! Each [`WorkloadSpec`] combines a syscall profile, a threading model
//! (worker pool / two-stage / dispatch pool — the diversity the paper
//! selected its workloads for), calibrated service-time distributions, and
//! a QoS threshold. [`run_workload`] drives the model against a
//! [`NetemConfig`](kscope_netem::NetemConfig) and returns both the
//! client-observed ground truth ([`ClientStats`]) and the server-side
//! syscall evidence (the kernel's trace and any attached probes' state) —
//! the two sides whose correlation the paper measures.
//!
//! # Examples
//!
//! ```
//! use kscope_workloads::{data_caching, run_workload, RunConfig};
//!
//! let spec = data_caching();
//! let config = RunConfig::new(spec.paper_failure_rps * 0.3, 1).quick();
//! let outcome = run_workload(&spec, &config, Vec::new());
//! assert!(outcome.client.completed > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod run;
mod server;
mod spec;

pub use run::{run_workload, run_workload_with, ClientStats, RunConfig, RunOutcome};
pub use server::{Completion, Ev, ServerSim};
pub use spec::{
    all_paper_workloads, data_caching, echo_single_thread, img_dnn, moses, silo, specjbb,
    triton_grpc, triton_http, web_search, xapian, ThreadingModel, WorkloadSpec,
};
