//! Workload specifications: the nine applications of §IV-A.
//!
//! Each [`WorkloadSpec`] captures what the observability methodology can
//! actually see of an application: which syscalls carry requests
//! ([`SyscallProfile`]), how threads are structured (the paper stresses
//! that Data Caching, Web Search, and Triton have deliberately different
//! request-handling threading), and where the capacity knee sits. Service
//! times are calibrated so the simulated failure RPS lands near the values
//! the paper reports for its AMD server (img-dnn = 1950, xapian = 970,
//! silo = 2100, specjbb = 3700, moses = 900, data-caching = 62000,
//! web-search = 420, triton = 21).

use kscope_simcore::{Dist, Nanos};
use kscope_syscalls::SyscallProfile;

/// Request-handling thread structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThreadingModel {
    /// One thread owns every connection: epoll → recv → compute → send.
    SingleThreaded,
    /// `workers` threads, each with a private epoll over a partition of the
    /// connections (memcached/libevent style; also TailBench's pattern,
    /// with `select` instead of `epoll_wait`).
    WorkerPool {
        /// Number of worker threads.
        workers: u32,
    },
    /// Two processes (CloudSuite Web Search): a front-end that reads client
    /// requests and forwards them over an internal socket, and a back-end
    /// pool that processes and writes replies back through the front-end.
    TwoStage {
        /// Front-end threads (share one epoll over conns + reply socket).
        frontend_threads: u32,
        /// Back-end worker threads.
        backend_workers: u32,
    },
    /// Dedicated network thread(s) receive and dispatch in-process to a
    /// worker pool that responds directly (NVIDIA Triton).
    DispatchPool {
        /// Network/dispatcher threads (epoll + recv + enqueue).
        network_threads: u32,
        /// Compute workers (block on the internal queue via futex).
        workers: u32,
    },
}

/// Full description of one benchmark application.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Display name (matches the paper's tables).
    pub name: String,
    /// Benchmark suite the application comes from.
    pub suite: String,
    /// Request-path syscalls (§IV-A).
    pub profile: SyscallProfile,
    /// Thread structure.
    pub threading: ThreadingModel,
    /// Cores available to the server.
    pub cores: u32,
    /// Client connections.
    pub connections: u32,
    /// Per-request service demand in nanoseconds.
    pub service_time: Dist,
    /// Ingress parse cost (dispatch/forward stages) in nanoseconds.
    pub parse_cost: Dist,
    /// Number of send-role syscalls issued per response (≥ 1); variance
    /// here is what degrades the RPS fit (Web Search's R² = 0.86).
    pub sends_per_request: Dist,
    /// In-kernel cost of a recv/send syscall.
    pub syscall_cost: Nanos,
    /// In-kernel cost of a poll syscall that returns immediately.
    pub poll_cost: Nanos,
    /// p99 latency QoS threshold.
    pub qos_p99: Nanos,
    /// The failure RPS the paper reports on the AMD server.
    pub paper_failure_rps: f64,
    /// Saturation contention model: maximum probability that a request's
    /// service demand is inflated by a contention collision (lock convoys,
    /// queue-management overhead — the "increased contention among
    /// concurrent requests" of §IV-C) once the run queue is deep. Zero
    /// disables the effect (used by the ablation bench).
    pub collision_p_max: f64,
    /// Demand multiplier drawn when a collision happens.
    pub collision_factor: Dist,
    /// Fraction of requests whose receive/send I/O bypasses the syscall
    /// layer (io_uring-style, §V-C). Bypassed I/O is invisible to the
    /// tracepoints, so the observability signals degrade; zero everywhere
    /// in the paper's evaluation.
    pub syscall_bypass_fraction: f64,
}

impl WorkloadSpec {
    /// Total server threads implied by the threading model.
    pub fn thread_count(&self) -> u32 {
        match self.threading {
            ThreadingModel::SingleThreaded => 1,
            ThreadingModel::WorkerPool { workers } => workers,
            ThreadingModel::TwoStage {
                frontend_threads,
                backend_workers,
            } => frontend_threads + backend_workers,
            ThreadingModel::DispatchPool {
                network_threads,
                workers,
            } => network_threads + workers,
        }
    }

    /// The nominal capacity (requests/second) implied by cores and mean
    /// service time — the knee the saturation experiments sweep toward.
    pub fn nominal_capacity_rps(&self) -> f64 {
        self.cores as f64 / (self.service_time.mean() / 1e9)
    }

    /// Rescales the workload to a host with `cores` cores: thread pools
    /// and the expected failure RPS scale proportionally (capacity is
    /// cores/service-time). Used by the dual-host generalization
    /// experiment — the paper evaluates on both an AMD and an Intel
    /// server and reports the same trends.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn scaled_to_cores(&self, cores: u32) -> WorkloadSpec {
        assert!(cores > 0, "a host needs at least one core");
        let ratio = cores as f64 / self.cores as f64;
        let scale = |n: u32| -> u32 { ((n as f64 * ratio).round() as u32).max(1) };
        let mut spec = self.clone();
        spec.name = format!("{}@{}c", self.name, cores);
        spec.cores = cores;
        spec.connections = scale(self.connections);
        spec.paper_failure_rps *= ratio;
        spec.threading = match self.threading.clone() {
            ThreadingModel::SingleThreaded => ThreadingModel::SingleThreaded,
            ThreadingModel::WorkerPool { workers } => ThreadingModel::WorkerPool {
                workers: scale(workers),
            },
            ThreadingModel::TwoStage {
                frontend_threads,
                backend_workers,
            } => ThreadingModel::TwoStage {
                frontend_threads: scale(frontend_threads),
                backend_workers: scale(backend_workers),
            },
            ThreadingModel::DispatchPool {
                network_threads,
                workers,
            } => ThreadingModel::DispatchPool {
                network_threads: scale(network_threads),
                workers: scale(workers),
            },
        };
        spec
    }
}

fn tailbench(
    name: &str,
    workers: u32,
    cores: u32,
    service: Dist,
    qos_ms: u64,
    paper_fail: f64,
) -> WorkloadSpec {
    WorkloadSpec {
        name: name.to_string(),
        suite: "TailBench".to_string(),
        profile: SyscallProfile::tailbench(),
        threading: ThreadingModel::WorkerPool { workers },
        cores,
        connections: 4 * workers,
        service_time: service,
        parse_cost: Dist::constant(10_000.0),
        sends_per_request: Dist::constant(1.0),
        syscall_cost: Nanos::from_nanos(1_500),
        poll_cost: Nanos::from_micros(2),
        qos_p99: Nanos::from_millis(qos_ms),
        paper_failure_rps: paper_fail,
        collision_p_max: 0.02,
        collision_factor: Dist::uniform(2.0, 4.0),
        syscall_bypass_fraction: 0.0,
    }
}

/// TailBench img-dnn: handwriting recognition, tight unimodal service times.
pub fn img_dnn() -> WorkloadSpec {
    tailbench(
        "img-dnn",
        32,
        16,
        Dist::lognormal_mean_cv(7.9e6, 0.25),
        60,
        1950.0,
    )
}

/// TailBench xapian: search over Wikipedia, wide query-length spread.
pub fn xapian() -> WorkloadSpec {
    tailbench(
        "xapian",
        32,
        16,
        Dist::lognormal_mean_cv(15.9e6, 0.6),
        130,
        970.0,
    )
}

/// TailBench silo: in-memory OLTP.
pub fn silo() -> WorkloadSpec {
    tailbench(
        "silo",
        32,
        16,
        Dist::lognormal_mean_cv(7.3e6, 0.4),
        60,
        2100.0,
    )
}

/// TailBench specjbb: Java middleware.
pub fn specjbb() -> WorkloadSpec {
    tailbench(
        "specjbb",
        32,
        16,
        Dist::lognormal_mean_cv(4.15e6, 0.5),
        35,
        3700.0,
    )
}

/// TailBench moses: statistical machine translation — bimodal service
/// times (short vs. long sentences) give it the noisiest TailBench fit
/// (R² = 0.94 in the paper).
pub fn moses() -> WorkloadSpec {
    let service = Dist::mix(
        0.25,
        Dist::lognormal_mean_cv(11.5e6, 0.4),
        Dist::lognormal_mean_cv(34.0e6, 0.5),
    );
    let mut spec = tailbench("moses", 32, 16, service, 160, 900.0);
    // Translations stream back in a variable number of chunks, which is
    // what gives moses the noisiest TailBench RPS fit in the paper.
    spec.sends_per_request = Dist::discrete(vec![(1.0, 0.55), (2.0, 0.3), (3.0, 0.15)]);
    spec
}

/// CloudSuite Data Caching (memcached): microsecond-scale requests,
/// `read`/`sendmsg`/`epoll_wait`, one thread per connection partition.
pub fn data_caching() -> WorkloadSpec {
    WorkloadSpec {
        name: "data-caching".to_string(),
        suite: "CloudSuite".to_string(),
        profile: SyscallProfile::data_caching(),
        threading: ThreadingModel::WorkerPool { workers: 16 },
        cores: 8,
        connections: 64,
        service_time: Dist::lognormal_mean_cv(103_000.0, 0.5),
        parse_cost: Dist::constant(3_000.0),
        sends_per_request: Dist::constant(1.0),
        syscall_cost: Nanos::from_nanos(1_200),
        poll_cost: Nanos::from_micros(2),
        qos_p99: Nanos::from_millis(1),
        paper_failure_rps: 62_000.0,
        collision_p_max: 0.02,
        collision_factor: Dist::uniform(2.0, 4.0),
        syscall_bypass_fraction: 0.0,
    }
}

/// CloudSuite Web Search: two containers (front-end + index search); the
/// multi-hop `read`/`write` structure and variable response segmentation
/// make it the noisiest workload (paper R² = 0.86).
pub fn web_search() -> WorkloadSpec {
    WorkloadSpec {
        name: "web-search".to_string(),
        suite: "CloudSuite".to_string(),
        profile: SyscallProfile::web_search(),
        threading: ThreadingModel::TwoStage {
            frontend_threads: 2,
            backend_workers: 16,
        },
        cores: 8,
        connections: 32,
        service_time: Dist::lognormal_mean_cv(15.1e6, 0.7),
        parse_cost: Dist::lognormal_mean_cv(60_000.0, 0.5),
        sends_per_request: Dist::discrete(vec![(1.0, 0.45), (2.0, 0.35), (3.0, 0.15), (4.0, 0.05)]),
        syscall_cost: Nanos::from_nanos(1_500),
        poll_cost: Nanos::from_micros(2),
        qos_p99: Nanos::from_millis(150),
        paper_failure_rps: 420.0,
        collision_p_max: 0.02,
        collision_factor: Dist::uniform(2.0, 4.0),
        syscall_bypass_fraction: 0.0,
    }
}

fn triton(name: &str, profile: SyscallProfile) -> WorkloadSpec {
    WorkloadSpec {
        name: name.to_string(),
        suite: "Triton".to_string(),
        profile,
        threading: ThreadingModel::DispatchPool {
            network_threads: 1,
            workers: 8,
        },
        cores: 4,
        connections: 16,
        service_time: Dist::lognormal_mean_cv(178.0e6, 0.3),
        parse_cost: Dist::lognormal_mean_cv(120_000.0, 0.4),
        sends_per_request: Dist::constant(1.0),
        syscall_cost: Nanos::from_micros(2),
        poll_cost: Nanos::from_micros(3),
        qos_p99: Nanos::from_millis(1_400),
        paper_failure_rps: 21.0,
        collision_p_max: 0.02,
        collision_factor: Dist::uniform(2.0, 4.0),
        syscall_bypass_fraction: 0.0,
    }
}

/// NVIDIA Triton Inference Server over gRPC (`recvmsg`/`sendmsg`).
pub fn triton_grpc() -> WorkloadSpec {
    triton("triton-grpc", SyscallProfile::triton_grpc())
}

/// NVIDIA Triton Inference Server over HTTP (`recvfrom`/`sendto`).
pub fn triton_http() -> WorkloadSpec {
    triton("triton-http", SyscallProfile::triton_http())
}

/// A deliberately simple single-threaded echo server used for the Fig. 1
/// walkthrough (request timelines are reconstructable, §III).
pub fn echo_single_thread() -> WorkloadSpec {
    WorkloadSpec {
        name: "echo".to_string(),
        suite: "demo".to_string(),
        profile: SyscallProfile::data_caching(),
        threading: ThreadingModel::SingleThreaded,
        cores: 1,
        connections: 4,
        service_time: Dist::lognormal_mean_cv(200_000.0, 0.3),
        parse_cost: Dist::constant(2_000.0),
        sends_per_request: Dist::constant(1.0),
        syscall_cost: Nanos::from_nanos(1_000),
        poll_cost: Nanos::from_micros(2),
        qos_p99: Nanos::from_millis(4),
        paper_failure_rps: 4_500.0,
        collision_p_max: 0.02,
        collision_factor: Dist::uniform(2.0, 4.0),
        syscall_bypass_fraction: 0.0,
    }
}

/// The nine workloads of the paper's evaluation, in its order.
pub fn all_paper_workloads() -> Vec<WorkloadSpec> {
    vec![
        img_dnn(),
        xapian(),
        silo(),
        specjbb(),
        moses(),
        data_caching(),
        web_search(),
        triton_http(),
        triton_grpc(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use kscope_syscalls::{SyscallNo, SyscallRole};

    #[test]
    fn catalog_has_nine_workloads() {
        let all = all_paper_workloads();
        assert_eq!(all.len(), 9);
        let names: Vec<&str> = all.iter().map(|w| w.name.as_str()).collect();
        assert!(names.contains(&"img-dnn"));
        assert!(names.contains(&"web-search"));
        assert!(names.contains(&"triton-grpc"));
    }

    #[test]
    fn capacity_sits_above_paper_failure_rps() {
        for spec in all_paper_workloads() {
            let cap = spec.nominal_capacity_rps();
            assert!(
                cap > spec.paper_failure_rps * 0.95 && cap < spec.paper_failure_rps * 1.35,
                "{name}: capacity {cap:.0} vs paper failure {fail}",
                name = spec.name,
                fail = spec.paper_failure_rps
            );
        }
    }

    #[test]
    fn syscall_profiles_match_section_iv_a() {
        assert_eq!(
            img_dnn().profile.primary(SyscallRole::Poll),
            SyscallNo::SELECT
        );
        assert_eq!(
            data_caching().profile.primary(SyscallRole::Send),
            SyscallNo::SENDMSG
        );
        assert_eq!(
            web_search().profile.primary(SyscallRole::Receive),
            SyscallNo::READ
        );
        assert_eq!(
            triton_grpc().profile.primary(SyscallRole::Receive),
            SyscallNo::RECVMSG
        );
        assert_eq!(
            triton_http().profile.primary(SyscallRole::Send),
            SyscallNo::SENDTO
        );
    }

    #[test]
    fn thread_counts_match_models() {
        assert_eq!(img_dnn().thread_count(), 32);
        assert_eq!(web_search().thread_count(), 18);
        assert_eq!(triton_grpc().thread_count(), 9);
        assert_eq!(echo_single_thread().thread_count(), 1);
    }

    #[test]
    fn scaled_to_cores_preserves_ratios() {
        let base = data_caching();
        let half = base.scaled_to_cores(4);
        assert_eq!(half.cores, 4);
        assert!((half.paper_failure_rps - base.paper_failure_rps / 2.0).abs() < 1.0);
        assert_eq!(half.thread_count(), base.thread_count() / 2);
        assert!((half.nominal_capacity_rps() - base.nominal_capacity_rps() / 2.0).abs() < 1.0);
    }

    #[test]
    fn moses_service_time_is_heavier_than_img_dnn() {
        assert!(moses().service_time.mean() > img_dnn().service_time.mean());
    }
}
