//! Behavioural tests of the threading archetypes: each model must emit
//! the syscall mix §IV-A describes for its application family.

use kscope_netem::NetemConfig;
use kscope_simcore::Nanos;
use kscope_syscalls::{SyscallNo, Trace};
use kscope_workloads::{
    data_caching, run_workload, triton_grpc, web_search, xapian, RunConfig, WorkloadSpec,
};

fn trace_of(spec: &WorkloadSpec, fraction: f64, seed: u64) -> (Trace, u64) {
    let offered = spec.paper_failure_rps * fraction;
    let mut config = RunConfig::new(offered, seed);
    config.netem = NetemConfig::ideal();
    config.warmup = Nanos::from_millis(100);
    config.measure = Nanos::from_secs_f64((600.0 / offered).clamp(0.5, 120.0));
    let outcome = run_workload(spec, &config, Vec::new());
    (outcome.trace, outcome.client.completed)
}

fn count(trace: &Trace, no: SyscallNo) -> usize {
    trace.filter_syscall(no).len()
}

#[test]
fn tailbench_uses_recvfrom_sendto_select() {
    let spec = xapian();
    let (trace, completed) = trace_of(&spec, 0.4, 11);
    assert!(completed > 100);
    let recv = count(&trace, SyscallNo::RECVFROM);
    let send = count(&trace, SyscallNo::SENDTO);
    let select = count(&trace, SyscallNo::SELECT);
    assert!(recv > 0 && send > 0 && select > 0);
    // One recv and one send per request (ratios, window edges allowed).
    assert!((recv as f64 / completed as f64 - 1.0).abs() < 0.15);
    assert!((send as f64 / completed as f64 - 1.0).abs() < 0.15);
    // No epoll in a select-based app.
    assert_eq!(count(&trace, SyscallNo::EPOLL_WAIT), 0);
}

#[test]
fn data_caching_uses_read_sendmsg_epoll() {
    let spec = data_caching();
    let (trace, completed) = trace_of(&spec, 0.4, 12);
    assert!(completed > 100);
    assert!(count(&trace, SyscallNo::READ) > 0);
    assert!(count(&trace, SyscallNo::SENDMSG) > 0);
    assert!(count(&trace, SyscallNo::EPOLL_WAIT) > 0);
    assert_eq!(count(&trace, SyscallNo::SELECT), 0);
    assert_eq!(count(&trace, SyscallNo::FUTEX), 0);
}

#[test]
fn web_search_is_multi_hop_and_two_process() {
    let spec = web_search();
    let (trace, completed) = trace_of(&spec, 0.4, 13);
    assert!(completed > 50);
    let reads = count(&trace, SyscallNo::READ) as f64;
    let writes = count(&trace, SyscallNo::WRITE) as f64;
    let n = completed as f64;
    // Three reads per request: conn, stage socket, reply socket.
    assert!(
        (reads / n - 3.0).abs() < 0.4,
        "reads/request = {:.2}",
        reads / n
    );
    // Writes: forward + backend reply + variable egress (mean ~1.8).
    assert!(
        writes / n > 3.0 && writes / n < 5.0,
        "writes/request = {:.2}",
        writes / n
    );
    // Two distinct processes appear in the trace.
    let mut pids: Vec<u32> = trace.events().iter().map(|e| e.pid).collect();
    pids.sort_unstable();
    pids.dedup();
    assert_eq!(pids.len(), 2, "expected two processes, got {pids:?}");
}

#[test]
fn triton_workers_wait_on_futex_not_epoll() {
    let spec = triton_grpc();
    let (trace, completed) = trace_of(&spec, 0.5, 14);
    assert!(completed > 20);
    let futex = count(&trace, SyscallNo::FUTEX);
    let epoll = count(&trace, SyscallNo::EPOLL_WAIT);
    assert!(futex > 0, "compute workers should block via futex");
    assert!(epoll > 0, "network thread should block via epoll");
    // The recv/send path is recvmsg/sendmsg.
    assert!(count(&trace, SyscallNo::RECVMSG) > 0);
    assert!(count(&trace, SyscallNo::SENDMSG) > 0);
    assert_eq!(count(&trace, SyscallNo::RECVFROM), 0);
}

#[test]
fn epoll_wait_return_value_counts_ready_channels() {
    let spec = data_caching();
    let (trace, _) = trace_of(&spec, 0.3, 15);
    let polls = trace.filter_syscall(SyscallNo::EPOLL_WAIT);
    assert!(polls.iter().all(|e| e.ret >= 0));
    assert!(polls.iter().any(|e| e.ret >= 1));
}

#[test]
fn syscall_bypass_removes_traced_io_but_not_throughput() {
    let mut spec = data_caching();
    let (clean_trace, clean_done) = trace_of(&spec, 0.4, 16);
    spec.syscall_bypass_fraction = 1.0;
    let (bypass_trace, bypass_done) = trace_of(&spec, 0.4, 16);
    // Same throughput...
    assert!(
        (clean_done as f64 - bypass_done as f64).abs() / clean_done as f64 * 100.0 < 10.0,
        "{clean_done} vs {bypass_done}"
    );
    // ...but the traced recv/send I/O is gone (polls remain).
    assert_eq!(bypass_trace.filter_syscall(SyscallNo::READ).len(), 0);
    assert_eq!(bypass_trace.filter_syscall(SyscallNo::SENDMSG).len(), 0);
    assert!(!bypass_trace.filter_syscall(SyscallNo::EPOLL_WAIT).is_empty());
    assert!(!clean_trace.filter_syscall(SyscallNo::READ).is_empty());
}

#[test]
fn overload_accumulates_backlog() {
    let spec = data_caching();
    let offered = spec.paper_failure_rps * 1.4;
    let mut config = RunConfig::new(offered, 18).quick();
    config.collect_trace = false;
    let outcome = run_workload(&spec, &config, Vec::new());
    // In deep overload the achieved rate pins below offered.
    assert!(
        outcome.client.achieved_rps < offered * 0.9,
        "achieved {} vs offered {offered}",
        outcome.client.achieved_rps
    );
}
