//! The parallel sweep runner is bitwise deterministic: running the same
//! sweep with one worker (the serial reference) and with four workers
//! must produce *identical* results — not statistically close, identical
//! to the last bit of every float.
//!
//! This holds because levels are independent simulations with split
//! seeds (`config.seed + level index`), results are written back by
//! input index, and no cross-level float reduction happens inside the
//! pool. `Debug`-formatting the full result uses Rust's
//! shortest-roundtrip float rendering, so string equality here is
//! bit-for-bit equality of every number in the structure.

use kscope_experiments::{sweep_jobs, BackendKind, SweepConfig};
use kscope_netem::NetemConfig;
use kscope_workloads::data_caching;

fn reduced_config() -> SweepConfig {
    SweepConfig {
        fractions: vec![0.3, 0.7, 1.0],
        windows_per_level: 2,
        min_send_samples: 96,
        netem: NetemConfig::loopback(),
        seed: 7,
        backend: BackendKind::Native,
    }
}

#[test]
fn one_worker_and_four_workers_agree_bitwise() {
    let spec = data_caching();
    let config = reduced_config();
    let serial = sweep_jobs(&spec, &config, 1);
    let parallel = sweep_jobs(&spec, &config, 4);

    assert_eq!(serial.levels.len(), config.fractions.len());
    assert_eq!(parallel.levels.len(), config.fractions.len());
    // Spot-check structured fields first for a readable failure...
    for (i, (s, p)) in serial.levels.iter().zip(&parallel.levels).enumerate() {
        assert_eq!(
            s.offered_rps.to_bits(),
            p.offered_rps.to_bits(),
            "level {i}: offered load diverges"
        );
        assert_eq!(s.client, p.client, "level {i}: client stats diverge");
        assert_eq!(
            s.windows.len(),
            p.windows.len(),
            "level {i}: window count diverges"
        );
    }
    // ...then hold the entire structure to bitwise identity.
    assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
}

#[test]
fn oversubscribed_pool_still_agrees() {
    // More workers than levels exercises the jobs.min(items) clamp.
    let spec = data_caching();
    let config = reduced_config();
    let serial = sweep_jobs(&spec, &config, 1);
    let flooded = sweep_jobs(&spec, &config, 32);
    assert_eq!(format!("{serial:?}"), format!("{flooded:?}"));
}

#[test]
fn repeated_parallel_runs_are_stable() {
    // Scheduling nondeterminism must not leak: two parallel runs of the
    // same sweep are identical to each other, not only to the serial one.
    let spec = data_caching();
    let config = reduced_config();
    let a = sweep_jobs(&spec, &config, 4);
    let b = sweep_jobs(&spec, &config, 4);
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}
