//! Figure 4: poll-syscall duration vs load — the saturation-slack signal.
//!
//! Per workload: normalized mean `epoll_wait`/`select` duration against
//! real RPS, with the QoS-failure point marked. The paper's observation:
//! the duration shrinks as load rises (idleness is consumed) and
//! stabilizes at a floor once the server saturates.

use kscope_analysis::{normalize_by_max, AsciiChart, TextTable};
use kscope_workloads::{all_paper_workloads, WorkloadSpec};

use crate::sweep::{sweep, SweepConfig, SweepResult};
use crate::Scale;

/// The slack curve of one workload.
#[derive(Debug, Clone)]
pub struct SlackCurve {
    /// Workload name.
    pub workload: String,
    /// Achieved RPS per level.
    pub rps: Vec<f64>,
    /// Normalized mean poll duration per level.
    pub poll_norm: Vec<f64>,
    /// Raw mean poll duration per level (ns).
    pub poll_raw: Vec<f64>,
    /// Index of the first QoS-violating level.
    pub failure_idx: Option<usize>,
    /// Whether the curve is monotonically non-increasing up to the failure
    /// point (within `tolerance`).
    pub monotone_decreasing: bool,
}

/// Extracts the Fig. 4 curve from a sweep.
pub fn curve_from_sweep(result: &SweepResult) -> SlackCurve {
    let mut rps = Vec::new();
    let mut poll = Vec::new();
    for level in &result.levels {
        if let Some(p) = level.mean_poll_ns() {
            rps.push(level.client.achieved_rps);
            poll.push(p);
        }
    }
    let failure_idx = result
        .levels
        .iter()
        .position(|l| l.violates_qos(&result.spec));
    let up_to = failure_idx.unwrap_or(poll.len()).min(poll.len());
    let monotone = poll[..up_to]
        .windows(2)
        .all(|w| w[1] <= w[0] * 1.15); // 15% tolerance for window noise
    SlackCurve {
        workload: result.spec.name.clone(),
        rps: rps.clone(),
        poll_norm: normalize_by_max(&poll),
        poll_raw: poll,
        failure_idx,
        monotone_decreasing: monotone,
    }
}

/// Runs the experiment for one workload.
pub fn analyze_workload(spec: &WorkloadSpec, config: &SweepConfig) -> SlackCurve {
    curve_from_sweep(&sweep(spec, config))
}

/// Runs the experiment for all workloads.
pub fn run(scale: Scale) -> Vec<SlackCurve> {
    let config = match scale {
        Scale::Full => SweepConfig::full(),
        Scale::Quick => SweepConfig::quick(),
    };
    all_paper_workloads()
        .iter()
        .map(|spec| analyze_workload(spec, &config))
        .collect()
}

/// Renders summary + charts.
pub fn render(curves: &[SlackCurve], with_charts: bool) -> String {
    let mut table = TextTable::new(vec![
        "workload",
        "poll dur @ lightest",
        "poll dur @ heaviest",
        "ratio",
        "monotone to failure",
    ]);
    for c in curves {
        let first = *c.poll_raw.first().unwrap_or(&0.0);
        let last = *c.poll_raw.last().unwrap_or(&0.0);
        table.row(vec![
            c.workload.clone(),
            format!("{:.1} us", first / 1_000.0),
            format!("{:.1} us", last / 1_000.0),
            if last > 0.0 {
                format!("{:.0}x", first / last)
            } else {
                "-".to_string()
            },
            if c.monotone_decreasing { "yes" } else { "no" }.to_string(),
        ]);
    }
    let mut out = String::from(
        "Figure 4 — mean poll (epoll_wait/select) duration vs RPS\n\
         (vertical bar = QoS failure point)\n\n",
    );
    out.push_str(&table.render());
    if with_charts {
        for c in curves {
            let rps_norm = normalize_by_max(&c.rps);
            let mut chart = AsciiChart::new(56, 12);
            chart
                .title(format!("{}: poll duration vs load", c.workload))
                .x_label("normalized RPS_real")
                .y_label("normalized mean poll duration")
                .series(c.workload.clone(), &rps_norm, &c.poll_norm, '*');
            if let Some(idx) = c.failure_idx {
                if idx < rps_norm.len() {
                    chart.vertical_marker(rps_norm[idx], '|');
                }
            }
            out.push('\n');
            out.push_str(&chart.render());
        }
    }
    out
}

/// CSV rows: `workload,rps,poll_norm,poll_ns`.
pub fn to_csv(curves: &[SlackCurve]) -> String {
    let mut table = TextTable::new(vec!["workload", "rps", "poll_norm", "poll_ns"]);
    for c in curves {
        for i in 0..c.rps.len() {
            table.row(vec![
                c.workload.clone(),
                format!("{:.1}", c.rps[i]),
                format!("{:.6}", c.poll_norm[i]),
                format!("{:.1}", c.poll_raw[i]),
            ]);
        }
    }
    table.to_csv()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_duration_shrinks_with_load() {
        let spec = kscope_workloads::data_caching();
        let curve = analyze_workload(&spec, &SweepConfig::quick());
        assert!(curve.monotone_decreasing, "{:?}", curve.poll_raw);
        let first = curve.poll_raw[0];
        let last = *curve.poll_raw.last().unwrap();
        assert!(
            first > 10.0 * last,
            "expected order-of-magnitude collapse: {first} -> {last}"
        );
    }
}
