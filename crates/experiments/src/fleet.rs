//! Fleet robustness: signal error vs control-channel loss.
//!
//! The fleet's report payloads are cumulative sufficient statistics, so a
//! lossy, feedback-free control channel can only make the collector's view
//! *stale*, never biased. This experiment quantifies that claim: the same
//! 16-host fleet (same seed, hence byte-identical per-host traffic) is run
//! under increasing report loss, and each lossy rollup is compared against
//! the lossless one. The documented bound: at ≤20% report loss the fleet
//! observed-RPS error stays within [`RPS_ERROR_BOUND`], with every dropped
//! and stale report surfaced in the accounting rather than silently
//! absorbed.

use kscope_analysis::{AsciiChart, TextTable};
use kscope_fleet::{run_fleet, FleetConfig, FleetRollup};

use crate::Scale;

/// Documented bound on the fleet observed-RPS relative error at ≤20%
/// report loss (cumulative payloads keep the lossy view merely stale).
pub const RPS_ERROR_BOUND: f64 = 0.05;

/// Loss rates swept, lossless baseline first.
pub const LOSS_LEVELS: [f64; 4] = [0.0, 0.05, 0.10, 0.20];

/// One loss level's rollup, compared against the lossless baseline.
#[derive(Debug, Clone)]
pub struct LossPoint {
    /// Steady-state report loss on the control channel.
    pub loss: f64,
    /// Fleet observed RPS (sum of per-host Eq. 1 rates).
    pub fleet_rps: f64,
    /// Relative error of `fleet_rps` vs the lossless baseline.
    pub rps_err: f64,
    /// Relative error of the merged-histogram p99 poll slack vs baseline.
    pub slack_p99_err: f64,
    /// Reports the channel dropped.
    pub dropped: u64,
    /// Reports the collector discarded as stale (reordered).
    pub stale: u64,
    /// Reports shed at the senders by the inflight bound.
    pub shed: u64,
    /// Sequence gaps the collector observed.
    pub gaps: u64,
    /// Hosts the collector never heard from.
    pub silent_hosts: usize,
}

/// Full experiment result.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// Fleet size.
    pub hosts: usize,
    /// Lossless fleet RPS the errors are measured against.
    pub baseline_rps: f64,
    /// One point per entry of [`LOSS_LEVELS`].
    pub points: Vec<LossPoint>,
}

fn rel_err(x: f64, baseline: f64) -> f64 {
    (x - baseline).abs() / baseline.abs().max(1e-9)
}

fn rollup_at(config: &FleetConfig) -> FleetRollup {
    match run_fleet(config) {
        Ok(run) => run.rollup(1),
        // The probe program is fixed; a build failure is a bug, not data.
        Err(e) => panic!("fleet probe build failed: {e:?}"),
    }
}

/// Runs the sweep: one fleet per loss level, identical traffic throughout
/// (host RNG streams fork from the seed by host id alone, so the channel
/// configuration cannot perturb what the probes observe).
pub fn run(scale: Scale) -> FleetResult {
    let hosts = match scale {
        Scale::Full => 16,
        Scale::Quick => 8,
    };
    let config_at = |loss: f64| {
        let base = match scale {
            Scale::Full => FleetConfig::new(hosts),
            Scale::Quick => FleetConfig::quick(hosts),
        };
        base.with_loss(loss)
    };
    let baseline = rollup_at(&config_at(0.0));
    let points = LOSS_LEVELS
        .iter()
        .map(|&loss| {
            let rollup = if loss == 0.0 {
                baseline.clone()
            } else {
                rollup_at(&config_at(loss))
            };
            let acc = rollup.accounting;
            let slack_p99_err = match (rollup.slack_p99_ns, baseline.slack_p99_ns) {
                (Some(lossy), Some(clean)) => rel_err(lossy, clean),
                _ => 0.0,
            };
            LossPoint {
                loss,
                fleet_rps: rollup.fleet_rps,
                rps_err: rel_err(rollup.fleet_rps, baseline.fleet_rps),
                slack_p99_err,
                dropped: acc.channel_dropped,
                stale: acc.stale,
                shed: acc.shed,
                gaps: acc.gaps,
                silent_hosts: rollup.silent_hosts,
            }
        })
        .collect();
    FleetResult {
        hosts,
        baseline_rps: baseline.fleet_rps,
        points,
    }
}

/// Renders the loss-robustness table (and chart).
pub fn render(result: &FleetResult, with_charts: bool) -> String {
    let mut table = TextTable::new(vec![
        "loss %", "fleet rps", "rps err %", "p99 err %", "dropped", "stale", "shed", "gaps",
        "silent",
    ]);
    for p in &result.points {
        table.row(vec![
            format!("{:.0}", p.loss * 100.0),
            format!("{:.1}", p.fleet_rps),
            format!("{:.3}", p.rps_err * 100.0),
            format!("{:.3}", p.slack_p99_err * 100.0),
            p.dropped.to_string(),
            p.stale.to_string(),
            p.shed.to_string(),
            p.gaps.to_string(),
            p.silent_hosts.to_string(),
        ]);
    }
    let mut out = format!(
        "Fleet robustness — {} hosts, signal error vs report loss\n\n",
        result.hosts
    );
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nlossless fleet rps: {:.1}; documented bound at <=20% loss: {:.0}% rps error\n",
        result.baseline_rps,
        RPS_ERROR_BOUND * 100.0
    ));
    if with_charts {
        let loss: Vec<f64> = result.points.iter().map(|p| p.loss * 100.0).collect();
        let err: Vec<f64> = result.points.iter().map(|p| p.rps_err * 100.0).collect();
        let mut chart = AsciiChart::new(56, 12);
        chart
            .title("fleet rps error vs report loss")
            .x_label("report loss (%)")
            .y_label("rps error (%)")
            .series("rps err", &loss, &err, 'o');
        out.push('\n');
        out.push_str(&chart.render());
    }
    out
}

/// CSV rows.
pub fn to_csv(result: &FleetResult) -> String {
    let mut table = TextTable::new(vec![
        "loss",
        "fleet_rps",
        "rps_err",
        "slack_p99_err",
        "dropped",
        "stale",
        "shed",
        "gaps",
        "silent_hosts",
    ]);
    for p in &result.points {
        table.row(vec![
            format!("{:.2}", p.loss),
            format!("{:.3}", p.fleet_rps),
            format!("{:.6}", p.rps_err),
            format!("{:.6}", p.slack_p99_err),
            p.dropped.to_string(),
            p.stale.to_string(),
            p.shed.to_string(),
            p.gaps.to_string(),
            p.silent_hosts.to_string(),
        ]);
    }
    table.to_csv()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rps_error_stays_inside_documented_bound() {
        let result = run(Scale::Quick);
        assert_eq!(result.points.len(), LOSS_LEVELS.len());
        assert!(result.baseline_rps > 0.0);
        for p in &result.points {
            assert!(
                p.rps_err <= RPS_ERROR_BOUND,
                "loss {:.2}: rps err {:.4} exceeds the documented bound",
                p.loss,
                p.rps_err
            );
        }
        // The baseline point is the baseline itself.
        assert_eq!(result.points[0].rps_err, 0.0);
        assert_eq!(result.points[0].dropped, 0);
        // High loss must actually drop reports, and those drops must be
        // surfaced — robustness without accounting is indistinguishable
        // from a channel that never lost anything.
        let worst = match result.points.last() {
            Some(p) => p,
            None => unreachable!("LOSS_LEVELS is non-empty"),
        };
        assert!(worst.dropped > 0, "20% loss dropped nothing");
        assert!(worst.gaps > 0, "drops left no visible sequence gaps");
    }
}
