//! §V-C: the io_uring blind spot, quantified.
//!
//! The paper notes that syscall-based statistics require syscall activity:
//! "in scenarios where advanced I/O frameworks like io_uring are used,
//! which bypass traditional syscalls, our method may not yield useful
//! insights". This experiment makes that limitation concrete: a fraction
//! of requests perform their receive/send I/O without entering the kernel
//! through syscalls, and the Eq. 1 estimate degrades in direct proportion
//! — while client throughput is unchanged.

use kscope_analysis::TextTable;
use kscope_core::{NativeBackend, RpsEstimator, WindowedObserver, DEFAULT_SHIFT};
use kscope_kernel::TracepointProbe;
use kscope_simcore::Nanos;
use kscope_workloads::{data_caching, run_workload_with, RunConfig};

use crate::Scale;

/// One bypass level's measurement.
#[derive(Debug, Clone, Copy)]
pub struct BypassRow {
    /// Fraction of requests using syscall-bypassing I/O.
    pub bypass_fraction: f64,
    /// Ground-truth achieved RPS.
    pub rps_real: f64,
    /// Eq. 1 estimate from the (partially blind) probe.
    pub rps_obsv: f64,
}

impl BypassRow {
    /// The fraction of throughput the probe can still see.
    pub fn visibility(&self) -> f64 {
        self.rps_obsv / self.rps_real
    }
}

/// Runs the experiment: fixed 60% load, sweeping the bypass fraction.
pub fn run(scale: Scale) -> Vec<BypassRow> {
    let fractions: &[f64] = if scale == Scale::Full {
        &[0.0, 0.1, 0.25, 0.5, 0.75, 0.9]
    } else {
        &[0.0, 0.5]
    };
    let mut rows = Vec::new();
    for &bypass in fractions {
        let mut spec = data_caching();
        spec.syscall_bypass_fraction = bypass;
        let offered = spec.paper_failure_rps * 0.6;
        let mut config = RunConfig::new(offered, 61);
        config.collect_trace = false;
        if scale == Scale::Quick {
            config = config.quick();
        }
        let outcome = run_workload_with(&spec, &config, |sim| {
            vec![Box::new(WindowedObserver::new(
                NativeBackend::new_multi(sim.server_pids(), spec.profile.clone(), DEFAULT_SHIFT),
                Nanos::from_millis(200),
            )) as Box<dyn TracepointProbe>]
        });
        let mut kernel = outcome.kernel;
        let mut probe = match kernel.tracing.detach(outcome.probes[0]) {
            Some(probe) => probe,
            None => unreachable!("probe id came from this run's attach"),
        };
        let observer = match probe
            .as_any_mut()
            .downcast_mut::<WindowedObserver<NativeBackend>>()
        {
            Some(observer) => observer,
            None => unreachable!("this run attached a native windowed observer"),
        };
        observer.finish(outcome.end);
        let windows: Vec<_> = observer
            .windows()
            .iter()
            .copied()
            .filter(|w| w.start >= outcome.warmup_end)
            .collect();
        let rps_obsv = RpsEstimator::with_min_samples(64)
            .from_windows(&windows)
            .unwrap_or(0.0);
        rows.push(BypassRow {
            bypass_fraction: bypass,
            rps_real: outcome.client.achieved_rps,
            rps_obsv,
        });
    }
    rows
}

/// Renders the table.
pub fn render(rows: &[BypassRow]) -> String {
    let mut table = TextTable::new(vec![
        "bypass fraction",
        "RPS real",
        "RPS_obsv",
        "visibility",
    ]);
    for row in rows {
        table.row(vec![
            format!("{:.0}%", row.bypass_fraction * 100.0),
            format!("{:.0}", row.rps_real),
            format!("{:.0}", row.rps_obsv),
            format!("{:.0}%", row.visibility() * 100.0),
        ]);
    }
    let mut out = String::from(
        "§V-C — io_uring blind spot: syscall-bypassing I/O degrades Eq. 1\n\
         in proportion to the bypass fraction (throughput itself unchanged)\n\n",
    );
    out.push_str(&table.render());
    out
}

/// CSV form.
pub fn to_csv(rows: &[BypassRow]) -> String {
    let mut table = TextTable::new(vec!["bypass_fraction", "rps_real", "rps_obsv"]);
    for row in rows {
        table.row(vec![
            format!("{}", row.bypass_fraction),
            format!("{:.2}", row.rps_real),
            format!("{:.2}", row.rps_obsv),
        ]);
    }
    table.to_csv()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bypass_blinds_the_probe_proportionally() {
        let rows = run(Scale::Quick);
        let clean = rows[0];
        let half = rows[1];
        // Throughput is unaffected by the I/O path...
        assert!(
            (half.rps_real - clean.rps_real).abs() / clean.rps_real < 0.1,
            "real rps moved: {clean:?} vs {half:?}"
        );
        // ...but the estimate sees only the non-bypassed half.
        assert!(
            (half.visibility() - 0.5).abs() < 0.1,
            "visibility {:.3}",
            half.visibility()
        );
        assert!(clean.visibility() > 0.9);
    }
}
