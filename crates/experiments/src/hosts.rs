//! Dual-host generalization (§IV-A, Table I).
//!
//! The paper evaluates on an AMD EPYC 7302 and an Intel Xeon E5-2620 and
//! observes "similar trends across both servers, showing us that as long
//! as eBPF is supported, eBPF observability of request-level metrics will
//! work on any underlying hardware". Here: the same workloads rescaled to
//! the Intel profile's core count keep their R² and their signal shapes;
//! only the knee position moves with capacity.

use kscope_analysis::TextTable;
use kscope_kernel::HostSpec;
use kscope_workloads::{data_caching, img_dnn, WorkloadSpec};

use crate::fig2::analyze_workload;
use crate::sweep::SweepConfig;
use crate::Scale;

/// One (workload, host) measurement.
#[derive(Debug, Clone)]
pub struct HostRow {
    /// Workload name (with core-count suffix for the scaled variant).
    pub workload: String,
    /// Host label.
    pub host: String,
    /// Cores the workload ran with.
    pub cores: u32,
    /// Fig. 2 R² on this host.
    pub r_squared: f64,
    /// Measured knee (first QoS-violating offered level), RPS.
    pub knee_rps: Option<f64>,
}

fn measure(spec: &WorkloadSpec, host: &str, config: &SweepConfig) -> HostRow {
    let result = crate::sweep::sweep(spec, config);
    let knee = result.failure_level().map(|l| l.offered_rps);
    let (row, _) = analyze_workload(spec, config);
    HostRow {
        workload: spec.name.clone(),
        host: host.to_string(),
        cores: spec.cores,
        r_squared: row.r_squared,
        knee_rps: knee,
    }
}

/// Runs the experiment: two workloads × two host profiles.
pub fn run(scale: Scale) -> Vec<HostRow> {
    let config = match scale {
        Scale::Full => SweepConfig::full(),
        Scale::Quick => SweepConfig::quick(),
    };
    let amd = HostSpec::amd_epyc_7302();
    let intel = HostSpec::intel_xeon_e5_2620();
    // The workload catalog is calibrated against the AMD profile; the
    // Intel variant halves the cores (16 vs 32 physical).
    let intel_ratio = intel.physical_cores() as f64 / amd.physical_cores() as f64;
    let specs: Vec<WorkloadSpec> = if scale == Scale::Full {
        vec![data_caching(), img_dnn()]
    } else {
        vec![data_caching()]
    };
    let mut rows = Vec::new();
    for spec in specs {
        rows.push(measure(&spec, &amd.cpu_model, &config));
        let scaled = spec.scaled_to_cores((spec.cores as f64 * intel_ratio).round() as u32);
        rows.push(measure(&scaled, &intel.cpu_model, &config));
    }
    rows
}

/// Renders the table.
pub fn render(rows: &[HostRow]) -> String {
    let mut table = TextTable::new(vec!["workload", "host", "cores", "R^2", "knee (rps)"]);
    for row in rows {
        table.row(vec![
            row.workload.clone(),
            row.host.clone(),
            row.cores.to_string(),
            format!("{:.4}", row.r_squared),
            row.knee_rps
                .map(|k| format!("{k:.0}"))
                .unwrap_or_else(|| "-".to_string()),
        ]);
    }
    let mut out = String::from(
        "Dual-host generalization — same signals, capacity-scaled knees\n\n",
    );
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signals_generalize_across_hosts() {
        let rows = run(Scale::Quick);
        assert_eq!(rows.len(), 2);
        let amd = &rows[0];
        let intel = &rows[1];
        // R² holds on both hosts.
        assert!(amd.r_squared > 0.93, "AMD R² {}", amd.r_squared);
        assert!(intel.r_squared > 0.93, "Intel R² {}", intel.r_squared);
        // The knee scales with core count (half the cores, roughly half
        // the capacity).
        let (ka, ki) = (amd.knee_rps.unwrap(), intel.knee_rps.unwrap());
        let ratio = ki / ka;
        assert!(
            (0.35..0.7).contains(&ratio),
            "knee ratio {ratio:.3} ({ki:.0} vs {ka:.0})"
        );
    }
}
