//! Regenerates Figure 5 (loss robustness, Triton/gRPC).
use kscope_experiments::{fig5, write_artifact, Scale};

fn main() {
    let scale = Scale::from_args();
    let result = fig5::run(scale);
    println!("{}", fig5::render(&result, true));
    if let Some(path) = write_artifact("fig5_loss_robustness.csv", &fig5::to_csv(&result)) {
        println!("series written to {}", path.display());
    }
}
