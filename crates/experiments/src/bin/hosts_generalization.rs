//! Regenerates the dual-host generalization study.
use kscope_experiments::{hosts, Scale};

fn main() {
    let rows = hosts::run(Scale::from_args());
    println!("{}", hosts::render(&rows));
}
