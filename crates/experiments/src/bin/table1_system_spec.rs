//! Prints Table I (system specification of the simulated hosts).
use kscope_experiments::table1;

fn main() {
    println!("{}", table1::render());
}
