//! Regenerates the §VI probe-overhead study.
use kscope_experiments::{overhead, write_artifact, Scale};

fn main() {
    let rows = overhead::run(Scale::from_args());
    println!("{}", overhead::render(&rows));
    if let Some(path) = write_artifact("overhead_study.csv", &overhead::to_csv(&rows)) {
        println!("rows written to {}", path.display());
    }
}
