//! Regenerates the §V-C io_uring blind-spot study.
use kscope_experiments::{iouring, write_artifact, Scale};

fn main() {
    let rows = iouring::run(Scale::from_args());
    println!("{}", iouring::render(&rows));
    if let Some(path) = write_artifact("iouring_limitation.csv", &iouring::to_csv(&rows)) {
        println!("rows written to {}", path.display());
    }
}
