//! Regenerates the netstack figure (time-in-stack vs the syscall signal
//! under netem impairment).
use kscope_experiments::{fig_netstack, write_artifact, Scale};

fn main() {
    let scale = Scale::from_args();
    let result = fig_netstack::run(scale);
    println!("{}", fig_netstack::render(&result, true));
    if let Some(path) = write_artifact("fig_netstack.csv", &fig_netstack::to_csv(&result)) {
        println!("series written to {}", path.display());
    }
}
