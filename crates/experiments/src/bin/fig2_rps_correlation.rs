//! Regenerates Figure 2 (RPS correlation + residuals). Pass `--quick` for
//! a reduced sweep.
use kscope_experiments::{fig2, write_artifact, Scale};

fn main() {
    let scale = Scale::from_args();
    let result = fig2::run(scale);
    println!("{}", fig2::render(&result, scale == Scale::Full));
    if let Some(path) = write_artifact("fig2_rps_correlation.csv", &fig2::to_csv(&result)) {
        println!("scatter written to {}", path.display());
    }
}
