//! Regenerates Figure 4 (poll-duration slack vs load).
use kscope_experiments::{fig4, write_artifact, Scale};

fn main() {
    let scale = Scale::from_args();
    let curves = fig4::run(scale);
    println!("{}", fig4::render(&curves, scale == Scale::Full));
    if let Some(path) = write_artifact("fig4_epoll_duration.csv", &fig4::to_csv(&curves)) {
        println!("curves written to {}", path.display());
    }
}
