//! Regenerates Figure 1 (syscall stream anatomy). Pass `--quick` for a
//! reduced run.
use kscope_experiments::{fig1, Scale};

fn main() {
    let result = fig1::run(Scale::from_args());
    println!("{}", fig1::render(&result));
}
