//! Regenerates the §IV-B window-size sensitivity study.
use kscope_experiments::{windows, write_artifact, Scale};

fn main() {
    let rows = windows::run(Scale::from_args());
    println!("{}", windows::render(&rows));
    if let Some(path) = write_artifact("window_sensitivity.csv", &windows::to_csv(&rows)) {
        println!("rows written to {}", path.display());
    }
}
