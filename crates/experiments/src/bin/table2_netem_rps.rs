//! Regenerates Table II (network effect on the RPS fit).
use kscope_experiments::{table2, write_artifact, Scale};

fn main() {
    let rows = table2::run(Scale::from_args());
    println!("{}", table2::render(&rows));
    if let Some(path) = write_artifact("table2_netem_rps.csv", &table2::to_csv(&rows)) {
        println!("rows written to {}", path.display());
    }
}
