//! Regenerates the fleet robustness figure (signal error vs report loss).
use kscope_experiments::{fleet, write_artifact, Scale};

fn main() {
    let scale = Scale::from_args();
    let result = fleet::run(scale);
    println!("{}", fleet::render(&result, true));
    if let Some(path) = write_artifact("fleet_robustness.csv", &fleet::to_csv(&result)) {
        println!("series written to {}", path.display());
    }
}
