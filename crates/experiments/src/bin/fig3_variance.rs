//! Regenerates Figure 3 (inter-send variance vs load).
use kscope_experiments::{fig3, write_artifact, Scale};

fn main() {
    let scale = Scale::from_args();
    let curves = fig3::run(scale);
    println!("{}", fig3::render(&curves, scale == Scale::Full));
    if let Some(path) = write_artifact("fig3_variance.csv", &fig3::to_csv(&curves)) {
        println!("curves written to {}", path.display());
    }
}
