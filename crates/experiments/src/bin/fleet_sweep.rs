//! Runs a multi-host fleet and emits the deterministic rollup JSON —
//! or, with `--scale`, sweeps the host count and records how the
//! collection plane scales.
//!
//! ```text
//! fleet_sweep [--hosts N] [--seed N] [--loss F] [--jobs N] [--quick]
//!             [--preset scale] [--out PATH]
//! fleet_sweep --scale [--max-hosts N] [--seed N] [--jobs N] [--out PATH]
//! ```
//!
//! Single-run mode: the JSON document is byte-identical for any
//! `--jobs` value and across reruns of the same seed — the property the
//! CI `fleet-smoke` and `fleet-scale-smoke` jobs check with a literal
//! `cmp`. `--preset scale` swaps in the short-window
//! [`FleetConfig::scale`] schedule so 10⁴–10⁵ hosts finish in CI-scale
//! wall time.
//!
//! Scale-sweep mode (`--scale`): runs the scale preset at 10², 10³,
//! 10⁴, 10⁵ hosts (capped by `--max-hosts`) and emits one JSON line per
//! point — wall time, wire bytes offered/delivered, the constant O(K)
//! per-report wire size, and the sketch-vs-exact Top-K agreement
//! (the collector never sees per-entity ground truth; the simulation
//! does, which is the point of measuring agreement here).

use std::time::Instant;

use kscope_experiments::default_jobs;
use kscope_fleet::{report_to_json, run_fleet_jobs, FleetConfig};

fn flag_value<T: std::str::FromStr>(name: &str) -> Option<T> {
    let mut args = std::env::args().peekable();
    while let Some(arg) = args.next() {
        let value = if arg == name {
            args.peek().cloned()
        } else {
            arg.strip_prefix(&format!("{name}=")).map(str::to_string)
        };
        if let Some(v) = value.and_then(|v| v.parse().ok()) {
            return Some(v);
        }
    }
    None
}

fn write_or_print(out: Option<std::path::PathBuf>, body: &str) {
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("fleet_sweep: cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
            eprintln!("fleet_sweep: written to {}", path.display());
        }
        None => print!("{body}"),
    }
}

fn scale_sweep(jobs: usize) {
    let max_hosts: usize = flag_value("--max-hosts").unwrap_or(100_000);
    let seed: u64 = flag_value("--seed").unwrap_or(42);
    let mut lines = String::new();
    for hosts in [100usize, 1_000, 10_000, 100_000] {
        if hosts > max_hosts {
            break;
        }
        let mut config = FleetConfig::scale(hosts);
        config.seed = seed;
        let started = Instant::now();
        let run = match run_fleet_jobs(&config, jobs) {
            Ok(run) => run,
            Err(e) => {
                eprintln!("fleet_sweep: probe build failed at {hosts} hosts: {e:?}");
                std::process::exit(1);
            }
        };
        let rollup = run.rollup(jobs);
        let wall_ms = started.elapsed().as_millis();
        let k = config.top_entities;
        let exact = run.exact_top_entities(k);
        let matched = rollup
            .top_entities
            .iter()
            .filter(|row| exact.contains(&row.entity))
            .count();
        let agreement = matched as f64 / k.max(1) as f64;
        let t = &rollup.transport;
        eprintln!(
            "fleet_sweep: {hosts} hosts in {wall_ms} ms (jobs {jobs}): \
             {} B/report, {} B delivered, top-{k} agreement {agreement:.3}",
            t.report_wire_bytes, t.bytes_delivered
        );
        lines.push_str(&format!(
            "{{\"hosts\":{hosts},\"jobs\":{jobs},\"wall_ms\":{wall_ms},\
             \"report_wire_bytes\":{},\"bytes_offered\":{},\"bytes_delivered\":{},\
             \"bytes_per_host_per_window\":{},\"reporting_hosts\":{},\
             \"fleet_rps\":{},\"topk_agreement\":{agreement}}}\n",
            t.report_wire_bytes,
            t.bytes_offered,
            t.bytes_delivered,
            t.bytes_per_host_per_window,
            rollup.reporting_hosts,
            rollup.fleet_rps,
        ));
    }
    write_or_print(flag_value("--out"), &lines);
}

fn main() {
    let jobs = default_jobs();
    if std::env::args().any(|a| a == "--scale") {
        scale_sweep(jobs);
        return;
    }

    let quick = std::env::args().any(|a| a == "--quick");
    let hosts: usize = flag_value("--hosts").unwrap_or(16);
    let preset: Option<String> = flag_value("--preset");
    let mut config = match preset.as_deref() {
        Some("scale") => FleetConfig::scale(hosts),
        Some(other) => {
            eprintln!("fleet_sweep: unknown preset {other:?} (try \"scale\")");
            std::process::exit(2);
        }
        None if quick => FleetConfig::quick(hosts),
        None => FleetConfig::new(hosts),
    };
    if let Some(seed) = flag_value::<u64>("--seed") {
        config.seed = seed;
    }
    if let Some(loss) = flag_value::<f64>("--loss") {
        config = config.with_loss(loss);
    }

    let run = match run_fleet_jobs(&config, jobs) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("fleet_sweep: probe build failed: {e:?}");
            std::process::exit(1);
        }
    };
    let rollup = run.rollup(jobs);
    eprintln!(
        "fleet_sweep: {} hosts, jobs {jobs}, fleet rps {:.1}, dropped {}, stale {}",
        config.hosts, rollup.fleet_rps, rollup.accounting.channel_dropped, rollup.accounting.stale
    );
    let json = report_to_json(&config, &rollup);
    write_or_print(flag_value("--out"), &json);
}
