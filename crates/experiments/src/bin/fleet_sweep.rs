//! Runs a multi-host fleet and emits the deterministic rollup JSON.
//!
//! ```text
//! fleet_sweep [--hosts N] [--seed N] [--loss F] [--jobs N] [--quick] [--out PATH]
//! ```
//!
//! The JSON document is byte-identical for any `--jobs` value and across
//! reruns of the same seed — the property the CI `fleet-smoke` job checks
//! with a literal `cmp`. The human-readable loss-robustness figure lives
//! in the `fleet_robustness` binary; this one is the machine interface.

use kscope_experiments::default_jobs;
use kscope_fleet::{report_to_json, run_fleet, FleetConfig};

fn flag_value<T: std::str::FromStr>(name: &str) -> Option<T> {
    let mut args = std::env::args().peekable();
    while let Some(arg) = args.next() {
        let value = if arg == name {
            args.peek().cloned()
        } else {
            arg.strip_prefix(&format!("{name}=")).map(str::to_string)
        };
        if let Some(v) = value.and_then(|v| v.parse().ok()) {
            return Some(v);
        }
    }
    None
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let hosts: usize = flag_value("--hosts").unwrap_or(16);
    let mut config = if quick {
        FleetConfig::quick(hosts)
    } else {
        FleetConfig::new(hosts)
    };
    if let Some(seed) = flag_value::<u64>("--seed") {
        config.seed = seed;
    }
    if let Some(loss) = flag_value::<f64>("--loss") {
        config = config.with_loss(loss);
    }
    let jobs = default_jobs();

    let run = match run_fleet(&config) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("fleet_sweep: probe build failed: {e:?}");
            std::process::exit(1);
        }
    };
    let rollup = run.rollup(jobs);
    eprintln!(
        "fleet_sweep: {} hosts, jobs {jobs}, fleet rps {:.1}, dropped {}, stale {}",
        config.hosts, rollup.fleet_rps, rollup.accounting.channel_dropped, rollup.accounting.stale
    );
    let json = report_to_json(&config, &rollup);
    match flag_value::<std::path::PathBuf>("--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("fleet_sweep: cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
            eprintln!("fleet_sweep: report written to {}", path.display());
        }
        None => print!("{json}"),
    }
}
