//! Figure 3: inter-send variance vs load — the saturation signal.
//!
//! Per workload: normalized `var(Δt_send)` (Eq. 2) against normalized real
//! RPS, with the QoS-failure point marked. The paper's observation: the
//! variance falls with load below the knee, then turns upward as the QoS
//! threshold is breached — contention makes the completion stream bursty.

use kscope_analysis::{normalize_by_max, AsciiChart, TextTable};
use kscope_workloads::{all_paper_workloads, WorkloadSpec};

use crate::sweep::{sweep, SweepConfig, SweepResult};
use crate::Scale;

/// The variance curve of one workload.
#[derive(Debug, Clone)]
pub struct VarianceCurve {
    /// Workload name.
    pub workload: String,
    /// Normalized achieved RPS per level.
    pub rps_norm: Vec<f64>,
    /// Normalized variance per level.
    pub var_norm: Vec<f64>,
    /// Raw variance per level (ns²).
    pub var_raw: Vec<f64>,
    /// Index of the first QoS-violating level, if any.
    pub failure_idx: Option<usize>,
    /// Whether the curve turns upward at/after the failure point.
    pub rises_past_failure: bool,
}

/// Extracts the Fig. 3 curve from a sweep.
pub fn curve_from_sweep(result: &SweepResult) -> VarianceCurve {
    let mut rps = Vec::new();
    let mut var = Vec::new();
    for level in &result.levels {
        if let Some(v) = level.mean_var_send() {
            rps.push(level.client.achieved_rps);
            var.push(v);
        }
    }
    let failure_idx = result
        .levels
        .iter()
        .position(|l| l.violates_qos(&result.spec));
    // "Rises past failure": the max variance at/after the failure level
    // exceeds the minimum variance before it.
    let rises = match failure_idx {
        Some(idx) if idx > 0 && idx < var.len() => {
            let pre_min = var[..idx].iter().cloned().fold(f64::INFINITY, f64::min);
            let post_max = var[idx.saturating_sub(1)..]
                .iter()
                .cloned()
                .fold(0.0f64, f64::max);
            post_max > pre_min
        }
        _ => false,
    };
    VarianceCurve {
        workload: result.spec.name.clone(),
        rps_norm: normalize_by_max(&rps),
        var_norm: normalize_by_max(&var),
        var_raw: var,
        failure_idx,
        rises_past_failure: rises,
    }
}

/// Runs the experiment for one workload.
pub fn analyze_workload(spec: &WorkloadSpec, config: &SweepConfig) -> VarianceCurve {
    curve_from_sweep(&sweep(spec, config))
}

/// Runs the experiment for all workloads.
pub fn run(scale: Scale) -> Vec<VarianceCurve> {
    let config = match scale {
        Scale::Full => SweepConfig::full(),
        Scale::Quick => SweepConfig::quick(),
    };
    all_paper_workloads()
        .iter()
        .map(|spec| analyze_workload(spec, &config))
        .collect()
}

/// Renders summary + charts.
pub fn render(curves: &[VarianceCurve], with_charts: bool) -> String {
    let mut table = TextTable::new(vec![
        "workload",
        "levels",
        "failure idx",
        "var rises past failure",
    ]);
    for c in curves {
        table.row(vec![
            c.workload.clone(),
            c.rps_norm.len().to_string(),
            c.failure_idx
                .map(|i| i.to_string())
                .unwrap_or_else(|| "-".to_string()),
            if c.rises_past_failure { "yes" } else { "no" }.to_string(),
        ]);
    }
    let mut out = String::from(
        "Figure 3 — normalized var(Δt_send) vs normalized RPS\n\
         (vertical bar = QoS failure point)\n\n",
    );
    out.push_str(&table.render());
    if with_charts {
        for c in curves {
            let mut chart = AsciiChart::new(56, 12);
            chart
                .title(format!("{}: variance vs load", c.workload))
                .x_label("normalized RPS_real")
                .y_label("normalized var(Δt_send)")
                .series(c.workload.clone(), &c.rps_norm, &c.var_norm, '*');
            if let Some(idx) = c.failure_idx {
                if idx < c.rps_norm.len() {
                    chart.vertical_marker(c.rps_norm[idx], '|');
                }
            }
            out.push('\n');
            out.push_str(&chart.render());
        }
    }
    out
}

/// CSV rows: `workload,rps_norm,var_norm,var_ns2`.
pub fn to_csv(curves: &[VarianceCurve]) -> String {
    let mut table = TextTable::new(vec!["workload", "rps_norm", "var_norm", "var_ns2"]);
    for c in curves {
        for i in 0..c.rps_norm.len() {
            table.row(vec![
                c.workload.clone(),
                format!("{:.6}", c.rps_norm[i]),
                format!("{:.6}", c.var_norm[i]),
                format!("{:.3e}", c.var_raw[i]),
            ]);
        }
    }
    table.to_csv()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variance_rises_past_failure_for_data_caching() {
        let spec = kscope_workloads::data_caching();
        let curve = analyze_workload(&spec, &SweepConfig::quick());
        assert!(curve.failure_idx.is_some());
        assert!(
            curve.rises_past_failure,
            "variance curve: {:?}",
            curve.var_raw
        );
    }

    #[test]
    fn variance_decreases_below_the_knee() {
        let spec = kscope_workloads::data_caching();
        let curve = analyze_workload(&spec, &SweepConfig::quick());
        // First two levels (0.2, 0.5 of failure) are well below the knee:
        // variance must decrease between them.
        assert!(
            curve.var_raw[0] > curve.var_raw[1],
            "{:?}",
            curve.var_raw
        );
    }
}
