//! §IV-B: window-size sensitivity of the Eq. 1 estimate.
//!
//! The paper: "Our approach is particularly effective over extended
//! periods (at least 2048 syscalls) where request distribution stabilizes.
//! However, for very short observation windows, variations in request
//! distribution can pose challenges." This experiment quantifies that:
//! at fixed load, the relative error of per-window `RPS_obsv` shrinks like
//! `1/√n` with the window's sample count, crossing the few-percent mark
//! around the paper's 2048-sample recommendation.

use kscope_analysis::TextTable;
use kscope_core::{NativeBackend, WindowedObserver, DEFAULT_SHIFT};
use kscope_kernel::TracepointProbe;
use kscope_simcore::Nanos;
use kscope_workloads::{data_caching, run_workload_with, RunConfig};

use crate::Scale;

/// Error statistics for one window size.
#[derive(Debug, Clone, Copy)]
pub struct WindowRow {
    /// Nominal send samples per window.
    pub samples_per_window: u64,
    /// Number of windows measured.
    pub windows: usize,
    /// Mean relative error of per-window RPS_obsv vs ground truth.
    pub mean_rel_error: f64,
    /// Maximum relative error observed.
    pub max_rel_error: f64,
}

/// Runs the experiment at 50% load with varying window sizes.
pub fn run(scale: Scale) -> Vec<WindowRow> {
    let sizes: &[u64] = if scale == Scale::Full {
        &[64, 128, 256, 512, 1024, 2048, 4096]
    } else {
        &[64, 1024]
    };
    let spec = data_caching();
    let offered = spec.paper_failure_rps * 0.5;
    let mut rows = Vec::new();
    for &samples in sizes {
        let window = Nanos::from_secs_f64(samples as f64 / offered);
        let mut config = RunConfig::new(offered, 71);
        config.collect_trace = false;
        // Enough total time for at least 20 windows.
        config.measure = window * 24;
        let outcome = run_workload_with(&spec, &config, |sim| {
            vec![Box::new(WindowedObserver::new(
                NativeBackend::new_multi(sim.server_pids(), spec.profile.clone(), DEFAULT_SHIFT),
                window,
            )) as Box<dyn TracepointProbe>]
        });
        let truth = outcome.client.achieved_rps;
        let mut kernel = outcome.kernel;
        let mut probe = match kernel.tracing.detach(outcome.probes[0]) {
            Some(probe) => probe,
            None => unreachable!("probe id came from this run's attach"),
        };
        let observer = match probe
            .as_any_mut()
            .downcast_mut::<WindowedObserver<NativeBackend>>()
        {
            Some(observer) => observer,
            None => unreachable!("this run attached a native windowed observer"),
        };
        observer.finish(outcome.end);
        let errors: Vec<f64> = observer
            .windows()
            .iter()
            .filter(|w| w.start >= outcome.warmup_end && w.end <= outcome.end)
            .filter_map(|w| w.rps_obsv)
            .map(|obsv| (obsv - truth).abs() / truth)
            .collect();
        let mean = errors.iter().sum::<f64>() / errors.len().max(1) as f64;
        let max = errors.iter().cloned().fold(0.0f64, f64::max);
        rows.push(WindowRow {
            samples_per_window: samples,
            windows: errors.len(),
            mean_rel_error: mean,
            max_rel_error: max,
        });
    }
    rows
}

/// Renders the table.
pub fn render(rows: &[WindowRow]) -> String {
    let mut table = TextTable::new(vec![
        "samples/window",
        "windows",
        "mean |error|",
        "max |error|",
    ]);
    for row in rows {
        table.row(vec![
            row.samples_per_window.to_string(),
            row.windows.to_string(),
            format!("{:.2}%", row.mean_rel_error * 100.0),
            format!("{:.2}%", row.max_rel_error * 100.0),
        ]);
    }
    let mut out = String::from(
        "§IV-B — per-window RPS_obsv error vs window size\n\
         (the paper recommends ≥2048 syscalls per estimation window)\n\n",
    );
    out.push_str(&table.render());
    out
}

/// CSV form.
pub fn to_csv(rows: &[WindowRow]) -> String {
    let mut table = TextTable::new(vec!["samples_per_window", "windows", "mean_rel_error", "max_rel_error"]);
    for row in rows {
        table.row(vec![
            row.samples_per_window.to_string(),
            row.windows.to_string(),
            format!("{:.6}", row.mean_rel_error),
            format!("{:.6}", row.max_rel_error),
        ]);
    }
    table.to_csv()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_windows_estimate_better() {
        let rows = run(Scale::Quick);
        assert!(rows[0].windows >= 10);
        assert!(
            rows[1].mean_rel_error < rows[0].mean_rel_error,
            "error should shrink with window size: {rows:?}"
        );
        // 1024-sample windows are already within a few percent.
        assert!(rows[1].mean_rel_error < 0.05, "{rows:?}");
    }
}
