//! Figure 1: the anatomy of a server's syscall stream.
//!
//! Reproduces the walkthrough of §III: (a) a request-response server under
//! load, (b) its raw syscall stream with setup / active / shutdown phases,
//! and (c) the extracted request-oriented subset with per-request
//! recv→send pairing — possible here because the demo server is
//! single-threaded.

use kscope_core::timeline::{self, TimelineReport};
use kscope_netem::NetemConfig;
use kscope_syscalls::{PhaseReport, Trace};
use kscope_workloads::{echo_single_thread, run_workload, RunConfig, WorkloadSpec};

use crate::Scale;

/// Everything Fig. 1 reports.
#[derive(Debug)]
pub struct Fig1Result {
    /// The demo workload.
    pub spec: WorkloadSpec,
    /// The full captured trace.
    pub trace: Trace,
    /// Phase split (Fig. 1b).
    pub phases: PhaseReport,
    /// Request reconstruction (Fig. 1c).
    pub timeline: TimelineReport,
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Fig1Result {
    let spec = echo_single_thread();
    let mut config = RunConfig::new(spec.paper_failure_rps * 0.4, 11);
    config.netem = NetemConfig::loopback();
    if scale == Scale::Quick {
        config = config.quick();
    }
    // Capture the whole lifecycle, setup phase included.
    config.warmup = kscope_simcore::Nanos::ZERO;
    let outcome = run_workload(&spec, &config, Vec::new());
    let phases = PhaseReport::extract(&outcome.trace, &spec.profile);
    let timeline = timeline::reconstruct(&outcome.trace, &spec.profile);
    Fig1Result {
        spec,
        trace: outcome.trace,
        phases,
        timeline,
    }
}

/// Renders the figure as text.
pub fn render(result: &Fig1Result) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "Figure 1 — syscall stream of `{}`", result.spec.name);
    let _ = writeln!(out, "\n(b) raw stream excerpt (first 16 events):");
    for event in result.trace.events().iter().take(16) {
        let _ = writeln!(out, "    {event}");
    }
    let _ = writeln!(
        out,
        "\nphases: setup={} active={} shutdown={} (active fraction {:.2})",
        result.phases.setup.len(),
        result.phases.active.len(),
        result.phases.shutdown.len(),
        result.phases.active_fraction()
    );
    let _ = writeln!(
        out,
        "\n(c) request reconstruction: {} spans paired, pairing rate {:.3}",
        result.timeline.spans.len(),
        result.timeline.pairing_rate()
    );
    let service: Vec<f64> = result
        .timeline
        .service_times()
        .iter()
        .map(|d| d.as_micros_f64())
        .collect();
    if !service.is_empty() {
        let mean = service.iter().sum::<f64>() / service.len() as f64;
        let _ = writeln!(out, "mean reconstructed service time: {mean:.1} us");
    }
    for span in result.timeline.spans.iter().take(5) {
        let _ = writeln!(
            out,
            "    tid {}: recv@{} -> send@{} (service {})",
            span.tid,
            span.recv.exit,
            span.send.exit,
            span.service_time()
        );
    }
    let _ = out.write_str(
        "\nTakeaway: in a single-threaded server the request timeline is fully\n\
         reconstructable from recv/send pairing; multi-threaded handoff breaks\n\
         this, motivating the aggregate statistics of Figs. 2-4.\n",
    );
    out
}

/// Smallest sanity bound used by the smoke test: the demo server is
/// single-threaded, so pairing must be near-perfect.
pub fn pairing_rate_floor() -> f64 {
    0.99
}

#[cfg(test)]
mod tests {
    use super::*;
    

    #[test]
    fn single_thread_demo_pairs_nearly_all_requests() {
        let result = run(Scale::Quick);
        assert!(result.timeline.spans.len() > 50);
        assert!(
            result.timeline.pairing_rate() >= pairing_rate_floor(),
            "pairing rate {}",
            result.timeline.pairing_rate()
        );
        // Reconstructed service time should approximate the configured mean.
        let mean_us = result
            .timeline
            .service_times()
            .iter()
            .map(|d| d.as_micros_f64())
            .sum::<f64>()
            / result.timeline.spans.len() as f64;
        let configured_us = result.spec.service_time.mean() / 1_000.0;
        assert!(
            (mean_us - configured_us).abs() / configured_us < 0.5,
            "reconstructed {mean_us:.1}us vs configured {configured_us:.1}us"
        );
    }

    #[test]
    fn render_contains_phases_and_spans() {
        let result = run(Scale::Quick);
        let text = render(&result);
        assert!(text.contains("phases:"));
        assert!(text.contains("pairing rate"));
    }
}
