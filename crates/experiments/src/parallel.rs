//! Deterministic worker pool — re-exported from `kscope-simcore`.
//!
//! The pool implementation moved to [`kscope_simcore::parallel`] so library
//! crates (notably `kscope-fleet`'s sharded collector rollup) can use it
//! without depending on this binaries crate. The experiments-facing API is
//! unchanged: `parallel::map_indexed` fans independent sweep cells out and
//! returns results in input order, bitwise identical to a serial run, and
//! `parallel::default_jobs` resolves `--jobs N` / `KSCOPE_JOBS` /
//! `available_parallelism`.

pub use kscope_simcore::parallel::{default_jobs, map_indexed};
