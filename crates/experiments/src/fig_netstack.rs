//! Netstack figure: impairment lands in the ingress stack, not in the
//! syscall signal.
//!
//! Runs memcached-style data caching at a fixed sub-knee load under a
//! sweep of netem conditions (clean, added delay, packet loss) and
//! separates two in-kernel views of the same requests:
//!
//! - **time-in-stack** — NIC arrival to socket-queue drain, measured by
//!   the verified `kscope_net_rx`/`kscope_sock_drain` probe pair's
//!   cumulative log2 histogram. Impairment makes arrivals bursty
//!   (retransmission clumps after sender RTOs, jitter-coalesced
//!   batches), so softirq batching and socket-queue residency grow.
//! - **poll slack and RPS_obsv** — the paper's syscall-level stability
//!   signals, which stay inside their stability envelope because the
//!   server-side syscall stream never sees the retransmissions.
//!
//! Every condition is a pure function of `(condition, seed)` and the
//! conditions fan out with [`crate::parallel::map_indexed`], so the CSV
//! artifact is byte-identical at any `--jobs`.

use kscope_analysis::{log2_bucket_quantile, AsciiChart, TextTable};
use kscope_core::{
    BytecodeBackend, RpsEstimator, StackDelay, WindowMetrics, WindowedObserver, DEFAULT_SHIFT,
};
use kscope_kernel::TracepointProbe;
use kscope_netem::NetemConfig;
use kscope_simcore::{Dist, Nanos};
use kscope_workloads::{data_caching, run_workload_with, RunConfig, WorkloadSpec};

use crate::Scale;

/// One netem condition of the sweep (`tc netem delay D J loss L%`).
#[derive(Debug, Clone)]
pub struct NetCondition {
    /// Display label ("clean", "5ms ± 1ms", "2% loss").
    pub label: String,
    /// Added one-way delay.
    pub delay: Nanos,
    /// Mean of the exponential per-packet jitter. Real impaired paths
    /// jitter in proportion to their delay, and jitter is what reorders
    /// and coalesces arrivals into softirq batches — the mechanism that
    /// drives time-in-stack up.
    pub jitter_ns: f64,
    /// Bernoulli loss probability.
    pub loss: f64,
}

/// Measurements for one condition.
#[derive(Debug, Clone)]
pub struct ConditionResult {
    /// The condition measured.
    pub condition: NetCondition,
    /// Client-side p99 latency (ms) — what the impairment wrecks.
    pub p99_ms: f64,
    /// Mean Eq. 1 estimate over the measurement windows.
    pub rps_obsv: f64,
    /// Mean poll duration over the measurement windows (ns).
    pub poll_mean_ns: f64,
    /// Completed NIC-to-drain samples in the stack histogram.
    pub stack_samples: u64,
    /// Drain events with no matching rx entry.
    pub stack_misses: u64,
    /// Mean time-in-stack (ns).
    pub stack_mean_ns: f64,
    /// p50 time-in-stack (ns).
    pub stack_p50_ns: f64,
    /// p99 time-in-stack (ns).
    pub stack_p99_ns: f64,
}

/// Full figure result.
#[derive(Debug, Clone)]
pub struct FigNetstackResult {
    /// Per-condition measurements, clean first.
    pub conditions: Vec<ConditionResult>,
}

impl FigNetstackResult {
    /// The clean (unimpaired) baseline row.
    pub fn clean(&self) -> &ConditionResult {
        &self.conditions[0]
    }

    /// Largest relative RPS_obsv deviation of any impaired condition
    /// from the clean baseline.
    pub fn max_rps_divergence(&self) -> f64 {
        let base = self.clean().rps_obsv.max(1e-9);
        self.conditions[1..]
            .iter()
            .map(|c| (c.rps_obsv - self.clean().rps_obsv).abs() / base)
            .fold(0.0, f64::max)
    }

    /// Largest relative poll-slack deviation of any impaired condition
    /// from the clean baseline.
    pub fn max_poll_divergence(&self) -> f64 {
        let base = self.clean().poll_mean_ns.max(1e-9);
        self.conditions[1..]
            .iter()
            .map(|c| (c.poll_mean_ns - self.clean().poll_mean_ns).abs() / base)
            .fold(0.0, f64::max)
    }

    /// Largest ratio of an impaired condition's mean time-in-stack to
    /// the clean baseline's.
    pub fn max_stack_inflation(&self) -> f64 {
        let base = self.clean().stack_mean_ns.max(1e-9);
        self.conditions[1..]
            .iter()
            .map(|c| c.stack_mean_ns / base)
            .fold(0.0, f64::max)
    }
}

/// The swept conditions.
pub fn conditions(scale: Scale) -> Vec<NetCondition> {
    let cond = |label: &str, delay: Nanos, jitter_ns: f64, loss: f64| NetCondition {
        label: label.to_string(),
        delay,
        jitter_ns,
        loss,
    };
    let mut out = vec![
        cond("clean", Nanos::from_micros(30), 5_000.0, 0.0),
        cond("5ms ± 1ms", Nanos::from_millis(5), 1_000_000.0, 0.0),
        cond("2% loss", Nanos::from_micros(30), 5_000.0, 0.02),
    ];
    if scale == Scale::Full {
        out.push(cond("10ms ± 2ms", Nanos::from_millis(10), 2_000_000.0, 0.0));
        out.push(cond("5% loss", Nanos::from_micros(30), 5_000.0, 0.05));
        out.push(cond(
            "10ms ± 2ms + 2% loss",
            Nanos::from_millis(10),
            2_000_000.0,
            0.02,
        ));
    }
    out
}

/// Runs one condition at `offered` rps. Pure function of its inputs —
/// the fan-out in [`run_jobs`] relies on that.
pub fn run_condition(
    spec: &WorkloadSpec,
    condition: &NetCondition,
    offered: f64,
    measure: Nanos,
    seed: u64,
) -> ConditionResult {
    let mut run_cfg = RunConfig::new(offered, seed);
    let mut netem = NetemConfig::impaired(condition.delay, condition.loss);
    netem.jitter = Some(Dist::exponential(condition.jitter_ns));
    run_cfg.netem = netem;
    run_cfg.measure = measure;
    run_cfg.collect_trace = false;
    let window = measure / 8;

    let shift = DEFAULT_SHIFT;
    let outcome = run_workload_with(spec, &run_cfg, |sim| {
        let probe = BytecodeBackend::new_multi(sim.server_pids(), spec.profile.clone(), shift)
            .and_then(BytecodeBackend::with_netstack)
            .unwrap_or_else(|e| panic!("generated probe programs must verify: {e}"));
        vec![Box::new(WindowedObserver::new(probe, window)) as Box<dyn TracepointProbe>]
    });

    let mut kernel = outcome.kernel;
    let mut probe = match kernel.tracing.detach(outcome.probes[0]) {
        Some(probe) => probe,
        None => unreachable!("probe id came from this run's attach"),
    };
    let observer = match probe
        .as_any_mut()
        .downcast_mut::<WindowedObserver<BytecodeBackend>>()
    {
        Some(observer) => observer,
        None => unreachable!("this run attached a bytecode windowed observer"),
    };
    observer.finish(outcome.end);

    let windows: Vec<WindowMetrics> = observer
        .windows()
        .iter()
        .copied()
        .filter(|w| w.start >= outcome.warmup_end && w.end <= outcome.end)
        .collect();
    let rps_obsv = RpsEstimator::with_min_samples(64)
        .from_windows(&windows)
        .unwrap_or(0.0);
    let with_poll = windows.iter().filter(|w| w.poll_mean_ns.is_some()).count();
    let poll_mean_ns = windows.iter().filter_map(|w| w.poll_mean_ns).sum::<f64>()
        / with_poll.max(1) as f64;

    let stack = match StackDelay::from_backend(shift, observer.backend()) {
        Some(stack) => stack,
        None => unreachable!("the probe was built with_netstack"),
    };
    let q = |p: f64| log2_bucket_quantile(stack.hist().buckets(), shift, p).unwrap_or(0.0);
    ConditionResult {
        condition: condition.clone(),
        p99_ms: outcome.client.p99_latency.as_millis_f64(),
        rps_obsv,
        poll_mean_ns,
        stack_samples: stack.count(),
        stack_misses: stack.misses(),
        stack_mean_ns: stack.mean_ns().unwrap_or(0.0),
        stack_p50_ns: q(0.50),
        stack_p99_ns: q(0.99),
    }
}

/// Runs the figure on up to `jobs` workers. Conditions are independent
/// runs with split seeds, so the result is bitwise identical for every
/// `jobs` value.
pub fn run_jobs(scale: Scale, jobs: usize) -> FigNetstackResult {
    let spec = data_caching();
    let offered = spec.paper_failure_rps * 0.5;
    let measure = match scale {
        Scale::Full => Nanos::from_secs_f64(16_000.0 / offered),
        Scale::Quick => Nanos::from_secs_f64(3_000.0 / offered),
    };
    let conds = conditions(scale);
    let results = crate::parallel::map_indexed(&conds, jobs, |i, cond| {
        run_condition(&spec, cond, offered, measure, 97 + i as u64)
    });
    FigNetstackResult {
        conditions: results,
    }
}

/// Runs the figure with the default worker count.
pub fn run(scale: Scale) -> FigNetstackResult {
    run_jobs(scale, crate::parallel::default_jobs())
}

/// Renders the figure.
pub fn render(result: &FigNetstackResult, with_charts: bool) -> String {
    let mut table = TextTable::new(vec![
        "network",
        "p99 (ms)",
        "RPS_obsv",
        "poll (us)",
        "stack mean (us)",
        "stack p99 (us)",
        "samples",
        "misses",
    ]);
    for c in &result.conditions {
        table.row(vec![
            c.condition.label.clone(),
            format!("{:.2}", c.p99_ms),
            format!("{:.1}", c.rps_obsv),
            format!("{:.1}", c.poll_mean_ns / 1_000.0),
            format!("{:.2}", c.stack_mean_ns / 1_000.0),
            format!("{:.2}", c.stack_p99_ns / 1_000.0),
            format!("{}", c.stack_samples),
            format!("{}", c.stack_misses),
        ]);
    }
    let mut out = String::from(
        "Netstack figure — time-in-stack vs the syscall signal under impairment\n\n",
    );
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nstack-delay inflation (worst impaired / clean): {:.2}x\n\
         RPS_obsv divergence from clean (worst):         {:.2}%\n\
         poll-slack divergence from clean (worst):       {:.2}%\n",
        result.max_stack_inflation(),
        result.max_rps_divergence() * 100.0,
        result.max_poll_divergence() * 100.0,
    ));
    if with_charts {
        let idx: Vec<f64> = (0..result.conditions.len()).map(|i| i as f64).collect();
        let stack_us: Vec<f64> = result
            .conditions
            .iter()
            .map(|c| c.stack_mean_ns / 1_000.0)
            .collect();
        let mut chart = AsciiChart::new(56, 10);
        chart
            .title("mean time-in-stack per condition")
            .x_label("condition index")
            .y_label("stack delay (us)")
            .series("stack", &idx, &stack_us, '#');
        out.push('\n');
        out.push_str(&chart.render());
    }
    out
}

/// CSV rows for the artifact.
pub fn to_csv(result: &FigNetstackResult) -> String {
    let mut table = TextTable::new(vec![
        "condition",
        "delay_ns",
        "jitter_ns",
        "loss",
        "p99_ms",
        "rps_obsv",
        "poll_mean_ns",
        "stack_samples",
        "stack_misses",
        "stack_mean_ns",
        "stack_p50_ns",
        "stack_p99_ns",
    ]);
    for c in &result.conditions {
        table.row(vec![
            c.condition.label.clone(),
            format!("{}", c.condition.delay.as_nanos()),
            format!("{}", c.condition.jitter_ns),
            format!("{}", c.condition.loss),
            format!("{:.3}", c.p99_ms),
            format!("{:.2}", c.rps_obsv),
            format!("{:.1}", c.poll_mean_ns),
            format!("{}", c.stack_samples),
            format!("{}", c.stack_misses),
            format!("{:.1}", c.stack_mean_ns),
            format!("{:.1}", c.stack_p50_ns),
            format!("{:.1}", c.stack_p99_ns),
        ]);
    }
    table.to_csv()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn impairment_inflates_stack_delay_not_the_signal() {
        let result = run(Scale::Quick);
        assert_eq!(result.conditions.len(), 3);
        for c in &result.conditions {
            assert!(c.stack_samples > 100, "{}: {} samples", c.condition.label, c.stack_samples);
        }
        // The stack-delay figure separates: impairment inflates
        // time-in-stack while the syscall-side signals hold.
        assert!(
            result.max_stack_inflation() > 1.05,
            "stack inflation {:.3}",
            result.max_stack_inflation()
        );
        assert!(
            result.max_rps_divergence() < 0.10,
            "rps divergence {:.3}",
            result.max_rps_divergence()
        );
    }

    #[test]
    fn csv_is_jobs_invariant() {
        let a = to_csv(&run_jobs(Scale::Quick, 1));
        let b = to_csv(&run_jobs(Scale::Quick, 4));
        assert_eq!(a, b, "jobs must not change a CSV byte");
    }
}
