//! Figure 5: network loss wrecks tail latency but not the eBPF signal.
//!
//! Triton over gRPC, swept under 0% and 1% loss: the top row compares p99
//! latency (inflated by retransmission timeouts under loss), the bottom row
//! the normalized `epoll_wait` duration — which barely moves, because the
//! server-side syscall stream does not see the retransmissions.

use kscope_analysis::{normalize_by_max, AsciiChart, TextTable};
use kscope_netem::NetemConfig;
use kscope_simcore::Nanos;
use kscope_workloads::triton_grpc;

use crate::sweep::{sweep, SweepConfig, SweepResult};
use crate::Scale;

/// One network condition's curves.
#[derive(Debug, Clone)]
pub struct LossCondition {
    /// Label ("0% loss" / "1% loss").
    pub label: String,
    /// Offered load per level.
    pub offered: Vec<f64>,
    /// p99 latency per level (ms).
    pub p99_ms: Vec<f64>,
    /// Mean epoll duration per level (ns).
    pub poll_ns: Vec<f64>,
}

/// Full Fig. 5 result.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// The two conditions: no loss, 1% loss.
    pub conditions: Vec<LossCondition>,
    /// Mean relative difference of the poll signal between conditions,
    /// over the stable (sub-knee) levels.
    pub poll_signal_divergence: f64,
    /// Mean relative difference of p99 between conditions, over the stable
    /// (sub-knee) levels. Near the capacity knee the open-loop system is a
    /// bifurcation point — run-to-run chaos there would swamp the loss
    /// effect this figure isolates.
    pub p99_divergence: f64,
    /// Number of stable levels the divergences were computed over.
    pub stable_levels: usize,
}

fn condition(label: &str, result: &SweepResult) -> LossCondition {
    LossCondition {
        label: label.to_string(),
        offered: result.levels.iter().map(|l| l.offered_rps).collect(),
        p99_ms: result
            .levels
            .iter()
            .map(|l| l.client.p99_latency.as_millis_f64())
            .collect(),
        poll_ns: result
            .levels
            .iter()
            .map(|l| l.mean_poll_ns().unwrap_or(0.0))
            .collect(),
    }
}

fn mean_rel_diff(a: &[f64], b: &[f64]) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for (&x, &y) in a.iter().zip(b) {
        let denom = x.abs().max(1e-9);
        total += (y - x).abs() / denom;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Fig5Result {
    let spec = triton_grpc();
    let base = match scale {
        Scale::Full => SweepConfig::full(),
        Scale::Quick => SweepConfig::quick(),
    };
    let clean = sweep(
        &spec,
        &base.clone().with_netem(NetemConfig::impaired(Nanos::ZERO, 0.0)),
    );
    let lossy = sweep(
        &spec,
        &base.with_netem(NetemConfig::impaired(Nanos::ZERO, 0.01)),
    );
    let c0 = condition("0% loss", &clean);
    let c1 = condition("1% loss", &lossy);
    // Stable region: levels safely below the knee.
    let stable: Vec<usize> = c0
        .offered
        .iter()
        .enumerate()
        .filter(|(_, &rps)| rps <= 0.9 * spec.paper_failure_rps)
        .map(|(i, _)| i)
        .collect();
    let pick = |xs: &[f64]| -> Vec<f64> { stable.iter().map(|&i| xs[i]).collect() };
    let poll_signal_divergence = mean_rel_diff(&pick(&c0.poll_ns), &pick(&c1.poll_ns));
    let p99_divergence = mean_rel_diff(&pick(&c0.p99_ms), &pick(&c1.p99_ms));
    Fig5Result {
        stable_levels: stable.len(),
        conditions: vec![c0, c1],
        poll_signal_divergence,
        p99_divergence,
    }
}

/// Renders the two-row figure.
pub fn render(result: &Fig5Result, with_charts: bool) -> String {
    let mut table = TextTable::new(vec!["offered rps", "p99 0% (ms)", "p99 1% (ms)", "epoll 0% (us)", "epoll 1% (us)"]);
    let c0 = &result.conditions[0];
    let c1 = &result.conditions[1];
    for i in 0..c0.offered.len() {
        table.row(vec![
            format!("{:.1}", c0.offered[i]),
            format!("{:.1}", c0.p99_ms[i]),
            format!("{:.1}", c1.p99_ms[i]),
            format!("{:.1}", c0.poll_ns[i] / 1_000.0),
            format!("{:.1}", c1.poll_ns[i] / 1_000.0),
        ]);
    }
    let mut out = String::from("Figure 5 — Triton/gRPC under packet loss\n\n");
    out.push_str(&table.render());
    out.push_str(&format!(
        "\np99 divergence between conditions (sub-knee, {} levels):   {:.1}%\n\
         epoll-signal divergence between conditions (same levels): {:.1}%\n",
        result.stable_levels,
        result.p99_divergence * 100.0,
        result.poll_signal_divergence * 100.0
    ));
    if with_charts {
        let mut top = AsciiChart::new(56, 12);
        top.title("p99 latency vs offered load")
            .x_label("offered rps")
            .y_label("p99 (ms)")
            .series("0% loss", &c0.offered, &c0.p99_ms, 'o')
            .series("1% loss", &c1.offered, &c1.p99_ms, 'x');
        out.push('\n');
        out.push_str(&top.render());

        let poll0 = normalize_by_max(&c0.poll_ns);
        let poll1 = normalize_by_max(&c1.poll_ns);
        let mut bottom = AsciiChart::new(56, 12);
        bottom
            .title("normalized epoll_wait duration vs offered load")
            .x_label("offered rps")
            .y_label("normalized epoll duration")
            .series("0% loss", &c0.offered, &poll0, 'o')
            .series("1% loss", &c1.offered, &poll1, 'x');
        out.push('\n');
        out.push_str(&bottom.render());
    }
    out
}

/// CSV rows.
pub fn to_csv(result: &Fig5Result) -> String {
    let mut table = TextTable::new(vec!["condition", "offered_rps", "p99_ms", "poll_ns"]);
    for c in &result.conditions {
        for i in 0..c.offered.len() {
            table.row(vec![
                c.label.clone(),
                format!("{:.2}", c.offered[i]),
                format!("{:.3}", c.p99_ms[i]),
                format!("{:.1}", c.poll_ns[i]),
            ]);
        }
    }
    table.to_csv()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_disturbs_tail_latency_far_more_than_the_signal() {
        let result = run(Scale::Quick);
        assert!(result.stable_levels >= 2);
        assert!(
            result.p99_divergence > 3.0 * result.poll_signal_divergence,
            "p99 divergence {:.3} vs signal divergence {:.3}",
            result.p99_divergence,
            result.poll_signal_divergence
        );
        // The eBPF-side signal must be essentially untouched by loss.
        assert!(
            result.poll_signal_divergence < 0.05,
            "signal divergence {:.3}",
            result.poll_signal_divergence
        );
        // Loss must visibly inflate the tail somewhere in the stable sweep.
        let c0 = &result.conditions[0];
        let c1 = &result.conditions[1];
        assert!(c1
            .p99_ms
            .iter()
            .zip(&c0.p99_ms)
            .any(|(lossy, clean)| *lossy > clean * 1.05));
    }
}
