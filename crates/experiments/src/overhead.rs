//! §VI overhead study: what does the probe cost the application?
//!
//! Runs each workload at a moderate and a near-knee load three times with
//! identical seeds — no probe, native probe, bytecode probe — and compares
//! p99 tail latency. The paper reports median and upper-quartile overhead
//! below 1% (typically below 0.5%).

use kscope_analysis::TextTable;
use kscope_core::{BytecodeBackend, NativeBackend, WindowedObserver, DEFAULT_SHIFT};
use kscope_kernel::TracepointProbe;
use kscope_netem::NetemConfig;
use kscope_simcore::Nanos;
use kscope_workloads::{all_paper_workloads, run_workload_with, RunConfig, WorkloadSpec};

use crate::Scale;

/// Probe configurations compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeSetup {
    /// Tracepoints fire with no probe attached.
    None,
    /// Native (JIT-model) probe.
    Native,
    /// Interpreted bytecode probe.
    Bytecode,
}

/// One measurement row.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Workload name.
    pub workload: String,
    /// Fraction of failure RPS offered.
    pub load_fraction: f64,
    /// Baseline p99 (no probe), ms.
    pub p99_base_ms: f64,
    /// p99 with the native probe, ms.
    pub p99_native_ms: f64,
    /// p99 with the bytecode probe, ms.
    pub p99_bytecode_ms: f64,
    /// Total probe time charged by the native probe (ns).
    pub native_probe_ns: u64,
    /// Total probe time charged by the bytecode probe (ns).
    pub bytecode_probe_ns: u64,
    /// Tracepoint firings during the probed run.
    pub tracepoint_firings: u64,
}

impl OverheadRow {
    /// Native-probe p99 overhead, relative.
    pub fn native_overhead(&self) -> f64 {
        (self.p99_native_ms - self.p99_base_ms) / self.p99_base_ms
    }

    /// Bytecode-probe p99 overhead, relative.
    pub fn bytecode_overhead(&self) -> f64 {
        (self.p99_bytecode_ms - self.p99_base_ms) / self.p99_base_ms
    }
}

fn run_once(spec: &WorkloadSpec, fraction: f64, setup: ProbeSetup, scale: Scale) -> (f64, u64, u64) {
    let offered = spec.paper_failure_rps * fraction;
    let mut config = RunConfig::new(offered, 31);
    config.netem = NetemConfig::loopback();
    config.collect_trace = false;
    let samples_target = if scale == Scale::Full { 6_000.0 } else { 1_200.0 };
    config.warmup = Nanos::from_secs_f64((spec.service_time.mean() / 1e9 * 30.0).max(0.3));
    config.measure = Nanos::from_secs_f64((samples_target / offered).clamp(1.0, 900.0));

    let outcome = run_workload_with(spec, &config, |sim| {
        let pids = sim.server_pids();
        let profile = sim.spec().profile.clone();
        let window = Nanos::from_secs(3_600); // effectively one window
        match setup {
            ProbeSetup::None => Vec::new(),
            ProbeSetup::Native => vec![Box::new(WindowedObserver::new(
                NativeBackend::new_multi(pids, profile, DEFAULT_SHIFT),
                window,
            )) as Box<dyn TracepointProbe>],
            ProbeSetup::Bytecode => vec![Box::new(WindowedObserver::new(
                BytecodeBackend::new_multi(pids, profile, DEFAULT_SHIFT)
                    .unwrap_or_else(|e| panic!("generated probe programs must verify: {e}")),
                window,
            )) as Box<dyn TracepointProbe>],
        }
    });
    let stats = outcome.kernel.tracing.stats();
    (
        outcome.client.p99_latency.as_millis_f64(),
        stats.probe_overhead.as_nanos(),
        stats.enters + stats.exits,
    )
}

/// Runs the study.
pub fn run(scale: Scale) -> Vec<OverheadRow> {
    let specs = all_paper_workloads();
    let fractions: &[f64] = if scale == Scale::Full {
        &[0.5, 0.9]
    } else {
        &[0.7]
    };
    let mut rows = Vec::new();
    for spec in &specs {
        for &fraction in fractions {
            let (p99_base, _, _) = run_once(spec, fraction, ProbeSetup::None, scale);
            let (p99_native, native_ns, events) = run_once(spec, fraction, ProbeSetup::Native, scale);
            let (p99_bytecode, bytecode_ns, _) = run_once(spec, fraction, ProbeSetup::Bytecode, scale);
            rows.push(OverheadRow {
                workload: spec.name.clone(),
                load_fraction: fraction,
                p99_base_ms: p99_base,
                p99_native_ms: p99_native,
                p99_bytecode_ms: p99_bytecode,
                native_probe_ns: native_ns,
                bytecode_probe_ns: bytecode_ns,
                tracepoint_firings: events,
            });
        }
    }
    rows
}

/// Median of a slice (not necessarily sorted).
fn median(values: &mut [f64]) -> f64 {
    values.sort_by(f64::total_cmp);
    if values.is_empty() {
        0.0
    } else {
        values[values.len() / 2]
    }
}

/// Renders the study.
pub fn render(rows: &[OverheadRow]) -> String {
    let mut table = TextTable::new(vec![
        "workload",
        "load",
        "p99 base (ms)",
        "native Δ%",
        "bytecode Δ%",
        "native ns/event",
        "bytecode ns/event",
    ]);
    for row in rows {
        let per_event = |ns: u64| {
            if row.tracepoint_firings == 0 {
                "-".to_string()
            } else {
                format!("{:.0}", ns as f64 / row.tracepoint_firings as f64)
            }
        };
        table.row(vec![
            row.workload.clone(),
            format!("{:.0}%", row.load_fraction * 100.0),
            format!("{:.3}", row.p99_base_ms),
            format!("{:+.3}%", row.native_overhead() * 100.0),
            format!("{:+.3}%", row.bytecode_overhead() * 100.0),
            per_event(row.native_probe_ns),
            per_event(row.bytecode_probe_ns),
        ]);
    }
    let mut native: Vec<f64> = rows.iter().map(|r| r.native_overhead().abs()).collect();
    let mut bytecode: Vec<f64> = rows.iter().map(|r| r.bytecode_overhead().abs()).collect();
    let mut out = String::from("§VI — probe overhead on p99 tail latency\n\n");
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nmedian |Δp99|: native {:.2}%, bytecode {:.2}% (paper: < 1%, typically < 0.5%)\n",
        median(&mut native) * 100.0,
        median(&mut bytecode) * 100.0
    ));
    out
}

/// CSV form.
pub fn to_csv(rows: &[OverheadRow]) -> String {
    let mut table = TextTable::new(vec![
        "workload",
        "load_fraction",
        "p99_base_ms",
        "p99_native_ms",
        "p99_bytecode_ms",
    ]);
    for row in rows {
        table.row(vec![
            row.workload.clone(),
            format!("{}", row.load_fraction),
            format!("{:.4}", row.p99_base_ms),
            format!("{:.4}", row.p99_native_ms),
            format!("{:.4}", row.p99_bytecode_ms),
        ]);
    }
    table.to_csv()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kscope_workloads::data_caching;

    #[test]
    fn probe_overhead_is_small_at_moderate_load() {
        let spec = data_caching();
        let (base, _, _) = run_once(&spec, 0.6, ProbeSetup::None, Scale::Quick);
        let (native, native_ns, events) = run_once(&spec, 0.6, ProbeSetup::Native, Scale::Quick);
        assert!(events > 0);
        assert!(native_ns > 0, "probe charged no time");
        let overhead = (native - base).abs() / base;
        assert!(overhead < 0.05, "overhead {overhead:.3} (base {base}, probed {native})");
    }
}
