//! Figure 2: correlation of observed RPS (Eq. 1) with real RPS.
//!
//! For each workload: sweep offered load, estimate `RPS_obsv` from the
//! probe's windows (several estimations per level, as in the paper), fit a
//! linear regression of normalized `RPS_real` on normalized `RPS_obsv`,
//! and report R² plus residual spread. The paper finds R² > 0.94 for every
//! workload except Web Search (0.86).

use kscope_analysis::{fmt_sig, normalize_by_max, AsciiChart, LinearFit, TextTable};
use kscope_workloads::{all_paper_workloads, WorkloadSpec};

use crate::sweep::{sweep, SweepConfig};
use crate::Scale;

/// Regression summary for one workload.
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// Workload name.
    pub workload: String,
    /// Coefficient of determination of the normalized fit.
    pub r_squared: f64,
    /// Fitted slope (normalized axes).
    pub slope: f64,
    /// Number of `(RPS_obsv, RPS_real)` points.
    pub points: usize,
    /// Largest |residual| on the normalized scale.
    pub max_abs_residual: f64,
    /// The paper's R² for this workload (Table II, ideal network column).
    pub paper_r_squared: Option<f64>,
}

/// Full result: rows plus the raw points for charting.
#[derive(Debug, Clone)]
pub struct Fig2Result {
    /// Per-workload summaries.
    pub rows: Vec<Fig2Row>,
    /// Per-workload normalized scatter: `(workload, points(x=obsv, y=real))`.
    pub scatter: Vec<(String, Vec<(f64, f64)>)>,
}

/// The paper's reported R² values (Table II, 0ms/0% column).
pub fn paper_r_squared(workload: &str) -> Option<f64> {
    Some(match workload {
        "img-dnn" => 0.9997,
        "xapian" => 0.9976,
        "silo" => 0.9998,
        "specjbb" => 0.9997,
        "moses" => 0.9411,
        "data-caching" => 0.9995,
        "web-search" => 0.8642,
        "triton-http" => 0.9976,
        "triton-grpc" => 0.9711,
        _ => return None,
    })
}

/// Runs the regression for one workload with a given sweep configuration.
pub fn analyze_workload(spec: &WorkloadSpec, config: &SweepConfig) -> (Fig2Row, Vec<(f64, f64)>) {
    let result = sweep(spec, config);
    let min_samples = config.min_send_samples / 2;
    let raw = result.correlation_points(min_samples);
    let xs: Vec<f64> = raw.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = raw.iter().map(|p| p.1).collect();
    let xs = normalize_by_max(&xs);
    let ys = normalize_by_max(&ys);
    let fit = match LinearFit::fit(&xs, &ys) {
        Ok(fit) => fit,
        Err(e) => panic!("load sweep must produce a fittable point set: {e}"),
    };
    let residuals = fit.residuals(&xs, &ys);
    let max_abs_residual = residuals.iter().fold(0.0f64, |m, r| m.max(r.abs()));
    let points: Vec<(f64, f64)> = xs.into_iter().zip(ys).collect();
    (
        Fig2Row {
            workload: spec.name.clone(),
            r_squared: fit.r_squared,
            slope: fit.slope,
            points: points.len(),
            max_abs_residual,
            paper_r_squared: paper_r_squared(&spec.name),
        },
        points,
    )
}

/// Runs the experiment over all nine workloads.
pub fn run(scale: Scale) -> Fig2Result {
    let config = match scale {
        Scale::Full => SweepConfig::full(),
        Scale::Quick => SweepConfig::quick(),
    };
    let mut rows = Vec::new();
    let mut scatter = Vec::new();
    for spec in all_paper_workloads() {
        let (row, points) = analyze_workload(&spec, &config);
        scatter.push((spec.name.clone(), points));
        rows.push(row);
    }
    Fig2Result { rows, scatter }
}

/// Renders the summary table (and per-workload charts at full scale).
pub fn render(result: &Fig2Result, with_charts: bool) -> String {
    let mut table = TextTable::new(vec![
        "workload",
        "R^2 (measured)",
        "R^2 (paper)",
        "slope",
        "points",
        "max |resid|",
    ]);
    for row in &result.rows {
        table.row(vec![
            row.workload.clone(),
            format!("{:.4}", row.r_squared),
            row.paper_r_squared
                .map(|r| format!("{r:.4}"))
                .unwrap_or_else(|| "-".to_string()),
            fmt_sig(row.slope, 4),
            row.points.to_string(),
            format!("{:.4}", row.max_abs_residual),
        ]);
    }
    let mut out = String::from("Figure 2 — RPS_obsv vs RPS_real correlation\n\n");
    out.push_str(&table.render());
    if with_charts {
        for (name, points) in &result.scatter {
            let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
            let mut chart = AsciiChart::new(56, 14);
            chart
                .title(format!("{name}: normalized RPS_real vs RPS_obsv"))
                .x_label("normalized RPS_obsv")
                .y_label("normalized RPS_real")
                .series(name.clone(), &xs, &ys, '*');
            out.push('\n');
            out.push_str(&chart.render());

            // The paper's lower panels: residuals around the linear fit,
            // showing the errors are random rather than biased.
            if let Ok(fit) = LinearFit::fit(&xs, &ys) {
                let residuals = fit.residuals(&xs, &ys);
                let mut resid_chart = AsciiChart::new(56, 8);
                resid_chart
                    .title(format!("{name}: residuals"))
                    .x_label("normalized RPS_obsv")
                    .y_label("residual")
                    .series("residual", &xs, &residuals, '.')
                    .horizontal_marker(0.0, '-');
                out.push('\n');
                out.push_str(&resid_chart.render());
            }
        }
    }
    out
}

/// Writes the scatter points as CSV rows (`workload,rps_obsv,rps_real`).
pub fn to_csv(result: &Fig2Result) -> String {
    let mut table = TextTable::new(vec!["workload", "rps_obsv_norm", "rps_real_norm"]);
    for (name, points) in &result.scatter {
        for (x, y) in points {
            table.row(vec![name.clone(), format!("{x:.6}"), format!("{y:.6}")]);
        }
    }
    table.to_csv()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_workload_has_high_r_squared_even_quick() {
        let spec = kscope_workloads::data_caching();
        let (row, points) = analyze_workload(&spec, &SweepConfig::quick());
        assert!(row.r_squared > 0.95, "R² {}", row.r_squared);
        assert!(points.len() >= 10);
    }

    #[test]
    fn paper_values_cover_all_workloads() {
        for spec in all_paper_workloads() {
            assert!(paper_r_squared(&spec.name).is_some(), "{}", spec.name);
        }
        assert_eq!(paper_r_squared("nonesuch"), None);
    }
}
