//! Table I: system specification.
//!
//! The paper's testbed is two physical servers; the simulation substitutes
//! host *profiles* whose core counts bound server capacity. This experiment
//! prints the same table shape, documenting the substitution.

use kscope_analysis::TextTable;
use kscope_kernel::HostSpec;

/// Renders the Table I equivalent for the simulated hosts.
pub fn render() -> String {
    let amd = HostSpec::amd_epyc_7302();
    let intel = HostSpec::intel_xeon_e5_2620();
    let mut table = TextTable::new(vec!["", "AMD", "INTEL"]);
    let mut row = |label: &str, a: String, b: String| {
        table.row(vec![label.to_string(), a, b]);
    };
    row("CPU Model", amd.cpu_model.clone(), intel.cpu_model.clone());
    row("OS (Kernel)", amd.os.clone(), intel.os.clone());
    row("Sockets", amd.sockets.to_string(), intel.sockets.to_string());
    row(
        "Cores/Socket",
        amd.cores_per_socket.to_string(),
        intel.cores_per_socket.to_string(),
    );
    row(
        "Threads/Core",
        amd.threads_per_core.to_string(),
        intel.threads_per_core.to_string(),
    );
    row(
        "Min/Max Frequency",
        format!("{}/{} MHz", amd.min_freq_mhz, amd.max_freq_mhz),
        format!("{}/{} MHz", intel.min_freq_mhz, intel.max_freq_mhz),
    );
    row(
        "Memory",
        format!("{} GB", amd.memory_gib),
        format!("{} GB", intel.memory_gib),
    );
    row(
        "Logical CPUs",
        amd.logical_cpus().to_string(),
        intel.logical_cpus().to_string(),
    );
    let mut out = String::from(
        "Table I — system specification (simulated host profiles;\n\
         the paper's physical testbed is substituted per DESIGN.md §5)\n\n",
    );
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn render_includes_both_hosts() {
        let text = super::render();
        assert!(text.contains("AMD EPYC 7302"));
        assert!(text.contains("Intel Xeon CPU E5-2620"));
        assert!(text.contains("Cores/Socket"));
    }
}
