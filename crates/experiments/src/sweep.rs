//! The shared load-sweep harness used by every figure and table.
//!
//! A sweep drives one workload across offered-load levels (fractions of the
//! paper's failure RPS), attaches the observability probe, and collects per
//! level both the client-side ground truth and the probe's window metrics —
//! the two sides whose relationship every experiment measures.

use kscope_core::{BytecodeBackend, NativeBackend, WindowedObserver, WindowMetrics, DEFAULT_SHIFT};
use kscope_kernel::TracepointProbe;
use kscope_netem::NetemConfig;
use kscope_simcore::Nanos;
use kscope_workloads::{run_workload_with, ClientStats, RunConfig, ThreadingModel, WorkloadSpec};

/// Which probe implementation to attach.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Plain-Rust probe (models a JIT-compiled eBPF program).
    Native,
    /// Verified eBPF bytecode run in the interpreter.
    Bytecode,
    /// Verified eBPF bytecode JIT-compiled to native machine code
    /// (falls back to the interpreter on unsupported targets).
    BytecodeJit,
}

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Load levels as fractions of the workload's paper failure RPS.
    pub fractions: Vec<f64>,
    /// Estimation windows per level (the paper plots ten per level).
    pub windows_per_level: usize,
    /// Target send samples per window (paper: ≥ 2048 syscalls).
    pub min_send_samples: u64,
    /// Network conditions.
    pub netem: NetemConfig,
    /// Base seed (levels use `seed + level index`).
    pub seed: u64,
    /// Probe implementation.
    pub backend: BackendKind,
}

impl SweepConfig {
    /// Paper-scale sweep: 13 levels, 10 windows each, 2048-sample windows.
    pub fn full() -> SweepConfig {
        SweepConfig {
            fractions: vec![
                0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.85, 0.9, 0.95, 1.0, 1.05,
            ],
            windows_per_level: 10,
            min_send_samples: 2048,
            netem: NetemConfig::loopback(),
            seed: 7,
            backend: BackendKind::Native,
        }
    }

    /// Reduced sweep for tests and smoke runs.
    pub fn quick() -> SweepConfig {
        SweepConfig {
            fractions: vec![0.2, 0.5, 0.8, 0.95, 1.05],
            windows_per_level: 4,
            min_send_samples: 192,
            netem: NetemConfig::loopback(),
            seed: 7,
            backend: BackendKind::Native,
        }
    }

    /// Replaces the network configuration (Table II / Fig. 5 variants).
    pub fn with_netem(mut self, netem: NetemConfig) -> SweepConfig {
        self.netem = netem;
        self
    }

    /// Replaces the probe backend.
    pub fn with_backend(mut self, backend: BackendKind) -> SweepConfig {
        self.backend = backend;
        self
    }
}

/// Measurements for one offered-load level.
#[derive(Debug, Clone)]
pub struct LevelResult {
    /// Offered load.
    pub offered_rps: f64,
    /// Client ground truth.
    pub client: ClientStats,
    /// Probe windows inside the measurement period.
    pub windows: Vec<WindowMetrics>,
}

impl LevelResult {
    /// True when the level's p99 exceeds the workload's QoS threshold.
    pub fn violates_qos(&self, spec: &WorkloadSpec) -> bool {
        self.client.p99_latency > spec.qos_p99
    }

    /// Mean of the windows' Eq. 1 estimates.
    pub fn mean_rps_obsv(&self) -> Option<f64> {
        let values: Vec<f64> = self.windows.iter().filter_map(|w| w.rps_obsv).collect();
        if values.is_empty() {
            None
        } else {
            Some(values.iter().sum::<f64>() / values.len() as f64)
        }
    }

    /// Mean of the windows' inter-send variances (ns²).
    pub fn mean_var_send(&self) -> Option<f64> {
        let values: Vec<f64> = self.windows.iter().filter_map(|w| w.var_send).collect();
        if values.is_empty() {
            None
        } else {
            Some(values.iter().sum::<f64>() / values.len() as f64)
        }
    }

    /// Mean of the windows' mean poll durations (ns).
    pub fn mean_poll_ns(&self) -> Option<f64> {
        let values: Vec<f64> = self.windows.iter().filter_map(|w| w.poll_mean_ns).collect();
        if values.is_empty() {
            None
        } else {
            Some(values.iter().sum::<f64>() / values.len() as f64)
        }
    }
}

/// A complete sweep of one workload.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The workload swept.
    pub spec: WorkloadSpec,
    /// Per-level measurements, in `fractions` order.
    pub levels: Vec<LevelResult>,
}

impl SweepResult {
    /// The first level violating QoS — the measured failure point.
    pub fn failure_level(&self) -> Option<&LevelResult> {
        self.levels.iter().find(|l| l.violates_qos(&self.spec))
    }

    /// `(rps_obsv, rps_real)` pairs: one point per window, with the level's
    /// achieved RPS as ground truth (the scatter of Fig. 2).
    pub fn correlation_points(&self, min_samples: u64) -> Vec<(f64, f64)> {
        let mut points = Vec::new();
        for level in &self.levels {
            for w in &level.windows {
                if w.send_samples >= min_samples {
                    if let Some(obsv) = w.rps_obsv {
                        points.push((obsv, level.client.achieved_rps));
                    }
                }
            }
        }
        points
    }
}

/// Total send-role syscalls one request generates (forward hops included) —
/// used to size observation windows.
pub fn send_events_per_request(spec: &WorkloadSpec) -> f64 {
    let egress = spec.sends_per_request.mean();
    match spec.threading {
        // Front-end forward write + back-end reply write + egress sends.
        ThreadingModel::TwoStage { .. } => egress + 2.0,
        _ => egress,
    }
}

/// Runs one level of a sweep.
pub fn run_level(spec: &WorkloadSpec, offered_rps: f64, config: &SweepConfig, seed: u64) -> LevelResult {
    let sends_per_req = send_events_per_request(spec);
    let window_secs =
        (config.min_send_samples as f64 * 1.3 / (offered_rps * sends_per_req)).max(0.05);
    let window = Nanos::from_secs_f64(window_secs);
    let warmup = Nanos::from_secs_f64((spec.service_time.mean() / 1e9 * 30.0).max(0.3));
    // Align the warmup to window boundaries so measurement windows are full.
    let warmup = window * warmup.as_nanos().div_ceil(window.as_nanos()).max(1);
    let run_cfg = RunConfig {
        offered_rps,
        warmup,
        measure: window * config.windows_per_level as u64,
        seed,
        netem: config.netem.clone(),
        collect_trace: false,
    };

    let backend = config.backend;
    let shift = DEFAULT_SHIFT;
    let outcome = run_workload_with(spec, &run_cfg, |sim| {
        let pids = sim.server_pids();
        let probe: Box<dyn TracepointProbe> = match backend {
            BackendKind::Native => Box::new(WindowedObserver::new(
                NativeBackend::new_multi(pids, sim.spec().profile.clone(), shift),
                window,
            )),
            BackendKind::Bytecode | BackendKind::BytecodeJit => {
                let mut probe = BytecodeBackend::new_multi(pids, sim.spec().profile.clone(), shift)
                    .unwrap_or_else(|e| panic!("generated probe programs must verify: {e}"));
                if backend == BackendKind::BytecodeJit {
                    probe = probe.with_jit();
                }
                Box::new(WindowedObserver::new(probe, window))
            }
        };
        vec![probe]
    });

    let mut kernel = outcome.kernel;
    let mut probe = match kernel.tracing.detach(outcome.probes[0]) {
        Some(probe) => probe,
        None => unreachable!("probe id came from this run's attach"),
    };
    let windows = match backend {
        BackendKind::Native => {
            let observer = match probe
                .as_any_mut()
                .downcast_mut::<WindowedObserver<NativeBackend>>()
            {
                Some(observer) => observer,
                None => unreachable!("this run attached a native windowed observer"),
            };
            observer.finish(outcome.end);
            observer.windows().to_vec()
        }
        BackendKind::Bytecode | BackendKind::BytecodeJit => {
            let observer = match probe
                .as_any_mut()
                .downcast_mut::<WindowedObserver<BytecodeBackend>>()
            {
                Some(observer) => observer,
                None => unreachable!("this run attached a bytecode windowed observer"),
            };
            observer.finish(outcome.end);
            observer.windows().to_vec()
        }
    };
    let windows = windows
        .into_iter()
        .filter(|w| w.start >= outcome.warmup_end && w.end <= outcome.end)
        .collect();

    LevelResult {
        offered_rps,
        client: outcome.client,
        windows,
    }
}

/// Runs a full sweep of `spec`, fanning levels across worker threads.
///
/// Levels are independent simulations with split seeds (`config.seed +
/// level index`), so the result is bitwise identical for every `jobs`
/// value — `jobs = 1` is the serial reference, and the
/// `sweep_parallel_determinism` test holds higher values to it.
pub fn sweep_jobs(spec: &WorkloadSpec, config: &SweepConfig, jobs: usize) -> SweepResult {
    let levels = crate::parallel::map_indexed(&config.fractions, jobs, |i, frac| {
        run_level(
            spec,
            spec.paper_failure_rps * frac,
            config,
            config.seed + i as u64,
        )
    });
    SweepResult {
        spec: spec.clone(),
        levels,
    }
}

/// Runs a full sweep of `spec` with the default worker count
/// (`--jobs` / `KSCOPE_JOBS` / available parallelism).
pub fn sweep(spec: &WorkloadSpec, config: &SweepConfig) -> SweepResult {
    sweep_jobs(spec, config, crate::parallel::default_jobs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kscope_workloads::data_caching;

    #[test]
    fn quick_sweep_produces_windows_and_knee() {
        let spec = data_caching();
        let result = sweep(&spec, &SweepConfig::quick());
        assert_eq!(result.levels.len(), 5);
        for level in &result.levels {
            assert!(
                !level.windows.is_empty(),
                "level {} has no windows",
                level.offered_rps
            );
        }
        // Light load meets QoS; deep overload violates it.
        assert!(!result.levels[0].violates_qos(&spec));
        assert!(result.levels.last().unwrap().violates_qos(&spec));
        assert!(result.failure_level().is_some());
    }

    #[test]
    fn correlation_points_track_ground_truth() {
        let spec = data_caching();
        let result = sweep(&spec, &SweepConfig::quick());
        let points = result.correlation_points(64);
        assert!(points.len() >= 10, "{} points", points.len());
        // Observed RPS should land within 25% of real RPS for most points
        // (send count per request is 1 for data caching).
        let close = points
            .iter()
            .filter(|(obsv, real)| (obsv - real).abs() / real < 0.25)
            .count();
        assert!(
            close * 10 >= points.len() * 8,
            "{close}/{} points close",
            points.len()
        );
    }

    #[test]
    fn send_events_per_request_accounts_for_hops() {
        assert_eq!(send_events_per_request(&data_caching()), 1.0);
        let ws = kscope_workloads::web_search();
        assert!(send_events_per_request(&ws) > 3.0);
    }

    #[test]
    fn bytecode_backend_sweep_smoke() {
        let spec = data_caching();
        let mut config = SweepConfig::quick().with_backend(BackendKind::Bytecode);
        config.fractions = vec![0.5];
        let result = sweep(&spec, &config);
        assert!(result.levels[0].mean_rps_obsv().is_some());
    }
}
