//! # kscope-experiments
//!
//! The reproduction harness: one module per table/figure of the paper's
//! evaluation, each exposing `run(scale)` + `render(..)` and a matching
//! binary target. The per-experiment index lives in `DESIGN.md`; measured
//! vs. paper numbers are recorded in `EXPERIMENTS.md`.
//!
//! | module | reproduces |
//! |---|---|
//! | [`fig1`] | Fig. 1 — syscall stream anatomy & request reconstruction |
//! | [`fig2`] | Fig. 2 — RPS_obsv vs RPS_real correlation (R²) |
//! | [`fig3`] | Fig. 3 — inter-send variance vs load |
//! | [`fig4`] | Fig. 4 — poll-duration slack vs load |
//! | [`fig5`] | Fig. 5 — loss robustness (Triton/gRPC) |
//! | [`table1`] | Table I — system specification |
//! | [`table2`] | Table II — network effect on the RPS fit |
//! | [`overhead`] | §VI — probe overhead on tail latency |
//!
//! Beyond the paper's own tables/figures, three modules quantify claims
//! its text makes in prose:
//!
//! | module | quantifies |
//! |---|---|
//! | [`iouring`] | §V-C — the io_uring syscall-bypass blind spot |
//! | [`windows`] | §IV-B — the ≥2048-sample window recommendation |
//! | [`hosts`] | §IV-A — generalization across the two testbed hosts |
//! | [`fleet`] | fleet collection plane — signal error vs report loss |

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig_netstack;
pub mod fleet;
pub mod hosts;
pub mod iouring;
pub mod overhead;
pub mod parallel;
pub mod sweep;
pub mod table1;
pub mod table2;
pub mod windows;

pub use parallel::{default_jobs, map_indexed};
pub use sweep::{
    run_level, send_events_per_request, sweep, sweep_jobs, BackendKind, LevelResult, SweepConfig,
    SweepResult,
};

/// Experiment scale: quick smoke runs vs. paper-scale sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced levels/windows for tests and smoke checks.
    Quick,
    /// Paper-scale sweep (the default for the binaries).
    Full,
}

impl Scale {
    /// Parses process arguments: `--quick` selects [`Scale::Quick`].
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Full
        }
    }
}

/// Writes a CSV artifact under `results/` (created on demand); returns the
/// path written, or `None` (with a warning on stderr) if writing failed.
pub fn write_artifact(name: &str, csv: &str) -> Option<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(name);
    match std::fs::write(&path, csv) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: cannot write {}: {e}", path.display());
            None
        }
    }
}
