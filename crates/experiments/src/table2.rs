//! Table II: the effect of the network on the RPS fit.
//!
//! Repeats the Fig. 2 regression for every workload under the paper's two
//! network configurations — `0ms delay / 0% loss` and `10ms delay / 1%
//! loss` — and reports R² for both. The finding to reproduce: the impaired
//! network barely moves R², because Eq. 1 counts server-side syscalls, not
//! client-perceived latency.

use kscope_analysis::TextTable;
use kscope_netem::NetemConfig;
use kscope_simcore::Nanos;
use kscope_workloads::all_paper_workloads;

use crate::fig2::{analyze_workload, paper_r_squared};
use crate::sweep::SweepConfig;
use crate::Scale;

/// One workload's row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Workload name.
    pub workload: String,
    /// R² under the clean network.
    pub r2_clean: f64,
    /// R² under 10ms delay / 1% loss.
    pub r2_impaired: f64,
    /// The paper's clean-network R².
    pub paper_clean: Option<f64>,
    /// The paper's impaired-network R².
    pub paper_impaired: Option<f64>,
}

/// The paper's impaired-column values.
pub fn paper_r_squared_impaired(workload: &str) -> Option<f64> {
    Some(match workload {
        "img-dnn" => 0.9998,
        "xapian" => 0.9964,
        "silo" => 0.9986,
        "specjbb" => 0.9996,
        "moses" => 0.9435,
        "data-caching" => 0.9989,
        "web-search" => 0.8573,
        "triton-http" => 0.9981,
        "triton-grpc" => 0.9703,
        _ => return None,
    })
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table2Row> {
    let base = match scale {
        Scale::Full => SweepConfig::full(),
        Scale::Quick => SweepConfig::quick(),
    };
    let clean = base
        .clone()
        .with_netem(NetemConfig::impaired(Nanos::ZERO, 0.0));
    let impaired = base.with_netem(NetemConfig::impaired(Nanos::from_millis(10), 0.01));
    all_paper_workloads()
        .iter()
        .map(|spec| {
            let (row_clean, _) = analyze_workload(spec, &clean);
            let (row_impaired, _) = analyze_workload(spec, &impaired);
            Table2Row {
                workload: spec.name.clone(),
                r2_clean: row_clean.r_squared,
                r2_impaired: row_impaired.r_squared,
                paper_clean: paper_r_squared(&spec.name),
                paper_impaired: paper_r_squared_impaired(&spec.name),
            }
        })
        .collect()
}

/// Renders the table.
pub fn render(rows: &[Table2Row]) -> String {
    let mut table = TextTable::new(vec![
        "workload",
        "0ms/0% (measured)",
        "10ms/1% (measured)",
        "0ms/0% (paper)",
        "10ms/1% (paper)",
    ]);
    for row in rows {
        table.row(vec![
            row.workload.clone(),
            format!("{:.4}", row.r2_clean),
            format!("{:.4}", row.r2_impaired),
            row.paper_clean
                .map(|r| format!("{r:.4}"))
                .unwrap_or_else(|| "-".into()),
            row.paper_impaired
                .map(|r| format!("{r:.4}"))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    let mut out =
        String::from("Table II — effect of the network on approximated RPS (R²)\n\n");
    out.push_str(&table.render());
    out
}

/// CSV form.
pub fn to_csv(rows: &[Table2Row]) -> String {
    let mut table = TextTable::new(vec!["workload", "r2_clean", "r2_impaired"]);
    for row in rows {
        table.row(vec![
            row.workload.clone(),
            format!("{:.6}", row.r2_clean),
            format!("{:.6}", row.r2_impaired),
        ]);
    }
    table.to_csv()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kscope_workloads::data_caching;

    #[test]
    fn impairment_barely_moves_r_squared() {
        let spec = data_caching();
        let base = SweepConfig::quick();
        let (clean, _) = analyze_workload(
            &spec,
            &base.clone().with_netem(NetemConfig::impaired(Nanos::ZERO, 0.0)),
        );
        let (impaired, _) = analyze_workload(
            &spec,
            &base.with_netem(NetemConfig::impaired(Nanos::from_millis(10), 0.01)),
        );
        assert!(clean.r_squared > 0.95, "clean {}", clean.r_squared);
        assert!(
            (clean.r_squared - impaired.r_squared).abs() < 0.05,
            "clean {} vs impaired {}",
            clean.r_squared,
            impaired.r_squared
        );
    }

    #[test]
    fn paper_values_cover_all_workloads() {
        for spec in all_paper_workloads() {
            assert!(paper_r_squared_impaired(&spec.name).is_some());
        }
    }
}
