//! Property-based tests for the network emulator.

use kscope_netem::{LossModel, NetemConfig, NetemLink};
use kscope_simcore::{Nanos, SimRng};
use kscope_testkit::{gen, Config};

/// Conservation: every offered message is eventually delivered, and
/// transit delay is never below the configured propagation delay.
#[test]
fn conservation_and_delay_floor() {
    kscope_testkit::check!(
        Config::cases(128),
        |rng: &mut SimRng| {
            (
                gen::u64_any(rng),
                gen::u64_in(rng, 0, 49_999),
                gen::f64_in(rng, 0.0, 0.6),
                gen::usize_in(rng, 1, 199),
            )
        },
        |&(seed, delay_us, loss, n): &(u64, u64, f64, usize)| {
            let mut cfg = NetemConfig::impaired(Nanos::from_micros(delay_us), loss);
            cfg.jitter = None;
            let mut link = NetemLink::new(cfg);
            let mut rng = SimRng::seed_from_u64(seed);
            for _ in 0..n {
                let t = link.send(&mut rng);
                assert!(t.delay >= Nanos::from_micros(delay_us));
                assert!(t.transmissions >= 1);
            }
            assert_eq!(link.stats().offered, n as u64);
            assert_eq!(link.stats().delivered, n as u64);
        }
    );
}

/// Retransmission count is bounded by the configured maximum.
#[test]
fn retransmissions_are_bounded() {
    kscope_testkit::check!(
        Config::cases(128),
        |rng: &mut SimRng| (gen::u64_any(rng), gen::u64_in(rng, 0, 7) as u32),
        |&(seed, max_rtx): &(u64, u32)| {
            let mut cfg = NetemConfig::ideal();
            cfg.loss = LossModel::Bernoulli { p: 0.9 };
            cfg.max_retransmits = max_rtx;
            let mut link = NetemLink::new(cfg);
            let mut rng = SimRng::seed_from_u64(seed);
            for _ in 0..100 {
                let t = link.send(&mut rng);
                assert!(t.transmissions <= max_rtx + 1);
            }
        }
    );
}

/// A lossless link never retransmits, whatever the other knobs say.
#[test]
fn lossless_links_never_retransmit() {
    kscope_testkit::check!(
        Config::cases(128),
        |rng: &mut SimRng| (gen::u64_any(rng), gen::u64_in(rng, 0, 9_999)),
        |&(seed, delay_us): &(u64, u64)| {
            let mut link =
                NetemLink::new(NetemConfig::impaired(Nanos::from_micros(delay_us), 0.0));
            let mut rng = SimRng::seed_from_u64(seed);
            for _ in 0..200 {
                assert_eq!(link.send(&mut rng).transmissions, 1);
            }
            assert_eq!(link.stats().retransmissions, 0);
        }
    );
}

/// Steady-state loss of any model is a probability.
#[test]
fn steady_state_loss_is_a_probability() {
    kscope_testkit::check!(
        Config::cases(128),
        |rng: &mut SimRng| {
            (
                gen::f64_in(rng, 0.0, 1.0),
                gen::f64_in(rng, 0.0, 1.0),
                gen::f64_in(rng, 0.0, 1.0),
                gen::f64_in(rng, 0.0, 1.0),
            )
        },
        |&(p_gb, p_bg, lg, lb): &(f64, f64, f64, f64)| {
            let model = LossModel::GilbertElliott {
                p_good_to_bad: p_gb,
                p_bad_to_good: p_bg,
                loss_good: lg,
                loss_bad: lb,
            };
            let rate = model.steady_state_loss();
            assert!((0.0..=1.0).contains(&rate), "rate {rate}");
        }
    );
}

/// Determinism of the control channel: a seeded channel applied twice to
/// the same event stream yields identical per-message delivery times and
/// an identical drop set — the prerequisite trust for routing fleet
/// reports through netem. Exercises jitter (reordering source), both loss
/// models, and the unreliable datagram path's stats.
#[test]
fn seeded_channel_replays_identically() {
    kscope_testkit::check!(
        Config::cases(128),
        |rng: &mut SimRng| {
            (
                gen::u64_any(rng),
                gen::u64_in(rng, 0, 9_999),
                gen::f64_in(rng, 0.0, 0.5),
                gen::bool_any(rng),
                gen::usize_in(rng, 1, 300),
            )
        },
        |&(seed, delay_us, loss, bursty, n): &(u64, u64, f64, bool, usize)| {
            let mut cfg = NetemConfig::impaired(Nanos::from_micros(delay_us), loss);
            if bursty && loss > 0.0 {
                cfg.loss = LossModel::GilbertElliott {
                    p_good_to_bad: loss / 2.0,
                    p_bad_to_good: 0.3,
                    loss_good: loss / 4.0,
                    loss_bad: 0.9,
                };
            }
            let replay = |cfg: &NetemConfig| {
                let mut link = NetemLink::new(cfg.clone());
                let mut rng = SimRng::seed_from_u64(seed);
                // (delivery time | None for dropped) per message, i.e. the
                // delivery schedule and the drop set in one sequence.
                let schedule: Vec<Option<Nanos>> = (0..n)
                    .map(|_| {
                        let t = link.send_datagram(&mut rng);
                        t.delivered.then_some(t.delay)
                    })
                    .collect();
                (schedule, *link.stats())
            };
            let (sched_a, stats_a) = replay(&cfg);
            let (sched_b, stats_b) = replay(&cfg);
            assert_eq!(sched_a, sched_b);
            assert_eq!(stats_a, stats_b);
            assert_eq!(
                stats_a.delivered + stats_a.dropped,
                n as u64,
                "every datagram is either delivered or counted dropped"
            );
        }
    );
}

/// Determinism: identical seeds produce identical transit sequences.
#[test]
fn links_are_deterministic() {
    kscope_testkit::check!(
        Config::cases(128),
        |rng: &mut SimRng| gen::u64_any(rng),
        |&seed: &u64| {
            let cfg = NetemConfig::impaired(Nanos::from_millis(1), 0.2);
            let mut a = NetemLink::new(cfg.clone());
            let mut b = NetemLink::new(cfg);
            let mut rng_a = SimRng::seed_from_u64(seed);
            let mut rng_b = SimRng::seed_from_u64(seed);
            for _ in 0..50 {
                assert_eq!(a.send(&mut rng_a), b.send(&mut rng_b));
            }
        }
    );
}
