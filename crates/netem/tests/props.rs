//! Property-based tests for the network emulator.

use kscope_netem::{LossModel, NetemConfig, NetemLink};
use kscope_simcore::{Nanos, SimRng};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Conservation: every offered message is eventually delivered, and
    /// transit delay is never below the configured propagation delay.
    #[test]
    fn conservation_and_delay_floor(
        seed in any::<u64>(),
        delay_us in 0u64..50_000,
        loss in 0.0f64..0.6,
        n in 1usize..200,
    ) {
        let mut cfg = NetemConfig::impaired(Nanos::from_micros(delay_us), loss);
        cfg.jitter = None;
        let mut link = NetemLink::new(cfg);
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..n {
            let t = link.send(&mut rng);
            prop_assert!(t.delay >= Nanos::from_micros(delay_us));
            prop_assert!(t.transmissions >= 1);
        }
        prop_assert_eq!(link.stats().offered, n as u64);
        prop_assert_eq!(link.stats().delivered, n as u64);
    }

    /// Retransmission count is bounded by the configured maximum.
    #[test]
    fn retransmissions_are_bounded(seed in any::<u64>(), max_rtx in 0u32..8) {
        let mut cfg = NetemConfig::ideal();
        cfg.loss = LossModel::Bernoulli { p: 0.9 };
        cfg.max_retransmits = max_rtx;
        let mut link = NetemLink::new(cfg);
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..100 {
            let t = link.send(&mut rng);
            prop_assert!(t.transmissions <= max_rtx + 1);
        }
    }

    /// A lossless link never retransmits, whatever the other knobs say.
    #[test]
    fn lossless_links_never_retransmit(seed in any::<u64>(), delay_us in 0u64..10_000) {
        let mut link = NetemLink::new(NetemConfig::impaired(Nanos::from_micros(delay_us), 0.0));
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert_eq!(link.send(&mut rng).transmissions, 1);
        }
        prop_assert_eq!(link.stats().retransmissions, 0);
    }

    /// Steady-state loss of any model is a probability.
    #[test]
    fn steady_state_loss_is_a_probability(
        p_gb in 0.0f64..1.0,
        p_bg in 0.0f64..1.0,
        lg in 0.0f64..1.0,
        lb in 0.0f64..1.0,
    ) {
        let model = LossModel::GilbertElliott {
            p_good_to_bad: p_gb,
            p_bad_to_good: p_bg,
            loss_good: lg,
            loss_bad: lb,
        };
        let rate = model.steady_state_loss();
        prop_assert!((0.0..=1.0).contains(&rate), "rate {rate}");
    }

    /// Determinism: identical seeds produce identical transit sequences.
    #[test]
    fn links_are_deterministic(seed in any::<u64>()) {
        let cfg = NetemConfig::impaired(Nanos::from_millis(1), 0.2);
        let mut a = NetemLink::new(cfg.clone());
        let mut b = NetemLink::new(cfg);
        let mut rng_a = SimRng::seed_from_u64(seed);
        let mut rng_b = SimRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert_eq!(a.send(&mut rng_a), b.send(&mut rng_b));
        }
    }
}
