//! # kscope-netem
//!
//! Network emulation modeled on Linux `tc-netem`, the tool the paper used
//! to inject delay and loss on the loopback interface (§V-A). A
//! [`NetemLink`] is one direction of a path; sending a message through it
//! yields the arrival delay including retransmissions.
//!
//! The crucial behaviour the paper's Fig. 5 / Table II depend on: **loss
//! inflates client-observed latency through TCP retransmission timeouts,
//! but barely shifts when the request reaches the server**, so server-side
//! syscall statistics stay stable while client tail latency explodes. The
//! link reproduces that by charging lost transmissions a sender-side RTO
//! (with exponential backoff) before the successful copy transits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use kscope_simcore::{Dist, Nanos, SimRng};

/// Packet-loss models supported by the link.
#[derive(Debug, Clone, PartialEq)]
pub enum LossModel {
    /// No loss.
    None,
    /// Independent loss with probability `p` per transmission.
    Bernoulli {
        /// Loss probability in `[0, 1]`.
        p: f64,
    },
    /// Two-state Gilbert–Elliott burst loss.
    GilbertElliott {
        /// Probability of moving good→bad after a transmission.
        p_good_to_bad: f64,
        /// Probability of moving bad→good after a transmission.
        p_bad_to_good: f64,
        /// Loss probability while in the good state.
        loss_good: f64,
        /// Loss probability while in the bad state.
        loss_bad: f64,
    },
}

impl LossModel {
    /// Average long-run loss rate of the model.
    pub fn steady_state_loss(&self) -> f64 {
        match *self {
            LossModel::None => 0.0,
            LossModel::Bernoulli { p } => p,
            LossModel::GilbertElliott {
                p_good_to_bad,
                p_bad_to_good,
                loss_good,
                loss_bad,
            } => {
                // Stationary distribution of the two-state chain.
                let denom = p_good_to_bad + p_bad_to_good;
                if denom == 0.0 {
                    return loss_good;
                }
                let pi_bad = p_good_to_bad / denom;
                (1.0 - pi_bad) * loss_good + pi_bad * loss_bad
            }
        }
    }
}

/// Configuration of one link direction (the `tc qdisc add dev lo root
/// netem …` equivalent).
#[derive(Debug, Clone, PartialEq)]
pub struct NetemConfig {
    /// Fixed one-way propagation delay.
    pub delay: Nanos,
    /// Additional random jitter added per transit (sampled in nanoseconds).
    pub jitter: Option<Dist>,
    /// Loss model.
    pub loss: LossModel,
    /// Base retransmission timeout charged per lost transmission.
    pub rto: Nanos,
    /// Multiplier applied to the RTO after each consecutive loss
    /// (TCP-style exponential backoff).
    pub rto_backoff: f64,
    /// Upper bound on retransmissions; after this many losses the packet is
    /// delivered anyway (the connection would otherwise reset — a case the
    /// paper's experiments never reach at 1% loss).
    pub max_retransmits: u32,
}

impl NetemConfig {
    /// A perfect link: zero delay, no jitter, no loss.
    pub fn ideal() -> NetemConfig {
        NetemConfig {
            delay: Nanos::ZERO,
            jitter: None,
            loss: LossModel::None,
            rto: Nanos::from_millis(200),
            rto_backoff: 2.0,
            max_retransmits: 15,
        }
    }

    /// Loopback-like link: tens of microseconds of delay, no loss — the
    /// paper's baseline configuration.
    pub fn loopback() -> NetemConfig {
        NetemConfig {
            delay: Nanos::from_micros(30),
            jitter: Some(Dist::exponential(5_000.0)),
            ..NetemConfig::ideal()
        }
    }

    /// `delay Xms loss Y%` — the Table II impaired configuration is
    /// `NetemConfig::impaired(Nanos::from_millis(10), 0.01)`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is outside `[0, 1]`.
    pub fn impaired(delay: Nanos, loss: f64) -> NetemConfig {
        assert!((0.0..=1.0).contains(&loss), "loss must be in [0, 1]");
        NetemConfig {
            delay,
            jitter: Some(Dist::exponential(5_000.0)),
            loss: if loss > 0.0 {
                LossModel::Bernoulli { p: loss }
            } else {
                LossModel::None
            },
            ..NetemConfig::ideal()
        }
    }
}

impl Default for NetemConfig {
    fn default() -> Self {
        NetemConfig::loopback()
    }
}

/// Outcome of sending one message through the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transit {
    /// Time from send to successful delivery.
    pub delay: Nanos,
    /// Total transmissions (1 = no loss).
    pub transmissions: u32,
}

/// Outcome of one unreliable (datagram) transmission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatagramTransit {
    /// One-way transit time. For a dropped datagram this is when the loss
    /// resolves at the link (useful to release sender-side inflight
    /// budget deterministically); nothing arrives at the receiver.
    pub delay: Nanos,
    /// Whether the datagram arrived.
    pub delivered: bool,
}

/// Aggregate link statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Messages offered to the link.
    pub offered: u64,
    /// Messages delivered. For the reliable [`NetemLink::send`] path this
    /// equals `offered` (delivery is eventual); datagrams sent with
    /// [`NetemLink::send_datagram`] may instead count into `dropped`.
    pub delivered: u64,
    /// Transmissions lost and retransmitted (reliable path only).
    pub retransmissions: u64,
    /// Datagrams lost outright (unreliable path only).
    pub dropped: u64,
    /// Payload bytes offered via [`NetemLink::send_datagram_sized`].
    pub bytes_offered: u64,
    /// Payload bytes delivered via [`NetemLink::send_datagram_sized`].
    pub bytes_delivered: u64,
}

/// One direction of an emulated network path.
///
/// # Examples
///
/// ```
/// use kscope_netem::{NetemConfig, NetemLink};
/// use kscope_simcore::{Nanos, SimRng};
///
/// let mut link = NetemLink::new(NetemConfig::impaired(Nanos::from_millis(10), 0.0));
/// let mut rng = SimRng::seed_from_u64(3);
/// let transit = link.send(&mut rng);
/// assert!(transit.delay >= Nanos::from_millis(10));
/// assert_eq!(transit.transmissions, 1);
/// ```
#[derive(Debug, Clone)]
pub struct NetemLink {
    config: NetemConfig,
    /// Gilbert–Elliott state: true = bad.
    ge_bad: bool,
    stats: LinkStats,
}

impl NetemLink {
    /// Creates a link with the given configuration.
    pub fn new(config: NetemConfig) -> NetemLink {
        NetemLink {
            config,
            ge_bad: false,
            stats: LinkStats::default(),
        }
    }

    /// The link's configuration.
    pub fn config(&self) -> &NetemConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &LinkStats {
        &self.stats
    }

    fn transmission_lost(&mut self, rng: &mut SimRng) -> bool {
        match self.config.loss {
            LossModel::None => false,
            LossModel::Bernoulli { p } => rng.next_bool(p),
            LossModel::GilbertElliott {
                p_good_to_bad,
                p_bad_to_good,
                loss_good,
                loss_bad,
            } => {
                let p = if self.ge_bad { loss_bad } else { loss_good };
                let lost = rng.next_bool(p);
                // State transition after each transmission.
                if self.ge_bad {
                    if rng.next_bool(p_bad_to_good) {
                        self.ge_bad = false;
                    }
                } else if rng.next_bool(p_good_to_bad) {
                    self.ge_bad = true;
                }
                lost
            }
        }
    }

    fn one_way(&self, rng: &mut SimRng) -> Nanos {
        let jitter = self
            .config
            .jitter
            .as_ref()
            .map(|d| d.sample_nanos(rng))
            .unwrap_or(Nanos::ZERO);
        self.config.delay + jitter
    }

    /// Sends one message; returns when (relative to now) it arrives and how
    /// many transmissions it took.
    pub fn send(&mut self, rng: &mut SimRng) -> Transit {
        self.stats.offered += 1;
        let mut elapsed = Nanos::ZERO;
        let mut rto = self.config.rto;
        let mut transmissions = 1u32;
        while transmissions <= self.config.max_retransmits && self.transmission_lost(rng) {
            // Sender waits out the RTO, then retransmits with backoff.
            elapsed += rto;
            rto = Nanos::from_nanos((rto.as_nanos() as f64 * self.config.rto_backoff) as u64);
            transmissions += 1;
            self.stats.retransmissions += 1;
        }
        self.stats.delivered += 1;
        Transit {
            delay: elapsed + self.one_way(rng),
            transmissions,
        }
    }

    /// Sends one message with **no** retransmission — UDP-style datagram
    /// semantics for control-plane traffic that tolerates loss (e.g. the
    /// fleet report channel, whose cumulative payloads make any later
    /// report subsume a lost one). A single transmission attempt either
    /// arrives after the one-way delay (plus jitter) or is dropped and
    /// counted in [`LinkStats::dropped`]. Jitter reorders: two datagrams
    /// sent back-to-back may arrive out of order, which is why receivers
    /// must sequence-check.
    pub fn send_datagram(&mut self, rng: &mut SimRng) -> DatagramTransit {
        self.stats.offered += 1;
        let lost = self.transmission_lost(rng);
        let delay = self.one_way(rng);
        if lost {
            self.stats.dropped += 1;
        } else {
            self.stats.delivered += 1;
        }
        DatagramTransit {
            delay,
            delivered: !lost,
        }
    }

    /// [`NetemLink::send_datagram`] with a payload size, so the link
    /// accounts wire bytes: `bytes` counts into
    /// [`LinkStats::bytes_offered`], and into
    /// [`LinkStats::bytes_delivered`] when the datagram arrives. This is
    /// what the fleet's O(K) report envelopes travel through — the byte
    /// ledger is how the collection plane proves its reports stay
    /// constant-size as entity counts grow.
    pub fn send_datagram_sized(&mut self, rng: &mut SimRng, bytes: u64) -> DatagramTransit {
        let transit = self.send_datagram(rng);
        self.stats.bytes_offered += bytes;
        if transit.delivered {
            self.stats.bytes_delivered += bytes;
        }
        transit
    }
}

/// A bidirectional path: request direction and response direction with the
/// same configuration (the paper configures both sides of loopback at once).
#[derive(Debug, Clone)]
pub struct NetemPath {
    /// Client → server direction.
    pub request: NetemLink,
    /// Server → client direction.
    pub response: NetemLink,
}

impl NetemPath {
    /// Creates a symmetric path from one configuration.
    pub fn symmetric(config: NetemConfig) -> NetemPath {
        NetemPath {
            request: NetemLink::new(config.clone()),
            response: NetemLink::new(config),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_link_is_instant_and_lossless() {
        let mut link = NetemLink::new(NetemConfig::ideal());
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..1000 {
            let t = link.send(&mut rng);
            assert_eq!(t.delay, Nanos::ZERO);
            assert_eq!(t.transmissions, 1);
        }
        assert_eq!(link.stats().retransmissions, 0);
        assert_eq!(link.stats().offered, 1000);
        assert_eq!(link.stats().delivered, 1000);
    }

    #[test]
    fn fixed_delay_applies() {
        let mut cfg = NetemConfig::ideal();
        cfg.delay = Nanos::from_millis(10);
        let mut link = NetemLink::new(cfg);
        let mut rng = SimRng::seed_from_u64(2);
        assert_eq!(link.send(&mut rng).delay, Nanos::from_millis(10));
    }

    #[test]
    fn bernoulli_loss_rate_matches_configuration() {
        let mut cfg = NetemConfig::ideal();
        cfg.loss = LossModel::Bernoulli { p: 0.1 };
        let mut link = NetemLink::new(cfg);
        let mut rng = SimRng::seed_from_u64(3);
        let n = 100_000;
        for _ in 0..n {
            link.send(&mut rng);
        }
        // Retransmission count ≈ expected losses: n * p / (1 - p).
        let expected = n as f64 * 0.1 / 0.9;
        let got = link.stats().retransmissions as f64;
        assert!(
            (got - expected).abs() / expected < 0.05,
            "retransmissions {got}, expected ≈ {expected}"
        );
    }

    #[test]
    fn loss_charges_rto_with_backoff() {
        let mut cfg = NetemConfig::ideal();
        cfg.loss = LossModel::Bernoulli { p: 1.0 };
        cfg.max_retransmits = 2;
        cfg.rto = Nanos::from_millis(100);
        let mut link = NetemLink::new(cfg);
        let mut rng = SimRng::seed_from_u64(4);
        let t = link.send(&mut rng);
        // Both allowed retransmissions were consumed: 100ms + 200ms of RTO.
        assert_eq!(t.delay, Nanos::from_millis(300));
        assert_eq!(t.transmissions, 3);
    }

    #[test]
    fn delivery_is_eventual_even_at_full_loss() {
        let mut cfg = NetemConfig::ideal();
        cfg.loss = LossModel::Bernoulli { p: 1.0 };
        let mut link = NetemLink::new(cfg.clone());
        let mut rng = SimRng::seed_from_u64(5);
        let t = link.send(&mut rng);
        assert_eq!(t.transmissions, cfg.max_retransmits + 1);
        assert_eq!(link.stats().delivered, 1);
    }

    #[test]
    fn gilbert_elliott_steady_state() {
        let model = LossModel::GilbertElliott {
            p_good_to_bad: 0.01,
            p_bad_to_good: 0.09,
            loss_good: 0.0,
            loss_bad: 0.5,
        };
        // pi_bad = 0.01 / 0.1 = 0.1; loss = 0.1 * 0.5 = 0.05.
        assert!((model.steady_state_loss() - 0.05).abs() < 1e-12);

        let mut cfg = NetemConfig::ideal();
        cfg.loss = model;
        let mut link = NetemLink::new(cfg);
        let mut rng = SimRng::seed_from_u64(6);
        let n = 200_000;
        for _ in 0..n {
            link.send(&mut rng);
        }
        let rate = link.stats().retransmissions as f64
            / (link.stats().offered + link.stats().retransmissions) as f64;
        assert!(
            (rate - 0.05).abs() < 0.01,
            "observed loss rate {rate}, expected ≈ 0.05"
        );
    }

    #[test]
    fn jitter_widens_the_delay_distribution() {
        let mut cfg = NetemConfig::ideal();
        cfg.delay = Nanos::from_micros(100);
        cfg.jitter = Some(Dist::uniform(0.0, 50_000.0));
        let mut link = NetemLink::new(cfg);
        let mut rng = SimRng::seed_from_u64(7);
        let delays: Vec<u64> = (0..100).map(|_| link.send(&mut rng).delay.as_nanos()).collect();
        assert!(delays.iter().all(|&d| d >= 100_000));
        assert!(delays.iter().any(|&d| d > 110_000));
    }

    #[test]
    fn impaired_preset_matches_table_two_column() {
        let cfg = NetemConfig::impaired(Nanos::from_millis(10), 0.01);
        assert_eq!(cfg.delay, Nanos::from_millis(10));
        assert_eq!(cfg.loss, LossModel::Bernoulli { p: 0.01 });
        assert_eq!(cfg.loss.steady_state_loss(), 0.01);
        let zero = NetemConfig::impaired(Nanos::ZERO, 0.0);
        assert_eq!(zero.loss, LossModel::None);
    }

    #[test]
    fn datagrams_drop_instead_of_retransmitting() {
        let mut cfg = NetemConfig::ideal();
        cfg.loss = LossModel::Bernoulli { p: 0.2 };
        let mut link = NetemLink::new(cfg);
        let mut rng = SimRng::seed_from_u64(11);
        let n = 50_000u64;
        for _ in 0..n {
            link.send_datagram(&mut rng);
        }
        let stats = link.stats();
        assert_eq!(stats.offered, n);
        assert_eq!(stats.delivered + stats.dropped, n);
        assert_eq!(stats.retransmissions, 0);
        let rate = stats.dropped as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.01, "drop rate {rate}, expected ≈ 0.2");
    }

    #[test]
    fn ideal_datagrams_all_arrive_instantly() {
        let mut link = NetemLink::new(NetemConfig::ideal());
        let mut rng = SimRng::seed_from_u64(12);
        for _ in 0..100 {
            let t = link.send_datagram(&mut rng);
            assert!(t.delivered);
            assert_eq!(t.delay, Nanos::ZERO);
        }
        assert_eq!(link.stats().dropped, 0);
        assert_eq!(link.stats().delivered, 100);
    }

    #[test]
    fn sized_datagrams_keep_a_byte_ledger() {
        let mut cfg = NetemConfig::ideal();
        cfg.loss = LossModel::Bernoulli { p: 0.3 };
        let mut link = NetemLink::new(cfg);
        let mut rng = SimRng::seed_from_u64(21);
        let n = 10_000u64;
        for _ in 0..n {
            link.send_datagram_sized(&mut rng, 700);
        }
        let stats = link.stats();
        assert_eq!(stats.bytes_offered, n * 700);
        assert_eq!(stats.bytes_delivered, stats.delivered * 700);
        assert!(stats.bytes_delivered < stats.bytes_offered, "30% loss drops bytes");
        // The datagram counters and the byte ledger agree exactly.
        assert_eq!(
            stats.bytes_offered - stats.bytes_delivered,
            stats.dropped * 700
        );
    }

    #[test]
    fn unsized_datagrams_leave_the_byte_ledger_untouched() {
        let mut link = NetemLink::new(NetemConfig::ideal());
        let mut rng = SimRng::seed_from_u64(22);
        link.send_datagram(&mut rng);
        assert_eq!(link.stats().bytes_offered, 0);
        assert_eq!(link.stats().bytes_delivered, 0);
    }

    #[test]
    fn symmetric_path_has_independent_stats() {
        let mut path = NetemPath::symmetric(NetemConfig::ideal());
        let mut rng = SimRng::seed_from_u64(8);
        path.request.send(&mut rng);
        assert_eq!(path.request.stats().offered, 1);
        assert_eq!(path.response.stats().offered, 0);
    }

    #[test]
    #[should_panic(expected = "loss must be in")]
    fn impaired_rejects_bad_loss() {
        NetemConfig::impaired(Nanos::ZERO, 1.5);
    }
}
