//! Bounds-check elision in the template JIT is invisible except in the
//! generated code.
//!
//! The verifier's value-tracking pass attaches per-pc [`AccessProofs`]
//! to a program it accepts; the JIT consumes them to replace trampolined
//! (bounds-checked) stack and context accesses with direct machine
//! loads/stores. These tests pin the contract from both sides:
//!
//! * **Identity**: for verified programs, the elided JIT, the unelided
//!   JIT, and the decoded interpreter produce bitwise-identical outcomes
//!   and map state — elision may never change observable behavior.
//! * **Effectiveness**: a stack/context-heavy verified program actually
//!   compiles with `elided_accesses() > 0`, and the same program
//!   compiled without proofs keeps every check in.
//! * **Soundness knob**: verifying with `value_tracking: false` attaches
//!   no proofs, so even an elision-requesting JIT emits the fully
//!   checked code.
//! * **Runtime guard**: context proofs are conditioned on the verified
//!   `ctx_size`; executing with a shorter context must take the checked
//!   path and fault exactly like the interpreter.

use kscope_ebpf::asm::Asm;
use kscope_ebpf::insn::SZ_DW;
use kscope_ebpf::interp::{ExecEnv, Vm};
use kscope_ebpf::maps::{MapDef, MapRegistry};
use kscope_ebpf::verifier::{Verifier, VerifierConfig};
use kscope_ebpf::Program;
use kscope_simcore::SimRng;
use kscope_testkit::ebpf_gen::{bounded_offset_program, valid_program};
use kscope_testkit::{check, Config};

/// Executes `prog` on the decoded interpreter, the elided JIT, and the
/// unelided JIT from identical states and asserts all three agree on
/// the `Result`, the helper environment, and the full map state.
fn assert_elision_invisible(label: &str, prog: &Program, ctx: &[u8], base: &MapRegistry) {
    let env = ExecEnv {
        ktime_ns: 1_000_000,
        pid_tgid: 0x0042_0043,
        prandom_state: 7,
    };

    let mut maps_decoded = base.clone();
    let mut env_decoded = env;
    let decoded = Vm::new().execute(prog, ctx, &mut maps_decoded, &mut env_decoded);

    for (arm, mut vm) in [
        ("jit", Vm::new().with_jit()),
        ("jit-no-elide", Vm::new().with_jit().without_bounds_elision()),
    ] {
        let mut maps_jit = base.clone();
        let mut env_jit = env;
        let jit = vm.execute(prog, ctx, &mut maps_jit, &mut env_jit);
        assert_eq!(
            decoded,
            jit,
            "{label}: decoded vs {arm} outcomes diverge\n{}",
            prog.disassemble()
        );
        assert_eq!(env_decoded, env_jit, "{label}: decoded vs {arm} env diverges");
        assert_eq!(
            format!("{maps_decoded:?}"),
            format!("{maps_jit:?}"),
            "{label}: decoded vs {arm} map state diverges\n{}",
            prog.disassemble()
        );
    }
}

/// A verified program dense with provable accesses: constant-offset
/// context loads and aligned stack spill/fill traffic.
fn stack_ctx_heavy() -> Program {
    Asm::new("stack_ctx_heavy")
        .load(SZ_DW, 6, 1, 0)
        .load(SZ_DW, 7, 1, 8)
        .load(SZ_DW, 8, 1, 16)
        .store_reg(SZ_DW, 10, 6, -8)
        .store_reg(SZ_DW, 10, 7, -16)
        .store_reg(SZ_DW, 10, 8, -24)
        .load(SZ_DW, 0, 10, -8)
        .load(SZ_DW, 6, 10, -16)
        .add64_reg(0, 6)
        .load(SZ_DW, 6, 10, -24)
        .add64_reg(0, 6)
        .exit()
        .assemble()
        .unwrap_or_else(|e| panic!("must assemble: {e}"))
}

/// Property: over generated verified programs (structured bodies and
/// register-offset clamped memory traffic with live maps), turning
/// elision on or off never changes any observable result.
#[test]
fn elision_on_off_identical_for_generated_programs() {
    check!(
        Config::cases(300),
        |rng: &mut SimRng| {
            let style = rng.next_below(2);
            let ctx: Vec<u8> = (0..64).map(|_| rng.next_u64() as u8).collect();
            (style, rng.next_u64(), ctx)
        },
        |(style, seed, ctx)| {
            let mut rng = SimRng::seed_from_u64(*seed);
            let mut base = MapRegistry::new();
            let vals = base.create("vals", MapDef::array(128, 1));
            let prog = if *style == 0 {
                valid_program(&mut rng, true)
            } else {
                bounded_offset_program(&mut rng, Some(vals))
            };
            // Generated programs verify by construction; verification
            // attaches the proofs elision runs on.
            Verifier::default()
                .verify(&prog, &base)
                .unwrap_or_else(|e| panic!("generator emitted an unverifiable program: {e}"));
            assert!(prog.access_proofs().is_some());
            assert_elision_invisible("generated", &prog, ctx, &base);
        },
    );
}

/// The stack/context-heavy program compiles with real elisions when
/// proofs are attached — and with none when elision is declined.
#[test]
fn elided_jit_removes_proven_checks() {
    let prog = stack_ctx_heavy();
    let maps = MapRegistry::new();
    Verifier::default()
        .verify(&prog, &maps)
        .unwrap_or_else(|e| panic!("must verify: {e}"));
    let proofs = prog.access_proofs().expect("proofs attach on verification");
    assert!(
        proofs.proven_count() >= 9,
        "all nine memory accesses should be proven, got {}",
        proofs.proven_count()
    );

    #[cfg(target_arch = "x86_64")]
    {
        let elided = prog.jit_for(true).expect("compilable on x86-64");
        let checked = prog.jit_for(false).expect("compilable on x86-64");
        assert!(
            elided.elided_accesses() >= 9,
            "elided JIT should drop the proven checks, got {}",
            elided.elided_accesses()
        );
        assert_eq!(
            checked.elided_accesses(),
            0,
            "the unelided JIT must keep every check in"
        );
        assert_eq!(
            elided.min_ctx_len(),
            64,
            "context proofs are conditioned on the verified ctx_size"
        );
    }

    let ctx: Vec<u8> = (0..64).map(|i| i as u8).collect();
    assert_elision_invisible("stack_ctx_heavy", &prog, &ctx, &maps);
}

/// `value_tracking: false` attaches no proofs, so the elision-requesting
/// JIT cache compiles fully checked code: every bounds check is back in.
#[test]
fn disabling_value_tracking_forces_checks_back_in() {
    let prog = stack_ctx_heavy();
    let maps = MapRegistry::new();
    Verifier::new(VerifierConfig {
        value_tracking: false,
        ..VerifierConfig::default()
    })
    .verify(&prog, &maps)
    .unwrap_or_else(|e| panic!("constant-offset accesses verify under type-only rules: {e}"));
    assert!(
        prog.access_proofs().is_none(),
        "type-only verification must not attach proofs"
    );

    #[cfg(target_arch = "x86_64")]
    {
        let jit = prog.jit_for(true).expect("compilable on x86-64");
        assert_eq!(
            jit.elided_accesses(),
            0,
            "without proofs, elision must be a no-op"
        );
    }

    let ctx: Vec<u8> = (0..64).map(|i| i as u8).collect();
    assert_elision_invisible("no_value_tracking", &prog, &ctx, &maps);
}

/// A context shorter than the verified `ctx_size` must not be read
/// through elided (unchecked) loads: the VM falls back to the checked
/// compilation and faults exactly like the interpreter.
#[test]
fn short_context_takes_the_checked_path() {
    let prog = stack_ctx_heavy();
    let maps = MapRegistry::new();
    Verifier::default()
        .verify(&prog, &maps)
        .unwrap_or_else(|e| panic!("must verify: {e}"));

    // 8 bytes: the loads at offsets 8 and 16 are now out of bounds at
    // runtime even though they were proven against a 64-byte context.
    let short_ctx = [0x5Au8; 8];
    assert_elision_invisible("short_ctx", &prog, &short_ctx, &maps);

    // And an empty context, where even offset 0 faults.
    assert_elision_invisible("empty_ctx", &prog, &[], &maps);
}
