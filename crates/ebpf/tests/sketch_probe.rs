//! The Top-K sketch map behaves identically on every execution engine.
//!
//! `bpf_sketch_update` (id 200) is a trampolined helper: the raw
//! interpreter, the pre-decoded interpreter, and the JIT all route it
//! through the same `call_helper` implementation, so a probe stream fed
//! through any engine must leave a bit-identical sketch. These tests pin
//! that three-way agreement, the verifier's map-kind admission rules,
//! and the exact probe-vs-userspace replay equivalence the fleet's
//! report merging depends on.

use kscope_ebpf::asm::Asm;
use kscope_ebpf::insn::{R1, R2, R3, R10, SZ_DW};
use kscope_ebpf::interp::{ExecEnv, Vm};
use kscope_ebpf::maps::{MapDef, MapRegistry};
use kscope_ebpf::sketch::SketchState;
use kscope_ebpf::verifier::{Verifier, VerifyError};
use kscope_ebpf::{Helper, Program};

/// A probe that reads an 8-byte entity key from the context and folds
/// weight 1 into the sketch map: the minimal `bpf_sketch_update` caller.
fn sketch_probe(fd: kscope_ebpf::maps::MapFd) -> Program {
    Asm::new("sketch_update")
        .load(SZ_DW, R1, R1, 0) // entity key from ctx[0..8]
        .store_reg(SZ_DW, R10, R1, -8)
        .ld_map_fd(R1, fd)
        .mov64_reg(R2, R10)
        .add64_imm(R2, -8)
        .mov64_imm(R3, 1)
        .call(Helper::SketchUpdate)
        .exit()
        .assemble()
        .unwrap_or_else(|e| panic!("assemble: {e}"))
}

#[test]
fn verifier_admits_sketch_update_on_sketch_maps_only() {
    let mut maps = MapRegistry::new();
    let sketch = maps.create("topk", MapDef::topk_sketch(8, 16));
    let hash = maps.create("h", MapDef::hash(8, 8, 16));

    Verifier::default()
        .verify(&sketch_probe(sketch), &maps)
        .unwrap_or_else(|e| panic!("sketch probe must verify: {e}"));

    // The same program pointed at a hash map must be rejected...
    let err = Verifier::default()
        .verify(&sketch_probe(hash), &maps)
        .expect_err("sketch update on a hash map must not verify");
    assert!(matches!(err, VerifyError::BadHelperArg { .. }), "{err}");

    // ...and the generic lookup/update/delete must reject sketch fds.
    for helper in [
        Helper::MapLookupElem,
        Helper::MapDeleteElem,
    ] {
        let prog = Asm::new("generic_on_sketch")
            .mov64_imm(R1, 0)
            .store_reg(SZ_DW, R10, R1, -8)
            .ld_map_fd(R1, sketch)
            .mov64_reg(R2, R10)
            .add64_imm(R2, -8)
            .call(helper)
            .exit()
            .assemble()
            .unwrap_or_else(|e| panic!("assemble: {e}"));
        let err = Verifier::default()
            .verify(&prog, &maps)
            .expect_err("generic map op on a sketch map must not verify");
        assert!(matches!(err, VerifyError::BadHelperArg { .. }), "{helper:?}: {err}");
    }
}

#[test]
fn three_engines_leave_bit_identical_sketches() {
    let mut base = MapRegistry::new();
    let fd = base.create("topk", MapDef::topk_sketch(8, 16));
    let prog = sketch_probe(fd);
    Verifier::default()
        .verify(&prog, &base)
        .unwrap_or_else(|e| panic!("must verify: {e}"));

    // A skewed entity stream: key i appears ~64/(i+1) times.
    let mut stream = Vec::new();
    for i in 0..32u64 {
        for _ in 0..(64 / (i + 1)) {
            stream.push(i);
        }
    }

    let run = |vm_for: fn() -> Vm| -> MapRegistry {
        let mut maps = base.clone();
        let mut env = ExecEnv::default();
        for &entity in &stream {
            let ctx = entity.to_le_bytes();
            let out = vm_for()
                .execute(&prog, &ctx, &mut maps, &mut env)
                .unwrap_or_else(|e| panic!("execute: {e}"));
            assert_eq!(out.ret, 0, "sketch update returned an error");
        }
        maps
    };

    let raw = run(|| Vm::new().with_raw_dispatch());
    let decoded = run(Vm::new);
    let jit = run(|| Vm::new().with_jit());

    let state = |m: &MapRegistry| -> SketchState {
        m.sketch_state(kscope_ebpf::maps::MapFd(0))
            .unwrap_or_else(|e| panic!("sketch state: {e}"))
            .clone()
    };
    assert_eq!(state(&raw), state(&decoded), "raw vs decoded diverged");
    assert_eq!(state(&decoded), state(&jit), "decoded vs jit diverged");

    // And a userspace replay of the same stream through the same type
    // produces the same sketch — probe and agent can never disagree.
    let mut replay = SketchState::new(8, 16);
    for &entity in &stream {
        replay.update(&entity.to_le_bytes(), 1);
    }
    assert_eq!(state(&jit), replay, "probe vs userspace replay diverged");

    // The heaviest key must be nameable and estimated at least truthfully.
    let heavy = 0u64.to_le_bytes();
    let final_state = state(&jit);
    assert!(final_state.candidate_keys().any(|k| k == heavy));
    assert!(final_state.estimate(&heavy) >= 64);
}

#[test]
fn sketch_probe_has_a_finite_certified_cost() {
    let mut maps = MapRegistry::new();
    let fd = maps.create("topk", MapDef::topk_sketch(8, 16));
    let prog = sketch_probe(fd);
    let cost = kscope_ebpf::cost_report(&prog).expect("finite bound");
    assert!(cost.max_insns >= prog.len() as u64 - 1);
    // The helper is priced between a map update (12) and ringbuf (15).
    assert!(cost.max_weighted_cost > cost.max_insns);
    // And the inline plan sends it through the trampoline.
    let plan = kscope_ebpf::helper_inline_plan(&prog);
    let treatments: Vec<_> = plan.sites().iter().map(|(_, _, t)| *t).collect();
    assert_eq!(treatments, vec![kscope_ebpf::HelperInline::Trampoline]);
}
