//! Table-driven rejection-path coverage for the verifier.
//!
//! One minimal program per [`VerifyError`] class. The table is the
//! specification: adding a variant to `VerifyError` without extending the
//! table fails the `every_error_class_is_covered` completeness check, so
//! rejection paths can't silently lose coverage.

use kscope_ebpf::asm::Asm;
use kscope_ebpf::insn::{Insn, OP_ADD, OP_DIV, OP_MUL, R0, R1, R2, R10, SZ_DW, SZ_W};
use kscope_ebpf::maps::{MapDef, MapRegistry};
use kscope_ebpf::verifier::{Verifier, VerifyError};
use kscope_ebpf::{Helper, Program};

struct Case {
    /// Which `VerifyError` variant this program must trigger.
    class: &'static str,
    build: fn(&mut MapRegistry) -> Program,
    matches: fn(&VerifyError) -> bool,
}

/// The full variant list of `VerifyError`, kept in declaration order.
const ALL_CLASSES: &[&str] = &[
    "Empty",
    "TooLarge",
    "BackEdge",
    "BadJumpTarget",
    "FallOffEnd",
    "UninitRead",
    "BadOpcode",
    "WriteToFp",
    "WriteToCtx",
    "OutOfBounds",
    "UninitStackRead",
    "MaybeNullDeref",
    "PointerArith",
    "DivByZeroImm",
    "UnknownHelper",
    "BadHelperArg",
    "BadMapFd",
    "MalformedLdDw",
    "ExitWithoutR0",
];

fn cases() -> Vec<Case> {
    vec![
        Case {
            class: "Empty",
            build: |_| Program::new("empty", vec![]),
            matches: |e| matches!(e, VerifyError::Empty),
        },
        Case {
            class: "TooLarge",
            build: |_| {
                let mut insns = vec![Insn::mov64_imm(R0, 0); 4096];
                insns.push(Insn::exit());
                Program::new("huge", insns)
            },
            matches: |e| matches!(e, VerifyError::TooLarge { .. }),
        },
        Case {
            class: "BackEdge",
            build: |_| {
                // `ja -2` from pc 1 targets pc 0: a loop.
                Program::new(
                    "loop",
                    vec![Insn::mov64_imm(R0, 0), Insn::ja(-2), Insn::exit()],
                )
            },
            matches: |e| matches!(e, VerifyError::BackEdge { .. }),
        },
        Case {
            class: "BadJumpTarget",
            build: |_| {
                Program::new(
                    "wild-jump",
                    vec![Insn::mov64_imm(R0, 0), Insn::ja(100), Insn::exit()],
                )
            },
            matches: |e| matches!(e, VerifyError::BadJumpTarget { .. }),
        },
        Case {
            class: "FallOffEnd",
            build: |_| Program::new("no-exit", vec![Insn::mov64_imm(R0, 0)]),
            matches: |e| matches!(e, VerifyError::FallOffEnd { .. }),
        },
        Case {
            class: "UninitRead",
            build: |_| {
                // r6 was never written.
                Program::new("uninit", vec![Insn::mov64_reg(R0, 6), Insn::exit()])
            },
            matches: |e| matches!(e, VerifyError::UninitRead { reg: 6, .. }),
        },
        Case {
            class: "BadOpcode",
            build: |_| {
                let garbage = Insn {
                    code: 0xFF,
                    dst: 0,
                    src: 0,
                    off: 0,
                    imm: 0,
                };
                Program::new(
                    "garbage",
                    vec![Insn::mov64_imm(R0, 0), garbage, Insn::exit()],
                )
            },
            matches: |e| matches!(e, VerifyError::BadOpcode { code: 0xFF, .. }),
        },
        Case {
            class: "WriteToFp",
            build: |_| {
                Program::new(
                    "clobber-fp",
                    vec![
                        Insn::alu64_imm(OP_ADD, R10, 8),
                        Insn::mov64_imm(R0, 0),
                        Insn::exit(),
                    ],
                )
            },
            matches: |e| matches!(e, VerifyError::WriteToFp { .. }),
        },
        Case {
            class: "WriteToCtx",
            build: |_| {
                // r1 is the read-only context pointer at entry.
                Program::new(
                    "ctx-write",
                    vec![
                        Insn::mov64_imm(R0, 0),
                        Insn::store_imm(SZ_W, R1, 0, 1),
                        Insn::exit(),
                    ],
                )
            },
            matches: |e| matches!(e, VerifyError::WriteToCtx { .. }),
        },
        Case {
            class: "OutOfBounds",
            build: |_| {
                // Stack grows down from fp; offset 0 is past its top.
                Program::new(
                    "oob",
                    vec![
                        Insn::mov64_imm(R0, 0),
                        Insn::store_imm(SZ_DW, R10, 0, 1),
                        Insn::exit(),
                    ],
                )
            },
            matches: |e| matches!(e, VerifyError::OutOfBounds { .. }),
        },
        Case {
            class: "UninitStackRead",
            build: |_| {
                Program::new(
                    "uninit-stack",
                    vec![Insn::load(SZ_DW, R0, R10, -8), Insn::exit()],
                )
            },
            matches: |e| matches!(e, VerifyError::UninitStackRead { .. }),
        },
        Case {
            class: "MaybeNullDeref",
            build: |maps| {
                let fd = maps.create("m", MapDef::hash(8, 8, 16));
                Asm::new("null-deref")
                    .store_imm(SZ_DW, R10, -8, 1)
                    .ld_map_fd(R1, fd)
                    .mov64_reg(R2, R10)
                    .insn(Insn::alu64_imm(OP_ADD, R2, -8))
                    .call(Helper::MapLookupElem)
                    .load(SZ_DW, R0, R0, 0) // no null check!
                    .exit()
                    .assemble()
                    .unwrap()
            },
            matches: |e| matches!(e, VerifyError::MaybeNullDeref { .. }),
        },
        Case {
            class: "PointerArith",
            build: |_| {
                Program::new(
                    "ptr-mul",
                    vec![
                        Insn::mov64_reg(R2, R10),
                        Insn::alu64_imm(OP_MUL, R2, 4),
                        Insn::mov64_imm(R0, 0),
                        Insn::exit(),
                    ],
                )
            },
            matches: |e| matches!(e, VerifyError::PointerArith { .. }),
        },
        Case {
            class: "DivByZeroImm",
            build: |_| {
                Program::new(
                    "div0",
                    vec![
                        Insn::mov64_imm(R0, 5),
                        Insn::alu64_imm(OP_DIV, R0, 0),
                        Insn::exit(),
                    ],
                )
            },
            matches: |e| matches!(e, VerifyError::DivByZeroImm { .. }),
        },
        Case {
            class: "UnknownHelper",
            build: |_| Program::new("bad-call", vec![Insn::call(9999), Insn::exit()]),
            matches: |e| matches!(e, VerifyError::UnknownHelper { id: 9999, .. }),
        },
        Case {
            class: "BadHelperArg",
            build: |maps| {
                let _fd = maps.create("m", MapDef::hash(8, 8, 16));
                // r1 must be a map handle; a scalar zero is not.
                Asm::new("bad-arg")
                    .mov64_imm(R1, 0)
                    .mov64_reg(R2, R10)
                    .call(Helper::MapLookupElem)
                    .exit()
                    .assemble()
                    .unwrap()
            },
            matches: |e| matches!(e, VerifyError::BadHelperArg { arg: 1, .. }),
        },
        Case {
            class: "BadMapFd",
            build: |_| {
                // Registry is empty, so fd 42 cannot exist.
                Program::new(
                    "bad-fd",
                    vec![
                        Insn::ld_map_fd_lo(R1, 42),
                        Insn::ld_dw_hi(0),
                        Insn::mov64_imm(R0, 0),
                        Insn::exit(),
                    ],
                )
            },
            matches: |e| matches!(e, VerifyError::BadMapFd { fd: 42, .. }),
        },
        Case {
            class: "MalformedLdDw",
            build: |_| {
                // The second slot must be a bare hi word (code 0); `exit`
                // is not one.
                Program::new("torn-lddw", vec![Insn::ld_dw_lo(R0, 5), Insn::exit()])
            },
            matches: |e| matches!(e, VerifyError::MalformedLdDw { .. }),
        },
        Case {
            class: "ExitWithoutR0",
            build: |_| Program::new("no-r0", vec![Insn::exit()]),
            matches: |e| matches!(e, VerifyError::ExitWithoutR0 { .. }),
        },
    ]
}

/// Every case must be rejected with exactly its declared error class.
#[test]
fn each_class_fires_on_its_minimal_program() {
    for case in cases() {
        let mut maps = MapRegistry::new();
        let prog = (case.build)(&mut maps);
        match Verifier::default().verify(&prog, &maps) {
            Ok(()) => panic!(
                "case `{}`: verifier accepted the program\n{}",
                case.class,
                prog.disassemble()
            ),
            Err(e) => assert!(
                (case.matches)(&e),
                "case `{}`: expected that class, got {e:?}\n{}",
                case.class,
                prog.disassemble()
            ),
        }
    }
}

/// The table must name every `VerifyError` variant exactly once.
#[test]
fn every_error_class_is_covered() {
    let table: Vec<&str> = cases().iter().map(|c| c.class).collect();
    for class in ALL_CLASSES {
        assert!(
            table.contains(class),
            "no rejection case for VerifyError::{class}"
        );
    }
    assert_eq!(
        table.len(),
        ALL_CLASSES.len(),
        "table has duplicate or stray classes"
    );
}

/// Rejected programs stay rejected under re-verification (the verifier
/// is stateless), and the error is stable.
#[test]
fn rejections_are_deterministic() {
    for case in cases() {
        let mut maps = MapRegistry::new();
        let prog = (case.build)(&mut maps);
        let first = Verifier::default().verify(&prog, &maps).unwrap_err();
        let second = Verifier::default().verify(&prog, &maps).unwrap_err();
        assert_eq!(first, second, "case `{}` gave unstable errors", case.class);
    }
}
