//! Table-driven rejection-path coverage for the verifier.
//!
//! One minimal program per [`VerifyError`] class, and one per
//! [`VerifyWarning`] class. The tables are the specification: adding a
//! variant without extending the matching table fails a completeness
//! check, so rejection and diagnostic paths can't silently lose
//! coverage. A third table pins the value-tracking bounds checks:
//! register-offset accesses whose intervals do *not* provably fit must
//! still be rejected.

use kscope_ebpf::asm::Asm;
use kscope_ebpf::insn::{
    Insn, OP_ADD, OP_AND, OP_DIV, OP_MUL, R0, R1, R2, R6, R7, R10, SZ_DW, SZ_W,
};
use kscope_ebpf::maps::{MapDef, MapRegistry};
use kscope_ebpf::verifier::{Verifier, VerifyError, VerifyWarning};
use kscope_ebpf::{Helper, Program};

struct Case {
    /// Which `VerifyError` variant this program must trigger.
    class: &'static str,
    build: fn(&mut MapRegistry) -> Program,
    matches: fn(&VerifyError) -> bool,
}

/// The full variant list of `VerifyError`, kept in declaration order.
const ALL_CLASSES: &[&str] = &[
    "Empty",
    "TooLarge",
    "BackEdge",
    "BadJumpTarget",
    "FallOffEnd",
    "UninitRead",
    "BadOpcode",
    "WriteToFp",
    "WriteToCtx",
    "OutOfBounds",
    "UninitStackRead",
    "MaybeNullDeref",
    "PointerArith",
    "DivByZeroImm",
    "UnknownHelper",
    "BadHelperArg",
    "BadMapFd",
    "MalformedLdDw",
    "ExitWithoutR0",
];

fn cases() -> Vec<Case> {
    vec![
        Case {
            class: "Empty",
            build: |_| Program::new("empty", vec![]),
            matches: |e| matches!(e, VerifyError::Empty),
        },
        Case {
            class: "TooLarge",
            build: |_| {
                let mut insns = vec![Insn::mov64_imm(R0, 0); 4096];
                insns.push(Insn::exit());
                Program::new("huge", insns)
            },
            matches: |e| matches!(e, VerifyError::TooLarge { .. }),
        },
        Case {
            class: "BackEdge",
            build: |_| {
                // `ja -2` from pc 1 targets pc 0: a loop.
                Program::new(
                    "loop",
                    vec![Insn::mov64_imm(R0, 0), Insn::ja(-2), Insn::exit()],
                )
            },
            matches: |e| matches!(e, VerifyError::BackEdge { .. }),
        },
        Case {
            class: "BadJumpTarget",
            build: |_| {
                Program::new(
                    "wild-jump",
                    vec![Insn::mov64_imm(R0, 0), Insn::ja(100), Insn::exit()],
                )
            },
            matches: |e| matches!(e, VerifyError::BadJumpTarget { .. }),
        },
        Case {
            class: "FallOffEnd",
            build: |_| Program::new("no-exit", vec![Insn::mov64_imm(R0, 0)]),
            matches: |e| matches!(e, VerifyError::FallOffEnd { .. }),
        },
        Case {
            class: "UninitRead",
            build: |_| {
                // r6 was never written.
                Program::new("uninit", vec![Insn::mov64_reg(R0, 6), Insn::exit()])
            },
            matches: |e| matches!(e, VerifyError::UninitRead { reg: 6, .. }),
        },
        Case {
            class: "BadOpcode",
            build: |_| {
                let garbage = Insn {
                    code: 0xFF,
                    dst: 0,
                    src: 0,
                    off: 0,
                    imm: 0,
                };
                Program::new(
                    "garbage",
                    vec![Insn::mov64_imm(R0, 0), garbage, Insn::exit()],
                )
            },
            matches: |e| matches!(e, VerifyError::BadOpcode { code: 0xFF, .. }),
        },
        Case {
            class: "WriteToFp",
            build: |_| {
                Program::new(
                    "clobber-fp",
                    vec![
                        Insn::alu64_imm(OP_ADD, R10, 8),
                        Insn::mov64_imm(R0, 0),
                        Insn::exit(),
                    ],
                )
            },
            matches: |e| matches!(e, VerifyError::WriteToFp { .. }),
        },
        Case {
            class: "WriteToCtx",
            build: |_| {
                // r1 is the read-only context pointer at entry.
                Program::new(
                    "ctx-write",
                    vec![
                        Insn::mov64_imm(R0, 0),
                        Insn::store_imm(SZ_W, R1, 0, 1),
                        Insn::exit(),
                    ],
                )
            },
            matches: |e| matches!(e, VerifyError::WriteToCtx { .. }),
        },
        Case {
            class: "OutOfBounds",
            build: |_| {
                // Stack grows down from fp; offset 0 is past its top.
                Program::new(
                    "oob",
                    vec![
                        Insn::mov64_imm(R0, 0),
                        Insn::store_imm(SZ_DW, R10, 0, 1),
                        Insn::exit(),
                    ],
                )
            },
            matches: |e| matches!(e, VerifyError::OutOfBounds { .. }),
        },
        Case {
            class: "UninitStackRead",
            build: |_| {
                Program::new(
                    "uninit-stack",
                    vec![Insn::load(SZ_DW, R0, R10, -8), Insn::exit()],
                )
            },
            matches: |e| matches!(e, VerifyError::UninitStackRead { .. }),
        },
        Case {
            class: "MaybeNullDeref",
            build: |maps| {
                let fd = maps.create("m", MapDef::hash(8, 8, 16));
                Asm::new("null-deref")
                    .store_imm(SZ_DW, R10, -8, 1)
                    .ld_map_fd(R1, fd)
                    .mov64_reg(R2, R10)
                    .insn(Insn::alu64_imm(OP_ADD, R2, -8))
                    .call(Helper::MapLookupElem)
                    .load(SZ_DW, R0, R0, 0) // no null check!
                    .exit()
                    .assemble()
                    .unwrap()
            },
            matches: |e| matches!(e, VerifyError::MaybeNullDeref { .. }),
        },
        Case {
            class: "PointerArith",
            build: |_| {
                Program::new(
                    "ptr-mul",
                    vec![
                        Insn::mov64_reg(R2, R10),
                        Insn::alu64_imm(OP_MUL, R2, 4),
                        Insn::mov64_imm(R0, 0),
                        Insn::exit(),
                    ],
                )
            },
            matches: |e| matches!(e, VerifyError::PointerArith { .. }),
        },
        Case {
            class: "DivByZeroImm",
            build: |_| {
                Program::new(
                    "div0",
                    vec![
                        Insn::mov64_imm(R0, 5),
                        Insn::alu64_imm(OP_DIV, R0, 0),
                        Insn::exit(),
                    ],
                )
            },
            matches: |e| matches!(e, VerifyError::DivByZeroImm { .. }),
        },
        Case {
            class: "UnknownHelper",
            build: |_| Program::new("bad-call", vec![Insn::call(9999), Insn::exit()]),
            matches: |e| matches!(e, VerifyError::UnknownHelper { id: 9999, .. }),
        },
        Case {
            class: "BadHelperArg",
            build: |maps| {
                let _fd = maps.create("m", MapDef::hash(8, 8, 16));
                // r1 must be a map handle; a scalar zero is not.
                Asm::new("bad-arg")
                    .mov64_imm(R1, 0)
                    .mov64_reg(R2, R10)
                    .call(Helper::MapLookupElem)
                    .exit()
                    .assemble()
                    .unwrap()
            },
            matches: |e| matches!(e, VerifyError::BadHelperArg { arg: 1, .. }),
        },
        Case {
            class: "BadMapFd",
            build: |_| {
                // Registry is empty, so fd 42 cannot exist.
                Program::new(
                    "bad-fd",
                    vec![
                        Insn::ld_map_fd_lo(R1, 42),
                        Insn::ld_dw_hi(0),
                        Insn::mov64_imm(R0, 0),
                        Insn::exit(),
                    ],
                )
            },
            matches: |e| matches!(e, VerifyError::BadMapFd { fd: 42, .. }),
        },
        Case {
            class: "MalformedLdDw",
            build: |_| {
                // The second slot must be a bare hi word (code 0); `exit`
                // is not one.
                Program::new("torn-lddw", vec![Insn::ld_dw_lo(R0, 5), Insn::exit()])
            },
            matches: |e| matches!(e, VerifyError::MalformedLdDw { .. }),
        },
        Case {
            class: "ExitWithoutR0",
            build: |_| Program::new("no-r0", vec![Insn::exit()]),
            matches: |e| matches!(e, VerifyError::ExitWithoutR0 { .. }),
        },
    ]
}

/// Every case must be rejected with exactly its declared error class.
#[test]
fn each_class_fires_on_its_minimal_program() {
    for case in cases() {
        let mut maps = MapRegistry::new();
        let prog = (case.build)(&mut maps);
        match Verifier::default().verify(&prog, &maps) {
            Ok(()) => panic!(
                "case `{}`: verifier accepted the program\n{}",
                case.class,
                prog.disassemble()
            ),
            Err(e) => assert!(
                (case.matches)(&e),
                "case `{}`: expected that class, got {e:?}\n{}",
                case.class,
                prog.disassemble()
            ),
        }
    }
}

/// The table must name every `VerifyError` variant exactly once.
#[test]
fn every_error_class_is_covered() {
    let table: Vec<&str> = cases().iter().map(|c| c.class).collect();
    for class in ALL_CLASSES {
        assert!(
            table.contains(class),
            "no rejection case for VerifyError::{class}"
        );
    }
    assert_eq!(
        table.len(),
        ALL_CLASSES.len(),
        "table has duplicate or stray classes"
    );
}

/// Rejected programs stay rejected under re-verification (the verifier
/// is stateless), and the error is stable.
#[test]
fn rejections_are_deterministic() {
    for case in cases() {
        let mut maps = MapRegistry::new();
        let prog = (case.build)(&mut maps);
        let first = Verifier::default().verify(&prog, &maps).unwrap_err();
        let second = Verifier::default().verify(&prog, &maps).unwrap_err();
        assert_eq!(first, second, "case `{}` gave unstable errors", case.class);
    }
}

// --- warnings ---

struct WarnCase {
    class: &'static str,
    build: fn() -> Program,
    matches: fn(&VerifyWarning) -> bool,
}

/// The full variant list of `VerifyWarning`, kept in declaration order.
const ALL_WARNING_CLASSES: &[&str] = &["UnreachableInsn", "DeadStore"];

fn warn_cases() -> Vec<WarnCase> {
    vec![
        WarnCase {
            class: "UnreachableInsn",
            build: || {
                // r0 is the constant 0, so `jeq r0, 0` is always taken
                // and the fall-through instruction can never execute.
                Program::new(
                    "dead-code",
                    vec![
                        Insn::mov64_imm(R0, 0),
                        Insn::jmp_imm(kscope_ebpf::insn::OP_JEQ, R0, 0, 1),
                        Insn::mov64_imm(R0, 1),
                        Insn::exit(),
                    ],
                )
            },
            matches: |w| matches!(w, VerifyWarning::UnreachableInsn { pc: 2 }),
        },
        WarnCase {
            class: "DeadStore",
            build: || {
                // The stored slot is never read before `exit`.
                Program::new(
                    "dead-store",
                    vec![
                        Insn::mov64_imm(R0, 7),
                        Insn::store_reg(SZ_DW, R10, R0, -8),
                        Insn::exit(),
                    ],
                )
            },
            matches: |w| {
                matches!(
                    w,
                    VerifyWarning::DeadStore {
                        pc: 1,
                        off: -8,
                        size: 8
                    }
                )
            },
        },
    ]
}

/// Each warning case's program is *accepted* and produces exactly its
/// declared warning class.
#[test]
fn each_warning_class_fires_on_its_minimal_program() {
    for case in warn_cases() {
        let maps = MapRegistry::new();
        let prog = (case.build)();
        let report = Verifier::default().verify_report(&prog, &maps);
        assert!(
            report.is_ok(),
            "warning case `{}` must verify, got:\n{report}",
            case.class
        );
        assert!(
            report.warnings.iter().any(case.matches),
            "warning case `{}`: expected that class, got {:?}\n{}",
            case.class,
            report.warnings,
            prog.disassemble()
        );
    }
}

/// The warning table must name every `VerifyWarning` variant once.
#[test]
fn every_warning_class_is_covered() {
    let table: Vec<&str> = warn_cases().iter().map(|c| c.class).collect();
    for class in ALL_WARNING_CLASSES {
        assert!(
            table.contains(class),
            "no warning case for VerifyWarning::{class}"
        );
    }
    assert_eq!(
        table.len(),
        ALL_WARNING_CLASSES.len(),
        "warning table has duplicate or stray classes"
    );
}

/// An overwritten-before-read store is dead too, and a consumed store
/// must NOT warn — the liveness analysis reads through register offsets.
#[test]
fn dead_store_analysis_tracks_reads() {
    let maps = MapRegistry::new();
    // Overwrite: the first store can never be observed.
    let prog = Program::new(
        "overwrite",
        vec![
            Insn::mov64_imm(R0, 1),
            Insn::store_reg(SZ_DW, R10, R0, -8),
            Insn::store_reg(SZ_DW, R10, R0, -8),
            Insn::load(SZ_DW, R0, R10, -8),
            Insn::exit(),
        ],
    );
    let report = Verifier::default().verify_report(&prog, &maps);
    assert!(report.is_ok());
    assert!(
        report
            .warnings
            .iter()
            .any(|w| matches!(w, VerifyWarning::DeadStore { pc: 1, .. })),
        "overwritten store should be dead: {:?}",
        report.warnings
    );
    assert!(
        !report
            .warnings
            .iter()
            .any(|w| matches!(w, VerifyWarning::DeadStore { pc: 2, .. })),
        "consumed store must not warn: {:?}",
        report.warnings
    );
}

// --- value-tracking bounds rejections ---

/// Register-offset accesses whose interval does not provably fit are
/// still rejected: value tracking admits proofs, not hopes.
#[test]
fn unproven_register_offsets_stay_rejected() {
    // Completely unclamped context word used as a stack offset.
    let unclamped = Asm::new("unclamped")
        .mov64_imm(R0, 0)
        .load(SZ_DW, R6, R1, 0)
        .mov64_reg(R7, R10)
        .add64_imm(R7, -64)
        .insn(Insn::alu64_reg(OP_ADD, R7, R6))
        .store_reg(SZ_DW, R7, R0, 0)
        .exit()
        .assemble()
        .unwrap();

    // Clamped, but to a window wider than the stack.
    let too_wide = Asm::new("too-wide")
        .mov64_imm(R0, 0)
        .load(SZ_DW, R6, R1, 0)
        .insn(Insn::alu64_imm(OP_AND, R6, 127))
        .insn(Insn::alu64_imm(kscope_ebpf::insn::OP_LSH, R6, 3))
        .mov64_reg(R7, R10)
        .add64_imm(R7, -512)
        .insn(Insn::alu64_reg(OP_ADD, R7, R6))
        .store_reg(SZ_DW, R7, R0, 0)
        .exit()
        .assemble()
        .unwrap();

    // A 32-bit compare must not bound the upper 32 bits: on the
    // fall-through of `jge32 r6, 56` the *low* word is < 56 but the
    // high word is still anything, so the store remains unprovable.
    let jmp32_guard = Asm::new("jmp32-guard")
        .mov64_imm(R0, 0)
        .load(SZ_DW, R6, R1, 0)
        .insn(Insn::jmp32_imm(kscope_ebpf::insn::OP_JGE, R6, 56, 4))
        .mov64_reg(R7, R10)
        .add64_imm(R7, -64)
        .insn(Insn::alu64_reg(OP_ADD, R7, R6))
        .store_reg(SZ_DW, R7, R0, 0)
        .exit()
        .assemble()
        .unwrap();

    let maps = MapRegistry::new();
    for (name, prog) in [
        ("unclamped", &unclamped),
        ("too-wide", &too_wide),
        ("jmp32-guard", &jmp32_guard),
    ] {
        let err = Verifier::default().verify(prog, &maps).unwrap_err();
        assert!(
            matches!(err, VerifyError::OutOfBounds { .. }),
            "{name}: expected OutOfBounds, got {err:?}\n{}",
            prog.disassemble()
        );
    }
}

/// A variable-offset load requires *every* byte the window can touch to
/// be initialized; one initialized slot is not enough.
#[test]
fn var_offset_load_needs_fully_initialized_window() {
    let prog = Asm::new("partial-window")
        .mov64_imm(R0, 0)
        .store_reg(SZ_DW, R10, R0, -8) // only one of two slots
        .load(SZ_DW, R6, R1, 0)
        .insn(Insn::alu64_imm(OP_AND, R6, 8)) // offset in {0, 8}
        .mov64_reg(R7, R10)
        .add64_imm(R7, -16)
        .insn(Insn::alu64_reg(OP_ADD, R7, R6))
        .load(SZ_DW, R0, R7, 0)
        .exit()
        .assemble()
        .unwrap();
    let maps = MapRegistry::new();
    let err = Verifier::default().verify(&prog, &maps).unwrap_err();
    assert!(
        matches!(err, VerifyError::UninitStackRead { .. }),
        "expected UninitStackRead, got {err:?}\n{}",
        prog.disassemble()
    );
}
