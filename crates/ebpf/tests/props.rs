//! Property-based tests for the eBPF VM.
//!
//! The headline property is verifier soundness: any program the verifier
//! accepts must execute without faulting, for every context the runtime
//! can supply. Random-program fuzzing can't prove it, but it searches the
//! instruction space far more rudely than hand-written tests do.
//!
//! The instruction generators live in `kscope_testkit::ebpf_gen` so the
//! differential fuzzer (`crates/testkit/tests/differential.rs`) drives
//! the exact same distribution.

use kscope_ebpf::insn::{Insn, OP_ADD, OP_SUB};
use kscope_ebpf::interp::{ExecEnv, Vm};
use kscope_ebpf::maps::{MapDef, MapRegistry};
use kscope_ebpf::verifier::Verifier;
use kscope_ebpf::{Helper, Program};
use kscope_simcore::SimRng;
use kscope_testkit::ebpf_gen::{arb_insn, fuzz_program};
use kscope_testkit::{gen, Config};

/// Encoding round-trips for arbitrary instruction words.
#[test]
fn encode_decode_round_trip() {
    kscope_testkit::check!(
        Config::cases(400),
        |rng: &mut SimRng| arb_insn(rng),
        |&insn: &Insn| {
            assert_eq!(Insn::decode(insn.encode()), insn);
        }
    );
}

/// Soundness: if the verifier accepts a random program, the
/// interpreter must not fault on it — for any context contents.
#[test]
fn verified_programs_never_fault() {
    kscope_testkit::check!(
        Config::cases(400),
        |rng: &mut SimRng| {
            (
                gen::vec_of(rng, 0, 23, arb_insn),
                gen::u8_any(rng),
            )
        },
        |case: &(Vec<Insn>, u8)| {
            let (ref body, ctx_fill) = *case;
            // Seed r0 so `exit` is reachable-legal, then append the random
            // body and a final exit.
            let mut insns = vec![Insn::mov64_imm(0, 7)];
            insns.extend(body.iter().copied());
            insns.push(Insn::exit());
            let prog = Program::new("fuzz", insns);

            let mut maps = MapRegistry::new();
            maps.create("m", MapDef::hash(8, 8, 64));
            if Verifier::default().verify(&prog, &maps).is_ok() {
                let ctx = vec![ctx_fill; 64];
                let result = Vm::new().execute(&prog, &ctx, &mut maps, &mut ExecEnv::default());
                assert!(
                    result.is_ok(),
                    "verifier accepted but interpreter faulted: {:?}\n{}",
                    result,
                    prog.disassemble()
                );
            }
        }
    );
}

/// The verifier itself must be total: no panics on arbitrary input.
#[test]
fn verifier_never_panics() {
    kscope_testkit::check!(
        Config::cases(400),
        |rng: &mut SimRng| gen::vec_of(rng, 0, 31, arb_insn),
        |body: &Vec<Insn>| {
            let prog = Program::new("fuzz", body.clone());
            let maps = MapRegistry::new();
            let _ = Verifier::default().verify(&prog, &maps);
        }
    );
}

/// The interpreter must be total too (fault, not panic), even on
/// unverified garbage.
#[test]
fn interpreter_never_panics_on_unverified_input() {
    kscope_testkit::check!(
        Config::cases(400),
        |rng: &mut SimRng| gen::vec_of(rng, 1, 23, arb_insn),
        |body: &Vec<Insn>| {
            let prog = Program::new("fuzz", body.clone());
            let mut maps = MapRegistry::new();
            let _ = Vm::with_insn_budget(10_000).execute(
                &prog,
                &[0u8; 32],
                &mut maps,
                &mut ExecEnv::default(),
            );
        }
    );
}

/// The wrapped generator used by the differential suite also never
/// faults once verified (same soundness property, richer prologue).
#[test]
fn fuzz_program_generator_is_sound() {
    kscope_testkit::check!(
        Config::cases(200),
        |rng: &mut SimRng| {
            fuzz_program(rng, 24).insns().to_vec()
        },
        |insns: &Vec<Insn>| {
            let prog = Program::new("fuzz", insns.clone());
            let mut maps = MapRegistry::new();
            maps.create("m", MapDef::hash(8, 8, 64));
            if Verifier::default().verify(&prog, &maps).is_ok() {
                let result =
                    Vm::new().execute(&prog, &[0u8; 64], &mut maps, &mut ExecEnv::default());
                assert!(result.is_ok(), "faulted after verification: {result:?}");
            }
        }
    );
}

/// ALU semantics: mov/add/sub round-trip against native arithmetic.
#[test]
fn alu_matches_native_arithmetic() {
    kscope_testkit::check!(
        Config::cases(400),
        |rng: &mut SimRng| (gen::i32_any(rng), gen::i32_any(rng)),
        |&(a, b): &(i32, i32)| {
            let prog = Program::new(
                "alu",
                vec![
                    Insn::mov64_imm(0, a),
                    Insn::alu64_imm(OP_ADD, 0, b),
                    Insn::alu64_imm(OP_SUB, 0, b),
                    Insn::exit(),
                ],
            );
            let mut maps = MapRegistry::new();
            Verifier::default().verify(&prog, &maps).unwrap();
            let out = Vm::new()
                .execute(&prog, &[], &mut maps, &mut ExecEnv::default())
                .unwrap();
            assert_eq!(out.ret, a as i64 as u64);
        }
    );
}

/// Map round-trip: whatever bytes go in through update come back out
/// through lookup, for arbitrary keys and values.
#[test]
fn map_update_lookup_round_trip() {
    kscope_testkit::check!(
        Config::cases(400),
        |rng: &mut SimRng| (gen::u64_any(rng), gen::u64_any(rng)),
        |&(key, value): &(u64, u64)| {
            let mut maps = MapRegistry::new();
            let fd = maps.create("m", MapDef::hash(8, 8, 16));
            maps.update(fd, &key.to_le_bytes(), &value.to_le_bytes())
                .unwrap();
            let got = maps.lookup(fd, &key.to_le_bytes()).unwrap().unwrap();
            assert_eq!(u64::from_le_bytes(got.try_into().unwrap()), value);
        }
    );
}

/// Helper ids round-trip through `from_id`.
#[test]
fn helper_ids_round_trip() {
    kscope_testkit::check!(
        Config::cases(400),
        |rng: &mut SimRng| gen::i32_in(rng, 0, 199),
        |&id: &i32| {
            if let Some(helper) = Helper::from_id(id) {
                assert_eq!(helper.id(), id);
            }
        }
    );
}
