//! Property-based tests for the eBPF VM.
//!
//! The headline property is verifier soundness: any program the verifier
//! accepts must execute without faulting, for every context the runtime
//! can supply. Random-program fuzzing can't prove it, but it searches the
//! instruction space far more rudely than hand-written tests do.

use proptest::prelude::*;

use kscope_ebpf::insn::{
    Insn, CLS_ALU, CLS_ALU64, CLS_JMP, OP_ADD, OP_AND, OP_ARSH, OP_DIV, OP_JA, OP_JEQ, OP_JGE,
    OP_JGT, OP_JLE, OP_JLT, OP_JNE, OP_JSET, OP_JSGE, OP_JSGT, OP_JSLE, OP_JSLT, OP_LSH, OP_MOD,
    OP_MOV, OP_MUL, OP_NEG, OP_OR, OP_RSH, OP_SUB, OP_XOR, SRC_K, SRC_X, SZ_B, SZ_DW, SZ_H, SZ_W,
};
use kscope_ebpf::interp::{ExecEnv, Vm};
use kscope_ebpf::maps::{MapDef, MapRegistry};
use kscope_ebpf::verifier::Verifier;
use kscope_ebpf::{Helper, Program};

fn arb_alu_op() -> impl Strategy<Value = u8> {
    prop_oneof![
        Just(OP_ADD),
        Just(OP_SUB),
        Just(OP_MUL),
        Just(OP_DIV),
        Just(OP_OR),
        Just(OP_AND),
        Just(OP_LSH),
        Just(OP_RSH),
        Just(OP_NEG),
        Just(OP_MOD),
        Just(OP_XOR),
        Just(OP_MOV),
        Just(OP_ARSH),
    ]
}

fn arb_jmp_op() -> impl Strategy<Value = u8> {
    prop_oneof![
        Just(OP_JEQ),
        Just(OP_JGT),
        Just(OP_JGE),
        Just(OP_JSET),
        Just(OP_JNE),
        Just(OP_JSGT),
        Just(OP_JSGE),
        Just(OP_JLT),
        Just(OP_JLE),
        Just(OP_JSLT),
        Just(OP_JSLE),
    ]
}

fn arb_size() -> impl Strategy<Value = u8> {
    prop_oneof![Just(SZ_B), Just(SZ_H), Just(SZ_W), Just(SZ_DW)]
}

/// A random (usually invalid) instruction: the verifier must never panic
/// on it, and whatever it accepts must run clean.
fn arb_insn() -> impl Strategy<Value = Insn> {
    (
        0u8..=7,          // class-ish
        0u8..=10,         // dst
        0u8..=10,         // src
        -16i16..16,       // off
        -1000i32..1000,   // imm
        arb_alu_op(),
        arb_jmp_op(),
        arb_size(),
        any::<bool>(),
    )
        .prop_map(
            |(class, dst, src, off, imm, alu, jmp, size, use_reg)| {
                let srcbit = if use_reg { SRC_X } else { SRC_K };
                let code = match class {
                    0 | 1 => CLS_ALU64 | alu | srcbit,
                    2 => CLS_ALU | alu | srcbit,
                    3 => {
                        if use_reg {
                            kscope_ebpf::insn::CLS_JMP32 | jmp | srcbit
                        } else {
                            CLS_JMP | jmp | srcbit
                        }
                    }
                    4 => CLS_JMP | OP_JA,
                    5 => kscope_ebpf::insn::CLS_LDX | size | kscope_ebpf::insn::MODE_MEM,
                    6 => kscope_ebpf::insn::CLS_STX | size | kscope_ebpf::insn::MODE_MEM,
                    _ => kscope_ebpf::insn::CLS_ST | size | kscope_ebpf::insn::MODE_MEM,
                };
                Insn {
                    code,
                    dst,
                    src,
                    off,
                    imm,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// Encoding round-trips for arbitrary instruction words.
    #[test]
    fn encode_decode_round_trip(insn in arb_insn()) {
        prop_assert_eq!(Insn::decode(insn.encode()), insn);
    }

    /// Soundness: if the verifier accepts a random program, the
    /// interpreter must not fault on it — for any context contents.
    #[test]
    fn verified_programs_never_fault(
        body in prop::collection::vec(arb_insn(), 0..24),
        ctx_fill in any::<u8>(),
    ) {
        // Seed r0 so `exit` is reachable-legal, then append the random
        // body and a final exit.
        let mut insns = vec![Insn::mov64_imm(0, 7)];
        insns.extend(body);
        insns.push(Insn::exit());
        let prog = Program::new("fuzz", insns);

        let mut maps = MapRegistry::new();
        maps.create("m", MapDef::hash(8, 8, 64));
        if Verifier::default().verify(&prog, &maps).is_ok() {
            let ctx = vec![ctx_fill; 64];
            let result = Vm::new().execute(&prog, &ctx, &mut maps, &mut ExecEnv::default());
            prop_assert!(
                result.is_ok(),
                "verifier accepted but interpreter faulted: {:?}\n{}",
                result,
                prog.disassemble()
            );
        }
    }

    /// The verifier itself must be total: no panics on arbitrary input.
    #[test]
    fn verifier_never_panics(body in prop::collection::vec(arb_insn(), 0..32)) {
        let prog = Program::new("fuzz", body);
        let maps = MapRegistry::new();
        let _ = Verifier::default().verify(&prog, &maps);
    }

    /// The interpreter must be total too (fault, not panic), even on
    /// unverified garbage.
    #[test]
    fn interpreter_never_panics_on_unverified_input(
        body in prop::collection::vec(arb_insn(), 1..24)
    ) {
        let prog = Program::new("fuzz", body);
        let mut maps = MapRegistry::new();
        let _ = Vm::with_insn_budget(10_000).execute(
            &prog,
            &[0u8; 32],
            &mut maps,
            &mut ExecEnv::default(),
        );
    }

    /// ALU semantics: mov/add/sub round-trip against native arithmetic.
    #[test]
    fn alu_matches_native_arithmetic(a in any::<i32>(), b in any::<i32>()) {
        let prog = Program::new(
            "alu",
            vec![
                Insn::mov64_imm(0, a),
                Insn::alu64_imm(OP_ADD, 0, b),
                Insn::alu64_imm(OP_SUB, 0, b),
                Insn::exit(),
            ],
        );
        let mut maps = MapRegistry::new();
        Verifier::default().verify(&prog, &maps).unwrap();
        let out = Vm::new()
            .execute(&prog, &[], &mut maps, &mut ExecEnv::default())
            .unwrap();
        prop_assert_eq!(out.ret, a as i64 as u64);
    }

    /// Map round-trip: whatever bytes go in through update come back out
    /// through lookup, for arbitrary keys and values.
    #[test]
    fn map_update_lookup_round_trip(
        key in any::<u64>(),
        value in any::<u64>(),
    ) {
        let mut maps = MapRegistry::new();
        let fd = maps.create("m", MapDef::hash(8, 8, 16));
        maps.update(fd, &key.to_le_bytes(), &value.to_le_bytes()).unwrap();
        let got = maps.lookup(fd, &key.to_le_bytes()).unwrap().unwrap();
        prop_assert_eq!(u64::from_le_bytes(got.try_into().unwrap()), value);
    }

    /// Helper ids round-trip through `from_id`.
    #[test]
    fn helper_ids_round_trip(id in 0i32..200) {
        if let Some(helper) = Helper::from_id(id) {
            prop_assert_eq!(helper.id(), id);
        }
    }
}
