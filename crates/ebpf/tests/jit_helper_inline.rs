//! Helper inlining in the template JIT is invisible except in speed.
//!
//! The JIT emits zero-arg env helpers (`ktime`, `pid_tgid`, `prandom`)
//! as direct loads/updates against the context's environment snapshot,
//! turns provably-shaped `map_lookup_elem` calls into guarded inline
//! probes, and touches proven map-value bytes through the value arena
//! without the trampoline round-trip (DESIGN §6f). These tests pin the
//! edges of that contract:
//!
//! * the inline prandom xorshift produces the *exact* draw sequence of
//!   the interpreter over thousands of draws;
//! * budget exhaustion mid-program leaves identical faults and map
//!   state, and inlined ktime reads stay monotonic across events;
//! * the array-lookup fast path agrees with the interpreter at the last
//!   valid index and one past it (inline miss, not a fault);
//! * the hash-lookup single-probe rule falls back (rather than
//!   mis-answering) when the home slot holds a colliding key;
//! * proven map-value loads/stores of every width hit the arena
//!   directly and leave bit-identical value bytes.

use kscope_ebpf::asm::Asm;
use kscope_ebpf::insn::{R0, R1, R2, R6, R10, SZ_B, SZ_DW, SZ_H, SZ_W};
use kscope_ebpf::interp::{ExecEnv, ExecOutcome, Vm};
use kscope_ebpf::mapindex::index_hash;
use kscope_ebpf::maps::{MapDef, MapRegistry};
use kscope_ebpf::verifier::Verifier;
use kscope_ebpf::{ExecError, Helper, Program};

/// Runs `prog` on the decoded interpreter and the JIT from identical
/// states; asserts the result, helper environment, and full map state
/// agree bit-for-bit, then returns the interpreter's view.
fn run_both(
    label: &str,
    prog: &Program,
    ctx: &[u8],
    base: &MapRegistry,
    env: ExecEnv,
    budget: Option<u64>,
) -> (Result<ExecOutcome, ExecError>, MapRegistry, ExecEnv) {
    let make = |jit: bool| {
        let vm = match budget {
            Some(b) => Vm::with_insn_budget(b),
            None => Vm::new(),
        };
        if jit {
            vm.with_jit()
        } else {
            vm
        }
    };
    let mut maps_interp = base.clone();
    let mut env_interp = env;
    let interp = make(false).execute(prog, ctx, &mut maps_interp, &mut env_interp);
    let mut maps_jit = base.clone();
    let mut env_jit = env;
    let jit = make(true).execute(prog, ctx, &mut maps_jit, &mut env_jit);
    assert_eq!(interp, jit, "{label}: outcome diverged");
    assert_eq!(env_interp, env_jit, "{label}: helper env diverged");
    assert_eq!(
        format!("{maps_interp:?}"),
        format!("{maps_jit:?}"),
        "{label}: map state diverged"
    );
    (interp, maps_interp, env_interp)
}

fn verify(prog: &Program, maps: &MapRegistry) {
    Verifier::default()
        .verify(prog, maps)
        .unwrap_or_else(|e| panic!("must verify: {e}"));
}

/// The inline xorshift64* must replay the interpreter's draw sequence
/// exactly — same state evolution, same high-word truncation — over
/// enough draws to cover the whole state trajectory.
#[test]
fn prandom_sequence_identical_over_10k_draws() {
    let prog = Asm::new("draw")
        .call(Helper::GetPrandomU32)
        .exit()
        .assemble()
        .expect("assembles");
    let maps = MapRegistry::new();
    verify(&prog, &maps);
    let mut env_interp = ExecEnv::default();
    let mut env_jit = ExecEnv::default();
    let mut maps_interp = maps.clone();
    let mut maps_jit = maps.clone();
    let mut interp_vm = Vm::new();
    let mut jit_vm = Vm::new().with_jit();
    for draw in 0..10_000u32 {
        let a = interp_vm
            .execute(&prog, &[], &mut maps_interp, &mut env_interp)
            .unwrap_or_else(|e| panic!("interp draw {draw}: {e:?}"));
        let b = jit_vm
            .execute(&prog, &[], &mut maps_jit, &mut env_jit)
            .unwrap_or_else(|e| panic!("jit draw {draw}: {e:?}"));
        assert_eq!(a.ret, b.ret, "draw {draw} diverged");
        assert_eq!(
            env_interp.prandom_state, env_jit.prandom_state,
            "state diverged after draw {draw}"
        );
    }
}

/// Builds the ktime-recording program: look up the array cell, write
/// the current ktime into it, then burn ALU instructions so a small
/// budget exhausts after the write but before `exit`.
fn ktime_then_burn(maps: &mut MapRegistry) -> (Program, kscope_ebpf::MapFd) {
    let fd = maps.create("out", MapDef::array(8, 1));
    let mut asm = Asm::new("ktime_burn")
        .store_imm(SZ_W, R10, -4, 0)
        .ld_map_fd(R1, fd)
        .mov64_reg(R2, R10)
        .add64_imm(R2, -4)
        .call(Helper::MapLookupElem)
        .jeq_imm(R0, 0, "out")
        .mov64_reg(R6, R0)
        .call(Helper::KtimeGetNs)
        .store_reg(SZ_DW, R6, R0, 0);
    for _ in 0..32 {
        asm = asm.add64_imm(R0, 1);
    }
    let prog = asm
        .label("out")
        .mov64_imm(R0, 0)
        .exit()
        .assemble()
        .expect("assembles");
    (prog, fd)
}

/// Budget exhaustion mid-program (after the inlined ktime read and the
/// map-value store, before `exit`) must fault identically on both
/// dispatchers, and the value each event managed to record must still
/// be monotonically increasing across events.
#[test]
fn ktime_monotonic_under_budget_exhaustion_mid_program() {
    let mut maps = MapRegistry::new();
    let (prog, fd) = ktime_then_burn(&mut maps);
    verify(&prog, &maps);
    // Enough budget to reach the store, not enough to finish the burn.
    let budget = 20u64;
    let mut last = 0u64;
    for event in 1..=5u64 {
        let env = ExecEnv {
            ktime_ns: 1_000 * event,
            pid_tgid: 0x1111_2222,
            prandom_state: 3 * event,
        };
        let (res, maps_after, _) = run_both("ktime_burn", &prog, &[], &maps, env, Some(budget));
        match res {
            Err(ExecError::BudgetExhausted { .. }) => {}
            other => panic!("expected mid-program budget exhaustion, got {other:?}"),
        }
        let recorded = maps_after.array_u64(fd, 0).expect("cell exists");
        assert_eq!(recorded, 1_000 * event, "stored ktime snapshot");
        assert!(recorded > last, "ktime went backwards: {last} -> {recorded}");
        last = recorded;
    }
}

/// Builds a lookup-then-read probe over a 4-entry array map: looks up
/// `key`, returns 0 on miss, else the value's first word.
fn array_probe(fd: kscope_ebpf::MapFd, key: i32) -> Program {
    Asm::new("array_probe")
        .store_imm(SZ_W, R10, -4, key)
        .ld_map_fd(R1, fd)
        .mov64_reg(R2, R10)
        .add64_imm(R2, -4)
        .call(Helper::MapLookupElem)
        .jeq_imm(R0, 0, "miss")
        .load(SZ_DW, R0, R0, 0)
        .exit()
        .label("miss")
        .mov64_imm(R0, 0)
        .exit()
        .assemble()
        .expect("assembles")
}

/// The array fast path at the boundary: index `max_entries - 1` is an
/// inline hit, index `max_entries` is an inline miss (NULL, not a
/// fault) — both identical to the interpreter.
#[test]
fn array_lookup_inline_at_boundary_indices() {
    let mut maps = MapRegistry::new();
    let fd = maps.create("vals", MapDef::array(8, 4));
    maps.set_array_u64(fd, 3, 0xFEED_F00D).expect("seed last cell");

    let hit = array_probe(fd, 3);
    verify(&hit, &maps);
    let (res, _, _) = run_both("array@3", &hit, &[], &maps, ExecEnv::default(), None);
    assert_eq!(res.expect("runs").ret, 0xFEED_F00D);

    let miss = array_probe(fd, 4);
    verify(&miss, &maps);
    let (res, _, _) = run_both("array@4", &miss, &[], &maps, ExecEnv::default(), None);
    assert_eq!(res.expect("runs").ret, 0, "one past the end is NULL");
}

/// Builds a hash-lookup probe for an 8-byte immediate key split into
/// two word stores, returning the value's first word or 0 on miss.
fn hash_probe(fd: kscope_ebpf::MapFd, key: u64) -> Program {
    Asm::new("hash_probe")
        .store_imm(SZ_W, R10, -8, key as u32 as i32)
        .store_imm(SZ_W, R10, -4, (key >> 32) as u32 as i32)
        .ld_map_fd(R1, fd)
        .mov64_reg(R2, R10)
        .add64_imm(R2, -8)
        .call(Helper::MapLookupElem)
        .jeq_imm(R0, 0, "miss")
        .load(SZ_DW, R0, R0, 0)
        .exit()
        .label("miss")
        .mov64_imm(R0, 0)
        .exit()
        .assemble()
        .expect("assembles")
}

/// Home-slot index of `key` in a table with `mask`.
fn home(key: u64, mask: u64) -> u64 {
    index_hash(&key.to_le_bytes()) & mask
}

/// The single-probe rule under collision: when two live keys share a
/// home slot, the displaced key's inline probe sees a foreign key and
/// must fall back (answering correctly), while the resident key and a
/// clean miss stay on the fast path — all bit-identical to the
/// interpreter.
#[test]
fn hash_inline_compare_with_colliding_keys() {
    let mut maps = MapRegistry::new();
    let fd = maps.create("h", MapDef::hash(8, 8, 4));
    // Capacity for max_entries=4 is 8 (mask 7); find a displaced pair
    // and a key whose home slot stays empty.
    let mask = 7u64;
    let a = 5u64;
    let mut b = a + 1;
    while home(b, mask) != home(a, mask) {
        b += 1;
    }
    let mut absent = b + 1;
    while home(absent, mask) == home(a, mask) {
        absent += 1;
    }
    maps.update(fd, &a.to_le_bytes(), &0xAAAAu64.to_le_bytes())
        .expect("insert a");
    maps.update(fd, &b.to_le_bytes(), &0xBBBBu64.to_le_bytes())
        .expect("insert b");

    for (label, key, want) in [
        ("resident", a, 0xAAAA),
        ("displaced", b, 0xBBBB),
        ("absent", absent, 0),
    ] {
        let prog = hash_probe(fd, key);
        verify(&prog, &maps);
        let (res, _, _) = run_both(label, &prog, &[], &maps, ExecEnv::default(), None);
        assert_eq!(res.expect("runs").ret, want, "{label} lookup");
    }
}

/// Proven map-value stores and loads of every width, round-tripped
/// through the arena fast path: the program writes 1/2/4/8-byte values
/// into a looked-up cell, reads them back, and returns their sum; the
/// final value bytes and the return must match the interpreter's.
#[test]
fn map_value_access_every_width_matches_interp() {
    let mut maps = MapRegistry::new();
    let fd = maps.create("cell", MapDef::array(24, 2));
    let prog = Asm::new("widths")
        .store_imm(SZ_W, R10, -4, 1)
        .ld_map_fd(R1, fd)
        .mov64_reg(R2, R10)
        .add64_imm(R2, -4)
        .call(Helper::MapLookupElem)
        .jeq_imm(R0, 0, "miss")
        .mov64_reg(R6, R0)
        .store_imm(SZ_B, R6, 0, 0x5A)
        .store_imm(SZ_H, R6, 2, 0x1234)
        .store_imm(SZ_W, R6, 4, 0x00C0_FFEE)
        .store_imm(SZ_DW, R6, 8, 7)
        .load(SZ_B, R0, R6, 0)
        .load(SZ_H, R1, R6, 2)
        .add64_reg(R0, R1)
        .load(SZ_W, R1, R6, 4)
        .add64_reg(R0, R1)
        .load(SZ_DW, R1, R6, 8)
        .add64_reg(R0, R1)
        .store_reg(SZ_DW, R6, R0, 16)
        .exit()
        .label("miss")
        .mov64_imm(R0, 0)
        .exit()
        .assemble()
        .expect("assembles");
    verify(&prog, &maps);

    #[cfg(target_arch = "x86_64")]
    {
        let jit = prog.jit_for(true).expect("compilable on x86-64");
        assert!(
            jit.elided_accesses() >= 9,
            "map-value accesses should compile to the arena fast path, got {}",
            jit.elided_accesses()
        );
    }

    let (res, maps_after, _) = run_both("widths", &prog, &[], &maps, ExecEnv::default(), None);
    let want = 0x5A + 0x1234 + 0x00C0_FFEE + 7;
    assert_eq!(res.expect("runs").ret, want);
    assert_eq!(
        maps_after.array_u64(fd, 1).ok(),
        Some(0x5A | (0x1234 << 16) | (0x00C0_FFEE << 32)),
        "low quadword: byte at 0, half at 2, word at 4"
    );
}
