//! Integration tests: assembler → verifier → interpreter, end to end.

use kscope_ebpf::asm::Asm;
use kscope_ebpf::insn::{
    Insn, OP_ADD, OP_ARSH, OP_DIV, OP_JGE, OP_JSET, OP_JSGT, OP_JSLT, OP_LSH, OP_MOD, OP_MUL,
    OP_RSH, OP_SUB, OP_XOR, R0, R1, R2, R3, R4, R6, R7, R9, R10, SZ_B, SZ_DW, SZ_H, SZ_W,
};
use kscope_ebpf::interp::ExecEnv;
use kscope_ebpf::maps::{MapDef, MapRegistry};
use kscope_ebpf::verifier::{Verifier, VerifyError};
use kscope_ebpf::{Helper, Program, Vm};

fn run(prog: &Program, ctx: &[u8], maps: &mut MapRegistry) -> u64 {
    Verifier::default()
        .verify(prog, maps)
        .unwrap_or_else(|e| panic!("verification failed: {e}"));
    Vm::new()
        .execute(prog, ctx, maps, &mut ExecEnv::default())
        .unwrap_or_else(|e| panic!("execution failed: {e}"))
        .ret
}

fn run_env(prog: &Program, ctx: &[u8], maps: &mut MapRegistry, env: &mut ExecEnv) -> u64 {
    Verifier::default().verify(prog, maps).expect("verify");
    Vm::new().execute(prog, ctx, maps, env).expect("execute").ret
}

// --- ALU semantics ---

#[test]
fn alu64_arithmetic_matrix() {
    let cases: Vec<(u8, u64, i32, u64)> = vec![
        (OP_ADD, 7, 3, 10),
        (OP_SUB, 7, 3, 4),
        (OP_MUL, 7, 3, 21),
        (OP_DIV, 7, 3, 2),
        (OP_MOD, 7, 3, 1),
        (OP_LSH, 1, 12, 4096),
        (OP_RSH, 4096, 12, 1),
        (OP_XOR, 0b1100, 0b1010, 0b0110),
    ];
    for (op, a, b, expected) in cases {
        let prog = Asm::new("alu")
            .ld_dw(R0, a)
            .insn(Insn::alu64_imm(op, R0, b))
            .exit()
            .assemble()
            .unwrap();
        let got = run(&prog, &[], &mut MapRegistry::new());
        assert_eq!(got, expected, "op {op:#x} on {a}, {b}");
    }
}

#[test]
fn div_and_mod_by_zero_register_follow_kernel_semantics() {
    // DIV by zero register yields 0; MOD by zero leaves dst unchanged.
    let prog = Asm::new("divzero")
        .mov64_imm(R0, 42)
        .mov64_imm(R2, 0)
        .insn(Insn::alu64_reg(OP_DIV, R0, R2))
        .exit()
        .assemble()
        .unwrap();
    assert_eq!(run(&prog, &[], &mut MapRegistry::new()), 0);

    let prog = Asm::new("modzero")
        .mov64_imm(R0, 42)
        .mov64_imm(R2, 0)
        .insn(Insn::alu64_reg(OP_MOD, R0, R2))
        .exit()
        .assemble()
        .unwrap();
    assert_eq!(run(&prog, &[], &mut MapRegistry::new()), 42);
}

#[test]
fn div_and_mod_by_zero_register_32bit_follow_kernel_semantics() {
    // 32-bit DIV by a zero register yields 0.
    let prog = Asm::new("divzero32")
        .mov64_imm(R0, 42)
        .mov64_imm(R2, 0)
        .insn(Insn::alu32_reg(OP_DIV, R0, R2))
        .exit()
        .assemble()
        .unwrap();
    assert_eq!(run(&prog, &[], &mut MapRegistry::new()), 0);

    // 32-bit MOD by zero keeps the destination, but truncated and
    // zero-extended like every ALU32 result.
    let prog = Asm::new("modzero32")
        .ld_dw(R0, 0xFFFF_FFFF_0000_002A)
        .mov64_imm(R2, 0)
        .insn(Insn::alu32_reg(OP_MOD, R0, R2))
        .exit()
        .assemble()
        .unwrap();
    assert_eq!(run(&prog, &[], &mut MapRegistry::new()), 0x2A);
}

#[test]
fn runtime_zero_divisor_from_context_is_safe() {
    // The verifier cannot prove this ctx-loaded divisor nonzero, and must
    // not need to: scalar/scalar division is always safe at runtime.
    let prog = Asm::new("ctxdiv")
        .mov64_imm(R0, 100)
        .load(SZ_DW, R2, R1, 0)
        .insn(Insn::alu64_reg(OP_DIV, R0, R2))
        .exit()
        .assemble()
        .unwrap();
    // ctx word 0 == 0: BPF defines the quotient as 0.
    assert_eq!(run(&prog, &[0u8; 16], &mut MapRegistry::new()), 0);
    // ctx word 0 == 5: ordinary division.
    let mut ctx = [0u8; 16];
    ctx[0] = 5;
    assert_eq!(run(&prog, &ctx, &mut MapRegistry::new()), 20);
}

#[test]
fn arsh_is_sign_preserving() {
    let prog = Asm::new("arsh")
        .mov64_imm(R0, -16)
        .insn(Insn::alu64_imm(OP_ARSH, R0, 2))
        .exit()
        .assemble()
        .unwrap();
    assert_eq!(run(&prog, &[], &mut MapRegistry::new()) as i64, -4);
}

#[test]
fn alu32_truncates_to_32_bits() {
    let prog = Asm::new("alu32")
        .ld_dw(R0, 0xFFFF_FFFF_0000_0001)
        .mov64_reg(R2, R0)
        .mov64_imm(R0, 0)
        .insn(Insn::alu32_reg(kscope_ebpf::insn::OP_MOV, R0, R2))
        .insn(Insn::alu32_imm(OP_ADD, R0, 1))
        .exit()
        .assemble()
        .unwrap();
    assert_eq!(run(&prog, &[], &mut MapRegistry::new()), 2);
}

// --- memory semantics ---

#[test]
fn stack_store_load_all_sizes() {
    for (sz, imm, mask) in [
        (SZ_B, 0x5A, 0xFFu64),
        (SZ_H, 0x1234, 0xFFFF),
        (SZ_W, 0x1234_5678, 0xFFFF_FFFF),
    ] {
        let prog = Asm::new("stack")
            .mov64_imm(R2, imm)
            .store_reg(sz, R10, R2, -8)
            // Initialize the rest of the 8-byte slot so the full load below
            // is reading defined bytes.
            .store_imm(SZ_W, R10, -4, 0)
            .load(sz, R0, R10, -8)
            .exit()
            .assemble()
            .unwrap();
        let got = run(&prog, &[], &mut MapRegistry::new());
        assert_eq!(got, imm as u64 & mask, "size {sz:#x}");
    }
}

#[test]
fn ctx_reads_work_and_writes_are_rejected() {
    let mut ctx = [0u8; 16];
    ctx[8..16].copy_from_slice(&777u64.to_le_bytes());
    let prog = Asm::new("ctxread")
        .load(SZ_DW, R0, R1, 8)
        .exit()
        .assemble()
        .unwrap();
    assert_eq!(run(&prog, &ctx, &mut MapRegistry::new()), 777);

    let bad = Asm::new("ctxwrite")
        .mov64_imm(R0, 0)
        .store_imm(SZ_DW, R1, 0, 1)
        .exit()
        .assemble()
        .unwrap();
    let err = Verifier::default()
        .verify(&bad, &MapRegistry::new())
        .unwrap_err();
    assert!(matches!(err, VerifyError::WriteToCtx { .. }), "{err}");
}

#[test]
fn spilled_pointer_round_trips_through_stack() {
    // Spill the ctx pointer, fill it back, and load through it.
    let ctx = 99u64.to_le_bytes();
    let prog = Asm::new("spill")
        .store_reg(SZ_DW, R10, R1, -8)
        .load(SZ_DW, R6, R10, -8)
        .load(SZ_DW, R0, R6, 0)
        .exit()
        .assemble()
        .unwrap();
    assert_eq!(run(&prog, &ctx, &mut MapRegistry::new()), 99);
}

// --- verifier rejection table ---

fn verify_err(prog: Program, maps: &MapRegistry) -> VerifyError {
    Verifier::default().verify(&prog, maps).unwrap_err()
}

#[test]
fn rejects_empty_program() {
    let maps = MapRegistry::new();
    assert_eq!(
        verify_err(Program::new("empty", vec![]), &maps),
        VerifyError::Empty
    );
}

#[test]
fn rejects_uninitialized_register_read() {
    let maps = MapRegistry::new();
    let prog = Asm::new("uninit")
        .mov64_reg(R0, R7)
        .exit()
        .assemble()
        .unwrap();
    assert!(matches!(
        verify_err(prog, &maps),
        VerifyError::UninitRead { reg: 7, .. }
    ));
}

#[test]
fn rejects_back_edges() {
    let maps = MapRegistry::new();
    let prog = Asm::new("loop")
        .label("top")
        .mov64_imm(R0, 0)
        .ja("top")
        .assemble()
        .unwrap();
    assert!(matches!(verify_err(prog, &maps), VerifyError::BackEdge { .. }));
}

#[test]
fn rejects_fall_off_end() {
    let maps = MapRegistry::new();
    let prog = Program::new("fall", vec![Insn::mov64_imm(R0, 1)]);
    assert!(matches!(
        verify_err(prog, &maps),
        VerifyError::FallOffEnd { .. }
    ));
}

#[test]
fn rejects_stack_out_of_bounds() {
    let maps = MapRegistry::new();
    for off in [-520i16, 0, 8] {
        let prog = Asm::new("oob")
            .mov64_imm(R0, 0)
            .store_imm(SZ_DW, R10, off, 1)
            .exit()
            .assemble()
            .unwrap();
        assert!(
            matches!(verify_err(prog, &maps), VerifyError::OutOfBounds { .. }),
            "offset {off}"
        );
    }
}

#[test]
fn rejects_uninitialized_stack_read() {
    let maps = MapRegistry::new();
    let prog = Asm::new("uninit-stack")
        .load(SZ_DW, R0, R10, -8)
        .exit()
        .assemble()
        .unwrap();
    assert!(matches!(
        verify_err(prog, &maps),
        VerifyError::UninitStackRead { .. }
    ));
}

#[test]
fn rejects_write_to_frame_pointer() {
    let maps = MapRegistry::new();
    let prog = Asm::new("fp")
        .mov64_imm(R0, 0)
        .insn(Insn::alu64_imm(OP_ADD, R10, 8))
        .exit()
        .assemble()
        .unwrap();
    assert!(matches!(verify_err(prog, &maps), VerifyError::WriteToFp { .. }));
}

#[test]
fn rejects_ctx_out_of_bounds_read() {
    let maps = MapRegistry::new();
    let prog = Asm::new("ctxoob")
        .load(SZ_DW, R0, R1, 60) // default ctx_size = 64; 60+8 > 64
        .exit()
        .assemble()
        .unwrap();
    assert!(matches!(
        verify_err(prog, &maps),
        VerifyError::OutOfBounds { region: "context", .. }
    ));
}

#[test]
fn rejects_unchecked_map_value_deref() {
    let mut maps = MapRegistry::new();
    let fd = maps.create("m", MapDef::hash(8, 8, 16));
    let prog = Asm::new("nullderef")
        .store_imm(SZ_DW, R10, -8, 1)
        .ld_map_fd(R1, fd)
        .mov64_reg(R2, R10)
        .insn(Insn::alu64_imm(OP_ADD, R2, -8))
        .call(Helper::MapLookupElem)
        .load(SZ_DW, R0, R0, 0) // no null check!
        .exit()
        .assemble()
        .unwrap();
    assert!(matches!(
        verify_err(prog, &maps),
        VerifyError::MaybeNullDeref { .. }
    ));
}

#[test]
fn rejects_division_by_zero_immediate() {
    let maps = MapRegistry::new();
    let prog = Asm::new("div0")
        .mov64_imm(R0, 5)
        .div64_imm(R0, 0)
        .exit()
        .assemble()
        .unwrap();
    assert!(matches!(
        verify_err(prog, &maps),
        VerifyError::DivByZeroImm { .. }
    ));
}

#[test]
fn rejects_unknown_helper() {
    let maps = MapRegistry::new();
    let prog = Asm::new("badcall")
        .insn(Insn::call(9999))
        .exit()
        .assemble()
        .unwrap();
    assert!(matches!(
        verify_err(prog, &maps),
        VerifyError::UnknownHelper { id: 9999, .. }
    ));
}

#[test]
fn rejects_exit_without_r0() {
    let maps = MapRegistry::new();
    let prog = Asm::new("nor0").exit().assemble().unwrap();
    assert!(matches!(
        verify_err(prog, &maps),
        VerifyError::ExitWithoutR0 { .. }
    ));
}

#[test]
fn rejects_helper_arg_without_map_handle() {
    let mut maps = MapRegistry::new();
    let _fd = maps.create("m", MapDef::hash(8, 8, 16));
    let prog = Asm::new("badarg")
        .mov64_imm(R1, 0) // not a map handle
        .mov64_reg(R2, R10)
        .call(Helper::MapLookupElem)
        .exit()
        .assemble()
        .unwrap();
    assert!(matches!(
        verify_err(prog, &maps),
        VerifyError::BadHelperArg { arg: 1, .. }
    ));
}

#[test]
fn rejects_unknown_map_fd() {
    let maps = MapRegistry::new();
    let prog = Asm::new("badfd")
        .ld_map_fd(R1, kscope_ebpf::MapFd(42))
        .mov64_imm(R0, 0)
        .exit()
        .assemble()
        .unwrap();
    assert!(matches!(
        verify_err(prog, &maps),
        VerifyError::BadMapFd { fd: 42, .. }
    ));
}

#[test]
fn rejects_pointer_multiplication() {
    let maps = MapRegistry::new();
    let prog = Asm::new("ptrmul")
        .mov64_reg(R2, R10)
        .insn(Insn::alu64_imm(OP_MUL, R2, 4))
        .mov64_imm(R0, 0)
        .exit()
        .assemble()
        .unwrap();
    assert!(matches!(
        verify_err(prog, &maps),
        VerifyError::PointerArith { .. }
    ));
}

#[test]
fn rejects_oversized_program() {
    let maps = MapRegistry::new();
    let mut insns = vec![Insn::mov64_imm(R0, 0); 5000];
    insns.push(Insn::exit());
    let prog = Program::new("huge", insns);
    assert!(matches!(verify_err(prog, &maps), VerifyError::TooLarge { .. }));
}

// --- branch refinement and joins ---

#[test]
fn null_check_with_jne_also_verifies() {
    let mut maps = MapRegistry::new();
    let fd = maps.create("m", MapDef::hash(8, 8, 16));
    maps.update(fd, &1u64.to_le_bytes(), &123u64.to_le_bytes())
        .unwrap();
    let prog = Asm::new("jne-null")
        .ld_dw(R2, 1)
        .store_reg(SZ_DW, R10, R2, -8)
        .ld_map_fd(R1, fd)
        .mov64_reg(R2, R10)
        .insn(Insn::alu64_imm(OP_ADD, R2, -8))
        .call(Helper::MapLookupElem)
        .jne_imm(R0, 0, "found")
        .mov64_imm(R0, 0)
        .exit()
        .label("found")
        .load(SZ_DW, R0, R0, 0)
        .exit()
        .assemble()
        .unwrap();
    assert_eq!(run(&prog, &[], &mut maps), 123);
}

#[test]
fn signed_and_set_jumps_execute_correctly() {
    // JSLT taken for -1 < 0; JSET on bit mask.
    let prog = Asm::new("signed")
        .mov64_imm(R2, -1)
        .insn(Insn::jmp_imm(OP_JSLT, R2, 0, 1))
        .ja("no")
        .mov64_imm(R0, 1)
        .exit()
        .label("no")
        .mov64_imm(R0, 0)
        .exit()
        .assemble()
        .unwrap();
    assert_eq!(run(&prog, &[], &mut MapRegistry::new()), 1);

    let prog = Asm::new("jset")
        .mov64_imm(R2, 0b1010)
        .insn(Insn::jmp_imm(OP_JSET, R2, 0b0010, 1))
        .ja("no")
        .mov64_imm(R0, 1)
        .exit()
        .label("no")
        .mov64_imm(R0, 0)
        .exit()
        .assemble()
        .unwrap();
    assert_eq!(run(&prog, &[], &mut MapRegistry::new()), 1);
}

#[test]
fn jge_jsgt_semantics() {
    for (op, a, b, expect) in [
        (OP_JGE, 5i64, 5i32, 1u64),
        (OP_JGE, 4, 5, 0),
        (OP_JSGT, -1, -2, 1),
        (OP_JSGT, -2, -1, 0),
    ] {
        let prog = Asm::new("cmp")
            .mov64_imm(R2, a as i32)
            .insn(Insn::jmp_imm(op, R2, b, 1))
            .ja("no")
            .mov64_imm(R0, 1)
            .exit()
            .label("no")
            .mov64_imm(R0, 0)
            .exit()
            .assemble()
            .unwrap();
        assert_eq!(
            run(&prog, &[], &mut MapRegistry::new()),
            expect,
            "op {op:#x} {a} vs {b}"
        );
    }
}

// --- maps end to end ---

#[test]
fn hash_map_update_and_lookup_via_bytecode() {
    let mut maps = MapRegistry::new();
    let fd = maps.create("counts", MapDef::hash(8, 8, 64));
    // Program: counts[pid_tgid] = ktime; returns 0.
    let prog = Asm::new("store_ts")
        .call(Helper::GetCurrentPidTgid)
        .store_reg(SZ_DW, R10, R0, -8) // key
        .call(Helper::KtimeGetNs)
        .store_reg(SZ_DW, R10, R0, -16) // value
        .ld_map_fd(R1, fd)
        .mov64_reg(R2, R10)
        .insn(Insn::alu64_imm(OP_ADD, R2, -8))
        .mov64_reg(R3, R10)
        .insn(Insn::alu64_imm(OP_ADD, R3, -16))
        .mov64_imm(R4, 0)
        .call(Helper::MapUpdateElem)
        .mov64_imm(R0, 0)
        .exit()
        .assemble()
        .unwrap();
    let mut env = ExecEnv {
        ktime_ns: 5_000,
        pid_tgid: 0xAB_0000_0042,
        ..ExecEnv::default()
    };
    assert_eq!(run_env(&prog, &[], &mut maps, &mut env), 0);
    let stored = maps
        .lookup(fd, &0xAB_0000_0042u64.to_le_bytes())
        .unwrap()
        .unwrap();
    assert_eq!(u64::from_le_bytes(stored.try_into().unwrap()), 5_000);
}

#[test]
fn listing1_style_duration_program() {
    // The paper's Listing 1: at sys_enter store the timestamp; at sys_exit
    // compute the duration. Context layout: [syscall_id: u64][0: u64].
    let mut maps = MapRegistry::new();
    let start = maps.create("start", MapDef::hash(8, 8, 1024));
    let out = maps.create("durations", MapDef::array(8, 1));
    const TARGET_PID_TGID: u64 = 1200 << 32 | 1201;

    let enter = Asm::new("sys_enter")
        .mov64_reg(R9, R1) // save ctx before calls clobber r1-r5
        .call(Helper::GetCurrentPidTgid)
        .mov64_reg(R6, R0)
        .ld_dw(R2, TARGET_PID_TGID)
        .jeq_reg(R6, R2, "matched")
        .mov64_imm(R0, 0)
        .exit()
        .label("matched")
        .load(SZ_DW, R7, R9, 0) // args->id
        .jeq_imm(R7, 232, "is_epoll")
        .mov64_imm(R0, 0)
        .exit()
        .label("is_epoll")
        .store_reg(SZ_DW, R10, R6, -8) // key = pid_tgid
        .call(Helper::KtimeGetNs)
        .store_reg(SZ_DW, R10, R0, -16) // value = now
        .ld_map_fd(R1, start)
        .mov64_reg(R2, R10)
        .insn(Insn::alu64_imm(OP_ADD, R2, -8))
        .mov64_reg(R3, R10)
        .insn(Insn::alu64_imm(OP_ADD, R3, -16))
        .mov64_imm(R4, 0)
        .call(Helper::MapUpdateElem)
        .mov64_imm(R0, 0)
        .exit()
        .assemble()
        .unwrap();

    let exit = Asm::new("sys_exit")
        .mov64_reg(R9, R1) // save ctx before calls clobber r1-r5
        .call(Helper::GetCurrentPidTgid)
        .mov64_reg(R6, R0)
        .ld_dw(R2, TARGET_PID_TGID)
        .jeq_reg(R6, R2, "matched")
        .mov64_imm(R0, 0)
        .exit()
        .label("matched")
        .load(SZ_DW, R7, R9, 0)
        .jeq_imm(R7, 232, "is_epoll")
        .mov64_imm(R0, 0)
        .exit()
        .label("is_epoll")
        .store_reg(SZ_DW, R10, R6, -8)
        .ld_map_fd(R1, start)
        .mov64_reg(R2, R10)
        .insn(Insn::alu64_imm(OP_ADD, R2, -8))
        .call(Helper::MapLookupElem)
        .jne_imm(R0, 0, "have_start")
        .mov64_imm(R0, 0)
        .exit()
        .label("have_start")
        .load(SZ_DW, R7, R0, 0) // start_ns
        .call(Helper::KtimeGetNs)
        .sub64_reg(R0, R7) // duration
        .store_reg(SZ_DW, R10, R0, -16)
        .store_imm(SZ_W, R10, -24, 0) // out slot key = 0
        .store_imm(SZ_W, R10, -20, 0)
        .ld_map_fd(R1, out)
        .mov64_reg(R2, R10)
        .insn(Insn::alu64_imm(OP_ADD, R2, -24))
        .mov64_reg(R3, R10)
        .insn(Insn::alu64_imm(OP_ADD, R3, -16))
        .mov64_imm(R4, 0)
        .call(Helper::MapUpdateElem)
        .mov64_imm(R0, 0)
        .exit()
        .assemble()
        .unwrap();

    let verifier = Verifier::default();
    verifier.verify(&enter, &maps).expect("enter verifies");
    verifier.verify(&exit, &maps).expect("exit verifies");

    let mut vm = Vm::new();
    let ctx_epoll = {
        let mut buf = [0u8; 16];
        buf[..8].copy_from_slice(&232u64.to_le_bytes());
        buf
    };
    let ctx_other = {
        let mut buf = [0u8; 16];
        buf[..8].copy_from_slice(&1u64.to_le_bytes());
        buf
    };

    // Wrong pid: ignored.
    let mut env = ExecEnv {
        ktime_ns: 100,
        pid_tgid: 999,
        ..ExecEnv::default()
    };
    vm.execute(&enter, &ctx_epoll, &mut maps, &mut env).unwrap();
    assert_eq!(maps.len(start).unwrap(), 0);

    // Right pid, wrong syscall: ignored.
    let mut env = ExecEnv {
        ktime_ns: 100,
        pid_tgid: TARGET_PID_TGID,
        ..ExecEnv::default()
    };
    vm.execute(&enter, &ctx_other, &mut maps, &mut env).unwrap();
    assert_eq!(maps.len(start).unwrap(), 0);

    // Enter at t=1000, exit at t=1250: duration 250.
    env.ktime_ns = 1_000;
    vm.execute(&enter, &ctx_epoll, &mut maps, &mut env).unwrap();
    assert_eq!(maps.len(start).unwrap(), 1);
    env.ktime_ns = 1_250;
    vm.execute(&exit, &ctx_epoll, &mut maps, &mut env).unwrap();
    assert_eq!(maps.array_u64(out, 0).unwrap(), 250);
}

#[test]
fn ringbuf_output_from_bytecode() {
    let mut maps = MapRegistry::new();
    let rb = maps.create("events", MapDef::ring_buf(16, 8));
    let prog = Asm::new("emit")
        .call(Helper::KtimeGetNs)
        .store_reg(SZ_DW, R10, R0, -8)
        .ld_map_fd(R1, rb)
        .mov64_reg(R2, R10)
        .insn(Insn::alu64_imm(OP_ADD, R2, -8))
        .mov64_imm(R3, 8)
        .mov64_imm(R4, 0)
        .call(Helper::RingbufOutput)
        .exit()
        .assemble()
        .unwrap();
    let mut env = ExecEnv {
        ktime_ns: 4242,
        ..ExecEnv::default()
    };
    assert_eq!(run_env(&prog, &[], &mut maps, &mut env), 0);
    let records = maps.ring_drain(rb).unwrap();
    assert_eq!(records.len(), 1);
    assert_eq!(u64::from_le_bytes(records[0][..8].try_into().unwrap()), 4242);
}

#[test]
fn trace_printk_collects_output() {
    let prog = Asm::new("printk")
        .store_imm(SZ_B, R10, -4, b'k' as i32)
        .store_imm(SZ_B, R10, -3, b's' as i32)
        .store_imm(SZ_B, R10, -2, b'c' as i32)
        .store_imm(SZ_B, R10, -1, 0)
        .mov64_reg(R1, R10)
        .insn(Insn::alu64_imm(OP_ADD, R1, -4))
        .mov64_imm(R2, 4)
        .call(Helper::TracePrintk)
        .exit()
        .assemble()
        .unwrap();
    let mut maps = MapRegistry::new();
    Verifier::default().verify(&prog, &maps).unwrap();
    let out = Vm::new()
        .execute(&prog, &[], &mut maps, &mut ExecEnv::default())
        .unwrap();
    assert_eq!(out.trace_output.len(), 1);
    assert_eq!(&out.trace_output[0], b"ksc\0");
}

#[test]
fn prandom_advances_state() {
    let prog = Asm::new("rand")
        .call(Helper::GetPrandomU32)
        .exit()
        .assemble()
        .unwrap();
    let mut maps = MapRegistry::new();
    let mut env = ExecEnv::default();
    let a = run_env(&prog, &[], &mut maps, &mut env);
    let b = run_env(&prog, &[], &mut maps, &mut env);
    assert_ne!(a, b);
    assert!(a <= u32::MAX as u64);
}

#[test]
fn insn_budget_stops_runaway_unverified_program() {
    // An infinite loop cannot pass the verifier, but the interpreter must
    // still defend against unverified programs.
    let prog = Program::new(
        "spin",
        vec![Insn::mov64_imm(R0, 0), Insn::ja(-2)],
    );
    let err = Vm::with_insn_budget(1_000)
        .execute(&prog, &[], &mut MapRegistry::new(), &mut ExecEnv::default())
        .unwrap_err();
    assert!(matches!(
        err,
        kscope_ebpf::ExecError::BudgetExhausted { budget: 1_000 }
    ));
}

#[test]
fn caller_saved_registers_are_clobbered_by_calls() {
    // Reading r3 after a call must be flagged by the verifier.
    let maps = MapRegistry::new();
    let prog = Asm::new("clobber")
        .mov64_imm(R3, 7)
        .call(Helper::KtimeGetNs)
        .mov64_reg(R0, R3)
        .exit()
        .assemble()
        .unwrap();
    assert!(matches!(
        Verifier::default().verify(&prog, &maps).unwrap_err(),
        VerifyError::UninitRead { reg: 3, .. }
    ));
}

#[test]
fn callee_saved_registers_survive_calls() {
    let prog = Asm::new("callee")
        .mov64_imm(R6, 7)
        .call(Helper::KtimeGetNs)
        .mov64_reg(R0, R6)
        .exit()
        .assemble()
        .unwrap();
    assert_eq!(run(&prog, &[], &mut MapRegistry::new()), 7);
}

#[test]
fn disassembly_of_a_real_program_mentions_all_parts() {
    let mut maps = MapRegistry::new();
    let fd = maps.create("m", MapDef::hash(8, 8, 4));
    let prog = Asm::new("demo")
        .ld_map_fd(R1, fd)
        .mov64_imm(R0, 0)
        .exit()
        .assemble()
        .unwrap();
    let dis = prog.disassemble();
    assert!(dis.contains("ld_map_fd"));
    assert!(dis.contains("exit"));
    assert!(dis.contains("demo"));
}

#[test]
fn join_of_divergent_paths_is_conservative() {
    // r6 is a pointer on one path and a scalar on the other; using it as a
    // pointer after the join must be rejected. The branch condition comes
    // from the context so the value-tracking verifier can't decide it and
    // both paths stay live.
    let maps = MapRegistry::new();
    let prog = Asm::new("join")
        .load(SZ_DW, R0, R1, 0)
        .jeq_imm(R0, 0, "path_a")
        .mov64_imm(R6, 5)
        .ja("merge")
        .label("path_a")
        .mov64_reg(R6, R10)
        .label("merge")
        .load(SZ_DW, R0, R6, -8)
        .exit()
        .assemble()
        .unwrap();
    let err = Verifier::default().verify(&prog, &maps).unwrap_err();
    assert!(
        matches!(
            err,
            VerifyError::UninitRead { reg: 6, .. } | VerifyError::PointerArith { .. }
        ),
        "{err}"
    );
}

#[test]
fn both_branches_initializing_a_register_is_accepted() {
    let prog = Asm::new("join-ok")
        .mov64_imm(R0, 1)
        .jeq_imm(R0, 1, "one")
        .mov64_imm(R6, 10)
        .ja("merge")
        .label("one")
        .mov64_imm(R6, 20)
        .label("merge")
        .mov64_reg(R0, R6)
        .exit()
        .assemble()
        .unwrap();
    assert_eq!(run(&prog, &[], &mut MapRegistry::new()), 20);
}

#[test]
fn load_h_and_b_from_ctx() {
    let mut ctx = [0u8; 8];
    ctx[0] = 0xAA;
    ctx[1] = 0xBB;
    let prog = Asm::new("small-loads")
        .load(SZ_H, R0, R1, 0)
        .exit()
        .assemble()
        .unwrap();
    assert_eq!(run(&prog, &ctx, &mut MapRegistry::new()), 0xBBAA);
    let prog = Asm::new("byte-load")
        .load(SZ_B, R0, R1, 1)
        .exit()
        .assemble()
        .unwrap();
    assert_eq!(run(&prog, &ctx, &mut MapRegistry::new()), 0xBB);
}

#[test]
fn jmp32_compares_lower_halves_only() {
    // r2 = 0xFFFF_FFFF_0000_0005; jeq32 against 5 must take the branch.
    let prog = Asm::new("jmp32")
        .ld_dw(R2, 0xFFFF_FFFF_0000_0005)
        .insn(Insn::jmp32_imm(kscope_ebpf::insn::OP_JEQ, R2, 5, 1))
        .ja("no")
        .mov64_imm(R0, 1)
        .exit()
        .label("no")
        .mov64_imm(R0, 0)
        .exit()
        .assemble()
        .unwrap();
    assert_eq!(run(&prog, &[], &mut MapRegistry::new()), 1);

    // 64-bit jeq on the same value must NOT take the branch.
    let prog = Asm::new("jmp64")
        .ld_dw(R2, 0xFFFF_FFFF_0000_0005)
        .jeq_imm(R2, 5, "yes")
        .mov64_imm(R0, 0)
        .exit()
        .label("yes")
        .mov64_imm(R0, 1)
        .exit()
        .assemble()
        .unwrap();
    assert_eq!(run(&prog, &[], &mut MapRegistry::new()), 0);
}

#[test]
fn jmp32_signed_comparison_sign_extends_from_32_bits() {
    // Lower half 0xFFFF_FFFF is -1 in 32-bit terms: jslt32 vs 0 taken.
    let prog = Asm::new("jslt32")
        .ld_dw(R2, 0x0000_0001_FFFF_FFFF)
        .insn(Insn::jmp32_imm(kscope_ebpf::insn::OP_JSLT, R2, 0, 1))
        .ja("no")
        .mov64_imm(R0, 1)
        .exit()
        .label("no")
        .mov64_imm(R0, 0)
        .exit()
        .assemble()
        .unwrap();
    assert_eq!(run(&prog, &[], &mut MapRegistry::new()), 1);
}

#[test]
fn text_assembler_supports_jmp32_mnemonics() {
    let prog = kscope_ebpf::text::parse_program(
        "t",
        r"
        ld_dw r2, 0xFFFFFFFF00000007
        jeq32 r2, 7, hit
        mov   r0, 0
        exit
    hit:
        mov   r0, 1
        exit
    ",
    )
    .unwrap();
    assert_eq!(run(&prog, &[], &mut MapRegistry::new()), 1);
}

#[test]
fn verifier_rejects_jmp32_on_pointers() {
    let maps = MapRegistry::new();
    let prog = Asm::new("ptr32")
        .mov64_reg(R2, R10)
        .insn(Insn::jmp32_imm(kscope_ebpf::insn::OP_JEQ, R2, 0, 1))
        .mov64_imm(R0, 0)
        .exit()
        .assemble()
        .unwrap();
    assert!(matches!(
        Verifier::default().verify(&prog, &maps).unwrap_err(),
        VerifyError::PointerArith { .. }
    ));
}

#[test]
fn verifier_survives_extreme_pointer_arithmetic() {
    // `sub r3, r2` with r2 = i64::MIN as u64 used to panic the verifier in
    // debug builds (negation overflow); it must reject or accept cleanly.
    let maps = MapRegistry::new();
    let prog = Asm::new("extreme")
        .ld_dw(R2, 0x8000_0000_0000_0000)
        .mov64_reg(R3, R10)
        .sub64_reg(R3, R2)
        .mov64_imm(R0, 0)
        .exit()
        .assemble()
        .unwrap();
    let _ = Verifier::default().verify(&prog, &maps); // must not panic

    // Repeated huge adds must saturate, not overflow-panic.
    let prog = Asm::new("saturate")
        .ld_dw(R2, 1 << 62)
        .mov64_reg(R3, R10)
        .add64_reg(R3, R2)
        .add64_reg(R3, R2)
        .add64_reg(R3, R2)
        .mov64_imm(R0, 0)
        .exit()
        .assemble()
        .unwrap();
    let _ = Verifier::default().verify(&prog, &maps); // must not panic
}

#[test]
#[should_panic(expected = "limited to 1 MiB")]
fn oversized_map_values_are_rejected_at_creation() {
    let mut maps = MapRegistry::new();
    maps.create("huge", MapDef::array((1 << 20) + 1, 1));
}
