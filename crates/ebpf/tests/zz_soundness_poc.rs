//! PoC: verifier accepts, interpreter faults (ptr - i64::MIN wrap).
use kscope_ebpf::asm::Asm;
use kscope_ebpf::insn::{R0, R1, R2, R10, SZ_DW, SZ_W};
use kscope_ebpf::interp::ExecEnv;
use kscope_ebpf::maps::{MapDef, MapRegistry};
use kscope_ebpf::verifier::Verifier;
use kscope_ebpf::{Helper, Vm};

#[test]
fn ptr_sub_i64_min_is_unsound() {
    let mut maps = MapRegistry::new();
    let fd = maps.create("v", MapDef::array(8, 1));
    let prog = Asm::new("poc")
        .store_imm(SZ_W, R10, -4, 0)
        .ld_map_fd(R1, fd)
        .mov64_reg(R2, R10)
        .add64_imm(R2, -4)
        .call(Helper::MapLookupElem)
        .jeq_imm(R0, 0, "out")
        .ld_dw(R2, 0x7FFF_FFFF_FFFF_FFFF)
        .sub64_reg(R0, R2)
        .ld_dw(R2, 0x8000_0000_0000_0000)
        .sub64_reg(R0, R2)
        // verifier believes offset is back to 0; runtime ptr is base+1
        .load(SZ_DW, R1, R0, 0)
        .label("out")
        .mov64_imm(R0, 0)
        .exit()
        .assemble()
        .unwrap();
    let verdict = Verifier::default().verify(&prog, &maps);
    println!("verifier: {verdict:?}");
    if verdict.is_ok() {
        let res = Vm::new().execute(&prog, &[], &mut maps, &mut ExecEnv::default());
        println!("interpreter: {res:?}");
        assert!(res.is_ok(), "UNSOUND: verified program faulted: {res:?}");
    }
}
