//! The eBPF bytecode interpreter.
//!
//! Executes one program invocation against a read-only context buffer, a
//! 512-byte stack, and the shared [`MapRegistry`]. Pointers are modeled as
//! tagged 64-bit addresses in disjoint regions (context, stack, map-value
//! slots), so a verified program behaves exactly as its abstract model
//! predicts, and an unverified program faults with a descriptive
//! [`ExecError`] instead of corrupting memory.

use crate::helpers::Helper;
use crate::insn::{
    CLS_ALU, CLS_ALU64, CLS_JMP, CLS_JMP32, CLS_LD, CLS_LDX, CLS_ST, CLS_STX, OP_ADD, OP_AND, OP_ARSH,
    OP_CALL, OP_DIV, OP_EXIT, OP_JA, OP_JEQ, OP_JGE, OP_JGT, OP_JLE, OP_JLT, OP_JNE, OP_JSET,
    OP_JSGE, OP_JSGT, OP_JSLE, OP_JSLT, OP_LSH, OP_MOD, OP_MOV, OP_MUL, OP_NEG, OP_OR, OP_RSH,
    OP_SUB, OP_XOR, PSEUDO_MAP_FD, REG_COUNT, STACK_SIZE,
};
use crate::maps::{MapFd, MapRegistry};
use crate::program::Program;

/// Base address of the read-only context region.
const CTX_BASE: u64 = 0x1000_0000_0000;
/// Base address of the stack region; `r10` points at `STACK_BASE + 512`.
const STACK_BASE: u64 = 0x2000_0000_0000;
/// Base address of map-value slots handed out by `map_lookup_elem`.
const MAP_SLOT_BASE: u64 = 0x3000_0000_0000;
/// Stride between map-value slots (bounds the value size).
const MAP_SLOT_STRIDE: u64 = 1 << 20;
/// Tag marking a register value as a map handle (`ld_map_fd` result).
const MAP_HANDLE_BASE: u64 = 0x4000_0000_0000;
/// Default cap on executed instructions per invocation.
pub const DEFAULT_INSN_BUDGET: u64 = 1 << 20;

/// Per-invocation inputs for the stateful helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecEnv {
    /// Value returned by `bpf_ktime_get_ns`.
    pub ktime_ns: u64,
    /// Value returned by `bpf_get_current_pid_tgid`.
    pub pid_tgid: u64,
    /// Seed/state for `bpf_get_prandom_u32` (advanced on each call).
    pub prandom_state: u64,
}

impl Default for ExecEnv {
    fn default() -> Self {
        ExecEnv {
            ktime_ns: 0,
            pid_tgid: 0,
            prandom_state: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

/// Successful invocation result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecOutcome {
    /// The program's return value (`r0` at `exit`).
    pub ret: u64,
    /// Number of instructions executed — the runtime cost proxy the kernel
    /// simulator converts into probe overhead time.
    pub insns_executed: u64,
    /// Raw byte payloads passed to `bpf_trace_printk`.
    pub trace_output: Vec<Vec<u8>>,
}

/// Runtime faults (unreachable for verified programs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Memory access outside any region or across a region boundary.
    BadMemAccess {
        /// Faulting pc.
        pc: usize,
        /// Faulting address.
        addr: u64,
        /// Access size.
        size: usize,
    },
    /// Unknown or malformed opcode.
    BadOpcode {
        /// Faulting pc.
        pc: usize,
        /// Opcode byte.
        code: u8,
    },
    /// Jump landed outside the program.
    BadJumpTarget {
        /// Faulting pc.
        pc: usize,
        /// Target pc.
        target: i64,
    },
    /// Execution ran past the last instruction.
    FellOffEnd,
    /// `call` with an unknown helper id.
    UnknownHelper {
        /// Faulting pc.
        pc: usize,
        /// Helper id.
        id: i32,
    },
    /// A helper was passed a value that is not a map handle.
    NotAMapHandle {
        /// Faulting pc.
        pc: usize,
        /// The offending register value.
        value: u64,
    },
    /// The instruction budget was exhausted (runaway program).
    BudgetExhausted {
        /// The budget that was exceeded.
        budget: u64,
    },
    /// `ld_dw` missing its second slot.
    MalformedLdDw {
        /// Faulting pc.
        pc: usize,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::BadMemAccess { pc, addr, size } => {
                write!(f, "pc {pc}: bad memory access at {addr:#x} size {size}")
            }
            ExecError::BadOpcode { pc, code } => write!(f, "pc {pc}: bad opcode {code:#04x}"),
            ExecError::BadJumpTarget { pc, target } => {
                write!(f, "pc {pc}: jump to invalid target {target}")
            }
            ExecError::FellOffEnd => f.write_str("execution fell off the end of the program"),
            ExecError::UnknownHelper { pc, id } => write!(f, "pc {pc}: unknown helper {id}"),
            ExecError::NotAMapHandle { pc, value } => {
                write!(f, "pc {pc}: {value:#x} is not a map handle")
            }
            ExecError::BudgetExhausted { budget } => {
                write!(f, "instruction budget of {budget} exhausted")
            }
            ExecError::MalformedLdDw { pc } => write!(f, "pc {pc}: ld_dw missing second slot"),
        }
    }
}

impl std::error::Error for ExecError {}

/// The virtual machine.
///
/// A `Vm` is cheap to construct; all persistent state lives in the
/// [`MapRegistry`] passed to [`Vm::execute`].
///
/// # Examples
///
/// ```
/// use kscope_ebpf::asm::Asm;
/// use kscope_ebpf::insn::R0;
/// use kscope_ebpf::interp::{ExecEnv, Vm};
/// use kscope_ebpf::maps::MapRegistry;
///
/// let prog = Asm::new("ret42").mov64_imm(R0, 42).exit().assemble().unwrap();
/// let mut maps = MapRegistry::new();
/// let outcome = Vm::new()
///     .execute(&prog, &[], &mut maps, &mut ExecEnv::default())
///     .unwrap();
/// assert_eq!(outcome.ret, 42);
/// ```
#[derive(Debug, Clone)]
pub struct Vm {
    insn_budget: u64,
}

impl Default for Vm {
    fn default() -> Self {
        Vm::new()
    }
}

struct Memory<'a> {
    ctx: &'a [u8],
    stack: [u8; STACK_SIZE],
    maps: &'a mut MapRegistry,
    /// Live map-value slots: `(fd, key)` resolved on each access so writes
    /// land in the registry directly.
    slots: Vec<(MapFd, Vec<u8>)>,
}

impl Memory<'_> {
    fn read(&mut self, pc: usize, addr: u64, size: usize) -> Result<u64, ExecError> {
        let mut buf = [0u8; 8];
        self.read_bytes(pc, addr, &mut buf[..size])?;
        Ok(u64::from_le_bytes(buf))
    }

    fn read_bytes(&mut self, pc: usize, addr: u64, out: &mut [u8]) -> Result<(), ExecError> {
        let size = out.len();
        let fault = ExecError::BadMemAccess { pc, addr, size };
        if (CTX_BASE..STACK_BASE).contains(&addr) {
            let off = (addr - CTX_BASE) as usize;
            let end = off.checked_add(size).ok_or(fault.clone())?;
            if end > self.ctx.len() {
                return Err(fault);
            }
            out.copy_from_slice(&self.ctx[off..end]);
            Ok(())
        } else if (STACK_BASE..MAP_SLOT_BASE).contains(&addr) {
            let off = (addr - STACK_BASE) as usize;
            let end = off.checked_add(size).ok_or(fault.clone())?;
            if end > STACK_SIZE {
                return Err(fault);
            }
            out.copy_from_slice(&self.stack[off..end]);
            Ok(())
        } else if (MAP_SLOT_BASE..MAP_HANDLE_BASE).contains(&addr) {
            let (value, off) = self.slot_value(pc, addr)?;
            let end = off.checked_add(size).ok_or(fault.clone())?;
            if end > value.len() {
                return Err(fault);
            }
            out.copy_from_slice(&value[off..end]);
            Ok(())
        } else {
            Err(fault)
        }
    }

    fn write(&mut self, pc: usize, addr: u64, size: usize, value: u64) -> Result<(), ExecError> {
        let bytes = value.to_le_bytes();
        self.write_bytes(pc, addr, &bytes[..size])
    }

    fn write_bytes(&mut self, pc: usize, addr: u64, data: &[u8]) -> Result<(), ExecError> {
        let size = data.len();
        let fault = ExecError::BadMemAccess { pc, addr, size };
        if (STACK_BASE..MAP_SLOT_BASE).contains(&addr) {
            let off = (addr - STACK_BASE) as usize;
            let end = off.checked_add(size).ok_or(fault.clone())?;
            if end > STACK_SIZE {
                return Err(fault);
            }
            self.stack[off..end].copy_from_slice(data);
            Ok(())
        } else if (MAP_SLOT_BASE..MAP_HANDLE_BASE).contains(&addr) {
            let slot = ((addr - MAP_SLOT_BASE) / MAP_SLOT_STRIDE) as usize;
            let off = ((addr - MAP_SLOT_BASE) % MAP_SLOT_STRIDE) as usize;
            let (fd, key) = self
                .slots
                .get(slot)
                .cloned()
                .ok_or(fault.clone())?;
            let value = self
                .maps
                .lookup_mut(fd, &key)
                .ok()
                .flatten()
                .ok_or(fault.clone())?;
            let end = off.checked_add(size).ok_or(fault.clone())?;
            if end > value.len() {
                return Err(fault);
            }
            value[off..end].copy_from_slice(data);
            Ok(())
        } else {
            // The context is read-only; everything else is unmapped.
            Err(fault)
        }
    }

    fn slot_value(&mut self, pc: usize, addr: u64) -> Result<(Vec<u8>, usize), ExecError> {
        let slot = ((addr - MAP_SLOT_BASE) / MAP_SLOT_STRIDE) as usize;
        let off = ((addr - MAP_SLOT_BASE) % MAP_SLOT_STRIDE) as usize;
        let fault = ExecError::BadMemAccess { pc, addr, size: 0 };
        let (fd, key) = self.slots.get(slot).cloned().ok_or(fault.clone())?;
        let value = self
            .maps
            .lookup(fd, &key)
            .ok()
            .flatten()
            .ok_or(fault)?
            .to_vec();
        Ok((value, off))
    }
}

impl Vm {
    /// Creates a VM with the default instruction budget.
    pub fn new() -> Vm {
        Vm {
            insn_budget: DEFAULT_INSN_BUDGET,
        }
    }

    /// Overrides the per-invocation instruction budget.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero.
    pub fn with_insn_budget(budget: u64) -> Vm {
        assert!(budget > 0, "instruction budget must be positive");
        Vm {
            insn_budget: budget,
        }
    }

    /// Runs one invocation of `program`.
    ///
    /// `ctx` is the read-only context the program sees through `r1`;
    /// `env` supplies the clock/pid helpers. Map state persists in `maps`
    /// across invocations.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on memory faults, unknown opcodes/helpers, or
    /// budget exhaustion. Programs accepted by the
    /// [`Verifier`](crate::verifier::Verifier) never fault.
    pub fn execute(
        &self,
        program: &Program,
        ctx: &[u8],
        maps: &mut MapRegistry,
        env: &mut ExecEnv,
    ) -> Result<ExecOutcome, ExecError> {
        let insns = program.insns();
        let mut regs = [0u64; REG_COUNT];
        regs[1] = CTX_BASE;
        regs[10] = STACK_BASE + STACK_SIZE as u64;
        let mut mem = Memory {
            ctx,
            stack: [0; STACK_SIZE],
            maps,
            slots: Vec::new(),
        };
        let mut trace_output = Vec::new();
        let mut executed: u64 = 0;
        let mut pc: usize = 0;

        loop {
            if executed >= self.insn_budget {
                return Err(ExecError::BudgetExhausted {
                    budget: self.insn_budget,
                });
            }
            let Some(&insn) = insns.get(pc) else {
                return Err(ExecError::FellOffEnd);
            };
            executed += 1;

            match insn.class() {
                CLS_LD => {
                    if !insn.is_ld_dw() {
                        return Err(ExecError::BadOpcode { pc, code: insn.code });
                    }
                    let Some(&hi) = insns.get(pc + 1) else {
                        return Err(ExecError::MalformedLdDw { pc });
                    };
                    if insn.src == PSEUDO_MAP_FD {
                        regs[insn.dst as usize] = MAP_HANDLE_BASE | insn.imm as u32 as u64;
                    } else {
                        regs[insn.dst as usize] =
                            (insn.imm as u32 as u64) | ((hi.imm as u32 as u64) << 32);
                    }
                    pc += 2;
                    continue;
                }
                CLS_LDX => {
                    let addr = regs[insn.src as usize].wrapping_add(insn.off as i64 as u64);
                    regs[insn.dst as usize] = mem.read(pc, addr, insn.size_bytes())?;
                }
                CLS_STX => {
                    let addr = regs[insn.dst as usize].wrapping_add(insn.off as i64 as u64);
                    mem.write(pc, addr, insn.size_bytes(), regs[insn.src as usize])?;
                }
                CLS_ST => {
                    let addr = regs[insn.dst as usize].wrapping_add(insn.off as i64 as u64);
                    mem.write(pc, addr, insn.size_bytes(), insn.imm as i64 as u64)?;
                }
                CLS_ALU64 => {
                    let rhs = if insn.is_src_reg() {
                        regs[insn.src as usize]
                    } else {
                        insn.imm as i64 as u64
                    };
                    let dst = &mut regs[insn.dst as usize];
                    *dst = alu64(insn.op(), *dst, rhs).ok_or(ExecError::BadOpcode {
                        pc,
                        code: insn.code,
                    })?;
                }
                CLS_ALU => {
                    let rhs = if insn.is_src_reg() {
                        regs[insn.src as usize]
                    } else {
                        insn.imm as i64 as u64
                    };
                    let dst = &mut regs[insn.dst as usize];
                    *dst = alu32(insn.op(), *dst as u32, rhs as u32).ok_or(ExecError::BadOpcode {
                        pc,
                        code: insn.code,
                    })? as u64;
                }
                CLS_JMP | CLS_JMP32 => {
                    let is32 = insn.class() == CLS_JMP32;
                    let op = insn.op();
                    // exit/call/ja are JMP-class only.
                    if is32 && matches!(op, OP_EXIT | OP_CALL | OP_JA) {
                        return Err(ExecError::BadOpcode { pc, code: insn.code });
                    }
                    if op == OP_EXIT {
                        return Ok(ExecOutcome {
                            ret: regs[0],
                            insns_executed: executed,
                            trace_output,
                        });
                    }
                    if op == OP_CALL {
                        self.call_helper(pc, insn.imm, &mut regs, &mut mem, env, &mut trace_output)?;
                        pc += 1;
                        continue;
                    }
                    let mut rhs = if insn.is_src_reg() {
                        regs[insn.src as usize]
                    } else {
                        insn.imm as i64 as u64
                    };
                    let mut lhs = regs[insn.dst as usize];
                    if is32 {
                        // JMP32 compares the lower halves; signed variants
                        // sign-extend from 32 bits.
                        lhs = lhs as u32 as u64;
                        rhs = rhs as u32 as u64;
                    }
                    let (slhs, srhs) = if is32 {
                        (lhs as u32 as i32 as i64, rhs as u32 as i32 as i64)
                    } else {
                        (lhs as i64, rhs as i64)
                    };
                    let taken = match op {
                        OP_JA => true,
                        OP_JEQ => lhs == rhs,
                        OP_JNE => lhs != rhs,
                        OP_JGT => lhs > rhs,
                        OP_JGE => lhs >= rhs,
                        OP_JLT => lhs < rhs,
                        OP_JLE => lhs <= rhs,
                        OP_JSET => lhs & rhs != 0,
                        OP_JSGT => slhs > srhs,
                        OP_JSGE => slhs >= srhs,
                        OP_JSLT => slhs < srhs,
                        OP_JSLE => slhs <= srhs,
                        _ => return Err(ExecError::BadOpcode { pc, code: insn.code }),
                    };
                    if taken {
                        let target = pc as i64 + 1 + insn.off as i64;
                        if target < 0 || target as usize > insns.len() {
                            return Err(ExecError::BadJumpTarget { pc, target });
                        }
                        pc = target as usize;
                        continue;
                    }
                }
                _ => return Err(ExecError::BadOpcode { pc, code: insn.code }),
            }
            pc += 1;
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn call_helper(
        &self,
        pc: usize,
        id: i32,
        regs: &mut [u64; REG_COUNT],
        mem: &mut Memory<'_>,
        env: &mut ExecEnv,
        trace_output: &mut Vec<Vec<u8>>,
    ) -> Result<(), ExecError> {
        let helper = Helper::from_id(id).ok_or(ExecError::UnknownHelper { pc, id })?;
        let map_fd = |value: u64| -> Result<MapFd, ExecError> {
            if value & MAP_HANDLE_BASE == MAP_HANDLE_BASE {
                Ok(MapFd((value & 0xFFFF_FFFF) as u32))
            } else {
                Err(ExecError::NotAMapHandle { pc, value })
            }
        };
        let ret = match helper {
            Helper::KtimeGetNs => env.ktime_ns,
            Helper::GetCurrentPidTgid => env.pid_tgid,
            Helper::GetPrandomU32 => {
                // xorshift64*; low 32 bits returned, state advances.
                let mut x = env.prandom_state;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                env.prandom_state = x;
                (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32) as u32 as u64
            }
            Helper::MapLookupElem => {
                let fd = map_fd(regs[1])?;
                let key_size = mem
                    .maps
                    .def(fd)
                    .map_err(|_| ExecError::NotAMapHandle { pc, value: regs[1] })?
                    .key_size as usize;
                let mut key = vec![0u8; key_size];
                mem.read_bytes(pc, regs[2], &mut key)?;
                match mem.maps.lookup(fd, &key) {
                    Ok(Some(_)) => {
                        let slot = mem.slots.len() as u64;
                        mem.slots.push((fd, key));
                        MAP_SLOT_BASE + slot * MAP_SLOT_STRIDE
                    }
                    _ => 0,
                }
            }
            Helper::MapUpdateElem => {
                let fd = map_fd(regs[1])?;
                let def = mem
                    .maps
                    .def(fd)
                    .map_err(|_| ExecError::NotAMapHandle { pc, value: regs[1] })?;
                let mut key = vec![0u8; def.key_size as usize];
                mem.read_bytes(pc, regs[2], &mut key)?;
                let mut value = vec![0u8; def.value_size as usize];
                mem.read_bytes(pc, regs[3], &mut value)?;
                match mem.maps.update(fd, &key, &value) {
                    Ok(()) => 0,
                    Err(_) => (-1i64) as u64,
                }
            }
            Helper::MapDeleteElem => {
                let fd = map_fd(regs[1])?;
                let key_size = mem
                    .maps
                    .def(fd)
                    .map_err(|_| ExecError::NotAMapHandle { pc, value: regs[1] })?
                    .key_size as usize;
                let mut key = vec![0u8; key_size];
                mem.read_bytes(pc, regs[2], &mut key)?;
                match mem.maps.delete(fd, &key) {
                    Ok(true) => 0,
                    _ => (-2i64) as u64, // -ENOENT
                }
            }
            Helper::TracePrintk => {
                let len = (regs[2] as usize).min(512);
                let mut buf = vec![0u8; len];
                mem.read_bytes(pc, regs[1], &mut buf)?;
                trace_output.push(buf);
                0
            }
            Helper::RingbufOutput => {
                let fd = map_fd(regs[1])?;
                let len = regs[3] as usize;
                let mut buf = vec![0u8; len];
                mem.read_bytes(pc, regs[2], &mut buf)?;
                match mem.maps.ring_push(fd, &buf) {
                    Ok(true) => 0,
                    _ => (-1i64) as u64,
                }
            }
        };
        regs[0] = ret;
        // Caller-saved registers are clobbered, as on real hardware; use a
        // recognizable poison value to surface verifier escapes early.
        for reg in &mut regs[1..=5] {
            *reg = 0xDEAD_BEEF_DEAD_BEEF;
        }
        regs[0] = ret;
        Ok(())
    }
}

fn alu64(op: u8, a: u64, b: u64) -> Option<u64> {
    Some(match op {
        OP_ADD => a.wrapping_add(b),
        OP_SUB => a.wrapping_sub(b),
        OP_MUL => a.wrapping_mul(b),
        OP_DIV => a.checked_div(b).unwrap_or(0),
        OP_MOD => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
        OP_OR => a | b,
        OP_AND => a & b,
        OP_XOR => a ^ b,
        OP_LSH => a.wrapping_shl(b as u32 & 63),
        OP_RSH => a.wrapping_shr(b as u32 & 63),
        OP_ARSH => ((a as i64).wrapping_shr(b as u32 & 63)) as u64,
        OP_MOV => b,
        OP_NEG => (a as i64).wrapping_neg() as u64,
        _ => return None,
    })
}

fn alu32(op: u8, a: u32, b: u32) -> Option<u32> {
    Some(match op {
        OP_ADD => a.wrapping_add(b),
        OP_SUB => a.wrapping_sub(b),
        OP_MUL => a.wrapping_mul(b),
        OP_DIV => a.checked_div(b).unwrap_or(0),
        OP_MOD => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
        OP_OR => a | b,
        OP_AND => a & b,
        OP_XOR => a ^ b,
        OP_LSH => a.wrapping_shl(b & 31),
        OP_RSH => a.wrapping_shr(b & 31),
        OP_ARSH => ((a as i32).wrapping_shr(b & 31)) as u32,
        OP_MOV => b,
        OP_NEG => (a as i32).wrapping_neg() as u32,
        _ => return None,
    })
}
