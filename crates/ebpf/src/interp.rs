//! The eBPF bytecode interpreter.
//!
//! Executes one program invocation against a read-only context buffer, a
//! 512-byte stack, and the shared [`MapRegistry`]. Pointers are modeled as
//! tagged 64-bit addresses in disjoint regions (context, stack, map-value
//! slots), so a verified program behaves exactly as its abstract model
//! predicts, and an unverified program faults with a descriptive
//! [`ExecError`] instead of corrupting memory.
//!
//! # Two dispatch paths, one semantics
//!
//! The default step loop dispatches on the [`Decoded`] representation the
//! [`Program`] pre-computes at construction time — opcode fields, sign
//! extensions, `ld_dw` fusion, helper identities, and jump targets are all
//! resolved once instead of on every executed instruction. The original
//! raw-word loop is retained behind [`Vm::with_raw_dispatch`] as the
//! reference semantics; the testkit's differential suite holds the two to
//! byte-identical [`ExecOutcome`]s over thousands of programs.
//!
//! # Allocation discipline
//!
//! The per-event probe path (`map_lookup_elem` / `map_update_elem` /
//! `map_delete_elem` and all loads/stores) performs no heap allocation:
//! helper keys live in fixed stack buffers, helper values go through a
//! scratch buffer owned by the [`Vm`] and reused across invocations, and
//! map-value slot accesses borrow straight from the registry. The repo
//! lint gate enforces this file stays free of `to_vec()`/`clone()` outside
//! annotated cold paths.

use crate::decode::{AluOp, CmpOp, Decoded};
use crate::helpers::Helper;
use crate::insn::{
    CLS_ALU, CLS_ALU64, CLS_JMP, CLS_JMP32, CLS_LD, CLS_LDX, CLS_ST, CLS_STX, OP_CALL, OP_EXIT,
    OP_JA, PSEUDO_MAP_FD, REG_COUNT, STACK_SIZE,
};
use crate::mapindex::SlotEntry;
use crate::maps::{MapFd, MapRegistry, MAX_KEY_SIZE};
use crate::program::Program;

/// Base address of the read-only context region.
pub(crate) const CTX_BASE: u64 = 0x1000_0000_0000;
/// Base address of the stack region; `r10` points at `STACK_BASE + 512`.
pub(crate) const STACK_BASE: u64 = 0x2000_0000_0000;
/// Base address of map-value slots handed out by `map_lookup_elem`.
pub(crate) const MAP_SLOT_BASE: u64 = 0x3000_0000_0000;
/// Stride between map-value slots (bounds the value size).
pub(crate) const MAP_SLOT_STRIDE: u64 = 1 << 20;
/// Tag marking a register value as a map handle (`ld_map_fd` result).
pub(crate) const MAP_HANDLE_BASE: u64 = 0x4000_0000_0000;
/// Default cap on executed instructions per invocation.
pub const DEFAULT_INSN_BUDGET: u64 = 1 << 20;

/// Per-invocation inputs for the stateful helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecEnv {
    /// Value returned by `bpf_ktime_get_ns`.
    pub ktime_ns: u64,
    /// Value returned by `bpf_get_current_pid_tgid`.
    pub pid_tgid: u64,
    /// Seed/state for `bpf_get_prandom_u32` (advanced on each call).
    pub prandom_state: u64,
}

impl Default for ExecEnv {
    fn default() -> Self {
        ExecEnv {
            ktime_ns: 0,
            pid_tgid: 0,
            prandom_state: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

/// Successful invocation result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecOutcome {
    /// The program's return value (`r0` at `exit`).
    pub ret: u64,
    /// Number of instructions executed — the runtime cost proxy the kernel
    /// simulator converts into probe overhead time.
    pub insns_executed: u64,
    /// Raw byte payloads passed to `bpf_trace_printk`.
    pub trace_output: Vec<Vec<u8>>,
}

/// Runtime faults (unreachable for verified programs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Memory access outside any region or across a region boundary.
    BadMemAccess {
        /// Faulting pc.
        pc: usize,
        /// Faulting address.
        addr: u64,
        /// Access size.
        size: usize,
    },
    /// Unknown or malformed opcode.
    BadOpcode {
        /// Faulting pc.
        pc: usize,
        /// Opcode byte.
        code: u8,
    },
    /// Jump landed outside the program.
    BadJumpTarget {
        /// Faulting pc.
        pc: usize,
        /// Target pc.
        target: i64,
    },
    /// Execution ran past the last instruction.
    FellOffEnd,
    /// `call` with an unknown helper id.
    UnknownHelper {
        /// Faulting pc.
        pc: usize,
        /// Helper id.
        id: i32,
    },
    /// A helper was passed a value that is not a map handle.
    NotAMapHandle {
        /// Faulting pc.
        pc: usize,
        /// The offending register value.
        value: u64,
    },
    /// The instruction budget was exhausted (runaway program).
    BudgetExhausted {
        /// The budget that was exceeded.
        budget: u64,
    },
    /// `ld_dw` missing its second slot.
    MalformedLdDw {
        /// Faulting pc.
        pc: usize,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::BadMemAccess { pc, addr, size } => {
                write!(f, "pc {pc}: bad memory access at {addr:#x} size {size}")
            }
            ExecError::BadOpcode { pc, code } => write!(f, "pc {pc}: bad opcode {code:#04x}"),
            ExecError::BadJumpTarget { pc, target } => {
                write!(f, "pc {pc}: jump to invalid target {target}")
            }
            ExecError::FellOffEnd => f.write_str("execution fell off the end of the program"),
            ExecError::UnknownHelper { pc, id } => write!(f, "pc {pc}: unknown helper {id}"),
            ExecError::NotAMapHandle { pc, value } => {
                write!(f, "pc {pc}: {value:#x} is not a map handle")
            }
            ExecError::BudgetExhausted { budget } => {
                write!(f, "instruction budget of {budget} exhausted")
            }
            ExecError::MalformedLdDw { pc } => write!(f, "pc {pc}: ld_dw missing second slot"),
        }
    }
}

impl std::error::Error for ExecError {}

/// The virtual machine.
///
/// A `Vm` is cheap to construct; all persistent *map* state lives in the
/// [`MapRegistry`] passed to [`Vm::execute`]. The `Vm` itself owns only
/// reusable execution buffers (live map-slot table, helper scratch), so
/// keeping one `Vm` alive across invocations — as the kernel-simulation
/// backends do — makes the per-event path allocation-free.
///
/// # Examples
///
/// ```
/// use kscope_ebpf::asm::Asm;
/// use kscope_ebpf::insn::R0;
/// use kscope_ebpf::interp::{ExecEnv, Vm};
/// use kscope_ebpf::maps::MapRegistry;
///
/// let prog = Asm::new("ret42").mov64_imm(R0, 42).exit().assemble().unwrap();
/// let mut maps = MapRegistry::new();
/// let outcome = Vm::new()
///     .execute(&prog, &[], &mut maps, &mut ExecEnv::default())
///     .unwrap();
/// assert_eq!(outcome.ret, 42);
/// ```
#[derive(Debug, Clone)]
pub struct Vm {
    insn_budget: u64,
    /// Which executor steps the program.
    dispatch: Dispatch,
    /// Run [`Program::optimized`] streams instead of the originals
    /// (identical observable behavior, fewer executed instructions).
    optimize: bool,
    /// Live map-value slots handed out by `map_lookup_elem`, reset per
    /// invocation; owned here so repeated invocations reuse the storage.
    /// `#[repr(C)]` entries because the JIT's inline lookup fast path
    /// appends to this vector directly (within its reserved capacity).
    slots: Vec<SlotEntry>,
    /// Reusable buffer for helper value transfers (`map_update_elem`
    /// payloads, ring-buffer records).
    scratch: Vec<u8>,
}

/// Executor selection. All three produce byte-identical [`ExecOutcome`]s;
/// they differ only in speed (raw < decoded < JIT).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dispatch {
    /// Re-decode every raw instruction word per step (reference).
    Raw,
    /// Dispatch on the pre-decoded representation (default).
    Decoded,
    /// Native code compiled by [`crate::jit`], falling back to `Decoded`
    /// when the program or platform is unsupported.
    Jit {
        /// Elide bounds checks the verifier proved redundant.
        elide: bool,
    },
}

impl Default for Vm {
    fn default() -> Self {
        Vm::new()
    }
}

/// The interpreter's view of memory: the regions registers may point into.
///
/// `pub(crate)` so the JIT's trampolines execute loads, stores, and helper
/// calls through the exact same code paths (and therefore the exact same
/// fault shapes) as the interpreter.
pub(crate) struct Memory<'a> {
    pub(crate) ctx: &'a [u8],
    pub(crate) stack: [u8; STACK_SIZE],
    pub(crate) maps: &'a mut MapRegistry,
    /// Live map-value slots: `(fd, key)` resolved on each access so writes
    /// land in the registry directly.
    pub(crate) slots: &'a mut Vec<SlotEntry>,
}

impl Memory<'_> {
    pub(crate) fn read(&mut self, pc: usize, addr: u64, size: usize) -> Result<u64, ExecError> {
        let mut buf = [0u8; 8];
        self.read_bytes(pc, addr, &mut buf[..size])?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Read for an access the verifier proved lands in a map value: skips
    /// the region dispatch but keeps slot resolution (a looked-up value
    /// may since have been deleted) with identical fault shapes.
    pub(crate) fn read_map_value(
        &mut self,
        pc: usize,
        addr: u64,
        size: usize,
    ) -> Result<u64, ExecError> {
        let mut buf = [0u8; 8];
        let bad = |size: usize| ExecError::BadMemAccess { pc, addr, size };
        let slot = ((addr - MAP_SLOT_BASE) / MAP_SLOT_STRIDE) as usize;
        let off = ((addr - MAP_SLOT_BASE) % MAP_SLOT_STRIDE) as usize;
        let entry = *self.slots.get(slot).ok_or_else(|| bad(0))?;
        let value = self
            .maps
            .lookup(MapFd(entry.fd), entry.key_bytes())
            .ok()
            .flatten()
            .ok_or_else(|| bad(0))?;
        let end = off.checked_add(size).ok_or_else(|| bad(size))?;
        if end > value.len() {
            return Err(bad(size));
        }
        buf[..size].copy_from_slice(&value[off..end]);
        Ok(u64::from_le_bytes(buf))
    }

    /// Write counterpart of [`Memory::read_map_value`].
    pub(crate) fn write_map_value(
        &mut self,
        pc: usize,
        addr: u64,
        size: usize,
        value: u64,
    ) -> Result<(), ExecError> {
        let bytes = value.to_le_bytes();
        let bad = || ExecError::BadMemAccess { pc, addr, size };
        let slot = ((addr - MAP_SLOT_BASE) / MAP_SLOT_STRIDE) as usize;
        let off = ((addr - MAP_SLOT_BASE) % MAP_SLOT_STRIDE) as usize;
        let entry = *self.slots.get(slot).ok_or_else(bad)?;
        let dest = self
            .maps
            .lookup_mut(MapFd(entry.fd), entry.key_bytes())
            .ok()
            .flatten()
            .ok_or_else(bad)?;
        let end = off.checked_add(size).ok_or_else(bad)?;
        if end > dest.len() {
            return Err(bad());
        }
        dest[off..end].copy_from_slice(&bytes[..size]);
        Ok(())
    }

    pub(crate) fn read_bytes(
        &mut self,
        pc: usize,
        addr: u64,
        out: &mut [u8],
    ) -> Result<(), ExecError> {
        let size = out.len();
        let bad = |size: usize| ExecError::BadMemAccess { pc, addr, size };
        if (CTX_BASE..STACK_BASE).contains(&addr) {
            let off = (addr - CTX_BASE) as usize;
            let end = off.checked_add(size).ok_or_else(|| bad(size))?;
            if end > self.ctx.len() {
                return Err(bad(size));
            }
            out.copy_from_slice(&self.ctx[off..end]);
            Ok(())
        } else if (STACK_BASE..MAP_SLOT_BASE).contains(&addr) {
            let off = (addr - STACK_BASE) as usize;
            let end = off.checked_add(size).ok_or_else(|| bad(size))?;
            if end > STACK_SIZE {
                return Err(bad(size));
            }
            out.copy_from_slice(&self.stack[off..end]);
            Ok(())
        } else if (MAP_SLOT_BASE..MAP_HANDLE_BASE).contains(&addr) {
            let slot = ((addr - MAP_SLOT_BASE) / MAP_SLOT_STRIDE) as usize;
            let off = ((addr - MAP_SLOT_BASE) % MAP_SLOT_STRIDE) as usize;
            // Slot-resolution failures report size 0: the access never
            // reached a concrete value (historical fault shape, relied on
            // by golden error fixtures).
            let entry = *self.slots.get(slot).ok_or_else(|| bad(0))?;
            let value = self
                .maps
                .lookup(MapFd(entry.fd), entry.key_bytes())
                .ok()
                .flatten()
                .ok_or_else(|| bad(0))?;
            let end = off.checked_add(size).ok_or_else(|| bad(size))?;
            if end > value.len() {
                return Err(bad(size));
            }
            out.copy_from_slice(&value[off..end]);
            Ok(())
        } else {
            Err(bad(size))
        }
    }

    pub(crate) fn write(
        &mut self,
        pc: usize,
        addr: u64,
        size: usize,
        value: u64,
    ) -> Result<(), ExecError> {
        let bytes = value.to_le_bytes();
        self.write_bytes(pc, addr, &bytes[..size])
    }

    pub(crate) fn write_bytes(
        &mut self,
        pc: usize,
        addr: u64,
        data: &[u8],
    ) -> Result<(), ExecError> {
        let size = data.len();
        let bad = || ExecError::BadMemAccess { pc, addr, size };
        if (STACK_BASE..MAP_SLOT_BASE).contains(&addr) {
            let off = (addr - STACK_BASE) as usize;
            let end = off.checked_add(size).ok_or_else(bad)?;
            if end > STACK_SIZE {
                return Err(bad());
            }
            self.stack[off..end].copy_from_slice(data);
            Ok(())
        } else if (MAP_SLOT_BASE..MAP_HANDLE_BASE).contains(&addr) {
            let slot = ((addr - MAP_SLOT_BASE) / MAP_SLOT_STRIDE) as usize;
            let off = ((addr - MAP_SLOT_BASE) % MAP_SLOT_STRIDE) as usize;
            let entry = *self.slots.get(slot).ok_or_else(bad)?;
            let value = self
                .maps
                .lookup_mut(MapFd(entry.fd), entry.key_bytes())
                .ok()
                .flatten()
                .ok_or_else(bad)?;
            let end = off.checked_add(size).ok_or_else(bad)?;
            if end > value.len() {
                return Err(bad());
            }
            value[off..end].copy_from_slice(data);
            Ok(())
        } else {
            // The context is read-only; everything else is unmapped.
            Err(bad())
        }
    }
}

impl Vm {
    /// Creates a VM with the default instruction budget and pre-decoded
    /// dispatch.
    pub fn new() -> Vm {
        Vm {
            insn_budget: DEFAULT_INSN_BUDGET,
            dispatch: Dispatch::Decoded,
            optimize: false,
            slots: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Overrides the per-invocation instruction budget.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero.
    pub fn with_insn_budget(budget: u64) -> Vm {
        assert!(budget > 0, "instruction budget must be positive");
        Vm {
            insn_budget: budget,
            ..Vm::new()
        }
    }

    /// Switches this VM to the raw-instruction-word reference executor.
    ///
    /// The raw loop re-extracts every opcode field on each step; it exists
    /// as the reference semantics the pre-decoded path is differentially
    /// tested against, and for debugging suspected decode bugs.
    pub fn with_raw_dispatch(mut self) -> Vm {
        self.dispatch = Dispatch::Raw;
        self
    }

    /// Switches this VM to JIT-compiled native code (with verifier-proof
    /// bounds-check elision), falling back to the decoded interpreter for
    /// programs or platforms the JIT declines — so opting in never
    /// changes behavior, only speed.
    pub fn with_jit(mut self) -> Vm {
        self.dispatch = Dispatch::Jit { elide: true };
        self
    }

    /// Keeps every runtime bounds check in JIT-compiled code, even those
    /// the verifier proved redundant. No effect on the interpreter paths.
    pub fn without_bounds_elision(mut self) -> Vm {
        if let Dispatch::Jit { elide } = &mut self.dispatch {
            *elide = false;
        }
        self
    }

    /// Runs each program's statically optimized form
    /// ([`Program::optimized`]) instead of the original stream. The
    /// optimizer is semantics-preserving (held by the four-way
    /// differential suite), so opting in never changes observable
    /// behavior — only the instruction count. Programs the optimizer
    /// declines run unmodified. Composes with [`Vm::with_jit`]: the
    /// optimized stream is what gets compiled.
    pub fn with_optimizer(mut self) -> Vm {
        self.optimize = true;
        self
    }

    /// True when this VM executes optimized program streams.
    pub fn uses_optimizer(&self) -> bool {
        self.optimize
    }

    /// True when this VM dispatches on the pre-decoded representation
    /// (directly, or as the JIT's fallback).
    pub fn uses_predecode(&self) -> bool {
        self.dispatch != Dispatch::Raw
    }

    /// True when this VM attempts JIT execution.
    pub fn uses_jit(&self) -> bool {
        matches!(self.dispatch, Dispatch::Jit { .. })
    }

    /// Runs one invocation of `program`.
    ///
    /// `ctx` is the read-only context the program sees through `r1`;
    /// `env` supplies the clock/pid helpers. Map state persists in `maps`
    /// across invocations.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on memory faults, unknown opcodes/helpers, or
    /// budget exhaustion. Programs accepted by the
    /// [`Verifier`](crate::verifier::Verifier) never fault.
    pub fn execute(
        &mut self,
        program: &Program,
        ctx: &[u8],
        maps: &mut MapRegistry,
        env: &mut ExecEnv,
    ) -> Result<ExecOutcome, ExecError> {
        self.slots.clear();
        if self.slots.capacity() < 64 {
            // One-time growth: the JIT's inline lookup fast path appends
            // into spare capacity and must never be the first to allocate.
            self.slots.reserve(64 - self.slots.capacity());
        }
        let Vm {
            insn_budget,
            dispatch,
            optimize,
            slots,
            scratch,
        } = self;
        let program = if *optimize {
            program
                .optimized()
                .map(|(p, _)| p)
                .unwrap_or(program)
        } else {
            program
        };
        let mut mem = Memory {
            ctx,
            stack: [0; STACK_SIZE],
            maps,
            slots,
        };
        match *dispatch {
            Dispatch::Raw => run_raw(*insn_budget, program, &mut mem, scratch, env),
            Dispatch::Decoded => run_decoded(*insn_budget, program, &mut mem, scratch, env),
            Dispatch::Jit { elide } => {
                // Compile lazily (cached on the Program). Elided code is
                // only sound when the runtime context is at least as long
                // as the one the program was verified against; otherwise
                // use the fully-checked compilation.
                let jit = match program.jit_for(elide) {
                    Some(j) if elide && ctx.len() < j.min_ctx_len() => program.jit_for(false),
                    other => other,
                };
                match jit {
                    Some(j) => crate::jit::run(j, *insn_budget, &mut mem, scratch, env),
                    // Unsupported program or platform: graceful fallback.
                    None => run_decoded(*insn_budget, program, &mut mem, scratch, env),
                }
            }
        }
    }
}

/// The hot step loop: dispatch on the pre-decoded representation.
fn run_decoded(
    budget: u64,
    program: &Program,
    mem: &mut Memory<'_>,
    scratch: &mut Vec<u8>,
    env: &mut ExecEnv,
) -> Result<ExecOutcome, ExecError> {
    let code = program.decoded();
    // Hoisted: `mem` is mutably borrowed across the loop, so reloading
    // `code.len()` on every taken branch is not optimized away for free.
    let code_len = code.len();
    let mut regs = [0u64; REG_COUNT];
    regs[1] = CTX_BASE;
    regs[10] = STACK_BASE + STACK_SIZE as u64;
    let mut trace_output = Vec::new();
    // Count the budget down instead of up: the hot-loop guard becomes a
    // test against zero (no second live `budget` operand), and
    // `insns_executed` is recovered on exit.
    let mut remaining: u64 = budget;
    let mut pc: usize = 0;

    loop {
        if remaining == 0 {
            return Err(ExecError::BudgetExhausted { budget });
        }
        let Some(&step) = code.get(pc) else {
            return Err(ExecError::FellOffEnd);
        };
        remaining -= 1;

        match step {
            Decoded::LdImm64 { dst, value } => {
                regs[dst as usize] = value;
                pc += 2;
                continue;
            }
            Decoded::Load { size, dst, src, off } => {
                let addr = regs[src as usize].wrapping_add(off as i64 as u64);
                regs[dst as usize] = mem.read(pc, addr, size as usize)?;
            }
            Decoded::StoreReg { size, dst, src, off } => {
                let addr = regs[dst as usize].wrapping_add(off as i64 as u64);
                mem.write(pc, addr, size as usize, regs[src as usize])?;
            }
            Decoded::StoreImm { size, dst, off, imm } => {
                let addr = regs[dst as usize].wrapping_add(off as i64 as u64);
                mem.write(pc, addr, size as usize, imm)?;
            }
            Decoded::Alu64Imm { op, dst, imm } => {
                let dst = &mut regs[dst as usize];
                *dst = exec_alu64(op, *dst, imm);
            }
            Decoded::Alu64Reg { op, dst, src } => {
                let rhs = regs[src as usize];
                let dst = &mut regs[dst as usize];
                *dst = exec_alu64(op, *dst, rhs);
            }
            Decoded::Alu32Imm { op, dst, imm } => {
                let dst = &mut regs[dst as usize];
                *dst = exec_alu32(op, *dst as u32, imm) as u64;
            }
            Decoded::Alu32Reg { op, dst, src } => {
                let rhs = regs[src as usize] as u32;
                let dst = &mut regs[dst as usize];
                *dst = exec_alu32(op, *dst as u32, rhs) as u64;
            }
            Decoded::Ja { target } => {
                if target < 0 || target as usize > code_len {
                    return Err(ExecError::BadJumpTarget { pc, target });
                }
                pc = target as usize;
                continue;
            }
            Decoded::JmpImm {
                op,
                w32,
                dst,
                rhs,
                target,
            } => {
                if take_branch(op, w32, regs[dst as usize], rhs) {
                    if target < 0 || target as usize > code_len {
                        return Err(ExecError::BadJumpTarget { pc, target });
                    }
                    pc = target as usize;
                    continue;
                }
            }
            Decoded::JmpReg {
                op,
                w32,
                dst,
                src,
                target,
            } => {
                if take_branch(op, w32, regs[dst as usize], regs[src as usize]) {
                    if target < 0 || target as usize > code_len {
                        return Err(ExecError::BadJumpTarget { pc, target });
                    }
                    pc = target as usize;
                    continue;
                }
            }
            Decoded::Call { helper } => {
                call_helper(pc, helper, &mut regs, mem, scratch, env, &mut trace_output)?;
            }
            Decoded::Exit => {
                return Ok(ExecOutcome {
                    ret: regs[0],
                    insns_executed: budget - remaining,
                    trace_output,
                });
            }
            Decoded::UnknownHelper { id } => return Err(ExecError::UnknownHelper { pc, id }),
            Decoded::BadOpcode { code } => return Err(ExecError::BadOpcode { pc, code }),
            Decoded::MalformedLdDw => return Err(ExecError::MalformedLdDw { pc }),
        }
        pc += 1;
    }
}

/// The reference step loop: re-decode every raw instruction word on each
/// step. Kept verbatim from the original interpreter as the semantics the
/// decoded path must match byte for byte.
fn run_raw(
    budget: u64,
    program: &Program,
    mem: &mut Memory<'_>,
    scratch: &mut Vec<u8>,
    env: &mut ExecEnv,
) -> Result<ExecOutcome, ExecError> {
    let insns = program.insns();
    let mut regs = [0u64; REG_COUNT];
    regs[1] = CTX_BASE;
    regs[10] = STACK_BASE + STACK_SIZE as u64;
    let mut trace_output = Vec::new();
    let mut executed: u64 = 0;
    let mut pc: usize = 0;

    loop {
        if executed >= budget {
            return Err(ExecError::BudgetExhausted { budget });
        }
        let Some(&insn) = insns.get(pc) else {
            return Err(ExecError::FellOffEnd);
        };
        executed += 1;

        match insn.class() {
            CLS_LD => {
                if !insn.is_ld_dw() {
                    return Err(ExecError::BadOpcode { pc, code: insn.code });
                }
                let Some(&hi) = insns.get(pc + 1) else {
                    return Err(ExecError::MalformedLdDw { pc });
                };
                if insn.src == PSEUDO_MAP_FD {
                    regs[insn.dst as usize] = MAP_HANDLE_BASE | insn.imm as u32 as u64;
                } else {
                    regs[insn.dst as usize] =
                        (insn.imm as u32 as u64) | ((hi.imm as u32 as u64) << 32);
                }
                pc += 2;
                continue;
            }
            CLS_LDX => {
                let addr = regs[insn.src as usize].wrapping_add(insn.off as i64 as u64);
                regs[insn.dst as usize] = mem.read(pc, addr, insn.size_bytes())?;
            }
            CLS_STX => {
                let addr = regs[insn.dst as usize].wrapping_add(insn.off as i64 as u64);
                mem.write(pc, addr, insn.size_bytes(), regs[insn.src as usize])?;
            }
            CLS_ST => {
                let addr = regs[insn.dst as usize].wrapping_add(insn.off as i64 as u64);
                mem.write(pc, addr, insn.size_bytes(), insn.imm as i64 as u64)?;
            }
            CLS_ALU64 => {
                let rhs = if insn.is_src_reg() {
                    regs[insn.src as usize]
                } else {
                    insn.imm as i64 as u64
                };
                let op = AluOp::from_bits(insn.op()).ok_or(ExecError::BadOpcode {
                    pc,
                    code: insn.code,
                })?;
                let dst = &mut regs[insn.dst as usize];
                *dst = exec_alu64(op, *dst, rhs);
            }
            CLS_ALU => {
                let rhs = if insn.is_src_reg() {
                    regs[insn.src as usize]
                } else {
                    insn.imm as i64 as u64
                };
                let op = AluOp::from_bits(insn.op()).ok_or(ExecError::BadOpcode {
                    pc,
                    code: insn.code,
                })?;
                let dst = &mut regs[insn.dst as usize];
                *dst = exec_alu32(op, *dst as u32, rhs as u32) as u64;
            }
            CLS_JMP | CLS_JMP32 => {
                let is32 = insn.class() == CLS_JMP32;
                let op = insn.op();
                // exit/call/ja are JMP-class only.
                if is32 && matches!(op, OP_EXIT | OP_CALL | OP_JA) {
                    return Err(ExecError::BadOpcode { pc, code: insn.code });
                }
                if op == OP_EXIT {
                    return Ok(ExecOutcome {
                        ret: regs[0],
                        insns_executed: executed,
                        trace_output,
                    });
                }
                if op == OP_CALL {
                    let helper = Helper::from_id(insn.imm)
                        .ok_or(ExecError::UnknownHelper { pc, id: insn.imm })?;
                    call_helper(pc, helper, &mut regs, mem, scratch, env, &mut trace_output)?;
                    pc += 1;
                    continue;
                }
                let rhs = if insn.is_src_reg() {
                    regs[insn.src as usize]
                } else {
                    insn.imm as i64 as u64
                };
                let lhs = regs[insn.dst as usize];
                let taken = if op == OP_JA {
                    true
                } else {
                    let op = CmpOp::from_bits(op).ok_or(ExecError::BadOpcode {
                        pc,
                        code: insn.code,
                    })?;
                    take_branch(op, is32, lhs, rhs)
                };
                if taken {
                    let target = pc as i64 + 1 + insn.off as i64;
                    if target < 0 || target as usize > insns.len() {
                        return Err(ExecError::BadJumpTarget { pc, target });
                    }
                    pc = target as usize;
                    continue;
                }
            }
            _ => return Err(ExecError::BadOpcode { pc, code: insn.code }),
        }
        pc += 1;
    }
}

/// Shared helper-call implementation for both dispatch paths.
///
/// Keys are read into a fixed stack buffer (map creation caps hash keys at
/// [`MAX_KEY_SIZE`]); value payloads go through the `Vm`-owned `scratch`
/// buffer, so in steady state no helper on the probe path allocates.
#[allow(clippy::too_many_arguments)]
pub(crate) fn call_helper(
    pc: usize,
    helper: Helper,
    regs: &mut [u64; REG_COUNT],
    mem: &mut Memory<'_>,
    scratch: &mut Vec<u8>,
    env: &mut ExecEnv,
    trace_output: &mut Vec<Vec<u8>>,
) -> Result<(), ExecError> {
    let map_fd = |value: u64| -> Result<MapFd, ExecError> {
        if value & MAP_HANDLE_BASE == MAP_HANDLE_BASE {
            Ok(MapFd((value & 0xFFFF_FFFF) as u32))
        } else {
            Err(ExecError::NotAMapHandle { pc, value })
        }
    };
    let ret = match helper {
        Helper::KtimeGetNs => env.ktime_ns,
        Helper::GetCurrentPidTgid => env.pid_tgid,
        Helper::GetPrandomU32 => {
            // xorshift64*; low 32 bits returned, state advances.
            let mut x = env.prandom_state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            env.prandom_state = x;
            (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32) as u32 as u64
        }
        Helper::MapLookupElem => {
            let fd = map_fd(regs[1])?;
            let key_size = mem
                .maps
                .def(fd)
                .map_err(|_| ExecError::NotAMapHandle { pc, value: regs[1] })?
                .key_size as usize;
            let mut key_buf = [0u8; MAX_KEY_SIZE];
            let key = &mut key_buf[..key_size];
            mem.read_bytes(pc, regs[2], key)?;
            match mem.maps.lookup(fd, key) {
                Ok(Some(_)) => {
                    let slot = mem.slots.len() as u64;
                    mem.slots.push(SlotEntry::new(fd.0, key));
                    MAP_SLOT_BASE + slot * MAP_SLOT_STRIDE
                }
                _ => 0,
            }
        }
        Helper::MapUpdateElem => {
            let fd = map_fd(regs[1])?;
            let def = mem
                .maps
                .def(fd)
                .map_err(|_| ExecError::NotAMapHandle { pc, value: regs[1] })?;
            let mut key_buf = [0u8; MAX_KEY_SIZE];
            let key = &mut key_buf[..def.key_size as usize];
            mem.read_bytes(pc, regs[2], key)?;
            let mut value = std::mem::take(scratch);
            value.clear();
            value.resize(def.value_size as usize, 0);
            let read = mem.read_bytes(pc, regs[3], &mut value);
            let ret = match read {
                Ok(()) => match mem.maps.update_in_place(fd, key, &value) {
                    Ok(()) => 0,
                    Err(_) => (-1i64) as u64,
                },
                Err(fault) => {
                    *scratch = value;
                    return Err(fault);
                }
            };
            *scratch = value;
            ret
        }
        Helper::MapDeleteElem => {
            let fd = map_fd(regs[1])?;
            let key_size = mem
                .maps
                .def(fd)
                .map_err(|_| ExecError::NotAMapHandle { pc, value: regs[1] })?
                .key_size as usize;
            let mut key_buf = [0u8; MAX_KEY_SIZE];
            let key = &mut key_buf[..key_size];
            mem.read_bytes(pc, regs[2], key)?;
            match mem.maps.delete(fd, key) {
                Ok(true) => 0,
                _ => (-2i64) as u64, // -ENOENT
            }
        }
        Helper::TracePrintk => {
            let len = (regs[2] as usize).min(512);
            let mut buf = vec![0u8; len];
            mem.read_bytes(pc, regs[1], &mut buf)?;
            trace_output.push(buf);
            0
        }
        Helper::SketchUpdate => {
            let fd = map_fd(regs[1])?;
            let key_size = mem
                .maps
                .def(fd)
                .map_err(|_| ExecError::NotAMapHandle { pc, value: regs[1] })?
                .key_size as usize;
            let mut key_buf = [0u8; MAX_KEY_SIZE];
            let key = &mut key_buf[..key_size];
            mem.read_bytes(pc, regs[2], key)?;
            match mem.maps.sketch_update(fd, key, regs[3]) {
                Ok(()) => 0,
                Err(_) => (-1i64) as u64,
            }
        }
        Helper::RingbufOutput => {
            let fd = map_fd(regs[1])?;
            let len = regs[3] as usize;
            let mut buf = std::mem::take(scratch);
            buf.clear();
            buf.resize(len, 0);
            let read = mem.read_bytes(pc, regs[2], &mut buf);
            let ret = match read {
                Ok(()) => match mem.maps.ring_push(fd, &buf) {
                    Ok(true) => 0,
                    _ => (-1i64) as u64,
                },
                Err(fault) => {
                    *scratch = buf;
                    return Err(fault);
                }
            };
            *scratch = buf;
            ret
        }
    };
    regs[0] = ret;
    // Caller-saved registers are clobbered, as on real hardware; use a
    // recognizable poison value to surface verifier escapes early.
    for reg in &mut regs[1..=5] {
        *reg = 0xDEAD_BEEF_DEAD_BEEF;
    }
    regs[0] = ret;
    Ok(())
}

/// Executes a 64-bit ALU operation (total: invalid encodings were already
/// rejected as [`Decoded::BadOpcode`] at decode time).
///
/// `pub(crate)` so the static analyzer's constant-folding transfer
/// functions evaluate with the interpreter's exact semantics.
#[inline(always)]
pub(crate) fn exec_alu64(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => a.checked_div(b).unwrap_or(0),
        AluOp::Mod => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
        AluOp::Or => a | b,
        AluOp::And => a & b,
        AluOp::Xor => a ^ b,
        AluOp::Lsh => a.wrapping_shl(b as u32 & 63),
        AluOp::Rsh => a.wrapping_shr(b as u32 & 63),
        AluOp::Arsh => ((a as i64).wrapping_shr(b as u32 & 63)) as u64,
        AluOp::Mov => b,
        AluOp::Neg => (a as i64).wrapping_neg() as u64,
    }
}

/// Executes a 32-bit ALU operation.
#[inline(always)]
pub(crate) fn exec_alu32(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => a.checked_div(b).unwrap_or(0),
        AluOp::Mod => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
        AluOp::Or => a | b,
        AluOp::And => a & b,
        AluOp::Xor => a ^ b,
        AluOp::Lsh => a.wrapping_shl(b & 31),
        AluOp::Rsh => a.wrapping_shr(b & 31),
        AluOp::Arsh => ((a as i32).wrapping_shr(b & 31)) as u32,
        AluOp::Mov => b,
        AluOp::Neg => (a as i32).wrapping_neg() as u32,
    }
}

/// Evaluates a conditional-jump comparison. `w32` compares the low 32 bits
/// (signed variants sign-extend from bit 31).
#[inline(always)]
pub(crate) fn take_branch(op: CmpOp, w32: bool, mut lhs: u64, mut rhs: u64) -> bool {
    if w32 {
        lhs = lhs as u32 as u64;
        rhs = rhs as u32 as u64;
    }
    let (slhs, srhs) = if w32 {
        (lhs as u32 as i32 as i64, rhs as u32 as i32 as i64)
    } else {
        (lhs as i64, rhs as i64)
    };
    match op {
        CmpOp::Eq => lhs == rhs,
        CmpOp::Ne => lhs != rhs,
        CmpOp::Gt => lhs > rhs,
        CmpOp::Ge => lhs >= rhs,
        CmpOp::Lt => lhs < rhs,
        CmpOp::Le => lhs <= rhs,
        CmpOp::Set => lhs & rhs != 0,
        CmpOp::Sgt => slhs > srhs,
        CmpOp::Sge => slhs >= srhs,
        CmpOp::Slt => slhs < srhs,
        CmpOp::Sle => slhs <= srhs,
    }
}
