//! eBPF maps — the shared state between programs and "userspace".
//!
//! Maps are the only persistent storage an eBPF program has, and the channel
//! through which the paper's in-kernel statistics reach the userspace agent.
//! The registry supports the map kinds the methodology needs: `Hash` (the
//! `start` timestamp map of Listing 1), `Array` (fixed accumulator slots),
//! and `RingBuf` (event streaming, used when the collector exports raw
//! events instead of aggregates).
//!
//! # Hot-path storage model
//!
//! The per-syscall probe path (`map_lookup_elem` / `map_update_elem` /
//! `map_delete_elem` on every traced event) performs no heap allocation in
//! steady state, mirroring the kernel's preallocated BPF hash maps:
//!
//! * keys are stored inline in fixed-capacity [`InlineKey`] cells
//!   (every probe key in this codebase is ≤ 8 bytes; the cap is
//!   [`MAX_KEY_SIZE`] = 16 and enforced at map creation);
//! * hash values live in `Box<[u8]>` cells that are recycled through a
//!   per-map free pool on delete, so the enter-store / exit-delete cycle of
//!   the `start` map reuses the same allocation forever;
//! * [`MapRegistry::update_in_place`] overwrites existing values through a
//!   borrowed slice instead of inserting fresh ones;
//! * ring-buffer records are written into cells recycled from
//!   [`MapRegistry::ring_consume`]'s free pool, so the streaming
//!   produce/consume cycle (`ring_push` → `ring_consume`) allocates only
//!   while the ring is growing toward its high-water mark.
//!
//! Hash maps use a fixed-seed FNV-1a hasher ([`DetState`]) instead of the
//! standard library's `RandomState`, so iteration and dump order are
//! reproducible across runs and platforms — a requirement for golden
//! fixtures, not just a nicety.
//!
//! # JIT-visible storage (DESIGN §6f)
//!
//! Two pieces of storage are laid out so the template JIT can address
//! them directly, without trampolining into this module:
//!
//! * array-map values live in one contiguous [`ArrayArena`] allocation
//!   (entry `i` at byte `i * value_size`), fixed at creation;
//! * each hash map maintains a fixed-size open-addressed
//!   [`HashIndex`] mirroring its key set, kept in sync by
//!   [`MapRegistry::update_in_place`] / [`MapRegistry::delete`].
//!
//! Neither allocation ever moves or resizes after creation, which is the
//! pointer-stability argument that lets
//! [`MapRegistry::refresh_runtime_descs`] hand base pointers to a JIT
//! context once per program entry: in-place updates, deletes (tombstones),
//! and even index rebuilds rewrite the same allocation.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, Hasher};

use crate::mapindex::{
    ArrayArena, HashIndex, MapRuntimeDesc, DESC_KIND_ARRAY, DESC_KIND_HASH,
};
use crate::sketch::SketchState;

/// Maximum key size (bytes) of hash maps: keys are stored inline, never on
/// the heap. Every probe map in the methodology uses 4- or 8-byte keys.
pub const MAX_KEY_SIZE: usize = 16;

/// Map kinds supported by the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MapKind {
    /// Key/value hash map (`BPF_MAP_TYPE_HASH`).
    Hash,
    /// Fixed-size array indexed by `u32` (`BPF_MAP_TYPE_ARRAY`).
    Array,
    /// Byte ring buffer (`BPF_MAP_TYPE_RINGBUF`).
    RingBuf,
    /// Mergeable Top-K heavy-hitter sketch (this runtime's extension;
    /// no kernel equivalent — the closest shape is eHashPipe built on
    /// `BPF_MAP_TYPE_ARRAY`). Updated only through `bpf_sketch_update`;
    /// the generic lookup/update/delete helpers reject it.
    TopkSketch,
}

/// Static definition of a map, fixed at creation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapDef {
    /// Kind of map.
    pub kind: MapKind,
    /// Key size in bytes (0 for ring buffers; 4 for arrays).
    pub key_size: u32,
    /// Value size in bytes (capacity granularity for ring buffers).
    pub value_size: u32,
    /// Maximum number of entries (array length / hash capacity / ring slots).
    pub max_entries: u32,
}

impl MapDef {
    /// A hash map with the given key/value sizes.
    pub fn hash(key_size: u32, value_size: u32, max_entries: u32) -> MapDef {
        MapDef {
            kind: MapKind::Hash,
            key_size,
            value_size,
            max_entries,
        }
    }

    /// An array of `max_entries` values (keys are `u32` indices).
    pub fn array(value_size: u32, max_entries: u32) -> MapDef {
        MapDef {
            kind: MapKind::Array,
            key_size: 4,
            value_size,
            max_entries,
        }
    }

    /// A ring buffer holding up to `max_entries` records of `value_size`
    /// bytes each.
    pub fn ring_buf(value_size: u32, max_entries: u32) -> MapDef {
        MapDef {
            kind: MapKind::RingBuf,
            key_size: 0,
            value_size,
            max_entries,
        }
    }

    /// A Top-K heavy-hitter sketch over `key_size`-byte entity keys with
    /// `max_entries` candidate slots. The count-min geometry (rows,
    /// columns) is derived from `max_entries` by
    /// [`sketch_cols`](crate::sketch::sketch_cols); counters are 8-byte
    /// wrapping cells, hence the fixed `value_size`.
    pub fn topk_sketch(key_size: u32, max_entries: u32) -> MapDef {
        MapDef {
            kind: MapKind::TopkSketch,
            key_size,
            value_size: 8,
            max_entries,
        }
    }
}

/// Handle to a created map (the "file descriptor" a program embeds via
/// `ld_map_fd`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MapFd(pub u32);

/// A fixed-capacity inline map key.
///
/// Keys are copied into a `[u8; MAX_KEY_SIZE]` cell instead of a heap
/// `Vec<u8>`, so storing, comparing, and hashing a key never allocates.
/// The padding beyond `len` is always zero, but equality and hashing are
/// defined over the live `as_slice()` prefix only, matching how a borrowed
/// `&[u8]` key hashes — which is what makes `HashMap::get(&[u8])` find
/// entries keyed by `InlineKey` through the `Borrow` impl.
///
/// # Examples
///
/// ```
/// use kscope_ebpf::maps::InlineKey;
///
/// let key = InlineKey::new(&7u64.to_le_bytes());
/// assert_eq!(key.as_slice(), &7u64.to_le_bytes());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct InlineKey {
    len: u8,
    bytes: [u8; MAX_KEY_SIZE],
}

impl InlineKey {
    /// Copies `key` into inline storage.
    ///
    /// # Panics
    ///
    /// Panics if `key` is longer than [`MAX_KEY_SIZE`]; map creation
    /// rejects such definitions, so keys reaching this type always fit.
    pub fn new(key: &[u8]) -> InlineKey {
        assert!(
            key.len() <= MAX_KEY_SIZE,
            "map keys are limited to {MAX_KEY_SIZE} bytes, got {}",
            key.len()
        );
        let mut bytes = [0u8; MAX_KEY_SIZE];
        bytes[..key.len()].copy_from_slice(key);
        InlineKey {
            len: key.len() as u8,
            bytes,
        }
    }

    /// The live key bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes[..self.len as usize]
    }
}

impl PartialEq for InlineKey {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for InlineKey {}

impl Hash for InlineKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Must match `<[u8] as Hash>::hash` exactly so lookups by borrowed
        // `&[u8]` hash to the same bucket (the `Borrow` contract).
        self.as_slice().hash(state);
    }
}

impl Borrow<[u8]> for InlineKey {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Deterministic `BuildHasher` for map storage: seeded FNV-1a with a
/// finalizer, identical on every run and platform.
///
/// `std::collections::HashMap`'s default `RandomState` draws a fresh seed
/// per process, which makes iteration order — and therefore map dumps,
/// golden fixtures, and any debug output derived from them — differ
/// between runs. Simulated probes have no hash-flooding adversary, so a
/// fixed seed trades nothing for reproducibility.
#[derive(Debug, Clone, Copy, Default)]
pub struct DetState;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Fixed seed folded into the offset basis.
const DET_SEED: u64 = 0x6b73_636f_7065_6d61;

impl BuildHasher for DetState {
    type Hasher = DetHasher;

    fn build_hasher(&self) -> DetHasher {
        DetHasher {
            state: FNV_OFFSET ^ DET_SEED,
        }
    }
}

/// The hasher produced by [`DetState`].
#[derive(Debug, Clone, Copy)]
pub struct DetHasher {
    state: u64,
}

impl Hasher for DetHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    }

    fn finish(&self) -> u64 {
        // FNV mixes the low bits poorly; HashMap keys buckets off the high
        // bits, so run a final avalanche (splitmix64 finalizer).
        let mut x = self.state;
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        x
    }
}

/// Errors returned by map operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// The fd does not name a live map.
    BadFd(MapFd),
    /// Key length does not match the map definition.
    KeySize {
        /// Expected key size.
        expected: u32,
        /// Provided key size.
        got: usize,
    },
    /// Value length does not match the map definition.
    ValueSize {
        /// Expected value size.
        expected: u32,
        /// Provided value size.
        got: usize,
    },
    /// Array index out of range.
    IndexOutOfBounds {
        /// The offending index.
        index: u32,
        /// The array length.
        len: u32,
    },
    /// Hash map is full.
    Full,
    /// Operation not supported for this map kind.
    WrongKind(MapKind),
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::BadFd(fd) => write!(f, "no map with fd {}", fd.0),
            MapError::KeySize { expected, got } => {
                write!(f, "key size mismatch: expected {expected}, got {got}")
            }
            MapError::ValueSize { expected, got } => {
                write!(f, "value size mismatch: expected {expected}, got {got}")
            }
            MapError::IndexOutOfBounds { index, len } => {
                write!(f, "array index {index} out of bounds for length {len}")
            }
            MapError::Full => f.write_str("map is full"),
            MapError::WrongKind(kind) => write!(f, "operation not supported on {kind:?} map"),
        }
    }
}

impl std::error::Error for MapError {}

/// Borrowed `(key, value)` pairs of a hash map, in deterministic
/// iteration order — what [`MapRegistry::hash_entries`] returns.
pub type HashEntries<'a> = Vec<(&'a [u8], &'a [u8])>;

#[derive(Debug, Clone)]
enum MapStorage {
    Hash {
        entries: HashMap<InlineKey, Box<[u8]>, DetState>,
        /// Value cells recycled from deleted entries — the kernel's
        /// preallocated-elements free list, in miniature. `update` pops
        /// here before touching the allocator, so the per-event
        /// store/delete cycle of the `start` map allocates only on its
        /// very first insertions.
        free: Vec<Box<[u8]>>,
        /// Open-addressed key index the JIT's inline lookup probes;
        /// mirrors `entries`' key set exactly (see DESIGN §6f).
        index: HashIndex,
    },
    Array(ArrayArena),
    RingBuf {
        records: std::collections::VecDeque<Vec<u8>>,
        /// Record buffers recycled by `ring_consume` — the ring-buffer
        /// twin of the hash map's free pool. `ring_push` refills these
        /// instead of allocating, so the steady-state produce/consume
        /// cycle performs no heap allocation.
        free: Vec<Vec<u8>>,
        dropped: u64,
    },
    /// Fixed-geometry sketch state: all allocations happen at map
    /// creation, updates touch cells and inline slots in place.
    Sketch(SketchState),
}

#[derive(Debug, Clone)]
struct MapEntry {
    def: MapDef,
    name: String,
    storage: MapStorage,
}

/// Owns all maps of one eBPF runtime instance.
///
/// # Examples
///
/// ```
/// use kscope_ebpf::maps::{MapDef, MapRegistry};
///
/// let mut maps = MapRegistry::new();
/// let fd = maps.create("start", MapDef::hash(8, 8, 1024));
/// maps.update(fd, &7u64.to_le_bytes(), &99u64.to_le_bytes()).unwrap();
/// let value = maps.lookup(fd, &7u64.to_le_bytes()).unwrap().unwrap();
/// assert_eq!(value, 99u64.to_le_bytes());
/// ```
#[derive(Clone, Default)]
pub struct MapRegistry {
    maps: Vec<MapEntry>,
    /// Per-fd runtime shape descriptors for the JIT's inline guards,
    /// rebuilt by [`MapRegistry::refresh_runtime_descs`] before each JIT
    /// entry (pointers in here are only meaningful right after a
    /// refresh — cloning the registry moves the storage they point at).
    descs: Vec<MapRuntimeDesc>,
}

// Manual impl: `descs` is an ephemeral per-run cache (host pointers that
// differ between otherwise-identical registries), so it must not leak
// into debug dumps the differential suite compares.
impl std::fmt::Debug for MapRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MapRegistry")
            .field("maps", &self.maps)
            .finish_non_exhaustive()
    }
}

impl MapRegistry {
    /// Creates an empty registry.
    pub fn new() -> MapRegistry {
        MapRegistry::default()
    }

    /// Creates a map and returns its fd.
    ///
    /// # Panics
    ///
    /// Panics on degenerate definitions (zero sizes where a size is
    /// required, zero entries, hash keys wider than [`MAX_KEY_SIZE`]).
    pub fn create(&mut self, name: impl Into<String>, def: MapDef) -> MapFd {
        assert!(def.max_entries > 0, "map needs at least one entry");
        assert!(def.value_size > 0, "map values must be non-empty");
        // The interpreter hands out map-value pointers in 1 MiB slots;
        // larger values would alias neighbouring slots.
        assert!(
            def.value_size <= 1 << 20,
            "map values are limited to 1 MiB"
        );
        let storage = match def.kind {
            MapKind::Hash => {
                assert!(def.key_size > 0, "hash maps need non-empty keys");
                assert!(
                    def.key_size as usize <= MAX_KEY_SIZE,
                    "hash keys are limited to {MAX_KEY_SIZE} bytes (inline storage)"
                );
                MapStorage::Hash {
                    // Pre-size the table (bounded, like the kernel's
                    // prealloc) so steady-state inserts never rehash.
                    entries: HashMap::with_capacity_and_hasher(
                        def.max_entries.min(4096) as usize,
                        DetState,
                    ),
                    free: Vec::new(),
                    index: HashIndex::new(def.max_entries),
                }
            }
            MapKind::Array => {
                assert_eq!(def.key_size, 4, "array maps use u32 keys");
                MapStorage::Array(ArrayArena::new(
                    def.value_size as usize,
                    def.max_entries as usize,
                ))
            }
            MapKind::RingBuf => MapStorage::RingBuf {
                records: std::collections::VecDeque::new(),
                free: Vec::new(),
                dropped: 0,
            },
            MapKind::TopkSketch => {
                assert!(def.key_size > 0, "sketch maps need non-empty keys");
                assert!(
                    def.key_size as usize <= MAX_KEY_SIZE,
                    "sketch keys are limited to {MAX_KEY_SIZE} bytes (inline storage)"
                );
                assert_eq!(def.value_size, 8, "sketch counters are 8-byte cells");
                MapStorage::Sketch(SketchState::new(def.key_size, def.max_entries))
            }
        };
        let fd = MapFd(self.maps.len() as u32);
        self.maps.push(MapEntry {
            def,
            name: name.into(),
            storage,
        });
        fd
    }

    /// The definition of a map.
    ///
    /// # Errors
    ///
    /// Fails with [`MapError::BadFd`] for unknown fds.
    pub fn def(&self, fd: MapFd) -> Result<MapDef, MapError> {
        self.entry(fd).map(|e| e.def)
    }

    /// The name a map was created with.
    ///
    /// # Errors
    ///
    /// Fails with [`MapError::BadFd`] for unknown fds.
    pub fn name(&self, fd: MapFd) -> Result<&str, MapError> {
        self.entry(fd).map(|e| e.name.as_str())
    }

    /// Looks up a map by name (first match).
    pub fn fd_by_name(&self, name: &str) -> Option<MapFd> {
        self.maps
            .iter()
            .position(|e| e.name == name)
            .map(|i| MapFd(i as u32))
    }

    fn entry(&self, fd: MapFd) -> Result<&MapEntry, MapError> {
        self.maps.get(fd.0 as usize).ok_or(MapError::BadFd(fd))
    }

    fn entry_mut(&mut self, fd: MapFd) -> Result<&mut MapEntry, MapError> {
        self.maps.get_mut(fd.0 as usize).ok_or(MapError::BadFd(fd))
    }

    fn check_key(def: &MapDef, key: &[u8]) -> Result<(), MapError> {
        if key.len() != def.key_size as usize {
            return Err(MapError::KeySize {
                expected: def.key_size,
                got: key.len(),
            });
        }
        Ok(())
    }

    /// Decodes an array-map index from a key that `check_key` already
    /// sized: array maps always declare 4-byte keys.
    fn array_index(key: &[u8]) -> u32 {
        match key.try_into() {
            Ok(bytes) => u32::from_le_bytes(bytes),
            Err(_) => unreachable!("check_key verified the 4-byte array key"),
        }
    }

    fn check_value(def: &MapDef, value: &[u8]) -> Result<(), MapError> {
        if value.len() != def.value_size as usize {
            return Err(MapError::ValueSize {
                expected: def.value_size,
                got: value.len(),
            });
        }
        Ok(())
    }

    /// Looks up a value by key; `Ok(None)` when absent.
    ///
    /// # Errors
    ///
    /// Fails on bad fds, key-size mismatches, or ring-buffer maps.
    pub fn lookup(&self, fd: MapFd, key: &[u8]) -> Result<Option<&[u8]>, MapError> {
        let entry = self.entry(fd)?;
        Self::check_key(&entry.def, key)?;
        match &entry.storage {
            MapStorage::Hash { entries, .. } => Ok(entries.get(key).map(|v| &v[..])),
            MapStorage::Array(arena) => {
                // Matches kernel semantics: OOB lookup is NULL (None).
                Ok(arena.get(Self::array_index(key) as usize))
            }
            MapStorage::RingBuf { .. } => Err(MapError::WrongKind(MapKind::RingBuf)),
            MapStorage::Sketch(_) => Err(MapError::WrongKind(MapKind::TopkSketch)),
        }
    }

    /// Mutable access to a value by key; `Ok(None)` when absent.
    ///
    /// This mirrors the in-kernel behaviour where `map_lookup_elem` returns
    /// a writable pointer into the map.
    ///
    /// # Errors
    ///
    /// Fails on bad fds, key-size mismatches, or ring-buffer maps.
    pub fn lookup_mut(&mut self, fd: MapFd, key: &[u8]) -> Result<Option<&mut [u8]>, MapError> {
        let entry = self.entry_mut(fd)?;
        Self::check_key(&entry.def, key)?;
        match &mut entry.storage {
            MapStorage::Hash { entries, .. } => Ok(entries.get_mut(key).map(|v| &mut v[..])),
            MapStorage::Array(arena) => Ok(arena.get_mut(Self::array_index(key) as usize)),
            MapStorage::RingBuf { .. } => Err(MapError::WrongKind(MapKind::RingBuf)),
            MapStorage::Sketch(_) => Err(MapError::WrongKind(MapKind::TopkSketch)),
        }
    }

    /// Inserts or overwrites a key/value pair.
    ///
    /// Equivalent to [`MapRegistry::update_in_place`]; kept as the
    /// long-standing name used by userspace-side code and tests.
    ///
    /// # Errors
    ///
    /// Fails on bad fds, size mismatches, a full hash map, an
    /// out-of-bounds array index, or ring-buffer maps.
    pub fn update(&mut self, fd: MapFd, key: &[u8], value: &[u8]) -> Result<(), MapError> {
        self.update_in_place(fd, key, value)
    }

    /// Inserts or overwrites a key/value pair without allocating on the
    /// overwrite path.
    ///
    /// Existing values are overwritten through a borrowed slice; fresh
    /// hash insertions reuse a value cell recycled from a prior delete
    /// when one is available. This is the interpreter's
    /// `bpf_map_update_elem` entry point — the per-syscall hot path.
    ///
    /// # Errors
    ///
    /// Fails on bad fds, size mismatches, a full hash map, an
    /// out-of-bounds array index, or ring-buffer maps.
    pub fn update_in_place(&mut self, fd: MapFd, key: &[u8], value: &[u8]) -> Result<(), MapError> {
        let entry = self.entry_mut(fd)?;
        Self::check_key(&entry.def, key)?;
        Self::check_value(&entry.def, value)?;
        let def = entry.def;
        match &mut entry.storage {
            MapStorage::Hash {
                entries,
                free,
                index,
            } => {
                if let Some(slot) = entries.get_mut(key) {
                    slot.copy_from_slice(value);
                    return Ok(());
                }
                if entries.len() as u32 >= def.max_entries {
                    return Err(MapError::Full);
                }
                let cell = match free.pop() {
                    Some(mut cell) => {
                        cell.copy_from_slice(value);
                        cell
                    }
                    // First-ever insertion for this cell count: the one
                    // allocation each live entry costs over a map's life.
                    None => Box::from(value),
                };
                entries.insert(InlineKey::new(key), cell);
                index.insert(key);
                Ok(())
            }
            MapStorage::Array(arena) => {
                let index = Self::array_index(key);
                match arena.get_mut(index as usize) {
                    Some(slot) => {
                        slot.copy_from_slice(value);
                        Ok(())
                    }
                    None => Err(MapError::IndexOutOfBounds {
                        index,
                        len: def.max_entries,
                    }),
                }
            }
            MapStorage::RingBuf { .. } => Err(MapError::WrongKind(MapKind::RingBuf)),
            MapStorage::Sketch(_) => Err(MapError::WrongKind(MapKind::TopkSketch)),
        }
    }

    /// Deletes a key from a hash map. `Ok(false)` when the key was absent.
    ///
    /// The deleted value's cell is recycled for future insertions rather
    /// than freed, so a store/delete cycle does not churn the allocator.
    ///
    /// # Errors
    ///
    /// Fails on bad fds, size mismatches, or non-hash maps (array elements
    /// cannot be deleted, as in the kernel).
    pub fn delete(&mut self, fd: MapFd, key: &[u8]) -> Result<bool, MapError> {
        let entry = self.entry_mut(fd)?;
        Self::check_key(&entry.def, key)?;
        match &mut entry.storage {
            MapStorage::Hash {
                entries,
                free,
                index,
            } => match entries.remove(key) {
                Some(cell) => {
                    free.push(cell);
                    index.remove(key);
                    if index.needs_rebuild() {
                        // In place (same allocation): base pointers held
                        // by an in-flight JIT context stay valid.
                        index.rebuild(entries.keys().map(|k| k.as_slice()));
                    }
                    Ok(true)
                }
                None => Ok(false),
            },
            MapStorage::Array(_) => Err(MapError::WrongKind(MapKind::Array)),
            MapStorage::RingBuf { .. } => Err(MapError::WrongKind(MapKind::RingBuf)),
            MapStorage::Sketch(_) => Err(MapError::WrongKind(MapKind::TopkSketch)),
        }
    }

    /// All live entries of a hash map, in the map's (deterministic)
    /// iteration order — the same order on every run and platform thanks
    /// to [`DetState`].
    ///
    /// # Errors
    ///
    /// Fails on bad fds or non-hash maps.
    pub fn hash_entries(&self, fd: MapFd) -> Result<HashEntries<'_>, MapError> {
        let entry = self.entry(fd)?;
        match &entry.storage {
            MapStorage::Hash { entries, .. } => Ok(entries
                .iter()
                .map(|(k, v)| (k.as_slice(), &v[..]))
                .collect()),
            _ => Err(MapError::WrongKind(entry.def.kind)),
        }
    }

    /// Appends a record to a ring buffer, dropping it (and counting the
    /// drop) when the buffer is full. Returns `true` when stored.
    ///
    /// # Errors
    ///
    /// Fails on bad fds, non-ringbuf maps, or oversized records.
    pub fn ring_push(&mut self, fd: MapFd, record: &[u8]) -> Result<bool, MapError> {
        let entry = self.entry_mut(fd)?;
        let def = entry.def;
        if record.len() > def.value_size as usize {
            return Err(MapError::ValueSize {
                expected: def.value_size,
                got: record.len(),
            });
        }
        match &mut entry.storage {
            MapStorage::RingBuf {
                records,
                free,
                dropped,
            } => {
                if records.len() as u32 >= def.max_entries {
                    *dropped += 1;
                    Ok(false)
                } else {
                    let mut cell = match free.pop() {
                        Some(cell) => cell,
                        // First fill of this slot: the one allocation it
                        // costs over the map's life. The capacity covers
                        // any legal record, so recycled cells never grow.
                        None => Vec::with_capacity(def.value_size as usize),
                    };
                    cell.clear();
                    cell.extend_from_slice(record);
                    records.push_back(cell);
                    Ok(true)
                }
            }
            other => Err(MapError::WrongKind(match other {
                MapStorage::Hash { .. } => MapKind::Hash,
                MapStorage::Array(_) => MapKind::Array,
                MapStorage::Sketch(_) => MapKind::TopkSketch,
                MapStorage::RingBuf { .. } => unreachable!(),
            })),
        }
    }

    /// Consumes all pending ring-buffer records in FIFO order without
    /// allocating: each record is passed to `consume` by reference, and
    /// its buffer is recycled into the free pool for future pushes. This
    /// is the userspace consumer's hot path — the analogue of walking the
    /// mmap'd producer pages in place — and together with the recycling
    /// `ring_push` it makes the steady-state produce/consume cycle
    /// allocation-free. Returns how many records were consumed.
    ///
    /// # Errors
    ///
    /// Fails on bad fds or non-ringbuf maps.
    pub fn ring_consume<F>(&mut self, fd: MapFd, mut consume: F) -> Result<usize, MapError>
    where
        F: FnMut(&[u8]),
    {
        let entry = self.entry_mut(fd)?;
        match &mut entry.storage {
            MapStorage::RingBuf { records, free, .. } => {
                let mut consumed = 0;
                while let Some(cell) = records.pop_front() {
                    consume(&cell);
                    free.push(cell);
                    consumed += 1;
                }
                Ok(consumed)
            }
            _ => Err(MapError::WrongKind(entry.def.kind)),
        }
    }

    /// Drains all pending ring-buffer records as owned buffers.
    ///
    /// The drained cells leave the map (and its free pool) for good, so
    /// every later push re-allocates; prefer [`MapRegistry::ring_consume`]
    /// on any recurring path.
    ///
    /// # Errors
    ///
    /// Fails on bad fds or non-ringbuf maps.
    pub fn ring_drain(&mut self, fd: MapFd) -> Result<Vec<Vec<u8>>, MapError> {
        let entry = self.entry_mut(fd)?;
        match &mut entry.storage {
            MapStorage::RingBuf { records, .. } => Ok(records.drain(..).collect()),
            _ => Err(MapError::WrongKind(entry.def.kind)),
        }
    }

    /// Number of records dropped because the ring buffer was full.
    ///
    /// # Errors
    ///
    /// Fails on bad fds or non-ringbuf maps.
    pub fn ring_dropped(&self, fd: MapFd) -> Result<u64, MapError> {
        let entry = self.entry(fd)?;
        match &entry.storage {
            MapStorage::RingBuf { dropped, .. } => Ok(*dropped),
            _ => Err(MapError::WrongKind(entry.def.kind)),
        }
    }

    /// Number of live entries in a hash map, or the fixed length of an
    /// array.
    ///
    /// # Errors
    ///
    /// Fails on bad fds.
    pub fn len(&self, fd: MapFd) -> Result<u32, MapError> {
        let entry = self.entry(fd)?;
        Ok(match &entry.storage {
            MapStorage::Hash { entries, .. } => entries.len() as u32,
            MapStorage::Array(arena) => arena.len() as u32,
            MapStorage::RingBuf { records, .. } => records.len() as u32,
            MapStorage::Sketch(state) => state.candidate_len(),
        })
    }

    /// Folds `weight` for `key` into a Top-K sketch map — the
    /// `bpf_sketch_update` entry point. Zero-allocation: the sketch's
    /// cells and candidate slots are fixed at map creation and updated
    /// in place.
    ///
    /// # Errors
    ///
    /// Fails on bad fds, key-size mismatches, or non-sketch maps.
    pub fn sketch_update(&mut self, fd: MapFd, key: &[u8], weight: u64) -> Result<(), MapError> {
        let entry = self.entry_mut(fd)?;
        Self::check_key(&entry.def, key)?;
        let kind = entry.def.kind;
        match &mut entry.storage {
            MapStorage::Sketch(state) => {
                state.update(key, weight);
                Ok(())
            }
            _ => Err(MapError::WrongKind(kind)),
        }
    }

    /// Borrows the state of a Top-K sketch map — the userspace read
    /// side: a host agent clones this into its report envelope.
    ///
    /// # Errors
    ///
    /// Fails on bad fds or non-sketch maps.
    pub fn sketch_state(&self, fd: MapFd) -> Result<&SketchState, MapError> {
        let entry = self.entry(fd)?;
        match &entry.storage {
            MapStorage::Sketch(state) => Ok(state),
            _ => Err(MapError::WrongKind(entry.def.kind)),
        }
    }

    /// Rebuilds the per-fd [`MapRuntimeDesc`] table and returns its base
    /// pointer and length, for a JIT context to guard inline map accesses
    /// against. Called once per JIT program entry; the descriptors (and
    /// the base pointers inside them) stay valid for the registry's
    /// lifetime because every storage allocation they reference is fixed
    /// at map creation and only ever rewritten in place.
    pub fn refresh_runtime_descs(&mut self) -> (*const MapRuntimeDesc, usize) {
        self.descs.clear();
        self.descs.reserve(self.maps.len());
        for entry in &self.maps {
            let desc = match &entry.storage {
                MapStorage::Array(arena) => MapRuntimeDesc {
                    kind: DESC_KIND_ARRAY,
                    key_size: entry.def.key_size,
                    value_size: entry.def.value_size,
                    max_entries: entry.def.max_entries,
                    base: arena.base_ptr() as u64,
                    aux: 0,
                },
                MapStorage::Hash { index, .. } => MapRuntimeDesc {
                    kind: DESC_KIND_HASH,
                    key_size: entry.def.key_size,
                    value_size: entry.def.value_size,
                    max_entries: entry.def.max_entries,
                    base: index.base_ptr() as u64,
                    aux: index.mask(),
                },
                // Ring buffers and sketches have no inline fast path;
                // their helpers always take the trampoline.
                MapStorage::RingBuf { .. } | MapStorage::Sketch(_) => MapRuntimeDesc::none(),
            };
            self.descs.push(desc);
        }
        (self.descs.as_ptr(), self.descs.len())
    }

    /// Convenience: reads a `u64` from an array map slot.
    ///
    /// # Errors
    ///
    /// Fails on bad fds, non-array maps, out-of-range slots, or values
    /// narrower than 8 bytes.
    pub fn array_u64(&self, fd: MapFd, slot: u32) -> Result<u64, MapError> {
        let key = slot.to_le_bytes();
        let value = self
            .lookup(fd, &key)?
            .ok_or(MapError::IndexOutOfBounds {
                index: slot,
                len: self.def(fd)?.max_entries,
            })?;
        if value.len() < 8 {
            return Err(MapError::ValueSize {
                expected: 8,
                got: value.len(),
            });
        }
        match value[..8].try_into() {
            Ok(bytes) => Ok(u64::from_le_bytes(bytes)),
            Err(_) => unreachable!("an 8-byte slice converts to [u8; 8]"),
        }
    }

    /// Convenience: writes a `u64` into an array map slot.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`MapRegistry::array_u64`].
    pub fn set_array_u64(&mut self, fd: MapFd, slot: u32, value: u64) -> Result<(), MapError> {
        let def = self.def(fd)?;
        if def.value_size != 8 {
            return Err(MapError::ValueSize {
                expected: 8,
                got: def.value_size as usize,
            });
        }
        self.update(fd, &slot.to_le_bytes(), &value.to_le_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_lookup_update_delete() {
        let mut maps = MapRegistry::new();
        let fd = maps.create("h", MapDef::hash(4, 4, 2));
        assert_eq!(maps.lookup(fd, &[0; 4]).unwrap(), None);
        maps.update(fd, &[0; 4], &[1; 4]).unwrap();
        assert_eq!(maps.lookup(fd, &[0; 4]).unwrap(), Some(&[1u8; 4][..]));
        assert!(maps.delete(fd, &[0; 4]).unwrap());
        assert!(!maps.delete(fd, &[0; 4]).unwrap());
    }

    #[test]
    fn hash_capacity_enforced() {
        let mut maps = MapRegistry::new();
        let fd = maps.create("h", MapDef::hash(1, 1, 2));
        maps.update(fd, &[1], &[1]).unwrap();
        maps.update(fd, &[2], &[2]).unwrap();
        assert_eq!(maps.update(fd, &[3], &[3]), Err(MapError::Full));
        // Overwriting an existing key still works at capacity.
        maps.update(fd, &[1], &[9]).unwrap();
        assert_eq!(maps.len(fd).unwrap(), 2);
    }

    #[test]
    fn store_delete_cycle_recycles_cells() {
        let mut maps = MapRegistry::new();
        let fd = maps.create("start", MapDef::hash(8, 8, 4));
        // The enter/exit probe pattern: store, read, delete, repeat.
        for i in 0..1000u64 {
            let key = i.to_le_bytes();
            maps.update(fd, &key, &(i * 3).to_le_bytes()).unwrap();
            assert_eq!(
                maps.lookup(fd, &key).unwrap(),
                Some(&(i * 3).to_le_bytes()[..])
            );
            assert!(maps.delete(fd, &key).unwrap());
        }
        assert_eq!(maps.len(fd).unwrap(), 0);
    }

    #[test]
    fn update_in_place_overwrites_existing_values() {
        let mut maps = MapRegistry::new();
        let fd = maps.create("h", MapDef::hash(4, 8, 4));
        maps.update_in_place(fd, &[9, 0, 0, 0], &1u64.to_le_bytes()).unwrap();
        maps.update_in_place(fd, &[9, 0, 0, 0], &2u64.to_le_bytes()).unwrap();
        assert_eq!(
            maps.lookup(fd, &[9, 0, 0, 0]).unwrap().unwrap(),
            2u64.to_le_bytes()
        );
        assert_eq!(maps.len(fd).unwrap(), 1);
    }

    #[test]
    fn hash_iteration_order_is_deterministic() {
        let build = || {
            let mut maps = MapRegistry::new();
            let fd = maps.create("h", MapDef::hash(8, 8, 64));
            for i in (0..32u64).rev() {
                maps.update(fd, &i.to_le_bytes(), &(i ^ 0xFF).to_le_bytes())
                    .unwrap();
            }
            let dump: Vec<(Vec<u8>, Vec<u8>)> = maps
                .hash_entries(fd)
                .unwrap()
                .into_iter()
                .map(|(k, v)| (k.to_vec(), v.to_vec()))
                .collect();
            dump
        };
        let a = build();
        let b = build();
        assert_eq!(a, b, "same insertions must iterate identically");
        assert_eq!(a.len(), 32);
    }

    #[test]
    fn inline_key_matches_borrowed_slices() {
        let key = InlineKey::new(&[1, 2, 3]);
        assert_eq!(key.as_slice(), &[1, 2, 3]);
        assert_eq!(key, InlineKey::new(&[1, 2, 3]));
        assert_ne!(key, InlineKey::new(&[1, 2, 3, 0]));
        let borrowed: &[u8] = key.borrow();
        assert_eq!(borrowed, &[1, 2, 3]);
        // Hashing an InlineKey and its borrowed slice must agree (the
        // HashMap `Borrow` lookup contract).
        let hash = |h: &dyn Fn(&mut DetHasher)| {
            let mut state = DetState.build_hasher();
            h(&mut state);
            state.finish()
        };
        let a = hash(&|s| key.hash(s));
        let b = hash(&|s| [1u8, 2, 3].as_slice().hash(s));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "limited to 16 bytes")]
    fn oversized_hash_keys_rejected_at_create() {
        let mut maps = MapRegistry::new();
        maps.create("wide", MapDef::hash(17, 8, 4));
    }

    #[test]
    fn array_semantics() {
        let mut maps = MapRegistry::new();
        let fd = maps.create("a", MapDef::array(8, 4));
        // Array slots are zero-initialized.
        assert_eq!(maps.array_u64(fd, 0).unwrap(), 0);
        maps.set_array_u64(fd, 3, 42).unwrap();
        assert_eq!(maps.array_u64(fd, 3).unwrap(), 42);
        // Out-of-bounds lookup is None (NULL), update is an error.
        assert_eq!(maps.lookup(fd, &4u32.to_le_bytes()).unwrap(), None);
        assert!(matches!(
            maps.update(fd, &4u32.to_le_bytes(), &[0; 8]),
            Err(MapError::IndexOutOfBounds { .. })
        ));
        // Deleting array entries is not a thing.
        assert!(matches!(
            maps.delete(fd, &0u32.to_le_bytes()),
            Err(MapError::WrongKind(MapKind::Array))
        ));
    }

    #[test]
    #[allow(unsafe_code)] // reads the raw descriptor table like JIT code does
    fn runtime_descs_report_shapes_and_stable_bases() {
        use crate::mapindex::{DESC_KIND_ARRAY, DESC_KIND_HASH, DESC_KIND_NONE};
        let mut maps = MapRegistry::new();
        let h = maps.create("h", MapDef::hash(8, 8, 1024));
        let a = maps.create("a", MapDef::array(8, 4));
        let r = maps.create("r", MapDef::ring_buf(8, 2));
        let (ptr, len) = maps.refresh_runtime_descs();
        assert_eq!(len, 3);
        let descs: Vec<MapRuntimeDesc> =
            (0..len).map(|i| unsafe { *ptr.add(i) }).collect();
        assert_eq!(descs[h.0 as usize].kind, DESC_KIND_HASH);
        assert_eq!(descs[h.0 as usize].key_size, 8);
        assert!(descs[h.0 as usize].aux >= 2047, "mask covers 2x entries");
        assert_eq!(descs[a.0 as usize].kind, DESC_KIND_ARRAY);
        assert_eq!(descs[a.0 as usize].value_size, 8);
        assert_eq!(descs[a.0 as usize].max_entries, 4);
        assert_eq!(descs[r.0 as usize].kind, DESC_KIND_NONE);
        // In-place churn must not move any base pointer.
        for i in 0..1000u64 {
            maps.update(h, &i.to_le_bytes(), &i.to_le_bytes()).unwrap();
            maps.delete(h, &i.to_le_bytes()).unwrap();
            maps.set_array_u64(a, (i % 4) as u32, i).unwrap();
        }
        let (ptr2, len2) = maps.refresh_runtime_descs();
        assert_eq!(len2, 3);
        let descs2: Vec<MapRuntimeDesc> =
            (0..len2).map(|i| unsafe { *ptr2.add(i) }).collect();
        assert_eq!(descs[h.0 as usize].base, descs2[h.0 as usize].base);
        assert_eq!(descs[a.0 as usize].base, descs2[a.0 as usize].base);
    }

    #[test]
    fn hash_index_mirrors_entries_under_churn() {
        use crate::mapindex::HomeProbe;
        let mut maps = MapRegistry::new();
        let fd = maps.create("start", MapDef::hash(8, 8, 64));
        let probe = |maps: &MapRegistry, key: &[u8]| {
            let Some(MapEntry {
                storage: MapStorage::Hash { index, .. },
                ..
            }) = maps.maps.first()
            else {
                panic!("hash map expected");
            };
            index.home_probe(key)
        };
        for i in 0..2000u64 {
            let key = (i % 96).to_le_bytes();
            maps.update(fd, &key, &i.to_le_bytes()).unwrap();
            // Present keys must never probe as a definitive miss...
            assert_ne!(probe(&maps, &key), HomeProbe::Miss, "key {i}");
            maps.delete(fd, &key).unwrap();
            // ...and deleted keys must never probe as a definitive hit.
            assert_ne!(probe(&maps, &key), HomeProbe::Hit, "key {i}");
        }
        assert_eq!(maps.len(fd).unwrap(), 0);
    }

    #[test]
    fn key_and_value_sizes_validated() {
        let mut maps = MapRegistry::new();
        let fd = maps.create("h", MapDef::hash(8, 8, 8));
        assert!(matches!(
            maps.lookup(fd, &[0; 4]),
            Err(MapError::KeySize { expected: 8, got: 4 })
        ));
        assert!(matches!(
            maps.update(fd, &[0; 8], &[0; 2]),
            Err(MapError::ValueSize { expected: 8, got: 2 })
        ));
    }

    #[test]
    fn lookup_mut_writes_through() {
        let mut maps = MapRegistry::new();
        let fd = maps.create("h", MapDef::hash(4, 8, 8));
        maps.update(fd, &[7, 0, 0, 0], &[0; 8]).unwrap();
        {
            let value = maps.lookup_mut(fd, &[7, 0, 0, 0]).unwrap().unwrap();
            value.copy_from_slice(&123u64.to_le_bytes());
        }
        assert_eq!(
            maps.lookup(fd, &[7, 0, 0, 0]).unwrap().unwrap(),
            123u64.to_le_bytes()
        );
    }

    #[test]
    fn ring_buffer_push_drain_drop() {
        let mut maps = MapRegistry::new();
        let fd = maps.create("rb", MapDef::ring_buf(16, 2));
        assert!(maps.ring_push(fd, b"one").unwrap());
        assert!(maps.ring_push(fd, b"two").unwrap());
        assert!(!maps.ring_push(fd, b"three").unwrap());
        assert_eq!(maps.ring_dropped(fd).unwrap(), 1);
        let drained = maps.ring_drain(fd).unwrap();
        assert_eq!(drained, vec![b"one".to_vec(), b"two".to_vec()]);
        assert!(maps.ring_push(fd, b"four").unwrap());
    }

    #[test]
    fn ring_consume_walks_fifo_and_recycles() {
        let mut maps = MapRegistry::new();
        let fd = maps.create("rb", MapDef::ring_buf(16, 4));
        // Many push/consume cycles through a pool of at most 4 cells: the
        // free list keeps the cycle going without unbounded growth.
        for round in 0..100u8 {
            assert!(maps.ring_push(fd, &[round, 1]).unwrap());
            assert!(maps.ring_push(fd, &[round, 2]).unwrap());
            let mut seen = Vec::new();
            let consumed = maps
                .ring_consume(fd, |record| seen.push(record.to_vec()))
                .unwrap();
            assert_eq!(consumed, 2);
            assert_eq!(seen, vec![vec![round, 1], vec![round, 2]]);
        }
        assert_eq!(maps.ring_dropped(fd).unwrap(), 0);
        // An empty ring consumes nothing.
        assert_eq!(maps.ring_consume(fd, |_| panic!("empty")).unwrap(), 0);
        // Recycled cells must not leak a previous record's bytes.
        assert!(maps.ring_push(fd, b"tiny").unwrap());
        maps.ring_consume(fd, |record| assert_eq!(record, b"tiny"))
            .unwrap();
    }

    #[test]
    fn ring_consume_rejects_non_ring_maps() {
        let mut maps = MapRegistry::new();
        let fd = maps.create("h", MapDef::hash(4, 4, 2));
        assert!(matches!(
            maps.ring_consume(fd, |_| {}),
            Err(MapError::WrongKind(MapKind::Hash))
        ));
    }

    #[test]
    fn ring_buffer_rejects_map_ops() {
        let mut maps = MapRegistry::new();
        let fd = maps.create("rb", MapDef::ring_buf(8, 2));
        assert!(matches!(
            maps.lookup(fd, &[]),
            Err(MapError::WrongKind(MapKind::RingBuf))
        ));
        assert!(matches!(
            maps.hash_entries(fd),
            Err(MapError::WrongKind(MapKind::RingBuf))
        ));
    }

    #[test]
    fn sketch_update_and_read_back() {
        let mut maps = MapRegistry::new();
        let fd = maps.create("topk", MapDef::topk_sketch(8, 8));
        assert_eq!(maps.len(fd).unwrap(), 0);
        for i in 0..20u64 {
            maps.sketch_update(fd, &(i % 3).to_le_bytes(), 2).unwrap();
        }
        let state = maps.sketch_state(fd).unwrap();
        assert!(state.estimate(&0u64.to_le_bytes()) >= 14);
        assert_eq!(state.total_weight(), 40);
        assert!(maps.len(fd).unwrap() >= 1);
    }

    #[test]
    fn sketch_rejects_generic_map_ops() {
        let mut maps = MapRegistry::new();
        let fd = maps.create("topk", MapDef::topk_sketch(8, 8));
        let key = 1u64.to_le_bytes();
        assert!(matches!(
            maps.lookup(fd, &key),
            Err(MapError::WrongKind(MapKind::TopkSketch))
        ));
        assert!(matches!(
            maps.update(fd, &key, &[0; 8]),
            Err(MapError::WrongKind(MapKind::TopkSketch))
        ));
        assert!(matches!(
            maps.delete(fd, &key),
            Err(MapError::WrongKind(MapKind::TopkSketch))
        ));
        assert!(matches!(
            maps.ring_push(fd, &[0; 8]),
            Err(MapError::WrongKind(MapKind::TopkSketch))
        ));
        // And the other kinds reject sketch ops.
        let h = maps.create("h", MapDef::hash(8, 8, 4));
        assert!(matches!(
            maps.sketch_update(h, &key, 1),
            Err(MapError::WrongKind(MapKind::Hash))
        ));
        assert!(matches!(
            maps.sketch_state(h),
            Err(MapError::WrongKind(MapKind::Hash))
        ));
    }

    #[test]
    fn sketch_runtime_desc_has_no_fast_path() {
        use crate::mapindex::DESC_KIND_NONE;
        let mut maps = MapRegistry::new();
        let fd = maps.create("topk", MapDef::topk_sketch(8, 16));
        let (ptr, len) = maps.refresh_runtime_descs();
        assert_eq!(len, 1);
        assert!(!ptr.is_null());
        // Safe read through the registry-owned cache.
        let desc = maps.descs[fd.0 as usize];
        assert_eq!(desc.kind, DESC_KIND_NONE);
    }

    #[test]
    fn fd_by_name_finds_map() {
        let mut maps = MapRegistry::new();
        let a = maps.create("alpha", MapDef::array(8, 1));
        let b = maps.create("beta", MapDef::array(8, 1));
        assert_eq!(maps.fd_by_name("alpha"), Some(a));
        assert_eq!(maps.fd_by_name("beta"), Some(b));
        assert_eq!(maps.fd_by_name("gamma"), None);
        assert_eq!(maps.name(a).unwrap(), "alpha");
    }

    #[test]
    fn bad_fd_errors() {
        let maps = MapRegistry::new();
        let err = maps.def(MapFd(9)).unwrap_err();
        assert_eq!(err, MapError::BadFd(MapFd(9)));
        assert!(err.to_string().contains("fd 9"));
    }
}
